package cep

// Session.Metrics — the one coherent observability snapshot — and the
// opt-in HTTP exposition endpoint (Prometheus text format, expvar-style
// JSON, pprof), stdlib only. The instrumentation being read here is wired
// in telemetry.go / session.go; this file only snapshots and formats.

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net/http"
	"net/http/pprof"
	"time"

	"repro/internal/telemetry"
)

// QueueMetrics describes one worker lane: its queue (instantaneous depth
// and capacity — the back-pressure gauges) and its cumulative counters.
// Retired lanes (spliced away by churn or drift) stay in the list with
// their final counter values and an empty queue: per-lane counters are
// monotonic over each lane's lifetime, and the session aggregates stay
// monotonic because tombstones keep counting.
type QueueMetrics struct {
	// Lane is the stable pool lane index.
	Lane int `json:"lane"`
	// Kind is "shared" (MQO DAG lane), "private" (one query's own engine)
	// or "detector" (opaque pre-built detector).
	Kind string `json:"kind"`
	// Members are the query names served by the lane.
	Members []string `json:"members,omitempty"`
	// Component is the sharing-component id of a shared lane, -1 otherwise.
	Component int `json:"component"`
	// Partition is the hash bucket a key-partitioned shared lane owns
	// (SessionConfig.PartitionWorkers), -1 on unpartitioned lanes;
	// Partitions is the sibling count of its family (0 when unpartitioned).
	Partition  int `json:"partition"`
	Partitions int `json:"partitions,omitempty"`
	// Generation is the re-optimization generation that built the lane.
	Generation int `json:"generation"`
	// Retired marks a tombstone lane whose state was spliced elsewhere.
	Retired bool `json:"retired,omitempty"`
	// Depth and Capacity are the bounded queue's instantaneous fill and
	// size (0, 0 for retired lanes).
	Depth    int `json:"depth"`
	Capacity int `json:"capacity"`
	// Items counts queue items consumed (an event or a whole batch);
	// Events counts events processed (batches expanded); Batches the batch
	// items among Items; Matches the matches the lane emitted; Stalls the
	// sends that found the queue full and blocked (back-pressure).
	Items   int64 `json:"items"`
	Events  int64 `json:"events"`
	Batches int64 `json:"batches"`
	Matches int64 `json:"matches"`
	Stalls  int64 `json:"stalls"`
}

// QueryMetrics is the per-query slice of the snapshot.
type QueryMetrics struct {
	Name string `json:"name"`
	// Matches counts the query's emitted matches over its lifetime,
	// surviving lane splices (the counter belongs to the query).
	Matches int64 `json:"matches"`
	// Since is the stream sequence watermark of the query's registration.
	Since uint64 `json:"since"`
}

// ShardGroupMetrics carries one registered ShardedRuntime detector's
// per-shard counters into the unified snapshot.
type ShardGroupMetrics struct {
	Query  string       `json:"query"`
	Shards []ShardStats `json:"shards"`
}

// SessionMetrics is one coherent snapshot of everything the session
// measures about itself: feed counters, per-lane counters and queue
// gauges, per-query match counts, the sampled detection-latency
// distribution, the control-plane journal, registered sharded detectors'
// shard counters, and the existing decision reports (sharing, drift,
// ingress index) cross-linked in one place.
//
// Consistency: counters are read atomically but not under a global stop —
// concurrent feeding keeps them moving between loads, so cross-counter
// identities hold only approximately on a live session (and exactly once
// it is quiescent). All counters are monotonic while the session lives.
// Generation is read after the Share/Drift/Index reports are taken, so
// Generation >= Share.Generation always holds within one snapshot.
type SessionMetrics struct {
	// When is the snapshot wall time; Enabled reports whether telemetry is
	// on (when false only structure and reports are populated).
	When    time.Time `json:"when"`
	Enabled bool      `json:"enabled"`

	Started bool `json:"started"`
	Closed  bool `json:"closed"`
	// Queries counts registered queries; Lanes all pool lanes ever created
	// (tombstones included); LiveLanes the lanes accepting work.
	Queries   int `json:"queries"`
	Lanes     int `json:"lanes"`
	LiveLanes int `json:"live_lanes"`
	// Generation is the re-optimization count (churn + drift), the same
	// clock as ShareReport.Generation.
	Generation int `json:"generation"`
	// Seq is the stream position: events submitted so far.
	Seq uint64 `json:"seq"`

	// Feed counters. EventsSubmitted/BatchesSubmitted count accepted
	// Submit/SubmitBatch traffic; EventsRouted counts per-lane deliveries
	// on the index-routed path; EventsDropped counts events the ingress
	// index proved no lane could use (matched nothing, no always-lanes).
	EventsSubmitted  int64 `json:"events_submitted"`
	BatchesSubmitted int64 `json:"batches_submitted"`
	EventsRouted     int64 `json:"events_routed"`
	EventsDropped    int64 `json:"events_dropped"`

	// Worker aggregates: sums over every lane ever created, monotonic
	// across splices.
	ItemsProcessed   int64 `json:"items_processed"`
	EventsProcessed  int64 `json:"events_processed"`
	BatchesProcessed int64 `json:"batches_processed"`
	MatchesEmitted   int64 `json:"matches_emitted"`
	Stalls           int64 `json:"stalls"`

	// Latency is the merged sampled detection-latency histogram
	// (submit → match emission, nanoseconds); P50/P99 are bucket-resolution
	// estimates from it, MeanNS the exact mean.
	Latency telemetry.HistSnapshot `json:"latency"`
	MeanNS  float64                `json:"latency_mean_ns"`
	P50NS   int64                  `json:"latency_p50_ns"`
	P99NS   int64                  `json:"latency_p99_ns"`

	Queues   []QueueMetrics `json:"queues,omitempty"`
	PerQuery []QueryMetrics `json:"per_query,omitempty"`

	// Journal is the retained control-plane history (oldest first);
	// JournalRecorded the total ever recorded, overwritten entries
	// included; JournalDropped how many of those the bounded ring has
	// overwritten (non-zero means the retained history is truncated).
	Journal         []telemetry.Entry `json:"journal,omitempty"`
	JournalRecorded int64             `json:"journal_recorded"`
	JournalDropped  int64             `json:"journal_dropped"`

	// TracesSampled counts the event traces ever captured by the tracing
	// layer (SessionConfig.Trace.SampleEvery); TracesRetained how many the
	// bounded ring currently holds. Both zero when tracing is off.
	TracesSampled  int64 `json:"traces_sampled,omitempty"`
	TracesRetained int   `json:"traces_retained,omitempty"`

	// Shards surfaces registered ShardedRuntime detectors' per-shard
	// counters and queue gauges.
	Shards []ShardGroupMetrics `json:"shards,omitempty"`

	// The decision reports, as their own methods would return them (nil
	// when the corresponding subsystem is off or the session not started).
	Share *ShareReport `json:"share,omitempty"`
	Drift *DriftReport `json:"drift,omitempty"`
	Index *IndexReport `json:"index,omitempty"`
}

// shardStatser is how the snapshot discovers sharded detectors without a
// concrete-type dependency: ShardedRuntime satisfies it.
type shardStatser interface{ Stats() []ShardStats }

// Metrics returns the unified observability snapshot. It is safe to call
// at any rate from any goroutine concurrently with the feed and with
// query churn: counter reads are atomic, queue depths are momentary
// gauges, and the decision reports are taken with their own locking
// before the counter pass (so Generation >= Share.Generation within the
// snapshot). It never blocks the hot path.
func (s *Session) Metrics() *SessionMetrics {
	// The self-locking reports first — each briefly takes s.mu — then the
	// structural pass under s.mu. Taking them in this order bounds their
	// generations by the snapshot's own.
	m := &SessionMetrics{
		When:  time.Now(),
		Share: s.ShareReport(),
		Drift: s.DriftReport(),
		Index: s.IndexReport(),
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	m.Started, m.Closed = s.started, s.closed
	m.Queries = len(s.queries)
	m.Generation = s.reoptGen
	m.Seq = s.seq.Load()

	if t := s.tel; t != nil {
		m.Enabled = true
		m.EventsSubmitted = t.eventsSubmitted.Load()
		m.BatchesSubmitted = t.batchesSubmitted.Load()
		m.EventsRouted = t.eventsRouted.Load()
		m.EventsDropped = t.eventsDropped.Load()
		m.Journal = t.journal.Snapshot()
		m.JournalRecorded = t.journal.Recorded()
		m.JournalDropped = t.journal.Dropped()
	}
	if tr := s.tr; tr != nil && tr.ring != nil {
		m.TracesSampled = tr.ring.Added()
		m.TracesRetained = tr.ring.Len()
	}

	lanes := *s.laneTab.Load()
	m.Lanes = len(lanes)
	for _, l := range lanes {
		qm := QueueMetrics{
			Lane:       l.idx,
			Component:  -1,
			Partition:  -1,
			Generation: l.gen,
			Retired:    l.retired || l.discard,
			Items:      l.tc.Items.Load(),
			Events:     l.tc.Events.Load(),
			Batches:    l.tc.Batches.Load(),
			Matches:    l.tc.Matches.Load(),
			Stalls:     l.tc.Stalls.Load(),
		}
		switch {
		case l.eng != nil || (l.retired && l.q == nil):
			qm.Kind = "shared"
			qm.Members = append([]string(nil), l.info.members...)
			if l.eng != nil {
				qm.Component = l.comp
			}
			if l.parts > 1 {
				qm.Partition, qm.Partitions = l.part, l.parts
			}
		case l.q != nil && l.q.rt != nil:
			qm.Kind = "private"
			qm.Members = []string{l.q.name}
		default:
			qm.Kind = "detector"
			if l.q != nil {
				qm.Members = []string{l.q.name}
			}
		}
		if !qm.Retired {
			m.LiveLanes++
			qm.Depth, qm.Capacity = s.pool.QueueStats(l.idx)
		}
		m.ItemsProcessed += qm.Items
		m.EventsProcessed += qm.Events
		m.BatchesProcessed += qm.Batches
		m.MatchesEmitted += qm.Matches
		m.Stalls += qm.Stalls
		m.Latency.Merge(l.tc.Latency.Snapshot())
		m.Queues = append(m.Queues, qm)
	}
	m.MeanNS = m.Latency.Mean()
	m.P50NS = m.Latency.Quantile(0.50)
	m.P99NS = m.Latency.Quantile(0.99)

	for _, q := range s.queries {
		m.PerQuery = append(m.PerQuery, QueryMetrics{
			Name: q.name, Matches: q.nmatches.Load(), Since: q.since,
		})
		if q.rt == nil {
			if ss, ok := q.det.(shardStatser); ok {
				m.Shards = append(m.Shards, ShardGroupMetrics{Query: q.name, Shards: ss.Stats()})
			}
		}
	}
	return m
}

// promMaxSeries caps the per-lane / per-query / per-shard label
// cardinality of the Prometheus exposition: beyond this many entities only
// the aggregates are emitted (a 10k-query session must not emit 10k
// series per family). The JSON exposition is never capped.
const promMaxSeries = 64

// MetricsHandler returns an http.Handler exposing the session's telemetry:
//
//	/metrics            Prometheus text exposition format
//	/metrics.json       the full Metrics() snapshot as JSON
//	/debug/traces.json  the sampled event traces (Session.Traces) as JSON
//	/debug/vars         expvar-style JSON (published vars + "cep" snapshot)
//	/debug/pprof/...    the standard pprof profiles
//
// Serving is opt-in and caller-owned: mount the handler on any mux or
// server (`http.ListenAndServe(addr, s.MetricsHandler())`). Handlers
// snapshot on each request; the cost is the caller's, never the feed's.
func (s *Session) MetricsHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.writeProm(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(s.Metrics())
	})
	mux.HandleFunc("/debug/traces.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(s.Traces())
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, "{\n")
		first := true
		expvar.Do(func(kv expvar.KeyValue) {
			if !first {
				fmt.Fprintf(w, ",\n")
			}
			first = false
			fmt.Fprintf(w, "%q: %s", kv.Key, kv.Value)
		})
		if !first {
			fmt.Fprintf(w, ",\n")
		}
		snap, err := json.Marshal(s.Metrics())
		if err != nil {
			snap = []byte(`null`)
		}
		fmt.Fprintf(w, "%q: %s\n}\n", "cep", snap)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "cep session telemetry\n\n/metrics\n/metrics.json\n/debug/traces.json\n/debug/vars\n/debug/pprof/\n")
	})
	return mux
}

// writeProm renders the Prometheus exposition from one fresh snapshot.
func (s *Session) writeProm(w http.ResponseWriter) {
	m := s.Metrics()
	p := telemetry.NewPromWriter(w)

	p.Header("cep_events_submitted_total", "counter", "Events accepted by Submit/SubmitBatch.")
	p.Int("cep_events_submitted_total", nil, m.EventsSubmitted)
	p.Header("cep_batches_submitted_total", "counter", "SubmitBatch calls accepted.")
	p.Int("cep_batches_submitted_total", nil, m.BatchesSubmitted)
	p.Header("cep_events_routed_total", "counter", "Per-lane deliveries on the index-routed feed path.")
	p.Int("cep_events_routed_total", nil, m.EventsRouted)
	p.Header("cep_events_dropped_total", "counter", "Events the ingress index matched to no lane.")
	p.Int("cep_events_dropped_total", nil, m.EventsDropped)

	p.Header("cep_items_processed_total", "counter", "Queue items consumed by workers (events or whole batches).")
	p.Int("cep_items_processed_total", nil, m.ItemsProcessed)
	p.Header("cep_events_processed_total", "counter", "Events processed by workers, batches expanded.")
	p.Int("cep_events_processed_total", nil, m.EventsProcessed)
	p.Header("cep_batches_processed_total", "counter", "Batch items among the consumed queue items.")
	p.Int("cep_batches_processed_total", nil, m.BatchesProcessed)
	p.Header("cep_matches_emitted_total", "counter", "Matches emitted across all lanes.")
	p.Int("cep_matches_emitted_total", nil, m.MatchesEmitted)
	p.Header("cep_queue_stalls_total", "counter", "Sends that found a lane queue full and blocked (back-pressure).")
	p.Int("cep_queue_stalls_total", nil, m.Stalls)

	p.Header("cep_queries", "gauge", "Registered queries.")
	p.Int("cep_queries", nil, int64(m.Queries))
	p.Header("cep_lanes", "gauge", "Worker lanes ever created (tombstones included).")
	p.Int("cep_lanes", nil, int64(m.Lanes))
	p.Header("cep_live_lanes", "gauge", "Worker lanes accepting work.")
	p.Int("cep_live_lanes", nil, int64(m.LiveLanes))
	p.Header("cep_generation", "counter", "Re-optimizations performed (query churn + drift).")
	p.Int("cep_generation", nil, int64(m.Generation))
	p.Header("cep_stream_seq", "counter", "Stream position: events submitted so far.")
	p.Int("cep_stream_seq", nil, int64(m.Seq))
	p.Header("cep_journal_records_total", "counter", "Control-plane journal entries ever recorded.")
	p.Int("cep_journal_records_total", nil, m.JournalRecorded)
	p.Header("cep_journal_dropped_total", "counter", "Journal entries overwritten by the bounded ring.")
	p.Int("cep_journal_dropped_total", nil, m.JournalDropped)
	p.Header("cep_traces_sampled_total", "counter", "Event traces captured by the sampling tracer.")
	p.Int("cep_traces_sampled_total", nil, m.TracesSampled)

	p.Header("cep_detection_latency_seconds", "histogram", "Sampled submit-to-match-emission latency.")
	p.Histogram("cep_detection_latency_seconds", nil, m.Latency)

	if n := len(m.Queues); n > 0 && n <= promMaxSeries {
		p.Header("cep_queue_depth", "gauge", "Instantaneous lane queue fill.")
		for _, q := range m.Queues {
			if !q.Retired {
				p.Int("cep_queue_depth", laneLabels(q), int64(q.Depth))
			}
		}
		p.Header("cep_queue_capacity", "gauge", "Lane queue capacity.")
		for _, q := range m.Queues {
			if !q.Retired {
				p.Int("cep_queue_capacity", laneLabels(q), int64(q.Capacity))
			}
		}
		p.Header("cep_lane_events_total", "counter", "Events processed per lane.")
		for _, q := range m.Queues {
			p.Int("cep_lane_events_total", laneLabels(q), q.Events)
		}
		p.Header("cep_lane_matches_total", "counter", "Matches emitted per lane.")
		for _, q := range m.Queues {
			p.Int("cep_lane_matches_total", laneLabels(q), q.Matches)
		}
		p.Header("cep_lane_stalls_total", "counter", "Back-pressure stalls per lane.")
		for _, q := range m.Queues {
			p.Int("cep_lane_stalls_total", laneLabels(q), q.Stalls)
		}
	}

	if n := len(m.PerQuery); n > 0 && n <= promMaxSeries {
		p.Header("cep_query_matches_total", "counter", "Matches emitted per query.")
		for _, q := range m.PerQuery {
			p.Int("cep_query_matches_total", telemetry.Labels{"query": q.Name}, q.Matches)
		}
	}

	if m.Drift != nil {
		p.Header("cep_drift_checks_total", "counter", "Drift checks performed.")
		p.Int("cep_drift_checks_total", nil, m.Drift.Checks)
		p.Header("cep_drift_reopts_total", "counter", "Drift-triggered re-optimizations.")
		p.Int("cep_drift_reopts_total", nil, m.Drift.Reopts)
	}

	nShards := 0
	for _, g := range m.Shards {
		nShards += len(g.Shards)
	}
	if nShards > 0 && nShards <= promMaxSeries {
		p.Header("cep_shard_events_total", "counter", "Events accepted per shard of registered sharded detectors.")
		for _, g := range m.Shards {
			for _, sh := range g.Shards {
				p.Int("cep_shard_events_total", shardLabels(g.Query, sh), sh.Events)
			}
		}
		p.Header("cep_shard_stalls_total", "counter", "Back-pressure stalls per shard.")
		for _, g := range m.Shards {
			for _, sh := range g.Shards {
				p.Int("cep_shard_stalls_total", shardLabels(g.Query, sh), sh.Stalls)
			}
		}
		p.Header("cep_shard_queue_depth", "gauge", "Instantaneous shard queue fill.")
		for _, g := range m.Shards {
			for _, sh := range g.Shards {
				p.Int("cep_shard_queue_depth", shardLabels(g.Query, sh), int64(sh.QueueDepth))
			}
		}
	}
}

func laneLabels(q QueueMetrics) telemetry.Labels {
	l := telemetry.Labels{"lane": fmt.Sprint(q.Lane), "kind": q.Kind}
	if q.Partitions > 0 {
		l["partition"] = fmt.Sprint(q.Partition)
	}
	return l
}

func shardLabels(query string, sh ShardStats) telemetry.Labels {
	return telemetry.Labels{"query": query, "shard": fmt.Sprint(sh.Shard)}
}
