package cep

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/filterindex"
	"repro/internal/mqo"
	"repro/internal/plan"
	"repro/internal/pool"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// QueryConfig declares one named query — pattern, statistics and tuning —
// as a plain struct, the config-first alternative to the functional-option
// constructors for the common path. Zero values select the defaults
// (AlgGreedy, SkipTillAnyMatch, no latency weighting).
type QueryConfig struct {
	// Name identifies the query inside a Session; match deliveries are
	// tagged with it. Required when registering on a Session.
	Name string
	// Pattern is the parsed pattern AST. Exactly one of Pattern, Query and
	// Source must be set.
	Pattern *Pattern
	// Query is the SASE-style textual pattern, parsed (and, when Registry
	// is set, validated) at construction — the string-first alternative to
	// building a *Pattern by hand.
	Query string
	// Source is the original name of the Query field, retained for
	// compatibility; new code should set Query.
	Source string
	// Registry optionally validates Query against declared schemas.
	Registry *Registry
	// Stats supplies the arrival rates and selectivities the planner
	// minimises over; nil plans under neutral defaults.
	Stats *Stats
	// Algorithm is the plan-generation algorithm (default AlgGreedy).
	Algorithm string
	// Strategy is the event selection strategy (default SkipTillAnyMatch).
	Strategy Strategy
	// LatencyWeight is α of the hybrid cost model Cost_trpt + α·Cost_lat.
	LatencyWeight float64
	// MaxKleeneBase bounds Kleene-closure power-set enumeration (0 keeps
	// the engine default).
	MaxKleeneBase int
	// OnMatch, when non-nil, receives this query's matches as they are
	// emitted instead of the Session accumulating (or forwarding) them.
	// Inside a Session it runs on the query's worker goroutine, in stream
	// order; in a standalone NewFromConfig runtime it is installed as the
	// engine's WithOnMatch callback.
	OnMatch func(*Match)
}

// pattern resolves the Pattern/Query/Source fields.
func (qc QueryConfig) pattern() (*Pattern, error) {
	src := qc.Query
	switch {
	case qc.Query != "" && qc.Source != "":
		return nil, fmt.Errorf("cep: query %q sets both Query and Source (Source is the deprecated alias)", qc.Name)
	case qc.Source != "":
		src = qc.Source
	}
	switch {
	case qc.Pattern != nil && src != "":
		return nil, fmt.Errorf("cep: query %q sets both Pattern and Query", qc.Name)
	case qc.Pattern != nil:
		return qc.Pattern, nil
	case src != "":
		if qc.Registry != nil {
			return ParsePatternWith(src, qc.Registry)
		}
		return ParsePattern(src)
	default:
		return nil, fmt.Errorf("cep: query %q has neither Pattern nor Query", qc.Name)
	}
}

// options lowers the declarative fields onto the functional options of New.
func (qc QueryConfig) options() []Option {
	var opts []Option
	if qc.Algorithm != "" {
		opts = append(opts, WithAlgorithm(qc.Algorithm))
	}
	if qc.Strategy != 0 {
		opts = append(opts, WithStrategy(qc.Strategy))
	}
	if qc.LatencyWeight != 0 {
		opts = append(opts, WithLatencyWeight(qc.LatencyWeight))
	}
	if qc.MaxKleeneBase != 0 {
		opts = append(opts, WithMaxKleeneBase(qc.MaxKleeneBase))
	}
	return opts
}

// NewFromConfig plans a single-query Runtime from a declarative QueryConfig
// — the config-first equivalent of New with functional options.
func NewFromConfig(qc QueryConfig) (*Runtime, error) {
	p, err := qc.pattern()
	if err != nil {
		return nil, err
	}
	opts := qc.options()
	if qc.OnMatch != nil {
		opts = append(opts, WithOnMatch(qc.OnMatch))
	}
	return New(p, qc.Stats, opts...)
}

// MatchSink receives matches tagged with the name of the query that emitted
// them. Sinks installed on a Session run on the worker goroutine of the
// emitting query: calls for one query are sequential and in stream order,
// but calls for different queries run concurrently, so a shared sink must
// be safe for concurrent use. A sink must not call back into the Session
// (Submit, Drain, Flush, Close, AddQuery, RemoveQuery) — the worker is
// blocked inside the callback, so waiting on its own queue deadlocks.
type MatchSink func(query string, m *Match)

// SessionConfig configures a Session. The zero value selects the defaults.
type SessionConfig struct {
	// QueueLen is the per-query bounded input queue capacity (default 256).
	// A full queue blocks Submit/Run until the query catches up — the
	// back-pressure bound on how far the feed can run ahead of the slowest
	// query.
	QueueLen int
	// OnMatch, when non-nil, receives every match of every query that does
	// not install its own QueryConfig.OnMatch. See MatchSink for the
	// concurrency rules.
	OnMatch MatchSink
	// ShareSubplans enables the multi-query shared-subplan optimizer
	// (internal/mqo): when the session starts, the compiled tree plans of
	// the registered queries are canonicalized, common sub-joins are
	// detected across queries, and groups that the cost model predicts to
	// benefit are evaluated on a shared evaluation DAG in which each common
	// sub-join buffer is computed once and its partial matches fan out to
	// every consuming query's residual plan. The per-query match sets are
	// identical to unshared evaluation.
	//
	// Sharing applies to queries registered with Register or AddQuery (not
	// RegisterDetector) that compile to a single conjunctive or sequence
	// disjunct without Kleene closure under SkipTillAnyMatch — the strategy
	// whose match sets are provably plan-independent. Negation patterns
	// participate through their positive core: the shared DAG computes the
	// positive sub-joins and each consuming root applies its own negation
	// checks. All other queries keep their private engines and per-query
	// workers.
	//
	// Sharing is dynamic: AddQuery and RemoveQuery on a running session
	// incrementally re-optimize just the affected sharing component,
	// draining and splicing its evaluation DAG without dropping or
	// duplicating the surviving queries' matches.
	ShareSubplans bool
	// SharedWorkers partitions a sharing component's root fan-out across up
	// to this many worker lanes (cost-balanced), so one hot component no
	// longer serializes on a single goroutine. Sub-joins shared across
	// lanes are evaluated once per lane — the split trades some
	// recomputation for parallelism. 0 or 1 keeps one lane per component.
	SharedWorkers int
	// PartitionWorkers hash-partitions each sharing component that carries
	// an equi-join key across this many worker lanes: when every member of a
	// component chains its positive positions together with equality
	// predicates on one attribute (`a.k = b.k AND b.k = c.k`), events are
	// hash-routed by that attribute's value so each lane owns a disjoint
	// slice of every shared sub-join's buffers. Each shared node is computed
	// once per partition — unlike the SharedWorkers split there is no
	// cross-lane recomputation — and each lane's join probing shrinks with
	// its buffer share, so the component's total work drops toward 1/P of
	// the single-lane cost on top of the parallelism. Match sets are
	// identical to single-lane evaluation; the arrival ORDER of one query's
	// matches across partition lanes is unspecified (match sets, not match
	// sequences, are the invariant). Components with no qualifying key fall
	// back to the SharedWorkers split. PartitionWorkers supersedes
	// SharedWorkers for keyed components. 0 or 1 disables partitioning.
	PartitionWorkers int
	// Adaptive enables statistics-drift monitoring and live re-optimization:
	// an online collector shadows the feed, and components whose running
	// plans drift too far from what fresh measurements would choose are
	// re-planned and spliced without dropping or duplicating matches. See
	// AdaptiveSessionConfig; nil disables adaptivity.
	Adaptive *AdaptiveSessionConfig
	// StatsPath, when non-empty, wires statistics persistence into the
	// session lifecycle: measured statistics are loaded from the file at
	// construction and seed the planning of every query registered without
	// its own QueryConfig.Stats, and the statistics measured during the run
	// are saved back on Flush/Close — a restarted session plans from
	// yesterday's measurements instead of neutral priors. A missing file is
	// not an error (first run); an unreadable one surfaces at registration.
	StatsPath string
	// FilterIndex enables the ingress discrimination network
	// (internal/filterindex): every lane registers its event intakes — type
	// plus constant unary predicates — and each submitted event (or batch)
	// is evaluated ONCE against the two-stage index (type dispatch, then
	// hashed equality / sorted range constraint tables), then routed only
	// to the lanes it can possibly feed, instead of being broadcast to all
	// of them and re-filtered per lane. Shared DAG lanes additionally skip
	// re-running their leaf unary filters: the index verdict addresses the
	// exact leaf and negation intakes the event belongs to. Match sets are
	// identical to broadcast evaluation. The index survives query churn
	// (AddQuery/RemoveQuery rebuild only the affected types' shards behind
	// an atomic pointer, so the feed path stays lock-free) and feeds
	// measured per-constraint hit rates to the adaptivity collector, so
	// drift re-planning prices post-index rates. See Session.IndexReport.
	//
	// Even with FilterIndex off, private (non-shared) query lanes get the
	// stage-1 fast path: events whose type appears nowhere in a lane's
	// pattern are not enqueued to it.
	FilterIndex bool
	// Telemetry tunes the built-in instrumentation (hot-path counters,
	// sampled detection-latency histograms, back-pressure gauges, the
	// control-plane journal) behind Session.Metrics and MetricsHandler.
	// nil enables telemetry with defaults; see TelemetryConfig.
	Telemetry *TelemetryConfig
	// Trace enables the sampled end-to-end event-tracing and
	// match-provenance layer behind Session.Traces, match.Prov and
	// /debug/traces.json. nil (the default) disables it entirely; see
	// TraceConfig.
	Trace *TraceConfig
}

func (c SessionConfig) withDefaults() SessionConfig {
	if c.QueueLen <= 0 {
		c.QueueLen = 256
	}
	return c
}

// sessionItem is one queue unit: a single event or a whole batch, plus the
// stream sequence number — the watermark the shared lanes use so queries
// added mid-stream never observe pre-registration events. A batch item
// carries the sequence number of its first event (the i-th event is
// seq+i); the batch slice is owned by the session and shared read-only
// across every lane.
//
// When the ingress filter index routed the item, the selection fields
// carry the per-lane verdict: evSlots (single event) or slots/slotOff
// (batch) list the hit subscription slots of a shared DAG lane, sorted
// ascending, and sel lists the matched events' indices within the shared
// batch. Private lanes get sel only — being routed at all is their
// verdict. Nil selection fields mean "everything", the broadcast shape.
type sessionItem struct {
	ev    *Event
	seq   uint64
	batch []*Event // non-nil for SubmitBatch items; ev is nil then
	// t0 is the UnixNano submission stamp of a latency-sampled item (0 on
	// the unsampled fast path): matches this item completes observe
	// submit→emission detection latency on the lane's histogram. With
	// TraceConfig.Provenance every item is stamped, so every match's Prov
	// carries its latency.
	t0 int64
	// tr is the trace context of a sampled submission (nil on the
	// untraced path): lane workers append dequeue/engine/emit spans to it.
	tr *trace.Active

	evSlots []int32 // single event, shared lane: hit subscription slots
	sel     []int32 // batch: matched event indices, ascending
	slots   []int32 // batch, shared lane: flattened per-event slot lists
	slotOff []int32 // batch, shared lane: slots[slotOff[k]:slotOff[k+1]] is sel[k]'s list
}

// Session is the front door for serving: any number of named queries over
// one event feed, each query on its own worker lane behind a bounded
// queue, under one lifecycle and one error model. It subsumes Fleet (many
// queries, one feed) and composes with ShardedRuntime (one query,
// partitioned feed): RegisterDetector accepts any Detector, so a query may
// itself be sharded, partitioned or adaptive. With
// SessionConfig.ShareSubplans, overlapping queries are grouped onto shared
// evaluation lanes that compute common sub-joins once.
//
// Lifecycle: NewSession → Register/RegisterDetector → Start (or let
// Run/Process auto-start) → Submit/Run → Flush (collect) or Close
// (discard). Drain is a mid-stream barrier. Matches flow to the per-query
// OnMatch, else to the session MatchSink, else they accumulate and are
// returned by Flush and Results.
//
// The query set is dynamic: AddQuery registers a query before or after
// Start, and RemoveQuery deregisters one, both safe against a concurrent
// feed. On a sharing session the affected component is incrementally
// re-optimized (see ShareReport for the decision trail).
//
// Session itself satisfies Detector: Process is Submit, and Flush ends the
// stream across every query, returning the accumulated matches in query
// registration order.
//
// The worker/lifecycle machinery — bounded queues, drain barriers,
// close-under-write-lock shutdown, first-error recording — is the shared
// internal/pool helper also driving ShardedRuntime. Worker-owned state
// (per-query accumulation buffers) is read only after the pool reports
// joined.
type Session struct {
	cfg  SessionConfig
	pool *pool.Pool[sessionItem]

	// mu guards registration (the query list), the lane table mutations and
	// the session-level lifecycle decisions (started/closed); the pool owns
	// the queue-level machinery behind its own lock.
	mu      sync.Mutex
	started bool
	closed  bool
	queries []*sessionQuery
	byName  map[string]*sessionQuery

	// laneTab is the pool-lane-index → lane table, copy-on-write: workers
	// load it atomically on every item, AddQuery/RemoveQuery swap in a
	// grown copy under mu, so live lane additions never race the feed.
	// Retired lanes stay as tombstones — pool lane indices are stable.
	laneTab atomic.Pointer[[]*sessionLane]

	// intakeMu serializes event intake against lane splicing: Submit holds
	// the read side across the broadcast, AddQuery/RemoveQuery hold the
	// write side while they drain and rebuild lanes, so a splice observes a
	// quiescent DAG and the feed observes atomically swapped lanes.
	intakeMu sync.RWMutex
	// seq numbers submitted events (1, 2, ...), in submission order.
	seq atomic.Uint64

	// fidx is the ingress filter index (RCU): the feed path loads it
	// lock-free under intakeMu's read side, and every lane-set mutation
	// rebuilds the affected type shards and swaps the pointer under the
	// write side — so an index never references a retired lane. Nil until
	// the lanes are built; an Empty index falls back to broadcast.
	fidx atomic.Pointer[filterindex.Index]

	// reoptGen counts completed re-optimizations; nextComp allocates global
	// sharing-component ids.
	reoptGen int
	nextComp int

	// adapt is the adaptivity state (statistics collector, drift detector,
	// persistence seed); nil when neither SessionConfig.Adaptive nor
	// StatsPath is configured. See session_adaptive.go.
	adapt *sessionAdapt

	// tel is the telemetry state (feed counters, latency sampler,
	// control-plane journal); nil when TelemetryConfig.Disabled — hot-path
	// instrumentation sites guard on that one nil check. See telemetry.go
	// and session_metrics.go.
	tel *sessionTelemetry

	// tr is the tracing state (trace sampler, bounded trace ring,
	// provenance flag); nil unless SessionConfig.Trace enables it. See
	// session_trace.go.
	tr *sessionTracer
}

// sessionQuery is one registered query. Before Start it is only a
// declaration; Start (or a live AddQuery) assigns it to a lane — a private
// lane driving its own Detector, or a shared MQO lane evaluating several
// queries at once.
type sessionQuery struct {
	name    string
	det     Detector
	rt      *Runtime     // non-nil when registered via Register/AddQuery (plan available for sharing)
	qc      *QueryConfig // non-nil when registered via Register/AddQuery
	onMatch func(*Match)
	dead    bool     // stop processing after the first error
	matches []*Match // accumulated when no sink applies
	// nmatches counts the query's emitted matches (telemetry): bumped by
	// whichever worker delivers for the query, read by Metrics snapshots.
	// It survives lane splices — the counter belongs to the query, not the
	// lane.
	nmatches telemetry.Counter
	// emitMu serializes deliveries when the query's component is key-
	// partitioned: the P sibling lanes serve the same members concurrently,
	// so accumulation (and a user sink) must be mutually excluded per query.
	// Unpartitioned lanes never take it — one worker owns each query there.
	emitMu sync.Mutex

	lane     *sessionLane // current lane, set once started
	eligible bool         // may participate in subplan sharing
	since    uint64       // stream sequence watermark of registration
	// shareKeys are the canonical sub-join keys this query could share
	// under — the index AddQuery/RemoveQuery consult to find the affected
	// sharing component.
	shareKeys []string
	// sigs lazily caches the canonical-signature tables the drift check
	// prices trees with; invalidated when a re-optimization swaps rt.
	sigs *mqo.Sigs
}

// mqoSigs returns (building on first use) the query's canonical-signature
// cache for shared-cost pricing.
func (q *sessionQuery) mqoSigs() *mqo.Sigs {
	if q.sigs == nil {
		sp := q.rt.plan.Simple[0]
		q.sigs = mqo.NewSigs(sp.Compiled, sp.Stats.TermIndex)
	}
	return q.sigs
}

// NewSession builds an empty session.
func NewSession(cfg SessionConfig) *Session {
	s := &Session{cfg: cfg.withDefaults(), byName: make(map[string]*sessionQuery)}
	s.adapt = newSessionAdapt(s.cfg)
	s.tel = newSessionTelemetry(s.cfg.Telemetry)
	s.tr = newSessionTracer(s.cfg.Trace)
	empty := []*sessionLane{}
	s.laneTab.Store(&empty)
	hooks := pool.Hooks[sessionItem]{
		Work:   func(lane int, it sessionItem) { (*s.laneTab.Load())[lane].work(it) },
		Finish: func(lane int) { (*s.laneTab.Load())[lane].finish() },
	}
	if s.tel != nil {
		// Back-pressure stalls are bumped on the *sender* goroutine the
		// moment a send finds a lane queue full; the counter is the lane's,
		// so a snapshot reads stalls next to the queue they describe.
		hooks.OnStall = func(lane int) { (*s.laneTab.Load())[lane].tc.Stalls.Inc() }
	}
	s.pool = pool.New(hooks)
	return s
}

// sessErr translates pool lifecycle sentinels into the session's error
// vocabulary.
func sessErr(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, pool.ErrClosed):
		return fmt.Errorf("cep: session: %w", ErrClosed)
	case errors.Is(err, pool.ErrNotStarted):
		return fmt.Errorf("cep: session not started")
	case errors.Is(err, pool.ErrStarted):
		return fmt.Errorf("cep: session already started")
	case errors.Is(err, pool.ErrNoLanes):
		return fmt.Errorf("cep: session has no registered queries")
	default:
		return err
	}
}

// Register plans the query described by the config and adds it under its
// name. Registration must happen before the session starts; use AddQuery to
// register on a running session.
func (s *Session) Register(qc QueryConfig) error {
	q, err := s.planQuery(qc)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started && !s.closed {
		return fmt.Errorf("cep: session already started; use AddQuery to register on a running session")
	}
	return s.registerLocked(q)
}

// AddQuery registers a query on a session in any pre-close state. Before
// Start it is equivalent to Register. On a running session the query goes
// live atomically with respect to the feed: it observes exactly the events
// submitted after AddQuery returns, and (on a sharing session) the affected
// sharing component — every query that could share a sub-join with the new
// one, transitively — is re-optimized incrementally: the component's lanes
// are drained, a new shared DAG is built, and the surviving queries'
// buffered partial matches are spliced into it, so no query drops or
// duplicates a match across the transition. Queries outside the affected
// component are untouched. When the cost model finds nothing worth sharing
// the query runs on its own lane.
func (s *Session) AddQuery(qc QueryConfig) error {
	q, err := s.planQuery(qc)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.started || s.closed {
		return s.registerLocked(q)
	}
	if err := s.checkNameLocked(q.name); err != nil {
		return err
	}
	if err := s.spliceAddLocked(q); err != nil {
		return err
	}
	s.tel.record(s.seq.Load(), "add_query", q.name)
	return nil
}

// planQuery builds the runtime for a config, with delivery stripped:
// delivery is the session's job, so the engine callback and the session
// sink never double-deliver. Queries without statistics of their own plan
// from the persisted StatsPath seed when one is available.
func (s *Session) planQuery(qc QueryConfig) (*sessionQuery, error) {
	rtCfg := qc
	rtCfg.OnMatch = nil
	if s.adapt != nil {
		if s.adapt.loadErr != nil {
			return nil, s.adapt.loadErr
		}
		if rtCfg.Stats == nil && s.adapt.seed != nil {
			rtCfg.Stats = s.adapt.seed
		}
	}
	rt, err := NewFromConfig(rtCfg)
	if err != nil {
		return nil, err
	}
	return &sessionQuery{name: qc.Name, det: rt, rt: rt, qc: &rtCfg, onMatch: qc.OnMatch}, nil
}

// RegisterDetector adds a pre-built detector — a Runtime, an
// AdaptiveRuntime, a ShardedRuntime, anything satisfying Detector — under
// the name. onMatch may be nil to fall through to the session sink (or
// accumulation). The session takes ownership: it will Flush and Close the
// detector. Detector queries never participate in subplan sharing — their
// evaluation plan is opaque to the session.
func (s *Session) RegisterDetector(name string, d Detector, onMatch func(*Match)) error {
	if d == nil {
		return fmt.Errorf("cep: query %q: nil detector", name)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started && !s.closed {
		return fmt.Errorf("cep: session already started; register queries before Start")
	}
	return s.registerLocked(&sessionQuery{name: name, det: d, onMatch: onMatch})
}

func (s *Session) checkNameLocked(name string) error {
	if name == "" {
		return fmt.Errorf("cep: query name must not be empty")
	}
	if _, dup := s.byName[name]; dup {
		return fmt.Errorf("cep: duplicate query name %q", name)
	}
	return nil
}

func (s *Session) registerLocked(q *sessionQuery) error {
	if s.closed {
		return fmt.Errorf("cep: session: %w", ErrClosed)
	}
	if s.started {
		return fmt.Errorf("cep: session already started; register queries before Start")
	}
	if err := s.checkNameLocked(q.name); err != nil {
		return err
	}
	s.queries = append(s.queries, q)
	s.byName[q.name] = q
	return nil
}

// RemoveQuery deregisters a query. On a running session the removal is a
// barrier: events already submitted are fully processed (and delivered)
// first, then the query's lane is retired — afterwards no sink sees the
// name again and the name may be reused. A removed member of a shared lane
// triggers an incremental re-optimization of its component; the remaining
// members keep their buffered state. Matches the removed query had
// accumulated (rather than delivered) are discarded; end-of-stream
// pendings of negation patterns are discarded, not flushed.
func (s *Session) RemoveQuery(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("cep: session: %w", ErrClosed)
	}
	q := s.byName[name]
	if q == nil {
		return fmt.Errorf("cep: unknown query %q", name)
	}
	if !s.started {
		s.dropQueryLocked(q)
		if err := q.det.Close(); err != nil {
			return fmt.Errorf("cep: query %q: %w", name, err)
		}
		return nil
	}
	if err := s.spliceRemoveLocked(q); err != nil {
		return err
	}
	s.tel.record(s.seq.Load(), "remove_query", name)
	return nil
}

// dropQueryLocked removes the query from the registration bookkeeping.
func (s *Session) dropQueryLocked(q *sessionQuery) {
	delete(s.byName, q.name)
	for i, other := range s.queries {
		if other == q {
			s.queries = append(s.queries[:i], s.queries[i+1:]...)
			break
		}
	}
}

// Queries returns the registered query names in registration order.
func (s *Session) Queries() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, len(s.queries))
	for i, q := range s.queries {
		out[i] = q.name
	}
	return out
}

// Size returns the number of registered queries.
func (s *Session) Size() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queries)
}

// Start launches the session's workers: one per private query, plus one per
// shared MQO lane when ShareSubplans grouped queries together. It errors if
// the session is empty, already started, or closed. Run and Process start
// the session implicitly; explicit Start is for Submit-driven feeds.
func (s *Session) Start() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.startLocked(true)
}

func (s *Session) startLocked(explicit bool) error {
	if s.closed {
		return fmt.Errorf("cep: session: %w", ErrClosed)
	}
	if s.started {
		if explicit {
			return fmt.Errorf("cep: session already started")
		}
		return nil
	}
	if len(s.queries) == 0 {
		return fmt.Errorf("cep: session has no registered queries")
	}
	s.initAdaptLocked()
	if err := s.buildLanes(); err != nil {
		return err
	}
	s.wireIndexStats()
	if err := sessErr(s.pool.Start()); err != nil {
		return err
	}
	s.started = true
	s.tel.recordKV(0, "start",
		kv("queries", len(s.queries)), kv("lanes", len(*s.laneTab.Load())))
	return nil
}

// ensureStarted starts the workers if they are not running yet. The
// fast path keeps the per-event cost of the steady state at one RLock for
// Detector-style callers driving Process per event.
func (s *Session) ensureStarted() error {
	if s.pool.Started() {
		return nil // closed is re-checked under the pool lock by the submit path
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.startLocked(false)
}

// Submit feeds one event to the lanes that can use it, blocking on a full
// queue (back-pressure). The ingress filter index routes the event to the
// lanes whose patterns can consume its type (and, with
// SessionConfig.FilterIndex, whose constant unary predicates it
// satisfies); lanes with opaque detectors receive everything. All events
// must be submitted in timestamp order by a single goroutine (or with
// external ordering); queries consume them concurrently with each other,
// never with the submitter's next Submit of the same queue slot.
func (s *Session) Submit(e *Event) error {
	return s.submit(nil, e)
}

// submit routes under the intake read lock (so a lane splice never
// interleaves a send) and the pool's read lock; a non-nil ctx makes each
// blocking queue send cancellable. After the sends — outside every lock —
// the event feeds the adaptivity collector, which may run a drift check
// (and a re-optimization splice) on this goroutine.
func (s *Session) submit(ctx context.Context, e *Event) error {
	if e == nil {
		return ErrNilEvent
	}
	var t0 int64
	if s.tel != nil {
		s.tel.eventsSubmitted.Inc()
		if s.tel.sampler.Sample() {
			t0 = time.Now().UnixNano()
		}
	}
	if s.tr != nil && s.tr.prov && t0 == 0 {
		// Provenance stamps every item so every match reports its latency.
		t0 = time.Now().UnixNano()
	}
	s.intakeMu.RLock()
	seq := s.seq.Add(1)
	var tr *trace.Active
	if s.tr != nil {
		tr = s.tr.startTrace(seq, 1)
	}
	var err error
	if fi := s.fidx.Load(); fi != nil && !fi.Empty() {
		err = s.routeOne(ctx, fi, e, seq, t0, tr)
	} else {
		tr.Span(trace.StageEnqueue, -1, "broadcast")
		err = sessErr(s.pool.Broadcast(ctx, sessionItem{ev: e, seq: seq, t0: t0, tr: tr}))
	}
	s.intakeMu.RUnlock()
	if err != nil {
		return err
	}
	s.observeAdapt(e)
	return nil
}

// SubmitBatch broadcasts a timestamp-ordered batch of events to every lane
// as ONE queue item — one channel send, one worker wake-up and one lock
// round per lane for the whole batch, instead of one per event. It is
// semantically identical to submitting the events one by one: matches,
// watermarks and adaptivity observations are per event. The same ordering
// contract as Submit applies; the caller may reuse the slice as soon as the
// call returns. An empty batch is a no-op.
func (s *Session) SubmitBatch(events []*Event) error {
	return s.submitBatch(nil, events)
}

// submitBatch is SubmitBatch with a cancellable context, mirroring submit:
// sequence numbers are allocated and the broadcast happens under the intake
// read lock, the adaptivity observations after it, outside every lock.
func (s *Session) submitBatch(ctx context.Context, events []*Event) error {
	if len(events) == 0 {
		return nil
	}
	for _, e := range events {
		if e == nil {
			return ErrNilEvent
		}
	}
	// One defensive copy, shared read-only by every lane: the caller may
	// reuse its slice immediately, while workers are still processing.
	batch := make([]*Event, len(events))
	copy(batch, events)
	var t0 int64
	if s.tel != nil {
		s.tel.eventsSubmitted.Add(int64(len(batch)))
		s.tel.batchesSubmitted.Inc()
		if s.tel.sampler.Sample() {
			t0 = time.Now().UnixNano()
		}
	}
	if s.tr != nil && s.tr.prov && t0 == 0 {
		t0 = time.Now().UnixNano()
	}
	s.intakeMu.RLock()
	last := s.seq.Add(uint64(len(batch)))
	seq0 := last - uint64(len(batch)) + 1
	var tr *trace.Active
	if s.tr != nil {
		tr = s.tr.startTrace(seq0, len(batch))
	}
	var err error
	if fi := s.fidx.Load(); fi != nil && !fi.Empty() {
		err = s.routeBatch(ctx, fi, batch, seq0, t0, tr)
	} else {
		tr.Span(trace.StageEnqueue, -1, "broadcast")
		err = sessErr(s.pool.Broadcast(ctx, sessionItem{batch: batch, seq: seq0, t0: t0, tr: tr}))
	}
	s.intakeMu.RUnlock()
	if err != nil {
		return err
	}
	s.observeBatchAdapt(batch)
	return nil
}

// Run streams an event source through the session until the source is
// exhausted or the context is cancelled, starting the workers if needed.
// On normal end of source it drains the queues (a barrier, not a flush —
// detection continues across Runs) and returns nil; on cancellation it
// returns ctx.Err() without waiting for queued events. Matches flow to the
// registered sinks throughout; call Flush after the final Run to release
// end-of-stream pendings.
//
// Cancellation truncates the stream mid-broadcast: the final event may
// have reached only a prefix of the lanes (broadcast happens in
// registration order), so per-query results harvested after a cancelled
// Run are cut at slightly different stream positions. Treat them as
// partial; the cross-query equivalence guarantee holds only for streams
// that ended normally.
func (s *Session) Run(ctx context.Context, src EventSource) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if src == nil {
		return fmt.Errorf("cep: session: nil event source")
	}
	if err := s.ensureStarted(); err != nil {
		return err
	}
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		default:
		}
		e := src.Next()
		if e == nil {
			return s.Drain()
		}
		if err := s.submit(ctx, e); err != nil {
			return err
		}
	}
}

// Drain is a mid-stream barrier: it blocks until every event submitted
// before the call has been processed by every query. Engines are not
// flushed; detection continues seamlessly.
func (s *Session) Drain() error {
	return sessErr(s.pool.Drain())
}

// Process submits one event — the Detector view of the session. Matches
// are delivered asynchronously through the sinks (or accumulate for
// Flush), so Process always returns a nil match slice. The session starts
// implicitly on the first call.
func (s *Session) Process(e *Event) ([]*Match, error) {
	if e == nil {
		return nil, ErrNilEvent
	}
	if err := s.ensureStarted(); err != nil {
		return nil, err
	}
	return nil, s.Submit(e)
}

// ProcessBatch submits a whole batch — the BatchDetector view of the
// session. As with Process, matches are delivered asynchronously through
// the sinks, so the returned slice is always nil. The session starts
// implicitly on the first call.
func (s *Session) ProcessBatch(events []*Event) ([]*Match, error) {
	for _, e := range events {
		if e == nil {
			return nil, ErrNilEvent
		}
	}
	if len(events) == 0 {
		return nil, nil
	}
	if err := s.ensureStarted(); err != nil {
		return nil, err
	}
	return nil, s.SubmitBatch(events)
}

// Flush ends the stream: it stops intake, waits for every queued event,
// flushes and closes every query's detector, joins the workers, and
// returns the accumulated matches (of queries without a sink) concatenated
// in query registration order — so the output is reproducible run to run.
// The error is the first error any query reported. Flushing a flushed (or
// closed) session returns ErrClosed; flushing a never-started session
// closes it with no matches.
func (s *Session) Flush() ([]*Match, error) {
	if err := s.shutdown(); err != nil {
		return nil, err
	}
	var out []*Match
	for _, q := range s.queries {
		out = append(out, q.matches...)
	}
	return out, s.pool.Err()
}

// Close ends the stream and discards accumulated matches (sink deliveries
// still happen while draining, including end-of-stream flushes). It is
// idempotent: closing a closed or flushed session returns nil. Use Flush
// to collect the matches instead.
func (s *Session) Close() error {
	if err := s.shutdown(); err != nil {
		return nil // already shut down: idempotent
	}
	return s.pool.Err()
}

// shutdown stops intake, drains and joins the workers exactly once; a
// second call returns ErrClosed. Shutting down a never-started session
// closes the registered detectors inline, since no worker ever owned them.
func (s *Session) shutdown() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return fmt.Errorf("cep: session: %w", ErrClosed)
	}
	s.closed = true
	started := s.started
	s.mu.Unlock()
	if !started {
		// Mark the pool closed+joined (no workers ever ran), then close the
		// detectors the session took ownership of.
		_ = s.pool.Shutdown()
		for _, q := range s.queries {
			if err := q.det.Close(); err != nil {
				s.recordErr(q, err)
			}
		}
		return nil
	}
	err := sessErr(s.pool.Shutdown())
	s.tel.record(s.seq.Load(), "shutdown", "")
	// Persist the measured statistics (StatsPath) now that intake stopped;
	// a save failure is a session error, not a shutdown failure.
	if serr := s.saveStats(); serr != nil {
		s.pool.RecordErr(serr)
	}
	return err
}

// Results returns the accumulated matches per query (queries with a sink
// have none). It must be called after Flush or Close; before shutdown it
// returns nil.
func (s *Session) Results() map[string][]*Match {
	if !s.pool.Joined() {
		return nil
	}
	out := make(map[string][]*Match, len(s.queries))
	for _, q := range s.queries {
		out[q.name] = q.matches
	}
	return out
}

// Matches returns one query's accumulated matches after Flush or Close.
func (s *Session) Matches(query string) []*Match {
	if !s.pool.Joined() {
		return nil
	}
	if q, ok := s.byName[query]; ok {
		return q.matches
	}
	return nil
}

// Err returns the first error any query reported so far.
func (s *Session) Err() error { return s.pool.Err() }

// recordErr keeps the first query error.
func (s *Session) recordErr(q *sessionQuery, err error) {
	s.pool.RecordErr(fmt.Errorf("cep: query %q: %w", q.name, err))
}

// emit routes matches to the query sink, else the session sink, else the
// accumulation buffer.
func (s *Session) emit(q *sessionQuery, ms []*Match) {
	if len(ms) == 0 {
		return
	}
	if s.tel != nil {
		q.nmatches.Add(int64(len(ms)))
	}
	switch {
	case q.onMatch != nil:
		for _, m := range ms {
			q.onMatch(m)
		}
	case s.cfg.OnMatch != nil:
		for _, m := range ms {
			s.cfg.OnMatch(q.name, m)
		}
	default:
		q.matches = append(q.matches, ms...)
	}
}

// emitOne routes a single match.
func (s *Session) emitOne(q *sessionQuery, m *Match) {
	if s.tel != nil {
		q.nmatches.Inc()
	}
	switch {
	case q.onMatch != nil:
		q.onMatch(m)
	case s.cfg.OnMatch != nil:
		s.cfg.OnMatch(q.name, m)
	default:
		q.matches = append(q.matches, m)
	}
}

// laneShare carries a shared lane's optimizer decision for ShareReport,
// plus the members' final evaluated trees — the structure a drift check
// re-prices under fresh measurements.
type laneShare struct {
	members      []string
	trees        map[string]*plan.TreeNode
	restructured int
	nodes        int
	sharedNodes  int
	unshared     float64
	shared       float64
}

// sessionLane is one worker lane of the session: either a private lane
// driving a single query's Detector, or a shared lane evaluating one or
// more queries on an MQO DAG engine. The lane's worker goroutine owns all
// state reachable from it exclusively — except across a splice, where the
// drain barrier plus the queue hand the state over race-free.
type sessionLane struct {
	s   *Session
	idx int           // pool lane index (stable)
	q   *sessionQuery // private lane: the one query driven by this lane

	// shared lane: the MQO evaluation DAG and its member queries.
	eng     *mqo.Engine
	members map[string]*sessionQuery
	comp    int       // global sharing-component id
	gen     int       // re-optimization generation that built this lane
	info    laneShare // optimizer decision snapshot for ShareReport

	// Key-partitioned lane identity (parts <= 1 on unpartitioned lanes):
	// this lane owns partition index part of parts hash buckets over the
	// component's partAttr equi-join key; negSlots is the engine's
	// negation-intake slot boundary the router needs (negation hits must
	// never be partition-filtered).
	part     int
	parts    int
	partAttr string
	negSlots int

	// retired marks a lane spliced away (state adopted elsewhere): finish
	// is a no-op. discard marks a removed private query: finish closes the
	// detector without flushing. Both are written strictly before the
	// lane's queue closes, so the worker observes them.
	retired bool
	discard bool

	// selScratch is the worker-owned gather buffer for index-routed
	// batches on private lanes.
	selScratch []*Event

	// tc is the lane's telemetry block: the worker (and, for Stalls, the
	// stalled sender) increments, Metrics snapshots load. Counters stay
	// readable after the lane retires — tombstone lanes keep their totals,
	// which is what keeps the session-wide aggregates monotonic across
	// splices. Untouched when telemetry is disabled.
	tc telemetry.LaneCounters
}

// emitShared delivers one shared-lane match, serializing per query when the
// lane has partition siblings concurrently serving the same members.
func (l *sessionLane) emitShared(q *sessionQuery, m *Match) {
	if l.parts > 1 {
		q.emitMu.Lock()
		l.s.emitOne(q, m)
		q.emitMu.Unlock()
		return
	}
	l.s.emitOne(q, m)
}

// observe folds one processed item into the lane's telemetry: item/event/
// batch/match counts, plus the sampled detection latency when the item
// carried a submission stamp and completed matches.
func (l *sessionLane) observe(it sessionItem, events, matches int) {
	l.tc.Items.Inc()
	l.tc.Events.Add(int64(events))
	if it.batch != nil {
		l.tc.Batches.Inc()
	}
	if matches > 0 {
		l.tc.Matches.Add(int64(matches))
		if it.t0 != 0 {
			l.tc.Latency.ObserveN(time.Now().UnixNano()-it.t0, int64(matches))
		}
	}
}

// work processes one event on the lane's worker goroutine. On the first
// processing error a private query is marked dead and later events are
// dropped (the error is reported through Flush/Close/Err); the other lanes
// keep running.
func (l *sessionLane) work(it sessionItem) {
	if it.batch != nil {
		l.workBatch(it)
		return
	}
	it.tr.Span(trace.StageDequeue, l.idx, "")
	if l.eng != nil {
		var st0 mqo.EngineStats
		if it.tr != nil {
			st0 = l.eng.Stats()
		}
		var tms []mqo.Tagged
		if it.evSlots != nil {
			tms = l.eng.ProcessSelected(it.ev, it.seq, it.evSlots)
		} else {
			tms = l.eng.Process(it.ev, it.seq)
		}
		if it.tr != nil {
			l.engineSpan(it.tr, st0)
		}
		for _, tm := range tms {
			l.finishProv(tm.M, it.t0)
			l.emitShared(l.members[tm.Query], tm.M)
		}
		it.tr.Spanf(trace.StageEmit, l.idx, "matches=%d", len(tms))
		if l.s.tel != nil {
			l.observe(it, 1, len(tms))
		}
		return
	}
	q := l.q
	if q.dead {
		return
	}
	ms, err := q.det.Process(it.ev)
	if err != nil {
		l.s.recordErr(q, err)
		q.dead = true
		return
	}
	if l.s.tr != nil && l.s.tr.prov {
		l.attachProv(ms, it.t0)
	}
	l.s.emit(q, ms)
	it.tr.Spanf(trace.StageEmit, l.idx, "matches=%d", len(ms))
	if l.s.tel != nil {
		l.observe(it, 1, len(ms))
	}
}

// workBatch processes one batch item in a single wake-up. Shared lanes hand
// the whole batch to the DAG engine; private lanes use the detector's batch
// entry point when it has one, else fall back to per-event processing. The
// first error kills the query mid-batch, dropping its remainder — the same
// at-first-error semantics as the per-event path.
func (l *sessionLane) workBatch(it sessionItem) {
	it.tr.Span(trace.StageDequeue, l.idx, "")
	if l.eng != nil {
		var st0 mqo.EngineStats
		if it.tr != nil {
			st0 = l.eng.Stats()
		}
		var tms []mqo.Tagged
		if it.sel != nil {
			tms = l.eng.ProcessBatchSelected(it.batch, it.seq, it.sel, it.slotOff, it.slots)
		} else {
			tms = l.eng.ProcessBatch(it.batch, it.seq)
		}
		if it.tr != nil {
			l.engineSpan(it.tr, st0)
		}
		for _, tm := range tms {
			l.finishProv(tm.M, it.t0)
			l.emitShared(l.members[tm.Query], tm.M)
		}
		it.tr.Spanf(trace.StageEmit, l.idx, "matches=%d", len(tms))
		if l.s.tel != nil {
			n := len(it.batch)
			if it.sel != nil {
				n = len(it.sel)
			}
			l.observe(it, n, len(tms))
		}
		return
	}
	q := l.q
	if q.dead {
		return
	}
	prov := l.s.tr != nil && l.s.tr.prov
	evs := it.batch
	if it.sel != nil {
		// Index-routed batch: gather the lane's selected events into the
		// worker-owned scratch (detectors must not retain the slice).
		evs = l.selScratch[:0]
		for _, i := range it.sel {
			evs = append(evs, it.batch[i])
		}
		l.selScratch = evs
	}
	if bd, ok := q.det.(BatchDetector); ok {
		ms, err := bd.ProcessBatch(evs)
		if err != nil {
			l.s.recordErr(q, err)
			q.dead = true
			return
		}
		if prov {
			l.attachProv(ms, it.t0)
		}
		l.s.emit(q, ms)
		it.tr.Spanf(trace.StageEmit, l.idx, "matches=%d", len(ms))
		if l.s.tel != nil {
			l.observe(it, len(evs), len(ms))
		}
		return
	}
	matches := 0
	for _, ev := range evs {
		ms, err := q.det.Process(ev)
		if err != nil {
			l.s.recordErr(q, err)
			q.dead = true
			return
		}
		if prov {
			l.attachProv(ms, it.t0)
		}
		l.s.emit(q, ms)
		matches += len(ms)
	}
	it.tr.Spanf(trace.StageEmit, l.idx, "matches=%d", matches)
	if l.s.tel != nil {
		l.observe(it, len(evs), matches)
	}
}

// finish runs after the lane's queue closed: flush and close the engines.
func (l *sessionLane) finish() {
	if l.retired {
		return // spliced away: a successor lane owns the state now
	}
	if l.eng != nil {
		for _, tm := range l.eng.Flush() {
			// Flush-released pendings carry no submission stamp: their Prov
			// latency stays 0, mirroring the latency histogram's semantics.
			l.finishProv(tm.M, 0)
			l.emitShared(l.members[tm.Query], tm.M)
		}
		l.eng.Close()
		for _, q := range l.members {
			// The members' private runtimes never ran; release them anyway —
			// the session took ownership at registration. Partition siblings
			// all run this hook; only the member's owning lane (q.lane, the
			// partition-0 sibling) closes, so the runtime is closed once.
			if q.lane != l {
				continue
			}
			if err := q.det.Close(); err != nil {
				l.s.recordErr(q, err)
			}
		}
		return
	}
	q := l.q
	if !q.dead && !l.discard {
		ms, err := q.det.Flush()
		if err != nil {
			l.s.recordErr(q, err)
		}
		if l.s.tr != nil && l.s.tr.prov {
			l.attachProv(ms, 0)
		}
		l.s.emit(q, ms)
	}
	if err := q.det.Close(); err != nil {
		l.s.recordErr(q, err)
	}
}

// ShareReport summarizes what the shared-subplan optimizer has decided so
// far, in cost-model terms: how many queries are eligible for sharing, how
// many share an evaluation DAG (and which, lane by lane), how many had
// their plans restructured toward a common sub-join, the distinct DAG node
// counts, and the modeled unshared vs shared cost.
type ShareReport struct {
	Eligible     int
	Shared       int
	Restructured int
	Nodes        int
	SharedNodes  int
	UnsharedCost float64
	SharedCost   float64
	// Groups lists the member query names of each shared lane.
	Groups [][]string
	// Generation counts the incremental re-optimizations performed so far
	// (0 until the first live AddQuery/RemoveQuery touches a component).
	Generation int
	// Components describes each live sharing component.
	Components []ComponentReport
}

// ComponentReport describes one connected sharing component: its member
// query names (sorted), the number of worker lanes serving it (more than
// one when SessionConfig.SharedWorkers split its root fan-out or
// SessionConfig.PartitionWorkers hash-partitioned it), and the
// re-optimization generation that last rebuilt it. On an adaptive session
// (SessionConfig.Adaptive), DriftScore is the component's drift score at
// the last check and Reopts counts the drift re-optimizations of its
// lineage; see Session.DriftReport for the full drift state.
type ComponentReport struct {
	Members    []string
	Lanes      int
	Generation int
	DriftScore float64
	Reopts     int
	// Partitions and PartitionAttr describe a key-partitioned component:
	// its lanes each own one hash bucket of the PartitionAttr equi-join
	// key. 0 (and "") on unpartitioned components.
	Partitions    int
	PartitionAttr string
	// LaneQueues has one row per worker lane serving the component, in pool
	// lane order: the lane's partition id (-1 on unpartitioned lanes) and
	// its instantaneous queue depth and capacity.
	LaneQueues []ComponentLane
}

// ComponentLane is one worker lane row of a ComponentReport.
type ComponentLane struct {
	// Lane is the stable pool lane index.
	Lane int
	// Partition is the hash bucket this lane owns, -1 when the component is
	// not key-partitioned.
	Partition int
	// Depth and Capacity are the lane queue's instantaneous fill and size.
	Depth    int
	Capacity int
}

// ShareReport returns a snapshot of the optimizer's current decisions, or
// nil before the session started or when ShareSubplans is off. The
// snapshot is immutable and consistent — it reflects one instant of a
// session whose query set may be churning — but two calls around an
// AddQuery/RemoveQuery may differ arbitrarily; compare Generation (and the
// per-component generations) to detect intervening re-optimizations.
func (s *Session) ShareReport() *ShareReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.cfg.ShareSubplans || !s.started {
		return nil
	}
	rep := &ShareReport{Generation: s.reoptGen}
	for _, q := range s.queries {
		if q.eligible {
			rep.Eligible++
		}
	}
	type compAgg struct {
		members []string
		lanes   int
		gen     int
		parts   int
		attr    string
		rows    []ComponentLane
	}
	comps := map[int]*compAgg{}
	var compOrder []int
	for _, l := range *s.laneTab.Load() {
		if l.retired || l.eng == nil {
			continue
		}
		ca := comps[l.comp]
		if ca == nil {
			ca = &compAgg{}
			comps[l.comp] = ca
			compOrder = append(compOrder, l.comp)
		}
		// Partition siblings serve identical member sets; count the members
		// once (the partition-0 sibling speaks for the family).
		if l.parts <= 1 || l.part == 0 {
			ca.members = append(ca.members, l.info.members...)
		}
		ca.lanes++
		if l.gen > ca.gen {
			ca.gen = l.gen
		}
		if l.parts > 1 {
			ca.parts, ca.attr = l.parts, l.partAttr
		}
		row := ComponentLane{Lane: l.idx, Partition: -1}
		if l.parts > 1 {
			row.Partition = l.part
		}
		row.Depth, row.Capacity = s.pool.QueueStats(l.idx)
		ca.rows = append(ca.rows, row)
	}
	sort.Ints(compOrder)
	for _, id := range compOrder {
		ca := comps[id]
		if len(ca.members) < 2 {
			continue // an unshared eligible query on its own lane
		}
		members := append([]string(nil), ca.members...)
		sort.Strings(members)
		cr := ComponentReport{
			Members: members, Lanes: ca.lanes, Generation: ca.gen,
			Partitions: ca.parts, PartitionAttr: ca.attr, LaneQueues: ca.rows,
		}
		if s.adapt != nil && s.adapt.det != nil {
			if st, ok := s.adapt.det.Peek(id); ok {
				cr.DriftScore = st.Score
				cr.Reopts = st.Reopts
			}
		}
		rep.Components = append(rep.Components, cr)
		rep.Shared += len(ca.members)
	}
	for _, l := range *s.laneTab.Load() {
		if l.retired || l.eng == nil {
			continue
		}
		if ca := comps[l.comp]; ca == nil || len(ca.members) < 2 {
			continue
		}
		if l.parts > 1 && l.part != 0 {
			continue // cost/structure totals are per family, not per sibling
		}
		rep.Groups = append(rep.Groups, append([]string(nil), l.info.members...))
		rep.Restructured += l.info.restructured
		rep.Nodes += l.info.nodes
		rep.SharedNodes += l.info.sharedNodes
		rep.UnsharedCost += l.info.unshared
		// A partitioned lane's SharedCost is its per-lane share; the family
		// (reported once, via partition 0) costs parts times that.
		if l.parts > 1 {
			rep.SharedCost += l.info.shared * float64(l.parts)
		} else {
			rep.SharedCost += l.info.shared
		}
	}
	return rep
}

// mqoOpts returns the optimizer options the session runs under.
func (s *Session) mqoOpts() mqo.Options {
	return mqo.Options{GroupWorkers: s.cfg.SharedWorkers, Partitions: s.cfg.PartitionWorkers}
}

// mqoQuery lowers a registered query into the optimizer's input form.
func mqoQuery(q *sessionQuery) mqo.Query {
	return mqo.Query{Name: q.name, SP: q.rt.plan.Simple[0], Since: q.since}
}

// addLaneLocked appends a lane to both the pool and the lane table. The
// caller holds mu (and, on a running session, intakeMu).
func (s *Session) addLaneLocked(l *sessionLane) error {
	idx, err := s.pool.AddLaneRunning(s.cfg.QueueLen)
	if err != nil {
		return sessErr(err)
	}
	l.idx = idx
	tab := *s.laneTab.Load()
	next := make([]*sessionLane, len(tab), len(tab)+1)
	copy(next, tab)
	next = append(next, l)
	if idx != len(next)-1 {
		return fmt.Errorf("cep: internal: lane table out of sync (pool %d, table %d)", idx, len(next)-1)
	}
	s.laneTab.Store(&next)
	return nil
}

// engineLane wires a shared-group lane and points its members at it. For a
// key-partitioned group only the partition-0 sibling becomes the members'
// q.lane — the one lane per query that owns splice targeting and detector
// close; its component id still reaches every sibling via lane.comp.
func (s *Session) engineLane(g mqo.Group, comp int) *sessionLane {
	if s.tr != nil && s.tr.prov {
		g.Engine.EnableProvenance()
	}
	lane := &sessionLane{
		s: s, eng: g.Engine, members: map[string]*sessionQuery{},
		comp: comp, gen: s.reoptGen,
		part: g.Partition, parts: g.Partitions, partAttr: g.PartitionAttr,
		negSlots: g.Engine.NegSlotCount(),
		info: laneShare{
			members:      append([]string(nil), g.Members...),
			trees:        g.Trees,
			restructured: g.Restructured,
			nodes:        g.Nodes,
			sharedNodes:  g.SharedNodes,
			unshared:     g.UnsharedCost,
			shared:       g.SharedCost,
		},
	}
	for _, name := range g.Members {
		q := s.byName[name]
		lane.members[name] = q
		if g.Partitions <= 1 || g.Partition == 0 {
			q.lane = lane
		}
	}
	return lane
}

// buildLanes assigns every registered query to a worker lane at Start.
// Without ShareSubplans each query gets its own private lane; with it, the
// MQO optimizer canonicalizes the eligible queries' tree plans, groups
// overlapping queries whose sharing the cost model predicts to win onto
// shared evaluation lanes (splitting hot components across
// SessionConfig.SharedWorkers lanes), and gives every other eligible query
// a singleton DAG lane — the shape whose buffered state a later live
// re-optimization can adopt. Ineligible queries keep private lanes.
func (s *Session) buildLanes() error {
	var lanes []*sessionLane
	onShared := map[string]bool{}
	if s.cfg.ShareSubplans {
		var cand []mqo.Query
		for _, q := range s.queries {
			if q.rt == nil || q.qc == nil || !mqo.Eligible(q.rt.plan, q.qc.Strategy) {
				continue
			}
			q.eligible = true
			cand = append(cand, mqoQuery(q))
		}
		var groups []mqo.Group
		if len(cand) >= 2 {
			res, err := mqo.Optimize(cand, s.mqoOpts())
			if err != nil {
				return fmt.Errorf("cep: subplan sharing: %w", err)
			}
			groups = res.Groups
			for name, keys := range res.Keys {
				s.byName[name].shareKeys = keys
			}
			for _, name := range res.Private {
				g, err := mqo.Single(mqoQuery(s.byName[name]))
				if err != nil {
					return fmt.Errorf("cep: subplan sharing: %w", err)
				}
				groups = append(groups, g)
			}
		} else if len(cand) == 1 {
			q := s.byName[cand[0].Name]
			g, err := mqo.Single(cand[0])
			if err != nil {
				return fmt.Errorf("cep: subplan sharing: %w", err)
			}
			groups = append(groups, g)
			q.shareKeys = mqo.QueryKeys(cand[0], s.mqoOpts())
		}
		compOf := map[int]int{}
		for _, g := range groups {
			comp := s.nextComp
			if g.Component >= 0 {
				if id, ok := compOf[g.Component]; ok {
					comp = id
				} else {
					compOf[g.Component] = comp
					s.nextComp++
				}
			} else {
				s.nextComp++
			}
			lane := s.engineLane(g, comp)
			lanes = append(lanes, lane)
			for _, name := range g.Members {
				onShared[name] = true
			}
		}
	}
	for _, q := range s.queries {
		if onShared[q.name] {
			continue
		}
		if err := s.wrapPrivateAdaptive(q); err != nil {
			return err
		}
		lane := &sessionLane{s: s, q: q}
		q.lane = lane
		lanes = append(lanes, lane)
	}
	for i, lane := range lanes {
		lane.idx = i
		s.pool.AddLane(s.cfg.QueueLen)
	}
	s.laneTab.Store(&lanes)
	s.rebuildIndexLocked(nil)
	return nil
}

// spliceAddLocked brings a query live on a running session. The caller
// holds mu.
func (s *Session) spliceAddLocked(q *sessionQuery) error {
	s.intakeMu.Lock()
	defer s.intakeMu.Unlock()
	q.since = s.seq.Load() + 1
	q.eligible = s.cfg.ShareSubplans && q.rt != nil && q.qc != nil &&
		mqo.Eligible(q.rt.plan, q.qc.Strategy)

	if !q.eligible {
		if err := s.wrapPrivateAdaptive(q); err != nil {
			return err
		}
		lane := &sessionLane{s: s, q: q}
		q.lane = lane
		if err := s.addLaneLocked(lane); err != nil {
			return err
		}
		s.queries = append(s.queries, q)
		s.byName[q.name] = q
		dirty := map[string]bool{}
		s.laneDirtyTypes(dirty, lane)
		s.rebuildIndexLocked(dirty)
		return nil
	}

	mq := mqoQuery(q)
	keys := mqo.QueryKeys(mq, s.mqoOpts())
	affected := s.affectedLanesLocked(keys)
	if len(affected) == 0 {
		// Nothing to share with: a singleton DAG lane, ready for future
		// adoption. The feed keeps flowing — no drain needed, the new lane
		// sees exactly the events submitted after it appears.
		g, err := mqo.Single(mq)
		if err != nil {
			return fmt.Errorf("cep: subplan sharing: %w", err)
		}
		q.shareKeys = keys
		s.queries = append(s.queries, q)
		s.byName[q.name] = q
		lane := s.engineLane(g, s.nextComp)
		s.nextComp++
		if err := s.addLaneLocked(lane); err != nil {
			return err
		}
		dirty := map[string]bool{}
		s.laneDirtyTypes(dirty, lane)
		s.rebuildIndexLocked(dirty)
		return nil
	}

	// Re-optimize the affected component together with the new query,
	// splicing the drained DAG state into the successor lanes.
	if err := sessErr(s.pool.Drain()); err != nil {
		return err
	}
	input := []mqo.Query{mq}
	seen := map[string]bool{q.name: true}
	for _, lane := range affected {
		for _, m := range lane.members {
			// Partition siblings repeat the component's members; each query
			// enters the re-optimization once.
			if !seen[m.name] {
				seen[m.name] = true
				input = append(input, mqoQuery(m))
			}
		}
	}
	s.queries = append(s.queries, q)
	s.byName[q.name] = q
	if err := s.applySpliceLocked(affected, input); err != nil {
		s.dropQueryLocked(q)
		return err
	}
	return nil
}

// spliceRemoveLocked takes a query off a running session. The caller holds
// mu.
func (s *Session) spliceRemoveLocked(q *sessionQuery) error {
	s.intakeMu.Lock()
	defer s.intakeMu.Unlock()
	// Barrier: events already submitted are fully processed under the old
	// lane set, so deliveries for the removed name end here.
	if err := sessErr(s.pool.Drain()); err != nil {
		return err
	}
	lane := q.lane
	switch {
	case lane.eng == nil:
		// Private lane: retire it; the worker closes the detector without
		// flushing.
		dirty := map[string]bool{}
		s.laneDirtyTypes(dirty, lane)
		lane.discard = true
		if err := sessErr(s.pool.CloseLane(lane.idx)); err != nil {
			return err
		}
		s.dropQueryLocked(q)
		s.rebuildIndexLocked(dirty)
		return nil
	case len(lane.members) == 1:
		// Singleton DAG lane: discard the engine state, close the runtime
		// inline (the lane worker never drives member detectors except at
		// finish, which retirement skips).
		dirty := map[string]bool{}
		s.laneDirtyTypes(dirty, lane)
		lane.retired = true
		if err := sessErr(s.pool.CloseLane(lane.idx)); err != nil {
			return err
		}
		lane.eng.Close()
		lane.eng = nil
		lane.members = nil
		s.dropQueryLocked(q)
		s.rebuildIndexLocked(dirty)
		if err := q.det.Close(); err != nil {
			s.recordErr(q, err)
		}
		return nil
	default:
		// Shared member: re-optimize the component without it.
		affected := s.componentLanesLocked(lane.comp)
		var input []mqo.Query
		seen := map[string]bool{}
		for _, al := range affected {
			for _, m := range al.members {
				if m != q && !seen[m.name] {
					seen[m.name] = true
					input = append(input, mqoQuery(m))
				}
			}
		}
		s.dropQueryLocked(q)
		if err := s.applySpliceLocked(affected, input); err != nil {
			return err
		}
		if err := q.det.Close(); err != nil {
			s.recordErr(q, err)
		}
		return nil
	}
}

// affectedLanesLocked returns the live shared lanes whose members could
// share a sub-join under any of the given keys.
func (s *Session) affectedLanesLocked(keys []string) []*sessionLane {
	keySet := make(map[string]bool, len(keys))
	for _, k := range keys {
		keySet[k] = true
	}
	seen := map[*sessionLane]bool{}
	var out []*sessionLane
	for _, l := range *s.laneTab.Load() {
		if l.retired || l.eng == nil || seen[l] {
			continue
		}
		hit := false
	scan:
		for _, m := range l.members {
			for _, k := range m.shareKeys {
				if keySet[k] {
					hit = true
					break scan
				}
			}
		}
		if !hit {
			continue
		}
		// Pull in the whole component: a split component's other lanes must
		// re-optimize together with this one.
		for _, cl := range s.componentLanesLocked(l.comp) {
			if !seen[cl] {
				seen[cl] = true
				out = append(out, cl)
			}
		}
	}
	return out
}

// componentLanesLocked returns the live shared lanes of one component.
func (s *Session) componentLanesLocked(comp int) []*sessionLane {
	var out []*sessionLane
	for _, l := range *s.laneTab.Load() {
		if !l.retired && l.eng != nil && l.comp == comp {
			out = append(out, l)
		}
	}
	return out
}

// applySpliceLocked re-optimizes the given queries, adopts the affected
// lanes' DAG state into the successor engines, retires the old lanes and
// starts the new ones. The caller holds mu and intakeMu, and has drained
// the pool, so every engine involved is quiescent. On error the session is
// unchanged (all fallible work happens before the first mutation).
func (s *Session) applySpliceLocked(affected []*sessionLane, input []mqo.Query) error {
	var groups []mqo.Group
	if len(input) >= 2 {
		res, err := mqo.Optimize(input, s.mqoOpts())
		if err != nil {
			return fmt.Errorf("cep: subplan sharing: %w", err)
		}
		groups = res.Groups
		byName := map[string]mqo.Query{}
		for _, in := range input {
			byName[in.Name] = in
		}
		for _, name := range res.Private {
			g, err := mqo.Single(byName[name])
			if err != nil {
				return fmt.Errorf("cep: subplan sharing: %w", err)
			}
			groups = append(groups, g)
		}
		for name, keys := range res.Keys {
			s.byName[name].shareKeys = keys
		}
	} else if len(input) == 1 {
		g, err := mqo.Single(input[0])
		if err != nil {
			return fmt.Errorf("cep: subplan sharing: %w", err)
		}
		groups = append(groups, g)
		s.byName[input[0].Name].shareKeys = mqo.QueryKeys(input[0], s.mqoOpts())
	}

	spliceSeq := s.seq.Load() + 1
	olds := make([]*mqo.Engine, len(affected))
	dirty := map[string]bool{}
	for i, l := range affected {
		olds[i] = l.eng
		s.laneDirtyTypes(dirty, l)
	}
	s.reoptGen++
	for _, l := range affected {
		l.retired = true
		if err := sessErr(s.pool.CloseLane(l.idx)); err != nil {
			return err
		}
	}
	compOf := map[int]int{}
	for _, g := range groups {
		if s.tr != nil && s.tr.prov {
			// Must precede AdoptFrom: adoption copies per-instance seq
			// arrays only into engines that already track provenance.
			g.Engine.EnableProvenance()
		}
		g.Engine.AdoptFrom(olds, spliceSeq)
		comp := s.nextComp
		if g.Component >= 0 {
			if id, ok := compOf[g.Component]; ok {
				comp = id
			} else {
				compOf[g.Component] = comp
				s.nextComp++
			}
		} else {
			s.nextComp++
		}
		lane := s.engineLane(g, comp)
		if err := s.addLaneLocked(lane); err != nil {
			return err
		}
		s.laneDirtyTypes(dirty, lane)
	}
	s.rebuildIndexLocked(dirty)
	// The successors own the state now: release the predecessor engines so
	// the retired tombstone lanes stop holding a generation of buffered
	// partial matches alive. (The retired workers never touch l.eng — their
	// finish hook returns on the retired flag.)
	for _, l := range affected {
		l.eng.Close()
		l.eng = nil
		l.members = nil
	}
	s.tel.recordKV(spliceSeq-1, "splice",
		kv("gen", s.reoptGen), kv("lanes_before", len(affected)),
		kv("lanes_after", len(groups)), kv("queries", len(input)))
	return nil
}
