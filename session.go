package cep

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/mqo"
	"repro/internal/pool"
)

// QueryConfig declares one named query — pattern, statistics and tuning —
// as a plain struct, the config-first alternative to the functional-option
// constructors for the common path. Zero values select the defaults
// (AlgGreedy, SkipTillAnyMatch, no latency weighting).
type QueryConfig struct {
	// Name identifies the query inside a Session; match deliveries are
	// tagged with it. Required when registering on a Session.
	Name string
	// Pattern is the parsed pattern AST. Exactly one of Pattern, Query and
	// Source must be set.
	Pattern *Pattern
	// Query is the SASE-style textual pattern, parsed (and, when Registry
	// is set, validated) at construction — the string-first alternative to
	// building a *Pattern by hand.
	Query string
	// Source is the original name of the Query field, retained for
	// compatibility; new code should set Query.
	Source string
	// Registry optionally validates Query against declared schemas.
	Registry *Registry
	// Stats supplies the arrival rates and selectivities the planner
	// minimises over; nil plans under neutral defaults.
	Stats *Stats
	// Algorithm is the plan-generation algorithm (default AlgGreedy).
	Algorithm string
	// Strategy is the event selection strategy (default SkipTillAnyMatch).
	Strategy Strategy
	// LatencyWeight is α of the hybrid cost model Cost_trpt + α·Cost_lat.
	LatencyWeight float64
	// MaxKleeneBase bounds Kleene-closure power-set enumeration (0 keeps
	// the engine default).
	MaxKleeneBase int
	// OnMatch, when non-nil, receives this query's matches as they are
	// emitted instead of the Session accumulating (or forwarding) them.
	// Inside a Session it runs on the query's worker goroutine, in stream
	// order; in a standalone NewFromConfig runtime it is installed as the
	// engine's WithOnMatch callback.
	OnMatch func(*Match)
}

// pattern resolves the Pattern/Query/Source fields.
func (qc QueryConfig) pattern() (*Pattern, error) {
	src := qc.Query
	switch {
	case qc.Query != "" && qc.Source != "":
		return nil, fmt.Errorf("cep: query %q sets both Query and Source (Source is the deprecated alias)", qc.Name)
	case qc.Source != "":
		src = qc.Source
	}
	switch {
	case qc.Pattern != nil && src != "":
		return nil, fmt.Errorf("cep: query %q sets both Pattern and Query", qc.Name)
	case qc.Pattern != nil:
		return qc.Pattern, nil
	case src != "":
		if qc.Registry != nil {
			return ParsePatternWith(src, qc.Registry)
		}
		return ParsePattern(src)
	default:
		return nil, fmt.Errorf("cep: query %q has neither Pattern nor Query", qc.Name)
	}
}

// options lowers the declarative fields onto the functional options of New.
func (qc QueryConfig) options() []Option {
	var opts []Option
	if qc.Algorithm != "" {
		opts = append(opts, WithAlgorithm(qc.Algorithm))
	}
	if qc.Strategy != 0 {
		opts = append(opts, WithStrategy(qc.Strategy))
	}
	if qc.LatencyWeight != 0 {
		opts = append(opts, WithLatencyWeight(qc.LatencyWeight))
	}
	if qc.MaxKleeneBase != 0 {
		opts = append(opts, WithMaxKleeneBase(qc.MaxKleeneBase))
	}
	return opts
}

// NewFromConfig plans a single-query Runtime from a declarative QueryConfig
// — the config-first equivalent of New with functional options.
func NewFromConfig(qc QueryConfig) (*Runtime, error) {
	p, err := qc.pattern()
	if err != nil {
		return nil, err
	}
	opts := qc.options()
	if qc.OnMatch != nil {
		opts = append(opts, WithOnMatch(qc.OnMatch))
	}
	return New(p, qc.Stats, opts...)
}

// MatchSink receives matches tagged with the name of the query that emitted
// them. Sinks installed on a Session run on the worker goroutine of the
// emitting query: calls for one query are sequential and in stream order,
// but calls for different queries run concurrently, so a shared sink must
// be safe for concurrent use. A sink must not call back into the Session
// (Submit, Drain, Flush, Close) — the worker is blocked inside the
// callback, so waiting on its own queue deadlocks.
type MatchSink func(query string, m *Match)

// SessionConfig configures a Session. The zero value selects the defaults.
type SessionConfig struct {
	// QueueLen is the per-query bounded input queue capacity (default 256).
	// A full queue blocks Submit/Run until the query catches up — the
	// back-pressure bound on how far the feed can run ahead of the slowest
	// query.
	QueueLen int
	// OnMatch, when non-nil, receives every match of every query that does
	// not install its own QueryConfig.OnMatch. See MatchSink for the
	// concurrency rules.
	OnMatch MatchSink
	// ShareSubplans enables the multi-query shared-subplan optimizer
	// (internal/mqo): when the session starts, the compiled tree plans of
	// the registered queries are canonicalized, common sub-joins are
	// detected across queries, and groups that the cost model predicts to
	// benefit are evaluated on a shared evaluation DAG in which each common
	// sub-join buffer is computed once and its partial matches fan out to
	// every consuming query's residual plan. The per-query match sets are
	// identical to unshared evaluation.
	//
	// Sharing applies to queries registered with Register (not
	// RegisterDetector) that compile to a single conjunctive or sequence
	// disjunct without negation or Kleene closure under SkipTillAnyMatch —
	// the strategy whose match sets are provably plan-independent. All
	// other queries keep their private engines and per-query workers.
	ShareSubplans bool
}

func (c SessionConfig) withDefaults() SessionConfig {
	if c.QueueLen <= 0 {
		c.QueueLen = 256
	}
	return c
}

// Session is the front door for serving: any number of named queries over
// one event feed, each query on its own worker goroutine behind a bounded
// queue, under one lifecycle and one error model. It subsumes Fleet (many
// queries, one feed) and composes with ShardedRuntime (one query,
// partitioned feed): RegisterDetector accepts any Detector, so a query may
// itself be sharded, partitioned or adaptive. With
// SessionConfig.ShareSubplans, overlapping queries are grouped onto shared
// evaluation lanes that compute common sub-joins once.
//
// Lifecycle: NewSession → Register/RegisterDetector → Start (or let
// Run/Process auto-start) → Submit/Run → Flush (collect) or Close
// (discard). Drain is a mid-stream barrier. Matches flow to the per-query
// OnMatch, else to the session MatchSink, else they accumulate and are
// returned by Flush and Results.
//
// Session itself satisfies Detector: Process is Submit, and Flush ends the
// stream across every query, returning the accumulated matches in query
// registration order.
//
// The worker/lifecycle machinery — bounded queues, drain barriers,
// close-under-write-lock shutdown, first-error recording — is the shared
// internal/pool helper also driving ShardedRuntime. Worker-owned state
// (per-query accumulation buffers) is read only after the pool reports
// joined.
type Session struct {
	cfg  SessionConfig
	pool *pool.Pool[*Event]

	// mu guards registration (the query list) and the session-level
	// lifecycle decisions (started/closed); the pool owns the queue-level
	// machinery — bounded queues, drain barriers, close-under-write-lock
	// shutdown, joined, first-error — behind its own lock.
	mu      sync.Mutex
	started bool
	closed  bool
	queries []*sessionQuery
	byName  map[string]*sessionQuery
	lanes   []*sessionLane
	share   *ShareReport
}

// sessionQuery is one registered query. Before Start it is only a
// declaration; startLocked assigns it to a lane — a private lane driving
// its own Detector, or a shared MQO lane evaluating several queries at
// once.
type sessionQuery struct {
	name    string
	det     Detector
	rt      *Runtime     // non-nil when registered via Register (plan available for sharing)
	qc      *QueryConfig // non-nil when registered via Register
	onMatch func(*Match)
	dead    bool     // stop processing after the first error
	matches []*Match // accumulated when no sink applies
}

// NewSession builds an empty session.
func NewSession(cfg SessionConfig) *Session {
	s := &Session{cfg: cfg.withDefaults(), byName: make(map[string]*sessionQuery)}
	s.pool = pool.New(pool.Hooks[*Event]{
		Work:   func(lane int, e *Event) { s.lanes[lane].work(e) },
		Finish: func(lane int) { s.lanes[lane].finish() },
	})
	return s
}

// sessErr translates pool lifecycle sentinels into the session's error
// vocabulary.
func sessErr(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, pool.ErrClosed):
		return fmt.Errorf("cep: session: %w", ErrClosed)
	case errors.Is(err, pool.ErrNotStarted):
		return fmt.Errorf("cep: session not started")
	case errors.Is(err, pool.ErrStarted):
		return fmt.Errorf("cep: session already started")
	case errors.Is(err, pool.ErrNoLanes):
		return fmt.Errorf("cep: session has no registered queries")
	default:
		return err
	}
}

// Register plans the query described by the config and adds it under its
// name. Registration must happen before the session starts.
func (s *Session) Register(qc QueryConfig) error {
	// Delivery is the session's job: strip OnMatch from the runtime build
	// so the engine callback and the session sink never double-deliver.
	rtCfg := qc
	rtCfg.OnMatch = nil
	rt, err := NewFromConfig(rtCfg)
	if err != nil {
		return err
	}
	return s.register(qc.Name, rt, rt, &rtCfg, qc.OnMatch)
}

// RegisterDetector adds a pre-built detector — a Runtime, an
// AdaptiveRuntime, a ShardedRuntime, anything satisfying Detector — under
// the name. onMatch may be nil to fall through to the session sink (or
// accumulation). The session takes ownership: it will Flush and Close the
// detector. Detector queries never participate in subplan sharing — their
// evaluation plan is opaque to the session.
func (s *Session) RegisterDetector(name string, d Detector, onMatch func(*Match)) error {
	if d == nil {
		return fmt.Errorf("cep: query %q: nil detector", name)
	}
	return s.register(name, d, nil, nil, onMatch)
}

func (s *Session) register(name string, d Detector, rt *Runtime, qc *QueryConfig, onMatch func(*Match)) error {
	if name == "" {
		return fmt.Errorf("cep: query name must not be empty")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("cep: session: %w", ErrClosed)
	}
	if s.started {
		return fmt.Errorf("cep: session already started; register queries before Start")
	}
	if _, dup := s.byName[name]; dup {
		return fmt.Errorf("cep: duplicate query name %q", name)
	}
	q := &sessionQuery{name: name, det: d, rt: rt, qc: qc, onMatch: onMatch}
	s.queries = append(s.queries, q)
	s.byName[name] = q
	return nil
}

// Queries returns the registered query names in registration order.
func (s *Session) Queries() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, len(s.queries))
	for i, q := range s.queries {
		out[i] = q.name
	}
	return out
}

// Size returns the number of registered queries.
func (s *Session) Size() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queries)
}

// Start launches the session's workers: one per private query, plus one per
// shared MQO lane when ShareSubplans grouped queries together. It errors if
// the session is empty, already started, or closed. Run and Process start
// the session implicitly; explicit Start is for Submit-driven feeds.
func (s *Session) Start() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.startLocked(true)
}

func (s *Session) startLocked(explicit bool) error {
	if s.closed {
		return fmt.Errorf("cep: session: %w", ErrClosed)
	}
	if s.started {
		if explicit {
			return fmt.Errorf("cep: session already started")
		}
		return nil
	}
	if len(s.queries) == 0 {
		return fmt.Errorf("cep: session has no registered queries")
	}
	if err := s.buildLanes(); err != nil {
		return err
	}
	if err := sessErr(s.pool.Start()); err != nil {
		return err
	}
	s.started = true
	return nil
}

// ensureStarted starts the workers if they are not running yet. The
// fast path keeps the per-event cost of the steady state at one RLock for
// Detector-style callers driving Process per event.
func (s *Session) ensureStarted() error {
	if s.pool.Started() {
		return nil // closed is re-checked under the pool lock by the submit path
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.startLocked(false)
}

// Submit broadcasts one event to every lane, blocking on a full queue
// (back-pressure). All events must be submitted in timestamp order by a
// single goroutine (or with external ordering); queries consume them
// concurrently with each other, never with the submitter's next Submit of
// the same queue slot.
func (s *Session) Submit(e *Event) error {
	return s.submit(nil, e)
}

// submit broadcasts under the pool's read lock; a non-nil ctx makes each
// blocking queue send cancellable.
func (s *Session) submit(ctx context.Context, e *Event) error {
	if e == nil {
		return ErrNilEvent
	}
	return sessErr(s.pool.Broadcast(ctx, e))
}

// Run streams an event source through the session until the source is
// exhausted or the context is cancelled, starting the workers if needed.
// On normal end of source it drains the queues (a barrier, not a flush —
// detection continues across Runs) and returns nil; on cancellation it
// returns ctx.Err() without waiting for queued events. Matches flow to the
// registered sinks throughout; call Flush after the final Run to release
// end-of-stream pendings.
//
// Cancellation truncates the stream mid-broadcast: the final event may
// have reached only a prefix of the lanes (broadcast happens in
// registration order), so per-query results harvested after a cancelled
// Run are cut at slightly different stream positions. Treat them as
// partial; the cross-query equivalence guarantee holds only for streams
// that ended normally.
func (s *Session) Run(ctx context.Context, src EventSource) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if src == nil {
		return fmt.Errorf("cep: session: nil event source")
	}
	if err := s.ensureStarted(); err != nil {
		return err
	}
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		default:
		}
		e := src.Next()
		if e == nil {
			return s.Drain()
		}
		if err := s.submit(ctx, e); err != nil {
			return err
		}
	}
}

// Drain is a mid-stream barrier: it blocks until every event submitted
// before the call has been processed by every query. Engines are not
// flushed; detection continues seamlessly.
func (s *Session) Drain() error {
	return sessErr(s.pool.Drain())
}

// Process submits one event — the Detector view of the session. Matches
// are delivered asynchronously through the sinks (or accumulate for
// Flush), so Process always returns a nil match slice. The session starts
// implicitly on the first call.
func (s *Session) Process(e *Event) ([]*Match, error) {
	if e == nil {
		return nil, ErrNilEvent
	}
	if err := s.ensureStarted(); err != nil {
		return nil, err
	}
	return nil, s.Submit(e)
}

// Flush ends the stream: it stops intake, waits for every queued event,
// flushes and closes every query's detector, joins the workers, and
// returns the accumulated matches (of queries without a sink) concatenated
// in query registration order — so the output is reproducible run to run.
// The error is the first error any query reported. Flushing a flushed (or
// closed) session returns ErrClosed; flushing a never-started session
// closes it with no matches.
func (s *Session) Flush() ([]*Match, error) {
	if err := s.shutdown(); err != nil {
		return nil, err
	}
	var out []*Match
	for _, q := range s.queries {
		out = append(out, q.matches...)
	}
	return out, s.pool.Err()
}

// Close ends the stream and discards accumulated matches (sink deliveries
// still happen while draining, including end-of-stream flushes). It is
// idempotent: closing a closed or flushed session returns nil. Use Flush
// to collect the matches instead.
func (s *Session) Close() error {
	if err := s.shutdown(); err != nil {
		return nil // already shut down: idempotent
	}
	return s.pool.Err()
}

// shutdown stops intake, drains and joins the workers exactly once; a
// second call returns ErrClosed. Shutting down a never-started session
// closes the registered detectors inline, since no worker ever owned them.
func (s *Session) shutdown() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return fmt.Errorf("cep: session: %w", ErrClosed)
	}
	s.closed = true
	started := s.started
	s.mu.Unlock()
	if !started {
		// Mark the pool closed+joined (no workers ever ran), then close the
		// detectors the session took ownership of.
		_ = s.pool.Shutdown()
		for _, q := range s.queries {
			if err := q.det.Close(); err != nil {
				s.recordErr(q, err)
			}
		}
		return nil
	}
	return sessErr(s.pool.Shutdown())
}

// Results returns the accumulated matches per query (queries with a sink
// have none). It must be called after Flush or Close; before shutdown it
// returns nil.
func (s *Session) Results() map[string][]*Match {
	if !s.pool.Joined() {
		return nil
	}
	out := make(map[string][]*Match, len(s.queries))
	for _, q := range s.queries {
		out[q.name] = q.matches
	}
	return out
}

// Matches returns one query's accumulated matches after Flush or Close.
func (s *Session) Matches(query string) []*Match {
	if !s.pool.Joined() {
		return nil
	}
	if q, ok := s.byName[query]; ok {
		return q.matches
	}
	return nil
}

// Err returns the first error any query reported so far.
func (s *Session) Err() error { return s.pool.Err() }

// recordErr keeps the first query error.
func (s *Session) recordErr(q *sessionQuery, err error) {
	s.pool.RecordErr(fmt.Errorf("cep: query %q: %w", q.name, err))
}

// emit routes matches to the query sink, else the session sink, else the
// accumulation buffer.
func (s *Session) emit(q *sessionQuery, ms []*Match) {
	if len(ms) == 0 {
		return
	}
	switch {
	case q.onMatch != nil:
		for _, m := range ms {
			q.onMatch(m)
		}
	case s.cfg.OnMatch != nil:
		for _, m := range ms {
			s.cfg.OnMatch(q.name, m)
		}
	default:
		q.matches = append(q.matches, ms...)
	}
}

// emitOne routes a single match.
func (s *Session) emitOne(q *sessionQuery, m *Match) {
	switch {
	case q.onMatch != nil:
		q.onMatch(m)
	case s.cfg.OnMatch != nil:
		s.cfg.OnMatch(q.name, m)
	default:
		q.matches = append(q.matches, m)
	}
}

// sessionLane is one worker lane of the session: either a private lane
// driving a single query's Detector, or a shared lane evaluating a group of
// overlapping queries on one MQO DAG engine. The lane's worker goroutine
// owns all state reachable from it exclusively.
type sessionLane struct {
	s *Session
	q *sessionQuery // private lane: the one query driven by this lane

	// shared lane: the MQO evaluation DAG and its member queries.
	eng     *mqo.Engine
	members map[string]*sessionQuery
}

// work processes one event on the lane's worker goroutine. On the first
// processing error a private query is marked dead and later events are
// dropped (the error is reported through Flush/Close/Err); the other lanes
// keep running.
func (l *sessionLane) work(e *Event) {
	if l.eng != nil {
		for _, tm := range l.eng.Process(e) {
			l.s.emitOne(l.members[tm.Query], tm.M)
		}
		return
	}
	q := l.q
	if q.dead {
		return
	}
	ms, err := q.det.Process(e)
	if err != nil {
		l.s.recordErr(q, err)
		q.dead = true
		return
	}
	l.s.emit(q, ms)
}

// finish runs after the lane's queue closed: flush and close the engines.
func (l *sessionLane) finish() {
	if l.eng != nil {
		for _, tm := range l.eng.Flush() {
			l.s.emitOne(l.members[tm.Query], tm.M)
		}
		l.eng.Close()
		for _, q := range l.members {
			// The members' private runtimes never ran; release them anyway —
			// the session took ownership at registration.
			if err := q.det.Close(); err != nil {
				l.s.recordErr(q, err)
			}
		}
		return
	}
	q := l.q
	if !q.dead {
		ms, err := q.det.Flush()
		if err != nil {
			l.s.recordErr(q, err)
		}
		l.s.emit(q, ms)
	}
	if err := q.det.Close(); err != nil {
		l.s.recordErr(q, err)
	}
}

// ShareReport summarizes what the shared-subplan optimizer decided at
// Start, in cost-model terms: how many queries were eligible for sharing,
// how many share an evaluation DAG (and which, lane by lane), how many had
// their plans restructured toward a common sub-join, the distinct DAG node
// counts, and the modeled unshared vs shared cost.
type ShareReport struct {
	Eligible     int
	Shared       int
	Restructured int
	Nodes        int
	SharedNodes  int
	UnsharedCost float64
	SharedCost   float64
	// Groups lists the member query names of each shared lane.
	Groups [][]string
}

// ShareReport returns the optimizer's decision report, or nil before the
// session started or when ShareSubplans is off.
func (s *Session) ShareReport() *ShareReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.share
}

// buildLanes assigns every registered query to a worker lane. Without
// ShareSubplans each query gets its own private lane; with it, the MQO
// optimizer canonicalizes the eligible queries' tree plans, groups
// overlapping queries whose sharing the cost model predicts to win onto
// shared evaluation lanes, and leaves the rest on private lanes (keeping
// their worker-per-query parallelism).
func (s *Session) buildLanes() error {
	s.lanes = s.lanes[:0]
	sharedBy := map[string]*sessionLane{}
	if s.cfg.ShareSubplans {
		var cand []mqo.Query
		for _, q := range s.queries {
			if q.rt == nil || q.qc == nil {
				continue
			}
			if !mqo.Eligible(q.rt.plan, q.qc.Strategy) {
				continue
			}
			cand = append(cand, mqo.Query{Name: q.name, SP: q.rt.plan.Simple[0]})
		}
		report := &ShareReport{Eligible: len(cand)}
		if len(cand) >= 2 {
			res, err := mqo.Optimize(cand, mqo.Options{})
			if err != nil {
				return fmt.Errorf("cep: subplan sharing: %w", err)
			}
			for _, g := range res.Groups {
				lane := &sessionLane{s: s, eng: g.Engine, members: map[string]*sessionQuery{}}
				for _, name := range g.Members {
					q := s.byName[name]
					lane.members[name] = q
					sharedBy[name] = lane
				}
				s.lanes = append(s.lanes, lane)
				s.pool.AddLane(s.cfg.QueueLen)
				report.Groups = append(report.Groups, append([]string(nil), g.Members...))
			}
			report.Shared = res.Report.Shared
			report.Restructured = res.Report.Restructured
			report.Nodes = res.Report.Nodes
			report.SharedNodes = res.Report.SharedNodes
			report.UnsharedCost = res.Report.UnsharedCost
			report.SharedCost = res.Report.SharedCost
		}
		s.share = report
	}
	for _, q := range s.queries {
		if sharedBy[q.name] != nil {
			continue
		}
		s.lanes = append(s.lanes, &sessionLane{s: s, q: q})
		s.pool.AddLane(s.cfg.QueueLen)
	}
	return nil
}
