package cep

import (
	"context"
	"fmt"
	"sync"
)

// QueryConfig declares one named query — pattern, statistics and tuning —
// as a plain struct, the config-first alternative to the functional-option
// constructors for the common path. Zero values select the defaults
// (AlgGreedy, SkipTillAnyMatch, no latency weighting).
type QueryConfig struct {
	// Name identifies the query inside a Session; match deliveries are
	// tagged with it. Required when registering on a Session.
	Name string
	// Pattern is the parsed pattern AST. Exactly one of Pattern and Source
	// must be set.
	Pattern *Pattern
	// Source is the SASE-style textual pattern, parsed (and, when Registry
	// is set, validated) at construction.
	Source string
	// Registry optionally validates Source against declared schemas.
	Registry *Registry
	// Stats supplies the arrival rates and selectivities the planner
	// minimises over; nil plans under neutral defaults.
	Stats *Stats
	// Algorithm is the plan-generation algorithm (default AlgGreedy).
	Algorithm string
	// Strategy is the event selection strategy (default SkipTillAnyMatch).
	Strategy Strategy
	// LatencyWeight is α of the hybrid cost model Cost_trpt + α·Cost_lat.
	LatencyWeight float64
	// MaxKleeneBase bounds Kleene-closure power-set enumeration (0 keeps
	// the engine default).
	MaxKleeneBase int
	// OnMatch, when non-nil, receives this query's matches as they are
	// emitted instead of the Session accumulating (or forwarding) them.
	// Inside a Session it runs on the query's worker goroutine, in stream
	// order; in a standalone NewFromConfig runtime it is installed as the
	// engine's WithOnMatch callback.
	OnMatch func(*Match)
}

// pattern resolves the Pattern/Source pair.
func (qc QueryConfig) pattern() (*Pattern, error) {
	switch {
	case qc.Pattern != nil && qc.Source != "":
		return nil, fmt.Errorf("cep: query %q sets both Pattern and Source", qc.Name)
	case qc.Pattern != nil:
		return qc.Pattern, nil
	case qc.Source != "":
		if qc.Registry != nil {
			return ParsePatternWith(qc.Source, qc.Registry)
		}
		return ParsePattern(qc.Source)
	default:
		return nil, fmt.Errorf("cep: query %q has neither Pattern nor Source", qc.Name)
	}
}

// options lowers the declarative fields onto the functional options of New.
func (qc QueryConfig) options() []Option {
	var opts []Option
	if qc.Algorithm != "" {
		opts = append(opts, WithAlgorithm(qc.Algorithm))
	}
	if qc.Strategy != 0 {
		opts = append(opts, WithStrategy(qc.Strategy))
	}
	if qc.LatencyWeight != 0 {
		opts = append(opts, WithLatencyWeight(qc.LatencyWeight))
	}
	if qc.MaxKleeneBase != 0 {
		opts = append(opts, WithMaxKleeneBase(qc.MaxKleeneBase))
	}
	return opts
}

// NewFromConfig plans a single-query Runtime from a declarative QueryConfig
// — the config-first equivalent of New with functional options.
func NewFromConfig(qc QueryConfig) (*Runtime, error) {
	p, err := qc.pattern()
	if err != nil {
		return nil, err
	}
	opts := qc.options()
	if qc.OnMatch != nil {
		opts = append(opts, WithOnMatch(qc.OnMatch))
	}
	return New(p, qc.Stats, opts...)
}

// MatchSink receives matches tagged with the name of the query that emitted
// them. Sinks installed on a Session run on the worker goroutine of the
// emitting query: calls for one query are sequential and in stream order,
// but calls for different queries run concurrently, so a shared sink must
// be safe for concurrent use. A sink must not call back into the Session
// (Submit, Drain, Flush, Close) — the worker is blocked inside the
// callback, so waiting on its own queue deadlocks.
type MatchSink func(query string, m *Match)

// SessionConfig configures a Session. The zero value selects the defaults.
type SessionConfig struct {
	// QueueLen is the per-query bounded input queue capacity (default 256).
	// A full queue blocks Submit/Run until the query catches up — the
	// back-pressure bound on how far the feed can run ahead of the slowest
	// query.
	QueueLen int
	// OnMatch, when non-nil, receives every match of every query that does
	// not install its own QueryConfig.OnMatch. See MatchSink for the
	// concurrency rules.
	OnMatch MatchSink
}

func (c SessionConfig) withDefaults() SessionConfig {
	if c.QueueLen <= 0 {
		c.QueueLen = 256
	}
	return c
}

// Session is the front door for serving: any number of named queries over
// one event feed, each query on its own worker goroutine behind a bounded
// queue, under one lifecycle and one error model. It subsumes Fleet (many
// queries, one feed) and composes with ShardedRuntime (one query,
// partitioned feed): RegisterDetector accepts any Detector, so a query may
// itself be sharded, partitioned or adaptive.
//
// Lifecycle: NewSession → Register/RegisterDetector → Start (or let
// Run/Process auto-start) → Submit/Run → Flush (collect) or Close
// (discard). Drain is a mid-stream barrier. Matches flow to the per-query
// OnMatch, else to the session MatchSink, else they accumulate and are
// returned by Flush and Results.
//
// Session itself satisfies Detector: Process is Submit, and Flush ends the
// stream across every query, returning the accumulated matches in query
// registration order.
type Session struct {
	cfg SessionConfig

	// mu guards the lifecycle flags and the query list. Submitters hold the
	// read lock across their queue sends; Flush takes the write lock to
	// flip closed and close the queues, so no send can race a channel
	// close. joined flips only after the workers are gone: it is the flag
	// that makes reading q.matches safe, so Results/Matches gate on it
	// rather than on closed (which is set while workers may still be
	// draining).
	mu      sync.RWMutex
	started bool
	closed  bool
	joined  bool
	queries []*sessionQuery
	byName  map[string]*sessionQuery
	wg      sync.WaitGroup

	// errMu guards err separately from mu: workers record errors while
	// producers may hold mu's read lock blocked on that worker's full
	// queue.
	errMu sync.Mutex
	err   error // first query error
}

// sessionQuery is one registered query: a Detector driven by a dedicated
// worker goroutine off a bounded feed.
type sessionQuery struct {
	name    string
	det     Detector
	feed    chan sessionMsg
	onMatch func(*Match)
	dead    bool     // stop processing after the first error
	matches []*Match // accumulated when no sink applies
}

// sessionMsg is one unit on a query feed: an event or a drain barrier.
type sessionMsg struct {
	ev    *Event
	drain *sync.WaitGroup
}

// NewSession builds an empty session.
func NewSession(cfg SessionConfig) *Session {
	return &Session{cfg: cfg.withDefaults(), byName: make(map[string]*sessionQuery)}
}

// Register plans the query described by the config and adds it under its
// name. Registration must happen before the session starts.
func (s *Session) Register(qc QueryConfig) error {
	// Delivery is the session's job: strip OnMatch from the runtime build
	// so the engine callback and the session sink never double-deliver.
	rtCfg := qc
	rtCfg.OnMatch = nil
	rt, err := NewFromConfig(rtCfg)
	if err != nil {
		return err
	}
	return s.RegisterDetector(qc.Name, rt, qc.OnMatch)
}

// RegisterDetector adds a pre-built detector — a Runtime, an
// AdaptiveRuntime, a ShardedRuntime, anything satisfying Detector — under
// the name. onMatch may be nil to fall through to the session sink (or
// accumulation). The session takes ownership: it will Flush and Close the
// detector.
func (s *Session) RegisterDetector(name string, d Detector, onMatch func(*Match)) error {
	if name == "" {
		return fmt.Errorf("cep: query name must not be empty")
	}
	if d == nil {
		return fmt.Errorf("cep: query %q: nil detector", name)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("cep: session: %w", ErrClosed)
	}
	if s.started {
		return fmt.Errorf("cep: session already started; register queries before Start")
	}
	if _, dup := s.byName[name]; dup {
		return fmt.Errorf("cep: duplicate query name %q", name)
	}
	q := &sessionQuery{
		name:    name,
		det:     d,
		feed:    make(chan sessionMsg, s.cfg.QueueLen),
		onMatch: onMatch,
	}
	s.queries = append(s.queries, q)
	s.byName[name] = q
	return nil
}

// Queries returns the registered query names in registration order.
func (s *Session) Queries() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, len(s.queries))
	for i, q := range s.queries {
		out[i] = q.name
	}
	return out
}

// Size returns the number of registered queries.
func (s *Session) Size() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.queries)
}

// Start launches one worker goroutine per registered query. It errors if
// the session is empty, already started, or closed. Run and Process start
// the session implicitly; explicit Start is for Submit-driven feeds.
func (s *Session) Start() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.startLocked(true)
}

func (s *Session) startLocked(explicit bool) error {
	if s.closed {
		return fmt.Errorf("cep: session: %w", ErrClosed)
	}
	if s.started {
		if explicit {
			return fmt.Errorf("cep: session already started")
		}
		return nil
	}
	if len(s.queries) == 0 {
		return fmt.Errorf("cep: session has no registered queries")
	}
	s.started = true
	for _, q := range s.queries {
		s.wg.Add(1)
		go s.runQuery(q)
	}
	return nil
}

// ensureStarted starts the workers if they are not running yet. The
// read-lock fast path keeps the per-event cost of the steady state at one
// RLock for Detector-style callers driving Process per event.
func (s *Session) ensureStarted() error {
	s.mu.RLock()
	started := s.started
	s.mu.RUnlock()
	if started {
		return nil // closed is re-checked under the lock by the submit path
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.startLocked(false)
}

// openLocked reports whether the session is accepting events; the caller
// holds at least the read lock.
func (s *Session) openLocked() error {
	if s.closed {
		return fmt.Errorf("cep: session: %w", ErrClosed)
	}
	if !s.started {
		return fmt.Errorf("cep: session not started")
	}
	return nil
}

// Submit broadcasts one event to every query, blocking on a full queue
// (back-pressure). All events must be submitted in timestamp order by a
// single goroutine (or with external ordering); queries consume them
// concurrently with each other, never with the submitter's next Submit of
// the same queue slot.
func (s *Session) Submit(e *Event) error {
	return s.submit(nil, e)
}

// submit broadcasts under the read lock; a non-nil ctx makes each blocking
// queue send cancellable.
func (s *Session) submit(ctx context.Context, e *Event) error {
	if e == nil {
		return ErrNilEvent
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if err := s.openLocked(); err != nil {
		return err
	}
	msg := sessionMsg{ev: e}
	for _, q := range s.queries {
		if ctx == nil {
			q.feed <- msg
			continue
		}
		select {
		case q.feed <- msg:
		default:
			// Queue full: block on the send, but stay cancellable.
			select {
			case q.feed <- msg:
			case <-ctx.Done():
				return ctx.Err()
			}
		}
	}
	return nil
}

// Run streams an event source through the session until the source is
// exhausted or the context is cancelled, starting the workers if needed.
// On normal end of source it drains the queues (a barrier, not a flush —
// detection continues across Runs) and returns nil; on cancellation it
// returns ctx.Err() without waiting for queued events. Matches flow to the
// registered sinks throughout; call Flush after the final Run to release
// end-of-stream pendings.
//
// Cancellation truncates the stream mid-broadcast: the final event may
// have reached only a prefix of the queries (broadcast happens in
// registration order), so per-query results harvested after a cancelled
// Run are cut at slightly different stream positions. Treat them as
// partial; the cross-query equivalence guarantee holds only for streams
// that ended normally.
func (s *Session) Run(ctx context.Context, src EventSource) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if src == nil {
		return fmt.Errorf("cep: session: nil event source")
	}
	if err := s.ensureStarted(); err != nil {
		return err
	}
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		default:
		}
		e := src.Next()
		if e == nil {
			return s.Drain()
		}
		if err := s.submit(ctx, e); err != nil {
			return err
		}
	}
}

// Drain is a mid-stream barrier: it blocks until every event submitted
// before the call has been processed by every query. Engines are not
// flushed; detection continues seamlessly.
func (s *Session) Drain() error {
	s.mu.RLock()
	if err := s.openLocked(); err != nil {
		s.mu.RUnlock()
		return err
	}
	var barrier sync.WaitGroup
	barrier.Add(len(s.queries))
	for _, q := range s.queries {
		q.feed <- sessionMsg{drain: &barrier}
	}
	// Wait outside the lock: the tokens are enqueued, so the barrier
	// completes even if a concurrent Flush closes the queues meanwhile.
	s.mu.RUnlock()
	barrier.Wait()
	return nil
}

// Process submits one event — the Detector view of the session. Matches
// are delivered asynchronously through the sinks (or accumulate for
// Flush), so Process always returns a nil match slice. The session starts
// implicitly on the first call.
func (s *Session) Process(e *Event) ([]*Match, error) {
	if e == nil {
		return nil, ErrNilEvent
	}
	if err := s.ensureStarted(); err != nil {
		return nil, err
	}
	return nil, s.Submit(e)
}

// Flush ends the stream: it stops intake, waits for every queued event,
// flushes and closes every query's detector, joins the workers, and
// returns the accumulated matches (of queries without a sink) concatenated
// in query registration order — so the output is reproducible run to run.
// The error is the first error any query reported. Flushing a flushed (or
// closed) session returns ErrClosed; flushing a never-started session
// closes it with no matches.
func (s *Session) Flush() ([]*Match, error) {
	if err := s.shutdown(); err != nil {
		return nil, err
	}
	var out []*Match
	for _, q := range s.queries {
		out = append(out, q.matches...)
	}
	s.errMu.Lock()
	err := s.err
	s.errMu.Unlock()
	return out, err
}

// Close ends the stream and discards accumulated matches (sink deliveries
// still happen while draining, including end-of-stream flushes). It is
// idempotent: closing a closed or flushed session returns nil. Use Flush
// to collect the matches instead.
func (s *Session) Close() error {
	if err := s.shutdown(); err != nil {
		return nil // already shut down: idempotent
	}
	s.errMu.Lock()
	defer s.errMu.Unlock()
	return s.err
}

// shutdown flips closed, closes the feeds and joins the workers exactly
// once; a second call returns ErrClosed.
func (s *Session) shutdown() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return fmt.Errorf("cep: session: %w", ErrClosed)
	}
	s.closed = true
	if !s.started {
		// Close the registered detectors even though no worker ever ran.
		for _, q := range s.queries {
			if err := q.det.Close(); err != nil {
				s.recordErr(fmt.Errorf("cep: query %q: %w", q.name, err))
			}
		}
		s.joined = true
		s.mu.Unlock()
		return nil
	}
	// Close the queues while still holding the write lock: submitters hold
	// the read lock across their sends, so none can be mid-send here.
	for _, q := range s.queries {
		close(q.feed)
	}
	s.mu.Unlock()
	s.wg.Wait()
	s.mu.Lock()
	s.joined = true
	s.mu.Unlock()
	return nil
}

// Results returns the accumulated matches per query (queries with a sink
// have none). It must be called after Flush or Close; before shutdown it
// returns nil.
func (s *Session) Results() map[string][]*Match {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if !s.joined {
		return nil
	}
	out := make(map[string][]*Match, len(s.queries))
	for _, q := range s.queries {
		out[q.name] = q.matches
	}
	return out
}

// Matches returns one query's accumulated matches after Flush or Close.
func (s *Session) Matches(query string) []*Match {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if !s.joined {
		return nil
	}
	if q, ok := s.byName[query]; ok {
		return q.matches
	}
	return nil
}

// Err returns the first error any query reported so far.
func (s *Session) Err() error {
	s.errMu.Lock()
	defer s.errMu.Unlock()
	return s.err
}

// recordErr keeps the first query error.
func (s *Session) recordErr(err error) {
	s.errMu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.errMu.Unlock()
}

// runQuery is the worker loop: it owns the query's detector exclusively.
// On the first processing error the query is marked dead and later events
// are dropped (the error is reported through Flush/Close/Err); the other
// queries keep running.
func (s *Session) runQuery(q *sessionQuery) {
	defer s.wg.Done()
	for msg := range q.feed {
		if msg.drain != nil {
			msg.drain.Done()
			continue
		}
		if q.dead {
			continue
		}
		ms, err := q.det.Process(msg.ev)
		if err != nil {
			s.recordErr(fmt.Errorf("cep: query %q: %w", q.name, err))
			q.dead = true
			continue
		}
		s.emit(q, ms)
	}
	if !q.dead {
		ms, err := q.det.Flush()
		if err != nil {
			s.recordErr(fmt.Errorf("cep: query %q: %w", q.name, err))
		}
		s.emit(q, ms)
	}
	if err := q.det.Close(); err != nil {
		s.recordErr(fmt.Errorf("cep: query %q: %w", q.name, err))
	}
}

// emit routes matches to the query sink, else the session sink, else the
// accumulation buffer.
func (s *Session) emit(q *sessionQuery, ms []*Match) {
	if len(ms) == 0 {
		return
	}
	switch {
	case q.onMatch != nil:
		for _, m := range ms {
			q.onMatch(m)
		}
	case s.cfg.OnMatch != nil:
		for _, m := range ms {
			s.cfg.OnMatch(q.name, m)
		}
	default:
		q.matches = append(q.matches, ms...)
	}
}
