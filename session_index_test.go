package cep

import (
	"context"
	"math"
	"sync/atomic"
	"testing"

	"repro/internal/workload"
)

// TestFilterIndexEquivalence is the routed-feed correctness property: a
// Session with the ingress filter index enabled must produce, per query,
// byte-identical ordered match sets to independent Runtime.ProcessAll runs
// — with private lanes and with shared DAG lanes.
func TestFilterIndexEquivalence(t *testing.T) {
	stocks := workload.NewStocks(workload.StockConfig{
		Symbols: 6, Events: 4000, Seed: 11, MinRate: 1, MaxRate: 5,
	})
	events := stocks.Generate()
	queries := stockQueries(t, stocks.Registry, events)

	want := make(map[string]string, len(queries))
	total := 0
	for _, qc := range queries {
		rt, err := NewFromConfig(qc)
		if err != nil {
			t.Fatal(err)
		}
		ms := processAll(t, rt, workload.ResetStream(events))
		want[qc.Name] = orderedKeys(ms)
		total += len(ms)
	}
	if total == 0 {
		t.Fatal("workload produced no matches; equivalence test is vacuous")
	}

	for _, share := range []bool{false, true} {
		s := NewSession(SessionConfig{QueueLen: 32, FilterIndex: true, ShareSubplans: share})
		for _, qc := range queries {
			if err := s.Register(qc); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Run(context.Background(), NewStream(workload.ResetStream(events))); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Flush(); err != nil {
			t.Fatal(err)
		}
		results := s.Results()
		for _, qc := range queries {
			if got := orderedKeys(results[qc.Name]); got != want[qc.Name] {
				t.Errorf("share=%v query %q: indexed session diverges from independent runtime (%d vs reference matches)",
					share, qc.Name, len(results[qc.Name]))
			}
		}
	}
}

// TestFilterIndexEquivalenceBatch repeats the property over SubmitBatch —
// the selection-routed batch path — including an always-lane (an opaque
// detector) sharing the session.
func TestFilterIndexEquivalenceBatch(t *testing.T) {
	stocks := workload.NewStocks(workload.StockConfig{
		Symbols: 6, Events: 4000, Seed: 7, MinRate: 1, MaxRate: 5,
	})
	events := stocks.Generate()
	queries := stockQueries(t, stocks.Registry, events)

	want := make(map[string]string, len(queries))
	for _, qc := range queries {
		rt, err := NewFromConfig(qc)
		if err != nil {
			t.Fatal(err)
		}
		want[qc.Name] = orderedKeys(processAll(t, rt, workload.ResetStream(events)))
	}
	detRT, err := NewFromConfig(queries[0])
	if err != nil {
		t.Fatal(err)
	}

	s := NewSession(SessionConfig{QueueLen: 32, FilterIndex: true})
	for _, qc := range queries {
		if err := s.Register(qc); err != nil {
			t.Fatal(err)
		}
	}
	var detMatches []*Match
	if err := s.RegisterDetector("opaque", detRT, func(m *Match) { detMatches = append(detMatches, m) }); err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	stream := workload.ResetStream(events)
	for len(stream) > 0 {
		n := 97
		if n > len(stream) {
			n = len(stream)
		}
		if err := s.SubmitBatch(stream[:n]); err != nil {
			t.Fatal(err)
		}
		stream = stream[n:]
	}
	if _, err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	results := s.Results()
	for _, qc := range queries {
		if got := orderedKeys(results[qc.Name]); got != want[qc.Name] {
			t.Errorf("query %q: batched indexed session diverges from reference (%d matches)",
				qc.Name, len(results[qc.Name]))
		}
	}
	// The always-lane detector saw the full broadcast stream.
	if got := orderedKeys(detMatches); got != want[queries[0].Name] {
		t.Errorf("opaque detector lane diverges from reference (%d matches)", len(detMatches))
	}
}

// indexReportSession builds the hand-pinned two-type setup: two private
// queries over A and B where only the A position carries constant filters.
func indexReportSession(t *testing.T, filterIndex bool) *Session {
	t.Helper()
	reg := NewRegistry(NewSchema("A", "x"), NewSchema("B", "x"))
	s := NewSession(SessionConfig{QueueLen: 8, FilterIndex: filterIndex})
	for _, qc := range []QueryConfig{
		{Name: "eq", Query: `PATTERN SEQ(A a, B b) WHERE a.x = 1 WITHIN 10 s`, Registry: reg},
		{Name: "ge", Query: `PATTERN SEQ(A a, B b) WHERE a.x >= 5 WITHIN 10 s`, Registry: reg},
	} {
		if err := s.Register(qc); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestSessionIndexReport pins every IndexReport field on a hand-built
// two-type query set.
func TestSessionIndexReport(t *testing.T) {
	s := indexReportSession(t, true)
	defer s.Close()

	sa := NewSchema("A", "x")
	sb := NewSchema("B", "x")
	evs := Stamp([]*Event{
		NewEvent(sa, 1, 1), // hits eq only
		NewEvent(sa, 2, 5), // hits ge only
		NewEvent(sa, 3, 7), // hits ge only
		NewEvent(sb, 4, 0), // B positions are unconstrained: hits both
	})
	for _, e := range evs {
		if err := s.Submit(e); err != nil {
			t.Fatal(err)
		}
	}
	rep := s.IndexReport()
	if rep == nil {
		t.Fatal("IndexReport nil on a started session")
	}
	if !rep.FullIndex || rep.Lanes != 2 || rep.AlwaysLanes != 0 || rep.Subscriptions != 4 {
		t.Fatalf("report header = %+v", rep)
	}
	if len(rep.Types) != 2 || rep.Types[0].Type != "A" || rep.Types[1].Type != "B" {
		t.Fatalf("types = %+v", rep.Types)
	}
	a, b := rep.Types[0], rep.Types[1]
	if a.Subscriptions != 2 || a.ScanSubscriptions != 0 || a.IndexedConstraints != 2 {
		t.Fatalf("A shape = %+v", a)
	}
	if a.Events != 3 || a.Hits != 3 {
		t.Fatalf("A counters = %+v", a)
	}
	if math.Abs(a.HitRate-0.5) > 1e-9 || a.ResidualFraction != 0 {
		t.Fatalf("A rates = %+v", a)
	}
	if b.Subscriptions != 2 || b.ScanSubscriptions != 2 || b.IndexedConstraints != 0 {
		t.Fatalf("B shape = %+v", b)
	}
	if b.Events != 1 || b.Hits != 2 || b.HitRate != 1 || b.ResidualFraction != 1 {
		t.Fatalf("B counters = %+v", b)
	}
}

// TestSessionIndexReportTypeOnly pins the degenerate FilterIndex=false
// shape: private lanes still register type-only subscriptions (the stage-1
// fast path), every subscription is a scan entry.
func TestSessionIndexReportTypeOnly(t *testing.T) {
	s := indexReportSession(t, false)
	defer s.Close()
	if err := s.Submit(Stamp([]*Event{NewEvent(NewSchema("A", "x"), 1, 1)})[0]); err != nil {
		t.Fatal(err)
	}
	rep := s.IndexReport()
	if rep == nil {
		t.Fatal("IndexReport nil with FilterIndex off: type dispatch should still be active")
	}
	if rep.FullIndex || rep.Subscriptions != 4 {
		t.Fatalf("report header = %+v", rep)
	}
	a := rep.Types[0]
	if a.Type != "A" || a.ScanSubscriptions != 2 || a.IndexedConstraints != 0 || a.Hits != 2 {
		t.Fatalf("A = %+v", a)
	}
}

// TestFilterIndexChurn exercises the rebuild path: queries added and
// removed on a running indexed session route exactly the events registered
// at the time of submission.
func TestFilterIndexChurn(t *testing.T) {
	reg := NewRegistry(NewSchema("A", "x"))
	s := NewSession(SessionConfig{QueueLen: 8, FilterIndex: true})
	var posMatches atomic.Int64 // counted via callback: removal drops a query's accumulated results
	if err := s.Register(QueryConfig{
		Name: "pos", Query: `PATTERN SEQ(A a) WHERE a.x > 0 WITHIN 1 s`, Registry: reg,
		OnMatch: func(*Match) { posMatches.Add(1) },
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	sa := NewSchema("A", "x")
	ts := Time(0)
	send := func(n int) {
		t.Helper()
		batch := make([]*Event, 0, n)
		for i := 1; i <= n; i++ {
			ts += Time(1)
			batch = append(batch, NewEvent(sa, ts, float64(i)))
		}
		for _, e := range Stamp(batch) {
			if err := s.Submit(e); err != nil {
				t.Fatal(err)
			}
		}
	}
	send(10) // pos only: 10 matches
	if err := s.AddQuery(QueryConfig{Name: "five", Query: `PATTERN SEQ(A a) WHERE a.x = 5 WITHIN 1 s`, Registry: reg}); err != nil {
		t.Fatal(err)
	}
	send(10) // pos +10, five +1
	if err := s.RemoveQuery("pos"); err != nil {
		t.Fatal(err)
	}
	send(10) // five +1
	if _, err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := len(s.Matches("five")); got != 2 {
		t.Fatalf("five matched %d events, want 2", got)
	}
	if got := posMatches.Load(); got != 20 {
		t.Fatalf("pos matched %d events, want 20", got)
	}
	rep := s.IndexReport()
	if rep == nil || rep.Subscriptions != 1 {
		t.Fatalf("post-churn report = %+v", rep)
	}
}
