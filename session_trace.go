package cep

// The Session side of the tracing layer (internal/trace): the TraceConfig
// knob, the sampled trace ring behind Session.Traces(), and the
// match-provenance stamps. Span recording sites live on the feed path
// (session.go, session_index.go) and the lane workers; everything is
// gated on one nil check (s.tr) plus, per item, a nil trace pointer — the
// same discipline as the telemetry layer.

import (
	"time"

	"repro/internal/match"
	"repro/internal/mqo"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Prov is the provenance record attached to emitted matches when
// TraceConfig.Provenance is enabled; see match.Prov.
type Prov = match.Prov

// TraceConfig enables the event-tracing and match-provenance layer.
// Tracing is OFF by default (SessionConfig.Trace == nil): the trace-off
// hot path pays nothing beyond one nil check (`cepbench -fig trace` pins
// the budget in CI).
type TraceConfig struct {
	// SampleEvery traces one of every N submissions end to end: the
	// sampled event (or batch) carries a trace context through ingress
	// filtering, partition routing, queueing, engine processing and
	// emission, each stage recording a span with a monotonic timestamp.
	// 0 (or negative) disables event tracing.
	SampleEvery int
	// RingCap bounds the retained traces (default 64); oldest are
	// evicted. Retrieve them with Session.Traces() or /debug/traces.json.
	RingCap int
	// Provenance attaches a match.Prov to EVERY emitted match (cheap, not
	// sampled): the contributing event sequence numbers (aligned with
	// Match.Events(), exact across re-optimization splices), the emitting
	// lane/partition/component and its generation, and the submit→emit
	// latency. Matches of opaque detectors (RegisterDetector) carry
	// identity and latency but nil Seqs — their engines do not thread
	// sequence numbers.
	Provenance bool
}

// sessionTracer is the session-global tracing state. Nil when tracing is
// disabled entirely; ring is nil when only Provenance is on.
type sessionTracer struct {
	sampler *telemetry.Sampler
	ring    *trace.Ring
	prov    bool
}

func newSessionTracer(cfg *TraceConfig) *sessionTracer {
	if cfg == nil || (cfg.SampleEvery <= 0 && !cfg.Provenance) {
		return nil
	}
	t := &sessionTracer{prov: cfg.Provenance}
	if cfg.SampleEvery > 0 {
		t.sampler = telemetry.NewSampler(cfg.SampleEvery)
		ringCap := cfg.RingCap
		if ringCap <= 0 {
			ringCap = 64
		}
		t.ring = trace.NewRing(ringCap)
	}
	return t
}

// startTrace opens a trace for a sampled submission and registers it in
// the ring immediately — the ring always shows the freshest submissions,
// and Traces() sees however far each has progressed. Returns nil on the
// unsampled path.
func (t *sessionTracer) startTrace(seq uint64, batch int) *trace.Active {
	if t == nil || t.sampler == nil || !t.sampler.Sample() {
		return nil
	}
	a := trace.Start(seq, batch)
	t.ring.Add(a)
	return a
}

// Traces returns a snapshot of the most recent sampled event traces,
// oldest first. Each trace's spans cover the stages the event had crossed
// by snapshot time — a just-submitted trace may still be accumulating.
// Empty (never nil) when tracing is disabled, so the JSON endpoint
// renders "[]". Safe to call concurrently with the feed and with churn.
func (s *Session) Traces() []trace.Trace {
	if s.tr == nil {
		return []trace.Trace{}
	}
	return s.tr.ring.Snapshot()
}

// finishProv completes an engine-built provenance record at emission time
// with the lane's identity and the submit→emit latency. A no-op when the
// match carries no provenance (tracing off), so callers need no gate.
func (l *sessionLane) finishProv(m *Match, t0 int64) {
	p := m.Prov
	if p == nil {
		return
	}
	p.Lane, p.Component, p.Generation = l.idx, l.comp, l.gen
	if l.parts > 1 {
		p.Partition = l.part
	}
	if t0 != 0 {
		p.LatencyNS = time.Now().UnixNano() - t0
	}
}

// engineSpan records the engine-processing span of a sampled item as the
// delta of the lane engine's counters across the processing call:
// instances created, join probes attempted, negation kills, matches.
// st0 is the caller's pre-processing snapshot of l.eng.Stats().
func (l *sessionLane) engineSpan(tr *trace.Active, st0 mqo.EngineStats) {
	st1 := l.eng.Stats()
	tr.Spanf(trace.StageEngine, l.idx, "created=%d probes=%d negkilled=%d matches=%d",
		st1.Created-st0.Created, st1.Probes-st0.Probes,
		st1.NegKilled-st0.NegKilled, st1.Matches-st0.Matches)
}

// attachProv stamps identity-only provenance onto a private lane's
// matches: opaque detectors do not thread sequence numbers, so Seqs stays
// nil (the documented limitation). Callers gate on l.s.tr.prov.
func (l *sessionLane) attachProv(ms []*Match, t0 int64) {
	var lat int64
	if t0 != 0 {
		lat = time.Now().UnixNano() - t0
	}
	for _, m := range ms {
		if m.Prov == nil {
			m.Prov = &match.Prov{Seqs: nil, Lane: l.idx, Component: -1, LatencyNS: lat}
		}
	}
}
