package cep

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// TestSessionPartitionChurnRaceStress is the partitioned sibling of the
// batch race stress: concurrent SubmitBatch producers feed a session whose
// shared component is key-partitioned across 4 lanes, while a churn
// goroutine adds and removes a keyed query (each cycle re-optimizes and
// splices all partition siblings of the family) and an aggressive adaptive
// config forces drift re-optimizations on top. Run under -race (CI does),
// this pins the partition-specific discipline: the per-query emit mutex
// serializing sibling lanes into one match slice, the partition-0-only
// ownership of splice targeting and detector close, and the family-aware
// AdoptFrom that migrates per-partition buffers without loss or
// duplication.
//
// Every event carries the same timestamp, so every multi-positive SEQ match
// set is provably empty under any producer interleaving; the single-positive
// counting query turns the assertion into exact delivery accounting across
// all partition lanes — a drop on one lane or a double delivery across a
// splice changes the count.
func TestSessionPartitionChurnRaceStress(t *testing.T) {
	runSessionPartitionChurnStress(t, SessionConfig{
		ShareSubplans:    true,
		PartitionWorkers: 4,
		QueueLen:         64,
		Adaptive: &AdaptiveSessionConfig{
			CheckEvery:   64,
			WarmupEvents: 64,
			MinInterval:  64,
			Hysteresis:   1,
			Threshold:    0.01,
		},
	})
}

// TestSessionPartitionChurnRaceStressFilterIndex repeats the partitioned
// stress with the ingress filter index on, so the router's per-lane
// partition filter (dropping leaf-slot hits for non-owned hash buckets)
// runs against concurrent index rebuilds from the churn cycle.
func TestSessionPartitionChurnRaceStressFilterIndex(t *testing.T) {
	runSessionPartitionChurnStress(t, SessionConfig{
		ShareSubplans:    true,
		PartitionWorkers: 4,
		FilterIndex:      true,
		QueueLen:         64,
		Adaptive: &AdaptiveSessionConfig{
			CheckEvery:   64,
			WarmupEvents: 64,
			MinInterval:  64,
			Hysteresis:   1,
			Threshold:    0.01,
		},
	})
}

// keyedTailQueries builds n queries SEQ(A a, B b, T<i> c) whose positive
// positions are chained by x-equality — the fully keyed shape that the
// optimizer hash-partitions — sharing the (A, B) head pair, each narrowed
// by a distinct constant bound so the query set stays distinguishable.
func keyedTailQueries(t *testing.T, history []*Event, n int) []QueryConfig {
	t.Helper()
	out := make([]QueryConfig, 0, n)
	for i := 0; i < n; i++ {
		tail := []string{"T1", "T2"}[i%2]
		p := Seq(2*Second,
			E("A", "a"), E("B", "b"), E(tail, "c"),
		).Where(
			AttrCmp("a", "x", Eq, "b", "x"),
			AttrCmp("b", "x", Eq, "c", "x"),
			Cmp(Ref("c", "x"), Le, Const(float64(6+i))),
		)
		out = append(out, QueryConfig{
			Name:    fmt.Sprintf("kq%d", i),
			Pattern: p,
			Stats:   Measure(history, p),
		})
	}
	return out
}

func runSessionPartitionChurnStress(t *testing.T, cfg SessionConfig) {
	// Skewed registration-time stats versus a uniform live stream, so the
	// drift monitor re-optimizes (and re-splices the partition family)
	// mid-flight.
	history := regimeShiftStream(3, map[string]float64{"A": 2, "B": 2, "T1": 20, "T2": 20},
		nil, 120*Second, 0)
	queries := keyedTailQueries(t, history, 4)

	s := NewSession(cfg)
	for _, qc := range queries {
		if err := s.Register(qc); err != nil {
			t.Fatal(err)
		}
	}
	// Exact delivery accounting: every A event is a match for the counting
	// lane, so its match count must equal the number of A events submitted.
	var counted atomic.Int64
	countP := Seq(Second, E("A", "a")).Where(Cmp(Ref("a", "x"), Ge, Const(0)))
	if err := s.Register(QueryConfig{
		Name: "count-a", Pattern: countP, Stats: Measure(history, countP),
		OnMatch: func(*Match) { counted.Add(1) },
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}

	const nProducers = 4
	const perProducer = 4096
	const batch = 32

	streams := make([][]*Event, nProducers)
	wantA := int64(0)
	for pr := range streams {
		streams[pr] = makeConstantTSEvents(pr, perProducer)
		for _, e := range streams[pr] {
			if e.Type == "A" {
				wantA++
			}
		}
	}

	var wg sync.WaitGroup
	for pr := 0; pr < nProducers; pr++ {
		evs := streams[pr]
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < len(evs); i += batch {
				if err := s.SubmitBatch(evs[i : i+batch]); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}

	// Churn a keyed query in and out: each AddQuery re-optimizes the shared
	// component into a fresh P-engine family and AdoptFrom migrates every
	// lane's buffers; each RemoveQuery splices back down.
	stop := make(chan struct{})
	var churn sync.WaitGroup
	churn.Add(1)
	go func() {
		defer churn.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			name := fmt.Sprintf("churn-%d", i)
			p := Seq(2*Second, E("A", "a"), E("B", "b")).
				Where(AttrCmp("a", "x", Eq, "b", "x"))
			if err := s.AddQuery(QueryConfig{Name: name, Pattern: p, Stats: Measure(history, p)}); err != nil {
				t.Error(err)
				return
			}
			if err := s.RemoveQuery(name); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	wg.Wait()
	close(stop)
	churn.Wait()
	if _, err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	for name, ms := range s.Results() {
		if name == "count-a" {
			continue
		}
		if len(ms) != 0 {
			t.Fatalf("query %s matched %d times on a constant-timestamp stream", name, len(ms))
		}
	}
	if got := counted.Load(); got != wantA {
		t.Fatalf("counting lane saw %d A events, submitted %d (dropped or double-delivered)", got, wantA)
	}
}
