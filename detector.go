package cep

import "errors"

// Detector is the unified detection contract every runtime flavor in this
// package satisfies. Plan choice, partitioning, sharding and adaptivity are
// implementation details behind it (the paper treats the evaluation plan the
// same way): callers feed timestamp-ordered events, harvest matches, and
// manage one lifecycle.
//
// The stream protocol is Process* → Flush → Close:
//
//   - Process consumes one event and returns the matches it completed.
//     Concurrent detectors (ShardedRuntime, Session) may instead deliver
//     matches asynchronously through their callbacks and return none here.
//     Bad input is an error, never a panic: a nil event returns ErrNilEvent,
//     an event after Flush/Close returns ErrClosed.
//   - Flush ends the stream: it releases matches held back by
//     trailing-negation windows (and, for concurrent detectors, drains
//     queues and joins workers) and returns them. A detector accepts no
//     further events after Flush; flushing twice returns ErrClosed.
//   - Close releases resources without collecting matches and is
//     idempotent: closing a closed (or flushed) detector returns nil.
//     Pending matches not yet flushed are discarded — call Flush first to
//     collect them.
//
// Detectors are single-goroutine state machines unless their documentation
// says otherwise; the concurrent flavors document their own submission
// rules.
type Detector interface {
	// Process consumes one timestamp-ordered event and returns the matches
	// it completed.
	Process(e *Event) ([]*Match, error)
	// Flush ends the stream and returns the pending matches.
	Flush() ([]*Match, error)
	// Close releases resources; it is idempotent and discards unflushed
	// pendings.
	Close() error
}

// BatchDetector is the batched extension of the Detector contract: a
// detector that can consume a whole timestamp-ordered batch in one call,
// amortizing per-event dispatch (queue sends, lock rounds, worker
// wake-ups) across the batch. ProcessBatch is semantically identical to
// calling Process per event in order — same matches, same errors — and the
// usual slice-validity rule applies: the returned matches are only valid
// until the next call. Consumers should type-assert and fall back to
// per-event Process when the assertion fails.
type BatchDetector interface {
	Detector
	// ProcessBatch consumes a timestamp-ordered batch and returns the
	// matches completed by the whole batch, in stream order.
	ProcessBatch(events []*Event) ([]*Match, error)
}

// Sentinel errors of the Detector contract. Implementations wrap them with
// context; match with errors.Is.
var (
	// ErrNilEvent reports a nil event fed to Process (or a nil hole in a
	// batch/slice): bad input is refused loudly instead of truncating or
	// panicking.
	ErrNilEvent = errors.New("cep: nil event")
	// ErrClosed reports an operation on a detector that was already flushed
	// or closed.
	ErrClosed = errors.New("cep: detector closed")
)

// Compile-time checks: every runtime flavor — and the Session front door —
// satisfies the unified Detector contract.
var (
	_ Detector = (*Runtime)(nil)
	_ Detector = (*AdaptiveRuntime)(nil)
	_ Detector = (*PartitionedRuntime)(nil)
	_ Detector = (*ShardedRuntime)(nil)
	_ Detector = (*Fleet)(nil)
	_ Detector = (*Session)(nil)
)

// Compile-time checks: the batch-capable flavors extend it to
// BatchDetector.
var (
	_ BatchDetector = (*Runtime)(nil)
	_ BatchDetector = (*ShardedRuntime)(nil)
	_ BatchDetector = (*Session)(nil)
)
