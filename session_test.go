package cep

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"repro/internal/workload"
)

// orderedKeys fingerprints a match list preserving emission order; two
// byte-identical fingerprints mean the same matches in the same order.
func orderedKeys(ms []*Match) string {
	keys := make([]string, len(ms))
	for i, m := range ms {
		keys[i] = m.Key()
	}
	return strings.Join(keys, "\n")
}

// trafficWorkload generates the paper's Figure 1 four-cameras stream: A, B,
// C report frequently, the malfunctioning camera D rarely.
func trafficWorkload(t testing.TB) ([]*Event, *Registry) {
	t.Helper()
	cams := make(map[string]*Schema, 4)
	schemas := make([]*Schema, 0, 4)
	for _, name := range []string{"A", "B", "C", "D"} {
		cams[name] = NewSchema(name, "vehicleID")
		schemas = append(schemas, cams[name])
	}
	rng := rand.New(rand.NewSource(19))
	var frames []*Event
	ts := Time(0)
	for i := 0; i < 3000; i++ {
		ts += Time(5 + rng.Int63n(20))
		cam := []string{"A", "B", "C"}[rng.Intn(3)]
		if rng.Intn(10) == 0 {
			cam = "D"
		}
		frames = append(frames, NewEvent(cams[cam], ts, float64(rng.Intn(40))))
	}
	return Stamp(frames), NewRegistry(schemas...)
}

// sessionEquivalenceQueries builds N query configs over the stock registry.
func stockQueries(t testing.TB, reg *Registry, events []*Event) []QueryConfig {
	t.Helper()
	sources := []string{
		`PATTERN SEQ(S000 a, S001 b) WHERE a.difference < b.difference WITHIN 2 s`,
		`PATTERN AND(S002 a, S003 b, S004 c) WHERE a.bucket = b.bucket WITHIN 2 s`,
		`PATTERN SEQ(S005 a, NOT(S001 n), S002 b) WITHIN 2 s`,
		`PATTERN SEQ(S003 a, S004 b, S005 c) WHERE a.difference < c.difference WITHIN 3 s`,
	}
	algs := []string{AlgGreedy, AlgDPLD, AlgDPB, AlgZStream}
	out := make([]QueryConfig, len(sources))
	for i, src := range sources {
		p, err := ParsePatternWith(src, reg)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = QueryConfig{
			Name:      []string{"pairs", "bucket-conj", "negation", "chain"}[i],
			Pattern:   p,
			Stats:     Measure(events, p),
			Algorithm: algs[i],
		}
	}
	return out
}

// TestSessionMatchesIndependentRuntimes is the multi-query equivalence
// property on the stock workload: a Session with N queries must produce,
// per query, a byte-identical ordered match set to N independent
// Runtime.ProcessAll runs over the same stream.
func TestSessionMatchesIndependentRuntimes(t *testing.T) {
	stocks := workload.NewStocks(workload.StockConfig{
		Symbols: 6, Events: 4000, Seed: 11, MinRate: 1, MaxRate: 5,
	})
	events := stocks.Generate()
	queries := stockQueries(t, stocks.Registry, events)

	// Independent sequential references.
	want := make(map[string]string, len(queries))
	total := 0
	for _, qc := range queries {
		rt, err := NewFromConfig(qc)
		if err != nil {
			t.Fatal(err)
		}
		ms := processAll(t, rt, workload.ResetStream(events))
		want[qc.Name] = orderedKeys(ms)
		total += len(ms)
	}
	if total == 0 {
		t.Fatal("workload produced no matches; equivalence test is vacuous")
	}

	s := NewSession(SessionConfig{QueueLen: 32})
	for _, qc := range queries {
		if err := s.Register(qc); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Run(context.Background(), NewStream(workload.ResetStream(events))); err != nil {
		t.Fatal(err)
	}
	all, err := s.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != total {
		t.Fatalf("session emitted %d matches, references %d", len(all), total)
	}
	results := s.Results()
	for _, qc := range queries {
		if got := orderedKeys(results[qc.Name]); got != want[qc.Name] {
			t.Errorf("query %q: session match stream differs from independent runtime\nsession: %d matches\nreference: %d matches",
				qc.Name, len(results[qc.Name]), strings.Count(want[qc.Name], "\n")+1)
		}
	}
}

// TestSessionMatchesIndependentRuntimesTraffic repeats the equivalence
// property on the Figure 1 traffic workload with per-query algorithms.
func TestSessionMatchesIndependentRuntimesTraffic(t *testing.T) {
	frames, reg := trafficWorkload(t)
	sources := []string{
		`PATTERN SEQ(A a, B b, C c, D d) WHERE a.vehicleID = b.vehicleID AND
		 b.vehicleID = c.vehicleID AND c.vehicleID = d.vehicleID WITHIN 30 s`,
		`PATTERN SEQ(A a, D d) WHERE a.vehicleID = d.vehicleID WITHIN 10 s`,
		`PATTERN AND(B b, C c) WHERE b.vehicleID = c.vehicleID WITHIN 1 s`,
	}
	queries := make([]QueryConfig, len(sources))
	for i, src := range sources {
		p, err := ParsePatternWith(src, reg)
		if err != nil {
			t.Fatal(err)
		}
		queries[i] = QueryConfig{
			Name:      []string{"crossing", "entry-exit", "mid-pair"}[i],
			Pattern:   p,
			Stats:     Measure(frames, p),
			Algorithm: []string{AlgDPLD, AlgGreedy, AlgDPB}[i],
		}
	}
	want := make(map[string]string, len(queries))
	for _, qc := range queries {
		rt, err := NewFromConfig(qc)
		if err != nil {
			t.Fatal(err)
		}
		want[qc.Name] = orderedKeys(processAll(t, rt, frames))
	}
	s := NewSession(SessionConfig{})
	for _, qc := range queries {
		if err := s.Register(qc); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Run(context.Background(), NewStream(frames)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	for name, ref := range want {
		if got := orderedKeys(s.Matches(name)); got != ref {
			t.Errorf("query %q: session match stream differs from independent runtime", name)
		}
	}
}

// TestSessionMatchSinkTagging checks that the session-level sink receives
// every match tagged with the right query name, and that tagged queries do
// not accumulate.
func TestSessionMatchSinkTagging(t *testing.T) {
	var mu sync.Mutex
	counts := map[string]int{}
	s := NewSession(SessionConfig{
		OnMatch: func(query string, m *Match) {
			mu.Lock()
			counts[query]++
			mu.Unlock()
		},
	})
	if err := s.Register(QueryConfig{
		Name:   "logins",
		Source: `PATTERN SEQ(Login l) WITHIN 1 s`,
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Register(QueryConfig{
		Name:   "pairs",
		Source: `PATTERN SEQ(Login l, Alert a) WHERE l.user = a.user WITHIN 10 s`,
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	for _, ev := range demoEvents() {
		if err := s.Submit(ev); err != nil {
			t.Fatal(err)
		}
	}
	ms, err := s.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 0 {
		t.Fatalf("sink-consumed session still accumulated %d matches", len(ms))
	}
	if counts["logins"] != 2 || counts["pairs"] != 2 {
		t.Fatalf("tagged deliveries = %v, want logins:2 pairs:2", counts)
	}
}

// TestSessionContextCancellation cancels Run mid-stream while the single
// query's sink is blocked: the bounded queue fills, Submit blocks, and the
// cancellation must unblock Run with ctx.Err() instead of deadlocking.
func TestSessionContextCancellation(t *testing.T) {
	release := make(chan struct{})
	var once sync.Once
	blocked := make(chan struct{})
	s := NewSession(SessionConfig{
		QueueLen: 1,
		OnMatch: func(query string, m *Match) {
			once.Do(func() { close(blocked) })
			<-release
		},
	})
	if err := s.Register(QueryConfig{
		Name:   "every-login",
		Source: `PATTERN SEQ(Login l) WITHIN 1 s`,
	}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var ts Time
	var serial int64
	endless := SourceFunc(func() *Event {
		ts += 1000
		serial++
		e := NewEvent(loginSchema, ts, 1)
		e.Serial = serial
		return e
	})
	done := make(chan error, 1)
	go func() { done <- s.Run(ctx, endless) }()
	<-blocked // the sink is wedged: queue will fill and Run will block
	cancel()
	err := <-done
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run returned %v, want context.Canceled", err)
	}
	close(release)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSessionDoubleCloseIdempotent closes a running session from several
// goroutines at once (run under -race): exactly one shutdown happens and
// every Close returns nil.
func TestSessionDoubleCloseIdempotent(t *testing.T) {
	s := NewSession(SessionConfig{})
	if err := s.Register(QueryConfig{
		Name:   "pairs",
		Source: `PATTERN SEQ(Login l, Alert a) WITHIN 10 s`,
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	for _, ev := range demoEvents() {
		if err := s.Submit(ev); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := s.Close(); err != nil {
				t.Errorf("concurrent Close returned %v", err)
			}
		}()
	}
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatalf("Close after Close returned %v", err)
	}
	if _, err := s.Flush(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Flush after Close = %v, want ErrClosed", err)
	}
	if err := s.Submit(demoEvents()[0]); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close = %v, want ErrClosed", err)
	}
}

// TestSessionResultsDuringShutdownRace hammers Results/Matches while Flush
// is draining a deep queue (run under -race): the accessors must not touch
// the accumulation buffers until the workers have joined, so they return
// nil until shutdown completes rather than racing the appends.
func TestSessionResultsDuringShutdownRace(t *testing.T) {
	s := NewSession(SessionConfig{QueueLen: 4096})
	if err := s.Register(QueryConfig{
		Name:   "every-login",
		Source: `PATTERN SEQ(Login l) WITHIN 1 s`,
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	var ts Time
	for i := 0; i < 3000; i++ {
		ts += 10
		e := NewEvent(loginSchema, ts, 1)
		e.Serial = int64(i + 1)
		if err := s.Submit(e); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		// Spin until shutdown completes; every pre-join call must see nil,
		// and the first non-nil view must already be the full result set.
		for {
			if r := s.Results(); r != nil {
				if len(r["every-login"]) != 3000 {
					t.Errorf("Results visible before join with %d matches", len(r["every-login"]))
				}
				return
			}
		}
	}()
	ms, err := s.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 3000 {
		t.Fatalf("flushed %d matches, want 3000", len(ms))
	}
	<-done
}

// TestSessionComposesWithShardedRuntime registers a ShardedRuntime as one
// query of a Session — the "one query, partitioned feed" shape under the
// shared Detector lifecycle — and checks the match set against the
// sequential partitioned oracle.
func TestSessionComposesWithShardedRuntime(t *testing.T) {
	events, p, st := shardWorkload(t, 4000, 8)
	oracle := matchKeys(sequentialOracle(t, p, st, workload.ResetStream(events)))
	if len(oracle) == 0 {
		t.Fatal("oracle found no matches")
	}
	evs := workload.ResetStream(events)
	sr, err := NewSharded(p, st, nil, ShardConfig{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	s := NewSession(SessionConfig{})
	if err := s.RegisterDetector("sharded", sr, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(context.Background(), NewStream(evs)); err != nil {
		t.Fatal(err)
	}
	got, err := s.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if !equalStrings(matchKeys(got), oracle) {
		t.Fatalf("session-wrapped sharded runtime emitted %d matches, oracle %d", len(got), len(oracle))
	}
}

// TestSessionRegistrationErrors exercises the registration error paths.
func TestSessionRegistrationErrors(t *testing.T) {
	s := NewSession(SessionConfig{})
	if err := s.Register(QueryConfig{Name: "", Source: `PATTERN SEQ(A a) WITHIN 1 s`}); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := s.Register(QueryConfig{Name: "q"}); err == nil {
		t.Fatal("config without Pattern or Source accepted")
	}
	if err := s.Register(QueryConfig{Name: "q", Source: `PATTERN SEQ(A a) WITHIN 1 s`, Pattern: demoPattern(t)}); err == nil {
		t.Fatal("config with both Pattern and Source accepted")
	}
	if err := s.Register(QueryConfig{Name: "q", Source: `PATTERN NOT A PATTERN`}); err == nil {
		t.Fatal("unparsable source accepted")
	}
	if err := s.Register(QueryConfig{Name: "q", Source: `PATTERN SEQ(A a) WITHIN 1 s`, Algorithm: "NOPE"}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	if err := s.RegisterDetector("d", nil, nil); err == nil {
		t.Fatal("nil detector accepted")
	}
	if err := s.Register(QueryConfig{Name: "q", Source: `PATTERN SEQ(Login a) WITHIN 1 s`}); err != nil {
		t.Fatal(err)
	}
	if err := s.Register(QueryConfig{Name: "q", Source: `PATTERN SEQ(Login a) WITHIN 1 s`}); err == nil {
		t.Fatal("duplicate name accepted")
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	if err := s.Register(QueryConfig{Name: "late", Source: `PATTERN SEQ(Login a) WITHIN 1 s`}); err == nil {
		t.Fatal("registration after Start accepted")
	}
	if err := s.Start(); err == nil {
		t.Fatal("double explicit Start accepted")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSessionEmptyStart checks that a session with no queries refuses to
// start rather than silently consuming a stream into nothing.
func TestSessionEmptyStart(t *testing.T) {
	s := NewSession(SessionConfig{})
	if err := s.Start(); err == nil {
		t.Fatal("empty session started")
	}
	if err := s.Run(context.Background(), NewStream(nil)); err == nil {
		t.Fatal("empty session ran")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}
