// Package match defines the full-pattern-match type shared by the NFA and
// tree evaluation engines and the brute-force oracle.
package match

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/event"
)

// Match is one full pattern match: the events bound to each term position of
// the compiled pattern. Negated positions are nil; Kleene positions may hold
// more than one event; ordinary positions hold exactly one. Prov is nil
// unless the emitting engine runs with provenance enabled.
type Match struct {
	Positions [][]*event.Event
	Prov      *Prov
}

// Prov is the provenance record attached to an emitted match when tracing
// provenance is enabled: which stream sequence numbers composed the match
// (aligned index-for-index with Events()), which lane/partition/component
// emitted it and under which splice generation, and the submit→emit
// latency of the event that completed it. Seqs is nil for engines that do
// not thread sequence numbers (opaque detectors); LatencyNS is 0 for
// matches released by a window flush rather than by a live event.
type Prov struct {
	Seqs       []uint64 `json:"seqs,omitempty"`
	Lane       int      `json:"lane"`
	Partition  int      `json:"partition"`
	Component  int      `json:"component"`
	Generation int      `json:"generation"`
	LatencyNS  int64    `json:"latency_ns"`
}

// New builds a match over n term positions.
func New(n int) *Match {
	return &Match{Positions: make([][]*event.Event, n)}
}

// Events flattens the bound events in position order.
func (m *Match) Events() []*event.Event {
	var out []*event.Event
	for _, g := range m.Positions {
		out = append(out, g...)
	}
	return out
}

// MinTS returns the earliest timestamp in the match.
func (m *Match) MinTS() event.Time {
	first := true
	var min event.Time
	for _, g := range m.Positions {
		for _, e := range g {
			if first || e.TS < min {
				min, first = e.TS, false
			}
		}
	}
	return min
}

// MaxTS returns the latest timestamp in the match.
func (m *Match) MaxTS() event.Time {
	var max event.Time
	for _, g := range m.Positions {
		for _, e := range g {
			if e.TS > max {
				max = e.TS
			}
		}
	}
	return max
}

// Key returns a canonical fingerprint of the match: per-position sorted
// event serial numbers. Two matches binding the same events to the same
// positions have equal keys, which is how tests compare engine outputs.
func (m *Match) Key() string {
	var b strings.Builder
	for i, g := range m.Positions {
		if i > 0 {
			b.WriteByte('|')
		}
		serials := make([]int64, len(g))
		for j, e := range g {
			serials[j] = e.Serial
		}
		sort.Slice(serials, func(a, c int) bool { return serials[a] < serials[c] })
		for j, s := range serials {
			if j > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%d", s)
		}
	}
	return b.String()
}

// KeySet builds the set of keys of a match list.
func KeySet(ms []*Match) map[string]bool {
	out := make(map[string]bool, len(ms))
	for _, m := range ms {
		out[m.Key()] = true
	}
	return out
}

// Diff reports keys present in a but not in b and vice versa; both empty
// means the match sets are identical.
func Diff(a, b []*Match) (onlyA, onlyB []string) {
	ka, kb := KeySet(a), KeySet(b)
	for k := range ka {
		if !kb[k] {
			onlyA = append(onlyA, k)
		}
	}
	for k := range kb {
		if !ka[k] {
			onlyB = append(onlyB, k)
		}
	}
	sort.Strings(onlyA)
	sort.Strings(onlyB)
	return onlyA, onlyB
}
