package match

import (
	"testing"

	"repro/internal/event"
)

var schema = event.NewSchema("A", "x")

func ev(ts event.Time, serial int64) *event.Event {
	e := event.New(schema, ts, 0)
	e.Serial = serial
	return e
}

func TestMinMaxTS(t *testing.T) {
	m := New(3)
	m.Positions[0] = []*event.Event{ev(5, 1)}
	m.Positions[2] = []*event.Event{ev(9, 2), ev(3, 3)}
	if m.MinTS() != 3 || m.MaxTS() != 9 {
		t.Fatalf("MinTS=%d MaxTS=%d", m.MinTS(), m.MaxTS())
	}
}

func TestEventsFlattens(t *testing.T) {
	m := New(2)
	m.Positions[0] = []*event.Event{ev(1, 1)}
	m.Positions[1] = []*event.Event{ev(2, 2), ev(3, 3)}
	if got := m.Events(); len(got) != 3 {
		t.Fatalf("Events() = %d", len(got))
	}
}

func TestKeyCanonicalises(t *testing.T) {
	a := New(2)
	a.Positions[0] = []*event.Event{ev(1, 7)}
	a.Positions[1] = []*event.Event{ev(2, 9), ev(3, 8)}
	b := New(2)
	b.Positions[0] = []*event.Event{ev(1, 7)}
	b.Positions[1] = []*event.Event{ev(3, 8), ev(2, 9)} // group order differs
	if a.Key() != b.Key() {
		t.Fatalf("keys differ: %q vs %q", a.Key(), b.Key())
	}
	c := New(2)
	c.Positions[0] = []*event.Event{ev(2, 9)}
	c.Positions[1] = []*event.Event{ev(1, 7), ev(3, 8)}
	if a.Key() == c.Key() {
		t.Fatal("different position bindings share a key")
	}
}

func TestDiff(t *testing.T) {
	m1 := New(1)
	m1.Positions[0] = []*event.Event{ev(1, 1)}
	m2 := New(1)
	m2.Positions[0] = []*event.Event{ev(2, 2)}
	m3 := New(1)
	m3.Positions[0] = []*event.Event{ev(3, 3)}
	onlyA, onlyB := Diff([]*Match{m1, m2}, []*Match{m2, m3})
	if len(onlyA) != 1 || onlyA[0] != m1.Key() {
		t.Fatalf("onlyA = %v", onlyA)
	}
	if len(onlyB) != 1 || onlyB[0] != m3.Key() {
		t.Fatalf("onlyB = %v", onlyB)
	}
	onlyA, onlyB = Diff([]*Match{m1}, []*Match{m1})
	if len(onlyA) != 0 || len(onlyB) != 0 {
		t.Fatal("identical sets reported different")
	}
}
