// Shared-plan objective for multi-query optimization: the Section 4 node
// cost PM(N), summed over the distinct nodes of a shared evaluation DAG and
// weighted by consumer count. A node evaluated for c consuming plans is
// paid once for the join work plus a fan-out term per extra consumer — the
// hand-off of each produced partial match to another parent is cheaper than
// recomputing it, which is what makes materializing common sub-joins once
// the dominant win at scale.
package cost

import (
	"sort"

	"repro/internal/plan"
	"repro/internal/stats"
)

// DefaultFanoutFactor is the modeled relative cost of fanning one node's
// partial matches out to one additional consumer, as a fraction of
// computing the node from scratch. Sharing an identical sub-join is
// therefore always predicted to win (factor < 1), while a restructure that
// bends a query's plan toward a shareable sub-join must overcome its
// residual-cost increase.
const DefaultFanoutFactor = 0.25

// SharedNode is one distinct node of a shared evaluation DAG: its modeled
// partial-match count and the number of consuming parents/queries.
type SharedNode struct {
	PM        float64
	Consumers int
}

// Shared computes the shared-plan objective
//
//	Σ_N PM(N) · (1 + fanout·(consumers(N)−1)),
//
// the multi-query counterpart of Cost_tree: each distinct node is paid
// once, plus the fan-out term per consumer beyond the first. A fanout of 0
// prices pure sharing (hand-off free); a fanout of 1 degenerates to the
// unshared sum of per-query costs.
func Shared(nodes []SharedNode, fanout float64) float64 {
	total := 0.0
	for _, n := range nodes {
		c := n.Consumers
		if c < 1 {
			c = 1
		}
		total += n.PM * (1 + fanout*float64(c-1))
	}
	return total
}

// PartitionedShared prices one partition lane of a key-partitioned shared
// DAG: under a uniform key distribution each of the `parts` lanes owns
// ~1/parts of every node's buffered events, so its partial-match volume —
// and with it the Section 4 node cost — shrinks by the same factor. The
// session charges each lane this per-lane share; the whole component still
// costs parts × PartitionedShared = Shared, the work is just spread out.
func PartitionedShared(nodes []SharedNode, fanout float64, parts int) float64 {
	if parts < 1 {
		parts = 1
	}
	return Shared(nodes, fanout) / float64(parts)
}

// SharedSaving models the objective reduction from evaluating the subtree
// once for `consumers` plans instead of once per plan:
//
//	(consumers−1) · (1−fanout) · Cost_tree(subtree).
func SharedSaving(ps *stats.PatternStats, root *plan.TreeNode, consumers int, fanout float64) float64 {
	if consumers < 2 {
		return 0
	}
	return float64(consumers-1) * (1 - fanout) * Tree(ps, root)
}

// Balance partitions the items (given by their modeled costs) into at most
// `bins` load-balanced groups of input indices, using the LPT greedy
// heuristic: items are placed heaviest-first onto the currently lightest
// bin. It is deterministic (ties broken by index) and never returns an
// empty bin — with fewer items than bins, the surplus bins are dropped.
// The multi-query optimizer uses it to split a hot sharing component's
// root fan-out across worker lanes.
func Balance(costs []float64, bins int) [][]int {
	if bins < 1 {
		bins = 1
	}
	if bins > len(costs) {
		bins = len(costs)
	}
	if bins == 0 {
		return nil
	}
	order := make([]int, len(costs))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if costs[order[a]] != costs[order[b]] {
			return costs[order[a]] > costs[order[b]]
		}
		return order[a] < order[b]
	})
	out := make([][]int, bins)
	load := make([]float64, bins)
	for _, idx := range order {
		lightest := 0
		for b := 1; b < bins; b++ {
			// Equal loads fall back to occupancy, so zero-cost items still
			// round-robin instead of piling onto bin 0 (which would leave
			// empty bins behind).
			if load[b] < load[lightest] ||
				(load[b] == load[lightest] && len(out[b]) < len(out[lightest])) {
				lightest = b
			}
		}
		out[lightest] = append(out[lightest], idx)
		load[lightest] += costs[idx]
	}
	for b := range out {
		sort.Ints(out[b])
	}
	return out
}
