package cost

// This file implements the adjacent-sequence-interchange (ASI) machinery of
// Appendix A. Under an acyclic query graph rooted at some type, Cost_ord
// rewrites to the prefix-product form C(s) = Σ_k Π_{i≤k} w_i with per-type
// weight w_i = W·r_i·sel^R_i, and the rank function
//
//	rank(s) = (T(s) − 1) / C(s),  T(s) = Π w_i
//
// certifies the ASI property: C(a·u·v·b) ≤ C(a·v·u·b) ⇔ rank(u) ≤ rank(v).
// The latency cost has its own rank (Theorem 6). These functions power the
// property tests validating the appendix and are reusable by IK/KBZ-style
// polynomial join-ordering algorithms.

// SeqCost computes C(s) = Σ_{k=1..m} Π_{i=1..k} w_i. C(ε) = 0.
func SeqCost(w []float64) float64 {
	total, cur := 0.0, 1.0
	for _, x := range w {
		cur *= x
		total += cur
	}
	return total
}

// SeqProd computes T(s) = Π w_i. T(ε) = 1.
func SeqProd(w []float64) float64 {
	cur := 1.0
	for _, x := range w {
		cur *= x
	}
	return cur
}

// RankTrpt computes the throughput rank (T(s)−1)/C(s) of a non-empty weight
// sequence (Theorem 5).
func RankTrpt(w []float64) float64 {
	if len(w) == 0 {
		panic("cost: rank of empty sequence")
	}
	return (SeqProd(w) - 1) / SeqCost(w)
}

// LatItem is one element of a sequence under the latency cost model: its
// buffered-event weight W·r_i and whether it is the temporally last event
// type T_n.
type LatItem struct {
	Weight float64
	IsLast bool
}

// LatCost computes Cost_lat of a full order: the summed weights of the items
// following the T_n item. Zero if T_n is absent.
func LatCost(items []LatItem) float64 {
	total := 0.0
	seen := false
	for _, it := range items {
		if seen {
			total += it.Weight
		}
		if it.IsLast {
			seen = true
		}
	}
	return total
}

// RankLat computes the latency rank of a subsequence (Theorem 6): the summed
// weights of the items following T_n within s, or 0 when T_n ∉ s.
func RankLat(items []LatItem) float64 {
	has := false
	for _, it := range items {
		if it.IsLast {
			has = true
			break
		}
	}
	if !has {
		return 0
	}
	return LatCost(items)
}
