package cost

// DriftScore is the cost-ratio drift statistic of the Section 6.3
// adaptivity loop: the relative modeled improvement a freshly generated
// plan offers over the currently running one, both priced under the same
// (current) statistics,
//
//	staleCost/freshCost − 1.
//
// A score of 0.25 means the running plan is modeled 25% more expensive
// than a replan. Non-positive costs carry no evidence and score 0, so a
// threshold test on the score never fires on degenerate inputs. Both the
// single-runtime re-optimization controller (internal/adaptive) and the
// session-level shared-DAG drift detector (internal/drift) threshold this
// quantity.
func DriftScore(staleCost, freshCost float64) float64 {
	if staleCost <= 0 || freshCost <= 0 {
		return 0
	}
	return staleCost/freshCost - 1
}
