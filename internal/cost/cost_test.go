package cost

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/plan"
	"repro/internal/predicate"
	"repro/internal/stats"
)

// ps3 builds the hand-computed three-position fixture used across tests:
// W=2s, rates (1,2,3), sel01=0.5, sel02=0.25, sel12=1, unary sel at 0 = 0.5.
func ps3() *stats.PatternStats {
	ps := &stats.PatternStats{
		W:     2,
		Rates: []float64{1, 2, 3},
		Sel: [][]float64{
			{0.5, 0.5, 0.25},
			{0.5, 1, 1},
			{0.25, 1, 1},
		},
	}
	return ps
}

func almost(a, b float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= 1e-9*math.Max(math.Abs(a), math.Abs(b))
}

func TestOrderHandComputed(t *testing.T) {
	ps := ps3()
	// PM(1)=2·1·0.5=1; PM(2)=1·(2·2)·0.5=2; PM(3)=2·(2·3)·0.25·1=3 → 6.
	if got := Order(ps, []int{0, 1, 2}); !almost(got, 6) {
		t.Fatalf("Order = %g, want 6", got)
	}
	prefix := OrderPrefix(ps, []int{0, 1, 2})
	want := []float64{1, 2, 3}
	for i := range want {
		if !almost(prefix[i], want[i]) {
			t.Fatalf("prefix[%d] = %g, want %g", i, prefix[i], want[i])
		}
	}
}

func TestOrderPrefixSumsToOrder(t *testing.T) {
	ps := ps3()
	plan.Permutations(3, func(order []int) {
		sum := 0.0
		for _, pm := range OrderPrefix(ps, order) {
			sum += pm
		}
		if !almost(sum, Order(ps, order)) {
			t.Fatalf("prefix sum %g != Order %g for %v", sum, Order(ps, order), order)
		}
	})
}

func TestOrderSensitiveToOrder(t *testing.T) {
	// A rare last event should make rare-first orders cheaper.
	ps := &stats.PatternStats{
		W:     10,
		Rates: []float64{10, 10, 0.1},
		Sel:   unitSel(3),
	}
	cheap := Order(ps, []int{2, 0, 1})
	expensive := Order(ps, []int{0, 1, 2})
	if cheap >= expensive {
		t.Fatalf("rare-first %g should beat rare-last %g", cheap, expensive)
	}
}

func unitSel(n int) [][]float64 {
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
		for j := range m[i] {
			m[i][j] = 1
		}
	}
	return m
}

func TestOrderLatency(t *testing.T) {
	ps := ps3()
	// Succ of position 2 in [2,0,1] is {0,1}: 2·1 + 2·2 = 6.
	if got := OrderLatency(ps, []int{2, 0, 1}, 2); !almost(got, 6) {
		t.Fatalf("latency = %g, want 6", got)
	}
	// Last position processed last: zero latency.
	if got := OrderLatency(ps, []int{0, 1, 2}, 2); got != 0 {
		t.Fatalf("latency = %g, want 0", got)
	}
	// Unknown anchor disables the term.
	if got := OrderLatency(ps, []int{2, 0, 1}, -1); got != 0 {
		t.Fatalf("latency = %g, want 0", got)
	}
}

func TestOrderNextHandComputed(t *testing.T) {
	ps := ps3()
	// m[1]=2·1·0.5=1, m[2]=2·1·0.25=0.5, m[3]=2·1·0.0625=0.125;
	// cost = 2·(1+0.5+0.125) = 3.25.
	if got := OrderNext(ps, []int{0, 1, 2}); !almost(got, 3.25) {
		t.Fatalf("OrderNext = %g, want 3.25", got)
	}
}

func TestTreeHandComputed(t *testing.T) {
	ps := ps3()
	root := plan.Join(plan.Join(plan.LeafNode(0), plan.LeafNode(1)), plan.LeafNode(2))
	// Leaves: 1, 4, 6; inner = 1·4·0.5 = 2; root = 2·6·0.25·1 = 3 → 16.
	if got := Tree(ps, root); !almost(got, 16) {
		t.Fatalf("Tree = %g, want 16", got)
	}
	if got := TreePM(ps, root); !almost(got, 3) {
		t.Fatalf("TreePM(root) = %g, want 3", got)
	}
}

func TestTreeEqualsSumOfNodePMs(t *testing.T) {
	ps := ps3()
	plan.AllTrees(3, func(root *plan.TreeNode) {
		sum := 0.0
		for _, n := range root.Nodes() {
			sum += TreePM(ps, n)
		}
		if !almost(sum, Tree(ps, root)) {
			t.Fatalf("node sum %g != Tree %g for %s", sum, Tree(ps, root), root)
		}
	})
}

func TestTreeChildSwapInvariance(t *testing.T) {
	ps := ps3()
	a := plan.Join(plan.Join(plan.LeafNode(0), plan.LeafNode(1)), plan.LeafNode(2))
	b := plan.Join(plan.LeafNode(2), plan.Join(plan.LeafNode(1), plan.LeafNode(0)))
	if !almost(Tree(ps, a), Tree(ps, b)) {
		t.Fatalf("child swap changed cost: %g vs %g", Tree(ps, a), Tree(ps, b))
	}
}

func TestTreeLatency(t *testing.T) {
	ps := ps3()
	root := plan.Join(plan.Join(plan.LeafNode(0), plan.LeafNode(1)), plan.LeafNode(2))
	// lastPos=2: one hop, sibling is the (0 1) subtree with PM=2.
	if got := TreeLatency(ps, root, 2); !almost(got, 2) {
		t.Fatalf("TreeLatency = %g, want 2", got)
	}
	// lastPos=0: siblings leaf1 (PM 4) and leaf2 (PM 6).
	if got := TreeLatency(ps, root, 0); !almost(got, 10) {
		t.Fatalf("TreeLatency = %g, want 10", got)
	}
	if got := TreeLatency(ps, root, -1); got != 0 {
		t.Fatalf("TreeLatency = %g, want 0", got)
	}
}

func TestTreeNextHandComputed(t *testing.T) {
	ps := ps3()
	root := plan.Join(plan.Join(plan.LeafNode(0), plan.LeafNode(1)), plan.LeafNode(2))
	// 1 + 4 + 6 + 0.5 + 0.125 = 11.625.
	if got := TreeNext(ps, root); !almost(got, 11.625) {
		t.Fatalf("TreeNext = %g, want 11.625", got)
	}
}

func TestModelSelectsFamily(t *testing.T) {
	ps := ps3()
	order := []int{0, 1, 2}
	root := plan.LeftDeep(order)

	any := Model{Strategy: predicate.SkipTillAnyMatch, LastPos: -1}
	if !almost(any.OrderCost(ps, order), Order(ps, order)) {
		t.Fatal("any-match order cost mismatch")
	}
	if !almost(any.TreeCost(ps, root), Tree(ps, root)) {
		t.Fatal("any-match tree cost mismatch")
	}

	next := Model{Strategy: predicate.SkipTillNextMatch, LastPos: -1}
	if !almost(next.OrderCost(ps, order), OrderNext(ps, order)) {
		t.Fatal("next-match order cost mismatch")
	}
	if !almost(next.TreeCost(ps, root), TreeNext(ps, root)) {
		t.Fatal("next-match tree cost mismatch")
	}

	contig := Model{Strategy: predicate.StrictContiguity, LastPos: -1}
	if !almost(contig.OrderCost(ps, order), OrderNext(ps, order)) {
		t.Fatal("contiguity must reuse the next-match model")
	}
}

func TestModelHybridAlpha(t *testing.T) {
	ps := ps3()
	order := []int{2, 0, 1}
	m := Model{Strategy: predicate.SkipTillAnyMatch, Alpha: 0.5, LastPos: 2}
	want := Order(ps, order) + 0.5*OrderLatency(ps, order, 2)
	if got := m.OrderCost(ps, order); !almost(got, want) {
		t.Fatalf("hybrid = %g, want %g", got, want)
	}
	root := plan.LeftDeep(order)
	wantT := Tree(ps, root) + 0.5*TreeLatency(ps, root, 2)
	if got := m.TreeCost(ps, root); !almost(got, wantT) {
		t.Fatalf("hybrid tree = %g, want %g", got, wantT)
	}
	if DefaultModel().Alpha != 0 || DefaultModel().LastPos != -1 {
		t.Fatal("DefaultModel changed")
	}
}

func TestSeqCostAndProd(t *testing.T) {
	w := []float64{2, 3, 4}
	// 2 + 6 + 24 = 32.
	if got := SeqCost(w); !almost(got, 32) {
		t.Fatalf("SeqCost = %g", got)
	}
	if got := SeqProd(w); !almost(got, 24) {
		t.Fatalf("SeqProd = %g", got)
	}
	if SeqCost(nil) != 0 || SeqProd(nil) != 1 {
		t.Fatal("empty sequence base cases wrong")
	}
}

// TestASIThroughputProperty verifies Theorem 5: for all sequences a, b and
// non-empty u, v: C(auvb) ≤ C(avub) ⇔ rank(u) ≤ rank(v).
func TestASIThroughputProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	gen := func(n int) []float64 {
		w := make([]float64, n)
		for i := range w {
			// Weights spanning both expanding (>1) and shrinking (<1) steps.
			w[i] = math.Exp(rng.NormFloat64())
		}
		return w
	}
	concat := func(parts ...[]float64) []float64 {
		var out []float64
		for _, p := range parts {
			out = append(out, p...)
		}
		return out
	}
	for trial := 0; trial < 2000; trial++ {
		a := gen(rng.Intn(3))
		u := gen(1 + rng.Intn(3))
		v := gen(1 + rng.Intn(3))
		b := gen(rng.Intn(3))
		cuv := SeqCost(concat(a, u, v, b))
		cvu := SeqCost(concat(a, v, u, b))
		ru, rv := RankTrpt(u), RankTrpt(v)
		const eps = 1e-9
		if ru < rv-eps && cuv > cvu*(1+eps) {
			t.Fatalf("rank(u)<rank(v) but C(auvb)=%g > C(avub)=%g (a=%v u=%v v=%v b=%v)",
				cuv, cvu, a, u, v, b)
		}
		if cuv < cvu*(1-eps) && ru > rv+eps {
			t.Fatalf("C(auvb)<C(avub) but rank(u)=%g > rank(v)=%g", ru, rv)
		}
	}
}

// TestASILatencyProperty verifies Theorem 6 for the latency cost.
func TestASILatencyProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 2000; trial++ {
		total := 4 + rng.Intn(4)
		items := make([]LatItem, total)
		lastIdx := rng.Intn(total)
		for i := range items {
			items[i] = LatItem{Weight: rng.Float64() * 10, IsLast: i == lastIdx}
		}
		// Split a|u|v|b at boundaries i < j < k with u, v non-empty.
		j := 1 + rng.Intn(total-1)
		i := rng.Intn(j)
		k := j + 1 + rng.Intn(total-j)
		a, u, v, b := items[:i], items[i:j], items[j:k], items[k:]
		concat := func(parts ...[]LatItem) []LatItem {
			var out []LatItem
			for _, p := range parts {
				out = append(out, p...)
			}
			return out
		}
		cuv := LatCost(concat(a, u, v, b))
		cvu := LatCost(concat(a, v, u, b))
		ru, rv := RankLat(u), RankLat(v)
		const eps = 1e-9
		if ru < rv-eps && cuv > cvu+eps {
			t.Fatalf("lat rank(u)<rank(v) but cost(auvb)=%g > cost(avub)=%g", cuv, cvu)
		}
		if cuv < cvu-eps && ru > rv+eps {
			t.Fatalf("lat cost ordered but ranks reversed: %g vs %g", ru, rv)
		}
	}
}

func TestRankTrptPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	RankTrpt(nil)
}

// TestOrderCostPositive is a quick-check: costs are positive and finite for
// positive rates and selectivities in (0,1].
func TestOrderCostPositive(t *testing.T) {
	f := func(r1, r2, r3 uint8, s12, s13, s23 uint8) bool {
		ps := &stats.PatternStats{
			W: 5,
			Rates: []float64{
				1 + float64(r1%50), 1 + float64(r2%50), 1 + float64(r3%50),
			},
			Sel: unitSel(3),
		}
		ps.Sel[0][1] = (1 + float64(s12%100)) / 100
		ps.Sel[1][0] = ps.Sel[0][1]
		ps.Sel[0][2] = (1 + float64(s13%100)) / 100
		ps.Sel[2][0] = ps.Sel[0][2]
		ps.Sel[1][2] = (1 + float64(s23%100)) / 100
		ps.Sel[2][1] = ps.Sel[1][2]
		ok := true
		plan.Permutations(3, func(order []int) {
			c := Order(ps, order)
			if !(c > 0) || math.IsInf(c, 0) || math.IsNaN(c) {
				ok = false
			}
		})
		plan.AllTrees(3, func(root *plan.TreeNode) {
			c := Tree(ps, root)
			if !(c > 0) || math.IsInf(c, 0) || math.IsNaN(c) {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestBalance pins the LPT partition used to split hot sharing components
// across worker lanes.
func TestBalance(t *testing.T) {
	bins := Balance([]float64{8, 1, 1, 1, 1, 4}, 2)
	if len(bins) != 2 {
		t.Fatalf("got %d bins, want 2", len(bins))
	}
	load := func(bin []int, costs []float64) float64 {
		total := 0.0
		for _, i := range bin {
			total += costs[i]
		}
		return total
	}
	costs := []float64{8, 1, 1, 1, 1, 4}
	l0, l1 := load(bins[0], costs), load(bins[1], costs)
	if l0+l1 != 16 {
		t.Fatalf("items lost: loads %.0f + %.0f != 16", l0, l1)
	}
	if diff := l0 - l1; diff > 2 || diff < -2 {
		t.Fatalf("LPT imbalance too large: %.0f vs %.0f", l0, l1)
	}
	seen := map[int]bool{}
	for _, bin := range bins {
		for _, i := range bin {
			if seen[i] {
				t.Fatalf("item %d in two bins", i)
			}
			seen[i] = true
		}
	}
	// More bins than items: surplus bins are dropped, never empty.
	small := Balance([]float64{3, 7}, 5)
	if len(small) != 2 {
		t.Fatalf("got %d bins for 2 items, want 2", len(small))
	}
	if got := Balance(nil, 3); len(got) != 0 {
		t.Fatalf("empty input produced bins: %v", got)
	}
	// All-zero costs (a measured selectivity of 0 zeroes modeled plan
	// costs): ties fall back to occupancy, so no bin comes back empty.
	for _, bin := range Balance([]float64{0, 0, 0, 0}, 2) {
		if len(bin) != 2 {
			t.Fatalf("zero-cost items not round-robined: %v", Balance([]float64{0, 0, 0, 0}, 2))
		}
	}
}
