package cost

import (
	"math"

	"repro/internal/stats"
)

// StepState carries the accumulators needed to evaluate Model.OrderCost
// incrementally while a prefix of an order is extended one position at a
// time. Greedy construction and the Selinger-style dynamic programs both
// rely on the fact that the per-step cost delta depends only on the *set* of
// positions already chosen, never on their internal order — the property
// that makes subset DP sound for all of the paper's order cost models.
type StepState struct {
	// PM is the current prefix's partial-match count under the
	// skip-till-any model (product form of Section 4.1).
	PM float64
	// MinR and SelProd track the skip-till-next model of Section 6.2.
	MinR    float64
	SelProd float64
	// HasLast records whether the latency anchor has been placed.
	HasLast bool
}

// InitState returns the state of the empty prefix.
func (m Model) InitState() StepState {
	return StepState{PM: 1, MinR: math.Inf(1), SelProd: 1}
}

// Extend adds position pos to the prefix. crossSel must be the product of
// ps.Sel[s][pos] over every position s already in the prefix (the caller
// tracks the membership). It returns the new state and the cost delta, so
// that summing deltas over a full order reproduces Model.OrderCost exactly.
func (m Model) Extend(ps *stats.PatternStats, st StepState, pos int, crossSel float64) (StepState, float64) {
	var delta float64
	next := st
	switch {
	case m.isAnyMatch():
		next.PM = st.PM * ps.W * ps.Rates[pos] * ps.Sel[pos][pos] * crossSel
		delta = next.PM
	default:
		next.SelProd = st.SelProd * ps.Sel[pos][pos] * crossSel
		next.MinR = math.Min(st.MinR, ps.Rates[pos])
		mVal := ps.W * next.MinR * next.SelProd
		delta = ps.W * mVal
	}
	if m.Alpha != 0 && m.LastPos >= 0 {
		if st.HasLast {
			delta += m.Alpha * ps.W * ps.Rates[pos]
		}
	}
	if pos == m.LastPos {
		next.HasLast = true
	}
	return next, delta
}

// CrossSel computes the selectivity product between pos and the members of
// the prefix set given as a bitmask over planning positions.
func CrossSel(ps *stats.PatternStats, mask uint64, pos int) float64 {
	sel := 1.0
	for s := 0; mask != 0; s++ {
		if mask&1 != 0 {
			sel *= ps.Sel[s][pos]
		}
		mask >>= 1
	}
	return sel
}
