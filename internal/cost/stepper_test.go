package cost

import (
	"math/rand"
	"testing"

	"repro/internal/plan"
	"repro/internal/predicate"
	"repro/internal/stats"
)

// randomStats builds a random PatternStats for stepper validation.
func randomStats(rng *rand.Rand, n int) *stats.PatternStats {
	ps := &stats.PatternStats{W: 1 + rng.Float64()*5, Rates: make([]float64, n), Sel: unitSel(n)}
	for i := 0; i < n; i++ {
		ps.Rates[i] = 0.1 + rng.Float64()*10
		ps.Sel[i][i] = 0.2 + rng.Float64()*0.8
		for j := i + 1; j < n; j++ {
			s := 0.05 + rng.Float64()*0.95
			ps.Sel[i][j], ps.Sel[j][i] = s, s
		}
	}
	return ps
}

// TestStepperReproducesOrderCost verifies that summing Extend deltas along a
// full order reproduces Model.OrderCost for every strategy/α combination.
func TestStepperReproducesOrderCost(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	models := []Model{
		{Strategy: predicate.SkipTillAnyMatch, LastPos: -1},
		{Strategy: predicate.SkipTillNextMatch, LastPos: -1},
		{Strategy: predicate.SkipTillAnyMatch, Alpha: 0.7, LastPos: 2},
		{Strategy: predicate.SkipTillNextMatch, Alpha: 1.3, LastPos: 0},
		{Strategy: predicate.StrictContiguity, LastPos: -1},
	}
	for trial := 0; trial < 40; trial++ {
		n := 3 + rng.Intn(3)
		ps := randomStats(rng, n)
		for _, m := range models {
			if m.LastPos >= n {
				continue
			}
			plan.Permutations(n, func(order []int) {
				st := m.InitState()
				var mask uint64
				total := 0.0
				for _, pos := range order {
					var delta float64
					st, delta = m.Extend(ps, st, pos, CrossSel(ps, mask, pos))
					total += delta
					mask |= 1 << uint(pos)
				}
				want := m.OrderCost(ps, order)
				if !almost(total, want) {
					t.Fatalf("model %+v order %v: stepper %g != OrderCost %g", m, order, total, want)
				}
			})
		}
	}
}

func TestCrossSel(t *testing.T) {
	ps := ps3()
	// mask {0,1} against pos 2: sel[0][2]·sel[1][2] = 0.25·1.
	if got := CrossSel(ps, 0b011, 2); !almost(got, 0.25) {
		t.Fatalf("CrossSel = %g", got)
	}
	if got := CrossSel(ps, 0, 1); got != 1 {
		t.Fatalf("CrossSel(empty) = %g", got)
	}
}
