// Package cost implements every cost function of the paper:
//
//   - Cost_ord (Section 4.1) — expected number of coexisting partial matches
//     of an order-based plan within a window (the throughput proxy);
//   - Cost_tree (Section 4.2) — its tree-based counterpart;
//   - Cost_lat for both plan families (Section 6.1) — worst-case detection
//     latency after the temporally last event arrives;
//   - Cost_next for both families (Section 6.2) — the partial-match model
//     under the skip-till-next-match selection strategy;
//   - the hybrid objective Cost_trpt + α·Cost_lat used in the Fig 18
//     experiment;
//   - the ASI rank function of Appendix A.
//
// All functions take a stats.PatternStats (rates, selectivities, window over
// the positive planning positions) plus a plan.
package cost

import (
	"repro/internal/plan"
	"repro/internal/stats"
)

// Order computes Cost_ord(O): the sum over prefix lengths k of the expected
// number of partial matches of size k,
//
//	PM(k) = Π_{i≤k} (W·r_{p_i}) · Π_{i≤j≤k} sel_{p_i,p_j}.
func Order(ps *stats.PatternStats, order []int) float64 {
	total := 0.0
	cur := 1.0
	for k, pos := range order {
		cur *= ps.W * ps.Rates[pos] * ps.Sel[pos][pos]
		for _, prev := range order[:k] {
			cur *= ps.Sel[prev][pos]
		}
		total += cur
	}
	return total
}

// OrderPrefix computes PM(k) for each prefix of the order; PM[0] is the cost
// of the first step. It is used by diagnostics and the experiment harness.
func OrderPrefix(ps *stats.PatternStats, order []int) []float64 {
	out := make([]float64, len(order))
	cur := 1.0
	for k, pos := range order {
		cur *= ps.W * ps.Rates[pos] * ps.Sel[pos][pos]
		for _, prev := range order[:k] {
			cur *= ps.Sel[prev][pos]
		}
		out[k] = cur
	}
	return out
}

// OrderLatency computes Cost_lat_ord(O) = Σ_{T_i ∈ Succ_O(T_last)} W·r_i:
// the number of buffered events that must be examined after the temporally
// last event (planning position lastPos) arrives. A lastPos of -1 (unknown)
// yields zero, matching the paper's restriction of the latency model to
// patterns with a known arrival order.
func OrderLatency(ps *stats.PatternStats, order []int, lastPos int) float64 {
	if lastPos < 0 {
		return 0
	}
	total := 0.0
	seen := false
	for _, pos := range order {
		if seen {
			total += ps.W * ps.Rates[pos]
		}
		if pos == lastPos {
			seen = true
		}
	}
	return total
}

// OrderNext computes Cost_next_ord(O) = Σ_k W·m[k] with
//
//	m[k] = W·min(r_{p_1..p_k}) · Π_{i≤j≤k} sel_{p_i,p_j},
//
// the partial-match model under skip-till-next-match (Section 6.2).
func OrderNext(ps *stats.PatternStats, order []int) float64 {
	total := 0.0
	minRate := 0.0
	selProd := 1.0
	for k, pos := range order {
		if k == 0 || ps.Rates[pos] < minRate {
			minRate = ps.Rates[pos]
		}
		selProd *= ps.Sel[pos][pos]
		for _, prev := range order[:k] {
			selProd *= ps.Sel[prev][pos]
		}
		m := ps.W * minRate * selProd
		total += ps.W * m
	}
	return total
}

// Tree computes Cost_tree(T) = Σ_{N ∈ nodes(T)} PM(N) with
//
//	PM(leaf i)  = W·r_i·sel_{i,i}
//	PM(internal) = PM(L)·PM(R)·SEL_LR,
//
// where SEL_LR multiplies the selectivities of every predicate between the
// left and right subtrees. Unary filters are folded into the leaf term
// (equivalent to pre-filtering the input relations in the join reduction).
func Tree(ps *stats.PatternStats, root *plan.TreeNode) float64 {
	total := 0.0
	var rec func(n *plan.TreeNode) float64
	rec = func(n *plan.TreeNode) float64 {
		var pm float64
		if n.IsLeaf() {
			pm = ps.W * ps.Rates[n.Leaf] * ps.Sel[n.Leaf][n.Leaf]
		} else {
			pm = rec(n.Left) * rec(n.Right) * selLR(ps, n)
		}
		total += pm
		return pm
	}
	rec(root)
	return total
}

// TreePM computes PM(N) for a single node, per the formulas above.
func TreePM(ps *stats.PatternStats, n *plan.TreeNode) float64 {
	if n.IsLeaf() {
		return ps.W * ps.Rates[n.Leaf] * ps.Sel[n.Leaf][n.Leaf]
	}
	return TreePM(ps, n.Left) * TreePM(ps, n.Right) * selLR(ps, n)
}

// selLR multiplies the selectivities between the leaves of n's left and
// right subtrees.
func selLR(ps *stats.PatternStats, n *plan.TreeNode) float64 {
	sel := 1.0
	for _, i := range n.Left.Leaves() {
		for _, j := range n.Right.Leaves() {
			sel *= ps.Sel[i][j]
		}
	}
	return sel
}

// TreeLatency computes Cost_lat_tree(T) = Σ_{N ∈ Anc_T(T_last)} PM(sibling(N)):
// when the temporally last event climbs from its leaf to the root, each hop
// compares against the partial matches buffered at the sibling subtree.
func TreeLatency(ps *stats.PatternStats, root *plan.TreeNode, lastPos int) float64 {
	if lastPos < 0 {
		return 0
	}
	path, ok := root.PathToLeaf(lastPos)
	if !ok {
		return 0
	}
	total := 0.0
	for _, n := range path {
		if sib := root.Sibling(n); sib != nil {
			total += TreePM(ps, sib)
		}
	}
	return total
}

// TreeNext computes Cost_next_tree(T) = Σ_N PM(N) with the skip-till-next
// node model PM(N) = W·min_{i ∈ leaves(N)} r_i · Π_{i,j ∈ leaves(N), i≤j} sel_{i,j}.
func TreeNext(ps *stats.PatternStats, root *plan.TreeNode) float64 {
	total := 0.0
	for _, n := range root.Nodes() {
		leaves := n.Leaves()
		minRate := ps.Rates[leaves[0]]
		selProd := 1.0
		for a, i := range leaves {
			if ps.Rates[i] < minRate {
				minRate = ps.Rates[i]
			}
			selProd *= ps.Sel[i][i]
			for _, j := range leaves[a+1:] {
				selProd *= ps.Sel[i][j]
			}
		}
		total += ps.W * minRate * selProd
	}
	return total
}
