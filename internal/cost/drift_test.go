package cost

import "testing"

func TestDriftScore(t *testing.T) {
	cases := []struct {
		stale, fresh, want float64
	}{
		{3, 2, 0.5},  // running plan 50% more expensive than a replan
		{2, 2, 0},    // no drift
		{1, 2, -0.5}, // running plan still better (negative drift)
		{0, 2, 0},    // degenerate stale cost: no evidence
		{2, 0, 0},    // degenerate fresh cost: no evidence
		{-1, -1, 0},  // negative costs: no evidence
		{100, 25, 3}, // 4x drift
	}
	for _, c := range cases {
		if got := DriftScore(c.stale, c.fresh); got != c.want {
			t.Fatalf("DriftScore(%v, %v) = %v, want %v", c.stale, c.fresh, got, c.want)
		}
	}
}
