package cost

import (
	"repro/internal/plan"
	"repro/internal/predicate"
	"repro/internal/stats"
)

// Model bundles the cost-function configuration handed to plan-generation
// algorithms: the selection strategy (which picks the throughput family,
// Section 6.2), the throughput/latency trade-off parameter α (Section 6.1),
// and the planning position of the temporally last event (the latency
// anchor; -1 when unknown).
type Model struct {
	Strategy predicate.Strategy
	Alpha    float64
	LastPos  int
}

// DefaultModel is the pure-throughput model under skip-till-any-match used
// throughout Section 7's main experiments.
func DefaultModel() Model {
	return Model{Strategy: predicate.SkipTillAnyMatch, Alpha: 0, LastPos: -1}
}

// isAnyMatch reports whether the skip-till-any-match cost family applies.
func (m Model) isAnyMatch() bool { return m.Strategy == predicate.SkipTillAnyMatch }

// throughputOrder selects Cost_ord or Cost_next_ord by strategy. The paper
// reuses the skip-till-next model for the contiguity strategies, whose
// admission rules are at least as restrictive.
func (m Model) throughputOrder(ps *stats.PatternStats, order []int) float64 {
	if m.Strategy == predicate.SkipTillAnyMatch {
		return Order(ps, order)
	}
	return OrderNext(ps, order)
}

func (m Model) throughputTree(ps *stats.PatternStats, root *plan.TreeNode) float64 {
	if m.Strategy == predicate.SkipTillAnyMatch {
		return Tree(ps, root)
	}
	return TreeNext(ps, root)
}

// OrderCost evaluates the hybrid objective Cost_trpt(O) + α·Cost_lat(O).
func (m Model) OrderCost(ps *stats.PatternStats, order []int) float64 {
	c := m.throughputOrder(ps, order)
	if m.Alpha != 0 {
		c += m.Alpha * OrderLatency(ps, order, m.LastPos)
	}
	return c
}

// NodePM estimates the partial matches buffered at a tree node under the
// model's throughput family: the Section 4.2 product form for
// skip-till-any-match, the Section 6.2 min-rate form otherwise.
func (m Model) NodePM(ps *stats.PatternStats, n *plan.TreeNode) float64 {
	if m.isAnyMatch() {
		return TreePM(ps, n)
	}
	leaves := n.Leaves()
	minRate := ps.Rates[leaves[0]]
	sel := 1.0
	for a, i := range leaves {
		if ps.Rates[i] < minRate {
			minRate = ps.Rates[i]
		}
		sel *= ps.Sel[i][i]
		for _, j := range leaves[a+1:] {
			sel *= ps.Sel[i][j]
		}
	}
	return ps.W * minRate * sel
}

// TreeCost evaluates the hybrid objective Cost_trpt(T) + α·Cost_lat(T). The
// latency term sums sibling-node partial matches along the climb of the
// temporally last event (Section 6.1), using the family-consistent NodePM.
func (m Model) TreeCost(ps *stats.PatternStats, root *plan.TreeNode) float64 {
	c := m.throughputTree(ps, root)
	if m.Alpha != 0 && m.LastPos >= 0 {
		if path, ok := root.PathToLeaf(m.LastPos); ok {
			for _, nd := range path {
				if sib := root.Sibling(nd); sib != nil {
					c += m.Alpha * m.NodePM(ps, sib)
				}
			}
		}
	}
	return c
}
