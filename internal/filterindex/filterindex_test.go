package filterindex

import (
	"sort"
	"sync"
	"testing"

	"repro/internal/event"
	"repro/internal/pattern"
	"repro/internal/predicate"
)

var (
	schemaA = event.NewSchema("A", "x", "y")
	schemaB = event.NewSchema("B", "x", "y")
)

func evA(x, y float64) *event.Event { return event.New(schemaA, 0, x, y) }
func evB(x, y float64) *event.Event { return event.New(schemaB, 0, x, y) }

// uc builds the unary condition "e.attr OP const".
func uc(attr string, op pattern.CmpOp, val float64) pattern.Condition {
	return pattern.Cmp(pattern.Ref("e", attr), op, pattern.Const(val))
}

func hitSet(x *Index, e *event.Event) map[Hit]int {
	out := make(map[Hit]int)
	for _, h := range x.AppendHits(e, nil) {
		out[h]++
	}
	return out
}

func wantHits(t *testing.T, x *Index, e *event.Event, want ...Hit) {
	t.Helper()
	got := hitSet(x, e)
	if len(got) != len(want) {
		t.Fatalf("hits = %v, want %v", got, want)
	}
	for _, h := range want {
		if got[h] != 1 {
			t.Fatalf("hits = %v, want exactly one of each of %v", got, want)
		}
	}
}

func TestTypeDispatchAndEquality(t *testing.T) {
	x := Build([]Sub{
		{Lane: 0, Slot: -1, Type: "A", Conds: []pattern.Condition{uc("x", pattern.Eq, 1)}},
		{Lane: 1, Slot: -1, Type: "A", Conds: []pattern.Condition{uc("x", pattern.Eq, 2)}},
		{Lane: 2, Slot: -1, Type: "B"},
	}, nil)
	wantHits(t, x, evA(1, 0), Hit{Lane: 0, Slot: -1})
	wantHits(t, x, evA(2, 0), Hit{Lane: 1, Slot: -1})
	wantHits(t, x, evA(3, 0)) // no bucket
	wantHits(t, x, evB(1, 0), Hit{Lane: 2, Slot: -1})
	// A type with no subscriptions at all matches nothing.
	wantHits(t, x, event.New(event.NewSchema("C", "x"), 0, 1))
	if x.Empty() {
		t.Fatal("Empty() on a populated index")
	}
}

func TestRangeBoundaries(t *testing.T) {
	x := Build([]Sub{
		{Lane: 0, Slot: -1, Type: "A", Conds: []pattern.Condition{uc("x", pattern.Ge, 10)}},
		{Lane: 1, Slot: -1, Type: "A", Conds: []pattern.Condition{uc("x", pattern.Gt, 10)}},
		{Lane: 2, Slot: -1, Type: "A", Conds: []pattern.Condition{uc("x", pattern.Le, 5)}},
		{Lane: 3, Slot: -1, Type: "A", Conds: []pattern.Condition{uc("x", pattern.Lt, 5)}},
	}, nil)
	wantHits(t, x, evA(10, 0), Hit{Lane: 0, Slot: -1}) // Ge inclusive, Gt strict
	wantHits(t, x, evA(11, 0), Hit{Lane: 0, Slot: -1}, Hit{Lane: 1, Slot: -1})
	wantHits(t, x, evA(5, 0), Hit{Lane: 2, Slot: -1}) // Le inclusive, Lt strict
	wantHits(t, x, evA(4, 0), Hit{Lane: 2, Slot: -1}, Hit{Lane: 3, Slot: -1})
	wantHits(t, x, evA(7, 0)) // in the gap
}

func TestBandConjunction(t *testing.T) {
	// One subscription with a band (two constraints, need == 2) plus one
	// with an equality inside the band on the same attribute.
	x := Build([]Sub{
		{Lane: 0, Slot: -1, Type: "A", Conds: []pattern.Condition{uc("x", pattern.Ge, 10), uc("x", pattern.Le, 20)}},
		{Lane: 1, Slot: -1, Type: "A", Conds: []pattern.Condition{uc("x", pattern.Eq, 15)}},
	}, nil)
	wantHits(t, x, evA(9, 0))
	wantHits(t, x, evA(10, 0), Hit{Lane: 0, Slot: -1})
	wantHits(t, x, evA(15, 0), Hit{Lane: 0, Slot: -1}, Hit{Lane: 1, Slot: -1})
	wantHits(t, x, evA(20, 0), Hit{Lane: 0, Slot: -1})
	wantHits(t, x, evA(21, 0))
}

func TestMultiAttributeConjunction(t *testing.T) {
	x := Build([]Sub{
		{Lane: 0, Slot: -1, Type: "A", Conds: []pattern.Condition{uc("x", pattern.Eq, 1), uc("y", pattern.Eq, 2)}},
	}, nil)
	wantHits(t, x, evA(1, 2), Hit{Lane: 0, Slot: -1})
	wantHits(t, x, evA(1, 3))
	wantHits(t, x, evA(0, 2))
}

func TestDuplicateConstraintDeduped(t *testing.T) {
	// The same constraint twice in one subscription must not require two
	// counter bumps (the tables fire it once per event).
	x := Build([]Sub{
		{Lane: 0, Slot: -1, Type: "A", Conds: []pattern.Condition{uc("x", pattern.Eq, 1), uc("x", pattern.Eq, 1)}},
	}, nil)
	wantHits(t, x, evA(1, 0), Hit{Lane: 0, Slot: -1})
}

func TestResidualAndScanList(t *testing.T) {
	// Ne is not indexable: it becomes a residual on an otherwise
	// unconstrained subscription, which lands on the scan list.
	x := Build([]Sub{
		{Lane: 0, Slot: -1, Type: "A", Conds: []pattern.Condition{uc("x", pattern.Ne, 1)}},
		{Lane: 1, Slot: -1, Type: "A", Conds: []pattern.Condition{uc("x", pattern.Eq, 1)},
			Residual: []predicate.UnaryFn{func(e *event.Event) bool { v, _ := e.Attr("y"); return v > 0 }}},
	}, nil)
	wantHits(t, x, evA(2, 0), Hit{Lane: 0, Slot: -1})
	wantHits(t, x, evA(1, 0))                         // Ne fails; residual y>0 fails
	wantHits(t, x, evA(1, 1), Hit{Lane: 1, Slot: -1}) // bucket + residual pass
	rep := x.Report()
	if len(rep) != 1 || rep[0].Subs != 2 || rep[0].ScanSubs != 1 || rep[0].IndexedConstraints != 1 {
		t.Fatalf("report = %+v", rep)
	}
	if rep[0].ResidualChecks == 0 {
		t.Fatal("residual checks not counted")
	}
}

func TestSlotsAndMultiHitOrdering(t *testing.T) {
	// Slot-addressed subscriptions of one lane: all matching slots come
	// back, unordered (callers sort).
	x := Build([]Sub{
		{Lane: 4, Slot: 2, Type: "A", Conds: []pattern.Condition{uc("x", pattern.Ge, 0)}},
		{Lane: 4, Slot: 0, Type: "A", Conds: []pattern.Condition{uc("x", pattern.Ge, 1)}},
		{Lane: 4, Slot: 1, Type: "A", Conds: []pattern.Condition{uc("x", pattern.Ge, 100)}},
	}, nil)
	hits := x.AppendHits(evA(1, 0), nil)
	sort.Slice(hits, func(i, j int) bool { return hits[i].Slot < hits[j].Slot })
	if len(hits) != 2 || hits[0] != (Hit{Lane: 4, Slot: 0}) || hits[1] != (Hit{Lane: 4, Slot: 2}) {
		t.Fatalf("hits = %v", hits)
	}
}

func TestPseudoAttribute(t *testing.T) {
	x := Build([]Sub{
		{Lane: 0, Slot: -1, Type: "A", Conds: []pattern.Condition{uc("partition", pattern.Eq, 3)}},
	}, nil)
	e := evA(0, 0)
	e.Partition = 3
	wantHits(t, x, e, Hit{Lane: 0, Slot: -1})
	e2 := evA(0, 0)
	e2.Partition = 4
	wantHits(t, x, e2)
}

func TestMissingAttributeNeverMatches(t *testing.T) {
	x := Build([]Sub{
		{Lane: 0, Slot: -1, Type: "A", Conds: []pattern.Condition{uc("z", pattern.Ge, 0)}},
	}, nil)
	wantHits(t, x, evA(1, 1)) // schema has no z: constraint cannot be satisfied
}

func TestMatchesAndAlways(t *testing.T) {
	x := Build([]Sub{
		{Lane: 1, Slot: -1, Type: "A", Conds: []pattern.Condition{uc("x", pattern.Eq, 1)}},
	}, []int{5, 2})
	if !x.Matches(evA(1, 0)) || x.Matches(evA(2, 0)) || x.Matches(evB(1, 0)) {
		t.Fatal("Matches verdicts wrong")
	}
	if a := x.Always(); len(a) != 2 || a[0] != 2 || a[1] != 5 {
		t.Fatalf("Always = %v, want sorted [2 5]", a)
	}
	if x.Subs() != 1 {
		t.Fatalf("Subs = %d", x.Subs())
	}
	empty := Build(nil, []int{0})
	if !empty.Empty() {
		t.Fatal("index with only always-lanes should report Empty")
	}
}

func TestUpdateReusesCleanShards(t *testing.T) {
	x := Build([]Sub{
		{Lane: 0, Slot: -1, Type: "A", Conds: []pattern.Condition{uc("x", pattern.Eq, 1)}},
		{Lane: 1, Slot: -1, Type: "B", Conds: []pattern.Condition{uc("x", pattern.Eq, 1)}},
	}, nil)
	for i := 0; i < 10; i++ {
		x.AppendHits(evA(1, 0), nil)
		x.AppendHits(evB(1, 0), nil)
	}
	// Churn touches only B: A's shard — counters included — must carry over.
	x2 := Update(x, []Sub{
		{Lane: 0, Slot: -1, Type: "A", Conds: []pattern.Condition{uc("x", pattern.Eq, 1)}},
		{Lane: 2, Slot: -1, Type: "B", Conds: []pattern.Condition{uc("x", pattern.Eq, 2)}},
	}, nil, map[string]bool{"B": true})
	if x2.shards["A"] != x.shards["A"] {
		t.Fatal("clean shard A was rebuilt")
	}
	if x2.shards["B"] == x.shards["B"] {
		t.Fatal("dirty shard B was reused")
	}
	rep := x2.Report()
	if rep[0].Type != "A" || rep[0].Events != 10 {
		t.Fatalf("A counters lost across Update: %+v", rep[0])
	}
	if rep[1].Type != "B" || rep[1].Events != 0 {
		t.Fatalf("B counters not reset: %+v", rep[1])
	}
	wantHits(t, x2, evB(2, 0), Hit{Lane: 2, Slot: -1})
	wantHits(t, x2, evB(1, 0))
	// nil dirty rebuilds everything.
	x3 := Update(x2, []Sub{{Lane: 0, Slot: -1, Type: "A"}}, nil, nil)
	if x3.shards["A"] == x2.shards["A"] {
		t.Fatal("nil dirty must rebuild all shards")
	}
}

func TestUnarySelectivity(t *testing.T) {
	cond := uc("x", pattern.Eq, 1)
	x := Build([]Sub{{Lane: 0, Slot: -1, Type: "A", Conds: []pattern.Condition{cond}}}, nil)
	if _, ok := x.UnarySelectivity("A", cond); ok {
		t.Fatal("selectivity answered below the evaluation floor")
	}
	for i := 0; i < 64; i++ {
		x.AppendHits(evA(float64(i%2), 0), nil) // half the events have x == 1
	}
	sel, ok := x.UnarySelectivity("A", cond)
	if !ok || sel != 0.5 {
		t.Fatalf("selectivity = %v, %v; want 0.5, true", sel, ok)
	}
	if _, ok := x.UnarySelectivity("B", cond); ok {
		t.Fatal("selectivity for unknown type")
	}
	if _, ok := x.UnarySelectivity("A", uc("x", pattern.Eq, 9)); ok {
		t.Fatal("selectivity for unindexed constraint")
	}
	// The flipped spelling (const on the left) normalizes to the same key.
	flipped := pattern.Cmp(pattern.Const(1), pattern.Eq, pattern.Ref("e", "x"))
	if sel, ok := x.UnarySelectivity("A", flipped); !ok || sel != 0.5 {
		t.Fatalf("flipped selectivity = %v, %v", sel, ok)
	}
}

func TestConcurrentAppendHits(t *testing.T) {
	x := Build([]Sub{
		{Lane: 0, Slot: -1, Type: "A", Conds: []pattern.Condition{uc("x", pattern.Ge, 10), uc("x", pattern.Le, 20)}},
		{Lane: 1, Slot: -1, Type: "A", Conds: []pattern.Condition{uc("x", pattern.Eq, 15)}},
		{Lane: 2, Slot: -1, Type: "A"},
	}, nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				v := float64(i % 30)
				n := len(x.AppendHits(evA(v, 0), nil))
				want := 1 // scan sub
				if v >= 10 && v <= 20 {
					want++
				}
				if v == 15 {
					want++
				}
				if n != want {
					t.Errorf("x=%v: %d hits, want %d", v, n, want)
					return
				}
			}
		}()
	}
	wg.Wait()
}
