// Package filterindex implements the ingress discrimination network that
// lets a Session route each event only to the lanes that can possibly use
// it, replacing broadcast + per-lane re-filtering (the second MQO sharing
// axis: sharing *filtering*, complementing the shared joins of
// internal/mqo).
//
// The network has two stages, evaluated once per event:
//
//  1. exact type dispatch — the event's type selects one shard; events of a
//     type no subscription names match nothing and are dropped at ingress;
//  2. constant unary predicates per type — equality constraints
//     (attr == const) hash into buckets, ordered comparisons
//     (attr >=/>/<=/< const) become sorted bound lists scanned as a prefix,
//     and everything the classifier cannot compile (Ne, attr-vs-attr,
//     opaque closures) lands on a per-subscription residual list or, for
//     subscriptions with no indexable constraint at all, a scan list.
//
// A subscription is a conjunction: the event must match the type, every
// indexable constraint and every residual filter. Matching uses the
// counting algorithm (SIFT / Le Subscribe style): each matched constraint
// bumps a per-subscription counter on pooled scratch, and a subscription
// whose counter reaches its constraint count has its residuals scanned and,
// on success, emits a (lane, slot) hit. Per-event cost is therefore
// O(matched constraints + hits), not O(subscriptions).
//
// An Index is immutable after construction; the owner publishes it through
// an atomic pointer (RCU) so the feed path never locks. Update derives a
// successor index reusing the shards — and their live counters — of every
// type outside the dirty set, which is what makes query churn cheap: only
// the affected types' tables are rebuilt.
package filterindex

import (
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/event"
	"repro/internal/pattern"
	"repro/internal/predicate"
)

// Sub is one subscription: an event intake registered by a lane. Slot is an
// opaque intake id within the lane (engines use it to address a specific
// DAG leaf or negation buffer; lanes that only need a routed/not-routed
// verdict pass -1). Conds are the intake's unary conditions — indexable
// ones are compiled into the constraint tables, the rest are scanned as
// residuals. Residual carries already-compiled opaque filters with no
// declarative form; they are always scanned.
type Sub struct {
	Lane     int
	Slot     int
	Type     string
	Conds    []pattern.Condition
	Residual []predicate.UnaryFn
}

// Hit identifies a matched subscription.
type Hit struct {
	Lane int32
	Slot int32
}

// minSelEvents is the evaluation floor below which UnarySelectivity
// declines to answer, leaving the drift collector on its sampled estimate.
const minSelEvents = 32

// Index is the immutable two-stage discrimination network. Safe for
// concurrent evaluation; rebuilt (not mutated) on churn.
type Index struct {
	shards map[string]*shard
	always []int32 // lanes that receive every event, sorted ascending
	nSubs  int
}

// selCounter tracks lifetime hit counts for one distinct indexed
// constraint, shared by every subscription registering it; paired with the
// shard's eval counter it yields the measured post-index selectivity.
type selCounter struct {
	hits atomic.Int64
}

type shardSub struct {
	lane, slot int32
	need       int32 // distinct indexed constraints that must match
	residual   []predicate.UnaryFn
}

type bound struct {
	val    float64
	strict bool // Gt / Lt (excludes equality)
	subs   []int32
	sel    *selCounter
}

type eqEntry struct {
	subs []int32
	sel  *selCounter
}

// attrResolved caches the attribute's index in one schema, like the
// per-schema caches in internal/pattern's compiled accessors.
type attrResolved struct {
	s *event.Schema
	i int
}

type attrGroup struct {
	attr     string
	pseudo   func(*event.Event) float64
	resolved atomic.Pointer[attrResolved]
	eq       map[float64]*eqEntry
	lower    []bound // attr >= / > val, sorted by val ascending
	upper    []bound // attr <= / < val, sorted by val descending
}

type shard struct {
	typ      string
	subs     []shardSub
	scan     []int32 // subs with need == 0: checked on every event of the type
	groups   []*attrGroup
	selTab   map[string]*selCounter // normalized constraint key → counter
	nIndexed int                    // distinct indexed constraints
	scratch  sync.Pool              // *evalScratch

	evals    atomic.Int64 // events of this type evaluated
	hits     atomic.Int64 // subscription hits emitted
	resCheck atomic.Int64 // residual filter evaluations
}

type evalScratch struct {
	counts  []int32
	touched []int32
}

func (g *attrGroup) value(e *event.Event) (float64, bool) {
	if g.pseudo != nil {
		return g.pseudo(e), true
	}
	res := g.resolved.Load()
	if res == nil || res.s != e.Schema {
		nr := &attrResolved{s: e.Schema, i: -1}
		if e.Schema != nil {
			if i, ok := e.Schema.Index(g.attr); ok {
				nr.i = i
			}
		}
		g.resolved.Store(nr)
		res = nr
	}
	if res.i < 0 || res.i >= len(e.Attrs) {
		return 0, false
	}
	return e.Attrs[res.i], true
}

// conKey is the normalized identity of an indexed constraint.
func conKey(attr string, op pattern.CmpOp, val float64) string {
	return attr + "|" + op.String() + "|" + strconv.FormatFloat(val, 'g', -1, 64)
}

// Always returns the lanes that bypass the network and receive every
// event (opaque detectors; shared DAGs when the full index is disabled).
func (x *Index) Always() []int32 { return x.always }

// Subs returns the total number of registered subscriptions.
func (x *Index) Subs() int { return x.nSubs }

// Empty reports whether no subscription is registered at all, in which
// case evaluation is pure overhead and the caller may broadcast.
func (x *Index) Empty() bool { return len(x.shards) == 0 }

func (sh *shard) getScratch() *evalScratch {
	sc, _ := sh.scratch.Get().(*evalScratch)
	if sc == nil || len(sc.counts) < len(sh.subs) {
		sc = &evalScratch{counts: make([]int32, len(sh.subs))}
	}
	return sc
}

func (sh *shard) putScratch(sc *evalScratch) {
	for _, si := range sc.touched {
		sc.counts[si] = 0
	}
	sc.touched = sc.touched[:0]
	sh.scratch.Put(sc)
}

// complete runs the subscription's residual filters and appends its hit.
func (sh *shard) complete(e *event.Event, si int32, dst []Hit) []Hit {
	sub := &sh.subs[si]
	for _, fn := range sub.residual {
		sh.resCheck.Add(1)
		if !fn(e) {
			return dst
		}
	}
	sh.hits.Add(1)
	return append(dst, Hit{Lane: sub.lane, Slot: sub.slot})
}

func (sh *shard) bump(sc *evalScratch, e *event.Event, si int32, dst []Hit) []Hit {
	c := sc.counts[si] + 1
	sc.counts[si] = c
	if c == 1 {
		sc.touched = append(sc.touched, si)
	}
	if c == sh.subs[si].need {
		dst = sh.complete(e, si, dst)
	}
	return dst
}

// AppendHits evaluates the event against its type's shard, appending every
// matching subscription's (lane, slot) tag to dst. Hits are not ordered;
// callers that need (lane, slot) grouping sort them. Safe for concurrent
// use.
func (x *Index) AppendHits(e *event.Event, dst []Hit) []Hit {
	sh := x.shards[e.Type]
	if sh == nil {
		return dst
	}
	sh.evals.Add(1)
	for _, si := range sh.scan {
		dst = sh.complete(e, si, dst)
	}
	if len(sh.groups) == 0 {
		return dst
	}
	sc := sh.getScratch()
	for _, g := range sh.groups {
		v, ok := g.value(e)
		if !ok {
			continue
		}
		if en := g.eq[v]; en != nil {
			en.sel.hits.Add(1)
			for _, si := range en.subs {
				dst = sh.bump(sc, e, si, dst)
			}
		}
		for i := range g.lower {
			b := &g.lower[i]
			if b.val > v {
				break
			}
			if b.val == v && b.strict {
				continue
			}
			b.sel.hits.Add(1)
			for _, si := range b.subs {
				dst = sh.bump(sc, e, si, dst)
			}
		}
		for i := range g.upper {
			b := &g.upper[i]
			if b.val < v {
				break
			}
			if b.val == v && b.strict {
				continue
			}
			b.sel.hits.Add(1)
			for _, si := range b.subs {
				dst = sh.bump(sc, e, si, dst)
			}
		}
	}
	sh.putScratch(sc)
	return dst
}

// Matches reports whether the event matches any subscription. Convenience
// for single-query ingress (ShardedRuntime) where the verdict is binary.
func (x *Index) Matches(e *event.Event) bool {
	var buf [4]Hit
	return len(x.AppendHits(e, buf[:0])) > 0
}

// UnarySelectivity returns the measured post-index selectivity of an
// indexable unary condition on the given event type: the fraction of
// evaluated events of that type that satisfied the constraint, counted by
// the index's own tables. ok is false when the condition is not indexed
// for the type or fewer than minSelEvents events have been observed —
// callers (the drift collector) then fall back to sampled estimates.
func (x *Index) UnarySelectivity(typ string, cond pattern.Condition) (float64, bool) {
	sh := x.shards[typ]
	if sh == nil {
		return 0, false
	}
	attr, op, val, ok := cond.IndexableUnary()
	if !ok {
		return 0, false
	}
	sel := sh.selTab[conKey(attr, op, val)]
	if sel == nil {
		return 0, false
	}
	evals := sh.evals.Load()
	if evals < minSelEvents {
		return 0, false
	}
	return float64(sel.hits.Load()) / float64(evals), true
}

// TypeReport is the per-type slice of Report.
type TypeReport struct {
	Type               string
	Subs               int   // subscriptions registered for the type
	ScanSubs           int   // subscriptions with no indexable constraint
	IndexedConstraints int   // distinct constraints in the tables
	Events             int64 // events of the type evaluated
	Hits               int64 // subscription hits emitted
	ResidualChecks     int64 // residual filter evaluations
}

// TypeInfo returns the TypeReport of a single event type — the tracing
// layer calls it around a sampled event's AppendHits to describe the
// routing surface it crossed (subscription count, indexed constraints,
// residual-check counter deltas). ok is false when no subscription names
// the type.
func (x *Index) TypeInfo(typ string) (TypeReport, bool) {
	sh := x.shards[typ]
	if sh == nil {
		return TypeReport{}, false
	}
	return TypeReport{
		Type:               typ,
		Subs:               len(sh.subs),
		ScanSubs:           len(sh.scan),
		IndexedConstraints: sh.nIndexed,
		Events:             sh.evals.Load(),
		Hits:               sh.hits.Load(),
		ResidualChecks:     sh.resCheck.Load(),
	}, true
}

// Report snapshots per-type counters, sorted by type name.
func (x *Index) Report() []TypeReport {
	out := make([]TypeReport, 0, len(x.shards))
	for typ, sh := range x.shards {
		out = append(out, TypeReport{
			Type:               typ,
			Subs:               len(sh.subs),
			ScanSubs:           len(sh.scan),
			IndexedConstraints: sh.nIndexed,
			Events:             sh.evals.Load(),
			Hits:               sh.hits.Load(),
			ResidualChecks:     sh.resCheck.Load(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Type < out[j].Type })
	return out
}

// Build constructs an index over the subscriptions from scratch.
func Build(subs []Sub, always []int) *Index {
	return Update(nil, subs, always, nil)
}

// Update derives a successor index. Shards of types outside dirty are
// reused by pointer from prev — tables and counters intact — so churn pays
// only for the types it touches. A nil dirty set (or nil prev) rebuilds
// everything. The caller must pass the FULL subscription set; dirty only
// declares which types' membership may have changed.
func Update(prev *Index, subs []Sub, always []int, dirty map[string]bool) *Index {
	x := &Index{shards: make(map[string]*shard), nSubs: len(subs)}
	x.always = make([]int32, 0, len(always))
	for _, l := range always {
		x.always = append(x.always, int32(l))
	}
	sort.Slice(x.always, func(i, j int) bool { return x.always[i] < x.always[j] })

	byType := make(map[string][]Sub)
	for _, s := range subs {
		byType[s.Type] = append(byType[s.Type], s)
	}
	for typ, ts := range byType {
		if prev != nil && dirty != nil && !dirty[typ] {
			if old := prev.shards[typ]; old != nil {
				x.shards[typ] = old
				continue
			}
		}
		x.shards[typ] = buildShard(typ, ts)
	}
	return x
}

func buildShard(typ string, subs []Sub) *shard {
	sh := &shard{typ: typ, selTab: make(map[string]*selCounter)}
	groups := make(map[string]*attrGroup)
	type conRef struct {
		g      *attrGroup
		op     pattern.CmpOp
		val    float64
		sel    *selCounter
		rawSub []int32
	}
	cons := make(map[string]*conRef)
	for _, s := range subs {
		si := int32(len(sh.subs))
		ss := shardSub{lane: int32(s.Lane), slot: int32(s.Slot)}
		seen := make(map[string]bool, len(s.Conds))
		for _, c := range s.Conds {
			attr, op, val, ok := c.IndexableUnary()
			if !ok {
				ss.residual = append(ss.residual, c.UnaryFn())
				continue
			}
			key := conKey(attr, op, val)
			if seen[key] { // duplicate within one subscription would skew counting
				continue
			}
			seen[key] = true
			ss.need++
			cr := cons[key]
			if cr == nil {
				g := groups[attr]
				if g == nil {
					g = &attrGroup{attr: attr, pseudo: pseudoAccessor(attr)}
					groups[attr] = g
				}
				cr = &conRef{g: g, op: op, val: val, sel: &selCounter{}}
				cons[key] = cr
				sh.selTab[key] = cr.sel
			}
			cr.rawSub = append(cr.rawSub, si)
		}
		ss.residual = append(ss.residual, s.Residual...)
		if ss.need == 0 {
			sh.scan = append(sh.scan, si)
		}
		sh.subs = append(sh.subs, ss)
	}
	// Materialize constraint tables in deterministic order.
	keys := make([]string, 0, len(cons))
	for k := range cons {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		cr := cons[k]
		sh.nIndexed++
		switch cr.op {
		case pattern.Eq:
			if cr.g.eq == nil {
				cr.g.eq = make(map[float64]*eqEntry)
			}
			en := cr.g.eq[cr.val]
			if en == nil {
				en = &eqEntry{sel: cr.sel}
				cr.g.eq[cr.val] = en
			}
			en.subs = append(en.subs, cr.rawSub...)
		case pattern.Ge, pattern.Gt:
			cr.g.lower = append(cr.g.lower, bound{val: cr.val, strict: cr.op == pattern.Gt, subs: cr.rawSub, sel: cr.sel})
		case pattern.Le, pattern.Lt:
			cr.g.upper = append(cr.g.upper, bound{val: cr.val, strict: cr.op == pattern.Lt, subs: cr.rawSub, sel: cr.sel})
		}
	}
	names := make([]string, 0, len(groups))
	for a := range groups {
		names = append(names, a)
	}
	sort.Strings(names)
	for _, a := range names {
		g := groups[a]
		sort.Slice(g.lower, func(i, j int) bool { return g.lower[i].val < g.lower[j].val })
		sort.Slice(g.upper, func(i, j int) bool { return g.upper[i].val > g.upper[j].val })
		sh.groups = append(sh.groups, g)
	}
	return sh
}

// pseudoAccessor mirrors event.Attr's pseudo-attribute resolution so the
// index can constrain ts/serial/partition/pserial without schema lookups.
func pseudoAccessor(attr string) func(*event.Event) float64 {
	switch attr {
	case "ts":
		return func(e *event.Event) float64 { return float64(e.TS) }
	case "serial":
		return func(e *event.Event) float64 { return float64(e.Serial) }
	case "pserial":
		return func(e *event.Event) float64 { return float64(e.PSerial) }
	case "partition":
		return func(e *event.Event) float64 { return float64(e.Partition) }
	}
	return nil
}
