// Package adaptive implements the on-the-fly re-optimisation mechanism the
// paper assumes in Section 6.3: a CEP engine "must continuously estimate
// the current statistic values and, when a significant deviation is
// detected, adapt itself by recalculating the affected evaluation plans".
//
// The Controller wraps a planner and an engine factory. It feeds every
// event to a sliding-window statistics estimator; when the estimated cost
// of the current plan and the cost of a freshly generated plan diverge by
// more than the configured threshold, it swaps in new engines at the next
// check point. In-flight partial matches are discarded at the swap (the
// replacement engine re-reads nothing), so matches whose window spans the
// swap instant can be lost — the paper's companion work [27] studies
// state-migrating protocols; this package implements the plan-switching
// substrate they build on.
package adaptive

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/event"
	"repro/internal/match"
	"repro/internal/metrics"
	"repro/internal/nfa"
	"repro/internal/pattern"
	"repro/internal/stats"
	"repro/internal/tree"
)

// Source supplies fresh stream statistics to the re-optimisation loop in
// place of the controller's private sliding-window estimator. A session
// whose lanes all observe the same broadcast feed implements it with one
// shared collector (internal/drift.Collector satisfies the contract), so
// every private runtime's controller folds onto the same measurement
// machinery as the shared evaluation DAGs. Implementations must be safe for
// concurrent use: Snapshot runs on the controller's worker goroutine while
// the feed keeps observing.
type Source interface {
	// Ready reports whether the estimates are trustworthy yet (warmup).
	Ready() bool
	// Snapshot freezes current estimates into a Stats for plan generation.
	Snapshot(conds []pattern.Condition, aliasTypes map[string]string) *stats.Stats
}

// Config tunes the adaptivity loop.
type Config struct {
	// Planner generates plans; its algorithm and strategy are reused for
	// every re-optimisation.
	Planner *core.Planner
	// InitialPlan, when non-nil, is installed as the first plan instead of
	// running the planner on the initial statistics — for callers (like a
	// session wrapping an already-planned query) that have the plan in
	// hand. Re-optimisations still go through Planner.
	InitialPlan *core.Plan
	// Source, when non-nil, supplies the fresh statistics at each check and
	// the controller performs no estimation of its own (EstimationWindow is
	// ignored; events are not observed). When nil the controller runs a
	// private sliding-window estimator over the events it processes.
	Source Source
	// EstimationWindow is the sliding window of the online statistics
	// estimator; defaults to 4× the pattern window.
	EstimationWindow event.Time
	// CheckEvery is the number of events between re-optimisation checks;
	// default 512.
	CheckEvery int
	// Threshold is the minimum drift score (cost.DriftScore of the current
	// plan re-priced under fresh statistics versus a fresh replan) that
	// triggers a plan swap; default 0.25.
	Threshold float64
	// WarmupEvents suppresses re-optimisation until the estimator has seen
	// enough data; default CheckEvery.
	WarmupEvents int
	// MaxKleeneBase is passed to the engines.
	MaxKleeneBase int
}

func (c Config) withDefaults(p *pattern.Pattern) Config {
	if c.Planner == nil {
		c.Planner = core.NewPlanner(core.AlgGreedy)
	}
	if c.EstimationWindow <= 0 {
		c.EstimationWindow = 4 * p.Window
	}
	if c.CheckEvery <= 0 {
		c.CheckEvery = 512
	}
	if c.Threshold <= 0 {
		c.Threshold = 0.25
	}
	if c.WarmupEvents <= 0 {
		c.WarmupEvents = c.CheckEvery
	}
	return c
}

// Stats reports the controller's activity.
type Stats struct {
	Processed int64
	Matches   int64
	Replans   int64 // re-optimisation checks that produced a new plan
	Checks    int64 // re-optimisation checks performed
}

// Controller is an adaptive pattern runtime.
type Controller struct {
	cfg     Config
	pat     *pattern.Pattern
	online  *stats.Online // nil when an external Source supplies statistics
	alias   map[string]string
	conds   []pattern.Condition
	plan    *core.Plan
	engines []metrics.Engine
	st      Stats
	out     []*match.Match
}

// New builds a controller with an initial plan from the given (possibly
// default) statistics.
func New(p *pattern.Pattern, initial *stats.Stats, cfg Config) (*Controller, error) {
	cfg = cfg.withDefaults(p)
	if initial == nil {
		initial = stats.New()
	}
	c := &Controller{
		cfg:   cfg,
		pat:   p,
		alias: stats.AliasTypes(p),
		conds: p.Conds,
	}
	if cfg.Source == nil {
		c.online = stats.NewOnline(cfg.EstimationWindow)
	}
	if cfg.InitialPlan != nil {
		if err := c.installPlan(cfg.InitialPlan); err != nil {
			return nil, err
		}
		return c, nil
	}
	if err := c.install(initial); err != nil {
		return nil, err
	}
	return c, nil
}

// install plans with the given statistics and replaces the engines.
func (c *Controller) install(st *stats.Stats) error {
	pl, err := c.cfg.Planner.Plan(c.pat, st)
	if err != nil {
		return err
	}
	return c.installPlan(pl)
}

// installPlan builds and swaps in the engines for an already-generated
// plan.
func (c *Controller) installPlan(pl *core.Plan) error {
	engines := make([]metrics.Engine, 0, len(pl.Simple))
	for _, sp := range pl.Simple {
		if sp.IsTree() {
			e, err := tree.New(sp.Compiled, sp.TreeTerms(), tree.Config{
				Strategy:      c.cfg.Planner.Strategy,
				MaxKleeneBase: c.cfg.MaxKleeneBase,
			})
			if err != nil {
				return err
			}
			engines = append(engines, e)
		} else {
			e, err := nfa.New(sp.Compiled, sp.OrderTerms(), nfa.Config{
				Strategy:      c.cfg.Planner.Strategy,
				MaxKleeneBase: c.cfg.MaxKleeneBase,
			})
			if err != nil {
				return err
			}
			engines = append(engines, e)
		}
	}
	c.plan = pl
	c.engines = engines
	return nil
}

// Process consumes one event, returning emitted matches. Periodically it
// re-estimates statistics and swaps plans when the current plan has
// drifted from optimal by more than the threshold.
func (c *Controller) Process(ev *event.Event) ([]*match.Match, error) {
	c.st.Processed++
	if c.online != nil {
		c.online.Observe(ev)
	}
	c.out = c.out[:0]
	for _, e := range c.engines {
		c.out = append(c.out, e.Process(ev)...)
	}
	c.st.Matches += int64(len(c.out))
	if c.st.Processed >= int64(c.cfg.WarmupEvents) &&
		c.st.Processed%int64(c.cfg.CheckEvery) == 0 {
		if err := c.maybeReplan(); err != nil {
			return nil, err
		}
	}
	return c.out, nil
}

// maybeReplan compares the current plan's cost under fresh statistics with
// a newly optimised plan and swaps when the improvement clears the
// threshold.
func (c *Controller) maybeReplan() error {
	c.st.Checks++
	var fresh *stats.Stats
	if c.cfg.Source != nil {
		if !c.cfg.Source.Ready() {
			return nil
		}
		fresh = c.cfg.Source.Snapshot(c.conds, c.alias)
	} else {
		fresh = c.online.Snapshot(c.conds, c.alias)
	}
	newPlan, err := c.cfg.Planner.Plan(c.pat, fresh)
	if err != nil {
		return err
	}
	currentCost, err := c.costUnder(fresh)
	if err != nil {
		return err
	}
	if cost.DriftScore(currentCost, newPlan.TotalCost) < c.cfg.Threshold {
		return nil
	}
	c.st.Replans++
	return c.install(fresh)
}

// costUnder re-costs the *current* plan under new statistics.
func (c *Controller) costUnder(fresh *stats.Stats) (float64, error) {
	total := 0.0
	for _, sp := range c.plan.Simple {
		ps := stats.For(sp.Compiled.Source, fresh)
		if ps.N() != sp.Stats.N() {
			return 0, fmt.Errorf("adaptive: statistics shape changed")
		}
		if sp.IsTree() {
			total += sp.Model.TreeCost(ps, sp.Tree)
		} else {
			total += sp.Model.OrderCost(ps, sp.Order)
		}
	}
	return total, nil
}

// Flush releases pending matches from the engines.
func (c *Controller) Flush() []*match.Match {
	c.out = c.out[:0]
	for _, e := range c.engines {
		c.out = append(c.out, e.Flush()...)
	}
	c.st.Matches += int64(len(c.out))
	return c.out
}

// Stats returns the controller counters.
func (c *Controller) Stats() Stats { return c.st }

// Config returns the defaults-applied configuration the controller runs
// under, so callers (and tests) can verify what the zero value selected.
func (c *Controller) Config() Config { return c.cfg }

// CurrentPlan renders the active plan's orders/trees for inspection.
func (c *Controller) CurrentPlan() *core.Plan { return c.plan }
