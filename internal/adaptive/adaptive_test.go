package adaptive

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/pattern"
	"repro/internal/stats"
)

var (
	schemaA = event.NewSchema("A", "x")
	schemaB = event.NewSchema("B", "x")
	schemaC = event.NewSchema("C", "x")
)

// shiftingStream generates a stream whose rate profile flips halfway:
// first A is rare (1%) and B frequent, then the reverse.
func shiftingStream(n int) []*event.Event {
	rng := rand.New(rand.NewSource(3))
	var events []*event.Event
	ts := event.Time(0)
	for i := 0; i < n; i++ {
		ts += 10
		rareFirstHalf := i < n/2
		var s *event.Schema
		switch {
		case i%100 == 0:
			if rareFirstHalf {
				s = schemaA
			} else {
				s = schemaB
			}
		case i%2 == 0:
			if rareFirstHalf {
				s = schemaB
			} else {
				s = schemaA
			}
		default:
			s = schemaC
		}
		events = append(events, event.New(s, ts, float64(rng.Intn(5))))
	}
	return event.Drain(event.NewSliceStream(events))
}

// seqPattern declares selective equality predicates so that plan costs are
// genuinely order-sensitive (with only the implicit temporal constraints,
// the last level dominates every order equally).
func seqPattern() *pattern.Pattern {
	return pattern.Seq(2*event.Second,
		pattern.E("A", "a"), pattern.E("B", "b"), pattern.E("C", "c"),
	).Where(
		pattern.AttrCmp("a", "x", pattern.Eq, "b", "x"),
		pattern.AttrCmp("b", "x", pattern.Eq, "c", "x"),
	)
}

func TestControllerReplansOnDrift(t *testing.T) {
	p := seqPattern()
	// Initial statistics match the first half: A rare.
	initial := stats.New()
	initial.SetRate("A", 0.5)
	initial.SetRate("B", 5)
	initial.SetRate("C", 5)
	ctrl, err := New(p, initial, Config{
		Planner:    core.NewPlanner(core.AlgDPLD),
		CheckEvery: 200,
		Threshold:  0.10,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range shiftingStream(4000) {
		if _, err := ctrl.Process(ev); err != nil {
			t.Fatal(err)
		}
	}
	ctrl.Flush()
	st := ctrl.Stats()
	if st.Checks == 0 {
		t.Fatal("no re-optimisation checks performed")
	}
	if st.Replans == 0 {
		t.Fatal("rate flip did not trigger a replan")
	}
	if st.Processed != 4000 {
		t.Fatalf("Processed = %d", st.Processed)
	}
	// After the flip, B is the rare type: the active plan should start
	// with it.
	order := ctrl.CurrentPlan().Simple[0].OrderTerms()
	if order[0] != 1 {
		t.Fatalf("post-flip plan starts with term %d, want 1 (B): %v", order[0], order)
	}
}

func TestControllerStableStatsNoReplan(t *testing.T) {
	p := seqPattern()
	rng := rand.New(rand.NewSource(9))
	var events []*event.Event
	ts := event.Time(0)
	for i := 0; i < 3000; i++ {
		ts += 10
		s := []*event.Schema{schemaA, schemaB, schemaC}[rng.Intn(3)]
		events = append(events, event.New(s, ts, 0))
	}
	events = event.Drain(event.NewSliceStream(events))
	// Initial statistics already reflect the uniform stream.
	initial := stats.New()
	initial.SetRate("A", 33)
	initial.SetRate("B", 33)
	initial.SetRate("C", 33)
	ctrl, err := New(p, initial, Config{
		Planner:    core.NewPlanner(core.AlgDPLD),
		CheckEvery: 300,
		Threshold:  0.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range events {
		if _, err := ctrl.Process(ev); err != nil {
			t.Fatal(err)
		}
	}
	st := ctrl.Stats()
	if st.Checks == 0 {
		t.Fatal("no checks performed")
	}
	if st.Replans != 0 {
		t.Fatalf("replanned %d times on stable statistics", st.Replans)
	}
}

func TestControllerDetectsMatches(t *testing.T) {
	p := seqPattern()
	ctrl, err := New(p, nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	events := event.Drain(event.NewSliceStream([]*event.Event{
		event.New(schemaA, 1, 0),
		event.New(schemaB, 2, 0),
		event.New(schemaC, 3, 0),
	}))
	total := 0
	for _, ev := range events {
		ms, err := ctrl.Process(ev)
		if err != nil {
			t.Fatal(err)
		}
		total += len(ms)
	}
	total += len(ctrl.Flush())
	if total != 1 {
		t.Fatalf("got %d matches, want 1", total)
	}
	if ctrl.Stats().Matches != 1 {
		t.Fatalf("Stats.Matches = %d", ctrl.Stats().Matches)
	}
}

// fixedSource is a Source stub: a readiness flag and a canned snapshot.
type fixedSource struct {
	ready bool
	stats *stats.Stats
}

func (f *fixedSource) Ready() bool { return f.ready }
func (f *fixedSource) Snapshot([]pattern.Condition, map[string]string) *stats.Stats {
	return f.stats
}

func TestControllerExternalSource(t *testing.T) {
	p := seqPattern()
	// Selective predicates keep plan costs order-sensitive (see seqPattern);
	// the selectivities are stationary, only the rates invert.
	sel := func(s *stats.Stats) {
		for _, c := range p.Conds {
			s.SetSelectivity(c, 0.2)
		}
	}
	initial := stats.New()
	initial.SetRate("A", 0.5)
	initial.SetRate("B", 50)
	initial.SetRate("C", 50)
	sel(initial)
	// The external measurements say the rates inverted: B is now rare.
	shifted := stats.New()
	shifted.SetRate("A", 50)
	shifted.SetRate("B", 0.5)
	shifted.SetRate("C", 50)
	sel(shifted)
	src := &fixedSource{ready: false, stats: shifted}
	ctrl, err := New(p, initial, Config{
		Planner:    core.NewPlanner(core.AlgDPLD),
		CheckEvery: 100,
		Threshold:  0.10,
		Source:     src,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ctrl.online != nil {
		t.Fatal("controller built a private estimator despite an external source")
	}
	feed := func(n int) {
		ts := event.Time(0)
		for i := 0; i < n; i++ {
			ts += 10
			if _, err := ctrl.Process(event.New(schemaC, ts, 0)); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Source not ready: checks happen, replans are suppressed.
	feed(300)
	if st := ctrl.Stats(); st.Checks == 0 || st.Replans != 0 {
		t.Fatalf("warmup suppression failed: %+v", st)
	}
	src.ready = true
	feed(300)
	if st := ctrl.Stats(); st.Replans == 0 {
		t.Fatalf("ready source with inverted rates did not trigger a replan: %+v", st)
	}
	order := ctrl.CurrentPlan().Simple[0].OrderTerms()
	if order[0] != 1 {
		t.Fatalf("post-replan plan starts with term %d, want 1 (B): %v", order[0], order)
	}
}

func TestControllerDefaults(t *testing.T) {
	p := seqPattern()
	ctrl, err := New(p, nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if ctrl.cfg.CheckEvery != 512 || ctrl.cfg.Threshold != 0.25 {
		t.Fatalf("defaults = %+v", ctrl.cfg)
	}
	if ctrl.cfg.EstimationWindow != 8*event.Second {
		t.Fatalf("estimation window = %d", ctrl.cfg.EstimationWindow)
	}
}
