package harness

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/graph"
	"repro/internal/stats"
)

// FigExtensions is an experiment beyond the paper: the extension algorithms
// (KBZ, SIM-ANNEAL, AUTO) against the paper's order-based set on large
// *chain-topology* conjunctions — the acyclic query graphs for which
// Section 4.3 promises polynomial optimal planning. Reported per size:
// normalized plan cost (vs EFREQ, higher is better) and planning time.
func (r *Runner) FigExtensions() ([]Table, error) {
	algs := []string{core.AlgEFreq, core.AlgGreedy, core.AlgIIGreedy,
		core.AlgDPLD, core.AlgKBZ, core.AlgSimAnneal, core.AlgAuto}
	costT := Table{
		Title:   "Extension E1a: normalized plan cost on chain-topology conjunctions",
		Columns: append([]string{"size", "topology"}, algs...),
	}
	timeT := Table{
		Title:   "Extension E1b: plan generation time (ms) on chain-topology conjunctions",
		Columns: append([]string{"size", "topology"}, algs...),
	}
	rng := newRng(r.Cfg.Seed + 6000)
	for _, size := range r.Cfg.LargeSizes {
		if size > r.Cfg.Symbols {
			continue
		}
		p := r.Stocks.ChainConjunction(size, r.Cfg.Window, rng)
		st := r.StatsFor(p)
		ps := stats.For(p, st)
		topo := graph.FromStats(ps).Classify().String()
		model := cost.DefaultModel()
		baseline := cost.Order(ps, core.EFreq{}.Order(ps, model))
		costRow := []string{fmt.Sprint(size), topo}
		timeRow := []string{fmt.Sprint(size), topo}
		for _, alg := range algs {
			if alg == core.AlgDPLD && size > r.Cfg.MaxDPLDSize {
				costRow = append(costRow, "-")
				timeRow = append(timeRow, "-")
				continue
			}
			oa, err := core.NewOrderAlgorithm(alg)
			if err != nil {
				return nil, err
			}
			start := time.Now()
			order := oa.Order(ps, model)
			elapsed := time.Since(start)
			costRow = append(costRow, f2(baseline/cost.Order(ps, order)))
			timeRow = append(timeRow, fmt.Sprintf("%.3f", float64(elapsed.Microseconds())/1000))
		}
		costT.Rows = append(costT.Rows, costRow)
		timeT.Rows = append(timeT.Rows, timeRow)
	}
	return []Table{costT, timeT}, nil
}
