package harness

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/pattern"
	"repro/internal/predicate"
	"repro/internal/stats"
	"repro/internal/workload"
)

// categoryResults runs every algorithm over every category's pattern set
// once and caches the aggregate per (kind, algorithm, category). It backs
// Figures 4 and 5.
type categoryResults struct {
	order map[string]map[workload.Category]*avg
	tree  map[string]map[workload.Category]*avg
}

func (r *Runner) categoryResults() (*categoryResults, error) {
	out := &categoryResults{
		order: map[string]map[workload.Category]*avg{},
		tree:  map[string]map[workload.Category]*avg{},
	}
	for _, cat := range workload.Categories() {
		pats := r.Stocks.PatternSet(cat, r.Cfg.Sizes, r.Cfg.PerSize, r.Cfg.Window, r.Cfg.Seed+int64(len(cat)))
		for _, alg := range append(core.OrderAlgorithmNames(), core.TreeAlgorithmNames()...) {
			store := out.order
			if _, err := core.NewTreeAlgorithm(alg); err == nil {
				store = out.tree
			}
			if store[alg] == nil {
				store[alg] = map[workload.Category]*avg{}
			}
			if store[alg][cat] == nil {
				store[alg][cat] = &avg{}
			}
			for _, p := range pats {
				res, err := r.RunPattern(alg, p, predicate.SkipTillAnyMatch, 0)
				if err != nil {
					return nil, fmt.Errorf("%s on %s: %w", alg, p, err)
				}
				store[alg][cat].add(res)
			}
		}
	}
	return out, nil
}

func categoryTable(title, metric string, algs []string,
	data map[string]map[workload.Category]*avg, pick func(*avg) float64, format func(float64) string) Table {
	cols := []string{"algorithm"}
	for _, cat := range workload.Categories() {
		cols = append(cols, string(cat))
	}
	t := Table{Title: title + " — " + metric, Columns: cols}
	for _, alg := range algs {
		row := []string{alg}
		for _, cat := range workload.Categories() {
			row = append(row, format(pick(data[alg][cat])))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Fig4And5 runs the Figure 4 (throughput) and Figure 5 (memory) experiment
// once and returns the four tables: order-based/tree-based × metric.
func (r *Runner) Fig4And5() ([]Table, error) {
	data, err := r.categoryResults()
	if err != nil {
		return nil, err
	}
	return []Table{
		categoryTable("Fig 4a: order-based methods by pattern category", "throughput (events/s)",
			core.OrderAlgorithmNames(), data.order, (*avg).Throughput, f0),
		categoryTable("Fig 4b: tree-based methods by pattern category", "throughput (events/s)",
			core.TreeAlgorithmNames(), data.tree, (*avg).Throughput, f0),
		categoryTable("Fig 5a: order-based methods by pattern category", "memory (KB, peak state)",
			core.OrderAlgorithmNames(), data.order, (*avg).Bytes, kb),
		categoryTable("Fig 5b: tree-based methods by pattern category", "memory (KB, peak state)",
			core.TreeAlgorithmNames(), data.tree, (*avg).Bytes, kb),
	}, nil
}

// FigSize reproduces Figures 6–15: throughput and memory as a function of
// pattern size for one category; which figure pair depends on the category
// (6/7 sequence, 8/9 negation, 10/11 conjunction, 12/13 Kleene,
// 14/15 disjunction).
func (r *Runner) FigSize(cat workload.Category) ([]Table, error) {
	figThr := map[workload.Category]string{
		workload.CatSequence: "6", workload.CatNegation: "8", workload.CatConjunction: "10",
		workload.CatKleene: "12", workload.CatDisjunction: "14",
	}[cat]
	figMem := map[workload.Category]string{
		workload.CatSequence: "7", workload.CatNegation: "9", workload.CatConjunction: "11",
		workload.CatKleene: "13", workload.CatDisjunction: "15",
	}[cat]
	type key struct {
		alg  string
		size int
	}
	agg := map[key]*avg{}
	algs := append(core.OrderAlgorithmNames(), core.TreeAlgorithmNames()...)
	rng := rand.New(rand.NewSource(r.Cfg.Seed + 1000))
	for _, size := range r.Cfg.Sizes {
		for k := 0; k < r.Cfg.PerSize; k++ {
			p := r.Stocks.Pattern(cat, size, r.Cfg.Window, rng)
			for _, alg := range algs {
				res, err := r.RunPattern(alg, p, predicate.SkipTillAnyMatch, 0)
				if err != nil {
					return nil, err
				}
				a := agg[key{alg, size}]
				if a == nil {
					a = &avg{}
					agg[key{alg, size}] = a
				}
				a.add(res)
			}
		}
	}
	mk := func(fig, metric string, names []string, pick func(*avg) float64, format func(float64) string) Table {
		cols := []string{"size"}
		cols = append(cols, names...)
		t := Table{
			Title:   fmt.Sprintf("Fig %s: %s patterns — %s by size", fig, cat, metric),
			Columns: cols,
		}
		for _, size := range r.Cfg.Sizes {
			row := []string{fmt.Sprint(size)}
			for _, alg := range names {
				row = append(row, format(pick(agg[key{alg, size}])))
			}
			t.Rows = append(t.Rows, row)
		}
		return t
	}
	return []Table{
		mk(figThr+"a", "throughput (events/s)", core.OrderAlgorithmNames(), (*avg).Throughput, f0),
		mk(figThr+"b", "throughput (events/s)", core.TreeAlgorithmNames(), (*avg).Throughput, f0),
		mk(figMem+"a", "memory (KB)", core.OrderAlgorithmNames(), (*avg).Bytes, kb),
		mk(figMem+"b", "memory (KB)", core.TreeAlgorithmNames(), (*avg).Bytes, kb),
	}, nil
}

// Fig16 validates the cost model: it executes a spread of plans and reports
// measured throughput and memory against the plan's model cost. The paper
// observes throughput ≈ c/cost and memory ≈ linear in cost.
func (r *Runner) Fig16() ([]Table, error) {
	rng := rand.New(rand.NewSource(r.Cfg.Seed + 2000))
	type point struct {
		kind       string
		alg        string
		cost       float64
		throughput float64
		peak       float64
	}
	var points []point
	cats := []workload.Category{workload.CatSequence, workload.CatConjunction}
	sizes := []int{3, 4, 5}
	for _, cat := range cats {
		for _, size := range sizes {
			p := r.Stocks.Pattern(cat, size, r.Cfg.Window, rng)
			st := r.StatsFor(p)
			for _, alg := range append(core.OrderAlgorithmNames(), core.TreeAlgorithmNames()...) {
				planner := &core.Planner{Algorithm: alg, Strategy: predicate.SkipTillAnyMatch}
				pl, err := planner.Plan(p, st)
				if err != nil {
					return nil, err
				}
				res, err := r.RunPattern(alg, p, predicate.SkipTillAnyMatch, 0)
				if err != nil {
					return nil, err
				}
				kind := "order"
				if pl.Simple[0].IsTree() {
					kind = "tree"
				}
				points = append(points, point{
					kind:       kind,
					alg:        alg,
					cost:       pl.TotalCost,
					throughput: res.Throughput,
					peak:       float64(res.PeakPartial),
				})
			}
		}
	}
	sort.Slice(points, func(i, j int) bool { return points[i].cost < points[j].cost })
	t := Table{
		Title:   "Fig 16: throughput and memory vs plan cost (sorted by cost)",
		Columns: []string{"kind", "algorithm", "plan cost", "throughput (ev/s)", "peak partial matches"},
	}
	for _, pt := range points {
		t.Rows = append(t.Rows, []string{pt.kind, pt.alg, f1(pt.cost), f0(pt.throughput), f0(pt.peak)})
	}
	return []Table{t}, nil
}

// Fig17 reproduces the large-pattern plan-quality and plan-generation-time
// study: normalized plan cost (cost of the empirically worst EFREQ plan
// divided by the algorithm's plan cost, higher is better) and generation
// time, for sizes up to 22. Plans are costed, not executed, exactly as in
// the paper. DP algorithms are capped (DESIGN.md §5).
func (r *Runner) Fig17() ([]Table, error) {
	rng := rand.New(rand.NewSource(r.Cfg.Seed + 3000))
	algs := []string{core.AlgEFreq, core.AlgGreedy, core.AlgIIRandom, core.AlgIIGreedy,
		core.AlgDPLD, core.AlgZStream, core.AlgZStreamOrd, core.AlgDPB}
	costT := Table{Title: "Fig 17a: normalized plan cost vs EFREQ (higher is better)",
		Columns: append([]string{"size"}, algs...)}
	timeT := Table{Title: "Fig 17b: plan generation time (ms, log-scale in the paper)",
		Columns: append([]string{"size"}, algs...)}
	for _, size := range r.Cfg.LargeSizes {
		if size > r.Cfg.Symbols {
			continue
		}
		p := r.Stocks.Pattern(workload.CatConjunction, size, r.Cfg.Window, rng)
		st := r.StatsFor(p)
		ps := stats.For(p, st)
		model := cost.DefaultModel()
		baseline := cost.Order(ps, core.EFreq{}.Order(ps, model))
		costRow := []string{fmt.Sprint(size)}
		timeRow := []string{fmt.Sprint(size)}
		for _, alg := range algs {
			if (alg == core.AlgDPLD && size > r.Cfg.MaxDPLDSize) ||
				(alg == core.AlgDPB && size > r.Cfg.MaxDPBSize) {
				costRow = append(costRow, "-")
				timeRow = append(timeRow, "-")
				continue
			}
			start := time.Now()
			var planCost float64
			if oa, err := core.NewOrderAlgorithm(alg); err == nil {
				order := oa.Order(ps, model)
				planCost = cost.Order(ps, order)
			} else {
				ta, err := core.NewTreeAlgorithm(alg)
				if err != nil {
					return nil, err
				}
				root := ta.Tree(ps, model)
				planCost = cost.Tree(ps, root)
			}
			elapsed := time.Since(start)
			costRow = append(costRow, f2(baseline/planCost))
			timeRow = append(timeRow, fmt.Sprintf("%.3f", float64(elapsed.Microseconds())/1000))
		}
		costT.Rows = append(costT.Rows, costRow)
		timeT.Rows = append(timeT.Rows, timeRow)
	}
	return []Table{costT, timeT}, nil
}

// Fig18 reproduces the throughput/latency trade-off study: every
// JQPG-adapted method under α ∈ {0, 0.5, 1} on the sequence set.
func (r *Runner) Fig18() ([]Table, error) {
	algs := []string{core.AlgGreedy, core.AlgIIRandom, core.AlgIIGreedy,
		core.AlgDPLD, core.AlgZStreamOrd, core.AlgDPB}
	alphas := []float64{0, 0.5, 1}
	t := Table{
		Title: "Fig 18: throughput vs latency under the hybrid cost model",
		Columns: []string{"algorithm", "alpha", "throughput (ev/s)",
			"predicted Cost_lat", "measured latency (ms)"},
	}
	pats := r.Stocks.PatternSet(workload.CatSequence, r.Cfg.Sizes, r.Cfg.PerSize, r.Cfg.Window, r.Cfg.Seed+4000)
	for _, alg := range algs {
		for _, alpha := range alphas {
			a := &avg{}
			predictedLat := 0.0
			for _, p := range pats {
				res, err := r.RunPattern(alg, p, predicate.SkipTillAnyMatch, alpha)
				if err != nil {
					return nil, err
				}
				a.add(res)
				lat, err := r.predictedLatency(alg, p, alpha)
				if err != nil {
					return nil, err
				}
				predictedLat += lat
			}
			t.Rows = append(t.Rows, []string{alg, f2(alpha), f0(a.Throughput()),
				f1(predictedLat / float64(len(pats))),
				fmt.Sprintf("%.4f", a.LatencyMs())})
		}
	}
	return []Table{t}, nil
}

// predictedLatency evaluates Cost_lat of the plan the algorithm chooses
// under the given α — the model quantity Figure 18 trades against
// throughput.
func (r *Runner) predictedLatency(alg string, p *pattern.Pattern, alpha float64) (float64, error) {
	st := r.StatsFor(p)
	planner := &core.Planner{Algorithm: alg, Strategy: predicate.SkipTillAnyMatch, Alpha: alpha}
	pl, err := planner.Plan(p, st)
	if err != nil {
		return 0, err
	}
	total := 0.0
	for _, sp := range pl.Simple {
		last := sp.Model.LastPos
		if last < 0 && sp.Compiled.IsSeq {
			last = sp.Stats.N() - 1
		}
		if sp.IsTree() {
			total += cost.TreeLatency(sp.Stats, sp.Tree, last)
		} else {
			total += cost.OrderLatency(sp.Stats, sp.Order, last)
		}
	}
	return total, nil
}

// Fig19 reproduces the selection-strategy study: throughput of every
// algorithm under skip-till-any-match, skip-till-next-match and strict
// contiguity on the sequence set (the paper plots these in log scale).
func (r *Runner) Fig19() ([]Table, error) {
	strategies := []predicate.Strategy{
		predicate.SkipTillAnyMatch, predicate.SkipTillNextMatch, predicate.StrictContiguity,
	}
	mk := func(sub string, algs []string) (Table, error) {
		cols := []string{"algorithm"}
		for _, s := range strategies {
			cols = append(cols, s.String())
		}
		t := Table{Title: "Fig 19" + sub + ": throughput (events/s) by selection strategy", Columns: cols}
		pats := r.Stocks.PatternSet(workload.CatSequence, r.Cfg.Sizes, r.Cfg.PerSize, r.Cfg.Window, r.Cfg.Seed+5000)
		for _, alg := range algs {
			row := []string{alg}
			for _, strat := range strategies {
				a := &avg{}
				for _, p := range pats {
					res, err := r.RunPattern(alg, p, strat, 0)
					if err != nil {
						return Table{}, err
					}
					a.add(res)
				}
				row = append(row, f0(a.Throughput()))
			}
			t.Rows = append(t.Rows, row)
		}
		return t, nil
	}
	a, err := mk("a", core.OrderAlgorithmNames())
	if err != nil {
		return nil, err
	}
	b, err := mk("b", core.TreeAlgorithmNames())
	if err != nil {
		return nil, err
	}
	return []Table{a, b}, nil
}

// Figure dispatches a figure number to its harness. Figures 4/5 and the
// size studies produce multiple tables.
func (r *Runner) Figure(n int) ([]Table, error) {
	switch n {
	case 4, 5:
		return r.Fig4And5()
	case 6, 7:
		return r.FigSize(workload.CatSequence)
	case 8, 9:
		return r.FigSize(workload.CatNegation)
	case 10, 11:
		return r.FigSize(workload.CatConjunction)
	case 12, 13:
		return r.FigSize(workload.CatKleene)
	case 14, 15:
		return r.FigSize(workload.CatDisjunction)
	case 16:
		return r.Fig16()
	case 17:
		return r.Fig17()
	case 18:
		return r.Fig18()
	case 19:
		return r.Fig19()
	}
	return nil, fmt.Errorf("harness: no figure %d (evaluation figures are 4–19)", n)
}

// AllFigures lists the figure numbers with distinct harnesses.
func AllFigures() []int { return []int{4, 6, 8, 10, 12, 14, 16, 17, 18, 19} }
