package harness

import "math/rand"

// newRng builds a deterministic RNG for experiment pattern generation.
func newRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
