package harness

import (
	"strings"
	"testing"

	"repro/internal/event"
	"repro/internal/predicate"
	"repro/internal/workload"
)

// tinyConfig keeps harness tests fast.
func tinyConfig() Config {
	return Config{
		Symbols: 16,
		Events:  1200,
		Window:  2 * event.Second,
		Sizes:   []int{3, 4},
		PerSize: 1,
		Seed:    1,
	}
}

func TestTableRendering(t *testing.T) {
	tb := Table{
		Title:   "demo",
		Columns: []string{"a", "long-column"},
		Rows:    [][]string{{"x", "1"}, {"yyyy", "2"}},
	}
	out := tb.String()
	for _, want := range []string{"== demo ==", "long-column", "yyyy"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestRunPatternAllAlgorithms(t *testing.T) {
	r := NewRunner(tinyConfig())
	p := r.Stocks.Pattern(workload.CatSequence, 3, r.Cfg.Window, newRng(1))
	for _, alg := range []string{"TRIVIAL", "EFREQ", "GREEDY", "II-RANDOM", "II-GREEDY", "DP-LD", "ZSTREAM", "ZSTREAM-ORD", "DP-B"} {
		res, err := r.RunPattern(alg, p, predicate.SkipTillAnyMatch, 0)
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if res.Events != r.Cfg.Events {
			t.Fatalf("%s: processed %d events", alg, res.Events)
		}
		if res.Throughput <= 0 {
			t.Fatalf("%s: throughput %g", alg, res.Throughput)
		}
	}
}

func TestMatchCountsAgreeAcrossAlgorithms(t *testing.T) {
	// Every plan must detect the same number of matches — the harness-level
	// restatement of the equivalence tests.
	r := NewRunner(tinyConfig())
	for _, cat := range workload.Categories() {
		p := r.Stocks.Pattern(cat, 3, r.Cfg.Window, newRng(7))
		var want int64 = -1
		for _, alg := range []string{"TRIVIAL", "EFREQ", "GREEDY", "DP-LD", "ZSTREAM", "DP-B"} {
			res, err := r.RunPattern(alg, p, predicate.SkipTillAnyMatch, 0)
			if err != nil {
				t.Fatalf("%s %s: %v", cat, alg, err)
			}
			if want == -1 {
				want = res.Matches
			} else if res.Matches != want {
				t.Fatalf("%s: %s found %d matches, others %d (%s)", cat, alg, res.Matches, want, p)
			}
		}
	}
}

func TestFig4And5Structure(t *testing.T) {
	cfg := tinyConfig()
	cfg.Sizes = []int{3}
	r := NewRunner(cfg)
	tables, err := r.Fig4And5()
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 4 {
		t.Fatalf("%d tables, want 4", len(tables))
	}
	// 6 order algorithms, 3 tree algorithms; 5 categories + label column.
	if len(tables[0].Rows) != 6 || len(tables[1].Rows) != 3 {
		t.Fatalf("rows = %d, %d", len(tables[0].Rows), len(tables[1].Rows))
	}
	for _, tb := range tables {
		if len(tb.Columns) != 6 {
			t.Fatalf("columns = %v", tb.Columns)
		}
		for _, row := range tb.Rows {
			if len(row) != len(tb.Columns) {
				t.Fatalf("ragged row %v", row)
			}
		}
	}
}

func TestFigSizeStructure(t *testing.T) {
	cfg := tinyConfig()
	cfg.Sizes = []int{3}
	r := NewRunner(cfg)
	tables, err := r.FigSize(workload.CatNegation)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 4 {
		t.Fatalf("%d tables", len(tables))
	}
	for _, tb := range tables {
		if !strings.Contains(tb.Title, "negation") {
			t.Fatalf("title = %q", tb.Title)
		}
		if len(tb.Rows) != 1 {
			t.Fatalf("rows = %d", len(tb.Rows))
		}
	}
}

func TestFigExtensionsStructure(t *testing.T) {
	cfg := tinyConfig()
	cfg.LargeSizes = []int{3, 6}
	r := NewRunner(cfg)
	tables, err := r.FigExtensions()
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 || len(tables[0].Rows) != 2 {
		t.Fatalf("tables = %v", tables)
	}
	// Chain conjunctions must classify as chains.
	for _, row := range tables[0].Rows {
		if row[1] != "chain" {
			t.Fatalf("topology = %q", row[1])
		}
	}
	// EFREQ normalizes to 1 against itself.
	if tables[0].Rows[0][2] != "1.00" {
		t.Fatalf("EFREQ cell = %q", tables[0].Rows[0][2])
	}
}

func TestFigureDispatch(t *testing.T) {
	r := NewRunner(tinyConfig())
	if _, err := r.Figure(3); err == nil {
		t.Fatal("figure 3 should not exist")
	}
	tables, err := r.Figure(16)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 || len(tables[0].Rows) == 0 {
		t.Fatalf("Fig16 tables = %v", tables)
	}
}

func TestFig17CostsOnly(t *testing.T) {
	cfg := tinyConfig()
	cfg.LargeSizes = []int{3, 6, 10}
	cfg.MaxDPLDSize = 8
	cfg.MaxDPBSize = 6
	r := NewRunner(cfg)
	tables, err := r.Fig17()
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("%d tables", len(tables))
	}
	costT := tables[0]
	if len(costT.Rows) != 3 {
		t.Fatalf("rows = %d", len(costT.Rows))
	}
	// DP columns must be dashed beyond the caps (size 10 row).
	last := costT.Rows[len(costT.Rows)-1]
	foundDash := false
	for _, cell := range last {
		if cell == "-" {
			foundDash = true
		}
	}
	if !foundDash {
		t.Fatalf("expected capped DP cells in %v", last)
	}
	// EFREQ normalizes to 1.0 against itself.
	for _, row := range costT.Rows {
		if row[1] != "1.00" {
			t.Fatalf("EFREQ normalized cost = %s", row[1])
		}
	}
}

func TestFig18Shapes(t *testing.T) {
	cfg := tinyConfig()
	cfg.Sizes = []int{3}
	r := NewRunner(cfg)
	tables, err := r.Fig18()
	if err != nil {
		t.Fatal(err)
	}
	// 6 algorithms × 3 alphas.
	if len(tables[0].Rows) != 18 {
		t.Fatalf("rows = %d", len(tables[0].Rows))
	}
}

func TestFig19Strategies(t *testing.T) {
	cfg := tinyConfig()
	cfg.Sizes = []int{3}
	r := NewRunner(cfg)
	tables, err := r.Fig19()
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("%d tables", len(tables))
	}
	if len(tables[0].Rows) != 6 || len(tables[1].Rows) != 3 {
		t.Fatalf("rows = %d, %d", len(tables[0].Rows), len(tables[1].Rows))
	}
}
