// Package harness regenerates every figure of the paper's evaluation
// (Section 7.3, Figures 4–19) on the synthetic stock workload. Each FigN
// function returns tables whose rows/series correspond to the bars/lines of
// the figure; cmd/cepbench prints them and bench_test.go wraps them in
// testing.B benchmarks.
//
// Scale differs from the paper (see DESIGN.md §5): the default
// configuration runs in seconds on a laptop rather than 1.5 months on the
// full NASDAQ year, so absolute numbers differ while the comparisons the
// paper makes — which method wins, by roughly what factor, where the
// crossovers fall — are preserved.
package harness

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/metrics"
	"repro/internal/nfa"
	"repro/internal/pattern"
	"repro/internal/predicate"
	"repro/internal/stats"
	"repro/internal/tree"
	"repro/internal/workload"
)

// Config scales the experiments. The zero value selects defaults sized for
// interactive runs; multiply Events/PerSize for closer-to-paper fidelity.
type Config struct {
	Symbols int        // stock universe size; default 32
	Events  int        // stream length; default 8000
	Window  event.Time // pattern window; default 4s
	Sizes   []int      // pattern sizes; default 3..7 as in the paper
	PerSize int        // patterns per size per category; default 2
	Seed    int64      // master seed; default 1

	// MinRate/MaxRate scale the per-symbol arrival rates. The defaults
	// (0.3–3 ev/s against a 4 s window) reproduce the paper's
	// events-per-window regime at laptop scale.
	MinRate, MaxRate float64

	// MaxPartial aborts a run whose live partial-match count explodes
	// (bad plans on large conjunctions); default 200000.
	MaxPartial int
	// MaxKleeneBase bounds Kleene power-set enumeration; default 6.
	MaxKleeneBase int
	// LargeSizes are the Fig 17 pattern sizes; default 3..22 stepped.
	LargeSizes []int
	// MaxDPLDSize / MaxDPBSize cap the dynamic programs in Fig 17.
	MaxDPLDSize, MaxDPBSize int
}

func (c Config) withDefaults() Config {
	if c.Symbols <= 0 {
		c.Symbols = 32
	}
	if c.Events <= 0 {
		c.Events = 8000
	}
	if c.Window <= 0 {
		c.Window = 4 * event.Second
	}
	if len(c.Sizes) == 0 {
		c.Sizes = []int{3, 4, 5, 6, 7}
	}
	if c.PerSize <= 0 {
		c.PerSize = 2
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.MinRate <= 0 {
		c.MinRate = 0.3
	}
	if c.MaxRate <= 0 {
		c.MaxRate = 3
	}
	if c.MaxPartial <= 0 {
		c.MaxPartial = 200000
	}
	if c.MaxKleeneBase <= 0 {
		c.MaxKleeneBase = 6
	}
	if len(c.LargeSizes) == 0 {
		c.LargeSizes = []int{3, 5, 7, 10, 12, 14, 16, 18, 20, 22}
	}
	if c.MaxDPLDSize <= 0 {
		c.MaxDPLDSize = 18
	}
	if c.MaxDPBSize <= 0 {
		c.MaxDPBSize = 14
	}
	return c
}

// Table is a printable experiment result.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	printRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], cell)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	printRow(t.Columns)
	rule := make([]string, len(t.Columns))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	printRow(rule)
	for _, row := range t.Rows {
		printRow(row)
	}
	fmt.Fprintln(w)
}

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	t.Fprint(&b)
	return b.String()
}

// Runner is the shared experiment fixture: one generated stream, its
// measured base statistics, and helpers to plan and execute patterns.
type Runner struct {
	Cfg    Config
	Stocks *workload.Stocks
	Events []*event.Event
	base   *stats.Stats
}

// NewRunner generates the workload once.
func NewRunner(cfg Config) *Runner {
	cfg = cfg.withDefaults()
	stocks := workload.NewStocks(workload.StockConfig{
		Symbols: cfg.Symbols,
		Events:  cfg.Events,
		MinRate: cfg.MinRate,
		MaxRate: cfg.MaxRate,
		Seed:    cfg.Seed,
	})
	events := stocks.Generate()
	return &Runner{
		Cfg:    cfg,
		Stocks: stocks,
		Events: events,
		base:   stats.Measure(events, nil, nil),
	}
}

// StatsFor measures the pattern's predicate selectivities over the stream,
// reusing the pre-measured arrival rates (the paper's preprocessing stage).
func (r *Runner) StatsFor(p *pattern.Pattern) *stats.Stats {
	st := stats.Measure(r.Events, p.Conds, stats.AliasTypes(p))
	for typ, rate := range r.base.Rates {
		st.SetRate(typ, rate)
	}
	return st
}

// RunPattern plans the pattern with the algorithm and executes the plan
// over the stream, returning the measured result.
func (r *Runner) RunPattern(alg string, p *pattern.Pattern, strategy predicate.Strategy, alpha float64) (metrics.Result, error) {
	st := r.StatsFor(p)
	planner := &core.Planner{Algorithm: alg, Strategy: strategy, Alpha: alpha}
	pl, err := planner.Plan(p, st)
	if err != nil {
		return metrics.Result{}, err
	}
	engines := make([]metrics.Engine, 0, len(pl.Simple))
	for _, sp := range pl.Simple {
		if sp.IsTree() {
			e, err := tree.New(sp.Compiled, sp.TreeTerms(), tree.Config{
				Strategy:      strategy,
				MaxKleeneBase: r.Cfg.MaxKleeneBase,
			})
			if err != nil {
				return metrics.Result{}, err
			}
			engines = append(engines, e)
		} else {
			e, err := nfa.New(sp.Compiled, sp.OrderTerms(), nfa.Config{
				Strategy:      strategy,
				MaxKleeneBase: r.Cfg.MaxKleeneBase,
			})
			if err != nil {
				return metrics.Result{}, err
			}
			engines = append(engines, e)
		}
	}
	events := workload.ResetStream(r.Events)
	return metrics.RunLimit(engines, events, p.Size(), r.Cfg.MaxPartial), nil
}

// avg aggregates results: mean throughput, mean peak-partial, mean bytes,
// mean latency.
type avg struct {
	n          int
	throughput float64
	peak       float64
	bytes      float64
	latencyNs  float64
	matches    int64
	truncated  int
}

func (a *avg) add(r metrics.Result) {
	a.n++
	a.throughput += r.Throughput
	a.peak += float64(r.PeakPartial)
	a.bytes += float64(r.EstBytes)
	a.latencyNs += float64(r.AvgLatency.Nanoseconds())
	a.matches += r.Matches
	if r.Truncated {
		a.truncated++
	}
}

func (a *avg) Throughput() float64 {
	if a.n == 0 {
		return 0
	}
	return a.throughput / float64(a.n)
}

func (a *avg) PeakPartial() float64 {
	if a.n == 0 {
		return 0
	}
	return a.peak / float64(a.n)
}

func (a *avg) Bytes() float64 {
	if a.n == 0 {
		return 0
	}
	return a.bytes / float64(a.n)
}

func (a *avg) LatencyMs() float64 {
	if a.n == 0 {
		return 0
	}
	return a.latencyNs / float64(a.n) / 1e6
}

func f0(v float64) string { return fmt.Sprintf("%.0f", v) }
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

func kb(v float64) string { return fmt.Sprintf("%.1f", v/1024) }
