package event

import (
	"fmt"
	"sort"
)

// Stream is a pull-based source of timestamp-ordered events. Next returns
// nil when the stream is exhausted.
type Stream interface {
	Next() *Event
}

// SliceStream replays a fixed slice of events. It stamps global and
// per-partition serial numbers on the fly so that a slice built by hand or
// by a generator is immediately usable under contiguity strategies.
type SliceStream struct {
	events   []*Event
	pos      int
	stamp    bool
	serial   int64
	pserials map[int]int64
}

// NewSliceStream wraps events in a stream. The events must already be sorted
// by timestamp; NewSliceStream panics otherwise, because silently accepting
// disorder would corrupt window purging in the engines.
func NewSliceStream(events []*Event) *SliceStream {
	for i := 1; i < len(events); i++ {
		if events[i].TS < events[i-1].TS {
			panic(fmt.Sprintf("event: stream not timestamp-ordered at index %d (%d < %d)",
				i, events[i].TS, events[i-1].TS))
		}
	}
	return &SliceStream{events: events, stamp: true, pserials: make(map[int]int64)}
}

// Next returns the next event, stamping serial numbers.
func (s *SliceStream) Next() *Event {
	if s.pos >= len(s.events) {
		return nil
	}
	e := s.events[s.pos]
	s.pos++
	if s.stamp {
		s.serial++
		e.Serial = s.serial
		s.pserials[e.Partition]++
		e.PSerial = s.pserials[e.Partition]
	}
	return e
}

// Reset rewinds the stream to the beginning and restarts serial stamping.
// Consumption marks from a previous run are cleared so that replays under
// skip-till-next-match start from a clean state.
func (s *SliceStream) Reset() {
	s.pos = 0
	s.serial = 0
	s.pserials = make(map[int]int64)
	for _, e := range s.events {
		e.consumed = false
	}
}

// Len returns the total number of events in the stream.
func (s *SliceStream) Len() int { return len(s.events) }

// Events returns the underlying slice (not a copy).
func (s *SliceStream) Events() []*Event { return s.events }

// Drain reads every remaining event from a stream into a slice.
func Drain(s Stream) []*Event {
	var out []*Event
	for e := s.Next(); e != nil; e = s.Next() {
		out = append(out, e)
	}
	return out
}

// SortByTS sorts events by timestamp (stable, so equal-timestamp events keep
// their generation order).
func SortByTS(events []*Event) {
	sort.SliceStable(events, func(i, j int) bool { return events[i].TS < events[j].TS })
}

// Merge combines several timestamp-ordered slices into a single ordered
// slice. It is used by generators that produce one sub-stream per event type.
func Merge(streams ...[]*Event) []*Event {
	total := 0
	for _, s := range streams {
		total += len(s)
	}
	out := make([]*Event, 0, total)
	idx := make([]int, len(streams))
	for {
		best := -1
		var bestTS Time
		for i, s := range streams {
			if idx[i] >= len(s) {
				continue
			}
			if best == -1 || s[idx[i]].TS < bestTS {
				best = i
				bestTS = s[idx[i]].TS
			}
		}
		if best == -1 {
			return out
		}
		out = append(out, streams[best][idx[best]])
		idx[best]++
	}
}
