package event

import (
	"testing"
	"testing/quick"
)

func TestSchemaIndex(t *testing.T) {
	s := NewSchema("Stock", "price", "difference")
	if s.Name() != "Stock" {
		t.Fatalf("Name() = %q, want Stock", s.Name())
	}
	if n := s.NumAttrs(); n != 2 {
		t.Fatalf("NumAttrs() = %d, want 2", n)
	}
	i, ok := s.Index("difference")
	if !ok || i != 1 {
		t.Fatalf("Index(difference) = %d,%v, want 1,true", i, ok)
	}
	if _, ok := s.Index("missing"); ok {
		t.Fatal("Index(missing) should not exist")
	}
	got := s.Attrs()
	if len(got) != 2 || got[0] != "price" || got[1] != "difference" {
		t.Fatalf("Attrs() = %v", got)
	}
	// Attrs must return a copy.
	got[0] = "mutated"
	if a := s.Attrs(); a[0] != "price" {
		t.Fatal("Attrs() leaked internal slice")
	}
}

func TestSchemaDuplicateAttrPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate attribute")
		}
	}()
	NewSchema("X", "a", "a")
}

func TestEventAttr(t *testing.T) {
	s := NewSchema("Stock", "price", "difference")
	e := New(s, 1234, 99.5, -0.25)
	if v := e.MustAttr("price"); v != 99.5 {
		t.Fatalf("price = %g", v)
	}
	if v := e.MustAttr("difference"); v != -0.25 {
		t.Fatalf("difference = %g", v)
	}
	if v, ok := e.Attr("ts"); !ok || v != 1234 {
		t.Fatalf("ts = %g,%v", v, ok)
	}
	e.Serial = 7
	e.PSerial = 3
	e.Partition = 2
	if v, _ := e.Attr("serial"); v != 7 {
		t.Fatalf("serial = %g", v)
	}
	if v, _ := e.Attr("pserial"); v != 3 {
		t.Fatalf("pserial = %g", v)
	}
	if v, _ := e.Attr("partition"); v != 2 {
		t.Fatalf("partition = %g", v)
	}
	if _, ok := e.Attr("nope"); ok {
		t.Fatal("unexpected attribute")
	}
}

func TestEventAttrCountMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on attribute count mismatch")
		}
	}()
	New(NewSchema("X", "a"), 0, 1.0, 2.0)
}

func TestMustAttrPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for missing attribute")
		}
	}()
	e := New(NewSchema("X", "a"), 0, 1)
	e.MustAttr("b")
}

func TestEventString(t *testing.T) {
	s := NewSchema("A", "x")
	e := New(s, 5, 2)
	if got := e.String(); got != "A@5{x=2}" {
		t.Fatalf("String() = %q", got)
	}
}

func TestRegistry(t *testing.T) {
	a := NewSchema("A", "x")
	b := NewSchema("B", "y")
	r := NewRegistry(b, a)
	if r.Len() != 2 {
		t.Fatalf("Len() = %d", r.Len())
	}
	if got, ok := r.Lookup("A"); !ok || got != a {
		t.Fatal("Lookup(A) failed")
	}
	if _, ok := r.Lookup("C"); ok {
		t.Fatal("Lookup(C) should fail")
	}
	types := r.Types()
	if len(types) != 2 || types[0] != "A" || types[1] != "B" {
		t.Fatalf("Types() = %v, want sorted [A B]", types)
	}
}

func TestSliceStreamStampsSerials(t *testing.T) {
	s := NewSchema("A", "x")
	events := []*Event{
		{Type: "A", TS: 1, Partition: 0, Attrs: []float64{1}, Schema: s},
		{Type: "A", TS: 2, Partition: 1, Attrs: []float64{2}, Schema: s},
		{Type: "A", TS: 3, Partition: 0, Attrs: []float64{3}, Schema: s},
	}
	st := NewSliceStream(events)
	var serials, pserials []int64
	for e := st.Next(); e != nil; e = st.Next() {
		serials = append(serials, e.Serial)
		pserials = append(pserials, e.PSerial)
	}
	if serials[0] != 1 || serials[1] != 2 || serials[2] != 3 {
		t.Fatalf("serials = %v", serials)
	}
	// Partition 0 gets pserials 1,2; partition 1 gets 1.
	if pserials[0] != 1 || pserials[1] != 1 || pserials[2] != 2 {
		t.Fatalf("pserials = %v", pserials)
	}
}

func TestSliceStreamResetClearsConsumption(t *testing.T) {
	s := NewSchema("A", "x")
	events := []*Event{New(s, 1, 1), New(s, 2, 2)}
	st := NewSliceStream(events)
	e := st.Next()
	e.Consume()
	if !e.Consumed() {
		t.Fatal("Consume did not mark event")
	}
	st.Reset()
	if events[0].Consumed() {
		t.Fatal("Reset did not clear consumption")
	}
	if got := st.Next(); got != events[0] || got.Serial != 1 {
		t.Fatal("Reset did not rewind")
	}
}

func TestSliceStreamRejectsDisorder(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-order stream")
		}
	}()
	s := NewSchema("A", "x")
	NewSliceStream([]*Event{New(s, 2, 1), New(s, 1, 2)})
}

func TestDrain(t *testing.T) {
	s := NewSchema("A", "x")
	events := []*Event{New(s, 1, 1), New(s, 2, 2), New(s, 3, 3)}
	got := Drain(NewSliceStream(events))
	if len(got) != 3 {
		t.Fatalf("Drain returned %d events", len(got))
	}
}

func TestMergeOrdersByTimestamp(t *testing.T) {
	s := NewSchema("A", "x")
	a := []*Event{New(s, 1, 0), New(s, 5, 0)}
	b := []*Event{New(s, 2, 0), New(s, 3, 0)}
	c := []*Event{New(s, 4, 0)}
	out := Merge(a, b, c)
	if len(out) != 5 {
		t.Fatalf("len = %d", len(out))
	}
	for i := 1; i < len(out); i++ {
		if out[i].TS < out[i-1].TS {
			t.Fatalf("Merge output disordered at %d", i)
		}
	}
}

func TestMergePropertyOrdered(t *testing.T) {
	s := NewSchema("A", "x")
	f := func(ts1, ts2 []uint8) bool {
		mk := func(ts []uint8) []*Event {
			ev := make([]*Event, len(ts))
			for i := range ts {
				ev[i] = New(s, Time(ts[i]), 0)
			}
			SortByTS(ev)
			return ev
		}
		out := Merge(mk(ts1), mk(ts2))
		if len(out) != len(ts1)+len(ts2) {
			return false
		}
		for i := 1; i < len(out); i++ {
			if out[i].TS < out[i-1].TS {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
