// Package event defines the primitive-event model shared by every component
// of the CEP engine: typed events with numeric attributes, per-type schemas,
// and timestamp-ordered streams.
//
// The model follows Section 2.1 of Kolchinsky & Schuster (VLDB 2018): each
// event has a well-defined type, a set of attributes, and an occurrence
// timestamp. Serial numbers (global and per-partition) are stamped on ingest
// so that the strict- and partition-contiguity selection strategies of
// Section 6.2 can be expressed as ordinary predicates.
package event

import (
	"fmt"
	"sort"
	"strings"
)

// Time is a timestamp or duration in milliseconds. Streams are assumed to be
// ordered by timestamp; plan-induced "out of order" processing refers to the
// order in which event *types* are matched, not to stream disorder.
type Time = int64

// Millisecond, Second and Minute are convenience multipliers for Time values.
const (
	Millisecond Time = 1
	Second      Time = 1000
	Minute      Time = 60 * Second
)

// Schema describes the attributes carried by events of one type. Attribute
// values are float64; string-typed domain values (e.g. stock symbols) are
// modelled as distinct event types, exactly as the paper's evaluation does
// ("for each identifier, a separate event type was defined").
type Schema struct {
	name  string
	attrs []string
	index map[string]int
}

// NewSchema builds a schema for the event type name with the given attribute
// names. Attribute order is significant: it is the layout of Event.Attrs.
func NewSchema(name string, attrs ...string) *Schema {
	s := &Schema{
		name:  name,
		attrs: append([]string(nil), attrs...),
		index: make(map[string]int, len(attrs)),
	}
	for i, a := range attrs {
		if _, dup := s.index[a]; dup {
			panic(fmt.Sprintf("event: duplicate attribute %q in schema %q", a, name))
		}
		s.index[a] = i
	}
	return s
}

// Name returns the event-type name the schema describes.
func (s *Schema) Name() string { return s.name }

// Attrs returns the attribute names in layout order.
func (s *Schema) Attrs() []string { return append([]string(nil), s.attrs...) }

// Index returns the position of attribute name and whether it exists.
func (s *Schema) Index(name string) (int, bool) {
	i, ok := s.index[name]
	return i, ok
}

// NumAttrs returns the number of attributes.
func (s *Schema) NumAttrs() int { return len(s.attrs) }

// Event is a single primitive event. Events are immutable once ingested;
// engines share them by pointer.
type Event struct {
	// Type is the event-type name. It must match the Schema's name.
	Type string
	// TS is the occurrence timestamp in milliseconds.
	TS Time
	// Serial is the global arrival serial number, stamped by the stream.
	Serial int64
	// Partition is the partition identifier used by the partition-contiguity
	// selection strategy; 0 when unpartitioned.
	Partition int
	// PSerial is the per-partition serial number, stamped by the stream.
	PSerial int64
	// Attrs holds the attribute values in Schema layout order.
	Attrs []float64
	// Schema describes Attrs. It may be shared between many events.
	Schema *Schema

	// consumed marks the event as used by a full match under the
	// skip-till-next-match selection strategy.
	consumed bool
}

// New constructs an event of the given schema. The number of values must
// match the schema's attribute count.
func New(s *Schema, ts Time, values ...float64) *Event {
	if len(values) != s.NumAttrs() {
		panic(fmt.Sprintf("event: type %q expects %d attributes, got %d",
			s.Name(), s.NumAttrs(), len(values)))
	}
	return &Event{Type: s.Name(), TS: ts, Attrs: append([]float64(nil), values...), Schema: s}
}

// Attr returns the value of the named attribute and whether it exists.
// The pseudo-attributes "ts", "serial" and "pserial" are always available,
// exposing the timestamp and contiguity serials to the predicate layer.
func (e *Event) Attr(name string) (float64, bool) {
	switch name {
	case "ts":
		return float64(e.TS), true
	case "serial":
		return float64(e.Serial), true
	case "pserial":
		return float64(e.PSerial), true
	case "partition":
		return float64(e.Partition), true
	}
	if e.Schema != nil {
		if i, ok := e.Schema.Index(name); ok {
			return e.Attrs[i], true
		}
	}
	return 0, false
}

// MustAttr returns the value of the named attribute, panicking if absent.
func (e *Event) MustAttr(name string) float64 {
	v, ok := e.Attr(name)
	if !ok {
		panic(fmt.Sprintf("event: type %q has no attribute %q", e.Type, name))
	}
	return v
}

// Consumed reports whether the event was consumed by a full match under
// skip-till-next-match.
func (e *Event) Consumed() bool { return e.consumed }

// Consume marks the event as consumed. It is called by the engines when a
// full match is emitted under skip-till-next-match.
func (e *Event) Consume() { e.consumed = true }

// String renders the event compactly for debugging and logs.
func (e *Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s@%d{", e.Type, e.TS)
	if e.Schema != nil {
		for i, a := range e.Schema.attrs {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%s=%g", a, e.Attrs[i])
		}
	}
	b.WriteString("}")
	return b.String()
}

// Registry maps type names to schemas. It is the catalogue handed to parsers,
// statistics collectors and engines.
type Registry struct {
	schemas map[string]*Schema
}

// NewRegistry builds a registry from the given schemas.
func NewRegistry(schemas ...*Schema) *Registry {
	r := &Registry{schemas: make(map[string]*Schema, len(schemas))}
	for _, s := range schemas {
		r.Register(s)
	}
	return r
}

// Register adds a schema, replacing any previous schema with the same name.
func (r *Registry) Register(s *Schema) { r.schemas[s.Name()] = s }

// Lookup returns the schema for the type name.
func (r *Registry) Lookup(name string) (*Schema, bool) {
	s, ok := r.schemas[name]
	return s, ok
}

// Types returns the registered type names in sorted order.
func (r *Registry) Types() []string {
	names := make([]string, 0, len(r.schemas))
	for n := range r.schemas {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Len returns the number of registered types.
func (r *Registry) Len() int { return len(r.schemas) }
