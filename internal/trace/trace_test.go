package trace

import (
	"encoding/json"
	"sync"
	"testing"
)

func TestNilSafety(t *testing.T) {
	var a *Active
	a.Span(StageEnqueue, 0, "")
	a.Spanf(StageEngine, 1, "n=%d", 3)
	var r *Ring
	r.Add(nil)
	if r.Len() != 0 || r.Added() != 0 {
		t.Fatal("nil ring reported contents")
	}
	snap := r.Snapshot()
	if snap == nil || len(snap) != 0 {
		t.Fatalf("nil ring snapshot = %v, want empty non-nil", snap)
	}
	b, err := json.Marshal(snap)
	if err != nil || string(b) != "[]" {
		t.Fatalf("nil ring JSON = %s, %v; want []", b, err)
	}
}

func TestSpanOrderAndOffsets(t *testing.T) {
	a := Start(7, 1)
	a.Span(StageFilter, -1, "lanes=2")
	a.Spanf(StageEnqueue, 0, "")
	a.Span(StageDequeue, 0, "")
	r := NewRing(4)
	r.Add(a)
	snap := r.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("snapshot len = %d", len(snap))
	}
	tr := snap[0]
	if tr.Seq != 7 || tr.Batch != 1 {
		t.Fatalf("trace header = %+v", tr)
	}
	stages := []string{StageSubmit, StageFilter, StageEnqueue, StageDequeue}
	if len(tr.Spans) != len(stages) {
		t.Fatalf("spans = %+v", tr.Spans)
	}
	var prev int64 = -1
	for i, sp := range tr.Spans {
		if sp.Stage != stages[i] {
			t.Fatalf("span %d stage = %q, want %q", i, sp.Stage, stages[i])
		}
		if sp.AtNS < prev {
			t.Fatalf("span offsets not monotonic: %+v", tr.Spans)
		}
		prev = sp.AtNS
	}
}

func TestRingEviction(t *testing.T) {
	r := NewRing(3)
	for seq := uint64(1); seq <= 5; seq++ {
		r.Add(Start(seq, 1))
	}
	if r.Len() != 3 || r.Added() != 5 {
		t.Fatalf("len = %d added = %d", r.Len(), r.Added())
	}
	snap := r.Snapshot()
	want := []uint64{3, 4, 5}
	for i, tr := range snap {
		if tr.Seq != want[i] {
			t.Fatalf("snapshot seqs = %v, want oldest-first %v", snap, want)
		}
	}
}

// TestConcurrentAppendAndSnapshot exercises the writer/reader race the
// session creates: lane workers appending spans while Traces() snapshots.
func TestConcurrentAppendAndSnapshot(t *testing.T) {
	r := NewRing(8)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				a := Start(uint64(i), 1)
				r.Add(a)
				a.Spanf(StageEngine, w, "i=%d", i)
				a.Span(StageEmit, w, "")
			}
		}(w)
	}
	for i := 0; i < 200; i++ {
		for _, tr := range r.Snapshot() {
			if len(tr.Spans) == 0 || tr.Spans[0].Stage != StageSubmit {
				t.Errorf("bad snapshot trace: %+v", tr)
			}
		}
	}
	close(stop)
	wg.Wait()
}
