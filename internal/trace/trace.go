// Package trace implements the sampled, bounded event-tracing layer: a
// 1-in-N sampled event carries an Active trace context from Submit through
// ingress routing, queueing, engine processing and emission, and every
// stage appends a Span with a monotonic timestamp. Traces live in a fixed
// ring; readers snapshot them concurrently with the writers still
// appending, so the Active type owns a mutex and snapshots deep-copy the
// span slice. The unsampled hot path never sees any of this: a nil *Active
// makes every method a no-op, mirroring the nil-gated discipline of
// internal/telemetry.
package trace

import (
	"fmt"
	"sync"
	"time"
)

// Span stages, in pipeline order. A trace usually records them in this
// order too, but per-lane stages (enqueue onward) interleave when an event
// fans out to several lanes.
const (
	StageSubmit    = "submit"    // trace created at Submit/SubmitBatch
	StageFilter    = "filter"    // ingress filter-index verdict
	StagePartition = "partition" // partition bucket + owning lane
	StageEnqueue   = "enqueue"   // handed to a lane queue
	StageDequeue   = "dequeue"   // picked up by the lane worker
	StageEngine    = "engine"    // engine processing deltas
	StageEmit      = "emit"      // matches delivered
)

// Span is one recorded stage crossing. AtNS is the monotonic offset from
// the trace's Start; Lane is the lane index the stage ran on, or -1 for
// stages on the submitter side (submit, filter) and for broadcast
// enqueues that target every lane at once.
type Span struct {
	Stage  string `json:"stage"`
	Lane   int    `json:"lane"`
	AtNS   int64  `json:"at_ns"`
	Detail string `json:"detail,omitempty"`
}

// Trace is the immutable snapshot form of one traced submission: the
// stream sequence number of the (first) event, the batch size (1 for
// per-event Submit), the wall-clock start, and the recorded spans.
type Trace struct {
	Seq   uint64    `json:"seq"`
	Batch int       `json:"batch"`
	Start time.Time `json:"start"`
	Spans []Span    `json:"spans"`
}

// Active is a live trace context threaded through the pipeline alongside
// its event. Span appends are mutex-guarded because the submitter and
// several lane workers write concurrently; traced events are sampled, so
// the lock and the fmt formatting are off the common path entirely.
type Active struct {
	mu sync.Mutex
	t  Trace
	t0 time.Time // monotonic anchor for span offsets
}

// Start opens a trace for a submission of batch events beginning at
// stream sequence seq and records the initial submit span.
func Start(seq uint64, batch int) *Active {
	now := time.Now()
	a := &Active{t: Trace{Seq: seq, Batch: batch, Start: now}, t0: now}
	a.t.Spans = append(a.t.Spans, Span{Stage: StageSubmit, Lane: -1, Detail: fmt.Sprintf("batch=%d", batch)})
	return a
}

// Span records one stage crossing. Safe on a nil receiver (no-op) and
// safe for concurrent use.
func (a *Active) Span(stage string, lane int, detail string) {
	if a == nil {
		return
	}
	at := int64(time.Since(a.t0))
	a.mu.Lock()
	a.t.Spans = append(a.t.Spans, Span{Stage: stage, Lane: lane, AtNS: at, Detail: detail})
	a.mu.Unlock()
}

// Spanf records one stage crossing with a formatted detail string.
func (a *Active) Spanf(stage string, lane int, format string, args ...any) {
	if a == nil {
		return
	}
	a.Span(stage, lane, fmt.Sprintf(format, args...))
}

// snapshot deep-copies the trace so the caller can read it while lane
// workers keep appending spans.
func (a *Active) snapshot() Trace {
	a.mu.Lock()
	t := a.t
	t.Spans = append([]Span(nil), a.t.Spans...)
	a.mu.Unlock()
	return t
}

// Ring is the bounded store of recent traces. A trace is added at submit
// time — before its spans are complete — so the ring always shows the
// freshest submissions, and Snapshot sees however far each has progressed.
type Ring struct {
	mu    sync.Mutex
	buf   []*Active
	next  int
	added int64
}

// NewRing builds a ring holding at most capacity traces (minimum 1).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{buf: make([]*Active, 0, capacity)}
}

// Add records a trace, evicting the oldest when full. Nil-safe.
func (r *Ring) Add(a *Active) {
	if r == nil || a == nil {
		return
	}
	r.mu.Lock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, a)
	} else {
		r.buf[r.next] = a
		r.next = (r.next + 1) % cap(r.buf)
	}
	r.added++
	r.mu.Unlock()
}

// Len reports how many traces the ring currently holds. Nil-safe.
func (r *Ring) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.buf)
}

// Added reports how many traces were ever recorded. Nil-safe.
func (r *Ring) Added() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.added
}

// Snapshot returns the retained traces oldest-first, deep-copying each so
// the result is stable while workers append further spans. Nil-safe:
// returns an empty (non-nil) slice so JSON encodes "[]", not "null".
func (r *Ring) Snapshot() []Trace {
	if r == nil {
		return []Trace{}
	}
	r.mu.Lock()
	acts := make([]*Active, 0, len(r.buf))
	acts = append(acts, r.buf[r.next:]...)
	acts = append(acts, r.buf[:r.next]...)
	r.mu.Unlock()
	out := make([]Trace, 0, len(acts))
	for _, a := range acts {
		out = append(out, a.snapshot())
	}
	return out
}
