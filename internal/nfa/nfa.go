// Package nfa implements the order-based evaluation engine: a lazy chain
// NFA in the style of Kolchinsky et al. [28, 29], as described in
// Section 2.2 of the paper. Given an evaluation order over the positive
// events of a compiled pattern, it processes the stream event by event,
// buffering events that arrive before their step is reached and extending
// stored partial matches both on arrival (when the next expected type
// appears) and by cascading through already-buffered events (out-of-order
// evaluation).
//
// Every partial match is created exactly once — when its last-arriving
// member is processed — so the number of live partial matches tracks the
// Cost_ord model of Section 4.1 directly.
//
// The engine supports all four event selection strategies of Section 6.2
// (contiguity variants arrive pre-lowered as serial predicates in the
// compiled pattern), negation with early checks at the first step where the
// anchors are available (Section 5.3), and Kleene closure with power-set
// semantics (Section 5.2) bounded by Config.MaxKleeneBase.
package nfa

import (
	"fmt"

	"repro/internal/event"
	"repro/internal/match"
	"repro/internal/oracle"
	"repro/internal/predicate"
)

// DefaultMaxKleeneBase bounds the number of buffered events considered when
// enumerating Kleene subsets (the power set of Theorem 4 is intrinsically
// exponential; the most recent events are kept when the cap binds).
const DefaultMaxKleeneBase = 12

// compactEvery controls how often the level stores are swept for dead and
// expired partial matches.
const compactEvery = 64

// Config tunes an Engine.
type Config struct {
	Strategy      predicate.Strategy
	MaxKleeneBase int
	// OnMatch, when set, is invoked for every emitted match in addition to
	// the matches returned by Process/Flush.
	OnMatch func(*match.Match)
	// DisableEarlyNegation defers every anchored negation check to match
	// completion instead of the earliest step where the anchors are
	// available. Semantics are unchanged; the flag exists to measure the
	// benefit of the paper's Section 5.3 placement (see the ablation
	// benchmarks).
	DisableEarlyNegation bool
}

// Stats exposes the engine's load counters; Peak* values are the memory
// proxies reported in the paper's Figure 5.
type Stats struct {
	Processed    int64 // events consumed
	Matches      int64 // full matches emitted
	Created      int64 // partial matches created (incl. completions)
	PeakPartial  int   // peak live partial matches
	PeakBuffered int   // peak buffered events across positions
	KleeneCapped int64 // times the Kleene base cap was applied
}

// pm is a partial match: events bound per term position, with cached
// timestamp bounds and the number of matched steps.
type pm struct {
	positions [][]*event.Event
	minTS     event.Time
	maxTS     event.Time
	steps     int
	extended  bool // skip-till-next: already extended once
	dead      bool
}

type pendingMatch struct {
	p        *pm
	deadline event.Time
}

// Engine is a single-pattern, single-plan evaluation engine. It is not
// safe for concurrent use; run one engine per goroutine.
type Engine struct {
	c   *predicate.Compiled
	cfg Config

	order  []int // term position per step
	stepOf []int // term position → step index, -1 for negated positions

	// negEarly[k] lists negation specs checked when a partial match reaches
	// k matched steps (both anchors available — the paper's "earliest point
	// possible"). negComplete is checked at completion (leading NOT);
	// negPending holds specs whose violators may arrive after completion
	// (trailing NOT / NOT inside AND), forcing the pending queue.
	negEarly    [][]predicate.NegSpec
	negComplete []predicate.NegSpec
	negPending  []predicate.NegSpec

	buffers   [][]*event.Event // per term position, timestamp-ordered
	levels    [][]*pm          // levels[s-1] holds partial matches with s steps
	pending   []*pendingMatch
	now       event.Time
	nBuffered int
	nPartial  int
	st        Stats
	out       []*match.Match
}

// New builds an engine for the compiled pattern and evaluation order.
// orderTerms lists term positions (not planning indices) and must be a
// permutation of the pattern's positive positions.
func New(c *predicate.Compiled, orderTerms []int, cfg Config) (*Engine, error) {
	if cfg.MaxKleeneBase <= 0 {
		cfg.MaxKleeneBase = DefaultMaxKleeneBase
	}
	if len(orderTerms) != len(c.Positives) {
		return nil, fmt.Errorf("nfa: order has %d steps, pattern has %d positive events",
			len(orderTerms), len(c.Positives))
	}
	seen := make(map[int]bool, len(orderTerms))
	positive := make(map[int]bool, len(c.Positives))
	for _, p := range c.Positives {
		positive[p] = true
	}
	for _, p := range orderTerms {
		if !positive[p] || seen[p] {
			return nil, fmt.Errorf("nfa: order %v is not a permutation of the positive positions %v",
				orderTerms, c.Positives)
		}
		seen[p] = true
	}
	e := &Engine{
		c:       c,
		cfg:     cfg,
		order:   append([]int(nil), orderTerms...),
		stepOf:  make([]int, c.N),
		buffers: make([][]*event.Event, c.N),
		levels:  make([][]*pm, len(orderTerms)),
	}
	for i := range e.stepOf {
		e.stepOf[i] = -1
	}
	for s, pos := range e.order {
		e.stepOf[pos] = s
	}
	e.negEarly = make([][]predicate.NegSpec, len(orderTerms)+1)
	for _, spec := range c.Negs {
		switch {
		case spec.Low >= 0 && spec.High >= 0:
			if cfg.DisableEarlyNegation {
				e.negComplete = append(e.negComplete, spec)
				continue
			}
			level := e.stepOf[spec.Low] + 1
			if h := e.stepOf[spec.High] + 1; h > level {
				level = h
			}
			e.negEarly[level] = append(e.negEarly[level], spec)
		case spec.High >= 0: // leading NOT: window start needs the final match
			e.negComplete = append(e.negComplete, spec)
		default: // trailing NOT or NOT inside AND: violators may still arrive
			e.negPending = append(e.negPending, spec)
		}
	}
	return e, nil
}

// N returns the number of steps (positive events).
func (e *Engine) N() int { return len(e.order) }

// Stats returns a copy of the engine counters.
func (e *Engine) Stats() Stats { return e.st }

// CurrentPartial returns the number of live partial matches (including
// pending full matches).
func (e *Engine) CurrentPartial() int { return e.nPartial + len(e.pending) }

// CurrentBuffered returns the number of buffered events.
func (e *Engine) CurrentBuffered() int { return e.nBuffered }

// Process consumes one event (timestamps must be non-decreasing) and
// returns the full matches emitted by it.
func (e *Engine) Process(ev *event.Event) []*match.Match {
	e.st.Processed++
	e.now = ev.TS
	e.out = e.out[:0]

	e.expirePending()
	e.purgeBuffers()
	if len(e.negPending) > 0 {
		e.killPending(ev)
	}

	// Buffer the event at every position it can serve *before* running
	// extensions: duplicate-use checks prevent it from filling two
	// positions of one match, and completion-time negation checks must see
	// it (an arriving negated-type event may veto a match completed by this
	// very call).
	for pos := 0; pos < e.c.N; pos++ {
		if e.c.Types[pos] == ev.Type && e.c.Preds.CheckUnary(pos, ev) {
			e.buffers[pos] = append(e.buffers[pos], ev)
			e.nBuffered++
		}
	}
	if e.nBuffered > e.st.PeakBuffered {
		e.st.PeakBuffered = e.nBuffered
	}

	// Snapshot the level stores: extensions triggered by this event must
	// not see partial matches created during this same call (those are
	// completed through the buffers by the cascade instead).
	snaps := make([][]*pm, len(e.levels))
	copy(snaps, e.levels)

	for s, pos := range e.order {
		if e.c.Types[pos] != ev.Type || !e.c.Preds.CheckUnary(pos, ev) {
			continue
		}
		if s == 0 {
			root := &pm{positions: make([][]*event.Event, e.c.N)}
			e.tryExtend(root, s, ev)
			continue
		}
		for _, p := range snaps[s-1] {
			if p.dead || e.expired(p) {
				continue
			}
			if e.cfg.Strategy == predicate.SkipTillNextMatch && (p.extended || e.anyConsumed(p)) {
				continue
			}
			e.tryExtend(p, s, ev)
		}
	}

	if e.st.Processed%compactEvery == 0 {
		e.compact()
	}
	return e.out
}

// Flush emits the pending matches whose negation verdict can no longer
// change (call at end of stream) and returns them.
func (e *Engine) Flush() []*match.Match {
	e.out = e.out[:0]
	for _, pd := range e.pending {
		if !pd.p.dead {
			e.emit(pd.p)
		}
	}
	e.pending = nil
	return e.out
}

// tryExtend attempts to extend p (which has s matched steps) with the newly
// arrived event at step s, then cascades through the buffers.
func (e *Engine) tryExtend(p *pm, s int, ev *event.Event) {
	pos := e.order[s]
	if !e.compatible(p, pos, ev) {
		return
	}
	if e.c.Kleene[pos] {
		base := e.kleeneBase(p, pos, ev)
		// Subsets of earlier compatible events, each completed with ev.
		e.forEachSubset(base, func(subset []*event.Event) bool {
			group := append(append([]*event.Event(nil), subset...), ev)
			child := e.spawn(p, pos, group)
			if child == nil {
				return false
			}
			e.place(child)
			return e.cfg.Strategy == predicate.SkipTillNextMatch
		}, true)
		if e.cfg.Strategy == predicate.SkipTillNextMatch {
			p.extended = true
		}
		return
	}
	child := e.spawn(p, pos, []*event.Event{ev})
	if child == nil {
		return
	}
	if e.cfg.Strategy == predicate.SkipTillNextMatch {
		p.extended = true
	}
	e.place(child)
}

// cascade extends a freshly created partial match through buffered events
// at its next step (the lazy NFA's out-of-order completion).
func (e *Engine) cascade(p *pm) {
	s := p.steps
	if s >= len(e.order) {
		return
	}
	pos := e.order[s]
	if e.c.Kleene[pos] {
		base := e.kleeneBase(p, pos, nil)
		e.forEachSubset(base, func(subset []*event.Event) bool {
			child := e.spawn(p, pos, subset)
			if child == nil {
				return false
			}
			e.place(child)
			return e.cfg.Strategy == predicate.SkipTillNextMatch
		}, false)
		return
	}
	for _, b := range e.buffers[pos] {
		if e.cfg.Strategy == predicate.SkipTillNextMatch && (b.Consumed() || p.extended) {
			continue
		}
		if !e.compatible(p, pos, b) {
			continue
		}
		child := e.spawn(p, pos, []*event.Event{b})
		if child == nil {
			continue
		}
		if e.cfg.Strategy == predicate.SkipTillNextMatch {
			p.extended = true
		}
		e.place(child)
		if e.cfg.Strategy == predicate.SkipTillNextMatch {
			break
		}
	}
}

// compatible checks window, duplicate-use and pairwise predicates between
// the candidate and every filled position of p.
func (e *Engine) compatible(p *pm, pos int, cand *event.Event) bool {
	if p.steps > 0 {
		if cand.TS-p.minTS > e.c.Window || p.maxTS-cand.TS > e.c.Window {
			return false
		}
	}
	for q, group := range p.positions {
		if group == nil {
			continue
		}
		for _, g := range group {
			if g == cand {
				return false // one event fills at most one position
			}
		}
		if !e.c.CheckGroupPair(q, group, pos, []*event.Event{cand}) {
			return false
		}
	}
	return true
}

// kleeneBase collects the buffered events at a Kleene position compatible
// with p (and distinct from the arriving event), applying the subset cap.
func (e *Engine) kleeneBase(p *pm, pos int, arriving *event.Event) []*event.Event {
	var base []*event.Event
	for _, b := range e.buffers[pos] {
		if b == arriving {
			continue
		}
		if e.cfg.Strategy == predicate.SkipTillNextMatch && b.Consumed() {
			continue
		}
		if e.compatible(p, pos, b) {
			base = append(base, b)
		}
	}
	if len(base) > e.cfg.MaxKleeneBase {
		base = base[len(base)-e.cfg.MaxKleeneBase:]
		e.st.KleeneCapped++
	}
	return base
}

// forEachSubset enumerates subsets of base (including the empty subset when
// withEmpty is true, excluding it otherwise), stopping early when fn
// returns true. Subset members must additionally be mutually within the
// window; incompatible subsets are skipped.
func (e *Engine) forEachSubset(base []*event.Event, fn func([]*event.Event) bool, withEmpty bool) {
	n := len(base)
	start := 0
	if !withEmpty {
		start = 1
	}
	for mask := start; mask < 1<<uint(n); mask++ {
		var subset []*event.Event
		ok := true
		var min, max event.Time
		first := true
		for i := 0; i < n && ok; i++ {
			if mask&(1<<uint(i)) == 0 {
				continue
			}
			b := base[i]
			subset = append(subset, b)
			if first {
				min, max, first = b.TS, b.TS, false
			} else {
				if b.TS < min {
					min = b.TS
				}
				if b.TS > max {
					max = b.TS
				}
				if max-min > e.c.Window {
					ok = false
				}
			}
		}
		if !ok {
			continue
		}
		if fn(subset) {
			return
		}
	}
}

// spawn builds the child partial match of p with group bound at pos,
// returning nil if the combined window is violated.
func (e *Engine) spawn(p *pm, pos int, group []*event.Event) *pm {
	if len(group) == 0 {
		return nil
	}
	min, max := group[0].TS, group[0].TS
	for _, g := range group[1:] {
		if g.TS < min {
			min = g.TS
		}
		if g.TS > max {
			max = g.TS
		}
	}
	if p.steps > 0 {
		if p.minTS < min {
			min = p.minTS
		}
		if p.maxTS > max {
			max = p.maxTS
		}
	}
	if max-min > e.c.Window {
		return nil
	}
	child := &pm{
		positions: append([][]*event.Event(nil), p.positions...),
		minTS:     min,
		maxTS:     max,
		steps:     p.steps + 1,
	}
	child.positions[pos] = group
	return child
}

// place registers a new partial match: early negation checks, then either
// storage plus cascade or completion.
func (e *Engine) place(p *pm) {
	e.st.Created++
	for _, spec := range e.negEarly[p.steps] {
		if e.violated(p, spec) {
			return
		}
	}
	if p.steps == len(e.order) {
		e.complete(p)
		return
	}
	e.levels[p.steps-1] = append(e.levels[p.steps-1], p)
	e.nPartial++
	if cur := e.CurrentPartial(); cur > e.st.PeakPartial {
		e.st.PeakPartial = cur
	}
	e.cascade(p)
}

// complete handles a full positive match: completion-time negation checks,
// pending-queue admission, or immediate emission.
func (e *Engine) complete(p *pm) {
	if e.cfg.Strategy == predicate.SkipTillNextMatch && e.anyConsumed(p) {
		return
	}
	for _, spec := range e.negComplete {
		if e.violated(p, spec) {
			return
		}
	}
	if len(e.negPending) > 0 {
		for _, spec := range e.negPending {
			if e.violated(p, spec) {
				return
			}
		}
		e.pending = append(e.pending, &pendingMatch{p: p, deadline: p.minTS + e.c.Window})
		if cur := e.CurrentPartial(); cur > e.st.PeakPartial {
			e.st.PeakPartial = cur
		}
		return
	}
	e.emit(p)
}

// violated scans the negated position's buffer for an event invalidating p
// under the shared negation semantics.
func (e *Engine) violated(p *pm, spec predicate.NegSpec) bool {
	m := &match.Match{Positions: p.positions}
	for _, b := range e.buffers[spec.Pos] {
		if oracle.Violates(e.c, m, spec, b) {
			return true
		}
	}
	return false
}

func (e *Engine) emit(p *pm) {
	m := &match.Match{Positions: p.positions}
	e.st.Matches++
	if e.cfg.Strategy == predicate.SkipTillNextMatch {
		for _, g := range p.positions {
			for _, ev := range g {
				ev.Consume()
			}
		}
	}
	if e.cfg.OnMatch != nil {
		e.cfg.OnMatch(m)
	}
	e.out = append(e.out, m)
}

func (e *Engine) anyConsumed(p *pm) bool {
	for _, g := range p.positions {
		for _, ev := range g {
			if ev.Consumed() {
				return true
			}
		}
	}
	return false
}

// expirePending emits pending matches whose violators can no longer arrive.
func (e *Engine) expirePending() {
	if len(e.pending) == 0 {
		return
	}
	keep := e.pending[:0]
	for _, pd := range e.pending {
		switch {
		case pd.p.dead:
		case pd.deadline < e.now:
			if !(e.cfg.Strategy == predicate.SkipTillNextMatch && e.anyConsumed(pd.p)) {
				e.emit(pd.p)
			}
		default:
			keep = append(keep, pd)
		}
	}
	e.pending = keep
}

// killPending applies a newly arrived potential violator to the pending
// queue.
func (e *Engine) killPending(ev *event.Event) {
	for _, pd := range e.pending {
		if pd.p.dead {
			continue
		}
		m := &match.Match{Positions: pd.p.positions}
		for _, spec := range e.negPending {
			if oracle.Violates(e.c, m, spec, ev) {
				pd.p.dead = true
				break
			}
		}
	}
}

func (e *Engine) expired(p *pm) bool {
	return p.steps > 0 && e.now-p.minTS > e.c.Window
}

func (e *Engine) purgeBuffers() {
	cut := e.now - e.c.Window
	for pos, buf := range e.buffers {
		i := 0
		for i < len(buf) && buf[i].TS < cut {
			i++
		}
		if i > 0 {
			e.buffers[pos] = buf[i:]
			e.nBuffered -= i
		}
	}
}

// compact sweeps dead and expired partial matches out of the level stores.
func (e *Engine) compact() {
	total := 0
	for s, level := range e.levels {
		keep := level[:0]
		for _, p := range level {
			if p.dead || e.expired(p) {
				continue
			}
			if e.cfg.Strategy == predicate.SkipTillNextMatch && e.anyConsumed(p) {
				continue
			}
			keep = append(keep, p)
		}
		e.levels[s] = keep
		total += len(keep)
	}
	e.nPartial = total
}
