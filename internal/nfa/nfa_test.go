package nfa

import (
	"testing"

	"repro/internal/event"
	"repro/internal/match"
	"repro/internal/pattern"
	"repro/internal/predicate"
)

var (
	schemaA = event.NewSchema("A", "x")
	schemaB = event.NewSchema("B", "x")
	schemaC = event.NewSchema("C", "x")
)

func compile(t *testing.T, p *pattern.Pattern, s predicate.Strategy) *predicate.Compiled {
	t.Helper()
	c, err := predicate.Compile(p, s)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func feed(t *testing.T, e *Engine, events []*event.Event) []*match.Match {
	t.Helper()
	var out []*match.Match
	for _, ev := range events {
		out = append(out, append([]*match.Match(nil), e.Process(ev)...)...)
	}
	out = append(out, append([]*match.Match(nil), e.Flush()...)...)
	return out
}

func stream(events []*event.Event) []*event.Event {
	return event.Drain(event.NewSliceStream(events))
}

func TestNewRejectsBadOrders(t *testing.T) {
	p := pattern.Seq(10, pattern.E("A", "a"), pattern.Not("B", "b"), pattern.E("C", "c"))
	c := compile(t, p, predicate.SkipTillAnyMatch)
	if _, err := New(c, []int{0}, Config{}); err == nil {
		t.Fatal("short order accepted")
	}
	if _, err := New(c, []int{0, 1}, Config{}); err == nil {
		t.Fatal("order containing negated position accepted")
	}
	if _, err := New(c, []int{0, 0}, Config{}); err == nil {
		t.Fatal("duplicate order accepted")
	}
	if _, err := New(c, []int{0, 2}, Config{}); err != nil {
		t.Fatalf("valid order rejected: %v", err)
	}
}

func TestSingleEventPattern(t *testing.T) {
	p := pattern.Seq(10, pattern.E("A", "a")).
		Where(pattern.Cmp(pattern.Ref("a", "x"), pattern.Gt, pattern.Const(2)))
	c := compile(t, p, predicate.SkipTillAnyMatch)
	e, err := New(c, []int{0}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	got := feed(t, e, stream([]*event.Event{
		event.New(schemaA, 1, 5),
		event.New(schemaA, 2, 1), // filtered
		event.New(schemaA, 3, 9),
	}))
	if len(got) != 2 {
		t.Fatalf("got %d matches, want 2", len(got))
	}
}

func TestOnMatchCallback(t *testing.T) {
	p := pattern.Seq(10, pattern.E("A", "a"), pattern.E("B", "b"))
	c := compile(t, p, predicate.SkipTillAnyMatch)
	var seen int
	e, err := New(c, []int{0, 1}, Config{OnMatch: func(*match.Match) { seen++ }})
	if err != nil {
		t.Fatal(err)
	}
	feed(t, e, stream([]*event.Event{
		event.New(schemaA, 1, 0),
		event.New(schemaB, 2, 0),
	}))
	if seen != 1 {
		t.Fatalf("OnMatch fired %d times", seen)
	}
}

func TestStatsCounters(t *testing.T) {
	p := pattern.Seq(10, pattern.E("A", "a"), pattern.E("B", "b"))
	c := compile(t, p, predicate.SkipTillAnyMatch)
	e, _ := New(c, []int{0, 1}, Config{})
	feed(t, e, stream([]*event.Event{
		event.New(schemaA, 1, 0),
		event.New(schemaA, 2, 0),
		event.New(schemaB, 3, 0),
	}))
	st := e.Stats()
	if st.Processed != 3 {
		t.Fatalf("Processed = %d", st.Processed)
	}
	if st.Matches != 2 {
		t.Fatalf("Matches = %d", st.Matches)
	}
	// Two A-partial matches plus two completions.
	if st.Created != 4 {
		t.Fatalf("Created = %d", st.Created)
	}
	if st.PeakPartial < 2 {
		t.Fatalf("PeakPartial = %d", st.PeakPartial)
	}
	if st.PeakBuffered < 2 {
		t.Fatalf("PeakBuffered = %d", st.PeakBuffered)
	}
}

func TestWindowPurgesPartials(t *testing.T) {
	p := pattern.Seq(5, pattern.E("A", "a"), pattern.E("B", "b"))
	c := compile(t, p, predicate.SkipTillAnyMatch)
	e, _ := New(c, []int{0, 1}, Config{})
	events := []*event.Event{event.New(schemaA, 1, 0)}
	// Push the clock far past the window with unrelated events.
	for ts := event.Time(100); ts < 300; ts += 1 {
		events = append(events, event.New(schemaC, ts, 0))
	}
	events = append(events, event.New(schemaB, 300, 0))
	got := feed(t, e, stream(events))
	if len(got) != 0 {
		t.Fatalf("expired partial match completed: %d", len(got))
	}
	if e.CurrentBuffered() > 2 {
		t.Fatalf("buffers not purged: %d", e.CurrentBuffered())
	}
}

func TestTrailingNegationPendsUntilWindow(t *testing.T) {
	p := pattern.Seq(5, pattern.E("A", "a"), pattern.Not("B", "b"))
	c := compile(t, p, predicate.SkipTillAnyMatch)
	e, _ := New(c, []int{0}, Config{})
	// A at ts=1; nothing else until ts=10 — the match must be emitted once
	// the deadline (1+5) passes, not at arrival time.
	out := e.Process(event.New(schemaA, 1, 0))
	if len(out) != 0 {
		t.Fatal("match emitted before negation window closed")
	}
	out = e.Process(event.New(schemaC, 10, 0))
	if len(out) != 1 {
		t.Fatalf("pending match not emitted after deadline: %d", len(out))
	}

	// Same but a B arrives inside the window: the match must die.
	e2, _ := New(c, []int{0}, Config{})
	e2.Process(event.New(schemaA, 1, 0))
	e2.Process(event.New(schemaB, 4, 0))
	out = e2.Process(event.New(schemaC, 10, 0))
	if len(out) != 0 {
		t.Fatalf("vetoed pending match emitted: %d", len(out))
	}
	if len(e2.Flush()) != 0 {
		t.Fatal("vetoed match resurrected by Flush")
	}
}

func TestFlushEmitsPending(t *testing.T) {
	p := pattern.Seq(100, pattern.E("A", "a"), pattern.Not("B", "b"))
	c := compile(t, p, predicate.SkipTillAnyMatch)
	e, _ := New(c, []int{0}, Config{})
	e.Process(event.New(schemaA, 1, 0))
	got := e.Flush()
	if len(got) != 1 {
		t.Fatalf("Flush emitted %d, want 1", len(got))
	}
	if len(e.Flush()) != 0 {
		t.Fatal("second Flush re-emitted")
	}
}

func TestKleeneCapCounter(t *testing.T) {
	p := pattern.And(100, pattern.E("A", "a"), pattern.KL("B", "b"))
	c := compile(t, p, predicate.SkipTillAnyMatch)
	e, _ := New(c, []int{0, 1}, Config{MaxKleeneBase: 2})
	var events []*event.Event
	events = append(events, event.New(schemaA, 1, 0))
	for i := 0; i < 5; i++ {
		events = append(events, event.New(schemaB, event.Time(2+i), 0))
	}
	feed(t, e, stream(events))
	if e.Stats().KleeneCapped == 0 {
		t.Fatal("Kleene cap never applied")
	}
}

func TestSkipTillNextSingleExtension(t *testing.T) {
	p := pattern.Seq(10, pattern.E("A", "a"), pattern.E("B", "b"))
	c := compile(t, p, predicate.SkipTillAnyMatch)
	e, _ := New(c, []int{0, 1}, Config{Strategy: predicate.SkipTillNextMatch})
	got := feed(t, e, stream([]*event.Event{
		event.New(schemaA, 1, 0),
		event.New(schemaB, 2, 0),
		event.New(schemaB, 3, 0), // the A is consumed; no second match
	}))
	if len(got) != 1 {
		t.Fatalf("got %d matches, want 1", len(got))
	}
}

func TestProcessReturnValidUntilNextCall(t *testing.T) {
	p := pattern.Seq(10, pattern.E("A", "a"), pattern.E("B", "b"))
	c := compile(t, p, predicate.SkipTillAnyMatch)
	e, _ := New(c, []int{0, 1}, Config{})
	e.Process(event.New(schemaA, 1, 0))
	out := e.Process(event.New(schemaB, 2, 0))
	if len(out) != 1 {
		t.Fatalf("got %d", len(out))
	}
	key := out[0].Key()
	if key == "" {
		t.Fatal("empty key")
	}
}
