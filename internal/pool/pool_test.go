package pool

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func TestLifecycleErrors(t *testing.T) {
	p := New(Hooks[int]{Work: func(int, int) {}})
	if err := p.Start(); !errors.Is(err, ErrNoLanes) {
		t.Fatalf("Start on empty pool = %v, want ErrNoLanes", err)
	}
	p.AddLane(4)
	if err := p.Send(0, 1); !errors.Is(err, ErrNotStarted) {
		t.Fatalf("Send before Start = %v, want ErrNotStarted", err)
	}
	if err := p.Drain(); !errors.Is(err, ErrNotStarted) {
		t.Fatalf("Drain before Start = %v, want ErrNotStarted", err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); !errors.Is(err, ErrStarted) {
		t.Fatalf("double Start = %v, want ErrStarted", err)
	}
	if err := p.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if err := p.Shutdown(); !errors.Is(err, ErrClosed) {
		t.Fatalf("double Shutdown = %v, want ErrClosed", err)
	}
	if err := p.Send(0, 1); !errors.Is(err, ErrClosed) {
		t.Fatalf("Send after Shutdown = %v, want ErrClosed", err)
	}
	if !p.Joined() {
		t.Fatal("pool not joined after Shutdown")
	}
}

func TestNeverStartedShutdown(t *testing.T) {
	p := New(Hooks[int]{
		Work:   func(int, int) {},
		Finish: func(int) { t.Error("Finish ran on a never-started pool") },
	})
	p.AddLane(1)
	if err := p.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if !p.Joined() || !p.Closed() {
		t.Fatal("never-started pool not closed+joined after Shutdown")
	}
}

func TestWorkAndFinishOrdering(t *testing.T) {
	var mu sync.Mutex
	got := map[int][]int{}
	finished := map[int]bool{}
	p := New(Hooks[int]{
		Work: func(lane, item int) {
			mu.Lock()
			if finished[lane] {
				t.Error("Work after Finish")
			}
			got[lane] = append(got[lane], item)
			mu.Unlock()
		},
		Finish: func(lane int) {
			mu.Lock()
			finished[lane] = true
			mu.Unlock()
		},
	})
	for i := 0; i < 3; i++ {
		p.AddLane(8)
	}
	if err := p.EnsureStarted(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if err := p.Send(i%3, i); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Broadcast(nil, 100); err != nil {
		t.Fatal(err)
	}
	if err := p.Shutdown(); err != nil {
		t.Fatal(err)
	}
	for lane := 0; lane < 3; lane++ {
		if !finished[lane] {
			t.Fatalf("lane %d never finished", lane)
		}
		if n := len(got[lane]); n != 11 {
			t.Fatalf("lane %d processed %d items, want 11", lane, n)
		}
		// Per-lane order is submission order.
		for i := 0; i+1 < len(got[lane])-1; i++ {
			if got[lane][i] > got[lane][i+1] {
				t.Fatalf("lane %d out of order: %v", lane, got[lane])
			}
		}
	}
}

func TestDrainBarrier(t *testing.T) {
	var processed atomic.Int64
	p := New(Hooks[int]{Work: func(int, int) { processed.Add(1) }})
	p.AddLane(1024)
	p.AddLane(1024)
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if err := p.Send(i%2, i); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Drain(); err != nil {
		t.Fatal(err)
	}
	if got := processed.Load(); got != 500 {
		t.Fatalf("drain returned with %d items processed, want 500", got)
	}
	if err := p.Shutdown(); err != nil {
		t.Fatal(err)
	}
}

func TestDrainLanesSubset(t *testing.T) {
	// Lane 1's worker is blocked; DrainLanes on lane 0 alone must complete
	// anyway, and count only lane 0's items.
	release := make(chan struct{})
	var lane0 atomic.Int64
	p := New(Hooks[int]{Work: func(lane, _ int) {
		if lane == 1 {
			<-release
			return
		}
		lane0.Add(1)
	}})
	p.AddLane(64)
	p.AddLane(64)
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := p.Send(0, i); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Send(1, 0); err != nil { // parks lane 1's worker
		t.Fatal(err)
	}
	if err := p.DrainLanes([]int{0}); err != nil {
		t.Fatal(err)
	}
	if got := lane0.Load(); got != 50 {
		t.Fatalf("DrainLanes returned with %d lane-0 items processed, want 50", got)
	}
	// Out-of-range and retired indices are skipped, not an error.
	if err := p.CloseLane(0); err != nil {
		t.Fatal(err)
	}
	if err := p.DrainLanes([]int{-1, 0, 7}); err != nil {
		t.Fatal(err)
	}
	close(release)
	if err := p.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if err := p.DrainLanes([]int{0}); err != ErrClosed {
		t.Fatalf("DrainLanes on closed pool: %v, want ErrClosed", err)
	}
}

func TestStallHookAndBackPressure(t *testing.T) {
	release := make(chan struct{})
	var stalls atomic.Int64
	p := New(Hooks[int]{
		Work:    func(int, int) { <-release },
		OnStall: func(int) { stalls.Add(1) },
	})
	p.AddLane(1)
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	// First item wedges the worker, second fills the queue, third stalls.
	if err := p.Send(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := p.Send(0, 2); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- p.Broadcast(ctx, 3) }()
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) && err != nil {
		t.Fatalf("cancelled Broadcast = %v", err)
	}
	if stalls.Load() == 0 {
		t.Fatal("full queue produced no stall callback")
	}
	close(release)
	if err := p.Shutdown(); err != nil {
		t.Fatal(err)
	}
}

func TestFirstErrorWins(t *testing.T) {
	p := New(Hooks[int]{Work: func(int, int) {}})
	p.AddLane(1)
	e1, e2 := errors.New("first"), errors.New("second")
	p.RecordErr(nil)
	p.RecordErr(e1)
	p.RecordErr(e2)
	if got := p.Err(); got != e1 {
		t.Fatalf("Err() = %v, want first", got)
	}
}

func TestConcurrentShutdownIdempotent(t *testing.T) {
	p := New(Hooks[int]{Work: func(int, int) {}})
	p.AddLane(64)
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := p.Send(0, i); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	var closedErrs atomic.Int64
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := p.Shutdown(); errors.Is(err, ErrClosed) {
				closedErrs.Add(1)
			} else if err != nil {
				t.Errorf("Shutdown = %v", err)
			}
		}()
	}
	wg.Wait()
	if closedErrs.Load() != 3 {
		t.Fatalf("%d of 4 concurrent Shutdowns saw ErrClosed, want 3", closedErrs.Load())
	}
}

// TestDynamicLanes grows a running pool with AddLaneRunning and retires a
// lane with CloseLane: the new lane's worker must process items sent after
// it appeared, the retired lane must drain its queue, run Finish once, and
// drop out of Broadcast/Drain, and lane indices must stay stable.
func TestDynamicLanes(t *testing.T) {
	var mu sync.Mutex
	got := map[int][]int{}
	finished := map[int]int{}
	p := New(Hooks[int]{
		Work: func(lane, item int) {
			mu.Lock()
			got[lane] = append(got[lane], item)
			mu.Unlock()
		},
		Finish: func(lane int) {
			mu.Lock()
			finished[lane]++
			mu.Unlock()
		},
	})
	p.AddLane(4)
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	if err := p.Broadcast(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	idx, err := p.AddLaneRunning(4)
	if err != nil {
		t.Fatal(err)
	}
	if idx != 1 {
		t.Fatalf("new lane index %d, want 1", idx)
	}
	if err := p.Broadcast(context.Background(), 2); err != nil {
		t.Fatal(err)
	}
	if err := p.Drain(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	if len(got[0]) != 2 || len(got[1]) != 1 || got[1][0] != 2 {
		t.Fatalf("pre-close distribution wrong: %v", got)
	}
	mu.Unlock()

	if err := p.CloseLane(0); err != nil {
		t.Fatal(err)
	}
	if err := p.CloseLane(0); err != nil {
		t.Fatal(err) // idempotent
	}
	if p.LiveLanes() != 1 || p.Lanes() != 2 {
		t.Fatalf("live=%d total=%d, want 1/2", p.LiveLanes(), p.Lanes())
	}
	if err := p.Broadcast(context.Background(), 3); err != nil {
		t.Fatal(err)
	}
	if err := p.Drain(); err != nil {
		t.Fatal(err)
	}
	if err := p.Send(0, 9); !errors.Is(err, ErrClosed) {
		t.Fatalf("Send to retired lane = %v, want ErrClosed", err)
	}
	if err := p.Shutdown(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got[0]) != 2 {
		t.Fatalf("retired lane received items after close: %v", got[0])
	}
	if len(got[1]) != 2 || got[1][1] != 3 {
		t.Fatalf("surviving lane missed items: %v", got[1])
	}
	if finished[0] != 1 || finished[1] != 1 {
		t.Fatalf("finish counts %v, want exactly once per lane", finished)
	}
}

// TestAddLaneRunningConcurrentBroadcast races lane growth against a hot
// broadcast loop (run under -race): every broadcast must reach a
// consistent prefix of lanes and the pool must stay coherent.
func TestAddLaneRunningConcurrentBroadcast(t *testing.T) {
	var count atomic.Int64
	p := New(Hooks[int]{Work: func(int, int) { count.Add(1) }})
	p.AddLane(16)
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 500; i++ {
			if err := p.Broadcast(context.Background(), i); err != nil {
				t.Errorf("Broadcast: %v", err)
				return
			}
		}
	}()
	for i := 0; i < 8; i++ {
		if _, err := p.AddLaneRunning(16); err != nil {
			t.Fatal(err)
		}
	}
	<-done
	if err := p.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if n := count.Load(); n < 500 {
		t.Fatalf("only %d work calls for 500 broadcasts over >=1 lanes", n)
	}
}
