// Package pool provides the shared worker/lifecycle machinery behind the
// concurrent runtime shapes (Session's per-query lanes, ShardedRuntime's
// hash-routed shards): N worker goroutines, each exclusively draining one
// bounded queue, under one lifecycle and one error model.
//
// The concurrency discipline is the one both shapes independently evolved
// and now share:
//
//   - an RWMutex guards the lifecycle flags; senders hold the read lock
//     across their queue sends, Shutdown takes the write lock to flip closed
//     and close the queues, so no send can ever race a channel close;
//   - Drain is a barrier implemented with per-lane tokens: it returns once
//     every item enqueued before it has been consumed;
//   - the first worker error is recorded under its own mutex, never under
//     the lifecycle lock — a worker must be able to record an error while a
//     producer holds the read lock blocked on that very worker's full queue;
//   - joined flips only after the workers are gone, making it the flag that
//     gates reads of worker-owned state (accumulated results).
package pool

import (
	"context"
	"errors"
	"sync"
)

// Sentinel lifecycle errors. Callers translate them into their own error
// vocabulary with errors.Is.
var (
	// ErrClosed reports an operation on a pool that was already shut down.
	ErrClosed = errors.New("pool: closed")
	// ErrNotStarted reports a send or drain before Start.
	ErrNotStarted = errors.New("pool: not started")
	// ErrStarted reports an explicit Start of a running pool.
	ErrStarted = errors.New("pool: already started")
	// ErrNoLanes reports a Start with no lanes registered.
	ErrNoLanes = errors.New("pool: no lanes")
)

// Hooks configures the per-lane behavior of a Pool.
type Hooks[T any] struct {
	// Work processes one item on the lane's worker goroutine. Required.
	//
	// Queue-wait measurement contract: the pool adds no timestamps of its
	// own, so a caller measuring enqueue→dequeue wait must stamp the item
	// at send time (before Send/SendGrouped returns it to the queue) and
	// read the stamp first thing inside Work — everything between the two
	// is queue residency plus the worker's backlog, which is exactly the
	// wait the session's trace layer reports between its enqueue and
	// dequeue spans.
	Work func(lane int, item T)
	// Finish runs on the worker goroutine after the lane's queue is closed
	// and drained — the place to flush per-lane state. Optional.
	Finish func(lane int)
	// OnStall is invoked (on the sender's goroutine) when a Send or Grouped
	// send finds the lane's queue full and is about to block — the
	// back-pressure observability hook. Drain barrier tokens never count as
	// stalls. Optional.
	OnStall func(lane int)
}

// msg is one queue unit: an item or a drain barrier token.
type msg[T any] struct {
	item  T
	drain *sync.WaitGroup
}

// lane is one worker lane: its bounded queue plus a retirement flag. A
// retired lane's queue is closed and its worker has drained (or is
// draining) it; senders skip it. Lane indices are stable for the life of
// the pool — retiring a lane leaves a tombstone, it never renumbers the
// others.
type lane[T any] struct {
	ch      chan msg[T]
	retired bool
}

// Pool runs one worker goroutine per lane, each draining a bounded queue.
// Lanes are added before Start with AddLane or while running with
// AddLaneRunning, and retired individually with CloseLane; sends are safe
// for concurrent use and block when the destination queue is full
// (back-pressure).
type Pool[T any] struct {
	hooks Hooks[T]

	// mu guards the lifecycle flags and the lane list. Senders hold the read
	// lock across queue sends; Shutdown and CloseLane take the write lock to
	// flip closed and close the queues, so no send can race a channel close.
	// joined flips only after the workers are gone: it is the flag that makes
	// reading worker-owned state safe.
	mu      sync.RWMutex
	lanes   []*lane[T]
	started bool
	closed  bool
	joined  bool
	wg      sync.WaitGroup

	// errMu guards err separately from mu: workers record errors while
	// senders may hold mu's read lock blocked on that worker's full queue.
	errMu sync.Mutex
	err   error // first recorded error
}

// New builds an empty pool with the given hooks.
func New[T any](hooks Hooks[T]) *Pool[T] {
	return &Pool[T]{hooks: hooks}
}

// AddLane registers one worker lane with a bounded queue of the given
// capacity and returns its index. Lanes must be added before Start; use
// AddLaneRunning to grow a started pool.
func (p *Pool[T]) AddLane(queueLen int) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.started || p.closed {
		panic("pool: AddLane after Start or Shutdown")
	}
	return p.addLaneLocked(queueLen)
}

// AddLaneRunning registers one worker lane on a pool that may already be
// running: if the workers were launched, the new lane's worker starts
// immediately; before Start it behaves like AddLane. The new lane receives
// only items sent after it was added — a Broadcast in flight when the lane
// appears does not reach it. It errors on a closed pool.
func (p *Pool[T]) AddLaneRunning(queueLen int) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return 0, ErrClosed
	}
	i := p.addLaneLocked(queueLen)
	if p.started {
		p.wg.Add(1)
		go p.runWorker(i, p.lanes[i].ch)
	}
	return i, nil
}

func (p *Pool[T]) addLaneLocked(queueLen int) int {
	if queueLen <= 0 {
		queueLen = 1
	}
	p.lanes = append(p.lanes, &lane[T]{ch: make(chan msg[T], queueLen)})
	return len(p.lanes) - 1
}

// CloseLane retires one lane: its queue is closed, so its worker drains the
// remaining items, runs the Finish hook and exits, while the other lanes
// keep running. Senders skip retired lanes. Retiring a retired lane is a
// no-op; lane indices never shift. It errors on a closed pool or an
// out-of-range index.
func (p *Pool[T]) CloseLane(i int) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrClosed
	}
	if i < 0 || i >= len(p.lanes) {
		return ErrNoLanes
	}
	l := p.lanes[i]
	if l.retired {
		return nil
	}
	l.retired = true
	if p.started {
		// Close under the write lock: no sender can be mid-send here. Before
		// Start no worker owns the queue, so leave it for garbage collection.
		close(l.ch)
	}
	return nil
}

// Lanes returns the number of registered lanes, including retired ones
// (lane indices are stable tombstones).
func (p *Pool[T]) Lanes() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return len(p.lanes)
}

// LiveLanes returns the number of lanes accepting sends.
func (p *Pool[T]) LiveLanes() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	n := 0
	for _, l := range p.lanes {
		if !l.retired {
			n++
		}
	}
	return n
}

// QueueStats reports the instantaneous depth and capacity of lane i's
// queue (drain barrier tokens count toward depth). Reading a channel's
// length concurrently with sends and receives is safe; the result is a
// momentary observation, suitable for gauges. Retired or out-of-range
// lanes report 0, 0.
func (p *Pool[T]) QueueStats(i int) (depth, capacity int) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if i < 0 || i >= len(p.lanes) || p.lanes[i].retired {
		return 0, 0
	}
	ch := p.lanes[i].ch
	return len(ch), cap(ch)
}

// Start launches the worker goroutines. It errors on a closed, running or
// empty pool.
func (p *Pool[T]) Start() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrClosed
	}
	if p.started {
		return ErrStarted
	}
	return p.startLocked()
}

// EnsureStarted starts the workers if they are not running yet. The
// read-lock fast path keeps the steady-state cost at one RLock for callers
// driving one lazy-start check per item.
func (p *Pool[T]) EnsureStarted() error {
	p.mu.RLock()
	started := p.started
	p.mu.RUnlock()
	if started {
		return nil // closed is re-checked under the lock by the send path
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrClosed
	}
	if p.started {
		return nil
	}
	return p.startLocked()
}

func (p *Pool[T]) startLocked() error {
	if len(p.lanes) == 0 {
		return ErrNoLanes
	}
	p.started = true
	for i, l := range p.lanes {
		if l.retired {
			continue
		}
		p.wg.Add(1)
		go p.runWorker(i, l.ch)
	}
	return nil
}

// openLocked reports whether the pool accepts sends; the caller holds at
// least the read lock.
func (p *Pool[T]) openLocked() error {
	if p.closed {
		return ErrClosed
	}
	if !p.started {
		return ErrNotStarted
	}
	return nil
}

// send enqueues with back-pressure, bumping the stall hook when the queue
// is full. The caller holds the read lock.
func (p *Pool[T]) send(lane int, m msg[T]) {
	ch := p.lanes[lane].ch
	select {
	case ch <- m:
	default:
		if p.hooks.OnStall != nil {
			p.hooks.OnStall(lane)
		}
		ch <- m
	}
}

// sendCtx is send with a cancellable blocking phase.
func (p *Pool[T]) sendCtx(ctx context.Context, lane int, m msg[T]) error {
	ch := p.lanes[lane].ch
	select {
	case ch <- m:
		return nil
	default:
		if p.hooks.OnStall != nil {
			p.hooks.OnStall(lane)
		}
		select {
		case ch <- m:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// Send enqueues one item on a lane, blocking on a full queue
// (back-pressure). A concurrent Shutdown waits for in-flight sends, so Send
// never races a queue close: it either enqueues or returns ErrClosed.
func (p *Pool[T]) Send(lane int, item T) error {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if err := p.openLocked(); err != nil {
		return err
	}
	if p.lanes[lane].retired {
		return ErrClosed
	}
	p.send(lane, msg[T]{item: item})
	return nil
}

// Grouped is one (lane, item) pair for SendGrouped.
type Grouped[T any] struct {
	Lane int
	Item T
}

// SendGrouped enqueues several (lane, item) pairs under one lifecycle
// check, so a concurrent Shutdown cannot interleave mid-group: either every
// pair is enqueued or none is and ErrClosed is returned.
func (p *Pool[T]) SendGrouped(pairs []Grouped[T]) error {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if err := p.openLocked(); err != nil {
		return err
	}
	for _, g := range pairs {
		if p.lanes[g.Lane].retired {
			return ErrClosed
		}
		p.send(g.Lane, msg[T]{item: g.Item})
	}
	return nil
}

// SendGroupedCtx is SendGrouped with a cancellable blocking phase: a
// non-nil ctx makes each back-pressured send abortable, in which case the
// group may have reached only a prefix of its lanes (the same partial
// delivery contract as a cancelled Broadcast).
func (p *Pool[T]) SendGroupedCtx(ctx context.Context, pairs []Grouped[T]) error {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if err := p.openLocked(); err != nil {
		return err
	}
	for _, g := range pairs {
		if p.lanes[g.Lane].retired {
			return ErrClosed
		}
		if ctx == nil {
			p.send(g.Lane, msg[T]{item: g.Item})
			continue
		}
		if err := p.sendCtx(ctx, g.Lane, msg[T]{item: g.Item}); err != nil {
			return err
		}
	}
	return nil
}

// Broadcast enqueues the item on every live lane, in lane order (retired
// lanes are skipped). A non-nil ctx makes each blocking send cancellable;
// on cancellation the item may have reached only a prefix of the lanes.
func (p *Pool[T]) Broadcast(ctx context.Context, item T) error {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if err := p.openLocked(); err != nil {
		return err
	}
	m := msg[T]{item: item}
	for i, l := range p.lanes {
		if l.retired {
			continue
		}
		if ctx == nil {
			l.ch <- m
			continue
		}
		if err := p.sendCtx(ctx, i, m); err != nil {
			return err
		}
	}
	return nil
}

// Drain is a mid-stream barrier: it blocks until every item enqueued before
// the call has been consumed by its lane's worker. Barrier tokens are not
// items: they bypass Work and never count as back-pressure stalls.
func (p *Pool[T]) Drain() error {
	p.mu.RLock()
	if err := p.openLocked(); err != nil {
		p.mu.RUnlock()
		return err
	}
	var barrier sync.WaitGroup
	for _, l := range p.lanes {
		if l.retired {
			continue
		}
		// Plain blocking send: tokens must not inflate stall counters.
		barrier.Add(1)
		l.ch <- msg[T]{drain: &barrier}
	}
	// Wait outside the lock: the tokens are enqueued, so the barrier
	// completes even if a concurrent Shutdown closes the queues meanwhile.
	p.mu.RUnlock()
	barrier.Wait()
	return nil
}

// DrainLanes is Drain restricted to the given lane indices: it blocks until
// every item enqueued on those lanes before the call has been consumed by
// their workers, leaving the other lanes untouched. A live re-optimization
// uses it to quiesce just the lanes it is about to splice instead of
// stalling the whole pool. Retired and out-of-range indices are skipped.
func (p *Pool[T]) DrainLanes(idxs []int) error {
	p.mu.RLock()
	if err := p.openLocked(); err != nil {
		p.mu.RUnlock()
		return err
	}
	var barrier sync.WaitGroup
	for _, i := range idxs {
		if i < 0 || i >= len(p.lanes) || p.lanes[i].retired {
			continue
		}
		barrier.Add(1)
		p.lanes[i].ch <- msg[T]{drain: &barrier}
	}
	p.mu.RUnlock()
	barrier.Wait()
	return nil
}

// Shutdown flips closed, closes the queues and joins the workers exactly
// once; a second call returns ErrClosed immediately (without waiting for
// the first to finish joining). Shutting down a never-started pool just
// marks it closed and joined — no workers ever ran, so per-lane Finish
// hooks do not fire.
func (p *Pool[T]) Shutdown() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrClosed
	}
	p.closed = true
	if !p.started {
		p.joined = true
		p.mu.Unlock()
		return nil
	}
	// Close the queues while still holding the write lock: senders hold the
	// read lock across their sends, so none can be mid-send here. Retired
	// lanes are already closed.
	for _, l := range p.lanes {
		if !l.retired {
			close(l.ch)
		}
	}
	p.mu.Unlock()
	p.wg.Wait()
	p.mu.Lock()
	p.joined = true
	p.mu.Unlock()
	return nil
}

// Started reports whether the workers were launched.
func (p *Pool[T]) Started() bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.started
}

// Closed reports whether the pool was shut down (intake stopped; workers
// may still be draining).
func (p *Pool[T]) Closed() bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.closed
}

// Joined reports whether the workers are gone: worker-owned state (per-lane
// accumulations) is safe to read exactly when Joined is true.
func (p *Pool[T]) Joined() bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.joined
}

// RecordErr keeps the first error.
func (p *Pool[T]) RecordErr(err error) {
	if err == nil {
		return
	}
	p.errMu.Lock()
	if p.err == nil {
		p.err = err
	}
	p.errMu.Unlock()
}

// Err returns the first recorded error.
func (p *Pool[T]) Err() error {
	p.errMu.Lock()
	defer p.errMu.Unlock()
	return p.err
}

// runWorker is the worker loop: it owns lane-local state exclusively. The
// channel is captured at spawn so the loop never touches the lane slice,
// which AddLaneRunning may be growing concurrently.
func (p *Pool[T]) runWorker(lane int, ch chan msg[T]) {
	defer p.wg.Done()
	for m := range ch {
		if m.drain != nil {
			m.drain.Done()
			continue
		}
		p.hooks.Work(lane, m.item)
	}
	if p.hooks.Finish != nil {
		p.hooks.Finish(lane)
	}
}
