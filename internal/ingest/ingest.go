// Package ingest reads event streams from external encodings — CSV and
// JSON Lines — against a schema registry. It is the boundary a production
// deployment feeds (the paper's NASDAQ preprocessing produced exactly such
// tabular records: identifier, timestamp, price, difference).
//
// Both readers validate monotone timestamps and stamp serial numbers, so
// their output is directly consumable by the engines.
package ingest

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"repro/internal/event"
)

// CSVOptions configures ReadCSV.
type CSVOptions struct {
	// TypeColumn and TSColumn name the columns holding the event type and
	// the timestamp in milliseconds. Defaults: "type", "ts".
	TypeColumn string
	TSColumn   string
	// PartitionColumn optionally names a column with the partition id.
	PartitionColumn string
	// Comma is the field separator; default ','.
	Comma rune
}

func (o CSVOptions) withDefaults() CSVOptions {
	if o.TypeColumn == "" {
		o.TypeColumn = "type"
	}
	if o.TSColumn == "" {
		o.TSColumn = "ts"
	}
	if o.Comma == 0 {
		o.Comma = ','
	}
	return o
}

// ReadCSV parses a headered CSV stream into events. Every row's type must
// be registered; attribute columns are matched to the schema by header
// name, and missing attributes default to zero. Rows must be
// timestamp-ordered.
func ReadCSV(r io.Reader, reg *event.Registry, opts CSVOptions) ([]*event.Event, error) {
	opts = opts.withDefaults()
	cr := csv.NewReader(r)
	cr.Comma = opts.Comma
	cr.TrimLeadingSpace = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("ingest: reading CSV header: %w", err)
	}
	col := make(map[string]int, len(header))
	for i, h := range header {
		col[h] = i
	}
	typeCol, ok := col[opts.TypeColumn]
	if !ok {
		return nil, fmt.Errorf("ingest: CSV has no %q column", opts.TypeColumn)
	}
	tsCol, ok := col[opts.TSColumn]
	if !ok {
		return nil, fmt.Errorf("ingest: CSV has no %q column", opts.TSColumn)
	}
	var events []*event.Event
	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		line++
		if err != nil {
			return nil, fmt.Errorf("ingest: CSV line %d: %w", line, err)
		}
		typ := rec[typeCol]
		schema, ok := reg.Lookup(typ)
		if !ok {
			return nil, fmt.Errorf("ingest: CSV line %d: unknown event type %q", line, typ)
		}
		ts, err := strconv.ParseInt(rec[tsCol], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("ingest: CSV line %d: bad timestamp %q", line, rec[tsCol])
		}
		values := make([]float64, schema.NumAttrs())
		for i, attr := range schema.Attrs() {
			ci, ok := col[attr]
			if !ok || rec[ci] == "" {
				continue
			}
			v, err := strconv.ParseFloat(rec[ci], 64)
			if err != nil {
				return nil, fmt.Errorf("ingest: CSV line %d: bad value %q for %s.%s",
					line, rec[ci], typ, attr)
			}
			values[i] = v
		}
		ev := event.New(schema, ts, values...)
		if pc, ok := col[opts.PartitionColumn]; ok && opts.PartitionColumn != "" {
			p, err := strconv.Atoi(rec[pc])
			if err != nil {
				return nil, fmt.Errorf("ingest: CSV line %d: bad partition %q", line, rec[pc])
			}
			ev.Partition = p
		}
		events = append(events, ev)
	}
	return stamp(events)
}

// jsonRecord is the JSON Lines wire format: {"type": "...", "ts": 123,
// "partition": 0, "attrs": {"price": 1.5}}.
type jsonRecord struct {
	Type      string             `json:"type"`
	TS        int64              `json:"ts"`
	Partition int                `json:"partition"`
	Attrs     map[string]float64 `json:"attrs"`
}

// ReadJSONL parses newline-delimited JSON records into events. Records must
// be timestamp-ordered; unknown attributes are rejected.
func ReadJSONL(r io.Reader, reg *event.Registry) ([]*event.Event, error) {
	dec := json.NewDecoder(r)
	var events []*event.Event
	line := 0
	for {
		var rec jsonRecord
		if err := dec.Decode(&rec); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("ingest: JSONL record %d: %w", line+1, err)
		}
		line++
		schema, ok := reg.Lookup(rec.Type)
		if !ok {
			return nil, fmt.Errorf("ingest: JSONL record %d: unknown event type %q", line, rec.Type)
		}
		values := make([]float64, schema.NumAttrs())
		for attr, v := range rec.Attrs {
			i, ok := schema.Index(attr)
			if !ok {
				return nil, fmt.Errorf("ingest: JSONL record %d: type %q has no attribute %q",
					line, rec.Type, attr)
			}
			values[i] = v
		}
		ev := event.New(schema, rec.TS, values...)
		ev.Partition = rec.Partition
		events = append(events, ev)
	}
	return stamp(events)
}

// WriteJSONL renders events in the ReadJSONL wire format.
func WriteJSONL(w io.Writer, events []*event.Event) error {
	enc := json.NewEncoder(w)
	for _, ev := range events {
		rec := jsonRecord{Type: ev.Type, TS: ev.TS, Partition: ev.Partition}
		if ev.Schema != nil {
			rec.Attrs = make(map[string]float64, len(ev.Attrs))
			for i, attr := range ev.Schema.Attrs() {
				rec.Attrs[attr] = ev.Attrs[i]
			}
		}
		if err := enc.Encode(rec); err != nil {
			return fmt.Errorf("ingest: encoding event: %w", err)
		}
	}
	return nil
}

func stamp(events []*event.Event) ([]*event.Event, error) {
	for i := 1; i < len(events); i++ {
		if events[i].TS < events[i-1].TS {
			return nil, fmt.Errorf("ingest: events out of timestamp order at record %d", i+1)
		}
	}
	return event.Drain(event.NewSliceStream(events)), nil
}
