package ingest

import (
	"fmt"
	"math"

	"repro/internal/event"
)

// AssignPartitions sets each event's partition id to a hash of the named
// attribute, modulo parts. It is the bridge between unpartitioned feeds and
// the partitioned/sharded runtimes: events agreeing on the key land in the
// same partition, so every match over that key survives partition-local
// detection. The events must be timestamp-ordered; they are restamped
// (global and per-partition serials) after assignment, and the slice is
// modified in place and returned.
func AssignPartitions(events []*event.Event, attr string, parts int) ([]*event.Event, error) {
	if parts <= 0 {
		return nil, fmt.Errorf("ingest: partition count must be positive, got %d", parts)
	}
	// Validate everything before mutating, so an error leaves the slice
	// exactly as it was handed in.
	for i := 1; i < len(events); i++ {
		if events[i].TS < events[i-1].TS {
			return nil, fmt.Errorf("ingest: events out of timestamp order at record %d", i+1)
		}
	}
	for i, ev := range events {
		if _, ok := ev.Attr(attr); !ok {
			return nil, fmt.Errorf("ingest: event %d (type %q) has no attribute %q", i+1, ev.Type, attr)
		}
	}
	for _, ev := range events {
		v, _ := ev.Attr(attr)
		ev.Partition = partitionOf(v, parts)
	}
	// Order was validated above; restamp in place (same 1-based numbering
	// as event.SliceStream) without another validation pass.
	pserials := make(map[int]int64)
	for i, ev := range events {
		ev.Serial = int64(i + 1)
		pserials[ev.Partition]++
		ev.PSerial = pserials[ev.Partition]
	}
	return events, nil
}

// partitionOf hashes an attribute value onto [0, parts). The value's bit
// pattern is mixed (splitmix64 finalizer) so that small consecutive integer
// keys still spread across partitions.
func partitionOf(v float64, parts int) int {
	if v == 0 {
		v = 0 // collapse -0.0 onto +0.0: they compare equal, so they must co-locate
	}
	h := math.Float64bits(v)
	h ^= h >> 30
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 27
	h *= 0x94D049BB133111EB
	h ^= h >> 31
	return int(h % uint64(parts))
}
