package ingest

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/event"
)

func registry() *event.Registry {
	return event.NewRegistry(
		event.NewSchema("Stock", "price", "difference"),
		event.NewSchema("News", "sentiment"),
	)
}

func TestReadCSV(t *testing.T) {
	src := `type,ts,price,difference,sentiment
Stock,1000,99.5,-0.25,
News,2000,,,0.8
Stock,3000,100.0,0.5,
`
	events, err := ReadCSV(strings.NewReader(src), registry(), CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 3 {
		t.Fatalf("got %d events", len(events))
	}
	if events[0].Type != "Stock" || events[0].TS != 1000 ||
		events[0].MustAttr("price") != 99.5 || events[0].MustAttr("difference") != -0.25 {
		t.Fatalf("event 0 = %s", events[0])
	}
	if events[1].Type != "News" || events[1].MustAttr("sentiment") != 0.8 {
		t.Fatalf("event 1 = %s", events[1])
	}
	if events[0].Serial != 1 || events[2].Serial != 3 {
		t.Fatal("serials not stamped")
	}
}

func TestReadCSVWithPartitions(t *testing.T) {
	src := `type,ts,price,difference,shard
Stock,1,1,0,2
Stock,2,2,1,3
`
	events, err := ReadCSV(strings.NewReader(src), registry(),
		CSVOptions{PartitionColumn: "shard"})
	if err != nil {
		t.Fatal(err)
	}
	if events[0].Partition != 2 || events[1].Partition != 3 {
		t.Fatalf("partitions = %d, %d", events[0].Partition, events[1].Partition)
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"no type column", "ts\n1\n", `no "type" column`},
		{"no ts column", "type\nStock\n", `no "ts" column`},
		{"unknown type", "type,ts\nBond,1\n", "unknown event type"},
		{"bad ts", "type,ts\nStock,xyz\n", "bad timestamp"},
		{"bad value", "type,ts,price\nStock,1,NaNope\n", "bad value"},
		{"disorder", "type,ts\nStock,5\nStock,1\n", "out of timestamp order"},
	}
	for _, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c.src), registry(), CSVOptions{}); err == nil ||
			!strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want %q", c.name, err, c.want)
		}
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	reg := registry()
	src := `{"type":"Stock","ts":1000,"attrs":{"price":99.5,"difference":-0.25}}
{"type":"News","ts":2000,"partition":4,"attrs":{"sentiment":0.8}}
`
	events, err := ReadJSONL(strings.NewReader(src), reg)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("got %d events", len(events))
	}
	if events[1].Partition != 4 {
		t.Fatalf("partition = %d", events[1].Partition)
	}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, events); err != nil {
		t.Fatal(err)
	}
	again, err := ReadJSONL(&buf, reg)
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != 2 || again[0].MustAttr("price") != 99.5 || again[1].Partition != 4 {
		t.Fatal("round trip lost data")
	}
}

func TestReadJSONLErrors(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader(`{"type":"Bond","ts":1}`), registry()); err == nil ||
		!strings.Contains(err.Error(), "unknown event type") {
		t.Fatalf("err = %v", err)
	}
	if _, err := ReadJSONL(strings.NewReader(`{"type":"Stock","ts":1,"attrs":{"volume":3}}`), registry()); err == nil ||
		!strings.Contains(err.Error(), "no attribute") {
		t.Fatalf("err = %v", err)
	}
	if _, err := ReadJSONL(strings.NewReader(`{bad json`), registry()); err == nil {
		t.Fatal("bad JSON accepted")
	}
}

func TestAssignPartitions(t *testing.T) {
	reg := registry()
	stock, _ := reg.Lookup("Stock")
	var evs []*event.Event
	for i := 0; i < 100; i++ {
		evs = append(evs, event.New(stock, event.Time(i), float64(i%7), 1))
	}
	out, err := AssignPartitions(evs, "price", 4)
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[float64]int{}
	seen := map[int]bool{}
	for _, e := range out {
		p := e.Partition
		if p < 0 || p >= 4 {
			t.Fatalf("partition %d out of range", p)
		}
		key := e.MustAttr("price")
		if prev, ok := byKey[key]; ok && prev != p {
			t.Fatalf("key %v split across partitions %d and %d", key, prev, p)
		}
		byKey[key] = p
		seen[p] = true
	}
	if len(seen) < 2 {
		t.Fatalf("only %d partitions used", len(seen))
	}
	if out[99].PSerial == 0 {
		t.Fatal("per-partition serials not restamped")
	}
	if _, err := AssignPartitions(evs, "nope", 4); err == nil {
		t.Fatal("unknown attribute accepted")
	}
	if _, err := AssignPartitions(evs, "price", 0); err == nil {
		t.Fatal("zero partitions accepted")
	}
}

func TestAssignPartitionsNegativeZero(t *testing.T) {
	reg := registry()
	stock, _ := reg.Lookup("Stock")
	neg := math.Copysign(0, -1)
	evs := []*event.Event{
		event.New(stock, 1, 0.0, 1),
		event.New(stock, 2, neg, 1),
	}
	out, err := AssignPartitions(evs, "price", 8)
	if err != nil {
		t.Fatal(err)
	}
	// -0.0 == 0.0 under every predicate, so the keys must co-locate.
	if out[0].Partition != out[1].Partition {
		t.Fatalf("0.0 in partition %d but -0.0 in partition %d", out[0].Partition, out[1].Partition)
	}
}

func TestAssignPartitionsUnsortedInput(t *testing.T) {
	reg := registry()
	stock, _ := reg.Lookup("Stock")
	evs := []*event.Event{
		event.New(stock, 5, 1, 1),
		event.New(stock, 2, 2, 1),
	}
	if _, err := AssignPartitions(evs, "price", 4); err == nil ||
		!strings.Contains(err.Error(), "timestamp order") {
		t.Fatalf("err = %v, want timestamp-order error", err)
	}
}
