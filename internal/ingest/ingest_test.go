package ingest

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/event"
)

func registry() *event.Registry {
	return event.NewRegistry(
		event.NewSchema("Stock", "price", "difference"),
		event.NewSchema("News", "sentiment"),
	)
}

func TestReadCSV(t *testing.T) {
	src := `type,ts,price,difference,sentiment
Stock,1000,99.5,-0.25,
News,2000,,,0.8
Stock,3000,100.0,0.5,
`
	events, err := ReadCSV(strings.NewReader(src), registry(), CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 3 {
		t.Fatalf("got %d events", len(events))
	}
	if events[0].Type != "Stock" || events[0].TS != 1000 ||
		events[0].MustAttr("price") != 99.5 || events[0].MustAttr("difference") != -0.25 {
		t.Fatalf("event 0 = %s", events[0])
	}
	if events[1].Type != "News" || events[1].MustAttr("sentiment") != 0.8 {
		t.Fatalf("event 1 = %s", events[1])
	}
	if events[0].Serial != 1 || events[2].Serial != 3 {
		t.Fatal("serials not stamped")
	}
}

func TestReadCSVWithPartitions(t *testing.T) {
	src := `type,ts,price,difference,shard
Stock,1,1,0,2
Stock,2,2,1,3
`
	events, err := ReadCSV(strings.NewReader(src), registry(),
		CSVOptions{PartitionColumn: "shard"})
	if err != nil {
		t.Fatal(err)
	}
	if events[0].Partition != 2 || events[1].Partition != 3 {
		t.Fatalf("partitions = %d, %d", events[0].Partition, events[1].Partition)
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"no type column", "ts\n1\n", `no "type" column`},
		{"no ts column", "type\nStock\n", `no "ts" column`},
		{"unknown type", "type,ts\nBond,1\n", "unknown event type"},
		{"bad ts", "type,ts\nStock,xyz\n", "bad timestamp"},
		{"bad value", "type,ts,price\nStock,1,NaNope\n", "bad value"},
		{"disorder", "type,ts\nStock,5\nStock,1\n", "out of timestamp order"},
	}
	for _, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c.src), registry(), CSVOptions{}); err == nil ||
			!strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want %q", c.name, err, c.want)
		}
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	reg := registry()
	src := `{"type":"Stock","ts":1000,"attrs":{"price":99.5,"difference":-0.25}}
{"type":"News","ts":2000,"partition":4,"attrs":{"sentiment":0.8}}
`
	events, err := ReadJSONL(strings.NewReader(src), reg)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("got %d events", len(events))
	}
	if events[1].Partition != 4 {
		t.Fatalf("partition = %d", events[1].Partition)
	}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, events); err != nil {
		t.Fatal(err)
	}
	again, err := ReadJSONL(&buf, reg)
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != 2 || again[0].MustAttr("price") != 99.5 || again[1].Partition != 4 {
		t.Fatal("round trip lost data")
	}
}

func TestReadJSONLErrors(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader(`{"type":"Bond","ts":1}`), registry()); err == nil ||
		!strings.Contains(err.Error(), "unknown event type") {
		t.Fatalf("err = %v", err)
	}
	if _, err := ReadJSONL(strings.NewReader(`{"type":"Stock","ts":1,"attrs":{"volume":3}}`), registry()); err == nil ||
		!strings.Contains(err.Error(), "no attribute") {
		t.Fatalf("err = %v", err)
	}
	if _, err := ReadJSONL(strings.NewReader(`{bad json`), registry()); err == nil {
		t.Fatal("bad JSON accepted")
	}
}
