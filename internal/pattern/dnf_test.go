package pattern

import (
	"strings"
	"testing"
)

// aliasSet renders the aliases of a simple pattern for compact assertions.
func aliasSet(p *Pattern) string {
	parts := make([]string, len(p.Terms))
	for i, t := range p.Terms {
		parts[i] = t.Event.Alias
	}
	return strings.Join(parts, ",")
}

func TestToDNFSimplePassthrough(t *testing.T) {
	p := Seq(10, E("A", "a"), E("B", "b")).Where(AttrCmp("a", "x", Lt, "b", "x"))
	ds, err := ToDNF(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 1 {
		t.Fatalf("got %d disjuncts", len(ds))
	}
	d := ds[0]
	if d.Op != OpSeq || aliasSet(d) != "a,b" || len(d.Conds) != 1 {
		t.Fatalf("disjunct = %v", d)
	}
	if d.Window != 10 {
		t.Fatalf("window = %d", d.Window)
	}
}

func TestToDNFTopLevelOr(t *testing.T) {
	// AND(A, B, OR(C, D)) → AND(A,B,C) ∪ AND(A,B,D), the paper's §5.4 example.
	p := And(10, E("A", "a"), E("B", "b"), Sub(Or(10, E("C", "c"), E("D", "d"))))
	ds, err := ToDNF(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 2 {
		t.Fatalf("got %d disjuncts, want 2", len(ds))
	}
	if aliasSet(ds[0]) != "a,b,c" || aliasSet(ds[1]) != "a,b,d" {
		t.Fatalf("disjuncts = %q, %q", aliasSet(ds[0]), aliasSet(ds[1]))
	}
	for _, d := range ds {
		if d.Op != OpAnd {
			t.Fatalf("op = %v", d.Op)
		}
	}
}

func TestToDNFConditionFiltering(t *testing.T) {
	// The a-c condition must survive only in the disjunct containing c.
	p := And(10, E("A", "a"), Sub(Or(10, E("C", "c"), E("D", "d")))).
		Where(AttrCmp("a", "x", Lt, "c", "x"))
	ds, err := ToDNF(p)
	if err != nil {
		t.Fatal(err)
	}
	var withC, withD *Pattern
	for _, d := range ds {
		if strings.Contains(aliasSet(d), "c") {
			withC = d
		} else {
			withD = d
		}
	}
	if len(withC.Conds) != 1 {
		t.Fatalf("c-disjunct conds = %v", withC.Conds)
	}
	if len(withD.Conds) != 0 {
		t.Fatalf("d-disjunct conds = %v", withD.Conds)
	}
}

func TestToDNFDisjunctionOfSequences(t *testing.T) {
	// The evaluation's "disjunction" category: OR of three sequences.
	p := Or(10,
		Sub(Seq(10, E("A", "a"), E("B", "b"))),
		Sub(Seq(10, E("C", "c"), E("D", "d"))),
		Sub(Seq(10, E("A", "e"), E("D", "f"))),
	)
	ds, err := ToDNF(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 3 {
		t.Fatalf("got %d disjuncts", len(ds))
	}
	for _, d := range ds {
		if d.Op != OpSeq || len(d.Terms) != 2 {
			t.Fatalf("disjunct = %v", d)
		}
	}
}

func TestToDNFSeqOverOr(t *testing.T) {
	// SEQ(A, OR(B, C), D) distributes while preserving the sequence shape.
	p := Seq(10, E("A", "a"), Sub(Or(10, E("B", "b"), E("C", "c"))), E("D", "d"))
	ds, err := ToDNF(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 2 {
		t.Fatalf("got %d disjuncts", len(ds))
	}
	if ds[0].Op != OpSeq || aliasSet(ds[0]) != "a,b,d" {
		t.Fatalf("first = %v %q", ds[0].Op, aliasSet(ds[0]))
	}
	if ds[1].Op != OpSeq || aliasSet(ds[1]) != "a,c,d" {
		t.Fatalf("second = %v %q", ds[1].Op, aliasSet(ds[1]))
	}
}

func TestToDNFNestedSeqSplices(t *testing.T) {
	p := Seq(10, E("A", "a"), Sub(Seq(10, E("B", "b"), E("C", "c"))), E("D", "d"))
	ds, err := ToDNF(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 1 || ds[0].Op != OpSeq || aliasSet(ds[0]) != "a,b,c,d" {
		t.Fatalf("disjuncts = %v", ds)
	}
}

func TestToDNFSeqOverAndSynthesisesTSConds(t *testing.T) {
	// SEQ(A, AND(B, C), D) becomes a conjunction with order predicates
	// a<b, a<c, b<d, c<d (boundary constraints; b and c unordered).
	p := Seq(10, E("A", "a"), Sub(And(10, E("B", "b"), E("C", "c"))), E("D", "d"))
	ds, err := ToDNF(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 1 {
		t.Fatalf("got %d disjuncts", len(ds))
	}
	d := ds[0]
	if d.Op != OpAnd {
		t.Fatalf("op = %v, want AND", d.Op)
	}
	want := map[string]bool{
		"a.ts < b.ts": true, "a.ts < c.ts": true,
		"b.ts < d.ts": true, "c.ts < d.ts": true,
	}
	got := make(map[string]bool)
	for _, c := range d.Conds {
		got[c.String()] = true
	}
	for w := range want {
		if !got[w] {
			t.Errorf("missing synthesised condition %q (got %v)", w, d.Conds)
		}
	}
	if got["b.ts < c.ts"] || got["c.ts < b.ts"] {
		t.Error("b and c must remain unordered")
	}
}

func TestToDNFAndOverSeqSynthesisesTSConds(t *testing.T) {
	p := And(10, E("A", "a"), Sub(Seq(10, E("B", "b"), E("C", "c"))))
	ds, err := ToDNF(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 1 || ds[0].Op != OpAnd {
		t.Fatalf("disjuncts = %v", ds)
	}
	found := false
	for _, c := range ds[0].Conds {
		if c.String() == "b.ts < c.ts" {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing b<c order condition: %v", ds[0].Conds)
	}
}

func TestToDNFCartesianProduct(t *testing.T) {
	// AND(OR(A,B), OR(C,D)) → 4 disjuncts.
	p := And(10,
		Sub(Or(10, E("A", "a"), E("B", "b"))),
		Sub(Or(10, E("C", "c"), E("D", "d"))),
	)
	ds, err := ToDNF(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 4 {
		t.Fatalf("got %d disjuncts, want 4", len(ds))
	}
	want := map[string]bool{"a,c": true, "a,d": true, "b,c": true, "b,d": true}
	for _, d := range ds {
		if !want[aliasSet(d)] {
			t.Errorf("unexpected disjunct %q", aliasSet(d))
		}
		delete(want, aliasSet(d))
	}
}

func TestToDNFPreservesUnaryOperators(t *testing.T) {
	p := And(10, Not("A", "a"), KL("B", "b"), Sub(Or(10, E("C", "c"), E("D", "d"))))
	ds, err := ToDNF(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range ds {
		if !d.Terms[0].Event.Negated || !d.Terms[1].Event.Kleene {
			t.Fatalf("unary operators lost: %v", d)
		}
	}
}

func TestToDNFRejectsInvalid(t *testing.T) {
	if _, err := ToDNF(Seq(10, E("A", "a"), E("B", "a"))); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestToDNFNegatedBoundaryExcluded(t *testing.T) {
	// A negated event inside a sequenced conjunction must not appear in the
	// synthesised boundary order predicates.
	p := Seq(10, E("A", "a"), Sub(And(10, E("B", "b"), Not("C", "c"))), E("D", "d"))
	ds, err := ToDNF(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range ds[0].Conds {
		for _, al := range c.Aliases() {
			if al == "c" {
				t.Fatalf("negated alias used in order predicate: %v", c)
			}
		}
	}
}
