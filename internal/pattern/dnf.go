package pattern

import "fmt"

// fragment is a partially normalised simple pattern produced during DNF
// conversion: an operator (OpSeq or OpAnd) over primitive terms plus
// synthesised temporal-order conditions.
type fragment struct {
	op    Operator
	terms []Term
	conds []Condition
}

// firsts returns the terms that may occur earliest in the fragment: the first
// term of a sequence, or every term of a conjunction.
func (f fragment) firsts() []Term {
	if f.op == OpSeq && len(f.terms) > 0 {
		return f.terms[:1]
	}
	return f.terms
}

// lasts is the temporal mirror of firsts.
func (f fragment) lasts() []Term {
	if f.op == OpSeq && len(f.terms) > 0 {
		return f.terms[len(f.terms)-1:]
	}
	return f.terms
}

// ToDNF normalises a (possibly nested) pattern into a disjunction of simple
// patterns, per Section 5.4 of the paper: SEQ/AND operators are flattened and
// OR operators are distributed outward. Each returned pattern is simple
// (Op is OpSeq or OpAnd over primitive events); their union is equivalent to
// the input. Root conditions are attached to every disjunct whose aliases
// they reference; conditions mentioning an alias eliminated by OR
// distribution are dropped for that disjunct.
//
// Sequencing over a multi-event conjunction (e.g. SEQ(A, AND(B, C), D)) is
// supported by rewriting the order constraints as timestamp predicates, the
// same device Theorem 3 uses for whole patterns.
func ToDNF(p *Pattern) ([]*Pattern, error) {
	if err := p.Validate(nil); err != nil {
		return nil, err
	}
	frags, err := normalize(p)
	if err != nil {
		return nil, err
	}
	out := make([]*Pattern, 0, len(frags))
	for _, f := range frags {
		d := &Pattern{Op: f.op, Terms: f.terms, Window: p.Window}
		have := make(map[string]bool, len(f.terms))
		for _, t := range f.terms {
			have[t.Event.Alias] = true
		}
		d.Conds = append(d.Conds, f.conds...)
		for _, c := range p.Conds {
			applicable := true
			for _, a := range c.Aliases() {
				if !have[a] {
					applicable = false
					break
				}
			}
			if applicable {
				d.Conds = append(d.Conds, c)
			}
		}
		out = append(out, d)
	}
	return out, nil
}

func normalize(p *Pattern) ([]fragment, error) {
	// Normalise every child term into its own alternative list.
	children := make([][]fragment, len(p.Terms))
	for i, t := range p.Terms {
		if t.Event != nil {
			children[i] = []fragment{{op: OpAnd, terms: []Term{t}}}
			continue
		}
		sub, err := normalize(t.Sub)
		if err != nil {
			return nil, err
		}
		children[i] = sub
	}

	switch p.Op {
	case OpOr:
		var out []fragment
		for _, alts := range children {
			out = append(out, alts...)
		}
		return out, nil
	case OpAnd:
		return combine(children, mergeAnd)
	case OpSeq:
		return combine(children, mergeSeq)
	}
	return nil, fmt.Errorf("pattern: unknown operator %v", p.Op)
}

// combine computes the cartesian product of per-child alternatives, merging
// each selection with the provided merge function.
func combine(children [][]fragment, merge func([]fragment) (fragment, error)) ([]fragment, error) {
	selections := [][]fragment{nil}
	for _, alts := range children {
		var next [][]fragment
		for _, sel := range selections {
			for _, alt := range alts {
				grown := make([]fragment, len(sel), len(sel)+1)
				copy(grown, sel)
				next = append(next, append(grown, alt))
			}
		}
		selections = next
	}
	out := make([]fragment, 0, len(selections))
	for _, sel := range selections {
		f, err := merge(sel)
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	return out, nil
}

// mergeAnd concatenates fragments under a conjunction. Sequence fragments
// keep their internal order as timestamp conditions.
func mergeAnd(sel []fragment) (fragment, error) {
	out := fragment{op: OpAnd}
	for _, f := range sel {
		out.terms = append(out.terms, f.terms...)
		out.conds = append(out.conds, f.conds...)
		out.conds = append(out.conds, seqConds(f)...)
	}
	return out, nil
}

// mergeSeq concatenates fragments under a sequence. If every fragment is
// itself order-total (a sequence or a single event), the result remains a
// sequence; otherwise order constraints are synthesised as timestamp
// predicates and the result degrades to a conjunction.
func mergeSeq(sel []fragment) (fragment, error) {
	total := true
	for _, f := range sel {
		if f.op == OpAnd && len(f.terms) > 1 {
			total = false
		}
	}
	out := fragment{op: OpSeq}
	if total {
		for _, f := range sel {
			out.terms = append(out.terms, f.terms...)
			out.conds = append(out.conds, f.conds...)
		}
		return out, nil
	}
	out.op = OpAnd
	for _, f := range sel {
		out.terms = append(out.terms, f.terms...)
		out.conds = append(out.conds, f.conds...)
		out.conds = append(out.conds, seqConds(f)...)
	}
	// Order constraints between adjacent positive boundary events. Negated
	// events are excluded: their temporal placement is handled by the
	// negation machinery, not by join predicates.
	for i := 0; i+1 < len(sel); i++ {
		for _, l := range positives(sel[i].lasts()) {
			for _, r := range positives(sel[i+1].firsts()) {
				out.conds = append(out.conds, TSOrder(l.Event.Alias, r.Event.Alias))
			}
		}
	}
	return out, nil
}

// seqConds renders the internal order of a sequence fragment as timestamp
// conditions between adjacent positive events.
func seqConds(f fragment) []Condition {
	if f.op != OpSeq || len(f.terms) < 2 {
		return nil
	}
	pos := positives(f.terms)
	conds := make([]Condition, 0, len(pos)-1)
	for i := 0; i+1 < len(pos); i++ {
		conds = append(conds, TSOrder(pos[i].Event.Alias, pos[i+1].Event.Alias))
	}
	return conds
}

func positives(terms []Term) []Term {
	out := make([]Term, 0, len(terms))
	for _, t := range terms {
		if t.Event != nil && !t.Event.Negated {
			out = append(out, t)
		}
	}
	return out
}
