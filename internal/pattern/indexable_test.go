package pattern

import "testing"

func TestIndexableUnary(t *testing.T) {
	cases := []struct {
		name string
		c    Condition
		attr string
		op   CmpOp
		val  float64
		ok   bool
	}{
		{"attr op const", Cmp(Ref("a", "x"), Ge, Const(5)), "x", Ge, 5, true},
		{"const op attr flips", Cmp(Const(5), Le, Ref("a", "x")), "x", Ge, 5, true},
		{"equality", Cmp(Ref("a", "x"), Eq, Const(1)), "x", Eq, 1, true},
		{"flipped equality", Cmp(Const(1), Eq, Ref("a", "x")), "x", Eq, 1, true},
		{"ne not indexable", Cmp(Ref("a", "x"), Ne, Const(1)), "", 0, 0, false},
		{"attr vs attr same alias", Cmp(Ref("a", "x"), Lt, Ref("a", "y")), "", 0, 0, false},
		{"pairwise", Cmp(Ref("a", "x"), Lt, Ref("b", "x")), "", 0, 0, false},
		{"const vs const", Cmp(Const(1), Lt, Const(2)), "", 0, 0, false},
	}
	for _, tc := range cases {
		attr, op, val, ok := tc.c.IndexableUnary()
		if ok != tc.ok {
			t.Errorf("%s: ok = %v, want %v", tc.name, ok, tc.ok)
			continue
		}
		if ok && (attr != tc.attr || op != tc.op || val != tc.val) {
			t.Errorf("%s: = (%q, %v, %v), want (%q, %v, %v)",
				tc.name, attr, op, val, tc.attr, tc.op, tc.val)
		}
	}
}
