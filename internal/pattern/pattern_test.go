package pattern

import (
	"strings"
	"testing"

	"repro/internal/event"
)

func reg() *event.Registry {
	return event.NewRegistry(
		event.NewSchema("A", "x", "y"),
		event.NewSchema("B", "x", "y"),
		event.NewSchema("C", "x", "y"),
		event.NewSchema("D", "x", "y"),
	)
}

func TestSimpleAndPureClassification(t *testing.T) {
	cases := []struct {
		name   string
		p      *Pattern
		simple bool
		pure   bool
	}{
		{"pure seq", Seq(10, E("A", "a"), E("B", "b")), true, true},
		{"negation", Seq(10, E("A", "a"), Not("B", "b"), E("C", "c")), true, false},
		{"kleene", And(10, E("A", "a"), KL("B", "b")), true, false},
		{"nested", And(10, E("A", "a"), Sub(Or(10, E("B", "b"), E("C", "c")))), false, false},
		{"pure or", Or(10, E("A", "a"), E("B", "b")), true, true},
	}
	for _, c := range cases {
		if got := c.p.IsSimple(); got != c.simple {
			t.Errorf("%s: IsSimple = %v, want %v", c.name, got, c.simple)
		}
		if got := c.p.IsPure(); got != c.pure {
			t.Errorf("%s: IsPure = %v, want %v", c.name, got, c.pure)
		}
	}
}

func TestPositivesNegativesAliasIndex(t *testing.T) {
	p := Seq(10, E("A", "a"), Not("B", "b"), E("C", "c"))
	if got := p.Positives(); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("Positives = %v", got)
	}
	if got := p.Negatives(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("Negatives = %v", got)
	}
	idx := p.AliasIndex()
	if idx["a"] != 0 || idx["b"] != 1 || idx["c"] != 2 {
		t.Fatalf("AliasIndex = %v", idx)
	}
}

func TestSizeRecurses(t *testing.T) {
	p := And(10, E("A", "a"), Sub(Or(10, E("B", "b"), Sub(Seq(10, E("C", "c"), E("D", "d"))))))
	if got := p.Size(); got != 4 {
		t.Fatalf("Size = %d, want 4", got)
	}
}

func TestValidateAccepts(t *testing.T) {
	p := Seq(event.Minute,
		E("A", "a"), E("B", "b"), E("C", "c"),
	).Where(
		AttrCmp("a", "x", Lt, "b", "x"),
		Cmp(Ref("c", "y"), Gt, Const(5)),
	)
	if err := p.Validate(reg()); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		p    *Pattern
		want string
	}{
		{"zero window", Seq(0, E("A", "a")), "window"},
		{"no operands", &Pattern{Op: OpAnd, Window: 10}, "no operands"},
		{"dup alias", Seq(10, E("A", "a"), E("B", "a")), "duplicate alias"},
		{"empty alias", Seq(10, Term{Event: &EventSpec{Type: "A"}}), "no alias"},
		{"unknown type", Seq(10, E("Z", "z")), "unknown event type"},
		{"not under or", Or(10, E("A", "a"), Not("B", "b")), "NOT"},
		{"all negated", Seq(10, Not("A", "a")), "no positive"},
		{"bad alias in cond", Seq(10, E("A", "a")).Where(AttrCmp("a", "x", Lt, "q", "x")), "undeclared alias"},
		{"bad attr in cond", Seq(10, E("A", "a")).Where(Cmp(Ref("a", "zzz"), Lt, Const(1))), "no attribute"},
		{"const-only cond", Seq(10, E("A", "a")).Where(Cmp(Const(1), Lt, Const(2))), "references no events"},
		{"not and kl", Seq(10, E("A", "a"), Term{Event: &EventSpec{Type: "B", Alias: "b", Negated: true, Kleene: true}}), "both NOT and KL"},
	}
	for _, c := range cases {
		err := c.p.Validate(reg())
		if err == nil {
			t.Errorf("%s: expected error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestPatternString(t *testing.T) {
	p := Seq(5000, E("A", "a"), Not("B", "b"), KL("C", "c")).Where(AttrCmp("a", "x", Eq, "c", "x"))
	got := p.String()
	for _, want := range []string{"SEQ(", "A a", "NOT(B b)", "KL(C c)", "a.x = c.x", "WITHIN 5000ms"} {
		if !strings.Contains(got, want) {
			t.Errorf("String() = %q missing %q", got, want)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := And(10, E("A", "a"), Sub(Seq(10, E("B", "b"), E("C", "c")))).Where(TSOrder("a", "b"))
	cp := p.Clone()
	cp.Terms[0].Event.Alias = "zzz"
	cp.Terms[1].Sub.Terms[0].Event.Type = "ZZZ"
	cp.Conds[0].Op = Gt
	if p.Terms[0].Event.Alias != "a" || p.Terms[1].Sub.Terms[0].Event.Type != "B" || p.Conds[0].Op != Lt {
		t.Fatal("Clone shares state with original")
	}
}

func TestCmpOpApplyAndFlip(t *testing.T) {
	cases := []struct {
		op   CmpOp
		a, b float64
		want bool
	}{
		{Lt, 1, 2, true}, {Lt, 2, 2, false},
		{Le, 2, 2, true}, {Le, 3, 2, false},
		{Eq, 2, 2, true}, {Eq, 1, 2, false},
		{Ne, 1, 2, true}, {Ne, 2, 2, false},
		{Ge, 2, 2, true}, {Ge, 1, 2, false},
		{Gt, 3, 2, true}, {Gt, 2, 2, false},
	}
	for _, c := range cases {
		if got := c.op.Apply(c.a, c.b); got != c.want {
			t.Errorf("%v.Apply(%g,%g) = %v", c.op, c.a, c.b, got)
		}
		// a OP b must equal b Flip(OP) a for all operators.
		if got := c.op.Flip().Apply(c.b, c.a); got != c.want {
			t.Errorf("%v.Flip().Apply(%g,%g) = %v, want %v", c.op, c.b, c.a, got, c.want)
		}
	}
}

func TestConditionAliasesAndKinds(t *testing.T) {
	pair := AttrCmp("a", "x", Lt, "b", "y")
	if got := pair.Aliases(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("Aliases = %v", got)
	}
	if pair.IsUnary() {
		t.Fatal("pairwise condition reported unary")
	}
	unary := Cmp(Ref("a", "x"), Lt, Const(3))
	if got := unary.Aliases(); len(got) != 1 || got[0] != "a" {
		t.Fatalf("Aliases = %v", got)
	}
	if !unary.IsUnary() {
		t.Fatal("unary condition not reported unary")
	}
	selfCmp := AttrCmp("a", "x", Lt, "a", "y")
	if !selfCmp.IsUnary() {
		t.Fatal("self-comparison should be unary")
	}
	ts := TSOrder("a", "b")
	if !ts.IsTSOrder() {
		t.Fatal("TSOrder not recognised")
	}
	if pair.IsTSOrder() {
		t.Fatal("attribute comparison misreported as ts order")
	}
}

func TestConditionEval(t *testing.T) {
	sa := event.NewSchema("A", "x", "y")
	sb := event.NewSchema("B", "x", "y")
	a := event.New(sa, 10, 1, 2)
	b := event.New(sb, 20, 3, 4)

	if !AttrCmp("a", "x", Lt, "b", "x").EvalPair(a, b) {
		t.Fatal("1 < 3 should hold")
	}
	if AttrCmp("a", "y", Gt, "b", "y").EvalPair(a, b) {
		t.Fatal("2 > 4 should not hold")
	}
	// Reversed operand order in the condition: b.x > a.x with aliases (b, a).
	c := AttrCmp("b", "x", Gt, "a", "x")
	if !c.EvalPair(b, a) {
		t.Fatal("3 > 1 should hold with first alias bound to b")
	}
	if !TSOrder("a", "b").EvalPair(a, b) {
		t.Fatal("ts order should hold")
	}
	if TSOrder("a", "b").EvalPair(b, a) {
		t.Fatal("ts order should fail when reversed")
	}
	u := Cmp(Ref("a", "x"), Ge, Const(1))
	if !u.EvalUnary(a) {
		t.Fatal("1 >= 1 should hold")
	}
	// Missing attribute must evaluate to false, not panic.
	if Cmp(Ref("a", "zzz"), Lt, Const(1)).EvalUnary(a) {
		t.Fatal("missing attribute should fail")
	}
	if AttrCmp("a", "zzz", Lt, "b", "x").EvalPair(a, b) {
		t.Fatal("missing attribute should fail in pair")
	}
}

func TestConditionEvalConstSides(t *testing.T) {
	sa := event.NewSchema("A", "x")
	a := event.New(sa, 10, 5)
	if !Cmp(Const(3), Lt, Ref("a", "x")).EvalUnary(a) {
		t.Fatal("3 < 5 should hold")
	}
}
