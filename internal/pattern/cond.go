package pattern

import (
	"fmt"

	"repro/internal/event"
)

// CmpOp is a comparison operator used in WHERE predicates.
type CmpOp int

// Comparison operators.
const (
	Lt CmpOp = iota
	Le
	Eq
	Ne
	Ge
	Gt
)

// String returns the operator's surface syntax.
func (o CmpOp) String() string {
	switch o {
	case Lt:
		return "<"
	case Le:
		return "<="
	case Eq:
		return "="
	case Ne:
		return "!="
	case Ge:
		return ">="
	case Gt:
		return ">"
	}
	return fmt.Sprintf("CmpOp(%d)", int(o))
}

// Apply evaluates the comparison on two float64 values.
func (o CmpOp) Apply(a, b float64) bool {
	switch o {
	case Lt:
		return a < b
	case Le:
		return a <= b
	case Eq:
		return a == b
	case Ne:
		return a != b
	case Ge:
		return a >= b
	case Gt:
		return a > b
	}
	panic(fmt.Sprintf("pattern: invalid CmpOp %d", int(o)))
}

// Flip returns the operator with sides exchanged: a OP b  ⇔  b OP.Flip() a.
func (o CmpOp) Flip() CmpOp {
	switch o {
	case Lt:
		return Gt
	case Le:
		return Ge
	case Gt:
		return Lt
	case Ge:
		return Le
	}
	return o // Eq and Ne are symmetric.
}

// Operand is one side of a condition: either an attribute reference
// (alias.attr) or a numeric constant (Alias == "").
type Operand struct {
	Alias string
	Attr  string
	Const float64
}

// IsConst reports whether the operand is a numeric constant.
func (o Operand) IsConst() bool { return o.Alias == "" }

func (o Operand) String() string {
	if o.IsConst() {
		return fmt.Sprintf("%g", o.Const)
	}
	return o.Alias + "." + o.Attr
}

// value resolves the operand against the event bound to its alias.
func (o Operand) value(e *event.Event) (float64, bool) {
	if o.IsConst() {
		return o.Const, true
	}
	return e.Attr(o.Attr)
}

// Ref builds an attribute-reference operand.
func Ref(alias, attr string) Operand { return Operand{Alias: alias, Attr: attr} }

// Const builds a constant operand.
func Const(v float64) Operand { return Operand{Const: v} }

// Condition is a single comparison predicate of the WHERE clause. Following
// the paper, conditions are at most pairwise: they reference at most two
// distinct aliases.
type Condition struct {
	Left  Operand
	Op    CmpOp
	Right Operand
}

// Cmp builds a condition.
func Cmp(left Operand, op CmpOp, right Operand) Condition {
	return Condition{Left: left, Op: op, Right: right}
}

// AttrCmp builds the common "a.x OP b.y" condition.
func AttrCmp(aAlias, aAttr string, op CmpOp, bAlias, bAttr string) Condition {
	return Condition{Left: Ref(aAlias, aAttr), Op: op, Right: Ref(bAlias, bAttr)}
}

// TSOrder builds the temporal-order condition a.ts < b.ts used by the
// SEQ→AND rewrite of Theorem 3.
func TSOrder(aAlias, bAlias string) Condition {
	return Condition{Left: Ref(aAlias, "ts"), Op: Lt, Right: Ref(bAlias, "ts")}
}

func (c Condition) String() string {
	return fmt.Sprintf("%s %s %s", c.Left, c.Op, c.Right)
}

// Aliases returns the distinct aliases referenced by the condition, in
// left-to-right order (0, 1 or 2 entries).
func (c Condition) Aliases() []string {
	var out []string
	if !c.Left.IsConst() {
		out = append(out, c.Left.Alias)
	}
	if !c.Right.IsConst() && (len(out) == 0 || c.Right.Alias != out[0]) {
		out = append(out, c.Right.Alias)
	}
	return out
}

// IsUnary reports whether the condition constrains a single event (filter
// condition c_{i,i} in the paper's notation).
func (c Condition) IsUnary() bool { return len(c.Aliases()) == 1 }

// IsTSOrder reports whether the condition is a pure temporal-order
// constraint between two aliases (x.ts < y.ts or equivalent).
func (c Condition) IsTSOrder() bool {
	if c.Left.IsConst() || c.Right.IsConst() {
		return false
	}
	if c.Left.Attr != "ts" || c.Right.Attr != "ts" {
		return false
	}
	return c.Op == Lt || c.Op == Le || c.Op == Gt || c.Op == Ge
}

// EvalUnary evaluates a unary condition against the event bound to its
// single alias. It returns false if a referenced attribute is missing.
func (c Condition) EvalUnary(e *event.Event) bool {
	l, ok := c.Left.value(e)
	if !ok {
		return false
	}
	r, ok := c.Right.value(e)
	if !ok {
		return false
	}
	return c.Op.Apply(l, r)
}

// EvalPair evaluates a pairwise condition with `a` bound to the condition's
// first alias and `b` to its second. It returns false if an attribute is
// missing.
func (c Condition) EvalPair(a, b *event.Event) bool {
	bind := func(o Operand) *event.Event {
		if o.IsConst() {
			return nil
		}
		als := c.Aliases()
		if o.Alias == als[0] {
			return a
		}
		return b
	}
	var l, r float64
	var ok bool
	if c.Left.IsConst() {
		l = c.Left.Const
	} else if l, ok = c.Left.value(bind(c.Left)); !ok {
		return false
	}
	if c.Right.IsConst() {
		r = c.Right.Const
	} else if r, ok = c.Right.value(bind(c.Right)); !ok {
		return false
	}
	return c.Op.Apply(l, r)
}

func (c Condition) validate(aliases map[string]bool, reg *event.Registry, p *Pattern) error {
	refs := 0
	for _, o := range []Operand{c.Left, c.Right} {
		if o.IsConst() {
			continue
		}
		refs++
		if !aliases[o.Alias] {
			return fmt.Errorf("pattern: condition %q references undeclared alias %q", c, o.Alias)
		}
		if reg != nil && p != nil {
			switch o.Attr {
			case "ts", "serial", "pserial", "partition":
				continue // pseudo-attributes are always valid
			}
			spec := p.lookupSpec(o.Alias)
			if spec == nil {
				continue
			}
			if s, ok := reg.Lookup(spec.Type); ok {
				if _, ok := s.Index(o.Attr); !ok {
					return fmt.Errorf("pattern: type %q has no attribute %q (condition %q)",
						spec.Type, o.Attr, c)
				}
			}
		}
	}
	if refs == 0 {
		return fmt.Errorf("pattern: condition %q references no events", c)
	}
	return nil
}
