package pattern

import (
	"fmt"
	"sync/atomic"

	"repro/internal/event"
)

// CmpOp is a comparison operator used in WHERE predicates.
type CmpOp int

// Comparison operators.
const (
	Lt CmpOp = iota
	Le
	Eq
	Ne
	Ge
	Gt
)

// String returns the operator's surface syntax.
func (o CmpOp) String() string {
	switch o {
	case Lt:
		return "<"
	case Le:
		return "<="
	case Eq:
		return "="
	case Ne:
		return "!="
	case Ge:
		return ">="
	case Gt:
		return ">"
	}
	return fmt.Sprintf("CmpOp(%d)", int(o))
}

// Apply evaluates the comparison on two float64 values.
func (o CmpOp) Apply(a, b float64) bool {
	switch o {
	case Lt:
		return a < b
	case Le:
		return a <= b
	case Eq:
		return a == b
	case Ne:
		return a != b
	case Ge:
		return a >= b
	case Gt:
		return a > b
	}
	panic(fmt.Sprintf("pattern: invalid CmpOp %d", int(o)))
}

// Flip returns the operator with sides exchanged: a OP b  ⇔  b OP.Flip() a.
func (o CmpOp) Flip() CmpOp {
	switch o {
	case Lt:
		return Gt
	case Le:
		return Ge
	case Gt:
		return Lt
	case Ge:
		return Le
	}
	return o // Eq and Ne are symmetric.
}

// Operand is one side of a condition: either an attribute reference
// (alias.attr) or a numeric constant (Alias == "").
type Operand struct {
	Alias string
	Attr  string
	Const float64
}

// IsConst reports whether the operand is a numeric constant.
func (o Operand) IsConst() bool { return o.Alias == "" }

func (o Operand) String() string {
	if o.IsConst() {
		return fmt.Sprintf("%g", o.Const)
	}
	return o.Alias + "." + o.Attr
}

// value resolves the operand against the event bound to its alias.
func (o Operand) value(e *event.Event) (float64, bool) {
	if o.IsConst() {
		return o.Const, true
	}
	return e.Attr(o.Attr)
}

// Ref builds an attribute-reference operand.
func Ref(alias, attr string) Operand { return Operand{Alias: alias, Attr: attr} }

// Const builds a constant operand.
func Const(v float64) Operand { return Operand{Const: v} }

// Condition is a single comparison predicate of the WHERE clause. Following
// the paper, conditions are at most pairwise: they reference at most two
// distinct aliases.
type Condition struct {
	Left  Operand
	Op    CmpOp
	Right Operand
}

// Cmp builds a condition.
func Cmp(left Operand, op CmpOp, right Operand) Condition {
	return Condition{Left: left, Op: op, Right: right}
}

// AttrCmp builds the common "a.x OP b.y" condition.
func AttrCmp(aAlias, aAttr string, op CmpOp, bAlias, bAttr string) Condition {
	return Condition{Left: Ref(aAlias, aAttr), Op: op, Right: Ref(bAlias, bAttr)}
}

// TSOrder builds the temporal-order condition a.ts < b.ts used by the
// SEQ→AND rewrite of Theorem 3.
func TSOrder(aAlias, bAlias string) Condition {
	return Condition{Left: Ref(aAlias, "ts"), Op: Lt, Right: Ref(bAlias, "ts")}
}

func (c Condition) String() string {
	return fmt.Sprintf("%s %s %s", c.Left, c.Op, c.Right)
}

// Aliases returns the distinct aliases referenced by the condition, in
// left-to-right order (0, 1 or 2 entries).
func (c Condition) Aliases() []string {
	var out []string
	if !c.Left.IsConst() {
		out = append(out, c.Left.Alias)
	}
	if !c.Right.IsConst() && (len(out) == 0 || c.Right.Alias != out[0]) {
		out = append(out, c.Right.Alias)
	}
	return out
}

// IsUnary reports whether the condition constrains a single event (filter
// condition c_{i,i} in the paper's notation).
func (c Condition) IsUnary() bool { return len(c.Aliases()) == 1 }

// IsTSOrder reports whether the condition is a pure temporal-order
// constraint between two aliases (x.ts < y.ts or equivalent).
func (c Condition) IsTSOrder() bool {
	if c.Left.IsConst() || c.Right.IsConst() {
		return false
	}
	if c.Left.Attr != "ts" || c.Right.Attr != "ts" {
		return false
	}
	return c.Op == Lt || c.Op == Le || c.Op == Gt || c.Op == Ge
}

// IndexableUnary reports whether the condition is a constant unary
// constraint an ingress filter index can compile into its per-type tables,
// and if so returns the normalized `attr OP const` form: the constant side
// is folded to the right, flipping the operator when the constant was on
// the left (5 < a.x  ⇒  a.x > 5). Equality constraints hash into buckets;
// ordered comparisons become sorted bound lists. Ne (a scan is as cheap as
// the index) and attr-vs-attr conditions over one alias (a.x < a.y) are not
// indexable — they stay on the index's residual scan path.
func (c Condition) IndexableUnary() (attr string, op CmpOp, con float64, ok bool) {
	if !c.IsUnary() {
		return "", 0, 0, false
	}
	switch {
	case c.Right.IsConst() && !c.Left.IsConst():
		attr, op, con = c.Left.Attr, c.Op, c.Right.Const
	case c.Left.IsConst() && !c.Right.IsConst():
		attr, op, con = c.Right.Attr, c.Op.Flip(), c.Left.Const
	default:
		return "", 0, 0, false
	}
	if op == Ne {
		return "", 0, 0, false
	}
	return attr, op, con, true
}

// EqualityJoin reports whether the condition is an equi-join on one shared
// attribute between two distinct aliases (`a.k = b.k`), and if so returns
// that attribute. This is the form the multi-query optimizer can hash-
// partition shared join state on: every complete match binds the same k
// value on both sides, so routing events by hash(k) keeps each partition's
// matches entirely local. Cross-attribute equalities (a.x = b.y) are not
// partitionable by a single ingress hash and are rejected.
func (c Condition) EqualityJoin() (attr string, ok bool) {
	if c.Op != Eq || c.Left.IsConst() || c.Right.IsConst() {
		return "", false
	}
	if c.Left.Alias == c.Right.Alias || c.Left.Attr != c.Right.Attr {
		return "", false
	}
	return c.Left.Attr, true
}

// EvalUnary evaluates a unary condition against the event bound to its
// single alias. It returns false if a referenced attribute is missing.
func (c Condition) EvalUnary(e *event.Event) bool {
	l, ok := c.Left.value(e)
	if !ok {
		return false
	}
	r, ok := c.Right.value(e)
	if !ok {
		return false
	}
	return c.Op.Apply(l, r)
}

// EvalPair evaluates a pairwise condition with `a` bound to the condition's
// first alias and `b` to its second. It returns false if an attribute is
// missing.
func (c Condition) EvalPair(a, b *event.Event) bool {
	// The first alias in Left→Right operand order — inlined rather than
	// going through Aliases(), which would allocate its slice on every
	// evaluation of the join engines' innermost loop.
	var first string
	if !c.Left.IsConst() {
		first = c.Left.Alias
	} else if !c.Right.IsConst() {
		first = c.Right.Alias
	}
	bind := func(o Operand) *event.Event {
		if o.Alias == first {
			return a
		}
		return b
	}
	var l, r float64
	var ok bool
	if c.Left.IsConst() {
		l = c.Left.Const
	} else if l, ok = c.Left.value(bind(c.Left)); !ok {
		return false
	}
	if c.Right.IsConst() {
		r = c.Right.Const
	} else if r, ok = c.Right.value(bind(c.Right)); !ok {
		return false
	}
	return c.Op.Apply(l, r)
}

// pairResolved caches the attribute positions of a PairFn closure for one
// (left schema, right schema) combination, so steady-state evaluation reads
// the attribute slices directly instead of going through the schema's
// string-keyed index map on every candidate pair.
type pairResolved struct {
	ls, rs *event.Schema
	li, ri int // attribute indices; -1 marks a missing attribute
}

// pseudoAccessor returns the direct reader for the event-header
// pseudo-attributes Event.Attr resolves ahead of the schema (ts, serial,
// pserial, partition), or nil for an ordinary schema attribute. The choice
// is static per attribute name, so the specialized evaluators decide it
// once at build time.
func pseudoAccessor(attr string) func(*event.Event) float64 {
	switch attr {
	case "ts":
		return func(e *event.Event) float64 { return float64(e.TS) }
	case "serial":
		return func(e *event.Event) float64 { return float64(e.Serial) }
	case "pserial":
		return func(e *event.Event) float64 { return float64(e.PSerial) }
	case "partition":
		return func(e *event.Event) float64 { return float64(e.Partition) }
	}
	return nil
}

// PairFn returns a specialized evaluator for a pairwise condition,
// semantically identical to EvalPair: `a` is bound to the condition's first
// alias, `b` to its second, and a missing attribute evaluates to false.
// The alias binding of each operand is decided once here instead of per
// call, and attribute positions are resolved once per schema pointer and
// cached. The cache is an atomic pointer swap, so one closure may be
// evaluated from many goroutines; each engine typically sees a single
// schema per side and hits the cache on every call.
func (c Condition) PairFn() func(a, b *event.Event) bool {
	var first string
	if !c.Left.IsConst() {
		first = c.Left.Alias
	} else if !c.Right.IsConst() {
		first = c.Right.Alias
	}
	leftConst, rightConst := c.Left.IsConst(), c.Right.IsConst()
	leftFromA := !leftConst && c.Left.Alias == first
	rightFromA := !rightConst && c.Right.Alias == first
	left, right, op := c.Left, c.Right, c.Op
	var leftPseudo, rightPseudo func(*event.Event) float64
	if !leftConst {
		leftPseudo = pseudoAccessor(left.Attr)
	}
	if !rightConst {
		rightPseudo = pseudoAccessor(right.Attr)
	}
	var cache atomic.Pointer[pairResolved]
	return func(a, b *event.Event) bool {
		var le, re *event.Event
		if !leftConst {
			if leftFromA {
				le = a
			} else {
				le = b
			}
		}
		if !rightConst {
			if rightFromA {
				re = a
			} else {
				re = b
			}
		}
		res := cache.Load()
		if res == nil ||
			(le != nil && res.ls != le.Schema) ||
			(re != nil && res.rs != re.Schema) {
			nr := &pairResolved{li: -1, ri: -1}
			if le != nil {
				nr.ls = le.Schema
				if le.Schema != nil {
					if i, ok := le.Schema.Index(left.Attr); ok {
						nr.li = i
					}
				}
			}
			if re != nil {
				nr.rs = re.Schema
				if re.Schema != nil {
					if i, ok := re.Schema.Index(right.Attr); ok {
						nr.ri = i
					}
				}
			}
			cache.Store(nr)
			res = nr
		}
		l, r := left.Const, right.Const
		switch {
		case leftConst:
		case leftPseudo != nil:
			l = leftPseudo(le)
		case res.li < 0:
			return false
		default:
			l = le.Attrs[res.li]
		}
		switch {
		case rightConst:
		case rightPseudo != nil:
			r = rightPseudo(re)
		case res.ri < 0:
			return false
		default:
			r = re.Attrs[res.ri]
		}
		return op.Apply(l, r)
	}
}

// UnaryFn returns a specialized evaluator for a single-alias condition,
// semantically identical to EvalUnary, with the same per-schema attribute
// resolution cache as PairFn.
func (c Condition) UnaryFn() func(e *event.Event) bool {
	leftConst, rightConst := c.Left.IsConst(), c.Right.IsConst()
	left, right, op := c.Left, c.Right, c.Op
	var leftPseudo, rightPseudo func(*event.Event) float64
	if !leftConst {
		leftPseudo = pseudoAccessor(left.Attr)
	}
	if !rightConst {
		rightPseudo = pseudoAccessor(right.Attr)
	}
	var cache atomic.Pointer[pairResolved]
	return func(e *event.Event) bool {
		res := cache.Load()
		if res == nil || res.ls != e.Schema {
			nr := &pairResolved{ls: e.Schema, li: -1, ri: -1}
			if e.Schema != nil {
				if !leftConst {
					if i, ok := e.Schema.Index(left.Attr); ok {
						nr.li = i
					}
				}
				if !rightConst {
					if i, ok := e.Schema.Index(right.Attr); ok {
						nr.ri = i
					}
				}
			}
			cache.Store(nr)
			res = nr
		}
		l, r := left.Const, right.Const
		switch {
		case leftConst:
		case leftPseudo != nil:
			l = leftPseudo(e)
		case res.li < 0:
			return false
		default:
			l = e.Attrs[res.li]
		}
		switch {
		case rightConst:
		case rightPseudo != nil:
			r = rightPseudo(e)
		case res.ri < 0:
			return false
		default:
			r = e.Attrs[res.ri]
		}
		return op.Apply(l, r)
	}
}

func (c Condition) validate(aliases map[string]bool, reg *event.Registry, p *Pattern) error {
	refs := 0
	for _, o := range []Operand{c.Left, c.Right} {
		if o.IsConst() {
			continue
		}
		refs++
		if !aliases[o.Alias] {
			return fmt.Errorf("pattern: condition %q references undeclared alias %q", c, o.Alias)
		}
		if reg != nil && p != nil {
			switch o.Attr {
			case "ts", "serial", "pserial", "partition":
				continue // pseudo-attributes are always valid
			}
			spec := p.lookupSpec(o.Alias)
			if spec == nil {
				continue
			}
			if s, ok := reg.Lookup(spec.Type); ok {
				if _, ok := s.Index(o.Attr); !ok {
					return fmt.Errorf("pattern: type %q has no attribute %q (condition %q)",
						spec.Type, o.Attr, c)
				}
			}
		}
	}
	if refs == 0 {
		return fmt.Errorf("pattern: condition %q references no events", c)
	}
	return nil
}
