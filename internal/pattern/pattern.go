// Package pattern defines the abstract syntax of CEP patterns: the n-ary
// operators SEQ, AND and OR, the unary operators NOT and KL (Kleene closure),
// inter-event predicates, and the time window (Section 2.1 of Kolchinsky &
// Schuster, VLDB 2018).
//
// A pattern over primitive events only, with a single n-ary operator, is a
// "simple" pattern; patterns combining several n-ary operators are "nested"
// and are normalised to a disjunction of simple patterns (DNF) before plan
// generation, per Section 5.4 of the paper.
package pattern

import (
	"fmt"
	"strings"

	"repro/internal/event"
)

// Operator is an n-ary pattern operator.
type Operator int

// The three n-ary operators of the paper.
const (
	OpSeq Operator = iota // temporal sequence
	OpAnd                 // conjunction
	OpOr                  // disjunction
)

// String returns the operator's pattern-language keyword.
func (o Operator) String() string {
	switch o {
	case OpSeq:
		return "SEQ"
	case OpAnd:
		return "AND"
	case OpOr:
		return "OR"
	}
	return fmt.Sprintf("Operator(%d)", int(o))
}

// EventSpec declares one primitive event participating in a pattern: its
// type, the alias used to reference it in predicates, and the unary operator
// (NOT or KL) applied to it, if any.
type EventSpec struct {
	Type    string
	Alias   string
	Negated bool // NOT(e): the event must be absent
	Kleene  bool // KL(e): one or more instances participate
}

func (e EventSpec) String() string {
	s := e.Type + " " + e.Alias
	switch {
	case e.Negated:
		return "NOT(" + s + ")"
	case e.Kleene:
		return "KL(" + s + ")"
	}
	return s
}

// Term is one operand of an n-ary operator: either a primitive event or a
// nested subpattern. Exactly one field is set.
type Term struct {
	Event *EventSpec
	Sub   *Pattern
}

func (t Term) String() string {
	if t.Event != nil {
		return t.Event.String()
	}
	return t.Sub.string(false)
}

// Pattern is a (possibly nested) CEP pattern. Windows are inherited by
// subpatterns; only the root window is consulted.
type Pattern struct {
	Op     Operator
	Terms  []Term
	Conds  []Condition
	Window event.Time
}

// E builds a positive primitive-event term.
func E(typ, alias string) Term {
	return Term{Event: &EventSpec{Type: typ, Alias: alias}}
}

// Not builds a negated primitive-event term (the NOT unary operator).
func Not(typ, alias string) Term {
	return Term{Event: &EventSpec{Type: typ, Alias: alias, Negated: true}}
}

// KL builds a Kleene-closure primitive-event term (the KL unary operator).
func KL(typ, alias string) Term {
	return Term{Event: &EventSpec{Type: typ, Alias: alias, Kleene: true}}
}

// Sub wraps a nested subpattern as a term.
func Sub(p *Pattern) Term { return Term{Sub: p} }

// Seq builds a sequence pattern over the given terms.
func Seq(window event.Time, terms ...Term) *Pattern {
	return &Pattern{Op: OpSeq, Terms: terms, Window: window}
}

// And builds a conjunctive pattern over the given terms.
func And(window event.Time, terms ...Term) *Pattern {
	return &Pattern{Op: OpAnd, Terms: terms, Window: window}
}

// Or builds a disjunctive pattern over the given terms.
func Or(window event.Time, terms ...Term) *Pattern {
	return &Pattern{Op: OpOr, Terms: terms, Window: window}
}

// Where appends predicates to the pattern and returns it, enabling fluent
// construction: pattern.Seq(w, ...).Where(pattern.AttrLT("a","x","b","x")).
func (p *Pattern) Where(conds ...Condition) *Pattern {
	p.Conds = append(p.Conds, conds...)
	return p
}

// IsSimple reports whether the pattern contains a single n-ary operator over
// primitive events only (with at most one unary operator per event, which the
// EventSpec representation enforces by construction).
func (p *Pattern) IsSimple() bool {
	if p.Op == OpOr {
		// A disjunction of primitive events is a simple disjunctive pattern.
		for _, t := range p.Terms {
			if t.Sub != nil {
				return false
			}
		}
		return true
	}
	for _, t := range p.Terms {
		if t.Sub != nil {
			return false
		}
	}
	return true
}

// IsPure reports whether the pattern is simple and contains no unary
// operators (Section 2.1: "a simple pattern containing no unary operators
// will be called a pure pattern").
func (p *Pattern) IsPure() bool {
	if !p.IsSimple() {
		return false
	}
	for _, t := range p.Terms {
		if t.Event.Negated || t.Event.Kleene {
			return false
		}
	}
	return true
}

// Events returns the primitive event specs of a simple pattern in
// declaration order. It panics on nested patterns.
func (p *Pattern) Events() []EventSpec {
	specs := make([]EventSpec, len(p.Terms))
	for i, t := range p.Terms {
		if t.Event == nil {
			panic("pattern: Events called on nested pattern")
		}
		specs[i] = *t.Event
	}
	return specs
}

// Positives returns the indices (into Terms) of the non-negated events of a
// simple pattern, in declaration order.
func (p *Pattern) Positives() []int {
	var out []int
	for i, t := range p.Terms {
		if t.Event != nil && !t.Event.Negated {
			out = append(out, i)
		}
	}
	return out
}

// Negatives returns the indices of the negated events of a simple pattern.
func (p *Pattern) Negatives() []int {
	var out []int
	for i, t := range p.Terms {
		if t.Event != nil && t.Event.Negated {
			out = append(out, i)
		}
	}
	return out
}

// AliasIndex maps each alias of a simple pattern to its term index.
func (p *Pattern) AliasIndex() map[string]int {
	m := make(map[string]int, len(p.Terms))
	for i, t := range p.Terms {
		if t.Event != nil {
			m[t.Event.Alias] = i
		}
	}
	return m
}

// Size returns the number of primitive events in the pattern, recursing into
// subpatterns.
func (p *Pattern) Size() int {
	n := 0
	for _, t := range p.Terms {
		if t.Event != nil {
			n++
		} else {
			n += t.Sub.Size()
		}
	}
	return n
}

// String renders the pattern in the paper's SASE-style syntax.
func (p *Pattern) String() string { return p.string(true) }

func (p *Pattern) string(root bool) string {
	var b strings.Builder
	b.WriteString(p.Op.String())
	b.WriteString("(")
	for i, t := range p.Terms {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(t.String())
	}
	b.WriteString(")")
	if root {
		if len(p.Conds) > 0 {
			parts := make([]string, len(p.Conds))
			for i, c := range p.Conds {
				parts[i] = c.String()
			}
			b.WriteString(" WHERE " + strings.Join(parts, " AND "))
		}
		fmt.Fprintf(&b, " WITHIN %dms", p.Window)
	}
	return b.String()
}

// Validate checks structural well-formedness: unique aliases, conditions
// referencing declared aliases, positive events present, a positive window,
// and unary-operator placement. If reg is non-nil, event types and attribute
// names are checked against it.
func (p *Pattern) Validate(reg *event.Registry) error {
	if p.Window <= 0 {
		return fmt.Errorf("pattern: window must be positive, got %d", p.Window)
	}
	seen := make(map[string]bool)
	return p.validate(reg, seen, true)
}

func (p *Pattern) validate(reg *event.Registry, aliases map[string]bool, root bool) error {
	if len(p.Terms) == 0 {
		return fmt.Errorf("pattern: %s operator with no operands", p.Op)
	}
	positives := 0
	for _, t := range p.Terms {
		switch {
		case t.Event != nil && t.Sub != nil:
			return fmt.Errorf("pattern: term with both event and subpattern")
		case t.Event != nil:
			ev := t.Event
			if ev.Alias == "" {
				return fmt.Errorf("pattern: event of type %q has no alias", ev.Type)
			}
			if aliases[ev.Alias] {
				return fmt.Errorf("pattern: duplicate alias %q", ev.Alias)
			}
			aliases[ev.Alias] = true
			if ev.Negated && ev.Kleene {
				return fmt.Errorf("pattern: alias %q has both NOT and KL", ev.Alias)
			}
			if ev.Negated && p.Op == OpOr {
				return fmt.Errorf("pattern: NOT(%s) under OR is not supported", ev.Alias)
			}
			if !ev.Negated {
				positives++
			}
			if reg != nil {
				if _, ok := reg.Lookup(ev.Type); !ok {
					return fmt.Errorf("pattern: unknown event type %q", ev.Type)
				}
			}
		case t.Sub != nil:
			if err := t.Sub.validate(reg, aliases, false); err != nil {
				return err
			}
			positives++
		default:
			return fmt.Errorf("pattern: empty term")
		}
	}
	if positives == 0 {
		return fmt.Errorf("pattern: %s has no positive operands", p.Op)
	}
	if root {
		for _, c := range p.Conds {
			if err := c.validate(aliases, reg, p); err != nil {
				return err
			}
		}
	} else if len(p.Conds) > 0 {
		return fmt.Errorf("pattern: conditions must be declared on the root pattern")
	}
	return nil
}

// lookupSpec finds the EventSpec for an alias anywhere in the pattern.
func (p *Pattern) lookupSpec(alias string) *EventSpec {
	for _, t := range p.Terms {
		if t.Event != nil && t.Event.Alias == alias {
			return t.Event
		}
		if t.Sub != nil {
			if s := t.Sub.lookupSpec(alias); s != nil {
				return s
			}
		}
	}
	return nil
}

// Clone returns a deep copy of the pattern.
func (p *Pattern) Clone() *Pattern {
	cp := &Pattern{Op: p.Op, Window: p.Window}
	cp.Terms = make([]Term, len(p.Terms))
	for i, t := range p.Terms {
		if t.Event != nil {
			ev := *t.Event
			cp.Terms[i] = Term{Event: &ev}
		} else {
			cp.Terms[i] = Term{Sub: t.Sub.Clone()}
		}
	}
	cp.Conds = append([]Condition(nil), p.Conds...)
	return cp
}
