package tree

import (
	"math/rand"
	"testing"

	"repro/internal/event"
	"repro/internal/pattern"
	"repro/internal/plan"
	"repro/internal/predicate"
)

// randEvents draws n events over the A–D schemas with small random
// timestamp gaps and x in 0..9, serial-stamped. Kept local: enginetest
// cannot be imported from this package's tests without an import cycle
// through repro.
func randEvents(seed int64, n int) []*event.Event {
	rng := rand.New(rand.NewSource(seed))
	schemas := []*event.Schema{schemaA, schemaB, schemaC, schemaD}
	evs := make([]*event.Event, n)
	ts := event.Time(0)
	for i := range evs {
		ts += event.Time(1 + rng.Int63n(3))
		evs[i] = event.New(schemas[rng.Intn(len(schemas))], ts, float64(rng.Intn(10)))
	}
	return stream(evs)
}

// drainKeys feeds the whole stream per event and returns the match keys in
// emission order, leaving the engine flushed.
func drainKeys(e *Engine, evs []*event.Event) []string {
	var keys []string
	for _, ev := range evs {
		for _, m := range e.Process(ev) {
			keys = append(keys, m.Key())
		}
	}
	for _, m := range e.Flush() {
		keys = append(keys, m.Key())
	}
	return keys
}

// assertNoLeak checks the exact-accounting invariant: after Flush and
// Close every instance handed out by the freelist came back.
func assertNoLeak(t *testing.T, e *Engine, label string) {
	t.Helper()
	e.Close()
	ps := e.PoolStats()
	if ps.Gets == 0 {
		t.Fatalf("%s: pool never used (Gets = 0)", label)
	}
	if live := ps.Live(); live != 0 {
		t.Fatalf("%s: %d pooled instances leaked (stats %+v)", label, live, ps)
	}
}

// TestPoolNoLeak runs pattern shapes that exercise every instance
// life-path — buffered joins, negation vetoes, trailing-negation pendings,
// Kleene leaf groups, window expiry — under both consumption strategies,
// and asserts zero live pooled instances after Flush+Close.
func TestPoolNoLeak(t *testing.T) {
	shapes := []struct {
		name string
		p    *pattern.Pattern
		root *plan.TreeNode
	}{
		{
			"seq",
			pattern.Seq(8, pattern.E("A", "a"), pattern.E("B", "b"), pattern.E("C", "c")),
			plan.Join(plan.Join(plan.LeafNode(0), plan.LeafNode(1)), plan.LeafNode(2)),
		},
		{
			"inner-negation",
			pattern.Seq(8, pattern.E("A", "a"), pattern.Not("B", "nb"), pattern.E("C", "c"), pattern.E("D", "d")),
			plan.Join(plan.Join(plan.LeafNode(0), plan.LeafNode(2)), plan.LeafNode(3)),
		},
		{
			"trailing-negation",
			pattern.Seq(6, pattern.E("A", "a"), pattern.E("B", "b"), pattern.Not("C", "nc")),
			plan.Join(plan.LeafNode(0), plan.LeafNode(1)),
		},
		{
			"kleene",
			pattern.And(8, pattern.E("A", "a"), pattern.KL("B", "b")),
			plan.Join(plan.LeafNode(0), plan.LeafNode(1)),
		},
		{
			"predicated",
			pattern.Seq(10, pattern.E("A", "a"), pattern.E("B", "b")).
				Where(pattern.AttrCmp("a", "x", pattern.Lt, "b", "x")),
			plan.Join(plan.LeafNode(0), plan.LeafNode(1)),
		},
	}
	strategies := []predicate.Strategy{predicate.SkipTillAnyMatch, predicate.SkipTillNextMatch}
	for _, sh := range shapes {
		for _, strat := range strategies {
			sh, strat := sh, strat
			t.Run(sh.name+"/"+strat.String(), func(t *testing.T) {
				c := compile(t, sh.p, predicate.SkipTillAnyMatch)
				e, err := New(c, sh.root, Config{Strategy: strat, MaxKleeneBase: 8})
				if err != nil {
					t.Fatal(err)
				}
				drainKeys(e, randEvents(42, 3000))
				assertNoLeak(t, e, sh.name)
			})
		}
	}
}

// TestPoolCloseWithoutFlush covers the abandoning path: Close on a live
// engine must reclaim buffered instances and pendings it never emitted.
func TestPoolCloseWithoutFlush(t *testing.T) {
	p := pattern.Seq(6, pattern.E("A", "a"), pattern.E("B", "b"), pattern.Not("C", "nc"))
	c := compile(t, p, predicate.SkipTillAnyMatch)
	e, err := New(c, plan.Join(plan.LeafNode(0), plan.LeafNode(1)), Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range randEvents(7, 1000) {
		e.Process(ev)
	}
	assertNoLeak(t, e, "close-without-flush")
	e.Close() // idempotent: a second Close must not double-recycle
	if live := e.PoolStats().Live(); live != 0 {
		t.Fatalf("double Close changed accounting: Live = %d", live)
	}
}

// TestProcessBatchMatchesPerEvent pins the batched entry point to the
// per-event semantics: identical match key sequences over an identical
// stream, across shapes with buffering, negation and Kleene state.
func TestProcessBatchMatchesPerEvent(t *testing.T) {
	p := pattern.Seq(8, pattern.E("A", "a"), pattern.Not("B", "nb"), pattern.E("C", "c"), pattern.E("D", "d")).
		Where(pattern.AttrCmp("a", "x", pattern.Le, "d", "x"))
	c := compile(t, p, predicate.SkipTillAnyMatch)
	root := plan.Join(plan.Join(plan.LeafNode(0), plan.LeafNode(2)), plan.LeafNode(3))

	evs := randEvents(99, 2000)
	ref, err := New(c, root, Config{})
	if err != nil {
		t.Fatal(err)
	}
	want := drainKeys(ref, evs)

	for _, batch := range []int{1, 16, 256} {
		e, err := New(c, root, Config{})
		if err != nil {
			t.Fatal(err)
		}
		var got []string
		for i := 0; i < len(evs); i += batch {
			end := i + batch
			if end > len(evs) {
				end = len(evs)
			}
			for _, m := range e.ProcessBatch(evs[i:end]) {
				got = append(got, m.Key())
			}
		}
		for _, m := range e.Flush() {
			got = append(got, m.Key())
		}
		if len(got) != len(want) {
			t.Fatalf("batch=%d: %d matches, want %d", batch, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("batch=%d: match %d = %s, want %s", batch, i, got[i], want[i])
			}
		}
		assertNoLeak(t, e, "batched")
	}
}
