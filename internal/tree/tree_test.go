package tree

import (
	"testing"

	"repro/internal/event"
	"repro/internal/match"
	"repro/internal/pattern"
	"repro/internal/plan"
	"repro/internal/predicate"
)

var (
	schemaA = event.NewSchema("A", "x")
	schemaB = event.NewSchema("B", "x")
	schemaC = event.NewSchema("C", "x")
	schemaD = event.NewSchema("D", "x")
)

func compile(t *testing.T, p *pattern.Pattern, s predicate.Strategy) *predicate.Compiled {
	t.Helper()
	c, err := predicate.Compile(p, s)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func feed(t *testing.T, e *Engine, events []*event.Event) []*match.Match {
	t.Helper()
	var out []*match.Match
	for _, ev := range events {
		out = append(out, append([]*match.Match(nil), e.Process(ev)...)...)
	}
	out = append(out, append([]*match.Match(nil), e.Flush()...)...)
	return out
}

func stream(events []*event.Event) []*event.Event {
	return event.Drain(event.NewSliceStream(events))
}

func TestNewValidatesPlan(t *testing.T) {
	p := pattern.Seq(10, pattern.E("A", "a"), pattern.Not("B", "b"), pattern.E("C", "c"))
	c := compile(t, p, predicate.SkipTillAnyMatch)
	if _, err := New(c, nil, Config{}); err == nil {
		t.Fatal("nil plan accepted")
	}
	if _, err := New(c, plan.Join(plan.LeafNode(0), plan.LeafNode(1)), Config{}); err == nil {
		t.Fatal("plan over negated position accepted")
	}
	if _, err := New(c, plan.LeafNode(0), Config{}); err == nil {
		t.Fatal("partial plan accepted")
	}
	if _, err := New(c, plan.Join(plan.LeafNode(0), plan.LeafNode(2)), Config{}); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
}

func TestBasicSequenceDetection(t *testing.T) {
	p := pattern.Seq(10, pattern.E("A", "a"), pattern.E("B", "b"), pattern.E("C", "c"))
	c := compile(t, p, predicate.SkipTillAnyMatch)
	// Bushy plan joining (a b) with c.
	root := plan.Join(plan.Join(plan.LeafNode(0), plan.LeafNode(1)), plan.LeafNode(2))
	e, err := New(c, root, Config{})
	if err != nil {
		t.Fatal(err)
	}
	got := feed(t, e, stream([]*event.Event{
		event.New(schemaA, 1, 0),
		event.New(schemaB, 2, 0),
		event.New(schemaC, 3, 0),
		event.New(schemaC, 4, 0),
	}))
	if len(got) != 2 {
		t.Fatalf("got %d matches, want 2", len(got))
	}
}

func TestReorderedLeavesStillSequence(t *testing.T) {
	// The Section 2.3 plan: (a c) joined with b — only expressible with
	// leaf reordering.
	p := pattern.Seq(10, pattern.E("A", "a"), pattern.E("B", "b"), pattern.E("C", "c")).
		Where(pattern.AttrCmp("a", "x", pattern.Eq, "c", "x"))
	c := compile(t, p, predicate.SkipTillAnyMatch)
	root := plan.Join(plan.Join(plan.LeafNode(0), plan.LeafNode(2)), plan.LeafNode(1))
	e, err := New(c, root, Config{})
	if err != nil {
		t.Fatal(err)
	}
	got := feed(t, e, stream([]*event.Event{
		event.New(schemaA, 1, 7),
		event.New(schemaB, 2, 0),
		event.New(schemaC, 3, 7),
		event.New(schemaC, 4, 5), // a.x ≠ c.x: no match
	}))
	if len(got) != 1 {
		t.Fatalf("got %d matches, want 1", len(got))
	}
}

func TestNSEQPlacementAtLCA(t *testing.T) {
	p := pattern.Seq(10,
		pattern.E("A", "a"), pattern.Not("B", "b"), pattern.E("C", "c"), pattern.E("D", "d"))
	c := compile(t, p, predicate.SkipTillAnyMatch)
	// Plan ((a c) d): anchors a (pos 0) and c (pos 2) meet at the inner node.
	root := plan.Join(plan.Join(plan.LeafNode(0), plan.LeafNode(2)), plan.LeafNode(3))
	e, err := New(c, root, Config{})
	if err != nil {
		t.Fatal(err)
	}
	inner := e.root.left
	if len(inner.negSpecs) != 1 || inner.negSpecs[0].Pos != 1 {
		t.Fatalf("NSEQ not placed at LCA: %+v", inner.negSpecs)
	}
	if len(e.root.negSpecs) != 0 {
		t.Fatal("NSEQ duplicated at root")
	}
	// A B C D with B between A and C: vetoed early.
	got := feed(t, e, stream([]*event.Event{
		event.New(schemaA, 1, 0),
		event.New(schemaB, 2, 0),
		event.New(schemaC, 3, 0),
		event.New(schemaD, 4, 0),
	}))
	if len(got) != 0 {
		t.Fatalf("vetoed match emitted: %d", len(got))
	}
	if e.Stats().Matches != 0 {
		t.Fatal("stats count a vetoed match")
	}
}

func TestTrailingNegationPending(t *testing.T) {
	p := pattern.Seq(5, pattern.E("A", "a"), pattern.E("B", "b"), pattern.Not("C", "nc"))
	c := compile(t, p, predicate.SkipTillAnyMatch)
	root := plan.Join(plan.LeafNode(0), plan.LeafNode(1))
	e, err := New(c, root, Config{})
	if err != nil {
		t.Fatal(err)
	}
	e.Process(event.New(schemaA, 1, 0))
	out := e.Process(event.New(schemaB, 2, 0))
	if len(out) != 0 {
		t.Fatal("emitted before negation window closed")
	}
	out = e.Process(event.New(schemaC, 4, 0)) // veto: ts 4 ∈ (2, 1+5]
	if len(out) != 0 {
		t.Fatal("veto event completed a match")
	}
	if len(e.Flush()) != 0 {
		t.Fatal("vetoed match emitted at Flush")
	}

	e2, _ := New(c, root, Config{})
	e2.Process(event.New(schemaA, 1, 0))
	e2.Process(event.New(schemaB, 2, 0))
	out = e2.Process(event.New(schemaD, 100, 0)) // deadline passed, no C seen
	if len(out) != 1 {
		t.Fatalf("pending match not released: %d", len(out))
	}
}

func TestKleeneLeafGroups(t *testing.T) {
	p := pattern.And(10, pattern.E("A", "a"), pattern.KL("B", "b"))
	c := compile(t, p, predicate.SkipTillAnyMatch)
	root := plan.Join(plan.LeafNode(0), plan.LeafNode(1))
	e, err := New(c, root, Config{})
	if err != nil {
		t.Fatal(err)
	}
	got := feed(t, e, stream([]*event.Event{
		event.New(schemaA, 1, 0),
		event.New(schemaB, 2, 0),
		event.New(schemaB, 3, 0),
	}))
	// {b1}, {b2}, {b1,b2}.
	if len(got) != 3 {
		t.Fatalf("got %d matches, want 3", len(got))
	}
}

func TestStatsAndCurrentCounters(t *testing.T) {
	p := pattern.Seq(10, pattern.E("A", "a"), pattern.E("B", "b"))
	c := compile(t, p, predicate.SkipTillAnyMatch)
	root := plan.Join(plan.LeafNode(0), plan.LeafNode(1))
	e, _ := New(c, root, Config{})
	feed(t, e, stream([]*event.Event{
		event.New(schemaA, 1, 0),
		event.New(schemaA, 2, 0),
		event.New(schemaB, 3, 0),
	}))
	st := e.Stats()
	if st.Processed != 3 || st.Matches != 2 {
		t.Fatalf("stats = %+v", st)
	}
	// 3 leaf instances + 2 root completions.
	if st.Created != 5 {
		t.Fatalf("Created = %d", st.Created)
	}
	if st.PeakPartial < 2 {
		t.Fatalf("PeakPartial = %d", st.PeakPartial)
	}
}

func TestSkipTillNextConsumption(t *testing.T) {
	p := pattern.Seq(10, pattern.E("A", "a"), pattern.E("B", "b"))
	c := compile(t, p, predicate.SkipTillAnyMatch)
	root := plan.Join(plan.LeafNode(0), plan.LeafNode(1))
	e, _ := New(c, root, Config{Strategy: predicate.SkipTillNextMatch})
	got := feed(t, e, stream([]*event.Event{
		event.New(schemaA, 1, 0),
		event.New(schemaB, 2, 0),
		event.New(schemaB, 3, 0),
	}))
	if len(got) != 1 {
		t.Fatalf("got %d matches, want 1 (A consumed)", len(got))
	}
}

func TestWindowExpiry(t *testing.T) {
	p := pattern.Seq(5, pattern.E("A", "a"), pattern.E("B", "b"))
	c := compile(t, p, predicate.SkipTillAnyMatch)
	root := plan.Join(plan.LeafNode(0), plan.LeafNode(1))
	e, _ := New(c, root, Config{})
	var events []*event.Event
	events = append(events, event.New(schemaA, 1, 0))
	for ts := event.Time(100); ts < 200; ts++ {
		events = append(events, event.New(schemaD, ts, 0))
	}
	events = append(events, event.New(schemaB, 200, 0))
	if got := feed(t, e, stream(events)); len(got) != 0 {
		t.Fatalf("expired instance completed: %d", len(got))
	}
}
