// Package tree implements the tree-based evaluation engine of Section 2.3:
// an instance-based adaptation of ZStream [35] to arbitrary sliding windows.
// Events enter at leaves; each node buffers the partial matches (instances)
// of its subtree; a new instance combines with its sibling's buffered
// instances and propagates towards the root, where full matches are
// reported.
//
// Negation follows Section 5.3: an anchored negated event is checked at the
// lowest node containing both of its anchors (the NSEQ placement); negated
// events whose violators may arrive after completion hold the match in a
// pending queue until the window closes. Kleene leaves enumerate power-set
// groups per Theorem 4, bounded by Config.MaxKleeneBase.
package tree

import (
	"fmt"

	"repro/internal/event"
	"repro/internal/match"
	"repro/internal/oracle"
	"repro/internal/plan"
	"repro/internal/predicate"
)

// DefaultMaxKleeneBase bounds Kleene subset enumeration, as in the NFA
// engine.
const DefaultMaxKleeneBase = 12

const compactEvery = 64

// maxBufCap bounds the buffer pre-size hints: a mis-estimated rate must not
// translate into an arbitrarily large up-front allocation.
const maxBufCap = 4096

// Config tunes an Engine.
type Config struct {
	Strategy      predicate.Strategy
	MaxKleeneBase int
	OnMatch       func(*match.Match)
	// BufferCap pre-sizes each node's instance buffer, keyed by the plan
	// node it is built from. Values come from the cost model's expected
	// partial-match volume PM(N) (Section 4.2) under measured or
	// registration-time statistics; missing entries start empty and grow.
	BufferCap map[*plan.TreeNode]int
}

// Stats exposes the engine's load counters.
type Stats struct {
	Processed    int64
	Matches      int64
	Created      int64 // instances created across all nodes
	PeakPartial  int   // peak live instances
	PeakBuffered int   // peak buffered raw events (Kleene and negated)
	KleeneCapped int64
}

// inst is a partial match: one instance of a subtree.
type inst struct {
	positions [][]*event.Event
	minTS     event.Time
	maxTS     event.Time
	dead      bool
}

// node is one plan-tree node with its instance buffer.
type node struct {
	leafPos int // term position for leaves, -1 for internal nodes
	left    *node
	right   *node
	parent  *node
	sibling *node
	// members lists the term positions under this node.
	members []int
	// pairs lists the (left-position, right-position) pairs that carry
	// predicates, precomputed for the combine step.
	pairs [][2]int
	// negSpecs are the anchored negation specs whose anchors first meet at
	// this node (the NSEQ check).
	negSpecs []predicate.NegSpec
	buffer   []*inst
}

type pendingMatch struct {
	in       *inst
	deadline event.Time
}

// Engine is a single-pattern, single-plan tree evaluation engine.
type Engine struct {
	c   *predicate.Compiled
	cfg Config

	root   *node
	leaves []*node // indexed by term position; nil for negated positions

	negComplete []predicate.NegSpec
	negPending  []predicate.NegSpec
	negBuffers  [][]*event.Event // per negated term position
	rawKleene   [][]*event.Event // per Kleene term position: raw events for grouping

	pending   []*pendingMatch
	now       event.Time
	nPartial  int
	nBuffered int
	st        Stats
	out       []*match.Match

	// free is the engine-local partial-match free list. The engine is a
	// single-goroutine machine, so a plain slice beats sync.Pool here: no
	// per-P shuttling, no GC-driven eviction, and the counters in pstats
	// give exact leak accounting (Live()==0 after Close).
	free          []*inst
	pstats        PoolStats
	kleeneScratch []*event.Event
}

// PoolStats counts the engine's partial-match pool traffic. Gets is the
// total number of instance acquisitions (News of them freshly allocated,
// the rest recycled), Puts the returns. Live() is the number of instances
// currently held in node buffers or the pending queue — the leak tests
// assert it reaches zero after Close.
type PoolStats struct {
	News, Gets, Puts int64
}

// Live returns the number of pool-owned instances not yet returned.
func (ps PoolStats) Live() int64 { return ps.Gets - ps.Puts }

// PoolStats returns a copy of the pool counters.
func (e *Engine) PoolStats() PoolStats { return e.pstats }

// getInst acquires an instance with a clean positions table of the
// pattern's width. Entries are always nil on return (putInst clears them),
// so no re-clearing is needed here.
func (e *Engine) getInst() *inst {
	e.pstats.Gets++
	if n := len(e.free); n > 0 {
		in := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		if in.positions == nil {
			in.positions = make([][]*event.Event, e.c.N)
		}
		in.dead = false
		return in
	}
	e.pstats.News++
	return &inst{positions: make([][]*event.Event, e.c.N)}
}

// putInst returns an instance whose positions table did NOT escape. The
// caller must be the sole owner; position groups are dropped here so
// recycled instances never pin expired events (the groups themselves may
// still be shared read-only with other live instances — only the outer
// table is reused).
func (e *Engine) putInst(in *inst) {
	e.pstats.Puts++
	for i := range in.positions {
		in.positions[i] = nil
	}
	e.free = append(e.free, in)
}

// putShell returns an instance whose positions table escaped into an
// emitted Match: the match now owns the table, so only the shell recycles
// (getInst re-creates the table on reuse).
func (e *Engine) putShell(in *inst) {
	e.pstats.Puts++
	in.positions = nil
	e.free = append(e.free, in)
}

// New builds a tree engine for the compiled pattern and plan tree, whose
// leaves must be a permutation of the pattern's positive term positions.
func New(c *predicate.Compiled, planRoot *plan.TreeNode, cfg Config) (*Engine, error) {
	if cfg.MaxKleeneBase <= 0 {
		cfg.MaxKleeneBase = DefaultMaxKleeneBase
	}
	if planRoot == nil {
		return nil, fmt.Errorf("tree: nil plan")
	}
	leaves := planRoot.Leaves()
	positive := make(map[int]bool, len(c.Positives))
	for _, p := range c.Positives {
		positive[p] = true
	}
	if len(leaves) != len(c.Positives) {
		return nil, fmt.Errorf("tree: plan has %d leaves, pattern has %d positive events",
			len(leaves), len(c.Positives))
	}
	seen := make(map[int]bool)
	for _, l := range leaves {
		if !positive[l] || seen[l] {
			return nil, fmt.Errorf("tree: leaves %v are not a permutation of positive positions %v",
				leaves, c.Positives)
		}
		seen[l] = true
	}
	e := &Engine{
		c:          c,
		cfg:        cfg,
		leaves:     make([]*node, c.N),
		negBuffers: make([][]*event.Event, c.N),
		rawKleene:  make([][]*event.Event, c.N),
	}
	e.root = e.build(planRoot, nil)
	e.placeNegations()
	return e, nil
}

func (e *Engine) build(pn *plan.TreeNode, parent *node) *node {
	n := &node{leafPos: -1, parent: parent}
	if c := e.cfg.BufferCap[pn]; c > 0 {
		if c > maxBufCap {
			c = maxBufCap
		}
		n.buffer = make([]*inst, 0, c)
	}
	if pn.IsLeaf() {
		n.leafPos = pn.Leaf
		n.members = []int{pn.Leaf}
		e.leaves[pn.Leaf] = n
		return n
	}
	n.left = e.build(pn.Left, n)
	n.right = e.build(pn.Right, n)
	n.left.sibling = n.right
	n.right.sibling = n.left
	n.members = append(append([]int(nil), n.left.members...), n.right.members...)
	for _, i := range n.left.members {
		for _, j := range n.right.members {
			if e.c.Preds.PairCount(i, j) > 0 {
				n.pairs = append(n.pairs, [2]int{i, j})
			}
		}
	}
	return n
}

// placeNegations assigns each anchored negation spec to the lowest node
// containing both anchors, and classifies the rest as completion-time or
// pending checks (same classification as the NFA engine).
func (e *Engine) placeNegations() {
	for _, spec := range e.c.Negs {
		switch {
		case spec.Low >= 0 && spec.High >= 0:
			n := e.lca(spec.Low, spec.High)
			n.negSpecs = append(n.negSpecs, spec)
		case spec.High >= 0:
			e.negComplete = append(e.negComplete, spec)
		default:
			e.negPending = append(e.negPending, spec)
		}
	}
}

func (e *Engine) lca(a, b int) *node {
	n := e.leaves[a]
	for n != nil {
		if contains(n.members, b) {
			return n
		}
		n = n.parent
	}
	return e.root
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// Stats returns a copy of the engine counters.
func (e *Engine) Stats() Stats { return e.st }

// CurrentPartial returns the number of live instances plus pending matches.
func (e *Engine) CurrentPartial() int { return e.nPartial + len(e.pending) }

// CurrentBuffered returns the number of buffered raw events (Kleene bases
// and negated types).
func (e *Engine) CurrentBuffered() int { return e.nBuffered }

// Process consumes one event (timestamps non-decreasing) and returns the
// matches it completed. The returned slice is reused by the next call.
func (e *Engine) Process(ev *event.Event) []*match.Match {
	e.out = e.out[:0]
	e.processOne(ev)
	return e.out
}

// ProcessBatch consumes a timestamp-ordered batch in one wake-up and
// returns the matches of the whole batch, in stream order. Semantically
// identical to calling Process per event; the batch form amortizes the
// output reset and lets one queue item carry many events. The returned
// slice is reused by the next call.
func (e *Engine) ProcessBatch(evs []*event.Event) []*match.Match {
	e.out = e.out[:0]
	for _, ev := range evs {
		e.processOne(ev)
	}
	return e.out
}

func (e *Engine) processOne(ev *event.Event) {
	e.st.Processed++
	e.now = ev.TS

	e.expirePending()
	if len(e.negPending) > 0 {
		e.killPending(ev)
	}

	// Buffer negated positions first: an arriving negated-type event must be
	// visible to the violation checks of any match completed by this very
	// call (it may serve a positive leaf and a negated position at once).
	for pos := 0; pos < e.c.N; pos++ {
		if e.leaves[pos] == nil && e.c.Types[pos] == ev.Type && e.c.Preds.CheckUnary(pos, ev) {
			e.negBuffers[pos] = append(e.negBuffers[pos], ev)
			e.nBuffered++
		}
	}
	for pos := 0; pos < e.c.N; pos++ {
		leaf := e.leaves[pos]
		if leaf == nil || e.c.Types[pos] != ev.Type || !e.c.Preds.CheckUnary(pos, ev) {
			continue
		}
		if e.c.Kleene[pos] {
			e.processKleeneLeaf(leaf, pos, ev)
			continue
		}
		in := e.getInst()
		in.minTS, in.maxTS = ev.TS, ev.TS
		in.positions[pos] = []*event.Event{ev}
		e.insert(leaf, in)
	}
	if e.nBuffered > e.st.PeakBuffered {
		e.st.PeakBuffered = e.nBuffered
	}
	if e.st.Processed%compactEvery == 0 {
		e.compact()
	}
}

// processKleeneLeaf creates one instance per subset of earlier compatible
// raw events, each completed with the arriving event (Theorem 4's power-set
// groups, created exactly once).
func (e *Engine) processKleeneLeaf(leaf *node, pos int, ev *event.Event) {
	// The in-window base set is assembled in a reusable scratch slice: it
	// never escapes (groups copy out of it below), and the events it holds
	// between calls are pinned by rawKleene anyway.
	base := e.kleeneScratch[:0]
	for _, b := range e.rawKleene[pos] {
		if ev.TS-b.TS <= e.c.Window {
			base = append(base, b)
		}
	}
	e.kleeneScratch = base
	if len(base) > e.cfg.MaxKleeneBase {
		base = base[len(base)-e.cfg.MaxKleeneBase:]
		e.st.KleeneCapped++
	}
	for mask := 0; mask < 1<<uint(len(base)); mask++ {
		group := make([]*event.Event, 0, len(base)+1)
		min, max := ev.TS, ev.TS
		ok := true
		for i := 0; i < len(base) && ok; i++ {
			if mask&(1<<uint(i)) == 0 {
				continue
			}
			b := base[i]
			group = append(group, b)
			if b.TS < min {
				min = b.TS
			}
			if b.TS > max {
				max = b.TS
			}
			if max-min > e.c.Window {
				ok = false
			}
		}
		if !ok {
			continue
		}
		group = append(group, ev)
		in := e.getInst()
		in.minTS, in.maxTS = min, max
		in.positions[pos] = group
		e.insert(leaf, in)
	}
	e.rawKleene[pos] = append(e.rawKleene[pos], ev)
	e.nBuffered++
}

// insert registers an instance at a node, applies the node's negation
// checks, and combines it with the sibling's buffered instances, recursing
// towards the root.
func (e *Engine) insert(n *node, in *inst) {
	e.st.Created++
	for _, spec := range n.negSpecs {
		if e.violated(in, spec) {
			e.putInst(in) // rejected before buffering: sole owner
			return
		}
	}
	if n == e.root {
		e.complete(in)
		return
	}
	n.buffer = append(n.buffer, in)
	e.nPartial++
	if cur := e.CurrentPartial(); cur > e.st.PeakPartial {
		e.st.PeakPartial = cur
	}
	sib := n.sibling
	parent := n.parent
	// Snapshot: instances created by this combine round insert themselves
	// recursively; the sibling buffer is only ever extended by *other*
	// events, so iterating the current slice is safe.
	sibInsts := sib.buffer
	for _, other := range sibInsts {
		if other.dead {
			continue
		}
		merged := e.combine(n, in, sib, other, parent)
		if merged != nil {
			e.insert(parent, merged)
		}
	}
}

// combine merges two sibling instances if window, predicates and (under
// skip-till-next-match) consumption allow.
func (e *Engine) combine(ln *node, li *inst, rn *node, ri *inst, parent *node) *inst {
	min, max := li.minTS, li.maxTS
	if ri.minTS < min {
		min = ri.minTS
	}
	if ri.maxTS > max {
		max = ri.maxTS
	}
	if max-min > e.c.Window {
		return nil
	}
	if e.now-min > e.c.Window {
		return nil // expired instance on the other side
	}
	if e.cfg.Strategy == predicate.SkipTillNextMatch &&
		(e.anyConsumed(li) || e.anyConsumed(ri)) {
		return nil
	}
	// An event may fill at most one position: with type-disjoint leaf sets
	// this cannot trigger, but patterns may repeat a type.
	for _, i := range ln.members {
		gi := li.positions[i]
		if gi == nil {
			continue
		}
		for _, j := range rn.members {
			gj := ri.positions[j]
			if gj == nil {
				continue
			}
			for _, a := range gi {
				for _, b := range gj {
					if a == b {
						return nil
					}
				}
			}
		}
	}
	for _, pr := range parent.pairs {
		i, j := pr[0], pr[1]
		var gi, gj []*event.Event
		if gi = li.positions[i]; gi == nil {
			gi = ri.positions[i]
		}
		if gj = li.positions[j]; gj == nil {
			gj = ri.positions[j]
		}
		if gi == nil || gj == nil {
			continue
		}
		if !e.c.CheckGroupPair(i, gi, j, gj) {
			return nil
		}
	}
	merged := e.getInst()
	merged.minTS, merged.maxTS = min, max
	for pos := range merged.positions {
		if li.positions[pos] != nil {
			merged.positions[pos] = li.positions[pos]
		} else if ri.positions[pos] != nil {
			merged.positions[pos] = ri.positions[pos]
		}
	}
	return merged
}

// complete handles a full match at the root. Root instances are never
// buffered, so every path either hands the instance to the pending queue,
// emits it (emit recycles the shell), or recycles it here.
func (e *Engine) complete(in *inst) {
	if e.cfg.Strategy == predicate.SkipTillNextMatch && e.anyConsumed(in) {
		e.putInst(in)
		return
	}
	for _, spec := range e.negComplete {
		if e.violated(in, spec) {
			e.putInst(in)
			return
		}
	}
	if len(e.negPending) > 0 {
		for _, spec := range e.negPending {
			if e.violated(in, spec) {
				e.putInst(in)
				return
			}
		}
		e.pending = append(e.pending, &pendingMatch{in: in, deadline: in.minTS + e.c.Window})
		if cur := e.CurrentPartial(); cur > e.st.PeakPartial {
			e.st.PeakPartial = cur
		}
		return
	}
	e.emit(in)
}

func (e *Engine) violated(in *inst, spec predicate.NegSpec) bool {
	m := &match.Match{Positions: in.positions}
	for _, b := range e.negBuffers[spec.Pos] {
		if e.now-b.TS > e.c.Window {
			continue
		}
		if oracle.Violates(e.c, m, spec, b) {
			return true
		}
	}
	return false
}

func (e *Engine) emit(in *inst) {
	m := &match.Match{Positions: in.positions}
	e.st.Matches++
	if e.cfg.Strategy == predicate.SkipTillNextMatch {
		for _, g := range in.positions {
			for _, ev := range g {
				ev.Consume()
			}
		}
	}
	if e.cfg.OnMatch != nil {
		e.cfg.OnMatch(m)
	}
	e.out = append(e.out, m)
	// The positions table now belongs to the match; recycle the shell only.
	e.putShell(in)
}

func (e *Engine) anyConsumed(in *inst) bool {
	for _, g := range in.positions {
		for _, ev := range g {
			if ev.Consumed() {
				return true
			}
		}
	}
	return false
}

// Flush emits pending matches whose negation verdict can no longer change.
func (e *Engine) Flush() []*match.Match {
	e.out = e.out[:0]
	for _, pd := range e.pending {
		if pd.in.dead || (e.cfg.Strategy == predicate.SkipTillNextMatch && e.anyConsumed(pd.in)) {
			e.putInst(pd.in)
			continue
		}
		e.emit(pd.in)
	}
	e.pending = nil
	return e.out
}

// Close releases the engine's buffers, returning every live instance to the
// pool (leak tests assert PoolStats().Live() == 0 after Flush+Close).
func (e *Engine) Close() {
	var walk func(n *node)
	walk = func(n *node) {
		for _, in := range n.buffer {
			e.putInst(in)
		}
		n.buffer = nil
		if n.left != nil {
			walk(n.left)
			walk(n.right)
		}
	}
	walk(e.root)
	for _, pd := range e.pending {
		e.putInst(pd.in)
	}
	e.pending = nil
	e.nPartial = 0
}

func (e *Engine) expirePending() {
	if len(e.pending) == 0 {
		return
	}
	keep := e.pending[:0]
	for _, pd := range e.pending {
		switch {
		case pd.in.dead:
			e.putInst(pd.in)
		case pd.deadline < e.now:
			if e.cfg.Strategy == predicate.SkipTillNextMatch && e.anyConsumed(pd.in) {
				e.putInst(pd.in)
			} else {
				e.emit(pd.in)
			}
		default:
			keep = append(keep, pd)
		}
	}
	for i := len(keep); i < len(e.pending); i++ {
		e.pending[i] = nil
	}
	e.pending = keep
}

func (e *Engine) killPending(ev *event.Event) {
	for _, pd := range e.pending {
		if pd.in.dead {
			continue
		}
		m := &match.Match{Positions: pd.in.positions}
		for _, spec := range e.negPending {
			if oracle.Violates(e.c, m, spec, ev) {
				pd.in.dead = true
				break
			}
		}
	}
}

// compact sweeps expired instances and raw buffers.
func (e *Engine) compact() {
	cut := e.now - e.c.Window
	total := 0
	var walk func(n *node)
	walk = func(n *node) {
		keep := n.buffer[:0]
		for _, in := range n.buffer {
			if in.dead || e.now-in.minTS > e.c.Window ||
				(e.cfg.Strategy == predicate.SkipTillNextMatch && e.anyConsumed(in)) {
				e.putInst(in)
				continue
			}
			keep = append(keep, in)
		}
		for i := len(keep); i < len(n.buffer); i++ {
			n.buffer[i] = nil
		}
		n.buffer = keep
		total += len(keep)
		if n.left != nil {
			walk(n.left)
			walk(n.right)
		}
	}
	walk(e.root)
	e.nPartial = total
	for pos := range e.negBuffers {
		e.negBuffers[pos], e.nBuffered = purge(e.negBuffers[pos], cut, e.nBuffered)
		e.rawKleene[pos], e.nBuffered = purge(e.rawKleene[pos], cut, e.nBuffered)
	}
}

func purge(buf []*event.Event, cut event.Time, counter int) ([]*event.Event, int) {
	i := 0
	for i < len(buf) && buf[i].TS < cut {
		i++
	}
	return buf[i:], counter - i
}
