// Package oracle provides a brute-force reference matcher: it enumerates
// every combination of events satisfying a compiled pattern under
// skip-till-any-match semantics. It is exponential and exists purely to
// validate the NFA and tree engines — the paper's premise that every
// evaluation plan detects exactly the same matches is tested against it.
//
// Negation semantics (shared with the engines): a negated event b
// invalidates a match M when it passes the negated position's filters and
// its pairwise predicates against M, and its timestamp lies inside the range
//
//	( lowTS(M) ,  highTS(M) )      anchors present (SEQ)
//	[ maxTS(M)−W ,  highTS(M) )    no low anchor (pattern-leading NOT)
//	( lowTS(M) ,  minTS(M)+W ]     no high anchor (pattern-trailing NOT)
//	[ maxTS(M)−W ,  minTS(M)+W ]   no anchors (NOT inside AND)
//
// where lowTS/highTS are the latest/earliest timestamps of the anchoring
// positive positions and W is the pattern window.
package oracle

import (
	"repro/internal/event"
	"repro/internal/match"
	"repro/internal/predicate"
)

// MaxKleeneCandidates bounds the per-position candidate count for Kleene
// subset enumeration; Find panics beyond it rather than hanging.
const MaxKleeneCandidates = 20

// Find returns every match of the compiled pattern in the events, which
// must be timestamp-ordered with serials stamped (use event.SliceStream).
func Find(c *predicate.Compiled, events []*event.Event) []*match.Match {
	f := &finder{c: c, cand: make([][]*event.Event, c.N)}
	for _, e := range events {
		for pos := 0; pos < c.N; pos++ {
			if c.Types[pos] == e.Type && c.Preds.CheckUnary(pos, e) {
				f.cand[pos] = append(f.cand[pos], e)
			}
		}
	}
	// Enumerate Kleene positions last: the window pruning induced by the
	// already-chosen events then bounds the subset base, so the exponential
	// enumeration only sees in-window candidates.
	for _, pos := range c.Positives {
		if !c.Kleene[pos] {
			f.order = append(f.order, pos)
		}
	}
	for _, pos := range c.Positives {
		if c.Kleene[pos] {
			f.order = append(f.order, pos)
		}
	}
	cur := match.New(c.N)
	f.recurse(cur, 0)
	return f.out
}

type finder struct {
	c     *predicate.Compiled
	cand  [][]*event.Event
	order []int
	out   []*match.Match
}

func (f *finder) recurse(cur *match.Match, k int) {
	c := f.c
	if k == len(f.order) {
		if f.negationsOK(cur) {
			cp := match.New(c.N)
			copy(cp.Positions, cur.Positions)
			f.out = append(f.out, cp)
		}
		return
	}
	pos := f.order[k]
	if c.Kleene[pos] {
		cands := f.compatible(cur, pos)
		if len(cands) > MaxKleeneCandidates {
			panic("oracle: too many Kleene candidates; shrink the test input")
		}
		for mask := 1; mask < 1<<uint(len(cands)); mask++ {
			group := make([]*event.Event, 0, len(cands))
			for i, e := range cands {
				if mask&(1<<uint(i)) != 0 {
					group = append(group, e)
				}
			}
			if !groupWithinWindow(group, c.Window) {
				continue
			}
			cur.Positions[pos] = group
			if f.windowOK(cur) {
				f.recurse(cur, k+1)
			}
			cur.Positions[pos] = nil
		}
		return
	}
	for _, e := range f.compatible(cur, pos) {
		cur.Positions[pos] = []*event.Event{e}
		if f.windowOK(cur) {
			f.recurse(cur, k+1)
		}
		cur.Positions[pos] = nil
	}
}

// compatible returns the candidates at pos passing the window constraint
// and the pairwise predicates against the events already chosen, excluding
// events already used.
func (f *finder) compatible(cur *match.Match, pos int) []*event.Event {
	var out []*event.Event
	for _, e := range f.cand[pos] {
		if used(cur, e) {
			continue
		}
		ok := true
		for other, group := range cur.Positions {
			if group == nil {
				continue
			}
			for _, g := range group {
				if e.TS-g.TS > f.c.Window || g.TS-e.TS > f.c.Window {
					ok = false
					break
				}
			}
			if !ok || !f.c.CheckGroupPair(other, group, pos, []*event.Event{e}) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, e)
		}
	}
	return out
}

func used(cur *match.Match, e *event.Event) bool {
	for _, group := range cur.Positions {
		for _, g := range group {
			if g == e {
				return true
			}
		}
	}
	return false
}

func groupWithinWindow(group []*event.Event, w event.Time) bool {
	if len(group) == 0 {
		return true
	}
	min, max := group[0].TS, group[0].TS
	for _, e := range group[1:] {
		if e.TS < min {
			min = e.TS
		}
		if e.TS > max {
			max = e.TS
		}
	}
	return max-min <= w
}

func (f *finder) windowOK(cur *match.Match) bool {
	first := true
	var min, max event.Time
	for _, group := range cur.Positions {
		for _, e := range group {
			if first {
				min, max, first = e.TS, e.TS, false
				continue
			}
			if e.TS < min {
				min = e.TS
			}
			if e.TS > max {
				max = e.TS
			}
		}
	}
	return first || max-min <= f.c.Window
}

// negationsOK verifies every negation spec against the candidate events of
// the negated positions.
func (f *finder) negationsOK(cur *match.Match) bool {
	for _, spec := range f.c.Negs {
		for _, b := range f.cand[spec.Pos] {
			if Violates(f.c, cur, spec, b) {
				return false
			}
		}
	}
	return true
}

// Violates reports whether event b invalidates the match under the negation
// spec, applying the semantics documented in the package comment. It is
// exported so that the engines share one implementation.
func Violates(c *predicate.Compiled, m *match.Match, spec predicate.NegSpec, b *event.Event) bool {
	if b.Type != c.Types[spec.Pos] || !c.Preds.CheckUnary(spec.Pos, b) {
		return false
	}
	minTS, maxTS := m.MinTS(), m.MaxTS()
	if spec.Low >= 0 {
		group := m.Positions[spec.Low]
		lowTS := group[0].TS
		for _, e := range group {
			if e.TS > lowTS {
				lowTS = e.TS
			}
		}
		if b.TS <= lowTS {
			return false
		}
	} else if b.TS < maxTS-c.Window {
		return false
	}
	if spec.High >= 0 {
		group := m.Positions[spec.High]
		highTS := group[0].TS
		for _, e := range group {
			if e.TS < highTS {
				highTS = e.TS
			}
		}
		if b.TS >= highTS {
			return false
		}
	} else if b.TS > minTS+c.Window {
		return false
	}
	for pos, group := range m.Positions {
		if group == nil {
			continue
		}
		if !c.CheckGroupPair(pos, group, spec.Pos, []*event.Event{b}) {
			return false
		}
	}
	return true
}
