package oracle

import (
	"testing"

	"repro/internal/event"
	"repro/internal/pattern"
	"repro/internal/predicate"
)

var (
	schemaA = event.NewSchema("A", "x")
	schemaB = event.NewSchema("B", "x")
	schemaC = event.NewSchema("C", "x")
)

func stream(events []*event.Event) []*event.Event {
	return event.Drain(event.NewSliceStream(events))
}

func compile(t *testing.T, p *pattern.Pattern) *predicate.Compiled {
	t.Helper()
	c, err := predicate.Compile(p, predicate.SkipTillAnyMatch)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestFindSimpleSequence(t *testing.T) {
	p := pattern.Seq(10, pattern.E("A", "a"), pattern.E("B", "b"))
	c := compile(t, p)
	events := stream([]*event.Event{
		event.New(schemaA, 1, 0),
		event.New(schemaB, 2, 0),
		event.New(schemaA, 3, 0),
		event.New(schemaB, 4, 0),
	})
	got := Find(c, events)
	// Pairs (1,2), (1,4), (3,4) — but not (3,2): order matters.
	if len(got) != 3 {
		t.Fatalf("got %d matches, want 3", len(got))
	}
}

func TestFindWindowExcludes(t *testing.T) {
	p := pattern.Seq(5, pattern.E("A", "a"), pattern.E("B", "b"))
	c := compile(t, p)
	events := stream([]*event.Event{
		event.New(schemaA, 1, 0),
		event.New(schemaB, 7, 0), // 6 > 5 apart
	})
	if got := Find(c, events); len(got) != 0 {
		t.Fatalf("got %d matches, want 0", len(got))
	}
}

func TestFindPredicates(t *testing.T) {
	p := pattern.And(10, pattern.E("A", "a"), pattern.E("B", "b")).
		Where(pattern.AttrCmp("a", "x", pattern.Lt, "b", "x"))
	c := compile(t, p)
	events := stream([]*event.Event{
		event.New(schemaA, 1, 5),
		event.New(schemaB, 2, 3), // 5 < 3 fails
		event.New(schemaB, 3, 9), // 5 < 9 holds
	})
	got := Find(c, events)
	if len(got) != 1 {
		t.Fatalf("got %d matches, want 1", len(got))
	}
}

func TestFindDistinctEvents(t *testing.T) {
	// Two positions of the same type must bind distinct events.
	p := pattern.And(10, pattern.E("A", "a1"), pattern.E("A", "a2"))
	c := compile(t, p)
	events := stream([]*event.Event{event.New(schemaA, 1, 0)})
	if got := Find(c, events); len(got) != 0 {
		t.Fatalf("single event filled both positions: %d matches", len(got))
	}
	events = stream([]*event.Event{event.New(schemaA, 1, 0), event.New(schemaA, 2, 0)})
	// Both orderings are distinct matches under AND.
	if got := Find(c, events); len(got) != 2 {
		t.Fatalf("got %d matches, want 2", len(got))
	}
}

func TestFindMiddleNegation(t *testing.T) {
	p := pattern.Seq(10, pattern.E("A", "a"), pattern.Not("B", "b"), pattern.E("C", "c"))
	c := compile(t, p)
	// B strictly between A and C kills the match.
	events := stream([]*event.Event{
		event.New(schemaA, 1, 0),
		event.New(schemaB, 2, 0),
		event.New(schemaC, 3, 0),
	})
	if got := Find(c, events); len(got) != 0 {
		t.Fatalf("negated match survived: %d", len(got))
	}
	// B outside the A..C span does not.
	events = stream([]*event.Event{
		event.New(schemaB, 1, 0),
		event.New(schemaA, 2, 0),
		event.New(schemaC, 3, 0),
		event.New(schemaB, 4, 0),
	})
	if got := Find(c, events); len(got) != 1 {
		t.Fatalf("got %d matches, want 1", len(got))
	}
}

func TestFindLeadingNegationUsesWindowStart(t *testing.T) {
	p := pattern.Seq(5, pattern.Not("B", "b"), pattern.E("A", "a"))
	c := compile(t, p)
	// B at ts=6 is within window of A at ts=8 (8−5=3 ≤ 6 < 8): kills.
	events := stream([]*event.Event{
		event.New(schemaB, 6, 0),
		event.New(schemaA, 8, 0),
	})
	if got := Find(c, events); len(got) != 0 {
		t.Fatalf("leading negation missed: %d", len(got))
	}
	// B at ts=1 is before the window of A at ts=8: match survives.
	events = stream([]*event.Event{
		event.New(schemaB, 1, 0),
		event.New(schemaA, 8, 0),
	})
	if got := Find(c, events); len(got) != 1 {
		t.Fatalf("got %d, want 1", len(got))
	}
}

func TestFindTrailingNegationUsesWindowEnd(t *testing.T) {
	p := pattern.Seq(5, pattern.E("A", "a"), pattern.Not("B", "b"))
	c := compile(t, p)
	// B at ts=6 ≤ 1+5: kills the A@1 match.
	events := stream([]*event.Event{
		event.New(schemaA, 1, 0),
		event.New(schemaB, 6, 0),
	})
	if got := Find(c, events); len(got) != 0 {
		t.Fatalf("trailing negation missed: %d", len(got))
	}
	// B at ts=7 > 1+5: match survives.
	events = stream([]*event.Event{
		event.New(schemaA, 1, 0),
		event.New(schemaB, 7, 0),
	})
	if got := Find(c, events); len(got) != 1 {
		t.Fatalf("got %d, want 1", len(got))
	}
}

func TestFindNegationWithPredicate(t *testing.T) {
	// Only B events with b.x = a.x can veto.
	p := pattern.Seq(10, pattern.E("A", "a"), pattern.Not("B", "b"), pattern.E("C", "c")).
		Where(pattern.AttrCmp("a", "x", pattern.Eq, "b", "x"))
	c := compile(t, p)
	events := stream([]*event.Event{
		event.New(schemaA, 1, 5),
		event.New(schemaB, 2, 7), // x differs: no veto
		event.New(schemaC, 3, 0),
	})
	if got := Find(c, events); len(got) != 1 {
		t.Fatalf("got %d, want 1", len(got))
	}
	events = stream([]*event.Event{
		event.New(schemaA, 1, 5),
		event.New(schemaB, 2, 5), // same x: veto
		event.New(schemaC, 3, 0),
	})
	if got := Find(c, events); len(got) != 0 {
		t.Fatalf("got %d, want 0", len(got))
	}
}

func TestFindKleenePowerSet(t *testing.T) {
	p := pattern.And(10, pattern.E("A", "a"), pattern.KL("B", "b"))
	c := compile(t, p)
	events := stream([]*event.Event{
		event.New(schemaA, 1, 0),
		event.New(schemaB, 2, 0),
		event.New(schemaB, 3, 0),
	})
	// Subsets of {b1, b2}: {b1}, {b2}, {b1,b2} → 3 matches.
	if got := Find(c, events); len(got) != 3 {
		t.Fatalf("got %d matches, want 3", len(got))
	}
}

func TestFindKleeneGroupWindow(t *testing.T) {
	p := pattern.And(5, pattern.E("A", "a"), pattern.KL("B", "b"))
	c := compile(t, p)
	events := stream([]*event.Event{
		event.New(schemaB, 1, 0),
		event.New(schemaA, 4, 0),
		event.New(schemaB, 6, 0),
	})
	// {b@1}, {b@6} pair with a@4; {b@1,b@6} spans 5 ≤ W — allowed (5 ≤ 5).
	if got := Find(c, events); len(got) != 3 {
		t.Fatalf("got %d matches, want 3", len(got))
	}
}
