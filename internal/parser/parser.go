package parser

import (
	"strings"

	"repro/internal/event"
	"repro/internal/pattern"
)

// Parse parses a full SASE-style pattern specification:
//
//	PATTERN <op-expr> [WHERE <conditions>] WITHIN <duration>
//
// and returns the pattern AST. The result is validated structurally; pass a
// registry to ParseWith to also check event types and attributes.
func Parse(src string) (*pattern.Pattern, error) {
	return ParseWith(src, nil)
}

// ParseWith parses like Parse and validates event types and attribute names
// against the registry when it is non-nil.
func ParseWith(src string, reg *event.Registry) (*pattern.Pattern, error) {
	p := &parser{lex: lexer{src: src}}
	if err := p.advance(); err != nil {
		return nil, err
	}
	pat, err := p.parsePattern()
	if err != nil {
		return nil, err
	}
	if err := pat.Validate(reg); err != nil {
		return nil, err
	}
	return pat, nil
}

type parser struct {
	lex lexer
	tok token
}

func (p *parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) expect(kind tokenKind, what string) (token, error) {
	if p.tok.kind != kind {
		return token{}, p.lex.errorf(p.tok.pos, "expected %s, got %s", what, p.tok)
	}
	t := p.tok
	return t, p.advance()
}

func (p *parser) expectKeyword(kw string) error {
	if !keyword(p.tok, kw) {
		return p.lex.errorf(p.tok.pos, "expected %q, got %s", kw, p.tok)
	}
	return p.advance()
}

func (p *parser) parsePattern() (*pattern.Pattern, error) {
	if err := p.expectKeyword("PATTERN"); err != nil {
		return nil, err
	}
	pat, err := p.parseOpExpr()
	if err != nil {
		return nil, err
	}
	if keyword(p.tok, "WHERE") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		conds, err := p.parseConds()
		if err != nil {
			return nil, err
		}
		pat.Conds = conds
	}
	if err := p.expectKeyword("WITHIN"); err != nil {
		return nil, err
	}
	w, err := p.parseDuration()
	if err != nil {
		return nil, err
	}
	pat.Window = w
	if p.tok.kind != tokEOF {
		return nil, p.lex.errorf(p.tok.pos, "unexpected trailing input %s", p.tok)
	}
	return pat, nil
}

func (p *parser) parseOpExpr() (*pattern.Pattern, error) {
	var op pattern.Operator
	switch {
	case keyword(p.tok, "SEQ"):
		op = pattern.OpSeq
	case keyword(p.tok, "AND"):
		op = pattern.OpAnd
	case keyword(p.tok, "OR"):
		op = pattern.OpOr
	default:
		return nil, p.lex.errorf(p.tok.pos, "expected SEQ, AND or OR, got %s", p.tok)
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLParen, "'('"); err != nil {
		return nil, err
	}
	var terms []pattern.Term
	for {
		t, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		terms = append(terms, t)
		if p.tok.kind == tokComma {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		break
	}
	if _, err := p.expect(tokRParen, "')'"); err != nil {
		return nil, err
	}
	return &pattern.Pattern{Op: op, Terms: terms}, nil
}

func (p *parser) parseTerm() (pattern.Term, error) {
	switch {
	case keyword(p.tok, "NOT"), keyword(p.tok, "KL"):
		isNot := keyword(p.tok, "NOT")
		if err := p.advance(); err != nil {
			return pattern.Term{}, err
		}
		if _, err := p.expect(tokLParen, "'('"); err != nil {
			return pattern.Term{}, err
		}
		spec, err := p.parseEventDecl()
		if err != nil {
			return pattern.Term{}, err
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return pattern.Term{}, err
		}
		spec.Negated = isNot
		spec.Kleene = !isNot
		return pattern.Term{Event: spec}, nil
	case keyword(p.tok, "SEQ"), keyword(p.tok, "AND"), keyword(p.tok, "OR"):
		sub, err := p.parseOpExpr()
		if err != nil {
			return pattern.Term{}, err
		}
		return pattern.Term{Sub: sub}, nil
	default:
		spec, err := p.parseEventDecl()
		if err != nil {
			return pattern.Term{}, err
		}
		return pattern.Term{Event: spec}, nil
	}
}

func (p *parser) parseEventDecl() (*pattern.EventSpec, error) {
	typ, err := p.expect(tokIdent, "event type")
	if err != nil {
		return nil, err
	}
	alias, err := p.expect(tokIdent, "event alias")
	if err != nil {
		return nil, err
	}
	return &pattern.EventSpec{Type: typ.text, Alias: alias.text}, nil
}

// parseConds parses `cond (AND cond)*`, optionally wrapped in parentheses as
// in the paper's listings.
func (p *parser) parseConds() ([]pattern.Condition, error) {
	wrapped := false
	if p.tok.kind == tokLParen {
		wrapped = true
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	var conds []pattern.Condition
	for {
		c, err := p.parseCond()
		if err != nil {
			return nil, err
		}
		conds = append(conds, c)
		if keyword(p.tok, "AND") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		break
	}
	if wrapped {
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
	}
	return conds, nil
}

func (p *parser) parseCond() (pattern.Condition, error) {
	left, err := p.parseOperand()
	if err != nil {
		return pattern.Condition{}, err
	}
	opTok, err := p.expect(tokCmp, "comparison operator")
	if err != nil {
		return pattern.Condition{}, err
	}
	var op pattern.CmpOp
	switch opTok.text {
	case "<":
		op = pattern.Lt
	case "<=":
		op = pattern.Le
	case "=", "==":
		op = pattern.Eq
	case "!=":
		op = pattern.Ne
	case ">=":
		op = pattern.Ge
	case ">":
		op = pattern.Gt
	default:
		return pattern.Condition{}, p.lex.errorf(opTok.pos, "unknown comparison %q", opTok.text)
	}
	right, err := p.parseOperand()
	if err != nil {
		return pattern.Condition{}, err
	}
	return pattern.Condition{Left: left, Op: op, Right: right}, nil
}

func (p *parser) parseOperand() (pattern.Operand, error) {
	if p.tok.kind == tokNumber {
		v := p.tok.num
		if err := p.advance(); err != nil {
			return pattern.Operand{}, err
		}
		return pattern.Const(v), nil
	}
	alias, err := p.expect(tokIdent, "alias or number")
	if err != nil {
		return pattern.Operand{}, err
	}
	if _, err := p.expect(tokDot, "'.'"); err != nil {
		return pattern.Operand{}, err
	}
	attr, err := p.expect(tokIdent, "attribute name")
	if err != nil {
		return pattern.Operand{}, err
	}
	return pattern.Ref(alias.text, attr.text), nil
}

func (p *parser) parseDuration() (event.Time, error) {
	num, err := p.expect(tokNumber, "duration value")
	if err != nil {
		return 0, err
	}
	unitTok, err := p.expect(tokIdent, "duration unit")
	if err != nil {
		return 0, err
	}
	var unit event.Time
	switch strings.ToLower(unitTok.text) {
	case "ms", "millisecond", "milliseconds":
		unit = event.Millisecond
	case "s", "sec", "secs", "second", "seconds":
		unit = event.Second
	case "m", "min", "mins", "minute", "minutes":
		unit = event.Minute
	case "h", "hour", "hours":
		unit = 60 * event.Minute
	default:
		return 0, p.lex.errorf(unitTok.pos, "unknown duration unit %q", unitTok.text)
	}
	if num.num <= 0 {
		return 0, p.lex.errorf(num.pos, "duration must be positive")
	}
	return event.Time(num.num * float64(unit)), nil
}
