package parser

import (
	"strings"
	"testing"

	"repro/internal/event"
	"repro/internal/pattern"
)

func TestParseFourCamerasPattern(t *testing.T) {
	// The paper's running example (Section 2.1).
	src := `PATTERN SEQ (A a, B b, C c, D d)
	        WHERE (a.vehicleID = b.vehicleID AND b.vehicleID = c.vehicleID AND c.vehicleID = d.vehicleID)
	        WITHIN 10 minutes`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if p.Op != pattern.OpSeq || len(p.Terms) != 4 {
		t.Fatalf("pattern = %v", p)
	}
	if p.Window != 10*event.Minute {
		t.Fatalf("window = %d", p.Window)
	}
	if len(p.Conds) != 3 {
		t.Fatalf("conds = %v", p.Conds)
	}
	if p.Conds[0].String() != "a.vehicleID = b.vehicleID" {
		t.Fatalf("cond = %q", p.Conds[0])
	}
}

func TestParseNestedPattern(t *testing.T) {
	// The paper's nested example: AND(A, NOT(B), OR(C, D)).
	src := `PATTERN AND (A a, NOT(B b), OR(C c, D d)) WITHIN 10 seconds`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if p.Op != pattern.OpAnd || len(p.Terms) != 3 {
		t.Fatalf("pattern = %v", p)
	}
	if !p.Terms[1].Event.Negated {
		t.Fatal("NOT lost")
	}
	sub := p.Terms[2].Sub
	if sub == nil || sub.Op != pattern.OpOr || len(sub.Terms) != 2 {
		t.Fatalf("subpattern = %v", sub)
	}
	if p.Window != 10*event.Second {
		t.Fatalf("window = %d", p.Window)
	}
}

func TestParseKleene(t *testing.T) {
	src := `PATTERN AND(A a, KL(B b), C c) WITHIN 10 seconds`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Terms[1].Event.Kleene {
		t.Fatal("KL lost")
	}
}

func TestParseStockPattern(t *testing.T) {
	// A pattern in the shape of the paper's evaluation workload (§7.2).
	src := `PATTERN AND(MSFT_Stock m, GOOG_Stock g, INTC_Stock i)
	        WHERE (m.difference < g.difference)
	        WITHIN 20 minutes`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if p.Terms[0].Event.Type != "MSFT_Stock" || p.Terms[0].Event.Alias != "m" {
		t.Fatalf("term0 = %v", p.Terms[0])
	}
	if p.Window != 20*event.Minute {
		t.Fatalf("window = %d", p.Window)
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	src := `pattern seq(A a, B b) where a.x < b.x within 5 s`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if p.Op != pattern.OpSeq || len(p.Conds) != 1 || p.Window != 5*event.Second {
		t.Fatalf("pattern = %v", p)
	}
}

func TestParseConstantAndOperators(t *testing.T) {
	src := `PATTERN SEQ(A a, B b)
	        WHERE a.x <= -2.5 AND a.y != b.y AND b.x >= 3 AND a.x > 0 AND 1 < b.y
	        WITHIN 100 ms`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Conds) != 5 {
		t.Fatalf("conds = %v", p.Conds)
	}
	if p.Conds[0].Op != pattern.Le || p.Conds[0].Right.Const != -2.5 {
		t.Fatalf("cond0 = %v", p.Conds[0])
	}
	if p.Conds[1].Op != pattern.Ne || p.Conds[2].Op != pattern.Ge || p.Conds[3].Op != pattern.Gt {
		t.Fatalf("ops = %v", p.Conds)
	}
	if !p.Conds[4].Left.IsConst() {
		t.Fatalf("cond4 = %v", p.Conds[4])
	}
	if p.Window != 100 {
		t.Fatalf("window = %d", p.Window)
	}
}

func TestParseDurationUnits(t *testing.T) {
	cases := map[string]event.Time{
		"250 ms":    250,
		"3 seconds": 3 * event.Second,
		"2 min":     2 * event.Minute,
		"1 h":       60 * event.Minute,
		"0.5 s":     500,
	}
	for src, want := range cases {
		p, err := Parse("PATTERN SEQ(A a, B b) WITHIN " + src)
		if err != nil {
			t.Errorf("%q: %v", src, err)
			continue
		}
		if p.Window != want {
			t.Errorf("%q: window = %d, want %d", src, p.Window, want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"", `expected "PATTERN"`},
		{"PATTERN FOO(A a) WITHIN 1 s", "expected SEQ, AND or OR"},
		{"PATTERN SEQ(A a, B b)", `expected "WITHIN"`},
		{"PATTERN SEQ(A a B b) WITHIN 1 s", "expected ')'"},
		{"PATTERN SEQ(A a, B b) WITHIN 1 parsec", "unknown duration unit"},
		{"PATTERN SEQ(A a, B b) WITHIN -1 s", "must be positive"},
		{"PATTERN SEQ(A a, B b) WHERE a.x ~ b.x WITHIN 1 s", "unexpected character"},
		{"PATTERN SEQ(A a, B b) WHERE a.x < WITHIN 1 s", "expected '.'"},
		{"PATTERN SEQ(A a, B b) WHERE a.x < ) WITHIN 1 s", "expected alias or number"},
		{"PATTERN SEQ(A a, A a) WITHIN 1 s", "duplicate alias"},
		{"PATTERN SEQ(A a) WITHIN 1 s trailing", "unexpected trailing"},
		{"PATTERN SEQ(NOT(A a)) WITHIN 1 s", "no positive"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("%q: expected error", c.src)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%q: error %q does not contain %q", c.src, err, c.want)
		}
	}
}

func TestParseWithRegistry(t *testing.T) {
	reg := event.NewRegistry(event.NewSchema("A", "x"), event.NewSchema("B", "x"))
	if _, err := ParseWith("PATTERN SEQ(A a, B b) WHERE a.x < b.x WITHIN 1 s", reg); err != nil {
		t.Fatalf("valid pattern rejected: %v", err)
	}
	if _, err := ParseWith("PATTERN SEQ(A a, Z z) WITHIN 1 s", reg); err == nil {
		t.Fatal("unknown type accepted")
	}
	if _, err := ParseWith("PATTERN SEQ(A a, B b) WHERE a.zzz < b.x WITHIN 1 s", reg); err == nil {
		t.Fatal("unknown attribute accepted")
	}
	// Pseudo-attributes are always allowed.
	if _, err := ParseWith("PATTERN AND(A a, B b) WHERE a.ts < b.ts WITHIN 1 s", reg); err != nil {
		t.Fatalf("pseudo-attribute rejected: %v", err)
	}
}

func TestParseRoundTripThroughString(t *testing.T) {
	src := `PATTERN SEQ(A a, NOT(B b), KL(C c)) WHERE a.x < c.x WITHIN 2 s`
	p1, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	// Pattern.String() emits WITHIN in ms; reparse and compare structure.
	p2, err := Parse("PATTERN " + p1.String())
	if err != nil {
		t.Fatalf("reparse of %q: %v", p1.String(), err)
	}
	if p1.String() != p2.String() {
		t.Fatalf("round trip mismatch:\n%s\n%s", p1, p2)
	}
}

func TestParseDeeplyNested(t *testing.T) {
	src := `PATTERN OR(SEQ(A a, B b), SEQ(C c, D d), AND(E e, OR(F f, G g))) WITHIN 1 m`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if p.Size() != 7 {
		t.Fatalf("size = %d", p.Size())
	}
	ds, err := pattern.ToDNF(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 4 { // seq(a,b) ∪ seq(c,d) ∪ and(e,f) ∪ and(e,g)
		t.Fatalf("DNF size = %d", len(ds))
	}
}
