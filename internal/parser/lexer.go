// Package parser implements the SASE-style declarative pattern syntax used
// throughout the paper:
//
//	PATTERN SEQ(A a, NOT(B b), KL(C c), OR(D d, E e))
//	WHERE (a.x < c.x AND c.y = d.y)
//	WITHIN 20 minutes
//
// Keywords are case-insensitive. WHERE clauses are CNF conjunctions of
// at-most-pairwise comparison predicates, as in the paper.
package parser

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokLParen
	tokRParen
	tokComma
	tokDot
	tokCmp // one of < <= = == != >= >
)

type token struct {
	kind tokenKind
	text string
	num  float64
	pos  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	case tokNumber:
		return fmt.Sprintf("number %g", t.num)
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

type lexer struct {
	src string
	pos int
}

// Error is a parse error with the byte offset at which it occurred.
type Error struct {
	Pos int
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("parse error at offset %d: %s", e.Pos, e.Msg) }

func (l *lexer) errorf(pos int, format string, args ...interface{}) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) && unicode.IsSpace(rune(l.src[l.pos])) {
		l.pos++
	}
}

func (l *lexer) next() (token, error) {
	l.skipSpace()
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: l.pos}, nil
	}
	start := l.pos
	ch := l.src[l.pos]
	switch {
	case ch == '(':
		l.pos++
		return token{kind: tokLParen, text: "(", pos: start}, nil
	case ch == ')':
		l.pos++
		return token{kind: tokRParen, text: ")", pos: start}, nil
	case ch == ',':
		l.pos++
		return token{kind: tokComma, text: ",", pos: start}, nil
	case ch == '.' && (l.pos+1 >= len(l.src) || !isDigit(l.src[l.pos+1])):
		l.pos++
		return token{kind: tokDot, text: ".", pos: start}, nil
	case ch == '<' || ch == '>' || ch == '=' || ch == '!':
		l.pos++
		text := string(ch)
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			text += "="
			l.pos++
		}
		if text == "!" {
			return token{}, l.errorf(start, "unexpected character %q", ch)
		}
		return token{kind: tokCmp, text: text, pos: start}, nil
	case isDigit(ch) || ch == '-' || ch == '+' || ch == '.':
		end := l.pos
		if ch == '-' || ch == '+' {
			end++
		}
		seenDot := false
		for end < len(l.src) && (isDigit(l.src[end]) || (l.src[end] == '.' && !seenDot)) {
			if l.src[end] == '.' {
				seenDot = true
			}
			end++
		}
		text := l.src[start:end]
		num, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return token{}, l.errorf(start, "invalid number %q", text)
		}
		l.pos = end
		return token{kind: tokNumber, text: text, num: num, pos: start}, nil
	case isIdentStart(ch):
		end := l.pos
		for end < len(l.src) && isIdentPart(l.src[end]) {
			end++
		}
		text := l.src[start:end]
		l.pos = end
		return token{kind: tokIdent, text: text, pos: start}, nil
	}
	return token{}, l.errorf(start, "unexpected character %q", ch)
}

func isDigit(c byte) bool      { return c >= '0' && c <= '9' }
func isIdentStart(c byte) bool { return c == '_' || unicode.IsLetter(rune(c)) }
func isIdentPart(c byte) bool  { return isIdentStart(c) || isDigit(c) }

// keyword reports whether an identifier token equals the keyword,
// case-insensitively.
func keyword(t token, kw string) bool {
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}
