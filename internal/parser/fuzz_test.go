package parser

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestParseNeverPanics property-checks the parser against arbitrary byte
// soup: any input must yield a pattern or an error, never a panic.
func TestParseNeverPanics(t *testing.T) {
	f := func(src string) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("parser panicked on %q: %v", src, r)
			}
		}()
		_, _ = Parse(src)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestParseNeverPanicsOnKeywordSoup stresses inputs built from the
// grammar's own tokens, which reach deeper parser states than random bytes.
func TestParseNeverPanicsOnKeywordSoup(t *testing.T) {
	tokens := []string{
		"PATTERN", "SEQ", "AND", "OR", "NOT", "KL", "WHERE", "WITHIN",
		"(", ")", ",", ".", "<", "<=", "=", "!=", ">", ">=",
		"A", "a", "x", "1", "2.5", "-3", "s", "ms", "minutes",
	}
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 5000; trial++ {
		n := 1 + rng.Intn(20)
		src := ""
		for i := 0; i < n; i++ {
			src += tokens[rng.Intn(len(tokens))] + " "
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("parser panicked on %q: %v", src, r)
				}
			}()
			_, _ = Parse(src)
		}()
	}
}
