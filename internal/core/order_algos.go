package core

import (
	"math"
	"math/rand"
	"sort"

	"repro/internal/cost"
	"repro/internal/stats"
)

// Trivial returns the pattern's declaration order — the strategy of
// NFA engines without reordering support (SASE, Cayuga).
type Trivial struct{}

// Name implements OrderAlgorithm.
func (Trivial) Name() string { return AlgTrivial }

// Order implements OrderAlgorithm.
func (Trivial) Order(ps *stats.PatternStats, _ cost.Model) []int {
	order := make([]int, ps.N())
	for i := range order {
		order[i] = i
	}
	return order
}

// EFreq orders events by ascending arrival frequency — the native CPG
// heuristic of PB-CED and the lazy NFA [6, 29]. It ignores predicate
// selectivities, which is exactly the weakness the paper exposes.
type EFreq struct{}

// Name implements OrderAlgorithm.
func (EFreq) Name() string { return AlgEFreq }

// Order implements OrderAlgorithm.
func (EFreq) Order(ps *stats.PatternStats, _ cost.Model) []int {
	order := make([]int, ps.N())
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return ps.Rates[order[a]] < ps.Rates[order[b]]
	})
	return order
}

// Greedy is the greedy cost-based JQPG heuristic [47]: at every step it
// appends the position that minimises the cost-function increment given the
// prefix chosen so far.
type Greedy struct{}

// Name implements OrderAlgorithm.
func (Greedy) Name() string { return AlgGreedy }

// Order implements OrderAlgorithm.
func (Greedy) Order(ps *stats.PatternStats, m cost.Model) []int {
	n := ps.N()
	order := make([]int, 0, n)
	var mask uint64
	st := m.InitState()
	for len(order) < n {
		best := -1
		bestDelta := math.Inf(1)
		var bestState cost.StepState
		for pos := 0; pos < n; pos++ {
			if mask&(1<<uint(pos)) != 0 {
				continue
			}
			nst, delta := m.Extend(ps, st, pos, cost.CrossSel(ps, mask, pos))
			if delta < bestDelta {
				best, bestDelta, bestState = pos, delta, nst
			}
		}
		order = append(order, best)
		mask |= 1 << uint(best)
		st = bestState
	}
	return order
}

// DefaultIIRestarts is the number of random restarts used by II-RANDOM.
const DefaultIIRestarts = 8

// II is the iterative-improvement local search of [47]: starting from an
// initial order it repeatedly applies the best improving swap or 3-cycle
// move until a local minimum is reached.
type II struct {
	name     string
	greedy   bool // greedy initial state (II-GREEDY) vs random (II-RANDOM)
	restarts int
	seed     int64
}

// NewIIRandom builds II-RANDOM with the given restart count and RNG seed.
func NewIIRandom(restarts int, seed int64) II {
	if restarts < 1 {
		restarts = 1
	}
	return II{name: AlgIIRandom, restarts: restarts, seed: seed}
}

// NewIIGreedy builds II-GREEDY: a single descent from the greedy order.
func NewIIGreedy() II {
	return II{name: AlgIIGreedy, greedy: true, restarts: 1}
}

// Name implements OrderAlgorithm.
func (ii II) Name() string { return ii.name }

// Order implements OrderAlgorithm.
func (ii II) Order(ps *stats.PatternStats, m cost.Model) []int {
	n := ps.N()
	rng := rand.New(rand.NewSource(ii.seed))
	var best []int
	bestCost := math.Inf(1)
	for r := 0; r < ii.restarts; r++ {
		var cur []int
		if ii.greedy {
			cur = Greedy{}.Order(ps, m)
		} else {
			cur = rng.Perm(n)
		}
		curCost := m.OrderCost(ps, cur)
		cur, curCost = descend(ps, m, cur, curCost)
		if curCost < bestCost {
			bestCost = curCost
			best = cur
		}
	}
	return best
}

// descend applies best-improvement local search with swap and cycle moves
// until no move improves the cost.
func descend(ps *stats.PatternStats, m cost.Model, order []int, curCost float64) ([]int, float64) {
	n := len(order)
	cur := append([]int(nil), order...)
	for {
		bestI, bestJ, bestK := -1, -1, -1
		bestCost := curCost
		// Swap moves.
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				cur[i], cur[j] = cur[j], cur[i]
				if c := m.OrderCost(ps, cur); c < bestCost {
					bestCost, bestI, bestJ, bestK = c, i, j, -1
				}
				cur[i], cur[j] = cur[j], cur[i]
			}
		}
		// Cycle moves: rotate three positions (both directions are covered
		// by enumerating ordered triples i<j<k with two rotations).
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				for k := j + 1; k < n; k++ {
					// Rotation 1: i←j, j←k, k←i.
					cur[i], cur[j], cur[k] = cur[j], cur[k], cur[i]
					if c := m.OrderCost(ps, cur); c < bestCost {
						bestCost, bestI, bestJ, bestK = c, i, j, k
					}
					// Rotation 2 (undo rotation 1 twice = other direction).
					cur[i], cur[j], cur[k] = cur[j], cur[k], cur[i]
					if c := m.OrderCost(ps, cur); c < bestCost {
						bestCost, bestI, bestJ, bestK = c, j, i, k // marker: second rotation
					}
					// Restore.
					cur[i], cur[j], cur[k] = cur[j], cur[k], cur[i]
				}
			}
		}
		if bestI < 0 {
			return cur, curCost
		}
		applyMove(cur, bestI, bestJ, bestK)
		curCost = bestCost
	}
}

// applyMove replays the winning move recorded by descend.
func applyMove(cur []int, i, j, k int) {
	if k < 0 {
		cur[i], cur[j] = cur[j], cur[i]
		return
	}
	if i < j {
		// Rotation 1 with canonical (i<j<k).
		cur[i], cur[j], cur[k] = cur[j], cur[k], cur[i]
		return
	}
	// Marker encoding (j,i,k) means rotation applied twice.
	i, j = j, i
	cur[i], cur[j], cur[k] = cur[j], cur[k], cur[i]
	cur[i], cur[j], cur[k] = cur[j], cur[k], cur[i]
}

// MaxDPPositions bounds the subset dynamic programs; beyond it the DP
// tables (2^n states) stop being practical, which is precisely the paper's
// Fig 17b observation.
const MaxDPPositions = 26

// DPLD is Selinger-style dynamic programming over left-deep plans [45]:
// provably optimal among all orders, exponential in pattern size. Cross
// products are permitted, as required for CPG (Section 4.3).
type DPLD struct{}

// Name implements OrderAlgorithm.
func (DPLD) Name() string { return AlgDPLD }

// Order implements OrderAlgorithm.
func (DPLD) Order(ps *stats.PatternStats, m cost.Model) []int {
	n := ps.N()
	if n > MaxDPPositions {
		panic("core: DP-LD beyond MaxDPPositions; use a heuristic algorithm")
	}
	if n == 0 {
		return nil
	}
	size := 1 << uint(n)
	dp := make([]float64, size)
	states := make([]cost.StepState, size)
	parent := make([]int8, size)
	for i := range dp {
		dp[i] = math.Inf(1)
	}
	dp[0] = 0
	states[0] = m.InitState()
	for mask := 1; mask < size; mask++ {
		for pos := 0; pos < n; pos++ {
			bit := 1 << uint(pos)
			if mask&bit == 0 {
				continue
			}
			prev := mask ^ bit
			if math.IsInf(dp[prev], 1) {
				continue
			}
			nst, delta := m.Extend(ps, states[prev], pos, cost.CrossSel(ps, uint64(prev), pos))
			if c := dp[prev] + delta; c < dp[mask] {
				dp[mask] = c
				states[mask] = nst
				parent[mask] = int8(pos)
			}
		}
	}
	order := make([]int, n)
	mask := size - 1
	for k := n - 1; k >= 0; k-- {
		pos := int(parent[mask])
		order[k] = pos
		mask ^= 1 << uint(pos)
	}
	return order
}
