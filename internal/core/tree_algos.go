package core

import (
	"math"

	"repro/internal/cost"
	"repro/internal/plan"
	"repro/internal/predicate"
	"repro/internal/stats"
)

// setPM computes the partial-match count PM(N) of a tree node covering
// exactly the given member positions. It is independent of the subtree's
// internal shape for both throughput families, which is what makes the
// interval and subset dynamic programs below sound.
func setPM(ps *stats.PatternStats, m cost.Model, members []int) float64 {
	if m.Strategy == predicate.SkipTillAnyMatch {
		pm := 1.0
		for a, i := range members {
			pm *= ps.W * ps.Rates[i] * ps.Sel[i][i]
			for _, j := range members[a+1:] {
				pm *= ps.Sel[i][j]
			}
		}
		return pm
	}
	minR := math.Inf(1)
	sel := 1.0
	for a, i := range members {
		minR = math.Min(minR, ps.Rates[i])
		sel *= ps.Sel[i][i]
		for _, j := range members[a+1:] {
			sel *= ps.Sel[i][j]
		}
	}
	return ps.W * minR * sel
}

// ZStream reproduces the native tree-plan generation of [35]: dynamic
// programming over all tree topologies for a *fixed* left-to-right leaf
// sequence. Because leaves are never reordered, it explores only a slice of
// the bushy plan space — the limitation Section 2.3 illustrates.
type ZStream struct {
	// LeafOrder fixes the leaf sequence; the pattern's declaration order is
	// used when nil.
	LeafOrder []int
}

// Name implements TreeAlgorithm.
func (z ZStream) Name() string { return AlgZStream }

// Tree implements TreeAlgorithm.
func (z ZStream) Tree(ps *stats.PatternStats, m cost.Model) *plan.TreeNode {
	n := ps.N()
	if n == 0 {
		return nil
	}
	leaves := z.LeafOrder
	if leaves == nil {
		leaves = make([]int, n)
		for i := range leaves {
			leaves[i] = i
		}
	}
	// pm[i][j] is the node PM of the span leaves[i..j]; dp[i][j] the best
	// subtree cost; split[i][j] the winning split point.
	pm := make([][]float64, n)
	dp := make([][]float64, n)
	split := make([][]int, n)
	for i := 0; i < n; i++ {
		pm[i] = make([]float64, n)
		dp[i] = make([]float64, n)
		split[i] = make([]int, n)
		pm[i][i] = setPM(ps, m, leaves[i:i+1])
		dp[i][i] = pm[i][i]
	}
	hasLast := func(i, j int) bool {
		if m.LastPos < 0 {
			return false
		}
		for _, p := range leaves[i : j+1] {
			if p == m.LastPos {
				return true
			}
		}
		return false
	}
	for length := 2; length <= n; length++ {
		for i := 0; i+length-1 < n; i++ {
			j := i + length - 1
			pm[i][j] = setPM(ps, m, leaves[i:j+1])
			best := math.Inf(1)
			bestK := i
			for k := i; k < j; k++ {
				c := dp[i][k] + dp[k+1][j] + pm[i][j]
				if m.Alpha != 0 {
					// The temporally last event's climb compares against
					// the sibling subtree's buffered matches (Section 6.1).
					if hasLast(i, k) {
						c += m.Alpha * pm[k+1][j]
					} else if hasLast(k+1, j) {
						c += m.Alpha * pm[i][k]
					}
				}
				if c < best {
					best, bestK = c, k
				}
			}
			dp[i][j] = best
			split[i][j] = bestK
		}
	}
	var build func(i, j int) *plan.TreeNode
	build = func(i, j int) *plan.TreeNode {
		if i == j {
			return plan.LeafNode(leaves[i])
		}
		k := split[i][j]
		return plan.Join(build(i, k), build(k+1, j))
	}
	return build(0, n-1)
}

// ZStreamOrd is the paper's hybrid (Section 7.1): a greedy JQPG ordering of
// the leaves followed by the ZStream topology search — recovering the plans
// the fixed leaf order hides from native ZStream.
type ZStreamOrd struct{}

// Name implements TreeAlgorithm.
func (ZStreamOrd) Name() string { return AlgZStreamOrd }

// Tree implements TreeAlgorithm.
func (ZStreamOrd) Tree(ps *stats.PatternStats, m cost.Model) *plan.TreeNode {
	order := Greedy{}.Order(ps, m)
	return ZStream{LeafOrder: order}.Tree(ps, m)
}

// DPB is Selinger-style dynamic programming over the full bushy plan space
// [45]: optimal among all trees, with O(3^n) subset enumeration.
type DPB struct{}

// Name implements TreeAlgorithm.
func (DPB) Name() string { return AlgDPB }

// Tree implements TreeAlgorithm.
func (DPB) Tree(ps *stats.PatternStats, m cost.Model) *plan.TreeNode {
	n := ps.N()
	if n > MaxDPPositions {
		panic("core: DP-B beyond MaxDPPositions; use a heuristic algorithm")
	}
	if n == 0 {
		return nil
	}
	size := 1 << uint(n)
	// Node PM per member set, computed incrementally from the set minus its
	// lowest bit.
	pmSet := make([]float64, size)
	minR := []float64(nil)
	selProd := []float64(nil)
	anyMatch := m.Strategy == predicate.SkipTillAnyMatch
	if !anyMatch {
		minR = make([]float64, size)
		selProd = make([]float64, size)
		minR[0] = math.Inf(1)
		selProd[0] = 1
	}
	pmSet[0] = 1
	for mask := 1; mask < size; mask++ {
		lb := mask & -mask
		pos := bitPos(lb)
		prev := mask ^ lb
		cross := cost.CrossSel(ps, uint64(prev), pos)
		if anyMatch {
			base := pmSet[prev]
			if prev == 0 {
				base = 1
			}
			pmSet[mask] = base * ps.W * ps.Rates[pos] * ps.Sel[pos][pos] * cross
		} else {
			selProd[mask] = selProd[prev] * ps.Sel[pos][pos] * cross
			minR[mask] = math.Min(minR[prev], ps.Rates[pos])
			pmSet[mask] = ps.W * minR[mask] * selProd[mask]
		}
	}
	dp := make([]float64, size)
	split := make([]uint32, size)
	for i := range dp {
		dp[i] = math.Inf(1)
	}
	for pos := 0; pos < n; pos++ {
		dp[1<<uint(pos)] = pmSet[1<<uint(pos)]
	}
	var lastBit int
	if m.LastPos >= 0 {
		lastBit = 1 << uint(m.LastPos)
	}
	for mask := 1; mask < size; mask++ {
		if mask&(mask-1) == 0 {
			continue // singleton
		}
		node := pmSet[mask]
		lb := mask & -mask
		// Enumerate submasks containing the lowest bit (canonical left side)
		// to halve the symmetric space.
		for sub := (mask - 1) & mask; sub > 0; sub = (sub - 1) & mask {
			if sub&lb == 0 {
				continue
			}
			rest := mask ^ sub
			if rest == 0 {
				continue
			}
			c := dp[sub] + dp[rest] + node
			if m.Alpha != 0 && lastBit != 0 && mask&lastBit != 0 {
				if sub&lastBit != 0 {
					c += m.Alpha * pmSet[rest]
				} else {
					c += m.Alpha * pmSet[sub]
				}
			}
			if c < dp[mask] {
				dp[mask] = c
				split[mask] = uint32(sub)
			}
		}
	}
	var build func(mask int) *plan.TreeNode
	build = func(mask int) *plan.TreeNode {
		if mask&(mask-1) == 0 {
			return plan.LeafNode(bitPos(mask))
		}
		sub := int(split[mask])
		return plan.Join(build(sub), build(mask^sub))
	}
	return build(size - 1)
}

// bitPos returns the index of the single set bit.
func bitPos(bit int) int {
	pos := 0
	for bit > 1 {
		bit >>= 1
		pos++
	}
	return pos
}
