package core

import (
	"math"
	"math/rand"

	"repro/internal/cost"
	"repro/internal/graph"
	"repro/internal/stats"
)

// Extension algorithms beyond the paper's evaluated set: simulated
// annealing (the randomized JQPG family surveyed in the paper's related
// work [26, 46]) and a topology-aware automatic selector exploiting the
// Section 4.3 observations.
const (
	// AlgSimAnneal is simulated annealing over the order space with the
	// same swap/cycle moves as iterative improvement.
	AlgSimAnneal = "SIM-ANNEAL"
	// AlgAuto picks an algorithm from the query-graph topology and size:
	// exhaustive DP when affordable, KBZ on acyclic graphs, iterative
	// improvement otherwise.
	AlgAuto = "AUTO"
)

// ExtendedOrderAlgorithmNames lists the order algorithms beyond the paper's
// evaluated six.
func ExtendedOrderAlgorithmNames() []string { return []string{AlgKBZ, AlgSimAnneal, AlgAuto} }

// SimAnneal is simulated annealing over evaluation orders [26]: random
// swap/3-cycle moves accepted when improving, or with probability
// exp(−Δ/T) otherwise, under a geometric cooling schedule. Deterministic in
// Seed.
type SimAnneal struct {
	Seed int64
	// Steps per temperature level; default 30·n.
	StepsPerLevel int
	// Levels of the cooling schedule; default 40.
	Levels int
	// Cooling factor per level; default 0.85.
	Cooling float64
}

// NewSimAnneal returns an annealer with the default schedule.
func NewSimAnneal(seed int64) SimAnneal { return SimAnneal{Seed: seed} }

// Name implements OrderAlgorithm.
func (SimAnneal) Name() string { return AlgSimAnneal }

// Order implements OrderAlgorithm.
func (sa SimAnneal) Order(ps *stats.PatternStats, m cost.Model) []int {
	n := ps.N()
	if n <= 1 {
		return Trivial{}.Order(ps, m)
	}
	steps := sa.StepsPerLevel
	if steps <= 0 {
		steps = 30 * n
	}
	levels := sa.Levels
	if levels <= 0 {
		levels = 40
	}
	cooling := sa.Cooling
	if cooling <= 0 || cooling >= 1 {
		cooling = 0.85
	}
	rng := rand.New(rand.NewSource(sa.Seed + 1))
	cur := Greedy{}.Order(ps, m)
	curCost := m.OrderCost(ps, cur)
	best := append([]int(nil), cur...)
	bestCost := curCost
	// Initial temperature proportional to the starting cost so acceptance
	// probabilities are scale-free.
	temp := curCost * 0.5
	if temp <= 0 {
		temp = 1
	}
	for level := 0; level < levels; level++ {
		for s := 0; s < steps; s++ {
			next := append([]int(nil), cur...)
			if n >= 3 && rng.Intn(2) == 0 {
				i, j, k := rng.Intn(n), rng.Intn(n), rng.Intn(n)
				if i != j && j != k && i != k {
					next[i], next[j], next[k] = next[j], next[k], next[i]
				}
			} else {
				i, j := rng.Intn(n), rng.Intn(n)
				next[i], next[j] = next[j], next[i]
			}
			nextCost := m.OrderCost(ps, next)
			delta := nextCost - curCost
			if delta <= 0 || rng.Float64() < math.Exp(-delta/temp) {
				cur, curCost = next, nextCost
				if curCost < bestCost {
					best = append(best[:0], cur...)
					bestCost = curCost
				}
			}
		}
		temp *= cooling
	}
	return best
}

// Auto selects a planner from the problem shape, per Section 4.3: small
// instances afford the exhaustive DP; acyclic query graphs admit the
// polynomial KBZ (compared against a greedy descent, since KBZ forgoes
// cross products and those can win — the paper's caveat from [38]); the
// rest get iterative improvement.
type Auto struct {
	// MaxDP is the largest size planned exhaustively; default 12.
	MaxDP int
}

// Name implements OrderAlgorithm.
func (Auto) Name() string { return AlgAuto }

// Order implements OrderAlgorithm.
func (a Auto) Order(ps *stats.PatternStats, m cost.Model) []int {
	maxDP := a.MaxDP
	if maxDP <= 0 {
		maxDP = 12
	}
	n := ps.N()
	if n <= maxDP {
		return DPLD{}.Order(ps, m)
	}
	g := graph.FromStats(ps)
	if g.IsConnected() && g.IsAcyclic() {
		kbz := KBZ{}.Order(ps, m)
		ii := NewIIGreedy().Order(ps, m)
		if m.OrderCost(ps, kbz) <= m.OrderCost(ps, ii) {
			return kbz
		}
		return ii
	}
	return NewIIGreedy().Order(ps, m)
}
