// Package core implements the paper's primary contribution: CEP plan
// generation via join-query optimisation. It provides the five order-based
// and three tree-based plan-generation algorithms evaluated in Section 7.1 —
//
//	order-based: TRIVIAL, EFREQ, GREEDY, II-RANDOM, II-GREEDY, DP-LD
//	tree-based:  ZSTREAM, ZSTREAM-ORD, DP-B
//
// — together with the end-to-end planner that lowers an arbitrary pattern
// (nested operators, negation, Kleene closure) into per-disjunct execution
// plans, applying the transformations of Section 5 and the CEP-specific
// adaptations of Section 6 (latency-hybrid cost, selection-strategy-aware
// cost models).
//
// All algorithms optimise a cost.Model, so a single implementation serves
// the throughput-only, hybrid-latency and skip-till-next variants. The
// GREEDY and II algorithms follow Swami's heuristics [47]; DP-LD and DP-B
// follow Selinger-style dynamic programming [45]; ZSTREAM follows Mei &
// Madden's fixed-leaf-order tree search [35].
package core

import (
	"fmt"

	"repro/internal/cost"
	"repro/internal/plan"
	"repro/internal/stats"
)

// OrderAlgorithm generates an order-based plan over planning positions
// 0..n-1 of the given pattern statistics.
type OrderAlgorithm interface {
	Name() string
	Order(ps *stats.PatternStats, m cost.Model) []int
}

// TreeAlgorithm generates a tree-based plan over planning positions 0..n-1.
type TreeAlgorithm interface {
	Name() string
	Tree(ps *stats.PatternStats, m cost.Model) *plan.TreeNode
}

// Algorithm names as used in the paper's evaluation (Section 7.1).
const (
	AlgTrivial    = "TRIVIAL"
	AlgEFreq      = "EFREQ"
	AlgGreedy     = "GREEDY"
	AlgIIRandom   = "II-RANDOM"
	AlgIIGreedy   = "II-GREEDY"
	AlgDPLD       = "DP-LD"
	AlgZStream    = "ZSTREAM"
	AlgZStreamOrd = "ZSTREAM-ORD"
	AlgDPB        = "DP-B"
)

// OrderAlgorithmNames lists the order-based algorithms in the paper's order.
func OrderAlgorithmNames() []string {
	return []string{AlgTrivial, AlgEFreq, AlgGreedy, AlgIIRandom, AlgIIGreedy, AlgDPLD}
}

// TreeAlgorithmNames lists the tree-based algorithms in the paper's order.
func TreeAlgorithmNames() []string {
	return []string{AlgZStream, AlgZStreamOrd, AlgDPB}
}

// JoinAdapted reports whether the named algorithm is a JQPG method adapted
// to CEP (as opposed to a native CPG technique) per Section 7.1.
func JoinAdapted(name string) bool {
	switch name {
	case AlgGreedy, AlgIIRandom, AlgIIGreedy, AlgDPLD, AlgZStreamOrd, AlgDPB:
		return true
	}
	return false
}

// NewOrderAlgorithm constructs an order-based algorithm by name.
func NewOrderAlgorithm(name string) (OrderAlgorithm, error) {
	switch name {
	case AlgTrivial:
		return Trivial{}, nil
	case AlgEFreq:
		return EFreq{}, nil
	case AlgGreedy:
		return Greedy{}, nil
	case AlgIIRandom:
		return NewIIRandom(DefaultIIRestarts, 1), nil
	case AlgIIGreedy:
		return NewIIGreedy(), nil
	case AlgDPLD:
		return DPLD{}, nil
	case AlgKBZ:
		return KBZ{}, nil
	case AlgSimAnneal:
		return NewSimAnneal(1), nil
	case AlgAuto:
		return Auto{}, nil
	}
	return nil, fmt.Errorf("core: unknown order algorithm %q", name)
}

// NewTreeAlgorithm constructs a tree-based algorithm by name.
func NewTreeAlgorithm(name string) (TreeAlgorithm, error) {
	switch name {
	case AlgZStream:
		return ZStream{}, nil
	case AlgZStreamOrd:
		return ZStreamOrd{}, nil
	case AlgDPB:
		return DPB{}, nil
	}
	return nil, fmt.Errorf("core: unknown tree algorithm %q", name)
}
