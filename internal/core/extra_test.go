package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/cost"
	"repro/internal/plan"
)

func TestSimAnnealQuality(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	m := cost.DefaultModel()
	hits, trials := 0, 15
	for trial := 0; trial < trials; trial++ {
		n := 4 + rng.Intn(3)
		ps := randomStats(rng, n)
		order := NewSimAnneal(int64(trial)).Order(ps, m)
		if err := plan.CheckPermutation(order); err != nil {
			t.Fatal(err)
		}
		got := m.OrderCost(ps, order)
		best := math.Inf(1)
		plan.Permutations(n, func(o []int) {
			if c := m.OrderCost(ps, o); c < best {
				best = c
			}
		})
		// Annealing starts from greedy and never worsens the best-seen.
		greedy := m.OrderCost(ps, Greedy{}.Order(ps, m))
		if got > greedy*(1+1e-9) {
			t.Fatalf("annealing (%g) worse than its greedy start (%g)", got, greedy)
		}
		if almost(got, best) {
			hits++
		}
	}
	if hits < trials/2 {
		t.Fatalf("annealing reached the optimum only %d/%d times", hits, trials)
	}
}

func TestSimAnnealDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	ps := randomStats(rng, 6)
	m := cost.DefaultModel()
	a := NewSimAnneal(7).Order(ps, m)
	b := NewSimAnneal(7).Order(ps, m)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different orders")
		}
	}
}

func TestAutoPicksDPForSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	m := cost.DefaultModel()
	for trial := 0; trial < 10; trial++ {
		n := 3 + rng.Intn(4)
		ps := randomStats(rng, n)
		auto := m.OrderCost(ps, Auto{}.Order(ps, m))
		dp := m.OrderCost(ps, DPLD{}.Order(ps, m))
		if !almost(auto, dp) {
			t.Fatalf("AUTO (%g) != DP-LD (%g) on small instance", auto, dp)
		}
	}
}

func TestAutoUsesKBZOnLargeAcyclic(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	m := cost.DefaultModel()
	ps := randomTreeStats(rng, 16)
	a := Auto{MaxDP: 8}
	order := a.Order(ps, m)
	if err := plan.CheckPermutation(order); err != nil {
		t.Fatal(err)
	}
	autoCost := m.OrderCost(ps, order)
	kbzCost := m.OrderCost(ps, KBZ{}.Order(ps, m))
	iiCost := m.OrderCost(ps, NewIIGreedy().Order(ps, m))
	want := math.Min(kbzCost, iiCost)
	if !almost(autoCost, want) {
		t.Fatalf("AUTO cost %g, want min(KBZ, II) = %g", autoCost, want)
	}
}

func TestExtendedRegistry(t *testing.T) {
	for _, name := range ExtendedOrderAlgorithmNames() {
		a, err := NewOrderAlgorithm(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if a.Name() != name {
			t.Fatalf("%s: Name() = %q", name, a.Name())
		}
	}
}
