package core

import (
	"fmt"

	"repro/internal/cost"
	"repro/internal/join"
	"repro/internal/plan"
)

// This file makes the JQPG ⊆ CPG direction of Theorem 1 practical: a plain
// relational join query is converted to CEP statistics (W = max|R_i|,
// r_i = |R_i|/W) and planned with any of the CEP algorithms, whose output
// minimises Cost_LDJ / Cost_BJ exactly (the costs coincide under the
// reduction). In other words, the library doubles as a join-order
// optimiser.

// OrderQuery plans a left-deep join order for the query with the named
// order-based algorithm.
func OrderQuery(q *join.Query, algorithm string) ([]int, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	oa, err := NewOrderAlgorithm(algorithm)
	if err != nil {
		return nil, err
	}
	ps := q.ToPatternStats()
	order := oa.Order(ps, cost.DefaultModel())
	if err := plan.CheckPermutation(order); err != nil {
		return nil, fmt.Errorf("core: %s produced invalid join order: %w", algorithm, err)
	}
	return order, nil
}

// TreeQuery plans a bushy join tree for the query with the named tree-based
// algorithm.
func TreeQuery(q *join.Query, algorithm string) (*plan.TreeNode, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	ta, err := NewTreeAlgorithm(algorithm)
	if err != nil {
		return nil, err
	}
	ps := q.ToPatternStats()
	root := ta.Tree(ps, cost.DefaultModel())
	if _, err := plan.NewTree(root); err != nil {
		return nil, fmt.Errorf("core: %s produced invalid join tree: %w", algorithm, err)
	}
	return root, nil
}
