package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/cost"
	"repro/internal/graph"
	"repro/internal/plan"
	"repro/internal/stats"
)

// randomTreeStats builds PatternStats whose query graph is a random tree:
// every vertex i > 0 carries one predicate to a random earlier vertex.
func randomTreeStats(rng *rand.Rand, n int) *stats.PatternStats {
	ps := &stats.PatternStats{W: 1 + rng.Float64()*5, Rates: make([]float64, n), Sel: make([][]float64, n)}
	for i := range ps.Sel {
		ps.Sel[i] = make([]float64, n)
		for j := range ps.Sel[i] {
			ps.Sel[i][j] = 1
		}
	}
	for i := 0; i < n; i++ {
		ps.Rates[i] = 0.2 + rng.Float64()*10
		if rng.Intn(3) == 0 {
			ps.Sel[i][i] = 0.2 + rng.Float64()*0.8
		}
	}
	for i := 1; i < n; i++ {
		j := rng.Intn(i)
		s := 0.05 + rng.Float64()*0.9
		ps.Sel[i][j], ps.Sel[j][i] = s, s
	}
	return ps
}

// bestConnectedOrder exhaustively minimises the cost over orders whose every
// prefix is connected in the query graph (the cross-product-free space KBZ
// searches).
func bestConnectedOrder(ps *stats.PatternStats, m cost.Model) float64 {
	g := graph.FromStats(ps)
	n := ps.N()
	best := math.Inf(1)
	plan.Permutations(n, func(order []int) {
		for k := 1; k < n; k++ {
			connected := false
			for _, prev := range order[:k] {
				if g.HasEdge(prev, order[k]) {
					connected = true
					break
				}
			}
			if !connected {
				return
			}
		}
		if c := m.OrderCost(ps, order); c < best {
			best = c
		}
	})
	return best
}

// TestKBZOptimalOnAcyclicGraphs verifies the Section 4.3 claim: on acyclic
// query graphs, KBZ finds the optimal cross-product-free left-deep plan in
// polynomial time.
func TestKBZOptimalOnAcyclicGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	m := cost.DefaultModel()
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(6)
		ps := randomTreeStats(rng, n)
		order := KBZ{}.Order(ps, m)
		if err := plan.CheckPermutation(order); err != nil {
			t.Fatal(err)
		}
		got := m.OrderCost(ps, order)
		want := bestConnectedOrder(ps, m)
		if !almost(got, want) {
			t.Fatalf("n=%d: KBZ cost %g, exhaustive connected optimum %g (order %v)",
				n, got, want, order)
		}
	}
}

// TestKBZRespectsConnectivity checks that the produced order never needs a
// cross product on tree graphs.
func TestKBZRespectsConnectivity(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	m := cost.DefaultModel()
	for trial := 0; trial < 40; trial++ {
		n := 3 + rng.Intn(5)
		ps := randomTreeStats(rng, n)
		order := KBZ{}.Order(ps, m)
		g := graph.FromStats(ps)
		for k := 1; k < n; k++ {
			connected := false
			for _, prev := range order[:k] {
				if g.HasEdge(prev, order[k]) {
					connected = true
					break
				}
			}
			if !connected {
				t.Fatalf("order %v needs a cross product at step %d", order, k)
			}
		}
	}
}

// TestKBZFallsBackOnCyclicGraphs verifies the documented fallback.
func TestKBZFallsBackOnCyclicGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	ps := randomTreeStats(rng, 4)
	// Close a cycle.
	ps.Sel[0][3], ps.Sel[3][0] = 0.5, 0.5
	ps.Sel[0][2], ps.Sel[2][0] = 0.5, 0.5
	ps.Sel[1][3], ps.Sel[3][1] = 0.5, 0.5
	m := cost.DefaultModel()
	kbz := KBZ{}.Order(ps, m)
	greedy := Greedy{}.Order(ps, m)
	for i := range kbz {
		if kbz[i] != greedy[i] {
			t.Fatalf("cyclic fallback should be greedy: %v vs %v", kbz, greedy)
		}
	}
}

// TestKBZNeverBeatenByCrossProductFreeDP sanity-checks against DP-LD: the
// DP searches a superset (it may use cross products), so its cost is a
// lower bound.
func TestKBZNeverBeatenByCrossProductFreeDP(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	m := cost.DefaultModel()
	for trial := 0; trial < 40; trial++ {
		n := 3 + rng.Intn(5)
		ps := randomTreeStats(rng, n)
		kbzCost := m.OrderCost(ps, KBZ{}.Order(ps, m))
		dpCost := m.OrderCost(ps, DPLD{}.Order(ps, m))
		if dpCost > kbzCost*(1+1e-9) {
			t.Fatalf("DP-LD (%g) worse than KBZ (%g)?!", dpCost, kbzCost)
		}
	}
}

func TestKBZName(t *testing.T) {
	if (KBZ{}).Name() != AlgKBZ {
		t.Fatal("name mismatch")
	}
	if (KBZ{}).Order(&stats.PatternStats{}, cost.DefaultModel()) != nil {
		t.Fatal("empty stats should give empty order")
	}
}
