package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/cost"
	"repro/internal/plan"
	"repro/internal/predicate"
	"repro/internal/stats"
)

func almost(a, b float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= 1e-9*math.Max(math.Abs(a), math.Abs(b))
}

func randomStats(rng *rand.Rand, n int) *stats.PatternStats {
	ps := &stats.PatternStats{W: 1 + rng.Float64()*10, Rates: make([]float64, n), Sel: make([][]float64, n)}
	for i := range ps.Sel {
		ps.Sel[i] = make([]float64, n)
		for j := range ps.Sel[i] {
			ps.Sel[i][j] = 1
		}
	}
	for i := 0; i < n; i++ {
		ps.Rates[i] = 0.1 + rng.Float64()*20
		if rng.Intn(3) == 0 {
			ps.Sel[i][i] = 0.1 + rng.Float64()*0.9
		}
		for j := i + 1; j < n; j++ {
			if rng.Intn(2) == 0 {
				s := 0.01 + rng.Float64()*0.99
				ps.Sel[i][j], ps.Sel[j][i] = s, s
			}
		}
	}
	return ps
}

func testModels(n int) []cost.Model {
	ms := []cost.Model{
		{Strategy: predicate.SkipTillAnyMatch, LastPos: -1},
		{Strategy: predicate.SkipTillNextMatch, LastPos: -1},
	}
	if n > 1 {
		ms = append(ms,
			cost.Model{Strategy: predicate.SkipTillAnyMatch, Alpha: 0.5, LastPos: n - 1},
			cost.Model{Strategy: predicate.SkipTillNextMatch, Alpha: 2, LastPos: 0},
		)
	}
	return ms
}

func TestTrivialAndEFreq(t *testing.T) {
	ps := &stats.PatternStats{
		W:     1,
		Rates: []float64{5, 1, 3},
		Sel:   [][]float64{{1, 1, 1}, {1, 1, 1}, {1, 1, 1}},
	}
	m := cost.DefaultModel()
	if got := (Trivial{}).Order(ps, m); got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Fatalf("Trivial = %v", got)
	}
	if got := (EFreq{}).Order(ps, m); got[0] != 1 || got[1] != 2 || got[2] != 0 {
		t.Fatalf("EFreq = %v", got)
	}
}

func TestGreedyPrefersRareAndSelective(t *testing.T) {
	// Rare event 2 plus a selective 0–2 predicate: greedy should start with
	// 2, then 0 (cheap joint), then 1.
	ps := &stats.PatternStats{
		W:     10,
		Rates: []float64{10, 10, 0.1},
		Sel: [][]float64{
			{1, 1, 0.01},
			{1, 1, 1},
			{0.01, 1, 1},
		},
	}
	got := (Greedy{}).Order(ps, cost.DefaultModel())
	if got[0] != 2 || got[1] != 0 || got[2] != 1 {
		t.Fatalf("Greedy = %v", got)
	}
}

// TestDPLDOptimality verifies DP-LD against exhaustive enumeration for every
// cost-model family.
func TestDPLDOptimality(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(5)
		ps := randomStats(rng, n)
		for _, m := range testModels(n) {
			got := (DPLD{}).Order(ps, m)
			if err := plan.CheckPermutation(got); err != nil {
				t.Fatal(err)
			}
			gotCost := m.OrderCost(ps, got)
			best := math.Inf(1)
			plan.Permutations(n, func(order []int) {
				if c := m.OrderCost(ps, order); c < best {
					best = c
				}
			})
			if !almost(gotCost, best) {
				t.Fatalf("model %+v n=%d: DP-LD cost %g, exhaustive %g (order %v)",
					m, n, gotCost, best, got)
			}
		}
	}
}

// TestDPBOptimality verifies DP-B against exhaustive bushy enumeration.
func TestDPBOptimality(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(4)
		ps := randomStats(rng, n)
		for _, m := range testModels(n) {
			got := (DPB{}).Tree(ps, m)
			if _, err := plan.NewTree(got); err != nil {
				t.Fatal(err)
			}
			gotCost := m.TreeCost(ps, got)
			best := math.Inf(1)
			plan.AllTrees(n, func(root *plan.TreeNode) {
				if c := m.TreeCost(ps, root); c < best {
					best = c
				}
			})
			if !almost(gotCost, best) {
				t.Fatalf("model %+v n=%d: DP-B cost %g, exhaustive %g (tree %s)",
					m, n, gotCost, best, got)
			}
		}
	}
}

// enumFixedLeafTrees enumerates every tree shape over a fixed leaf sequence
// (the space native ZStream searches).
func enumFixedLeafTrees(leaves []int, fn func(*plan.TreeNode)) {
	var build func(i, j int) []*plan.TreeNode
	build = func(i, j int) []*plan.TreeNode {
		if i == j {
			return []*plan.TreeNode{plan.LeafNode(leaves[i])}
		}
		var out []*plan.TreeNode
		for k := i; k < j; k++ {
			for _, l := range build(i, k) {
				for _, r := range build(k+1, j) {
					out = append(out, plan.Join(l, r))
				}
			}
		}
		return out
	}
	for _, root := range build(0, len(leaves)-1) {
		fn(root)
	}
}

// TestZStreamOptimalForFixedLeaves verifies the interval DP against the
// exhaustive fixed-leaf-order space.
func TestZStreamOptimalForFixedLeaves(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(4)
		ps := randomStats(rng, n)
		for _, m := range testModels(n) {
			got := (ZStream{}).Tree(ps, m)
			gotCost := m.TreeCost(ps, got)
			leaves := make([]int, n)
			for i := range leaves {
				leaves[i] = i
			}
			best := math.Inf(1)
			enumFixedLeafTrees(leaves, func(root *plan.TreeNode) {
				if c := m.TreeCost(ps, root); c < best {
					best = c
				}
			})
			if !almost(gotCost, best) {
				t.Fatalf("model %+v n=%d: ZStream %g, exhaustive fixed-leaf %g",
					m, n, gotCost, best)
			}
			// The leaf order must be preserved.
			for i, l := range got.Leaves() {
				if l != i {
					t.Fatalf("ZStream reordered leaves: %v", got.Leaves())
				}
			}
		}
	}
}

// TestZStreamMissesReorderedPlan reproduces the Section 2.3 example: with a
// highly selective predicate between the first and third event of a
// sequence, the optimal tree pairs them first — a plan ZSTREAM cannot form
// but ZSTREAM-ORD and DP-B find.
func TestZStreamMissesReorderedPlan(t *testing.T) {
	ps := &stats.PatternStats{
		W:     10,
		Rates: []float64{5, 5, 5},
		Sel: [][]float64{
			{1, 0.5, 0.001}, // ts-order a<b; selective a-c predicate
			{0.5, 1, 0.5},   // ts-order b<c
			{0.001, 0.5, 1},
		},
	}
	m := cost.DefaultModel()
	zCost := m.TreeCost(ps, ZStream{}.Tree(ps, m))
	dpbTree := DPB{}.Tree(ps, m)
	dpbCost := m.TreeCost(ps, dpbTree)
	ordCost := m.TreeCost(ps, ZStreamOrd{}.Tree(ps, m))
	if dpbCost >= zCost {
		t.Fatalf("DP-B (%g) should beat fixed-leaf ZStream (%g)", dpbCost, zCost)
	}
	if ordCost >= zCost {
		t.Fatalf("ZSTREAM-ORD (%g) should beat fixed-leaf ZStream (%g)", ordCost, zCost)
	}
	// The optimal plan joins 0 and 2 first.
	leaves01 := dpbTree.Leaves()
	if !(len(leaves01) == 3) {
		t.Fatal("bad tree")
	}
	var pairNode *plan.TreeNode
	for _, n := range dpbTree.Nodes() {
		if !n.IsLeaf() && n.Size() == 2 {
			pairNode = n
		}
	}
	got := pairNode.Leaves()
	if !((got[0] == 0 && got[1] == 2) || (got[0] == 2 && got[1] == 0)) {
		t.Fatalf("DP-B should pair the selective 0-2 edge first, got %v", got)
	}
}

func TestIIImprovesOrNeverWorsens(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	for trial := 0; trial < 15; trial++ {
		n := 3 + rng.Intn(4)
		ps := randomStats(rng, n)
		m := cost.DefaultModel()
		greedyCost := m.OrderCost(ps, Greedy{}.Order(ps, m))
		iig := NewIIGreedy().Order(ps, m)
		if err := plan.CheckPermutation(iig); err != nil {
			t.Fatal(err)
		}
		if c := m.OrderCost(ps, iig); c > greedyCost*(1+1e-9) {
			t.Fatalf("II-GREEDY (%g) worse than its greedy start (%g)", c, greedyCost)
		}
		iir := NewIIRandom(4, int64(trial)).Order(ps, m)
		if err := plan.CheckPermutation(iir); err != nil {
			t.Fatal(err)
		}
		// Local search must reach at least a local optimum no worse than the
		// trivial order it could have started from (sanity bound: must beat
		// the worst permutation).
		worst := 0.0
		plan.Permutations(n, func(order []int) {
			if c := m.OrderCost(ps, order); c > worst {
				worst = c
			}
		})
		if c := m.OrderCost(ps, iir); c > worst {
			t.Fatalf("II-RANDOM (%g) worse than worst order (%g)", c, worst)
		}
	}
}

// TestIIFindsOptimumOften sanity-checks the local search quality: with
// restarts on small instances, II-RANDOM should reach the global optimum in
// the vast majority of cases.
func TestIIFindsOptimumOften(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	hits, trials := 0, 20
	for trial := 0; trial < trials; trial++ {
		n := 4 + rng.Intn(2)
		ps := randomStats(rng, n)
		m := cost.DefaultModel()
		best := math.Inf(1)
		plan.Permutations(n, func(order []int) {
			if c := m.OrderCost(ps, order); c < best {
				best = c
			}
		})
		got := m.OrderCost(ps, NewIIRandom(8, int64(trial)).Order(ps, m))
		if almost(got, best) {
			hits++
		}
	}
	if hits < trials*3/4 {
		t.Fatalf("II-RANDOM found the optimum only %d/%d times", hits, trials)
	}
}

func TestAlgorithmRegistry(t *testing.T) {
	for _, name := range OrderAlgorithmNames() {
		a, err := NewOrderAlgorithm(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if a.Name() != name {
			t.Fatalf("%s: Name() = %q", name, a.Name())
		}
	}
	for _, name := range TreeAlgorithmNames() {
		a, err := NewTreeAlgorithm(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if a.Name() != name {
			t.Fatalf("%s: Name() = %q", name, a.Name())
		}
	}
	if _, err := NewOrderAlgorithm("NOPE"); err == nil {
		t.Fatal("unknown order algorithm accepted")
	}
	if _, err := NewTreeAlgorithm("NOPE"); err == nil {
		t.Fatal("unknown tree algorithm accepted")
	}
	if !JoinAdapted(AlgDPB) || JoinAdapted(AlgTrivial) || JoinAdapted(AlgZStream) {
		t.Fatal("JoinAdapted classification wrong")
	}
}

func TestHybridAlphaTradesThroughputForLatency(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	for trial := 0; trial < 10; trial++ {
		n := 4 + rng.Intn(3)
		ps := randomStats(rng, n)
		last := n - 1
		m0 := cost.Model{Strategy: predicate.SkipTillAnyMatch, Alpha: 0, LastPos: last}
		mBig := cost.Model{Strategy: predicate.SkipTillAnyMatch, Alpha: 1e9, LastPos: last}
		o0 := DPLD{}.Order(ps, m0)
		oBig := DPLD{}.Order(ps, mBig)
		lat0 := cost.OrderLatency(ps, o0, last)
		latBig := cost.OrderLatency(ps, oBig, last)
		if latBig > lat0+1e-9 {
			t.Fatalf("α=∞ latency %g exceeds α=0 latency %g", latBig, lat0)
		}
		// With an overwhelming α the optimal plan finishes with the anchor.
		if latBig != 0 {
			t.Fatalf("α=∞ should place the anchor last, latency = %g (order %v)", latBig, oBig)
		}
	}
}
