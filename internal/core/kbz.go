package core

import (
	"sort"

	"repro/internal/cost"
	"repro/internal/graph"
	"repro/internal/stats"
)

// AlgKBZ names the polynomial-time optimal algorithm for acyclic query
// graphs (Ibaraki–Kameda / Krishnamurthy–Boral–Zaniolo), enabled by the ASI
// property of Cost_ord proved in Appendix A and discussed in Section 4.3.
// It searches only cross-product-free orders, so on graphs where a cross
// product is beneficial it is a heuristic (the paper's caveat); on
// non-acyclic graphs this implementation falls back to GREEDY.
const AlgKBZ = "KBZ"

// KBZ is the rank-based polynomial join-ordering algorithm: for every
// choice of root it linearises the rooted predicate tree by ascending rank,
// gluing parent/child modules whose ranks invert (the ASI normalisation),
// and returns the cheapest of the n linearisations. O(n² log n).
type KBZ struct{}

// Name implements OrderAlgorithm.
func (KBZ) Name() string { return AlgKBZ }

// module is a glued run of positions with its aggregated C and T values
// (cost.SeqCost / cost.SeqProd of the member weight sequence).
type module struct {
	positions []int
	c, t      float64
}

func (m module) rank() float64 { return (m.t - 1) / m.c }

// merge concatenates two modules that must appear consecutively.
func (m module) merge(next module) module {
	return module{
		positions: append(append([]int(nil), m.positions...), next.positions...),
		c:         m.c + m.t*next.c,
		t:         m.t * next.t,
	}
}

// Order implements OrderAlgorithm.
func (KBZ) Order(ps *stats.PatternStats, m cost.Model) []int {
	n := ps.N()
	if n == 0 {
		return nil
	}
	g := graph.FromStats(ps)
	if !(g.IsConnected() && g.IsAcyclic()) {
		return Greedy{}.Order(ps, m)
	}
	best := make([]int, 0, n)
	bestCost := 0.0
	for root := 0; root < n; root++ {
		order := kbzLinearise(ps, g, root)
		c := m.OrderCost(ps, order)
		if len(best) == 0 || c < bestCost {
			best = append(best[:0], order...)
			bestCost = c
		}
	}
	return best
}

// kbzLinearise computes the optimal cross-product-free order starting at
// root for the acyclic graph.
func kbzLinearise(ps *stats.PatternStats, g *graph.Graph, root int) []int {
	parents, bfs := g.SpanningParents(root)
	// weight w_i = W·r_i·sel(i,parent)·sel_ii; the root has no parent edge.
	weight := func(v int) float64 {
		w := ps.W * ps.Rates[v] * ps.Sel[v][v]
		if parents[v] >= 0 {
			w *= ps.Sel[v][parents[v]]
		}
		return w
	}
	// chains[v] is the normalised linearisation of v's subtree, excluding v.
	chains := make(map[int][]module, len(bfs))
	children := make(map[int][]int, len(bfs))
	for _, v := range bfs {
		if parents[v] >= 0 {
			children[parents[v]] = append(children[parents[v]], v)
		}
	}
	// Process in reverse BFS order so children are linearised first.
	for i := len(bfs) - 1; i >= 0; i-- {
		v := bfs[i]
		// Collect each child's own module followed by its chain, then merge
		// all child sequences by ascending rank.
		var sequences [][]module
		for _, c := range children[v] {
			w := weight(c)
			seq := append([]module{{positions: []int{c}, c: w, t: w}}, chains[c]...)
			sequences = append(sequences, normalise(seq))
		}
		chains[v] = mergeByRank(sequences)
	}
	w := weight(root)
	seq := append([]module{{positions: []int{root}, c: w, t: w}}, chains[root]...)
	seq = normalise(seq)
	var order []int
	for _, mod := range seq {
		order = append(order, mod.positions...)
	}
	return order
}

// normalise glues the head module into its successor while their ranks
// invert (the head must precede its subtree members, so an inversion forces
// a compound module).
func normalise(seq []module) []module {
	if len(seq) == 0 {
		return seq
	}
	out := append([]module(nil), seq...)
	for len(out) >= 2 && out[0].rank() > out[1].rank() {
		merged := out[0].merge(out[1])
		out = append([]module{merged}, out[2:]...)
	}
	return out
}

// mergeByRank merges rank-ascending module sequences into one
// rank-ascending sequence (stable).
func mergeByRank(sequences [][]module) []module {
	var all []module
	for _, s := range sequences {
		all = append(all, s...)
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].rank() < all[j].rank() })
	return all
}
