package core

import (
	"fmt"

	"repro/internal/cost"
	"repro/internal/pattern"
	"repro/internal/plan"
	"repro/internal/predicate"
	"repro/internal/stats"
)

// Planner is the end-to-end plan generator: it normalises a pattern to DNF
// (Section 5.4), compiles each disjunct, assembles its statistics (applying
// the Kleene virtual-rate rewrite of Section 5.2 and the sequence-order
// selectivities of Section 5.1), and runs the configured algorithm under the
// configured cost model.
type Planner struct {
	// Algorithm is one of the Alg* names; it determines whether order-based
	// or tree-based plans are produced.
	Algorithm string
	// Strategy selects the event selection strategy, which in turn selects
	// the cost-model family (Section 6.2).
	Strategy predicate.Strategy
	// Alpha is the throughput/latency trade-off of Section 6.1.
	Alpha float64
	// ConjAnchor optionally supplies the latency anchor (planning index of
	// the temporally last event) for conjunction patterns, e.g. from the
	// output profiler of Section 6.1. Sequences use their final event.
	ConjAnchor func(c *predicate.Compiled, ps *stats.PatternStats) int
}

// NewPlanner returns a planner with the paper's default configuration:
// the given algorithm under skip-till-any-match, pure-throughput cost.
func NewPlanner(algorithm string) *Planner {
	return &Planner{Algorithm: algorithm, Strategy: predicate.SkipTillAnyMatch}
}

// SimplePlan is the generated plan for one simple (conjunctive or sequence)
// disjunct.
type SimplePlan struct {
	Compiled *predicate.Compiled
	Stats    *stats.PatternStats
	Model    cost.Model
	// Order holds the planning-index processing order for order-based
	// algorithms; Tree holds the plan tree for tree-based ones. Exactly one
	// is set.
	Order []int
	Tree  *plan.TreeNode
	// Cost is the model cost of the chosen plan.
	Cost float64
}

// IsTree reports whether this is a tree-based plan.
func (sp *SimplePlan) IsTree() bool { return sp.Tree != nil }

// OrderTerms translates the planning order into compiled term positions,
// the indexing the NFA engine consumes.
func (sp *SimplePlan) OrderTerms() []int {
	out := make([]int, len(sp.Order))
	for i, p := range sp.Order {
		out[i] = sp.Stats.TermIndex[p]
	}
	return out
}

// TreeTerms translates the plan tree's leaves into compiled term positions,
// the indexing the tree engine consumes.
func (sp *SimplePlan) TreeTerms() *plan.TreeNode {
	var rec func(n *plan.TreeNode) *plan.TreeNode
	rec = func(n *plan.TreeNode) *plan.TreeNode {
		if n.IsLeaf() {
			return plan.LeafNode(sp.Stats.TermIndex[n.Leaf])
		}
		return plan.Join(rec(n.Left), rec(n.Right))
	}
	return rec(sp.Tree)
}

// Plan is a full evaluation plan: one SimplePlan per DNF disjunct. Per
// Section 5.4, disjuncts are detected independently and their matches
// unioned.
type Plan struct {
	Pattern *pattern.Pattern
	Simple  []*SimplePlan
	// TotalCost sums the throughput costs of the disjuncts.
	TotalCost float64
}

// Plan generates the evaluation plan for a (possibly nested) pattern.
// Structurally identical DNF disjuncts (which distribution over overlapping
// OR branches can produce) are planned and executed once — the degenerate
// case of the shared-subexpression processing Section 5.4 points to.
func (pl *Planner) Plan(pat *pattern.Pattern, st *stats.Stats) (*Plan, error) {
	disjuncts, err := pattern.ToDNF(pat)
	if err != nil {
		return nil, err
	}
	out := &Plan{Pattern: pat}
	seen := make(map[string]bool, len(disjuncts))
	for _, d := range disjuncts {
		key := d.String()
		if seen[key] {
			continue
		}
		seen[key] = true
		sp, err := pl.PlanSimple(d, st)
		if err != nil {
			return nil, err
		}
		out.Simple = append(out.Simple, sp)
		out.TotalCost += sp.Cost
	}
	return out, nil
}

// PlanSimple generates the plan for a single simple SEQ or AND pattern.
func (pl *Planner) PlanSimple(d *pattern.Pattern, st *stats.Stats) (*SimplePlan, error) {
	compiled, err := predicate.Compile(d, pl.Strategy)
	if err != nil {
		return nil, err
	}
	ps := stats.For(d, st)
	if ps.N() == 0 {
		return nil, fmt.Errorf("core: pattern %q has no positive events", d)
	}
	model := cost.Model{
		Strategy: pl.Strategy,
		Alpha:    pl.Alpha,
		LastPos:  pl.latencyAnchor(compiled, ps),
	}
	sp := &SimplePlan{Compiled: compiled, Stats: ps, Model: model}
	if oa, err := NewOrderAlgorithm(pl.Algorithm); err == nil {
		sp.Order = oa.Order(ps, model)
		if err := plan.CheckPermutation(sp.Order); err != nil {
			return nil, fmt.Errorf("core: %s produced invalid order: %w", pl.Algorithm, err)
		}
		sp.Cost = model.OrderCost(ps, sp.Order)
		return sp, nil
	}
	ta, err := NewTreeAlgorithm(pl.Algorithm)
	if err != nil {
		return nil, err
	}
	sp.Tree = ta.Tree(ps, model)
	if _, err := plan.NewTree(sp.Tree); err != nil {
		return nil, fmt.Errorf("core: %s produced invalid tree: %w", pl.Algorithm, err)
	}
	sp.Cost = model.TreeCost(ps, sp.Tree)
	return sp, nil
}

// latencyAnchor picks the planning position of the temporally last event:
// the final positive event for sequences, the ConjAnchor hook (if any) for
// conjunctions, and -1 otherwise (latency term disabled).
func (pl *Planner) latencyAnchor(c *predicate.Compiled, ps *stats.PatternStats) int {
	if pl.Alpha == 0 {
		return -1
	}
	if c.IsSeq {
		return ps.N() - 1
	}
	if pl.ConjAnchor != nil {
		return pl.ConjAnchor(c, ps)
	}
	return -1
}
