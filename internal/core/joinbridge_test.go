package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/join"
	"repro/internal/plan"
)

func randomQuery(rng *rand.Rand, n int) *join.Query {
	rels := make([]join.Relation, n)
	for i := range rels {
		rels[i] = join.Relation{Name: "R", Card: float64(1 + rng.Intn(500))}
	}
	q := join.NewQuery(rels...)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Intn(2) == 0 {
				q.SetSel(i, j, 0.01+rng.Float64()*0.99)
			}
		}
	}
	return q
}

// TestOrderQueryOptimal verifies that DP-LD run through the reduction
// produces the Cost_LDJ-optimal join order — the practical payoff of
// Theorem 1's JQPG ⊆ CPG direction.
func TestOrderQueryOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(5)
		q := randomQuery(rng, n)
		order, err := OrderQuery(q, AlgDPLD)
		if err != nil {
			t.Fatal(err)
		}
		got := q.CostLDJ(order)
		best := math.Inf(1)
		plan.Permutations(n, func(o []int) {
			if c := q.CostLDJ(o); c < best {
				best = c
			}
		})
		if math.Abs(got-best) > 1e-9*best {
			t.Fatalf("DP-LD join order cost %g, optimum %g", got, best)
		}
	}
}

// TestTreeQueryOptimal does the same for bushy plans via DP-B.
func TestTreeQueryOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(4)
		q := randomQuery(rng, n)
		root, err := TreeQuery(q, AlgDPB)
		if err != nil {
			t.Fatal(err)
		}
		got := q.CostBJ(root)
		best := math.Inf(1)
		plan.AllTrees(n, func(tr *plan.TreeNode) {
			if c := q.CostBJ(tr); c < best {
				best = c
			}
		})
		if math.Abs(got-best) > 1e-9*best {
			t.Fatalf("DP-B join tree cost %g, optimum %g", got, best)
		}
	}
}

func TestJoinBridgeErrors(t *testing.T) {
	q := randomQuery(rand.New(rand.NewSource(53)), 3)
	if _, err := OrderQuery(q, "NOPE"); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	if _, err := TreeQuery(q, "NOPE"); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	q.Sel[0][1] = 2 // invalid
	if _, err := OrderQuery(q, AlgGreedy); err == nil {
		t.Fatal("invalid query accepted")
	}
}
