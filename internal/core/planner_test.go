package core

import (
	"testing"

	"repro/internal/event"
	"repro/internal/pattern"
	"repro/internal/predicate"
	"repro/internal/stats"
)

func plannerStats() *stats.Stats {
	st := stats.New()
	st.SetRate("A", 10)
	st.SetRate("B", 5)
	st.SetRate("C", 0.5)
	st.SetRate("D", 2)
	return st
}

func TestPlannerOrderBased(t *testing.T) {
	p := pattern.Seq(10*event.Second,
		pattern.E("A", "a"), pattern.E("B", "b"), pattern.E("C", "c"))
	for _, alg := range OrderAlgorithmNames() {
		pl := NewPlanner(alg)
		out, err := pl.Plan(p, plannerStats())
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if len(out.Simple) != 1 {
			t.Fatalf("%s: %d disjuncts", alg, len(out.Simple))
		}
		sp := out.Simple[0]
		if sp.IsTree() || len(sp.Order) != 3 {
			t.Fatalf("%s: plan = %+v", alg, sp)
		}
		if sp.Cost <= 0 {
			t.Fatalf("%s: cost = %g", alg, sp.Cost)
		}
	}
	// Cost-based algorithms must start with the rare type C.
	for _, alg := range []string{AlgEFreq, AlgGreedy, AlgDPLD} {
		pl := NewPlanner(alg)
		out, _ := pl.Plan(p, plannerStats())
		terms := out.Simple[0].OrderTerms()
		if terms[0] != 2 { // term index of C
			t.Fatalf("%s: order %v should start with C (term 2)", alg, terms)
		}
	}
}

func TestPlannerTreeBased(t *testing.T) {
	p := pattern.Seq(10*event.Second,
		pattern.E("A", "a"), pattern.E("B", "b"), pattern.E("C", "c"), pattern.E("D", "d"))
	for _, alg := range TreeAlgorithmNames() {
		pl := NewPlanner(alg)
		out, err := pl.Plan(p, plannerStats())
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		sp := out.Simple[0]
		if !sp.IsTree() || sp.Tree.Size() != 4 {
			t.Fatalf("%s: plan = %+v", alg, sp)
		}
		tt := sp.TreeTerms()
		if tt.Size() != 4 {
			t.Fatalf("%s: TreeTerms size %d", alg, tt.Size())
		}
	}
}

func TestPlannerNegationMapping(t *testing.T) {
	// NOT(B) sits at term index 1; planning positions map to terms 0, 2, 3.
	p := pattern.Seq(10*event.Second,
		pattern.E("A", "a"), pattern.Not("B", "b"), pattern.E("C", "c"), pattern.E("D", "d"))
	pl := NewPlanner(AlgDPLD)
	out, err := pl.Plan(p, plannerStats())
	if err != nil {
		t.Fatal(err)
	}
	sp := out.Simple[0]
	if len(sp.Order) != 3 {
		t.Fatalf("order = %v", sp.Order)
	}
	terms := sp.OrderTerms()
	seen := map[int]bool{}
	for _, term := range terms {
		if term == 1 {
			t.Fatalf("negated term in order: %v", terms)
		}
		seen[term] = true
	}
	if !seen[0] || !seen[2] || !seen[3] {
		t.Fatalf("missing positive terms: %v", terms)
	}
	if len(sp.Compiled.Negs) != 1 || sp.Compiled.Negs[0].Pos != 1 {
		t.Fatalf("negs = %+v", sp.Compiled.Negs)
	}
}

func TestPlannerDisjunction(t *testing.T) {
	p := pattern.Or(10*event.Second,
		pattern.Sub(pattern.Seq(0, pattern.E("A", "a"), pattern.E("B", "b"))),
		pattern.Sub(pattern.Seq(0, pattern.E("C", "c"), pattern.E("D", "d"))),
	)
	pl := NewPlanner(AlgGreedy)
	out, err := pl.Plan(p, plannerStats())
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Simple) != 2 {
		t.Fatalf("%d disjuncts, want 2", len(out.Simple))
	}
	if out.TotalCost != out.Simple[0].Cost+out.Simple[1].Cost {
		t.Fatal("TotalCost mismatch")
	}
}

func TestPlannerKleeneVirtualRatePushesKleeneLast(t *testing.T) {
	// KL(A): despite A's base rate being lower than B's and C's, the 2^{rW}
	// virtual rate must push it to the end of any cost-based order
	// (Section 5.2's "processing will likely be postponed to the latest
	// step").
	st := stats.New()
	st.SetRate("A", 2)
	st.SetRate("B", 5)
	st.SetRate("C", 5)
	p := pattern.And(10*event.Second,
		pattern.KL("A", "a"), pattern.E("B", "b"), pattern.E("C", "c"))
	for _, alg := range []string{AlgEFreq, AlgGreedy, AlgDPLD} {
		out, err := NewPlanner(alg).Plan(p, st)
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		terms := out.Simple[0].OrderTerms()
		if terms[len(terms)-1] != 0 {
			t.Fatalf("%s: KL term should be last, got %v", alg, terms)
		}
	}
}

func TestPlannerLatencyAnchor(t *testing.T) {
	seq := pattern.Seq(10*event.Second,
		pattern.E("A", "a"), pattern.E("B", "b"), pattern.E("C", "c"))
	pl := NewPlanner(AlgDPLD)
	pl.Alpha = 1e9
	out, err := pl.Plan(seq, plannerStats())
	if err != nil {
		t.Fatal(err)
	}
	sp := out.Simple[0]
	if sp.Model.LastPos != 2 {
		t.Fatalf("LastPos = %d, want 2", sp.Model.LastPos)
	}
	// With overwhelming α the anchor is processed last.
	if sp.Order[len(sp.Order)-1] != 2 {
		t.Fatalf("order = %v should end with the anchor", sp.Order)
	}

	// Conjunctions default to no anchor, unless a hook supplies one.
	conj := pattern.And(10*event.Second, pattern.E("A", "a"), pattern.E("B", "b"))
	out, err = pl.Plan(conj, plannerStats())
	if err != nil {
		t.Fatal(err)
	}
	if out.Simple[0].Model.LastPos != -1 {
		t.Fatalf("conjunction LastPos = %d", out.Simple[0].Model.LastPos)
	}
	pl.ConjAnchor = func(c *predicate.Compiled, ps *stats.PatternStats) int { return 0 }
	out, err = pl.Plan(conj, plannerStats())
	if err != nil {
		t.Fatal(err)
	}
	if out.Simple[0].Model.LastPos != 0 {
		t.Fatalf("hooked LastPos = %d", out.Simple[0].Model.LastPos)
	}
}

func TestPlannerStrategyPropagates(t *testing.T) {
	p := pattern.Seq(10*event.Second, pattern.E("A", "a"), pattern.E("B", "b"))
	pl := NewPlanner(AlgGreedy)
	pl.Strategy = predicate.SkipTillNextMatch
	out, err := pl.Plan(p, plannerStats())
	if err != nil {
		t.Fatal(err)
	}
	if out.Simple[0].Model.Strategy != predicate.SkipTillNextMatch {
		t.Fatal("strategy lost")
	}
}

func TestPlannerUnknownAlgorithm(t *testing.T) {
	p := pattern.Seq(10*event.Second, pattern.E("A", "a"), pattern.E("B", "b"))
	if _, err := NewPlanner("NOPE").Plan(p, plannerStats()); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}
