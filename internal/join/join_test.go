package join

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/cost"
	"repro/internal/plan"
	"repro/internal/stats"
)

func almost(a, b float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= 1e-9*math.Max(math.Abs(a), math.Abs(b))
}

func sampleQuery() *Query {
	q := NewQuery(
		Relation{Name: "R1", Card: 10},
		Relation{Name: "R2", Card: 20},
		Relation{Name: "R3", Card: 30},
	)
	q.SetSel(0, 1, 0.5)
	q.SetSel(0, 2, 0.25)
	q.Sel[0][0] = 0.5
	return q
}

func TestQueryValidate(t *testing.T) {
	q := sampleQuery()
	if err := q.Validate(); err != nil {
		t.Fatalf("valid query rejected: %v", err)
	}
	q.Sel[0][1] = 0.9 // break symmetry
	if err := q.Validate(); err == nil {
		t.Fatal("asymmetric matrix accepted")
	}
	q = sampleQuery()
	q.Sel[0][1], q.Sel[1][0] = 1.5, 1.5
	if err := q.Validate(); err == nil {
		t.Fatal("selectivity > 1 accepted")
	}
	q = sampleQuery()
	q.Rels[0].Card = -1
	if err := q.Validate(); err == nil {
		t.Fatal("negative cardinality accepted")
	}
}

func TestCostLDJHandComputed(t *testing.T) {
	q := sampleQuery()
	// order [0,1,2]: C1 = 10·0.5 = 5; C2 = 5·20·0.5 = 50; C3 = 50·30·0.25 = 375.
	if got := q.CostLDJ([]int{0, 1, 2}); !almost(got, 430) {
		t.Fatalf("CostLDJ = %g, want 430", got)
	}
	// order [2,1,0]: C1 = 30; C2 = 30·20 = 600; C3 = 600·10·0.5·0.5·0.25 = 375.
	if got := q.CostLDJ([]int{2, 1, 0}); !almost(got, 1005) {
		t.Fatalf("CostLDJ = %g, want 1005", got)
	}
}

func TestCostBJHandComputed(t *testing.T) {
	q := sampleQuery()
	// ((0 1) 2): leaves 5, 20, 30; inner = 5·20·0.5 = 50; root = 50·30·0.25 = 375.
	root := plan.Join(plan.Join(plan.LeafNode(0), plan.LeafNode(1)), plan.LeafNode(2))
	if got := q.CostBJ(root); !almost(got, 5+20+30+50+375) {
		t.Fatalf("CostBJ = %g, want 480", got)
	}
}

func TestResultCard(t *testing.T) {
	q := sampleQuery()
	// 10·0.5 · 20 · 30 · 0.5 · 0.25 = 375.
	if got := q.ResultCard(); !almost(got, 375) {
		t.Fatalf("ResultCard = %g, want 375", got)
	}
}

// randomPatternStats builds a random CPG instance for the reduction tests.
func randomPatternStats(rng *rand.Rand, n int) *stats.PatternStats {
	ps := &stats.PatternStats{
		W:     1 + rng.Float64()*10,
		Rates: make([]float64, n),
		Sel:   make([][]float64, n),
	}
	for i := range ps.Sel {
		ps.Sel[i] = make([]float64, n)
		for j := range ps.Sel[i] {
			ps.Sel[i][j] = 1
		}
	}
	for i := 0; i < n; i++ {
		ps.Rates[i] = 0.1 + rng.Float64()*20
		if rng.Intn(2) == 0 {
			ps.Sel[i][i] = 0.05 + rng.Float64()*0.95
		}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Intn(2) == 0 {
				s := 0.01 + rng.Float64()*0.99
				ps.Sel[i][j], ps.Sel[j][i] = s, s
			}
		}
	}
	return ps
}

// TestTheorem1Equivalence verifies Cost_ord(O) == Cost_LDJ(reduce(O)) for
// every order of random instances — the CPG ⊆ JQPG direction of Theorem 1.
func TestTheorem1Equivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(4)
		ps := randomPatternStats(rng, n)
		q := FromPatternStats(ps)
		if err := q.Validate(); err != nil {
			t.Fatal(err)
		}
		plan.Permutations(n, func(order []int) {
			co := cost.Order(ps, order)
			cl := q.CostLDJ(order)
			if !almost(co, cl) {
				t.Fatalf("Cost_ord=%g != Cost_LDJ=%g for order %v (n=%d)", co, cl, order, n)
			}
		})
	}
}

// TestTheorem2Equivalence verifies Cost_tree(T) == Cost_BJ(reduce(T)) for
// every bushy tree of random instances — Theorem 2.
func TestTheorem2Equivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(3)
		ps := randomPatternStats(rng, n)
		q := FromPatternStats(ps)
		plan.AllTrees(n, func(root *plan.TreeNode) {
			ct := cost.Tree(ps, root)
			cb := q.CostBJ(root)
			if !almost(ct, cb) {
				t.Fatalf("Cost_tree=%g != Cost_BJ=%g for tree %s (n=%d)", ct, cb, root, n)
			}
		})
	}
}

// TestJQPGToCPGDirection verifies the opposite reduction: a JQPG instance
// converted to CEP statistics preserves costs, with W·r_i = |R_i| exactly.
func TestJQPGToCPGDirection(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(4)
		rels := make([]Relation, n)
		for i := range rels {
			rels[i] = Relation{Name: "R", Card: float64(1 + rng.Intn(1000))}
		}
		q := NewQuery(rels...)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Intn(2) == 0 {
					q.SetSel(i, j, 0.01+rng.Float64()*0.99)
				}
			}
		}
		ps := q.ToPatternStats()
		for i := 0; i < n; i++ {
			if !almost(ps.W*ps.Rates[i], q.Rels[i].Card) {
				t.Fatalf("W·r_%d = %g != |R_%d| = %g", i, ps.W*ps.Rates[i], i, q.Rels[i].Card)
			}
		}
		plan.Permutations(n, func(order []int) {
			if !almost(cost.Order(ps, order), q.CostLDJ(order)) {
				t.Fatalf("round-trip cost mismatch for %v", order)
			}
		})
	}
}

// TestOptimalPlanAgreement verifies the punchline of Theorem 1: the order
// minimising Cost_ord is exactly the order minimising Cost_LDJ.
func TestOptimalPlanAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 30; trial++ {
		n := 3 + rng.Intn(3)
		ps := randomPatternStats(rng, n)
		q := FromPatternStats(ps)
		var bestCPG, bestJQPG []int
		bestCPGCost, bestJQPGCost := math.Inf(1), math.Inf(1)
		plan.Permutations(n, func(order []int) {
			if c := cost.Order(ps, order); c < bestCPGCost {
				bestCPGCost = c
				bestCPG = append(bestCPG[:0], order...)
			}
			if c := q.CostLDJ(order); c < bestJQPGCost {
				bestJQPGCost = c
				bestJQPG = append(bestJQPG[:0], order...)
			}
		})
		if !almost(bestCPGCost, bestJQPGCost) {
			t.Fatalf("optimal costs diverge: %g vs %g", bestCPGCost, bestJQPGCost)
		}
		for i := range bestCPG {
			if bestCPG[i] != bestJQPG[i] {
				t.Fatalf("optimal plans diverge: %v vs %v", bestCPG, bestJQPG)
			}
		}
	}
}
