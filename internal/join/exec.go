package join

import (
	"fmt"
	"sync"

	"repro/internal/plan"
)

// Table is an in-memory relation used by the validation executor: rows of
// float64 values under named columns.
type Table struct {
	Name string
	Cols []string
	Rows [][]float64
}

// Col returns the index of the named column.
func (t *Table) Col(name string) int {
	for i, c := range t.Cols {
		if c == name {
			return i
		}
	}
	return -1
}

// TuplePred is a join predicate between two relations, evaluated on full
// rows.
type TuplePred struct {
	I, J int // relation indices
	Fn   func(a, b []float64) bool
}

// RowFilter is a selection predicate on a single relation.
type RowFilter struct {
	I  int
	Fn func(row []float64) bool
}

// Instance is an executable join-query instance.
type Instance struct {
	Tables  []*Table
	Preds   []TuplePred
	Filters []RowFilter
}

// tuple maps relation index to a row of that relation; entries are nil for
// relations not yet joined.
type tuple []([]float64)

// ExecResult reports the outcome of executing a join plan: the final result
// cardinality and the total number of intermediate tuples materialised — the
// quantity the Cost functions estimate.
type ExecResult struct {
	ResultRows   int
	Intermediate int
}

// arena recycles the executors' intermediate tuples: generation k's tuples
// die as soon as generation k+1 is built (growing always copies, never
// aliases), so whole generations return here instead of being discarded.
// Arenas themselves cycle through a sync.Pool — executors may run
// concurrently (the validation harness fans out plan candidates), so per-P
// caching is the right ownership model at this boundary.
type arena struct {
	free []tuple
}

var arenaPool = sync.Pool{New: func() any { return new(arena) }}

// get returns a cleared tuple of the given width.
func (a *arena) get(width int) tuple {
	if n := len(a.free); n > 0 {
		tp := a.free[n-1]
		a.free[n-1] = nil
		a.free = a.free[:n-1]
		if cap(tp) >= width {
			tp = tp[:width]
			for i := range tp {
				tp[i] = nil
			}
			return tp
		}
	}
	return make(tuple, width)
}

// put returns a whole dead generation at once.
func (a *arena) put(tps []tuple) {
	a.free = append(a.free, tps...)
}

// release parks the arena, dropping row references so pooled tuples never
// pin table rows across runs.
func (a *arena) release() {
	for i := range a.free {
		for j := range a.free[i] {
			a.free[i][j] = nil
		}
	}
	arenaPool.Put(a)
}

// ExecuteOrder runs a left-deep (order-based) nested-loop join and counts
// intermediate results, including the initial selection, mirroring Cost_LDJ.
func (in *Instance) ExecuteOrder(order []int) (ExecResult, error) {
	if len(order) != len(in.Tables) {
		return ExecResult{}, fmt.Errorf("join: order covers %d of %d relations", len(order), len(in.Tables))
	}
	if err := plan.CheckPermutation(order); err != nil {
		return ExecResult{}, err
	}
	a := arenaPool.Get().(*arena)
	defer a.release()
	var res ExecResult
	var current []tuple
	for k, idx := range order {
		rows := in.filteredRows(idx)
		var next []tuple
		if k == 0 {
			for _, row := range rows {
				tp := a.get(len(in.Tables))
				tp[idx] = row
				next = append(next, tp)
			}
		} else {
			for _, tp := range current {
				for _, row := range rows {
					if in.rowJoins(tp, idx, row) {
						grown := a.get(len(tp))
						copy(grown, tp)
						grown[idx] = row
						next = append(next, grown)
					}
				}
			}
			a.put(current) // generation k-1 is dead: grown copies never alias
		}
		res.Intermediate += len(next)
		current = next
	}
	res.ResultRows = len(current)
	a.put(current)
	return res, nil
}

// ExecuteTree runs a bushy nested-loop join over the plan tree, counting the
// tuples materialised at every node (leaves count their filtered inputs),
// mirroring Cost_BJ.
func (in *Instance) ExecuteTree(root *plan.TreeNode) (ExecResult, error) {
	if root == nil {
		return ExecResult{}, fmt.Errorf("join: nil plan tree")
	}
	if err := plan.CheckPermutation(root.Leaves()); err != nil {
		return ExecResult{}, err
	}
	if root.Size() != len(in.Tables) {
		return ExecResult{}, fmt.Errorf("join: tree covers %d of %d relations", root.Size(), len(in.Tables))
	}
	a := arenaPool.Get().(*arena)
	defer a.release()
	var res ExecResult
	var rec func(n *plan.TreeNode) []tuple
	rec = func(n *plan.TreeNode) []tuple {
		var out []tuple
		if n.IsLeaf() {
			for _, row := range in.filteredRows(n.Leaf) {
				tp := a.get(len(in.Tables))
				tp[n.Leaf] = row
				out = append(out, tp)
			}
		} else {
			left := rec(n.Left)
			right := rec(n.Right)
			for _, lt := range left {
				for _, rt := range right {
					if in.tuplesJoin(lt, rt) {
						merged := a.get(len(lt))
						copy(merged, lt)
						for i, row := range rt {
							if row != nil {
								merged[i] = row
							}
						}
						out = append(out, merged)
					}
				}
			}
			// Child generations are dead: merged tuples are copies.
			a.put(left)
			a.put(right)
		}
		res.Intermediate += len(out)
		return out
	}
	final := rec(root)
	res.ResultRows = len(final)
	a.put(final)
	return res, nil
}

func (in *Instance) filteredRows(idx int) [][]float64 {
	rows := in.Tables[idx].Rows
	var hasFilter bool
	for _, f := range in.Filters {
		if f.I == idx {
			hasFilter = true
			break
		}
	}
	if !hasFilter {
		return rows
	}
	var out [][]float64
	for _, row := range rows {
		keep := true
		for _, f := range in.Filters {
			if f.I == idx && !f.Fn(row) {
				keep = false
				break
			}
		}
		if keep {
			out = append(out, row)
		}
	}
	return out
}

// rowJoins checks every predicate between the new row (relation idx) and the
// relations already present in the tuple.
func (in *Instance) rowJoins(tp tuple, idx int, row []float64) bool {
	for _, p := range in.Preds {
		switch {
		case p.I == idx && tp[p.J] != nil:
			if !p.Fn(row, tp[p.J]) {
				return false
			}
		case p.J == idx && tp[p.I] != nil:
			if !p.Fn(tp[p.I], row) {
				return false
			}
		}
	}
	return true
}

// tuplesJoin checks every predicate spanning the two partial tuples.
func (in *Instance) tuplesJoin(lt, rt tuple) bool {
	for _, p := range in.Preds {
		if lt[p.I] != nil && rt[p.J] != nil {
			if !p.Fn(lt[p.I], rt[p.J]) {
				return false
			}
		}
		if lt[p.J] != nil && rt[p.I] != nil {
			if !p.Fn(rt[p.I], lt[p.J]) {
				return false
			}
		}
	}
	return true
}
