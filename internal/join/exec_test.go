package join

import (
	"math/rand"
	"testing"

	"repro/internal/plan"
)

// parityInstance builds three relations with balanced 0/1 parity columns and
// equality predicates A.x=B.x, B.x=C.x, whose exact selectivity is 0.5.
func parityInstance() (*Instance, *Query) {
	mk := func(name string, card int) *Table {
		t := &Table{Name: name, Cols: []string{"x"}}
		for i := 0; i < card; i++ {
			t.Rows = append(t.Rows, []float64{float64(i % 2)})
		}
		return t
	}
	in := &Instance{
		Tables: []*Table{mk("A", 4), mk("B", 6), mk("C", 8)},
		Preds: []TuplePred{
			{I: 0, J: 1, Fn: func(a, b []float64) bool { return a[0] == b[0] }},
			{I: 1, J: 2, Fn: func(a, b []float64) bool { return a[0] == b[0] }},
		},
	}
	q := NewQuery(
		Relation{Name: "A", Card: 4},
		Relation{Name: "B", Card: 6},
		Relation{Name: "C", Card: 8},
	)
	q.SetSel(0, 1, 0.5)
	q.SetSel(1, 2, 0.5)
	return in, q
}

func TestExecuteOrderMatchesCostModelExactly(t *testing.T) {
	in, q := parityInstance()
	order := []int{0, 1, 2}
	res, err := in.ExecuteOrder(order)
	if err != nil {
		t.Fatal(err)
	}
	// Balanced parity makes the multiplicative model exact:
	// 4 + 4·6·0.5 + 12·8·0.5 = 4 + 12 + 48 = 64.
	if res.Intermediate != 64 {
		t.Fatalf("intermediate = %d, want 64", res.Intermediate)
	}
	if got := q.CostLDJ(order); got != 64 {
		t.Fatalf("CostLDJ = %g, want 64", got)
	}
	if res.ResultRows != 48 {
		t.Fatalf("result = %d, want 48", res.ResultRows)
	}
}

func TestExecuteTreeMatchesCostModelExactly(t *testing.T) {
	in, q := parityInstance()
	root := plan.Join(plan.LeafNode(0), plan.Join(plan.LeafNode(1), plan.LeafNode(2)))
	res, err := in.ExecuteTree(root)
	if err != nil {
		t.Fatal(err)
	}
	// Leaves 4+6+8; (B C) = 6·8·0.5 = 24; root = 4·24·0.5 = 48. Total 90.
	if res.Intermediate != 90 {
		t.Fatalf("intermediate = %d, want 90", res.Intermediate)
	}
	if got := q.CostBJ(root); got != 90 {
		t.Fatalf("CostBJ = %g, want 90", got)
	}
	if res.ResultRows != 48 {
		t.Fatalf("result = %d, want 48", res.ResultRows)
	}
}

func TestExecuteRowFilters(t *testing.T) {
	in, _ := parityInstance()
	in.Filters = []RowFilter{{I: 0, Fn: func(row []float64) bool { return row[0] == 0 }}}
	res, err := in.ExecuteOrder([]int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	// A filtered to 2 rows (x=0); AB = 2·3 = 6; ABC = 6·4 = 24.
	if res.Intermediate != 2+6+24 {
		t.Fatalf("intermediate = %d, want 32", res.Intermediate)
	}
}

func TestExecuteResultInvariantAcrossPlans(t *testing.T) {
	in, _ := parityInstance()
	var want int
	first := true
	plan.Permutations(3, func(order []int) {
		res, err := in.ExecuteOrder(order)
		if err != nil {
			t.Fatal(err)
		}
		if first {
			want = res.ResultRows
			first = false
		} else if res.ResultRows != want {
			t.Fatalf("order %v produced %d rows, want %d", order, res.ResultRows, want)
		}
	})
	plan.AllTrees(3, func(root *plan.TreeNode) {
		res, err := in.ExecuteTree(root)
		if err != nil {
			t.Fatal(err)
		}
		if res.ResultRows != want {
			t.Fatalf("tree %s produced %d rows, want %d", root, res.ResultRows, want)
		}
	})
}

func TestExecuteRandomInstancesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(3)
		in := &Instance{}
		for i := 0; i < n; i++ {
			tb := &Table{Name: "T", Cols: []string{"x"}}
			card := 1 + rng.Intn(6)
			for r := 0; r < card; r++ {
				tb.Rows = append(tb.Rows, []float64{float64(rng.Intn(4))})
			}
			in.Tables = append(in.Tables, tb)
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Intn(2) == 0 {
					in.Preds = append(in.Preds, TuplePred{
						I: i, J: j,
						Fn: func(a, b []float64) bool { return a[0] <= b[0] },
					})
				}
			}
		}
		var want int
		first := true
		plan.Permutations(n, func(order []int) {
			res, err := in.ExecuteOrder(order)
			if err != nil {
				t.Fatal(err)
			}
			if first {
				want, first = res.ResultRows, false
			} else if res.ResultRows != want {
				t.Fatalf("trial %d: order %v rows %d, want %d", trial, order, res.ResultRows, want)
			}
		})
		plan.AllTrees(n, func(root *plan.TreeNode) {
			res, err := in.ExecuteTree(root)
			if err != nil {
				t.Fatal(err)
			}
			if res.ResultRows != want {
				t.Fatalf("trial %d: tree %s rows %d, want %d", trial, root, res.ResultRows, want)
			}
		})
	}
}

func TestExecuteErrors(t *testing.T) {
	in, _ := parityInstance()
	if _, err := in.ExecuteOrder([]int{0, 1}); err == nil {
		t.Fatal("short order accepted")
	}
	if _, err := in.ExecuteOrder([]int{0, 0, 1}); err == nil {
		t.Fatal("duplicate order accepted")
	}
	if _, err := in.ExecuteTree(nil); err == nil {
		t.Fatal("nil tree accepted")
	}
	if _, err := in.ExecuteTree(plan.Join(plan.LeafNode(0), plan.LeafNode(1))); err == nil {
		t.Fatal("partial tree accepted")
	}
	if _, err := in.ExecuteTree(plan.Join(plan.LeafNode(0), plan.Join(plan.LeafNode(1), plan.LeafNode(1)))); err == nil {
		t.Fatal("duplicate leaf accepted")
	}
}

func TestTableCol(t *testing.T) {
	tb := &Table{Cols: []string{"x", "y"}}
	if tb.Col("y") != 1 || tb.Col("z") != -1 {
		t.Fatal("Col lookup wrong")
	}
}
