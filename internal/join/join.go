// Package join formulates the Join Query Plan Generation (JQPG) problem of
// Section 3.2 — relations with cardinalities, a query graph of pairwise
// selectivities, and the intermediate-results-size cost functions Cost_LDJ
// (left-deep) and Cost_BJ (bushy) — together with the two reductions of
// Section 4 connecting it to CEP Plan Generation:
//
//	CPG → JQPG (Theorem 1): |R_i| = W·r_i, f_{i,j} = sel_{i,j};
//	JQPG → CPG:             W = max|R_i|, r_i = |R_i|/W.
//
// A nested-loop executor over in-memory tables (exec.go) validates the cost
// model against actually materialised intermediate results.
package join

import (
	"fmt"

	"repro/internal/plan"
	"repro/internal/stats"
)

// Relation is one input of a join query.
type Relation struct {
	Name string
	Card float64 // cardinality |R_i|
}

// Query is a JQPG instance: relations plus the selectivity matrix of the
// query graph. Sel[i][j] is f_{i,j} (1 when no predicate links i and j);
// Sel[i][i] is the selectivity of the selection predicates on R_i, folded
// into the relation as a pre-filter.
type Query struct {
	Rels []Relation
	Sel  [][]float64
}

// NewQuery builds a query with a unit selectivity matrix.
func NewQuery(rels ...Relation) *Query {
	n := len(rels)
	q := &Query{Rels: rels, Sel: make([][]float64, n)}
	for i := range q.Sel {
		q.Sel[i] = make([]float64, n)
		for j := range q.Sel[i] {
			q.Sel[i][j] = 1
		}
	}
	return q
}

// SetSel records the selectivity between relations i and j (symmetric).
func (q *Query) SetSel(i, j int, sel float64) {
	q.Sel[i][j] = sel
	q.Sel[j][i] = sel
}

// N returns the number of relations.
func (q *Query) N() int { return len(q.Rels) }

// Validate checks structural consistency.
func (q *Query) Validate() error {
	n := q.N()
	if len(q.Sel) != n {
		return fmt.Errorf("join: selectivity matrix is %d×?, want %d", len(q.Sel), n)
	}
	for i := range q.Sel {
		if len(q.Sel[i]) != n {
			return fmt.Errorf("join: selectivity row %d has %d entries, want %d", i, len(q.Sel[i]), n)
		}
		for j := range q.Sel[i] {
			if q.Sel[i][j] != q.Sel[j][i] {
				return fmt.Errorf("join: selectivity matrix asymmetric at (%d,%d)", i, j)
			}
			if q.Sel[i][j] < 0 || q.Sel[i][j] > 1 {
				return fmt.Errorf("join: selectivity out of range at (%d,%d): %g", i, j, q.Sel[i][j])
			}
		}
	}
	for i, r := range q.Rels {
		if r.Card < 0 {
			return fmt.Errorf("join: negative cardinality for %s (index %d)", r.Name, i)
		}
	}
	return nil
}

// CostLDJ computes the left-deep-join cost of joining in the given order:
//
//	Cost_LDJ(L) = C_1 + Σ_{k=2..n} C(P_{k-1}, R_{i_k}),
//
// with C_1 = |R_{i_1}|·f_{i_1,i_1} and C(S, T) = |S|·|T|·f_{S,T}; the
// selection selectivity of each newly joined relation is applied as it
// enters (relations arrive pre-filtered, matching the expansion used in the
// proof of Theorem 1).
func (q *Query) CostLDJ(order []int) float64 {
	total := 0.0
	cur := 1.0
	for k, idx := range order {
		cur *= q.Rels[idx].Card * q.Sel[idx][idx]
		for _, prev := range order[:k] {
			cur *= q.Sel[prev][idx]
		}
		total += cur
	}
	return total
}

// CostBJ computes the bushy-join cost Σ_{N ∈ nodes(T)} C(N), with
// C(leaf R_i) = |R_i|·f_{i,i} and C(L ⋈ R) = |L|·|R|·f_{L,R}.
func (q *Query) CostBJ(root *plan.TreeNode) float64 {
	total := 0.0
	var rec func(n *plan.TreeNode) float64
	rec = func(n *plan.TreeNode) float64 {
		var card float64
		if n.IsLeaf() {
			card = q.Rels[n.Leaf].Card * q.Sel[n.Leaf][n.Leaf]
		} else {
			sel := 1.0
			for _, i := range n.Left.Leaves() {
				for _, j := range n.Right.Leaves() {
					sel *= q.Sel[i][j]
				}
			}
			card = rec(n.Left) * rec(n.Right) * sel
		}
		total += card
		return card
	}
	rec(root)
	return total
}

// ResultCard estimates the cardinality of the full join result.
func (q *Query) ResultCard() float64 {
	card := 1.0
	for i, r := range q.Rels {
		card *= r.Card * q.Sel[i][i]
	}
	for i := 0; i < q.N(); i++ {
		for j := i + 1; j < q.N(); j++ {
			card *= q.Sel[i][j]
		}
	}
	return card
}

// FromPatternStats reduces a CPG instance to a JQPG instance per Theorem 1:
// one relation per positive planning position with |R_i| = W·r_i, carrying
// the selectivity matrix across unchanged.
func FromPatternStats(ps *stats.PatternStats) *Query {
	n := ps.N()
	rels := make([]Relation, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("R%d", i+1)
		if i < len(ps.Types) && ps.Types[i] != "" {
			name = ps.Types[i]
		}
		rels[i] = Relation{Name: name, Card: ps.W * ps.Rates[i]}
	}
	q := NewQuery(rels...)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			q.Sel[i][j] = ps.Sel[i][j]
		}
	}
	return q
}

// ToPatternStats reduces a JQPG instance to a CPG instance: the window is
// W = max|R_i| (interpreted in seconds) and each type's arrival rate is
// r_i = |R_i|/W, so that W·r_i = |R_i| exactly as in the proof of the
// JQPG ⊆ CPG direction of Theorem 1.
func (q *Query) ToPatternStats() *stats.PatternStats {
	n := q.N()
	w := 0.0
	for _, r := range q.Rels {
		if r.Card > w {
			w = r.Card
		}
	}
	if w == 0 {
		w = 1
	}
	ps := &stats.PatternStats{
		W:         w,
		Types:     make([]string, n),
		Aliases:   make([]string, n),
		TermIndex: make([]int, n),
		Kleene:    make([]bool, n),
		Rates:     make([]float64, n),
		Sel:       make([][]float64, n),
	}
	for i := 0; i < n; i++ {
		ps.Types[i] = q.Rels[i].Name
		ps.Aliases[i] = fmt.Sprintf("e%d", i+1)
		ps.TermIndex[i] = i
		ps.Rates[i] = q.Rels[i].Card / w
		ps.Sel[i] = append([]float64(nil), q.Sel[i]...)
	}
	return ps
}
