package drift

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"repro/internal/event"
	"repro/internal/pattern"
)

func TestCollectorRatesAndReadiness(t *testing.T) {
	c := NewCollector(4*event.Second, 10)
	sc := event.NewSchema("A", "x")
	if c.Ready() {
		t.Fatal("empty collector reports ready")
	}
	// 10 events/second for 8 seconds.
	for ts := event.Time(0); ts < 8*event.Second; ts += 100 {
		c.Observe(event.New(sc, ts, 1))
	}
	if !c.Ready() {
		t.Fatal("collector not ready after 8s of data")
	}
	if got := c.Rate("A"); math.Abs(got-10) > 2 {
		t.Fatalf("Rate(A) = %.2f, want ~10", got)
	}
	if got := c.Rate("B"); got != 0 {
		t.Fatalf("Rate(B) = %.2f for unseen type", got)
	}
	if got := c.Events(); got != 80 {
		t.Fatalf("Events = %d, want 80", got)
	}
}

func TestCollectorQuietTypeFloor(t *testing.T) {
	c := NewCollector(2*event.Second, 0)
	sa := event.NewSchema("A", "x")
	sb := event.NewSchema("B", "x")
	// B is active early, then goes silent while A keeps arriving far past
	// the window.
	for ts := event.Time(0); ts < 1*event.Second; ts += 50 {
		c.Observe(event.New(sb, ts, 1))
	}
	for ts := event.Time(0); ts < 20*event.Second; ts += 100 {
		c.Observe(event.New(sa, ts, 1))
	}
	got := c.Rate("B")
	if got <= 0 {
		t.Fatalf("Rate(B) = %.3f: a previously active type must keep a positive floor", got)
	}
	if got > 1 {
		t.Fatalf("Rate(B) = %.3f: silent type should be near zero, not %v", got, got)
	}
}

func TestCollectorSnapshotSelectivity(t *testing.T) {
	c := NewCollector(10*event.Second, 0)
	sa := event.NewSchema("A", "x")
	sb := event.NewSchema("B", "x")
	// A.x alternates 0/1 on a period coprime with the reservoir sampling
	// stride; B.x always 5. a.x < b.x always holds; the unary a.x > 0 holds
	// half the time.
	for i := 0; i < 400; i++ {
		c.Observe(event.New(sa, event.Time(i*10), float64(i/4%2)))
		c.Observe(event.New(sb, event.Time(i*10), 5))
	}
	alias := map[string]string{"a": "A", "b": "B"}
	unary := pattern.Cmp(pattern.Ref("a", "x"), pattern.Gt, pattern.Const(0))
	pair := pattern.AttrCmp("a", "x", pattern.Lt, "b", "x")
	st := c.Snapshot([]pattern.Condition{unary, pair}, alias)
	if got := st.Selectivity(unary); math.Abs(got-0.5) > 0.15 {
		t.Fatalf("unary selectivity = %.2f, want ~0.5", got)
	}
	if got := st.Selectivity(pair); got != 1 {
		t.Fatalf("pair selectivity = %.2f, want 1", got)
	}
	if st.Rate("A") <= 0 || st.Rate("B") <= 0 {
		t.Fatalf("snapshot rates missing: A=%.2f B=%.2f", st.Rate("A"), st.Rate("B"))
	}
}

// TestCollectorUnarySource pins the acceptance contract of the ingress
// filter index integration: when a measured unary source is installed,
// re-planning consumes the post-index rate it reports — the reservoir
// sample is only a fallback — while pairwise conditions and unary
// conditions the source declines stay on sampling.
func TestCollectorUnarySource(t *testing.T) {
	c := NewCollector(10*event.Second, 0)
	sa := event.NewSchema("A", "x")
	sb := event.NewSchema("B", "x")
	// The sampled stream says a.x > 0 half the time; the measured source
	// will contradict it, and must win.
	for i := 0; i < 400; i++ {
		c.Observe(event.New(sa, event.Time(i*10), float64(i/4%2)))
		c.Observe(event.New(sb, event.Time(i*10), 5))
	}
	alias := map[string]string{"a": "A", "b": "B"}
	unary := pattern.Cmp(pattern.Ref("a", "x"), pattern.Gt, pattern.Const(0))
	pair := pattern.AttrCmp("a", "x", pattern.Lt, "b", "x")

	var askedTyp string
	c.SetUnarySource(func(typ string, cond pattern.Condition) (float64, bool) {
		askedTyp = typ
		return 0.125, true
	})
	if got, ok := c.Selectivity(unary, alias); !ok || got != 0.125 {
		t.Fatalf("Selectivity(unary) = %v, %v; want measured 0.125", got, ok)
	}
	if askedTyp != "A" {
		t.Fatalf("source asked for type %q, want the alias's type A", askedTyp)
	}
	// Snapshot (the re-planning entry point) must carry the measured value.
	st := c.Snapshot([]pattern.Condition{unary, pair}, alias)
	if got := st.Selectivity(unary); got != 0.125 {
		t.Fatalf("Snapshot unary selectivity = %v, want measured 0.125", got)
	}
	if got := st.Selectivity(pair); got != 1 {
		t.Fatalf("Snapshot pair selectivity = %v, want sampled 1 (source must not be consulted)", got)
	}

	// A declining source falls back to the sampled estimate.
	c.SetUnarySource(func(string, pattern.Condition) (float64, bool) { return 0, false })
	if got, ok := c.Selectivity(unary, alias); !ok || math.Abs(got-0.5) > 0.15 {
		t.Fatalf("declined source: Selectivity = %v, %v; want sampled ~0.5", got, ok)
	}
	// And clearing it restores pure sampling.
	c.SetUnarySource(nil)
	if got, ok := c.Selectivity(unary, alias); !ok || math.Abs(got-0.5) > 0.15 {
		t.Fatalf("cleared source: Selectivity = %v, %v; want sampled ~0.5", got, ok)
	}
}

// TestCollectorConcurrentLanes drives the collector from many goroutines at
// once — the shape of a session whose shared and private lanes (and the
// submit path) all touch the collector — and checks the totals against
// per-goroutine ground truth, with concurrent snapshot readers racing the
// writers. Run with -race.
func TestCollectorConcurrentLanes(t *testing.T) {
	const lanes = 8
	const perLane = 5000
	c := NewCollector(4*event.Second, 0)
	schemas := make([]*event.Schema, lanes)
	for i := range schemas {
		schemas[i] = event.NewSchema(fmt.Sprintf("T%d", i), "x")
	}
	var wg sync.WaitGroup
	for i := 0; i < lanes; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sc := schemas[i]
			for k := 0; k < perLane; k++ {
				c.Observe(event.New(sc, event.Time(k), float64(k)))
			}
		}(i)
	}
	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
				c.Snapshot(nil, nil)
				c.Rate("T0")
				c.Ready()
			}
		}
	}()
	wg.Wait()
	close(stop)
	readers.Wait()
	for i := 0; i < lanes; i++ {
		typ := fmt.Sprintf("T%d", i)
		if got := c.TypeTotal(typ); got != perLane {
			t.Fatalf("TypeTotal(%s) = %d, want %d", typ, got, perLane)
		}
	}
	if got := c.Events(); got != lanes*perLane {
		t.Fatalf("Events = %d, want %d", got, lanes*perLane)
	}
}
