package drift

import "testing"

func TestDetectorHysteresisNoFlapOnNoise(t *testing.T) {
	d := NewDetector(Config{Threshold: 0.25, Hysteresis: 2})
	// A noisy but stationary stream: the score pops over the threshold on
	// isolated checks but never twice in a row — no trigger, ever.
	scores := []float64{0.1, 0.4, 0.1, 0.5, 0.0, 0.3, 0.2, 0.6, 0.1}
	for i, s := range scores {
		dec := d.Check(1, 1+s, 1, int64(i*100))
		if dec.Trigger {
			t.Fatalf("check %d (score %.2f) triggered despite hysteresis", i, s)
		}
	}
	if d.Reopts() != 0 {
		t.Fatalf("reopts = %d on a non-triggering sequence", d.Reopts())
	}
}

func TestDetectorTriggersOnSustainedDrift(t *testing.T) {
	d := NewDetector(Config{Threshold: 0.25, Hysteresis: 2})
	if dec := d.Check(1, 2, 1, 0); dec.Trigger {
		t.Fatal("first over-threshold check must not trigger (hysteresis 2)")
	}
	dec := d.Check(1, 2, 1, 100)
	if !dec.Trigger {
		t.Fatal("second consecutive over-threshold check must trigger")
	}
	if dec.Score != 1 || dec.Consecutive != 2 {
		t.Fatalf("decision = %+v, want score 1 consecutive 2", dec)
	}
}

func TestDetectorWarmupSuppression(t *testing.T) {
	d := NewDetector(Config{Threshold: 0.25, Hysteresis: 1, Warmup: 1000})
	for pos := int64(0); pos < 1000; pos += 100 {
		if dec := d.Check(1, 10, 1, pos); dec.Trigger {
			t.Fatalf("trigger at pos %d during warmup", pos)
		}
	}
	if dec := d.Check(1, 10, 1, 1000); !dec.Trigger {
		t.Fatal("no trigger after warmup despite sustained drift")
	}
}

func TestDetectorMinIntervalAcrossSplice(t *testing.T) {
	d := NewDetector(Config{Threshold: 0.25, Hysteresis: 1, MinInterval: 500})
	if dec := d.Check(1, 2, 1, 100); !dec.Trigger {
		t.Fatal("expected initial trigger")
	}
	// The re-optimization replaced component 1 with components 7 and 8.
	d.Spliced([]int{1}, []int{7, 8}, 100)
	if d.Reopts() != 1 {
		t.Fatalf("reopts = %d, want 1", d.Reopts())
	}
	// Successors inherit the splice position: still inside MinInterval.
	if dec := d.Check(7, 2, 1, 300); dec.Trigger {
		t.Fatal("successor re-triggered inside MinInterval")
	}
	if dec := d.Check(7, 2, 1, 700); !dec.Trigger {
		t.Fatal("successor did not trigger after MinInterval elapsed")
	}
	st, ok := d.Peek(8)
	if !ok || st.Reopts != 1 {
		t.Fatalf("successor state = %+v ok=%v, want inherited reopts 1", st, ok)
	}
}

func TestDetectorBudget(t *testing.T) {
	d := NewDetector(Config{Threshold: 0.25, Hysteresis: 1, Budget: 1})
	if dec := d.Check(1, 2, 1, 0); !dec.Trigger {
		t.Fatal("expected first trigger")
	}
	d.Spliced([]int{1}, []int{2}, 0)
	for pos := int64(100); pos < 1000; pos += 100 {
		if dec := d.Check(2, 5, 1, pos); dec.Trigger {
			t.Fatalf("trigger at pos %d beyond budget", pos)
		}
	}
}

func TestDetectorScoreGuards(t *testing.T) {
	if s := Score(0, 1); s != 0 {
		t.Fatalf("Score(0,1) = %v", s)
	}
	if s := Score(1, 0); s != 0 {
		t.Fatalf("Score(1,0) = %v", s)
	}
	if s := Score(3, 2); s != 0.5 {
		t.Fatalf("Score(3,2) = %v", s)
	}
}

func TestDetectorRetain(t *testing.T) {
	d := NewDetector(Config{Hysteresis: 1})
	d.Check(1, 2, 1, 0)
	d.Check(2, 2, 1, 0)
	d.Retain(map[int]bool{2: true})
	if _, ok := d.Peek(1); ok {
		t.Fatal("retired component state survived Retain")
	}
	if _, ok := d.Peek(2); !ok {
		t.Fatal("live component state dropped by Retain")
	}
}
