// Package drift is the statistics-drift half of the adaptivity loop the
// paper calls for in Section 6.3: a CEP engine "must continuously estimate
// the current statistic values and, when a significant deviation is
// detected, adapt itself by recalculating the affected evaluation plans".
//
// The package provides the two pieces a serving runtime composes:
//
//   - Collector, a concurrency-safe online estimator of per-type arrival
//     rates (epoch-bucketed atomic counters over a sliding window) and
//     per-predicate selectivities (sampled per-type reservoirs, evaluated
//     lazily at snapshot time). One collector shadows a whole Session: every
//     submitted event is observed once, however many shared or private lanes
//     consume it.
//
//   - Detector, the decision logic: given the modeled cost of the currently
//     running plan re-priced under fresh measurements (stale) and the cost
//     of a freshly generated plan (fresh), it applies a cost-ratio test with
//     warmup, hysteresis (consecutive over-threshold checks), a per-component
//     minimum re-optimization interval and a global re-optimization budget —
//     the machinery that keeps a noisy but stationary stream from flapping
//     between plans.
//
// The session-facing controller that drains, re-plans and splices the
// affected shared DAG lives in the root package (session_adaptive.go); the
// private-runtime counterpart is internal/adaptive, whose Controller can
// draw its statistics from the same Collector.
package drift

import (
	"sync"
	"sync/atomic"

	"repro/internal/event"
	"repro/internal/pattern"
	"repro/internal/stats"
)

const (
	// rateBuckets is the number of epoch buckets the sliding rate window is
	// divided into; finer buckets react faster to a regime shift at the cost
	// of noisier estimates.
	rateBuckets = 8
	// reservoirSize is the number of recent events retained per type for
	// selectivity sampling.
	reservoirSize = 64
	// reservoirStride samples every strideth event of a type into the
	// reservoir, bounding the mutex work on hot types.
	reservoirStride = 4
	// maxSelPairs bounds the reservoir pairs examined per pairwise
	// selectivity estimate, keeping drift checks cheap on the hot path
	// (deterministic strided sampling, like the offline collector). 256
	// samples resolve a selectivity to ±0.03 — far finer than any drift
	// threshold worth acting on.
	maxSelPairs = 256
)

// Collector estimates rates and selectivities over a sliding window of the
// live stream. Observe is safe for concurrent use and cheap on the hot path
// (per-type atomic counters, a sampled reservoir write every
// reservoirStride events); Snapshot and Rate may run concurrently with
// Observe and see slightly stale but never corrupt data.
type Collector struct {
	window   event.Time
	epochLen event.Time
	warmup   int64

	mu       sync.RWMutex // guards the types map (growth only) and unarySrc
	types    map[string]*typeState
	unarySrc UnarySource

	events   atomic.Int64
	firstTS  atomic.Int64
	hasFirst atomic.Bool
	lastTS   atomic.Int64
}

// typeState is one event type's windowed counters and reservoir.
type typeState struct {
	total atomic.Int64
	// counts[i] holds the arrivals of the epoch stamped in epochs[i]; a slot
	// is recycled (reset under mu) when its epoch falls out of the ring.
	counts [rateBuckets]atomic.Int64
	epochs [rateBuckets]atomic.Int64
	mu     sync.Mutex // serializes slot recycling and reservoir writes
	res    []*event.Event
	resPos int
}

// NewCollector builds a collector over the given sliding window.
// warmupEvents is the observation count below which Ready reports false.
func NewCollector(window event.Time, warmupEvents int64) *Collector {
	if window <= 0 {
		panic("drift: collector window must be positive")
	}
	epochLen := window / rateBuckets
	if epochLen <= 0 {
		epochLen = 1
	}
	return &Collector{
		window:   window,
		epochLen: epochLen,
		warmup:   warmupEvents,
		types:    make(map[string]*typeState),
	}
}

// Window returns the sliding estimation window.
func (c *Collector) Window() event.Time { return c.window }

// Events returns the total number of observed events.
func (c *Collector) Events() int64 { return c.events.Load() }

// TypeTotal returns the lifetime observation count of one type.
func (c *Collector) TypeTotal(typ string) int64 {
	c.mu.RLock()
	ts := c.types[typ]
	c.mu.RUnlock()
	if ts == nil {
		return 0
	}
	return ts.total.Load()
}

// Ready reports whether the collector has seen enough of the stream for its
// estimates to be trusted: at least warmupEvents observations spanning at
// least one full window.
func (c *Collector) Ready() bool {
	if c.events.Load() < c.warmup {
		return false
	}
	return c.lastTS.Load()-c.firstTS.Load() >= c.window
}

// state returns (creating if needed) the per-type state.
func (c *Collector) state(typ string) *typeState {
	c.mu.RLock()
	ts := c.types[typ]
	c.mu.RUnlock()
	if ts != nil {
		return ts
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if ts = c.types[typ]; ts == nil {
		ts = &typeState{}
		c.types[typ] = ts
	}
	return ts
}

// Observe feeds one event. Events should be close to timestamp order (the
// session submit path is); mild disorder only blurs the windowed estimates,
// never the lifetime totals.
func (c *Collector) Observe(e *event.Event) {
	c.events.Add(1)
	if c.hasFirst.CompareAndSwap(false, true) {
		c.firstTS.Store(e.TS)
	}
	for {
		last := c.lastTS.Load()
		if e.TS <= last || c.lastTS.CompareAndSwap(last, e.TS) {
			break
		}
	}
	c.observeTyped(c.state(e.Type), e)
}

// ObserveBatch feeds a timestamp-ordered batch of events, equivalent to
// calling Observe on each but amortizing the shared bookkeeping: the event
// counter and last-timestamp watermark advance once per batch, and the
// per-type state lookup (a read-locked map access) is reused across runs of
// same-type events. This is the SubmitBatch companion — with batched intake
// the collector's per-event cost is mostly these shared updates.
func (c *Collector) ObserveBatch(evs []*event.Event) {
	n := len(evs)
	if n == 0 {
		return
	}
	c.events.Add(int64(n))
	if c.hasFirst.CompareAndSwap(false, true) {
		c.firstTS.Store(evs[0].TS)
	}
	maxTS := evs[n-1].TS
	for _, e := range evs {
		if e.TS > maxTS {
			maxTS = e.TS
		}
	}
	for {
		last := c.lastTS.Load()
		if maxTS <= last || c.lastTS.CompareAndSwap(last, maxTS) {
			break
		}
	}
	var runType string
	var run *typeState
	for _, e := range evs {
		if run == nil || e.Type != runType {
			run, runType = c.state(e.Type), e.Type
		}
		c.observeTyped(run, e)
	}
}

// observeTyped is the per-event, per-type half of Observe: lifetime total,
// windowed epoch counter and the strided reservoir write.
func (c *Collector) observeTyped(ts *typeState, e *event.Event) {
	n := ts.total.Add(1)

	ep := e.TS / c.epochLen
	slot := int(ep % rateBuckets)
	if ts.epochs[slot].Load() != ep {
		ts.mu.Lock()
		if ts.epochs[slot].Load() != ep {
			ts.counts[slot].Store(0)
			ts.epochs[slot].Store(ep)
		}
		ts.mu.Unlock()
	}
	ts.counts[slot].Add(1)

	if n%reservoirStride == 0 {
		ts.mu.Lock()
		if len(ts.res) < reservoirSize {
			ts.res = append(ts.res, e)
		} else {
			ts.res[ts.resPos%reservoirSize] = e
			ts.resPos++
		}
		ts.mu.Unlock()
	}
}

// Rates fills dst (allocating if nil) with the current Rate of every type
// the collector has ever seen and returns it. Entries for types absent from
// the collector are not removed from dst; callers reuse one map across
// calls precisely so that comparison against the previous snapshot is a
// single pass.
func (c *Collector) Rates(dst map[string]float64) map[string]float64 {
	c.mu.RLock()
	names := make([]string, 0, len(c.types))
	for typ := range c.types {
		names = append(names, typ)
	}
	c.mu.RUnlock()
	if dst == nil {
		dst = make(map[string]float64, len(names))
	}
	for _, typ := range names {
		dst[typ] = c.Rate(typ)
	}
	return dst
}

// Rate returns the current arrival-rate estimate for the type in
// events/second, 0 for never-seen types. A type that was active earlier but
// has gone quiet inside the window reports a small positive floor (half an
// event per window) rather than zero, so replanning still knows the type
// exists — and knows it is now rare.
func (c *Collector) Rate(typ string) float64 {
	c.mu.RLock()
	ts := c.types[typ]
	c.mu.RUnlock()
	if ts == nil {
		return 0
	}
	windowSec := float64(c.window) / float64(event.Second)
	nowEp := c.lastTS.Load() / c.epochLen
	total := int64(0)
	for i := 0; i < rateBuckets; i++ {
		ep := ts.epochs[i].Load()
		if ep > nowEp-rateBuckets && ep <= nowEp {
			total += ts.counts[i].Load()
		}
	}
	if total == 0 {
		if ts.total.Load() > 0 {
			return 0.5 / windowSec
		}
		return 0
	}
	return float64(total) / windowSec
}

// reservoir returns a snapshot copy of the type's sampled events.
func (c *Collector) reservoir(typ string) []*event.Event {
	c.mu.RLock()
	ts := c.types[typ]
	c.mu.RUnlock()
	if ts == nil {
		return nil
	}
	ts.mu.Lock()
	out := append([]*event.Event(nil), ts.res...)
	ts.mu.Unlock()
	return out
}

// UnarySource supplies measured selectivities for unary conditions,
// typically the ingress filter index's own hit counters. When set, unary
// estimates price the *post-index* stream the lanes actually see, not the
// sampled pre-filter reservoir.
type UnarySource func(typ string, cond pattern.Condition) (float64, bool)

// SetUnarySource installs (or clears, with nil) the measured unary source
// consulted by Selectivity ahead of reservoir sampling.
func (c *Collector) SetUnarySource(src UnarySource) {
	c.mu.Lock()
	c.unarySrc = src
	c.mu.Unlock()
}

// Selectivity estimates the condition's selectivity. Unary conditions are
// answered by the measured UnarySource when one is installed and has seen
// enough data — so re-planning prices post-index rates — otherwise (and
// for all pairwise conditions) the per-type reservoirs are sampled,
// exactly like the single-runtime online estimator but with the pair
// budget capped for the drift-check hot path. The boolean result reports
// whether enough data was available.
func (c *Collector) Selectivity(cond pattern.Condition, aliasTypes map[string]string) (float64, bool) {
	if als := cond.Aliases(); len(als) == 1 {
		c.mu.RLock()
		src := c.unarySrc
		c.mu.RUnlock()
		if src != nil {
			if sel, ok := src(aliasTypes[als[0]], cond); ok {
				return sel, true
			}
		}
	}
	return stats.SampleSelectivity(cond, func(alias string) []*event.Event {
		return c.reservoir(aliasTypes[alias])
	}, maxSelPairs)
}

// Snapshot freezes the current estimates into a Stats usable by plan
// generation: rates for every observed type, selectivities for the given
// conditions (aliases resolved through aliasTypes). It satisfies the
// adaptive-controller Source contract, so a private runtime's
// re-optimization loop can draw from the same collector as the shared DAGs.
func (c *Collector) Snapshot(conds []pattern.Condition, aliasTypes map[string]string) *stats.Stats {
	s := stats.New()
	c.mu.RLock()
	names := make([]string, 0, len(c.types))
	for typ := range c.types {
		names = append(names, typ)
	}
	c.mu.RUnlock()
	for _, typ := range names {
		if r := c.Rate(typ); r > 0 {
			s.SetRate(typ, r)
		}
	}
	for _, cond := range conds {
		if sel, ok := c.Selectivity(cond, aliasTypes); ok {
			s.SetSelectivity(cond, sel)
		}
	}
	return s
}
