package drift

import "repro/internal/cost"

// Config tunes the drift detector. The zero value selects the defaults.
type Config struct {
	// Threshold is the minimum drift score (staleCost/freshCost − 1) a check
	// must report before it counts toward a trigger; default 0.25.
	Threshold float64
	// Hysteresis is the number of consecutive over-threshold checks required
	// to trigger a re-optimization; default 2. One noisy check never flips a
	// plan.
	Hysteresis int
	// MinInterval is the minimum stream distance (in the caller's position
	// units, typically events) between re-optimizations of one component
	// lineage; default 0 (hysteresis is the only spacing).
	MinInterval int64
	// Warmup suppresses triggers below this stream position; default 0.
	Warmup int64
	// Budget caps the total number of re-optimizations the detector will
	// ever trigger; 0 means unlimited.
	Budget int64
}

func (c Config) withDefaults() Config {
	if c.Threshold <= 0 {
		c.Threshold = 0.25
	}
	if c.Hysteresis <= 0 {
		c.Hysteresis = 2
	}
	return c
}

// Decision is the outcome of one drift check.
type Decision struct {
	// Score is staleCost/freshCost − 1: how much cheaper (relatively) a
	// fresh plan is modeled to be than the running one under current
	// measurements. 0 when either cost is non-positive.
	Score float64
	// Consecutive counts the over-threshold checks in a row, this one
	// included.
	Consecutive int
	// Trigger reports that a re-optimization should be performed now.
	Trigger bool
}

// State is a reporting snapshot of one component's drift bookkeeping.
type State struct {
	Score        float64
	StaleCost    float64
	FreshCost    float64
	Consecutive  int
	Reopts       int
	LastReoptPos int64
}

// Detector applies the cost-ratio drift test per component. It is a pure
// bookkeeping machine — the caller measures statistics, prices plans and
// performs the actual re-optimization — and is not safe for concurrent use
// (the session drives it under its own lock).
type Detector struct {
	cfg   Config
	total int64
	comps map[int]*compState
}

type compState struct {
	State
	fired bool // LastReoptPos is meaningful
}

// NewDetector builds a detector.
func NewDetector(cfg Config) *Detector {
	return &Detector{cfg: cfg.withDefaults(), comps: make(map[int]*compState)}
}

// Reopts returns the total number of re-optimizations triggered so far.
func (d *Detector) Reopts() int64 { return d.total }

// Score computes the drift score of a stale/fresh cost pair — an alias of
// cost.DriftScore, re-exported so detector callers need not import the cost
// model.
func Score(stale, fresh float64) float64 { return cost.DriftScore(stale, fresh) }

// Check records one measurement for a component: the modeled cost of its
// running plans re-priced under fresh statistics (stale) and the modeled
// cost of freshly generated plans (fresh), at stream position pos. It
// returns the decision; when Trigger is true the caller is expected to
// re-optimize and then call Spliced with the successor component ids.
func (d *Detector) Check(comp int, stale, fresh float64, pos int64) Decision {
	st := d.comps[comp]
	if st == nil {
		st = &compState{}
		d.comps[comp] = st
	}
	st.StaleCost, st.FreshCost = stale, fresh
	st.Score = Score(stale, fresh)
	if st.Score > d.cfg.Threshold && pos >= d.cfg.Warmup {
		st.Consecutive++
	} else {
		st.Consecutive = 0
	}
	dec := Decision{Score: st.Score, Consecutive: st.Consecutive}
	if st.Consecutive < d.cfg.Hysteresis {
		return dec
	}
	if st.fired && pos-st.LastReoptPos < d.cfg.MinInterval {
		return dec
	}
	if d.cfg.Budget > 0 && d.total >= d.cfg.Budget {
		return dec
	}
	dec.Trigger = true
	return dec
}

// Spliced records that the components in old were re-optimized at stream
// position pos into the successor components in newIDs. The successors
// inherit the lineage's re-optimization count (plus one) and the splice
// position, so MinInterval keeps suppressing immediate re-triggers across
// the id change; the predecessors' states are dropped.
func (d *Detector) Spliced(old []int, newIDs []int, pos int64) {
	reopts := 0
	for _, id := range old {
		if st := d.comps[id]; st != nil {
			if st.Reopts > reopts {
				reopts = st.Reopts
			}
			delete(d.comps, id)
		}
	}
	d.total++
	for _, id := range newIDs {
		d.comps[id] = &compState{
			State: State{Reopts: reopts + 1, LastReoptPos: pos},
			fired: true,
		}
	}
}

// Peek returns the reporting snapshot of one component.
func (d *Detector) Peek(comp int) (State, bool) {
	st := d.comps[comp]
	if st == nil {
		return State{}, false
	}
	return st.State, true
}

// Retain drops the bookkeeping of every component not in live — the ids
// retired by non-drift splices (query churn) whose successors start fresh.
func (d *Detector) Retain(live map[int]bool) {
	for id := range d.comps {
		if !live[id] {
			delete(d.comps, id)
		}
	}
}
