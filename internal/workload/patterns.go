package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/event"
	"repro/internal/pattern"
)

// Category names the five pattern sets of the paper's evaluation
// (Section 7.2).
type Category string

// The five evaluated pattern categories.
const (
	CatSequence    Category = "sequence"
	CatNegation    Category = "negation"
	CatConjunction Category = "conjunction"
	CatKleene      Category = "kleene"
	CatDisjunction Category = "disjunction"
)

// Categories lists all five in the paper's presentation order.
func Categories() []Category {
	return []Category{CatSequence, CatNegation, CatConjunction, CatKleene, CatDisjunction}
}

// Pattern generates one random pattern of the category. size is the number
// of participating positive events; for CatDisjunction the pattern is a
// disjunction of three sequences of `size` events each, following the
// paper's "composite patterns, consisting of a disjunction of three
// sequences". Predicates follow the paper's recipe — roughly size/2
// conditions comparing `difference` attributes — extended with occasional
// `bucket` equalities to diversify selectivities into the published
// 0.002–0.88 range.
func (s *Stocks) Pattern(cat Category, size int, window event.Time, rng *rand.Rand) *pattern.Pattern {
	if size < 2 {
		panic("workload: pattern size must be at least 2")
	}
	switch cat {
	case CatSequence:
		terms, aliases := s.terms(rng, size, "e")
		return pattern.Seq(window, terms...).Where(s.conds(rng, aliases)...)
	case CatConjunction:
		terms, aliases := s.terms(rng, size, "e")
		return pattern.And(window, terms...).Where(s.conds(rng, aliases)...)
	case CatNegation:
		terms, aliases := s.terms(rng, size, "e")
		// Negate one non-edge event when possible (a middle NOT is the
		// paper's SEQ(A, NOT(B), C, D) shape).
		at := 1
		if size > 2 {
			at = 1 + rng.Intn(size-2)
		}
		terms[at].Event.Negated = true
		aliases = append(aliases[:at], aliases[at+1:]...)
		return pattern.Seq(window, terms...).Where(s.conds(rng, aliases)...)
	case CatKleene:
		terms, aliases := s.terms(rng, size, "e")
		terms[rng.Intn(size)].Event.Kleene = true
		return pattern.Seq(window, terms...).Where(s.conds(rng, aliases)...)
	case CatDisjunction:
		var subs []pattern.Term
		var allConds []pattern.Condition
		for d := 0; d < 3; d++ {
			terms, aliases := s.terms(rng, size, fmt.Sprintf("d%d_", d))
			sub := pattern.Seq(window, terms...)
			subs = append(subs, pattern.Sub(sub))
			allConds = append(allConds, s.conds(rng, aliases)...)
		}
		return pattern.Or(window, subs...).Where(allConds...)
	}
	panic(fmt.Sprintf("workload: unknown category %q", cat))
}

// terms picks `size` distinct symbols and builds positive event terms.
func (s *Stocks) terms(rng *rand.Rand, size int, prefix string) ([]pattern.Term, []string) {
	if size > len(s.Symbols) {
		panic("workload: pattern size exceeds symbol count")
	}
	picked := rng.Perm(len(s.Symbols))[:size]
	terms := make([]pattern.Term, size)
	aliases := make([]string, size)
	for i, idx := range picked {
		alias := fmt.Sprintf("%s%d", prefix, i)
		terms[i] = pattern.E(s.Symbols[idx], alias)
		aliases[i] = alias
	}
	return terms, aliases
}

// conds builds roughly len(aliases)/2 pairwise predicates over distinct
// alias pairs.
func (s *Stocks) conds(rng *rand.Rand, aliases []string) []pattern.Condition {
	n := len(aliases)
	want := n / 2
	if want == 0 {
		return nil
	}
	var out []pattern.Condition
	tried := 0
	for len(out) < want && tried < 10*want {
		tried++
		i, j := rng.Intn(n), rng.Intn(n)
		if i == j {
			continue
		}
		switch rng.Intn(4) {
		case 0, 1: // the paper's "m.difference < g.difference" (sel ≈ 0.5)
			out = append(out, pattern.AttrCmp(aliases[i], AttrDifference, pattern.Lt, aliases[j], AttrDifference))
		case 2: // bucket equality (sel ≈ 1/Buckets)
			out = append(out, pattern.AttrCmp(aliases[i], AttrBucket, pattern.Eq, aliases[j], AttrBucket))
		case 3: // bucket inequality (sel ≈ 0.45)
			out = append(out, pattern.AttrCmp(aliases[i], AttrBucket, pattern.Lt, aliases[j], AttrBucket))
		}
	}
	return out
}

// ChainConjunction builds a conjunction whose query graph is a chain:
// consecutive events linked by one `difference` comparison each. Chain
// graphs are the acyclic topology Section 4.3's polynomial algorithms
// target, so this generator feeds the KBZ extension experiments.
func (s *Stocks) ChainConjunction(size int, window event.Time, rng *rand.Rand) *pattern.Pattern {
	terms, aliases := s.terms(rng, size, "e")
	p := pattern.And(window, terms...)
	for i := 0; i+1 < len(aliases); i++ {
		p.Conds = append(p.Conds,
			pattern.AttrCmp(aliases[i], AttrDifference, pattern.Lt, aliases[i+1], AttrDifference))
	}
	return p
}

// PatternSet generates `perSize` patterns for every size in sizes,
// deterministic in the seed.
func (s *Stocks) PatternSet(cat Category, sizes []int, perSize int, window event.Time, seed int64) []*pattern.Pattern {
	rng := rand.New(rand.NewSource(seed))
	var out []*pattern.Pattern
	for _, size := range sizes {
		for k := 0; k < perSize; k++ {
			out = append(out, s.Pattern(cat, size, window, rng))
		}
	}
	return out
}
