package workload

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/event"
	"repro/internal/pattern"
	"repro/internal/stats"
)

func TestNewStocksDeterministic(t *testing.T) {
	a := NewStocks(StockConfig{Symbols: 10, Seed: 42})
	b := NewStocks(StockConfig{Symbols: 10, Seed: 42})
	for _, sym := range a.Symbols {
		if a.Rates[sym] != b.Rates[sym] {
			t.Fatalf("rates differ for %s", sym)
		}
	}
	c := NewStocks(StockConfig{Symbols: 10, Seed: 43})
	same := true
	for _, sym := range a.Symbols {
		if a.Rates[sym] != c.Rates[sym] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical rates")
	}
}

func TestRatesWithinPublishedRange(t *testing.T) {
	s := NewStocks(StockConfig{Symbols: 50, MinRate: 1, MaxRate: 45, Seed: 7})
	for sym, r := range s.Rates {
		if r < 1 || r > 45 {
			t.Fatalf("%s rate %g outside [1,45]", sym, r)
		}
	}
}

func TestGenerateStreamProperties(t *testing.T) {
	s := NewStocks(StockConfig{Symbols: 8, Events: 5000, Seed: 11})
	events := s.Generate()
	if len(events) != 5000 {
		t.Fatalf("generated %d events, want 5000", len(events))
	}
	for i := 1; i < len(events); i++ {
		if events[i].TS < events[i-1].TS {
			t.Fatalf("stream disordered at %d", i)
		}
		if events[i].Serial != events[i-1].Serial+1 {
			t.Fatalf("serials not stamped at %d", i)
		}
	}
	// difference must equal the actual price delta per symbol.
	lastPrice := map[string]float64{}
	for _, e := range events {
		price := e.MustAttr(AttrPrice)
		diff := e.MustAttr(AttrDifference)
		if prev, ok := lastPrice[e.Type]; ok {
			// price was clamped at 1, so allow the clamp case through
			if math.Abs((prev+diff)-price) > 1e-9 && price != 1 {
				t.Fatalf("difference inconsistent for %s: %g + %g != %g", e.Type, prev, diff, price)
			}
		}
		lastPrice[e.Type] = price
		b := e.MustAttr(AttrBucket)
		if b < 0 || b > 9 || b != math.Floor(b) {
			t.Fatalf("bucket out of range: %g", b)
		}
	}
}

func TestGeneratedRatesMatchMeasured(t *testing.T) {
	s := NewStocks(StockConfig{Symbols: 6, Events: 30000, Seed: 13})
	events := s.Generate()
	st := stats.Measure(events, nil, nil)
	for _, sym := range s.Symbols {
		want := s.Rates[sym]
		got := st.Rate(sym)
		if got < want*0.7 || got > want*1.3 {
			t.Fatalf("%s: measured rate %g, assigned %g", sym, got, want)
		}
	}
}

func TestPatternCategories(t *testing.T) {
	s := NewStocks(StockConfig{Symbols: 30, Seed: 5})
	rng := rand.New(rand.NewSource(1))
	w := 10 * event.Second
	for _, cat := range Categories() {
		for size := 3; size <= 7; size++ {
			p := s.Pattern(cat, size, w, rng)
			if err := p.Validate(s.Registry); err != nil {
				t.Fatalf("%s size %d: %v (%s)", cat, size, err, p)
			}
			switch cat {
			case CatSequence:
				if p.Op != pattern.OpSeq || p.Size() != size {
					t.Fatalf("%s: %s", cat, p)
				}
			case CatConjunction:
				if p.Op != pattern.OpAnd || p.Size() != size {
					t.Fatalf("%s: %s", cat, p)
				}
			case CatNegation:
				if len(p.Negatives()) != 1 || len(p.Positives()) != size-1 {
					t.Fatalf("%s: %s", cat, p)
				}
			case CatKleene:
				kl := 0
				for _, term := range p.Terms {
					if term.Event.Kleene {
						kl++
					}
				}
				if kl != 1 {
					t.Fatalf("%s: %s", cat, p)
				}
			case CatDisjunction:
				if p.Op != pattern.OpOr || len(p.Terms) != 3 || p.Size() != 3*size {
					t.Fatalf("%s: %s", cat, p)
				}
			}
			// Roughly size/2 predicates, as in the paper.
			if cat != CatDisjunction && len(p.Conds) > size {
				t.Fatalf("%s size %d: %d conds", cat, size, len(p.Conds))
			}
		}
	}
}

func TestPatternSetDeterministic(t *testing.T) {
	s := NewStocks(StockConfig{Symbols: 30, Seed: 5})
	a := s.PatternSet(CatSequence, []int{3, 4}, 2, event.Second, 99)
	b := s.PatternSet(CatSequence, []int{3, 4}, 2, event.Second, 99)
	if len(a) != 4 || len(b) != 4 {
		t.Fatalf("set sizes %d, %d", len(a), len(b))
	}
	for i := range a {
		if a[i].String() != b[i].String() {
			t.Fatalf("pattern %d differs:\n%s\n%s", i, a[i], b[i])
		}
	}
}

func TestSelectivitySpread(t *testing.T) {
	// The predicate mix must produce a wide selectivity range, echoing the
	// paper's 0.002–0.88.
	s := NewStocks(StockConfig{Symbols: 12, Events: 20000, Seed: 3})
	events := s.Generate()
	rng := rand.New(rand.NewSource(2))
	var min, max float64 = 1, 0
	for k := 0; k < 20; k++ {
		p := s.Pattern(CatConjunction, 4, 10*event.Second, rng)
		st := stats.MeasurePattern(events, p)
		for _, c := range p.Conds {
			sel := st.Selectivity(c)
			if sel < min {
				min = sel
			}
			if sel > max {
				max = sel
			}
		}
	}
	if min > 0.3 || max < 0.4 {
		t.Fatalf("selectivity spread too narrow: [%g, %g]", min, max)
	}
}

func TestPartitionAssignment(t *testing.T) {
	s := NewStocks(StockConfig{Symbols: 6, Events: 2000, Seed: 17, Partitions: 3})
	events := s.Generate()
	symIdx := map[string]int{}
	for i, sym := range s.Symbols {
		symIdx[sym] = i
	}
	seen := map[int]bool{}
	for _, e := range events {
		want := symIdx[e.Type] % 3
		if e.Partition != want {
			t.Fatalf("%s partition = %d, want %d", e.Type, e.Partition, want)
		}
		seen[e.Partition] = true
		if e.PSerial == 0 {
			t.Fatal("per-partition serials not stamped")
		}
	}
	if len(seen) != 3 {
		t.Fatalf("partitions used = %d", len(seen))
	}
}

func TestChainConjunctionTopology(t *testing.T) {
	s := NewStocks(StockConfig{Symbols: 20, Seed: 5})
	rng := rand.New(rand.NewSource(1))
	p := s.ChainConjunction(6, 10*event.Second, rng)
	if err := p.Validate(s.Registry); err != nil {
		t.Fatal(err)
	}
	if p.Op != pattern.OpAnd || len(p.Conds) != 5 {
		t.Fatalf("pattern = %s", p)
	}
}

func TestResetStream(t *testing.T) {
	s := NewStocks(StockConfig{Symbols: 4, Events: 100, Seed: 1})
	events := s.Generate()
	events[0].Consume()
	events = ResetStream(events)
	if events[0].Consumed() {
		t.Fatal("consumption not cleared")
	}
}

func TestPartitionByBucket(t *testing.T) {
	s := NewStocks(StockConfig{
		Symbols: 6, Events: 2000, Seed: 17,
		Partitions: 4, PartitionBy: PartitionByBucket, Buckets: 4,
	})
	seen := map[int]bool{}
	for _, e := range s.Generate() {
		if want := int(e.MustAttr(AttrBucket)) % 4; e.Partition != want {
			t.Fatalf("%s partition = %d, want bucket-derived %d", e.Type, e.Partition, want)
		}
		seen[e.Partition] = true
	}
	if len(seen) < 2 {
		t.Fatalf("partitions used = %d", len(seen))
	}
}
