// Package workload generates the synthetic counterpart of the paper's
// evaluation workload (Section 7.2): a stock-market tick stream — the paper
// used one year of NASDAQ updates with 80,509,033 events over 2,100+
// symbols — and the five pattern categories evaluated against it (pure
// sequences, sequences with negation, conjunctions, Kleene-closure
// sequences, and disjunctions of sequences).
//
// The real dataset is not redistributable; the generator reproduces the
// properties the algorithms actually consume: per-symbol arrival rates in
// the published 1–45 events/second range, random-walk prices with a
// precomputed `difference` attribute (the paper adds the same attribute in
// preprocessing), and predicate selectivities spanning a wide range via
// `difference` comparisons and discretised `bucket` equalities. See
// DESIGN.md §5 for the substitution rationale.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/event"
)

// StockConfig parameterises the generator. Zero values select the defaults.
type StockConfig struct {
	Symbols    int     // number of stock symbols (event types); default 32
	Events     int     // total events to generate; default 50000
	MinRate    float64 // slowest symbol, events/second; default 1 (paper's range)
	MaxRate    float64 // fastest symbol, events/second; default 45
	Volatility float64 // price-step standard deviation; default 1.0
	Buckets    int     // number of price buckets for equality predicates; default 10
	Seed       int64   // RNG seed; default 1
	// Partitions > 0 assigns each event a partition id per PartitionBy,
	// enabling the partition-contiguity strategy, per-partition planning and
	// sharded execution.
	Partitions int
	// PartitionBy selects the partitioning scheme when Partitions > 0.
	PartitionBy PartitionScheme
}

// PartitionScheme selects how generated events map to partitions.
type PartitionScheme int

const (
	// PartitionBySymbol assigns each symbol's events to partition
	// symbolIndex % Partitions (e.g. exchanges or shards). Patterns over
	// symbols from different residue classes never match, because matches
	// do not span partitions.
	PartitionBySymbol PartitionScheme = iota
	// PartitionByBucket assigns each event to partition bucket % Partitions,
	// co-locating every symbol in every partition: any pattern can match in
	// any partition, which is the workload shape for sharded-throughput
	// experiments. Set Buckets >= Partitions for full coverage.
	PartitionByBucket
)

func (c StockConfig) withDefaults() StockConfig {
	if c.Symbols <= 0 {
		c.Symbols = 32
	}
	if c.Events <= 0 {
		c.Events = 50000
	}
	if c.MinRate <= 0 {
		c.MinRate = 1
	}
	if c.MaxRate < c.MinRate {
		c.MaxRate = 45
	}
	if c.Volatility <= 0 {
		c.Volatility = 1.0
	}
	if c.Buckets <= 0 {
		c.Buckets = 10
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Stocks is a generated stock universe: symbols, their schemas and assigned
// arrival rates.
type Stocks struct {
	Config   StockConfig
	Symbols  []string
	Rates    map[string]float64
	Registry *event.Registry
	schemas  map[string]*event.Schema
}

// Attributes carried by every stock tick, mirroring the paper's record
// format (identifier is the event type; timestamp is Event.TS).
const (
	AttrPrice      = "price"
	AttrDifference = "difference"
	AttrBucket     = "bucket"
)

// NewStocks builds a stock universe with rates spread log-uniformly across
// [MinRate, MaxRate], deterministic in the seed.
func NewStocks(cfg StockConfig) *Stocks {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	s := &Stocks{
		Config:  cfg,
		Rates:   make(map[string]float64, cfg.Symbols),
		schemas: make(map[string]*event.Schema, cfg.Symbols),
	}
	var schemas []*event.Schema
	for i := 0; i < cfg.Symbols; i++ {
		name := fmt.Sprintf("S%03d", i)
		s.Symbols = append(s.Symbols, name)
		// Log-uniform spread reproduces the skew of real symbol activity.
		logMin, logMax := math.Log(cfg.MinRate), math.Log(cfg.MaxRate)
		s.Rates[name] = math.Exp(logMin + rng.Float64()*(logMax-logMin))
		sc := event.NewSchema(name, AttrPrice, AttrDifference, AttrBucket)
		s.schemas[name] = sc
		schemas = append(schemas, sc)
	}
	s.Registry = event.NewRegistry(schemas...)
	return s
}

// Schema returns the schema of a symbol.
func (s *Stocks) Schema(symbol string) *event.Schema { return s.schemas[symbol] }

// Generate produces the tick stream: per-symbol Poisson arrivals at the
// assigned rate, random-walk prices, `difference` = price change, `bucket` =
// discretised price level. The merged stream is timestamp-ordered and
// serial-stamped; total length is Config.Events.
func (s *Stocks) Generate() []*event.Event {
	cfg := s.Config
	rng := rand.New(rand.NewSource(cfg.Seed + 7919))
	totalRate := 0.0
	for _, r := range s.Rates {
		totalRate += r
	}
	// Horizon long enough that expected event count slightly exceeds the
	// target; the merged stream is truncated to the exact count.
	horizonSec := float64(cfg.Events) / totalRate * 1.05
	perSymbol := make([][]*event.Event, 0, len(s.Symbols))
	for symIdx, sym := range s.Symbols {
		rate := s.Rates[sym]
		sc := s.schemas[sym]
		price := 50 + rng.Float64()*100
		var evs []*event.Event
		t := 0.0
		for {
			t += rng.ExpFloat64() / rate
			if t > horizonSec {
				break
			}
			step := rng.NormFloat64() * cfg.Volatility
			price += step
			if price < 1 {
				price = 1
			}
			bucket := math.Mod(math.Floor(price), float64(cfg.Buckets))
			if bucket < 0 {
				bucket += float64(cfg.Buckets)
			}
			ev := event.New(sc, event.Time(t*float64(event.Second)), price, step, bucket)
			if cfg.Partitions > 0 {
				switch cfg.PartitionBy {
				case PartitionByBucket:
					ev.Partition = int(bucket) % cfg.Partitions
				default:
					ev.Partition = symIdx % cfg.Partitions
				}
			}
			evs = append(evs, ev)
		}
		perSymbol = append(perSymbol, evs)
	}
	merged := event.Merge(perSymbol...)
	if len(merged) > cfg.Events {
		merged = merged[:cfg.Events]
	}
	return event.Drain(event.NewSliceStream(merged))
}

// ResetStream clears consumption marks and restamps serials so that the
// same event slice can be replayed across engine runs.
func ResetStream(events []*event.Event) []*event.Event {
	st := event.NewSliceStream(events)
	st.Reset()
	return event.Drain(st)
}
