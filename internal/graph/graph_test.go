package graph

import (
	"testing"

	"repro/internal/stats"
)

func TestClassify(t *testing.T) {
	mk := func(n int, edges ...[2]int) *Graph {
		g := New(n)
		for _, e := range edges {
			g.AddEdge(e[0], e[1])
		}
		return g
	}
	cases := []struct {
		name string
		g    *Graph
		want Topology
	}{
		{"single", mk(1), TopoChain},
		{"chain3", mk(3, [2]int{0, 1}, [2]int{1, 2}), TopoChain},
		{"chain2", mk(2, [2]int{0, 1}), TopoChain},
		{"star", mk(4, [2]int{0, 1}, [2]int{0, 2}, [2]int{0, 3}), TopoStar},
		{"tree", mk(5, [2]int{0, 1}, [2]int{0, 2}, [2]int{1, 3}, [2]int{1, 4}), TopoTree},
		{"clique", mk(3, [2]int{0, 1}, [2]int{0, 2}, [2]int{1, 2}), TopoClique},
		{"cycle4", mk(4, [2]int{0, 1}, [2]int{1, 2}, [2]int{2, 3}, [2]int{3, 0}), TopoGeneral},
		{"disconnected", mk(3, [2]int{0, 1}), TopoDisconnected},
		{"empty2", mk(2), TopoDisconnected},
	}
	for _, c := range cases {
		if got := c.g.Classify(); got != c.want {
			t.Errorf("%s: Classify = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestConnectivityAndAcyclicity(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	if g.IsConnected() {
		t.Fatal("disconnected graph reported connected")
	}
	if !g.IsAcyclic() {
		t.Fatal("forest reported cyclic")
	}
	g.AddEdge(2, 3)
	if !g.IsConnected() || !g.IsAcyclic() {
		t.Fatal("path misclassified")
	}
	g.AddEdge(3, 0)
	if g.IsAcyclic() {
		t.Fatal("cycle reported acyclic")
	}
}

func TestFromStats(t *testing.T) {
	ps := &stats.PatternStats{
		W:     1,
		Rates: []float64{1, 1, 1},
		Sel: [][]float64{
			{0.5, 0.3, 1},
			{0.3, 1, 1},
			{1, 1, 0.9},
		},
	}
	g := FromStats(ps)
	if !g.HasEdge(0, 1) || g.HasEdge(0, 2) || g.HasEdge(1, 2) {
		t.Fatal("edges wrong")
	}
	// Unary selectivities (diagonal) must not create edges or loops.
	if g.Degree(0) != 1 || g.Degree(2) != 0 {
		t.Fatalf("degrees = %d, %d", g.Degree(0), g.Degree(2))
	}
	if g.Classify() != TopoDisconnected {
		t.Fatalf("topology = %v", g.Classify())
	}
}

func TestSpanningParents(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(1, 3)
	g.AddEdge(3, 4)
	parents, bfs := g.SpanningParents(0)
	if parents[0] != -1 || parents[1] != 0 || parents[2] != 1 || parents[3] != 1 || parents[4] != 3 {
		t.Fatalf("parents = %v", parents)
	}
	if len(bfs) != 5 || bfs[0] != 0 {
		t.Fatalf("bfs = %v", bfs)
	}
	// Reroot at 4.
	parents, _ = g.SpanningParents(4)
	if parents[4] != -1 || parents[3] != 4 || parents[1] != 3 || parents[0] != 1 || parents[2] != 1 {
		t.Fatalf("rerooted parents = %v", parents)
	}
}

func TestTopologyString(t *testing.T) {
	for topo, want := range map[Topology]string{
		TopoChain: "chain", TopoStar: "star", TopoTree: "tree",
		TopoClique: "clique", TopoGeneral: "general", TopoDisconnected: "disconnected",
	} {
		if topo.String() != want {
			t.Errorf("%d.String() = %q", topo, topo.String())
		}
	}
}
