// Package graph analyses the query-graph topology of a pattern — the graph
// whose vertices are the pattern's positive events and whose edges are the
// pairs carrying predicates. Section 4.3 of the paper observes that
// restricted topologies admit better plan-generation complexity: acyclic
// graphs have polynomial optimal left-deep algorithms under the ASI
// property (implemented as KBZ in internal/core), and star queries make the
// optimal bushy plan coincide with the optimal left-deep one.
package graph

import (
	"repro/internal/pattern"
	"repro/internal/stats"
)

// Topology classifies a query graph.
type Topology int

// Topologies in increasing generality.
const (
	TopoChain        Topology = iota // a path: every vertex has degree ≤ 2, connected, acyclic
	TopoStar                         // one centre connected to all leaves
	TopoTree                         // connected and acyclic (but neither chain nor star)
	TopoClique                       // every pair connected
	TopoGeneral                      // anything else connected
	TopoDisconnected                 // cross products required
)

// String names the topology.
func (t Topology) String() string {
	switch t {
	case TopoChain:
		return "chain"
	case TopoStar:
		return "star"
	case TopoTree:
		return "tree"
	case TopoClique:
		return "clique"
	case TopoGeneral:
		return "general"
	case TopoDisconnected:
		return "disconnected"
	}
	return "unknown"
}

// Graph is an undirected query graph over planning positions 0..n-1.
type Graph struct {
	n   int
	adj [][]bool
}

// New builds an empty graph over n vertices.
func New(n int) *Graph {
	g := &Graph{n: n, adj: make([][]bool, n)}
	for i := range g.adj {
		g.adj[i] = make([]bool, n)
	}
	return g
}

// FromStats derives the query graph of a pattern: an edge joins positions i
// and j when at least one predicate links them (selectivity ≠ 1).
func FromStats(ps *stats.PatternStats) *Graph {
	g := New(ps.N())
	for i := 0; i < ps.N(); i++ {
		for j := i + 1; j < ps.N(); j++ {
			if ps.Sel[i][j] != 1 {
				g.AddEdge(i, j)
			}
		}
	}
	return g
}

// FromPattern derives the query graph of a simple pattern from its declared
// predicates: an edge joins two positive events when a pairwise condition
// links them; sequence patterns additionally chain temporally adjacent
// positive events (the implicit order predicates of Theorem 3). Unlike
// FromStats, the result does not depend on whether selectivities were
// measured.
func FromPattern(p *pattern.Pattern) *Graph {
	positives := p.Positives()
	g := New(len(positives))
	pos := make(map[string]int, len(positives))
	for k, ti := range positives {
		pos[p.Terms[ti].Event.Alias] = k
	}
	for _, c := range p.Conds {
		als := c.Aliases()
		if len(als) != 2 {
			continue
		}
		i, iok := pos[als[0]]
		j, jok := pos[als[1]]
		if iok && jok {
			g.AddEdge(i, j)
		}
	}
	if p.Op == pattern.OpSeq {
		for k := 0; k+1 < len(positives); k++ {
			g.AddEdge(k, k+1)
		}
	}
	return g
}

// AddEdge inserts an undirected edge.
func (g *Graph) AddEdge(i, j int) {
	if i == j {
		return
	}
	g.adj[i][j] = true
	g.adj[j][i] = true
}

// HasEdge reports whether i and j are joined.
func (g *Graph) HasEdge(i, j int) bool { return g.adj[i][j] }

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// Degree returns the number of neighbours of v.
func (g *Graph) Degree(v int) int {
	d := 0
	for _, e := range g.adj[v] {
		if e {
			d++
		}
	}
	return d
}

// Neighbors returns the neighbours of v in ascending order.
func (g *Graph) Neighbors(v int) []int {
	var out []int
	for u, e := range g.adj[v] {
		if e {
			out = append(out, u)
		}
	}
	return out
}

// Edges counts the undirected edges.
func (g *Graph) Edges() int {
	total := 0
	for i := 0; i < g.n; i++ {
		total += g.Degree(i)
	}
	return total / 2
}

// IsConnected reports whether every vertex is reachable from vertex 0.
// The empty and single-vertex graphs are connected.
func (g *Graph) IsConnected() bool {
	if g.n <= 1 {
		return true
	}
	seen := make([]bool, g.n)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, u := range g.Neighbors(v) {
			if !seen[u] {
				seen[u] = true
				count++
				stack = append(stack, u)
			}
		}
	}
	return count == g.n
}

// IsAcyclic reports whether the graph is a forest (|E| = |V| − components).
func (g *Graph) IsAcyclic() bool {
	components := 0
	seen := make([]bool, g.n)
	for s := 0; s < g.n; s++ {
		if seen[s] {
			continue
		}
		components++
		stack := []int{s}
		seen[s] = true
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, u := range g.Neighbors(v) {
				if !seen[u] {
					seen[u] = true
					stack = append(stack, u)
				}
			}
		}
	}
	return g.Edges() == g.n-components
}

// Classify determines the topology per Section 4.3's taxonomy.
func (g *Graph) Classify() Topology {
	if !g.IsConnected() {
		return TopoDisconnected
	}
	if g.n <= 1 {
		return TopoChain
	}
	// Acyclic shapes take precedence: K2 is classified as a chain.
	if !g.IsAcyclic() && g.Edges() == g.n*(g.n-1)/2 {
		return TopoClique
	}
	if g.IsAcyclic() {
		deg1, maxDeg := 0, 0
		for v := 0; v < g.n; v++ {
			d := g.Degree(v)
			if d == 1 {
				deg1++
			}
			if d > maxDeg {
				maxDeg = d
			}
		}
		switch {
		case maxDeg <= 2:
			return TopoChain
		case deg1 == g.n-1:
			return TopoStar
		default:
			return TopoTree
		}
	}
	return TopoGeneral
}

// SpanningParents returns, for the acyclic connected graph rooted at root,
// the parent of every vertex (-1 for the root) and a BFS order. It is the
// rooted-tree input the KBZ algorithm consumes.
func (g *Graph) SpanningParents(root int) (parents []int, bfs []int) {
	parents = make([]int, g.n)
	for i := range parents {
		parents[i] = -1
	}
	seen := make([]bool, g.n)
	queue := []int{root}
	seen[root] = true
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		bfs = append(bfs, v)
		for _, u := range g.Neighbors(v) {
			if !seen[u] {
				seen[u] = true
				parents[u] = v
				queue = append(queue, u)
			}
		}
	}
	return parents, bfs
}
