// Package predicate compiles the declarative WHERE clause of a simple
// pattern into position-indexed evaluation tables consumed by both
// evaluation engines. Sequence order is lowered to timestamp predicates here
// (the operational half of Theorem 3), so that downstream components treat
// sequences and conjunctions uniformly; contiguity selection strategies are
// likewise lowered to serial-number predicates (Section 6.2 of the paper).
package predicate

import (
	"fmt"

	"repro/internal/event"
	"repro/internal/pattern"
)

// PairFn evaluates a pairwise predicate with a bound to the lower-indexed
// position and b to the higher-indexed one.
type PairFn func(a, b *event.Event) bool

// UnaryFn evaluates a filter predicate on a single event.
type UnaryFn func(e *event.Event) bool

// Pair is a compiled pairwise predicate between term positions I < J. Cond
// retains the declarative condition the closure was compiled from (HasCond
// reports whether one exists): the multi-query optimizer inspects it for
// equi-join attributes when deriving a partition key. Sequence-order and
// contiguity predicates are synthesized without a Cond.
type Pair struct {
	I, J    int
	Desc    string
	Fn      PairFn
	Cond    pattern.Condition
	HasCond bool
}

// Unary is a compiled filter predicate on term position I. Cond retains the
// declarative condition the closure was compiled from (HasCond reports
// whether one exists): the ingress filter index classifies it into its
// constant-constraint tables, and falls back to scanning Fn when it is
// absent or not indexable.
type Unary struct {
	I       int
	Desc    string
	Fn      UnaryFn
	Cond    pattern.Condition
	HasCond bool
}

// Set holds the compiled predicates of one simple pattern, indexed by term
// position.
type Set struct {
	N     int
	unary [][]Unary
	pairs [][][]Pair // pairs[i][j], populated for i < j only
}

// NewSet builds an empty predicate set over n positions.
func NewSet(n int) *Set {
	s := &Set{N: n, unary: make([][]Unary, n), pairs: make([][][]Pair, n)}
	for i := range s.pairs {
		s.pairs[i] = make([][]Pair, n)
	}
	return s
}

// AddUnary registers a filter predicate at position i.
func (s *Set) AddUnary(u Unary) {
	s.unary[u.I] = append(s.unary[u.I], u)
}

// AddPair registers a pairwise predicate, normalising so that I < J.
func (s *Set) AddPair(p Pair) {
	if p.I == p.J {
		panic("predicate: pairwise predicate with equal positions")
	}
	if p.I > p.J {
		fn := p.Fn
		p.I, p.J = p.J, p.I
		p.Fn = func(a, b *event.Event) bool { return fn(b, a) }
	}
	s.pairs[p.I][p.J] = append(s.pairs[p.I][p.J], p)
}

// CheckUnary reports whether e satisfies every filter at position i.
func (s *Set) CheckUnary(i int, e *event.Event) bool {
	for _, u := range s.unary[i] {
		if !u.Fn(e) {
			return false
		}
	}
	return true
}

// CheckPair reports whether the events at positions i and j satisfy every
// predicate between them. Position order is normalised internally.
func (s *Set) CheckPair(i int, ei *event.Event, j int, ej *event.Event) bool {
	if i > j {
		i, j = j, i
		ei, ej = ej, ei
	}
	for _, p := range s.pairs[i][j] {
		if !p.Fn(ei, ej) {
			return false
		}
	}
	return true
}

// PairCount returns the number of predicates between positions i < j.
func (s *Set) PairCount(i, j int) int {
	if i > j {
		i, j = j, i
	}
	return len(s.pairs[i][j])
}

// Pairs returns the predicates between positions i < j.
func (s *Set) Pairs(i, j int) []Pair {
	if i > j {
		i, j = j, i
	}
	return s.pairs[i][j]
}

// Unaries returns the filter predicates at position i.
func (s *Set) Unaries(i int) []Unary { return s.unary[i] }

// NegSpec describes where a negated event is anchored in a sequence: the
// negated event's timestamp must fall after the Low positive position and
// before the High one ( -1 means the corresponding side is bounded only by
// the window). Pairwise predicates between the negated position and others
// are held in the Set like any other predicate.
type NegSpec struct {
	Pos  int // term index of the negated event
	Low  int // positive term index preceding it in the sequence, or -1
	High int // positive term index following it in the sequence, or -1
}

// Compiled is a fully lowered simple pattern: positions, predicate tables,
// negation anchors, Kleene flags and the time window. It is the input to
// both evaluation engines and to plan generation.
type Compiled struct {
	Source    *pattern.Pattern
	N         int      // number of term positions (positives + negatives)
	Types     []string // event type per position
	Aliases   []string // alias per position
	Positives []int    // positive positions in declaration order
	Kleene    []bool   // per position
	Negs      []NegSpec
	Window    event.Time
	IsSeq     bool  // the pattern is a sequence (declaration order = temporal order)
	SeqOrder  []int // positive positions in temporal order when IsSeq
	Preds     *Set
}

// Strategy selects how events are admitted into partial matches
// (Section 6.2).
type Strategy int

// The four event selection strategies discussed in the paper.
const (
	SkipTillAnyMatch Strategy = iota
	SkipTillNextMatch
	StrictContiguity
	PartitionContiguity
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case SkipTillAnyMatch:
		return "skip-till-any-match"
	case SkipTillNextMatch:
		return "skip-till-next-match"
	case StrictContiguity:
		return "strict-contiguity"
	case PartitionContiguity:
		return "partition-contiguity"
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// Compile lowers a simple pattern (OpSeq or OpAnd over primitive events)
// into a Compiled form. Contiguity strategies add serial-adjacency
// predicates between temporally adjacent positive positions; they therefore
// require a sequence pattern.
func Compile(p *pattern.Pattern, strategy Strategy) (*Compiled, error) {
	if err := p.Validate(nil); err != nil {
		return nil, err
	}
	if !p.IsSimple() || p.Op == pattern.OpOr {
		return nil, fmt.Errorf("predicate: Compile requires a simple SEQ or AND pattern, got %v (normalise with ToDNF first)", p.Op)
	}
	n := len(p.Terms)
	c := &Compiled{
		Source:  p,
		N:       n,
		Types:   make([]string, n),
		Aliases: make([]string, n),
		Kleene:  make([]bool, n),
		Window:  p.Window,
		IsSeq:   p.Op == pattern.OpSeq,
		Preds:   NewSet(n),
	}
	aliasIdx := make(map[string]int, n)
	for i, t := range p.Terms {
		ev := t.Event
		c.Types[i] = ev.Type
		c.Aliases[i] = ev.Alias
		c.Kleene[i] = ev.Kleene
		aliasIdx[ev.Alias] = i
		if ev.Negated {
			if ev.Kleene {
				return nil, fmt.Errorf("predicate: %q is both negated and Kleene", ev.Alias)
			}
		} else {
			c.Positives = append(c.Positives, i)
		}
	}
	if c.IsSeq {
		c.SeqOrder = append([]int(nil), c.Positives...)
		// Lower the sequence order to timestamp predicates between adjacent
		// positive positions (Theorem 3).
		for k := 0; k+1 < len(c.SeqOrder); k++ {
			i, j := c.SeqOrder[k], c.SeqOrder[k+1]
			c.Preds.AddPair(Pair{
				I: i, J: j,
				Desc: fmt.Sprintf("%s.ts < %s.ts", c.Aliases[i], c.Aliases[j]),
				Fn:   func(a, b *event.Event) bool { return a.TS < b.TS },
			})
		}
	}
	// Negation anchors.
	for i, t := range p.Terms {
		if !t.Event.Negated {
			continue
		}
		spec := NegSpec{Pos: i, Low: -1, High: -1}
		if c.IsSeq {
			for j := i - 1; j >= 0; j-- {
				if !p.Terms[j].Event.Negated {
					spec.Low = j
					break
				}
			}
			for j := i + 1; j < n; j++ {
				if !p.Terms[j].Event.Negated {
					spec.High = j
					break
				}
			}
		}
		c.Negs = append(c.Negs, spec)
	}
	// User conditions.
	for _, cond := range p.Conds {
		cond := cond // capture
		als := cond.Aliases()
		switch len(als) {
		case 1:
			i := aliasIdx[als[0]]
			c.Preds.AddUnary(Unary{
				I: i, Desc: cond.String(),
				Fn: cond.UnaryFn(), Cond: cond, HasCond: true,
			})
		case 2:
			i, j := aliasIdx[als[0]], aliasIdx[als[1]]
			c.Preds.AddPair(Pair{
				I: i, J: j, Desc: cond.String(),
				Fn: cond.PairFn(), Cond: cond, HasCond: true,
			})
		default:
			return nil, fmt.Errorf("predicate: condition %q is not at most pairwise", cond)
		}
	}
	// Contiguity strategies (Section 6.2): serial-adjacency predicates
	// between temporally adjacent positive positions.
	switch strategy {
	case StrictContiguity, PartitionContiguity:
		if !c.IsSeq {
			return nil, fmt.Errorf("predicate: %v requires a sequence pattern", strategy)
		}
		for k := 0; k+1 < len(c.SeqOrder); k++ {
			i, j := c.SeqOrder[k], c.SeqOrder[k+1]
			if strategy == StrictContiguity {
				c.Preds.AddPair(Pair{
					I: i, J: j,
					Desc: fmt.Sprintf("%s.serial+1 = %s.serial", c.Aliases[i], c.Aliases[j]),
					Fn:   func(a, b *event.Event) bool { return a.Serial+1 == b.Serial },
				})
			} else {
				c.Preds.AddPair(Pair{
					I: i, J: j,
					Desc: fmt.Sprintf("%s,%s partition-adjacent", c.Aliases[i], c.Aliases[j]),
					Fn: func(a, b *event.Event) bool {
						return a.Partition == b.Partition && a.PSerial+1 == b.PSerial
					},
				})
			}
		}
	}
	return c, nil
}

// CheckGroupPair evaluates the predicates between positions i and j where
// each position may hold a group of events (Kleene closure). Every pair of
// members must satisfy the predicates, the semantics used by Theorem 4's
// power-set construction.
func (c *Compiled) CheckGroupPair(i int, gi []*event.Event, j int, gj []*event.Event) bool {
	for _, a := range gi {
		for _, b := range gj {
			if !c.Preds.CheckPair(i, a, j, b) {
				return false
			}
		}
	}
	return true
}

// PositiveIndexOf returns the index of term position pos within Positives,
// or -1 if pos is not positive.
func (c *Compiled) PositiveIndexOf(pos int) int {
	for k, p := range c.Positives {
		if p == pos {
			return k
		}
	}
	return -1
}
