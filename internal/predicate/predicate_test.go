package predicate

import (
	"strings"
	"testing"

	"repro/internal/event"
	"repro/internal/pattern"
)

var (
	schemaA = event.NewSchema("A", "x")
	schemaB = event.NewSchema("B", "x")
	schemaC = event.NewSchema("C", "x")
)

func mkEvent(s *event.Schema, ts event.Time, x float64) *event.Event {
	return event.New(s, ts, x)
}

func TestSetPairNormalisation(t *testing.T) {
	s := NewSet(3)
	// Register with I > J; Set must normalise and flip the function.
	s.AddPair(Pair{I: 2, J: 0, Desc: "c.x < a.x", Fn: func(a, b *event.Event) bool {
		return a.MustAttr("x") < b.MustAttr("x") // a is position 2, b is position 0
	}})
	c := mkEvent(schemaC, 1, 1)
	a := mkEvent(schemaA, 2, 5)
	// CheckPair(0, a, 2, c) must evaluate c.x < a.x → 1 < 5 → true.
	if !s.CheckPair(0, a, 2, c) {
		t.Fatal("normalised pair evaluation failed")
	}
	// And in the caller-swapped orientation too.
	if !s.CheckPair(2, c, 0, a) {
		t.Fatal("caller-swapped evaluation failed")
	}
	if s.PairCount(2, 0) != 1 || s.PairCount(0, 2) != 1 {
		t.Fatal("PairCount not symmetric")
	}
}

func TestSetEqualPositionsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSet(2).AddPair(Pair{I: 1, J: 1, Fn: func(a, b *event.Event) bool { return true }})
}

func TestCompileSeqAddsOrderPredicates(t *testing.T) {
	p := pattern.Seq(100, pattern.E("A", "a"), pattern.E("B", "b"), pattern.E("C", "c"))
	c, err := Compile(p, SkipTillAnyMatch)
	if err != nil {
		t.Fatal(err)
	}
	if !c.IsSeq || len(c.SeqOrder) != 3 {
		t.Fatalf("IsSeq=%v SeqOrder=%v", c.IsSeq, c.SeqOrder)
	}
	a := mkEvent(schemaA, 10, 0)
	b := mkEvent(schemaB, 20, 0)
	if !c.Preds.CheckPair(0, a, 1, b) {
		t.Fatal("in-order pair rejected")
	}
	b2 := mkEvent(schemaB, 5, 0)
	if c.Preds.CheckPair(0, a, 1, b2) {
		t.Fatal("out-of-order pair accepted")
	}
	// Non-adjacent positions carry no order predicate (transitivity suffices).
	if c.Preds.PairCount(0, 2) != 0 {
		t.Fatal("unexpected predicate between non-adjacent positions")
	}
}

func TestCompileAndHasNoOrderPredicates(t *testing.T) {
	p := pattern.And(100, pattern.E("A", "a"), pattern.E("B", "b"))
	c, err := Compile(p, SkipTillAnyMatch)
	if err != nil {
		t.Fatal(err)
	}
	if c.IsSeq || c.SeqOrder != nil {
		t.Fatal("AND pattern misclassified as sequence")
	}
	if c.Preds.PairCount(0, 1) != 0 {
		t.Fatal("AND pattern should have no implicit predicates")
	}
}

func TestCompileUserConditions(t *testing.T) {
	p := pattern.And(100, pattern.E("A", "a"), pattern.E("B", "b")).Where(
		pattern.AttrCmp("a", "x", pattern.Lt, "b", "x"),
		pattern.Cmp(pattern.Ref("a", "x"), pattern.Gt, pattern.Const(0)),
	)
	c, err := Compile(p, SkipTillAnyMatch)
	if err != nil {
		t.Fatal(err)
	}
	a := mkEvent(schemaA, 1, 2)
	b := mkEvent(schemaB, 2, 3)
	if !c.Preds.CheckUnary(0, a) {
		t.Fatal("unary filter rejected a.x=2 > 0")
	}
	if c.Preds.CheckUnary(0, mkEvent(schemaA, 1, -1)) {
		t.Fatal("unary filter accepted a.x=-1")
	}
	if !c.Preds.CheckPair(0, a, 1, b) {
		t.Fatal("2 < 3 rejected")
	}
	if c.Preds.CheckPair(0, mkEvent(schemaA, 1, 9), 1, b) {
		t.Fatal("9 < 3 accepted")
	}
}

func TestCompileReversedAliasCondition(t *testing.T) {
	// Condition written b-first must still bind correctly by position.
	p := pattern.And(100, pattern.E("A", "a"), pattern.E("B", "b")).Where(
		pattern.AttrCmp("b", "x", pattern.Gt, "a", "x"),
	)
	c, err := Compile(p, SkipTillAnyMatch)
	if err != nil {
		t.Fatal(err)
	}
	a := mkEvent(schemaA, 1, 2)
	b := mkEvent(schemaB, 2, 3)
	if !c.Preds.CheckPair(0, a, 1, b) {
		t.Fatal("b.x > a.x (3 > 2) rejected")
	}
	if c.Preds.CheckPair(0, mkEvent(schemaA, 1, 5), 1, b) {
		t.Fatal("b.x > a.x (3 > 5) accepted")
	}
}

func TestCompileNegationAnchorsSeq(t *testing.T) {
	p := pattern.Seq(100,
		pattern.E("A", "a"), pattern.Not("B", "b"), pattern.E("C", "c"),
	)
	c, err := Compile(p, SkipTillAnyMatch)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Negs) != 1 {
		t.Fatalf("Negs = %v", c.Negs)
	}
	n := c.Negs[0]
	if n.Pos != 1 || n.Low != 0 || n.High != 2 {
		t.Fatalf("NegSpec = %+v", n)
	}
	if got := c.Positives; len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("Positives = %v", got)
	}
	// Sequence order skips the negated position.
	if len(c.SeqOrder) != 2 || c.SeqOrder[0] != 0 || c.SeqOrder[1] != 2 {
		t.Fatalf("SeqOrder = %v", c.SeqOrder)
	}
}

func TestCompileNegationEdges(t *testing.T) {
	lead := pattern.Seq(100, pattern.Not("B", "b"), pattern.E("A", "a"))
	c, err := Compile(lead, SkipTillAnyMatch)
	if err != nil {
		t.Fatal(err)
	}
	if n := c.Negs[0]; n.Low != -1 || n.High != 1 {
		t.Fatalf("leading NegSpec = %+v", n)
	}
	trail := pattern.Seq(100, pattern.E("A", "a"), pattern.Not("B", "b"))
	c, err = Compile(trail, SkipTillAnyMatch)
	if err != nil {
		t.Fatal(err)
	}
	if n := c.Negs[0]; n.Low != 0 || n.High != -1 {
		t.Fatalf("trailing NegSpec = %+v", n)
	}
	conj := pattern.And(100, pattern.E("A", "a"), pattern.Not("B", "b"))
	c, err = Compile(conj, SkipTillAnyMatch)
	if err != nil {
		t.Fatal(err)
	}
	if n := c.Negs[0]; n.Low != -1 || n.High != -1 {
		t.Fatalf("conjunction NegSpec = %+v", n)
	}
}

func TestCompileRejectsNestedAndOr(t *testing.T) {
	nested := pattern.And(100, pattern.E("A", "a"),
		pattern.Sub(pattern.Or(100, pattern.E("B", "b"), pattern.E("C", "c"))))
	if _, err := Compile(nested, SkipTillAnyMatch); err == nil ||
		!strings.Contains(err.Error(), "simple") {
		t.Fatalf("err = %v", err)
	}
	or := pattern.Or(100, pattern.E("A", "a"), pattern.E("B", "b"))
	if _, err := Compile(or, SkipTillAnyMatch); err == nil {
		t.Fatal("OR pattern must be rejected")
	}
}

func TestCompileStrictContiguity(t *testing.T) {
	p := pattern.Seq(100, pattern.E("A", "a"), pattern.E("B", "b"))
	c, err := Compile(p, StrictContiguity)
	if err != nil {
		t.Fatal(err)
	}
	a := mkEvent(schemaA, 1, 0)
	b := mkEvent(schemaB, 2, 0)
	a.Serial, b.Serial = 7, 8
	if !c.Preds.CheckPair(0, a, 1, b) {
		t.Fatal("adjacent serials rejected")
	}
	b.Serial = 9
	if c.Preds.CheckPair(0, a, 1, b) {
		t.Fatal("non-adjacent serials accepted")
	}
}

func TestCompilePartitionContiguity(t *testing.T) {
	p := pattern.Seq(100, pattern.E("A", "a"), pattern.E("B", "b"))
	c, err := Compile(p, PartitionContiguity)
	if err != nil {
		t.Fatal(err)
	}
	a := mkEvent(schemaA, 1, 0)
	b := mkEvent(schemaB, 2, 0)
	a.Partition, a.PSerial = 3, 5
	b.Partition, b.PSerial = 3, 6
	if !c.Preds.CheckPair(0, a, 1, b) {
		t.Fatal("partition-adjacent rejected")
	}
	b.Partition = 4
	if c.Preds.CheckPair(0, a, 1, b) {
		t.Fatal("cross-partition accepted")
	}
	b.Partition, b.PSerial = 3, 7
	if c.Preds.CheckPair(0, a, 1, b) {
		t.Fatal("non-adjacent pserial accepted")
	}
}

func TestContiguityRequiresSequence(t *testing.T) {
	p := pattern.And(100, pattern.E("A", "a"), pattern.E("B", "b"))
	if _, err := Compile(p, StrictContiguity); err == nil {
		t.Fatal("strict contiguity on AND must fail")
	}
}

func TestCheckGroupPair(t *testing.T) {
	p := pattern.And(100, pattern.E("A", "a"), pattern.KL("B", "b")).Where(
		pattern.AttrCmp("a", "x", pattern.Lt, "b", "x"),
	)
	c, err := Compile(p, SkipTillAnyMatch)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Kleene[1] {
		t.Fatal("Kleene flag lost")
	}
	a := mkEvent(schemaA, 1, 2)
	group := []*event.Event{mkEvent(schemaB, 2, 3), mkEvent(schemaB, 3, 4)}
	if !c.CheckGroupPair(0, []*event.Event{a}, 1, group) {
		t.Fatal("group with all members passing rejected")
	}
	group = append(group, mkEvent(schemaB, 4, 1)) // 2 < 1 fails
	if c.CheckGroupPair(0, []*event.Event{a}, 1, group) {
		t.Fatal("group with failing member accepted")
	}
}

func TestPositiveIndexOf(t *testing.T) {
	p := pattern.Seq(100, pattern.E("A", "a"), pattern.Not("B", "b"), pattern.E("C", "c"))
	c, err := Compile(p, SkipTillAnyMatch)
	if err != nil {
		t.Fatal(err)
	}
	if c.PositiveIndexOf(0) != 0 || c.PositiveIndexOf(2) != 1 || c.PositiveIndexOf(1) != -1 {
		t.Fatal("PositiveIndexOf wrong")
	}
}

func TestStrategyString(t *testing.T) {
	for s, want := range map[Strategy]string{
		SkipTillAnyMatch:    "skip-till-any-match",
		SkipTillNextMatch:   "skip-till-next-match",
		StrictContiguity:    "strict-contiguity",
		PartitionContiguity: "partition-contiguity",
	} {
		if s.String() != want {
			t.Errorf("%d.String() = %q", s, s.String())
		}
	}
}
