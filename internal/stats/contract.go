package stats

import "fmt"

// ContractedType is the synthetic event-type name of a contracted position.
const ContractedType = "⟨subjoin⟩"

// Restrict projects PatternStats onto the given positions, in order — the
// statistics of the sub-join over just those positions, used to plan a
// candidate sub-join shape that no query's current tree computes yet.
func Restrict(ps *PatternStats, subset []int) *PatternStats {
	n := len(subset)
	rs := &PatternStats{
		W:         ps.W,
		Types:     make([]string, n),
		Aliases:   make([]string, n),
		TermIndex: make([]int, n),
		Kleene:    make([]bool, n),
		Rates:     make([]float64, n),
		Sel:       make([][]float64, n),
	}
	for i, p := range subset {
		rs.Types[i] = ps.Types[p]
		rs.Aliases[i] = ps.Aliases[p]
		rs.TermIndex[i] = ps.TermIndex[p]
		rs.Kleene[i] = ps.Kleene[p]
		rs.Rates[i] = ps.Rates[p]
		rs.Sel[i] = make([]float64, n)
		for j, q := range subset {
			rs.Sel[i][j] = ps.Sel[p][q]
		}
	}
	return rs
}

// Contract returns a copy of ps in which the positions of subset are
// replaced by one virtual position representing their materialized sub-join
// — the statistics-side transformation behind multi-query subplan sharing:
// a shared sub-join buffer behaves, to the residual plan of a consuming
// query, like a primitive input whose arrival volume is the sub-join's
// partial-match count.
//
// The virtual position is appended last. Its leaf term W·r·sel reproduces
// PM(subset) under the skip-till-any-match product form of Section 4.2, and
// its selectivity against every remaining position j is the product of the
// members' selectivities against j, so Cost_tree of a plan over the
// contracted statistics equals the cost of the corresponding expanded plan
// minus the (shared, already-paid) internal nodes of the sub-join.
//
// keep maps the contracted positions to the original ones: keep[i] is the
// original position of contracted position i for i < len(keep); the virtual
// position is len(keep), i.e. the last contracted index.
func Contract(ps *PatternStats, subset []int) (cp *PatternStats, keep []int) {
	in := make(map[int]bool, len(subset))
	for _, p := range subset {
		if p < 0 || p >= ps.N() {
			panic(fmt.Sprintf("stats: Contract position %d out of range", p))
		}
		in[p] = true
	}
	for p := 0; p < ps.N(); p++ {
		if !in[p] {
			keep = append(keep, p)
		}
	}
	n := len(keep) + 1
	v := n - 1 // virtual position index
	cp = &PatternStats{
		W:         ps.W,
		Types:     make([]string, n),
		Aliases:   make([]string, n),
		TermIndex: make([]int, n),
		Kleene:    make([]bool, n),
		Rates:     make([]float64, n),
		Sel:       make([][]float64, n),
	}
	for i := range cp.Sel {
		cp.Sel[i] = make([]float64, n)
		for j := range cp.Sel[i] {
			cp.Sel[i][j] = 1
		}
	}
	for i, p := range keep {
		cp.Types[i] = ps.Types[p]
		cp.Aliases[i] = ps.Aliases[p]
		cp.TermIndex[i] = ps.TermIndex[p]
		cp.Kleene[i] = ps.Kleene[p]
		cp.Rates[i] = ps.Rates[p]
		for j, q := range keep {
			cp.Sel[i][j] = ps.Sel[p][q]
		}
	}
	// PM(subset) under the any-match product form.
	pm := 1.0
	for a, p := range subset {
		pm *= ps.W * ps.Rates[p] * ps.Sel[p][p]
		for _, q := range subset[a+1:] {
			pm *= ps.Sel[p][q]
		}
	}
	cp.Types[v] = ContractedType
	cp.Aliases[v] = ContractedType
	cp.TermIndex[v] = -1
	if ps.W > 0 {
		cp.Rates[v] = pm / ps.W
	} else {
		cp.Rates[v] = pm
	}
	cp.Sel[v][v] = 1
	for i, p := range keep {
		sel := 1.0
		for _, q := range subset {
			sel *= ps.Sel[p][q]
		}
		cp.Sel[i][v] = sel
		cp.Sel[v][i] = sel
	}
	return cp, keep
}
