package stats

import (
	"math"
	"testing"

	"repro/internal/event"
	"repro/internal/pattern"
)

var (
	schemaA = event.NewSchema("A", "x")
	schemaB = event.NewSchema("B", "x")
	schemaC = event.NewSchema("C", "x")
)

func TestStatsDefaults(t *testing.T) {
	s := New()
	if got := s.Rate("unknown"); got != 1.0 {
		t.Fatalf("default rate = %g", got)
	}
	c := pattern.AttrCmp("a", "x", pattern.Lt, "b", "x")
	if got := s.Selectivity(c); got != 1.0 {
		t.Fatalf("default selectivity = %g", got)
	}
	ts := pattern.TSOrder("a", "b")
	if got := s.Selectivity(ts); got != TSOrderSelectivity {
		t.Fatalf("ts-order selectivity = %g", got)
	}
	s.SetSelectivity(ts, 0.9)
	if got := s.Selectivity(ts); got != 0.9 {
		t.Fatalf("override lost: %g", got)
	}
}

func TestKleeneRate(t *testing.T) {
	// 2^{r·W}/W with r=0.5/s, W=10s → 2^5/10 = 3.2.
	if got := KleeneRate(0.5, 10); math.Abs(got-3.2) > 1e-12 {
		t.Fatalf("KleeneRate = %g, want 3.2", got)
	}
	// The paper's §5.2 example: r=5/s, W=10s → 2^50/10.
	want := math.Pow(2, 50) / 10
	if got := KleeneRate(5, 10); math.Abs(got-want)/want > 1e-12 {
		t.Fatalf("KleeneRate = %g, want %g", got, want)
	}
	// Exponent cap keeps the value finite.
	if got := KleeneRate(1000, 1000); math.IsInf(got, 1) || got <= 0 {
		t.Fatalf("capped KleeneRate = %g", got)
	}
}

func TestMeasureRates(t *testing.T) {
	// 11 A events and 2 B events over 10 seconds.
	var events []*event.Event
	for i := 0; i <= 10; i++ {
		events = append(events, event.New(schemaA, event.Time(i)*event.Second, float64(i)))
	}
	events = append(events,
		event.New(schemaB, 2*event.Second, 0),
		event.New(schemaB, 8*event.Second, 1),
	)
	event.SortByTS(events)
	s := Measure(events, nil, nil)
	if got := s.Rate("A"); math.Abs(got-1.1) > 1e-9 {
		t.Fatalf("rate A = %g, want 1.1", got)
	}
	if got := s.Rate("B"); math.Abs(got-0.2) > 1e-9 {
		t.Fatalf("rate B = %g, want 0.2", got)
	}
}

func TestMeasureSelectivity(t *testing.T) {
	// A.x uniform over 0..9, B.x = 5: P(a.x < b.x) = 5/10.
	var events []*event.Event
	for i := 0; i < 10; i++ {
		events = append(events, event.New(schemaA, event.Time(i+1)*event.Second, float64(i)))
	}
	for i := 0; i < 10; i++ {
		events = append(events, event.New(schemaB, event.Time(i+1)*event.Second, 5))
	}
	event.SortByTS(events)
	p := pattern.And(10*event.Second, pattern.E("A", "a"), pattern.E("B", "b")).
		Where(pattern.AttrCmp("a", "x", pattern.Lt, "b", "b_ignored")) // placeholder replaced below
	p.Conds[0] = pattern.AttrCmp("a", "x", pattern.Lt, "b", "x")
	s := MeasurePattern(events, p)
	if got := s.Selectivity(p.Conds[0]); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("selectivity = %g, want 0.5", got)
	}
}

func TestMeasureUnarySelectivity(t *testing.T) {
	var events []*event.Event
	for i := 0; i < 10; i++ {
		events = append(events, event.New(schemaA, event.Time(i+1)*event.Second, float64(i)))
	}
	c := pattern.Cmp(pattern.Ref("a", "x"), pattern.Lt, pattern.Const(3)) // x ∈ {0,1,2} pass
	s := Measure(events, []pattern.Condition{c}, map[string]string{"a": "A"})
	if got := s.Selectivity(c); math.Abs(got-0.3) > 1e-9 {
		t.Fatalf("unary selectivity = %g, want 0.3", got)
	}
}

func TestMeasureEmptyAndMissingTypes(t *testing.T) {
	s := Measure(nil, nil, nil)
	if got := s.Rate("A"); got != 1.0 {
		t.Fatalf("empty measure rate = %g", got)
	}
	evs := []*event.Event{event.New(schemaA, 1, 0)}
	c := pattern.AttrCmp("a", "x", pattern.Lt, "b", "x")
	s = Measure(evs, []pattern.Condition{c}, map[string]string{"a": "A", "b": "B"})
	// No B events: condition unmeasured, default applies.
	if got := s.Selectivity(c); got != 1.0 {
		t.Fatalf("selectivity = %g, want default", got)
	}
}

func TestForBuildsPatternStats(t *testing.T) {
	st := New()
	st.SetRate("A", 2)
	st.SetRate("B", 4)
	st.SetRate("C", 8)
	cond := pattern.AttrCmp("a", "x", pattern.Lt, "c", "x")
	p := pattern.Seq(10*event.Second, pattern.E("A", "a"), pattern.E("B", "b"), pattern.E("C", "c")).
		Where(cond)
	st.SetSelectivity(cond, 0.25)
	ps := For(p, st)
	if ps.N() != 3 || ps.W != 10 {
		t.Fatalf("ps = %+v", ps)
	}
	if ps.Rates[0] != 2 || ps.Rates[1] != 4 || ps.Rates[2] != 8 {
		t.Fatalf("rates = %v", ps.Rates)
	}
	// a–c predicate 0.25; ts-order 0.5 on the adjacent pairs (0,1), (1,2).
	if ps.Sel[0][2] != 0.25 || ps.Sel[2][0] != 0.25 {
		t.Fatalf("Sel[0][2] = %g", ps.Sel[0][2])
	}
	if ps.Sel[0][1] != 0.5 || ps.Sel[1][2] != 0.5 {
		t.Fatalf("adjacent sel = %g, %g", ps.Sel[0][1], ps.Sel[1][2])
	}
	if ps.Sel[0][0] != 1 {
		t.Fatalf("unary sel = %g", ps.Sel[0][0])
	}
}

func TestForExcludesNegatedAndAdjustsKleene(t *testing.T) {
	st := New()
	st.SetRate("A", 1)
	st.SetRate("B", 3)
	st.SetRate("C", 0.5)
	p := pattern.Seq(10*event.Second,
		pattern.E("A", "a"), pattern.Not("B", "b"), pattern.KL("C", "c"),
	).Where(
		pattern.AttrCmp("a", "x", pattern.Lt, "b", "x"), // touches negated b: ignored
		pattern.AttrCmp("a", "x", pattern.Lt, "c", "x"),
	)
	st.SetSelectivity(p.Conds[1], 0.1)
	ps := For(p, st)
	if ps.N() != 2 {
		t.Fatalf("N = %d, want 2 (negated excluded)", ps.N())
	}
	if ps.TermIndex[0] != 0 || ps.TermIndex[1] != 2 {
		t.Fatalf("TermIndex = %v", ps.TermIndex)
	}
	if !ps.Kleene[1] {
		t.Fatal("kleene flag lost")
	}
	want := KleeneRate(0.5, 10) // 2^5/10 = 3.2
	if math.Abs(ps.Rates[1]-want) > 1e-12 {
		t.Fatalf("kleene rate = %g, want %g", ps.Rates[1], want)
	}
	// Combined: user predicate 0.1 × ts-order 0.5.
	if math.Abs(ps.Sel[0][1]-0.05) > 1e-12 {
		t.Fatalf("Sel[0][1] = %g", ps.Sel[0][1])
	}
}

func TestForUnaryFilter(t *testing.T) {
	st := New()
	c := pattern.Cmp(pattern.Ref("a", "x"), pattern.Lt, pattern.Const(0))
	st.SetSelectivity(c, 0.2)
	p := pattern.And(event.Second, pattern.E("A", "a"), pattern.E("B", "b")).Where(c)
	ps := For(p, st)
	if ps.Sel[0][0] != 0.2 || ps.Sel[1][1] != 1 {
		t.Fatalf("unary sels = %g, %g", ps.Sel[0][0], ps.Sel[1][1])
	}
}

func TestPatternStatsClone(t *testing.T) {
	st := New()
	p := pattern.And(event.Second, pattern.E("A", "a"), pattern.E("B", "b"))
	ps := For(p, st)
	cp := ps.Clone()
	cp.Rates[0] = 99
	cp.Sel[0][1] = 99
	if ps.Rates[0] == 99 || ps.Sel[0][1] == 99 {
		t.Fatal("Clone shares state")
	}
}

func TestOnlineRates(t *testing.T) {
	o := NewOnline(10 * event.Second)
	for i := 0; i < 20; i++ {
		o.Observe(event.New(schemaA, event.Time(i)*event.Second, float64(i)))
	}
	// Window covers ts in [9, 19]: 11 events over a 10s window → 1.1 ev/s.
	if got := o.Rate("A"); math.Abs(got-1.1) > 1e-9 {
		t.Fatalf("online rate = %g, want 1.1", got)
	}
	if got := o.Rate("B"); got != 0 {
		t.Fatalf("rate of unseen type = %g", got)
	}
}

func TestOnlineSelectivityAndSnapshot(t *testing.T) {
	o := NewOnline(100 * event.Second)
	for i := 0; i < 10; i++ {
		o.Observe(event.New(schemaA, event.Time(2*i)*event.Second, float64(i)))
		o.Observe(event.New(schemaB, event.Time(2*i+1)*event.Second, 5))
	}
	c := pattern.AttrCmp("a", "x", pattern.Lt, "b", "x")
	at := map[string]string{"a": "A", "b": "B"}
	sel, ok := o.Selectivity(c, at)
	if !ok || math.Abs(sel-0.5) > 1e-9 {
		t.Fatalf("online selectivity = %g, %v", sel, ok)
	}
	s := o.Snapshot([]pattern.Condition{c}, at)
	if got := s.Selectivity(c); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("snapshot selectivity = %g", got)
	}
	if s.Rate("A") <= 0 {
		t.Fatal("snapshot rate missing")
	}
	if _, ok := o.Selectivity(pattern.AttrCmp("a", "x", pattern.Lt, "z", "x"),
		map[string]string{"a": "A", "z": "Z"}); ok {
		t.Fatal("selectivity for unseen type should not be available")
	}
}

func TestOnlineRejectsBadWindow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewOnline(0)
}

// TestRestrict checks the sub-join statistics projection: rates, types and
// the selectivity submatrix follow the subset, in order.
func TestRestrict(t *testing.T) {
	st := New()
	st.SetRate("A", 2)
	st.SetRate("B", 3)
	st.SetRate("C", 5)
	p := pattern.Seq(10*event.Second,
		pattern.E("A", "a"), pattern.E("B", "b"), pattern.E("C", "c"),
	).Where(pattern.AttrCmp("a", "x", pattern.Lt, "c", "x"))
	ps := For(p, st)
	rs := Restrict(ps, []int{2, 0})
	if rs.N() != 2 {
		t.Fatalf("N = %d, want 2", rs.N())
	}
	if rs.Types[0] != "C" || rs.Types[1] != "A" {
		t.Fatalf("types %v, want [C A] (subset order preserved)", rs.Types)
	}
	if rs.Rates[0] != 5 || rs.Rates[1] != 2 {
		t.Fatalf("rates %v", rs.Rates)
	}
	if rs.TermIndex[0] != 2 || rs.TermIndex[1] != 0 {
		t.Fatalf("term index %v", rs.TermIndex)
	}
	if rs.Sel[0][1] != ps.Sel[2][0] || rs.Sel[1][0] != ps.Sel[0][2] {
		t.Fatal("selectivity submatrix not projected")
	}
	// Mutating the projection must not touch the original.
	rs.Sel[0][1] = 0.123
	if ps.Sel[2][0] == 0.123 {
		t.Fatal("Restrict aliases the source matrix")
	}
}
