// Package stats estimates the two stream statistics every plan-generation
// algorithm in the paper consumes: per-type event arrival rates and
// per-predicate selectivities (Section 3.1). It provides an offline
// collector mirroring the paper's preprocessing stage and an online
// sliding-window estimator used by the adaptivity layer (Section 6.3).
package stats

import (
	"math"

	"repro/internal/event"
	"repro/internal/pattern"
)

// TSOrderSelectivity is the default selectivity of a temporal-order
// predicate e_i.ts < e_j.ts between independent event types: with uniform
// independent arrivals either order is equally likely.
const TSOrderSelectivity = 0.5

// MaxKleeneExponent caps the exponent of the 2^{rW} virtual arrival rate the
// Kleene-closure rewrite of Theorem 4 introduces. The cap keeps cost
// arithmetic finite while preserving the rewrite's intent (the virtual type
// is ordered last by any sane algorithm long before the cap binds).
const MaxKleeneExponent = 64

// Stats holds measured stream statistics.
type Stats struct {
	// Rates maps event-type name to arrival rate in events per second.
	Rates map[string]float64
	// Sel maps Condition.String() to the measured selectivity in [0,1].
	Sel map[string]float64
	// DefaultRate is returned for types with no measurement (default 1.0).
	DefaultRate float64
	// DefaultSel is returned for conditions with no measurement
	// (default 1.0, i.e. a non-restrictive predicate).
	DefaultSel float64
}

// New returns an empty Stats with the conventional defaults.
func New() *Stats {
	return &Stats{
		Rates:       make(map[string]float64),
		Sel:         make(map[string]float64),
		DefaultRate: 1.0,
		DefaultSel:  1.0,
	}
}

// Rate returns the arrival rate of the type in events/second.
func (s *Stats) Rate(typ string) float64 {
	if r, ok := s.Rates[typ]; ok && r > 0 {
		return r
	}
	return s.DefaultRate
}

// SetRate records an arrival rate.
func (s *Stats) SetRate(typ string, rate float64) { s.Rates[typ] = rate }

// Selectivity returns the selectivity of the condition. Temporal-order
// predicates default to TSOrderSelectivity when unmeasured.
func (s *Stats) Selectivity(c pattern.Condition) float64 {
	if v, ok := s.Sel[c.String()]; ok {
		return v
	}
	if c.IsTSOrder() {
		return TSOrderSelectivity
	}
	return s.DefaultSel
}

// SetSelectivity records the selectivity of a condition.
func (s *Stats) SetSelectivity(c pattern.Condition, sel float64) {
	s.Sel[c.String()] = sel
}

// Merge overlays the other statistics onto s: rates and selectivities
// present in o replace the corresponding entries of s, entries only s has
// survive. A session uses it to fold freshly measured statistics over a
// persisted seed before saving, so one quiet restart never erases the
// measurements of types that happened not to arrive.
func (s *Stats) Merge(o *Stats) {
	if o == nil {
		return
	}
	for typ, r := range o.Rates {
		s.Rates[typ] = r
	}
	for cond, sel := range o.Sel {
		s.Sel[cond] = sel
	}
}

// PatternStats is the per-pattern statistics bundle consumed by the cost
// models of Section 4: one planning position per positive primitive event,
// an arrival rate per position (Kleene-adjusted per Theorem 4), and the
// selectivity matrix of the predicates between positions.
type PatternStats struct {
	// W is the pattern window in seconds.
	W float64
	// Types, Aliases and TermIndex describe the planning positions:
	// position k corresponds to pattern term TermIndex[k].
	Types     []string
	Aliases   []string
	TermIndex []int
	// Kleene flags positions under a KL operator. Rates already hold the
	// virtual 2^{rW}/W rate for those positions.
	Kleene []bool
	// Rates holds arrival rates per position in events/second.
	Rates []float64
	// Sel is the symmetric selectivity matrix; Sel[i][i] is the combined
	// selectivity of the unary filters at position i.
	Sel [][]float64
}

// N returns the number of planning positions.
func (ps *PatternStats) N() int { return len(ps.Rates) }

// Clone returns a deep copy.
func (ps *PatternStats) Clone() *PatternStats {
	cp := &PatternStats{
		W:         ps.W,
		Types:     append([]string(nil), ps.Types...),
		Aliases:   append([]string(nil), ps.Aliases...),
		TermIndex: append([]int(nil), ps.TermIndex...),
		Kleene:    append([]bool(nil), ps.Kleene...),
		Rates:     append([]float64(nil), ps.Rates...),
	}
	cp.Sel = make([][]float64, len(ps.Sel))
	for i := range ps.Sel {
		cp.Sel[i] = append([]float64(nil), ps.Sel[i]...)
	}
	return cp
}

// KleeneRate computes the virtual arrival rate 2^{rW}/W of the power-set
// type introduced by Theorem 4, with the exponent capped at
// MaxKleeneExponent.
func KleeneRate(rate, windowSec float64) float64 {
	if windowSec <= 0 {
		return rate
	}
	exp := rate * windowSec
	if exp > MaxKleeneExponent {
		exp = MaxKleeneExponent
	}
	return math.Pow(2, exp) / windowSec
}

// For assembles PatternStats for a simple SEQ or AND pattern from measured
// stream statistics. Negated events are excluded: they never multiply the
// number of partial matches, so the cost models of Section 4 range over the
// positive events only. For sequence patterns, the temporal-order predicates
// between adjacent positive events contribute TSOrderSelectivity each, the
// planning-side counterpart of the Theorem 3 rewrite.
func For(p *pattern.Pattern, st *Stats) *PatternStats {
	positives := p.Positives()
	n := len(positives)
	ps := &PatternStats{
		W:         float64(p.Window) / float64(event.Second),
		Types:     make([]string, n),
		Aliases:   make([]string, n),
		TermIndex: append([]int(nil), positives...),
		Kleene:    make([]bool, n),
		Rates:     make([]float64, n),
		Sel:       make([][]float64, n),
	}
	aliasPos := make(map[string]int, n)
	for k, ti := range positives {
		spec := p.Terms[ti].Event
		ps.Types[k] = spec.Type
		ps.Aliases[k] = spec.Alias
		ps.Kleene[k] = spec.Kleene
		rate := st.Rate(spec.Type)
		if spec.Kleene {
			rate = KleeneRate(rate, ps.W)
		}
		ps.Rates[k] = rate
		aliasPos[spec.Alias] = k
	}
	for i := range ps.Sel {
		ps.Sel[i] = make([]float64, n)
		for j := range ps.Sel[i] {
			ps.Sel[i][j] = 1
		}
	}
	mul := func(i, j int, sel float64) {
		ps.Sel[i][j] *= sel
		if i != j {
			ps.Sel[j][i] *= sel
		}
	}
	for _, c := range p.Conds {
		als := c.Aliases()
		idx := make([]int, 0, 2)
		skip := false
		for _, a := range als {
			k, ok := aliasPos[a]
			if !ok {
				skip = true // condition touching a negated event
				break
			}
			idx = append(idx, k)
		}
		if skip {
			continue
		}
		switch len(idx) {
		case 1:
			mul(idx[0], idx[0], st.Selectivity(c))
		case 2:
			mul(idx[0], idx[1], st.Selectivity(c))
		}
	}
	if p.Op == pattern.OpSeq {
		for k := 0; k+1 < n; k++ {
			mul(k, k+1, TSOrderSelectivity)
		}
	}
	return ps
}
