package stats

import (
	"repro/internal/event"
	"repro/internal/pattern"
)

// SampleSelectivity estimates a condition's selectivity from per-alias
// event samples: the pass fraction over the sample for a unary condition,
// over the (optionally strided) cross product for a pairwise one. samples
// maps a condition alias to its event sample (a full per-type slice, a
// sliding-window reservoir — whatever the caller measures over); maxPairs
// bounds the pairs examined (0 means unbounded), using the same
// deterministic strided sampling as the offline collector so estimates are
// reproducible. The boolean result reports whether enough data was
// available. Every reservoir-based estimator in the tree — the offline
// collector, the single-runtime online estimator and the session drift
// collector — funnels through this one implementation.
func SampleSelectivity(c pattern.Condition, samples func(alias string) []*event.Event, maxPairs int) (float64, bool) {
	als := c.Aliases()
	switch len(als) {
	case 1:
		evs := samples(als[0])
		if len(evs) == 0 {
			return 0, false
		}
		pass := 0
		for _, e := range evs {
			if c.EvalUnary(e) {
				pass++
			}
		}
		return float64(pass) / float64(len(evs)), true
	case 2:
		evsA := samples(als[0])
		evsB := samples(als[1])
		if len(evsA) == 0 || len(evsB) == 0 {
			return 0, false
		}
		total := len(evsA) * len(evsB)
		stride := 1
		if maxPairs > 0 && total > maxPairs {
			stride = total/maxPairs + 1
		}
		pass, tried := 0, 0
		for k := 0; k < total; k += stride {
			tried++
			if c.EvalPair(evsA[k/len(evsB)], evsB[k%len(evsB)]) {
				pass++
			}
		}
		if tried == 0 {
			return 0, false
		}
		return float64(pass) / float64(tried), true
	}
	return 0, false
}
