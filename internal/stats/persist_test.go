package stats

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/pattern"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	s := New()
	s.SetRate("A", 12.5)
	s.SetRate("B", 0.25)
	c := pattern.AttrCmp("a", "x", pattern.Lt, "b", "x")
	s.SetSelectivity(c, 0.125)
	s.DefaultRate = 2
	s.DefaultSel = 0.9

	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Rate("A") != 12.5 || loaded.Rate("B") != 0.25 {
		t.Fatalf("rates lost: %v", loaded.Rates)
	}
	if loaded.Selectivity(c) != 0.125 {
		t.Fatalf("selectivity lost: %v", loaded.Sel)
	}
	if loaded.Rate("unknown") != 2 || loaded.DefaultSel != 0.9 {
		t.Fatal("defaults lost")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("{nope")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestLoadEmptyObjectGetsDefaults(t *testing.T) {
	s, err := Load(strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	if s.Rate("X") != 1.0 || s.DefaultSel != 1.0 {
		t.Fatal("conventional defaults not applied")
	}
	// Maps must be usable.
	s.SetRate("X", 3)
	if s.Rate("X") != 3 {
		t.Fatal("maps not initialised")
	}
}
