package stats

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/pattern"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	s := New()
	s.SetRate("A", 12.5)
	s.SetRate("B", 0.25)
	c := pattern.AttrCmp("a", "x", pattern.Lt, "b", "x")
	s.SetSelectivity(c, 0.125)
	s.DefaultRate = 2
	s.DefaultSel = 0.9

	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Rate("A") != 12.5 || loaded.Rate("B") != 0.25 {
		t.Fatalf("rates lost: %v", loaded.Rates)
	}
	if loaded.Selectivity(c) != 0.125 {
		t.Fatalf("selectivity lost: %v", loaded.Sel)
	}
	if loaded.Rate("unknown") != 2 || loaded.DefaultSel != 0.9 {
		t.Fatal("defaults lost")
	}
}

func TestMergeOverlay(t *testing.T) {
	seed := New()
	seed.SetRate("A", 1)
	seed.SetRate("B", 2)
	ca := pattern.AttrCmp("a", "x", pattern.Lt, "b", "x")
	cb := pattern.AttrCmp("a", "y", pattern.Gt, "b", "y")
	seed.SetSelectivity(ca, 0.5)

	fresh := New()
	fresh.SetRate("A", 10) // re-measured: replaces
	fresh.SetRate("C", 3)  // new type: added
	fresh.SetSelectivity(cb, 0.25)

	seed.Merge(fresh)
	if seed.Rate("A") != 10 || seed.Rate("B") != 2 || seed.Rate("C") != 3 {
		t.Fatalf("merged rates wrong: %v", seed.Rates)
	}
	if seed.Selectivity(ca) != 0.5 || seed.Selectivity(cb) != 0.25 {
		t.Fatalf("merged selectivities wrong: %v", seed.Sel)
	}
	seed.Merge(nil) // nil overlay is a no-op
	if seed.Rate("A") != 10 {
		t.Fatal("nil merge mutated stats")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("{nope")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestLoadEmptyObjectGetsDefaults(t *testing.T) {
	s, err := Load(strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	if s.Rate("X") != 1.0 || s.DefaultSel != 1.0 {
		t.Fatal("conventional defaults not applied")
	}
	// Maps must be usable.
	s.SetRate("X", 3)
	if s.Rate("X") != 3 {
		t.Fatal("maps not initialised")
	}
}
