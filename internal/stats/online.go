package stats

import (
	"repro/internal/event"
	"repro/internal/pattern"
)

// ReservoirSize is the number of recent events retained per type by the
// online estimator for selectivity sampling.
const ReservoirSize = 64

// Online estimates rates and selectivities over a sliding window of the live
// stream. It is the measurement half of the adaptivity mechanism sketched in
// Section 6.3: a CEP engine "must continuously estimate the current
// statistic values".
type Online struct {
	window event.Time
	now    event.Time
	types  map[string]*typeWindow
}

type typeWindow struct {
	// arrivals holds the timestamps of events inside the sliding window.
	arrivals []event.Time
	// reservoir holds the most recent events for selectivity sampling.
	reservoir []*event.Event
}

// NewOnline builds an online estimator over the given sliding window.
func NewOnline(window event.Time) *Online {
	if window <= 0 {
		panic("stats: online window must be positive")
	}
	return &Online{window: window, types: make(map[string]*typeWindow)}
}

// Observe feeds one event (in timestamp order) to the estimator.
func (o *Online) Observe(e *event.Event) {
	o.now = e.TS
	tw := o.types[e.Type]
	if tw == nil {
		tw = &typeWindow{}
		o.types[e.Type] = tw
	}
	tw.arrivals = append(tw.arrivals, e.TS)
	tw.reservoir = append(tw.reservoir, e)
	if len(tw.reservoir) > ReservoirSize {
		tw.reservoir = tw.reservoir[len(tw.reservoir)-ReservoirSize:]
	}
	o.expire()
}

func (o *Online) expire() {
	cut := o.now - o.window
	for _, tw := range o.types {
		i := 0
		for i < len(tw.arrivals) && tw.arrivals[i] < cut {
			i++
		}
		if i > 0 {
			tw.arrivals = tw.arrivals[i:]
		}
	}
}

// Rate returns the current arrival-rate estimate for the type in
// events/second.
func (o *Online) Rate(typ string) float64 {
	tw := o.types[typ]
	if tw == nil || len(tw.arrivals) == 0 {
		return 0
	}
	return float64(len(tw.arrivals)) / (float64(o.window) / float64(event.Second))
}

// Selectivity estimates the condition's selectivity from the per-type
// reservoirs. The boolean result reports whether enough data was available.
func (o *Online) Selectivity(c pattern.Condition, aliasTypes map[string]string) (float64, bool) {
	return SampleSelectivity(c, func(alias string) []*event.Event {
		tw := o.types[aliasTypes[alias]]
		if tw == nil {
			return nil
		}
		return tw.reservoir
	}, 0)
}

// Snapshot freezes the current estimates into a Stats usable by plan
// generation.
func (o *Online) Snapshot(conds []pattern.Condition, aliasTypes map[string]string) *Stats {
	s := New()
	for typ := range o.types {
		if r := o.Rate(typ); r > 0 {
			s.SetRate(typ, r)
		}
	}
	for _, c := range conds {
		if sel, ok := o.Selectivity(c, aliasTypes); ok {
			s.SetSelectivity(c, sel)
		}
	}
	return s
}
