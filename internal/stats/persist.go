package stats

import (
	"encoding/json"
	"fmt"
	"io"
)

// wire is the JSON representation of Stats.
type wire struct {
	Rates       map[string]float64 `json:"rates"`
	Sel         map[string]float64 `json:"selectivities"`
	DefaultRate float64            `json:"default_rate"`
	DefaultSel  float64            `json:"default_selectivity"`
}

// Save writes the statistics as JSON, so that an expensive offline
// measurement pass (the paper's preprocessing took the full dataset) can be
// reused across runs.
func (s *Stats) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(wire{
		Rates:       s.Rates,
		Sel:         s.Sel,
		DefaultRate: s.DefaultRate,
		DefaultSel:  s.DefaultSel,
	}); err != nil {
		return fmt.Errorf("stats: encoding: %w", err)
	}
	return nil
}

// Load reads statistics previously written by Save.
func Load(r io.Reader) (*Stats, error) {
	var w wire
	if err := json.NewDecoder(r).Decode(&w); err != nil {
		return nil, fmt.Errorf("stats: decoding: %w", err)
	}
	s := New()
	if w.Rates != nil {
		s.Rates = w.Rates
	}
	if w.Sel != nil {
		s.Sel = w.Sel
	}
	if w.DefaultRate > 0 {
		s.DefaultRate = w.DefaultRate
	}
	if w.DefaultSel > 0 {
		s.DefaultSel = w.DefaultSel
	}
	return s, nil
}
