package stats

import (
	"repro/internal/event"
	"repro/internal/pattern"
)

// MaxSamplePairs bounds the number of event pairs examined when measuring
// the selectivity of one pairwise condition.
const MaxSamplePairs = 20000

// Measure computes arrival rates for every type present in the events and
// selectivities for the given conditions. aliasTypes maps condition aliases
// to event-type names (obtain it from a pattern via AliasTypes). The events
// must be timestamp-ordered; rates are events per second over the spanned
// interval. This mirrors the paper's preprocessing stage, where "all arrival
// rates and predicate selectivities were calculated" before evaluation.
func Measure(events []*event.Event, conds []pattern.Condition, aliasTypes map[string]string) *Stats {
	s := New()
	if len(events) == 0 {
		return s
	}
	byType := make(map[string][]*event.Event)
	for _, e := range events {
		byType[e.Type] = append(byType[e.Type], e)
	}
	spanMS := events[len(events)-1].TS - events[0].TS
	if spanMS <= 0 {
		spanMS = 1
	}
	spanSec := float64(spanMS) / float64(event.Second)
	for typ, evs := range byType {
		s.SetRate(typ, float64(len(evs))/spanSec)
	}
	for _, c := range conds {
		sel, ok := measureCond(c, byType, aliasTypes)
		if ok {
			s.SetSelectivity(c, sel)
		}
	}
	return s
}

// MeasurePattern measures rates and the selectivities of the pattern's
// conditions in one pass.
func MeasurePattern(events []*event.Event, p *pattern.Pattern) *Stats {
	return Measure(events, p.Conds, AliasTypes(p))
}

// AliasTypes maps every alias declared anywhere in the pattern to its event
// type.
func AliasTypes(p *pattern.Pattern) map[string]string {
	m := make(map[string]string)
	var walk func(q *pattern.Pattern)
	walk = func(q *pattern.Pattern) {
		for _, t := range q.Terms {
			if t.Event != nil {
				m[t.Event.Alias] = t.Event.Type
			} else {
				walk(t.Sub)
			}
		}
	}
	walk(p)
	return m
}

func measureCond(c pattern.Condition, byType map[string][]*event.Event, aliasTypes map[string]string) (float64, bool) {
	return SampleSelectivity(c, func(alias string) []*event.Event {
		return byType[aliasTypes[alias]]
	}, MaxSamplePairs)
}
