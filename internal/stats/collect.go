package stats

import (
	"repro/internal/event"
	"repro/internal/pattern"
)

// MaxSamplePairs bounds the number of event pairs examined when measuring
// the selectivity of one pairwise condition.
const MaxSamplePairs = 20000

// Measure computes arrival rates for every type present in the events and
// selectivities for the given conditions. aliasTypes maps condition aliases
// to event-type names (obtain it from a pattern via AliasTypes). The events
// must be timestamp-ordered; rates are events per second over the spanned
// interval. This mirrors the paper's preprocessing stage, where "all arrival
// rates and predicate selectivities were calculated" before evaluation.
func Measure(events []*event.Event, conds []pattern.Condition, aliasTypes map[string]string) *Stats {
	s := New()
	if len(events) == 0 {
		return s
	}
	byType := make(map[string][]*event.Event)
	for _, e := range events {
		byType[e.Type] = append(byType[e.Type], e)
	}
	spanMS := events[len(events)-1].TS - events[0].TS
	if spanMS <= 0 {
		spanMS = 1
	}
	spanSec := float64(spanMS) / float64(event.Second)
	for typ, evs := range byType {
		s.SetRate(typ, float64(len(evs))/spanSec)
	}
	for _, c := range conds {
		sel, ok := measureCond(c, byType, aliasTypes)
		if ok {
			s.SetSelectivity(c, sel)
		}
	}
	return s
}

// MeasurePattern measures rates and the selectivities of the pattern's
// conditions in one pass.
func MeasurePattern(events []*event.Event, p *pattern.Pattern) *Stats {
	return Measure(events, p.Conds, AliasTypes(p))
}

// AliasTypes maps every alias declared anywhere in the pattern to its event
// type.
func AliasTypes(p *pattern.Pattern) map[string]string {
	m := make(map[string]string)
	var walk func(q *pattern.Pattern)
	walk = func(q *pattern.Pattern) {
		for _, t := range q.Terms {
			if t.Event != nil {
				m[t.Event.Alias] = t.Event.Type
			} else {
				walk(t.Sub)
			}
		}
	}
	walk(p)
	return m
}

func measureCond(c pattern.Condition, byType map[string][]*event.Event, aliasTypes map[string]string) (float64, bool) {
	als := c.Aliases()
	switch len(als) {
	case 1:
		evs := byType[aliasTypes[als[0]]]
		if len(evs) == 0 {
			return 0, false
		}
		pass := 0
		for _, e := range evs {
			if c.EvalUnary(e) {
				pass++
			}
		}
		return float64(pass) / float64(len(evs)), true
	case 2:
		evsA := byType[aliasTypes[als[0]]]
		evsB := byType[aliasTypes[als[1]]]
		if len(evsA) == 0 || len(evsB) == 0 {
			return 0, false
		}
		total := len(evsA) * len(evsB)
		// Deterministic strided sampling keeps the measurement reproducible
		// while bounding work on large streams.
		stride := 1
		if total > MaxSamplePairs {
			stride = total/MaxSamplePairs + 1
		}
		pass, tried := 0, 0
		for k := 0; k < total; k += stride {
			a := evsA[k/len(evsB)]
			b := evsB[k%len(evsB)]
			tried++
			if c.EvalPair(a, b) {
				pass++
			}
		}
		if tried == 0 {
			return 0, false
		}
		return float64(pass) / float64(tried), true
	}
	return 0, false
}
