package enginetest

import (
	"math/rand"
	"testing"

	"repro/internal/nfa"
	"repro/internal/oracle"
	"repro/internal/pattern"
	"repro/internal/plan"
	"repro/internal/predicate"
	"repro/internal/tree"
)

// TestNegationPlusKleeneMatchOracle combines both unary operators in one
// pattern — the hardest compiled shape — and checks every plan of both
// engines against the oracle.
func TestNegationPlusKleeneMatchOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(200))
	for trial := 0; trial < 15; trial++ {
		// SEQ/AND over three positives (one Kleene) plus one negated event.
		terms := []pattern.Term{
			pattern.E("A", "e0"),
			pattern.KL("B", "e1"),
			pattern.Not("C", "neg"),
			pattern.E("D", "e2"),
		}
		var p *pattern.Pattern
		if trial%2 == 0 {
			p = pattern.Seq(testWindow, terms...)
		} else {
			p = pattern.And(testWindow, terms...)
		}
		if trial%3 == 0 {
			p.Conds = append(p.Conds,
				pattern.AttrCmp("e0", "x", pattern.Le, "e2", "x"))
		}
		c := compileOrFail(t, p, predicate.SkipTillAnyMatch)
		events := Stream(rng, 16, TypeNames, 3)
		want := oracle.Find(c, events)
		cfg := nfa.Config{MaxKleeneBase: oracle.MaxKleeneCandidates}
		PositiveOrders(c, func(order []int) {
			got, _, err := RunNFA(c, order, events, cfg)
			if err != nil {
				t.Fatal(err)
			}
			sameSet(t, "nfa "+p.String(), got, want)
		})
		tcfg := tree.Config{MaxKleeneBase: oracle.MaxKleeneCandidates}
		PositiveTrees(c, func(root *plan.TreeNode) {
			got, _, err := RunTree(c, root, events, tcfg)
			if err != nil {
				t.Fatal(err)
			}
			sameSet(t, "tree "+p.String(), got, want)
		})
	}
}

// TestMultipleKleenePositionsMatchOracle checks patterns with two Kleene
// positions: each contributes its own power-set groups.
func TestMultipleKleenePositionsMatchOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(205))
	for trial := 0; trial < 10; trial++ {
		p := pattern.And(testWindow,
			pattern.KL("A", "k1"),
			pattern.E("B", "mid"),
			pattern.KL("C", "k2"),
		)
		c := compileOrFail(t, p, predicate.SkipTillAnyMatch)
		events := Stream(rng, 12, []string{"A", "B", "C"}, 3)
		want := oracle.Find(c, events)
		cfg := nfa.Config{MaxKleeneBase: oracle.MaxKleeneCandidates}
		PositiveOrders(c, func(order []int) {
			got, _, err := RunNFA(c, order, events, cfg)
			if err != nil {
				t.Fatal(err)
			}
			sameSet(t, "nfa "+p.String(), got, want)
		})
		tcfg := tree.Config{MaxKleeneBase: oracle.MaxKleeneCandidates}
		PositiveTrees(c, func(root *plan.TreeNode) {
			got, _, err := RunTree(c, root, events, tcfg)
			if err != nil {
				t.Fatal(err)
			}
			sameSet(t, "tree "+p.String(), got, want)
		})
	}
}

// TestUnaryFilterOnNegatedPosition verifies that only filter-passing events
// can veto a match.
func TestUnaryFilterOnNegatedPosition(t *testing.T) {
	rng := rand.New(rand.NewSource(206))
	p := pattern.Seq(testWindow,
		pattern.E("A", "a"), pattern.Not("B", "n"), pattern.E("C", "c"),
	).Where(pattern.Cmp(pattern.Ref("n", "x"), pattern.Gt, pattern.Const(5)))
	c := compileOrFail(t, p, predicate.SkipTillAnyMatch)
	for trial := 0; trial < 10; trial++ {
		events := Stream(rng, 40, TypeNames, 3)
		want := oracle.Find(c, events)
		got, _, err := RunNFA(c, c.Positives, events, nfa.Config{})
		if err != nil {
			t.Fatal(err)
		}
		sameSet(t, "nfa filtered negation", got, want)
		gotT, _, err := RunTree(c, plan.LeftDeep(c.Positives), events, tree.Config{})
		if err != nil {
			t.Fatal(err)
		}
		sameSet(t, "tree filtered negation", gotT, want)
	}
}

// TestMultipleNegationsMatchOracle checks patterns with two negated events
// anchored at different places.
func TestMultipleNegationsMatchOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(201))
	for trial := 0; trial < 15; trial++ {
		p := pattern.Seq(testWindow,
			pattern.Not("A", "n1"),
			pattern.E("B", "e0"),
			pattern.Not("C", "n2"),
			pattern.E("D", "e1"),
		)
		c := compileOrFail(t, p, predicate.SkipTillAnyMatch)
		events := Stream(rng, 40, TypeNames, 3)
		want := oracle.Find(c, events)
		PositiveOrders(c, func(order []int) {
			got, _, err := RunNFA(c, order, events, nfa.Config{})
			if err != nil {
				t.Fatal(err)
			}
			sameSet(t, "nfa "+p.String(), got, want)
		})
		PositiveTrees(c, func(root *plan.TreeNode) {
			got, _, err := RunTree(c, root, events, tree.Config{})
			if err != nil {
				t.Fatal(err)
			}
			sameSet(t, "tree "+p.String(), got, want)
		})
	}
}

// TestDuplicateTypesAcrossPositions stresses patterns where several
// positions (positive and negated) share one event type.
func TestDuplicateTypesAcrossPositions(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	for trial := 0; trial < 15; trial++ {
		p := pattern.Seq(testWindow,
			pattern.E("A", "first"),
			pattern.E("A", "second"),
			pattern.Not("A", "none"),
			pattern.E("B", "last"),
		)
		c := compileOrFail(t, p, predicate.SkipTillAnyMatch)
		events := Stream(rng, 30, []string{"A", "B"}, 4)
		want := oracle.Find(c, events)
		PositiveOrders(c, func(order []int) {
			got, _, err := RunNFA(c, order, events, nfa.Config{})
			if err != nil {
				t.Fatal(err)
			}
			sameSet(t, "nfa "+p.String(), got, want)
		})
		PositiveTrees(c, func(root *plan.TreeNode) {
			got, _, err := RunTree(c, root, events, tree.Config{})
			if err != nil {
				t.Fatal(err)
			}
			sameSet(t, "tree "+p.String(), got, want)
		})
	}
}
