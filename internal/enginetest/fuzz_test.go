package enginetest

import "testing"

// FuzzDifferential drives the differential harness from fuzzed inputs:
// the seed picks the random query set and stream, the remaining bytes pick
// the workload shape. Any crash or match-set divergence between the
// batched/pooled Session configurations and the per-query reference is a
// finding. CI runs this as a short `-fuzztime` smoke; the committed corpus
// under testdata/fuzz keeps the interesting shapes in every plain
// `go test` run.
func FuzzDifferential(f *testing.F) {
	f.Add(int64(1), uint8(3), uint16(200), uint8(16))
	f.Add(int64(42), uint8(0), uint16(80), uint8(0))
	f.Add(int64(7), uint8(5), uint16(400), uint8(63))
	f.Add(int64(1234), uint8(2), uint16(300), uint8(6))
	f.Fuzz(func(t *testing.T, seed int64, nq uint8, ne uint16, batch uint8) {
		nQueries := 1 + int(nq)%6
		nEvents := 50 + int(ne)%600
		b := 1 + int(batch)%64
		if err := checkDifferential(seed, nQueries, nEvents, b); err != nil {
			t.Fatal(err)
		}
	})
}

// FuzzPartitionDifferential is the partitioned axis of the fuzz harness: a
// keyed-query mix evaluated on P = 2..7 partition lanes per shared
// component must reproduce the per-query reference match sets exactly. The
// committed corpus pins lane counts around hash-boundary shapes (prime lane
// counts, single-key streams via tiny workloads) that table-driven seeds
// would not stumble onto.
func FuzzPartitionDifferential(f *testing.F) {
	f.Add(int64(11), uint8(3), uint16(250), uint8(16), uint8(0))
	f.Add(int64(12), uint8(5), uint16(400), uint8(0), uint8(2))
	f.Add(int64(13), uint8(1), uint16(120), uint8(33), uint8(5))
	f.Fuzz(func(t *testing.T, seed int64, nq uint8, ne uint16, batch, p uint8) {
		nQueries := 1 + int(nq)%6
		nEvents := 50 + int(ne)%500
		b := 1 + int(batch)%64
		parts := 2 + int(p)%6
		if err := checkPartitionDifferential(seed, nQueries, nEvents, b, parts); err != nil {
			t.Fatal(err)
		}
	})
}
