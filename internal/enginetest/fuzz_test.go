package enginetest

import "testing"

// FuzzDifferential drives the differential harness from fuzzed inputs:
// the seed picks the random query set and stream, the remaining bytes pick
// the workload shape. Any crash or match-set divergence between the
// batched/pooled Session configurations and the per-query reference is a
// finding. CI runs this as a short `-fuzztime` smoke; the committed corpus
// under testdata/fuzz keeps the interesting shapes in every plain
// `go test` run.
func FuzzDifferential(f *testing.F) {
	f.Add(int64(1), uint8(3), uint16(200), uint8(16))
	f.Add(int64(42), uint8(0), uint16(80), uint8(0))
	f.Add(int64(7), uint8(5), uint16(400), uint8(63))
	f.Add(int64(1234), uint8(2), uint16(300), uint8(6))
	f.Fuzz(func(t *testing.T, seed int64, nq uint8, ne uint16, batch uint8) {
		nQueries := 1 + int(nq)%6
		nEvents := 50 + int(ne)%600
		b := 1 + int(batch)%64
		if err := checkDifferential(seed, nQueries, nEvents, b); err != nil {
			t.Fatal(err)
		}
	})
}
