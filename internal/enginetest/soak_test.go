package enginetest

import (
	"math/rand"
	"testing"

	"repro/internal/event"
	"repro/internal/nfa"
	"repro/internal/pattern"
	"repro/internal/plan"
	"repro/internal/predicate"
	"repro/internal/tree"
)

// TestNFAStateBoundedOverLongStream verifies that window purging keeps the
// engine's live state proportional to the window, not the stream: a 50k
// event stream over a short window must never accumulate unbounded
// partial matches or buffers.
func TestNFAStateBoundedOverLongStream(t *testing.T) {
	p := pattern.Seq(20*event.Millisecond,
		pattern.E("A", "a"), pattern.E("B", "b"), pattern.E("C", "c"),
	).Where(pattern.AttrCmp("a", "x", pattern.Lt, "c", "x"))
	c, err := predicate.Compile(p, predicate.SkipTillAnyMatch)
	if err != nil {
		t.Fatal(err)
	}
	e, err := nfa.New(c, c.Positives, nfa.Config{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	ts := event.Time(0)
	maxPartial, maxBuffered := 0, 0
	for i := 0; i < 50000; i++ {
		ts += 1 + event.Time(rng.Int63n(3))
		typ := TypeNames[rng.Intn(3)]
		ev := event.New(Schemas[typ], ts, float64(rng.Intn(10)))
		ev.Serial = int64(i + 1)
		e.Process(ev)
		if cur := e.CurrentPartial(); cur > maxPartial {
			maxPartial = cur
		}
		if cur := e.CurrentBuffered(); cur > maxBuffered {
			maxBuffered = cur
		}
	}
	// ~10 events per 20ms window; with three positions and 0.5-ish
	// selectivity the steady state is a few dozen partial matches. Allow a
	// generous bound: the point is O(window), not O(stream).
	if maxPartial > 2000 {
		t.Fatalf("partial matches unbounded: peak %d", maxPartial)
	}
	if maxBuffered > 200 {
		t.Fatalf("buffers unbounded: peak %d", maxBuffered)
	}
	if e.Stats().Matches == 0 {
		t.Fatal("soak stream produced no matches; bound check vacuous")
	}
}

// TestTreeStateBoundedOverLongStream is the tree-engine counterpart.
func TestTreeStateBoundedOverLongStream(t *testing.T) {
	p := pattern.Seq(20*event.Millisecond,
		pattern.E("A", "a"), pattern.E("B", "b"), pattern.E("C", "c"),
	).Where(pattern.AttrCmp("a", "x", pattern.Lt, "c", "x"))
	c, err := predicate.Compile(p, predicate.SkipTillAnyMatch)
	if err != nil {
		t.Fatal(err)
	}
	root := plan.Join(plan.Join(plan.LeafNode(0), plan.LeafNode(2)), plan.LeafNode(1))
	e, err := tree.New(c, root, tree.Config{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	ts := event.Time(0)
	maxPartial := 0
	for i := 0; i < 50000; i++ {
		ts += 1 + event.Time(rng.Int63n(3))
		typ := TypeNames[rng.Intn(3)]
		ev := event.New(Schemas[typ], ts, float64(rng.Intn(10)))
		ev.Serial = int64(i + 1)
		e.Process(ev)
		if cur := e.CurrentPartial(); cur > maxPartial {
			maxPartial = cur
		}
	}
	if maxPartial > 2000 {
		t.Fatalf("instances unbounded: peak %d", maxPartial)
	}
	if e.Stats().Matches == 0 {
		t.Fatal("soak stream produced no matches; bound check vacuous")
	}
}

// TestPendingNegationBounded verifies that the trailing-negation pending
// queue also drains with the stream clock.
func TestPendingNegationBounded(t *testing.T) {
	p := pattern.Seq(20*event.Millisecond,
		pattern.E("A", "a"), pattern.Not("D", "n"))
	c, err := predicate.Compile(p, predicate.SkipTillAnyMatch)
	if err != nil {
		t.Fatal(err)
	}
	e, err := nfa.New(c, c.Positives, nfa.Config{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	ts := event.Time(0)
	maxState := 0
	for i := 0; i < 30000; i++ {
		ts += 1 + event.Time(rng.Int63n(3))
		typ := TypeNames[rng.Intn(len(TypeNames))]
		e.Process(event.New(Schemas[typ], ts, 0))
		if cur := e.CurrentPartial(); cur > maxState {
			maxState = cur
		}
	}
	if maxState > 500 {
		t.Fatalf("pending queue unbounded: peak %d", maxState)
	}
}
