package enginetest

import (
	"math/rand"
	"testing"

	"repro/internal/event"
	"repro/internal/match"
	"repro/internal/nfa"
	"repro/internal/oracle"
	"repro/internal/pattern"
	"repro/internal/plan"
	"repro/internal/predicate"
	"repro/internal/tree"
)

const testWindow = 12 * event.Millisecond

func compileOrFail(t *testing.T, p *pattern.Pattern, s predicate.Strategy) *predicate.Compiled {
	t.Helper()
	c, err := predicate.Compile(p, s)
	if err != nil {
		t.Fatalf("compile %s: %v", p, err)
	}
	return c
}

func sameSet(t *testing.T, label string, got, want []*match.Match) {
	t.Helper()
	extra, missing := match.Diff(got, want)
	if len(extra) != 0 || len(missing) != 0 {
		t.Fatalf("%s", DescribeDiff(label, got, want))
	}
}

// TestAllOrdersMatchOracle verifies that every NFA evaluation order detects
// exactly the oracle's match set: "all n! NFAs will track the exact same
// pattern" (Section 2.2).
func TestAllOrdersMatchOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(100))
	for trial := 0; trial < 25; trial++ {
		p := RandomPattern(rng, testWindow, false, false)
		c := compileOrFail(t, p, predicate.SkipTillAnyMatch)
		events := Stream(rng, 40, TypeNames, 3)
		want := oracle.Find(c, events)
		PositiveOrders(c, func(order []int) {
			got, _, err := RunNFA(c, order, events, nfa.Config{})
			if err != nil {
				t.Fatal(err)
			}
			if len(match.KeySet(got)) != len(got) {
				t.Fatalf("duplicate matches from order %v on %s", order, p)
			}
			sameSet(t, p.String(), got, want)
		})
	}
}

// TestAllTreesMatchOracle verifies the same for every tree plan
// (Section 2.3's instance-based model).
func TestAllTreesMatchOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 25; trial++ {
		p := RandomPattern(rng, testWindow, false, false)
		c := compileOrFail(t, p, predicate.SkipTillAnyMatch)
		events := Stream(rng, 40, TypeNames, 3)
		want := oracle.Find(c, events)
		PositiveTrees(c, func(root *plan.TreeNode) {
			got, _, err := RunTree(c, root, events, tree.Config{})
			if err != nil {
				t.Fatal(err)
			}
			if len(match.KeySet(got)) != len(got) {
				t.Fatalf("duplicate matches from tree %s on %s", root, p)
			}
			sameSet(t, p.String(), got, want)
		})
	}
}

// TestNegationPatternsMatchOracle covers leading, middle and trailing NOT in
// sequences and NOT inside conjunctions, for both engines under a handful of
// plans.
func TestNegationPatternsMatchOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	for trial := 0; trial < 40; trial++ {
		p := RandomPattern(rng, testWindow, true, false)
		c := compileOrFail(t, p, predicate.SkipTillAnyMatch)
		events := Stream(rng, 35, TypeNames, 3)
		want := oracle.Find(c, events)
		PositiveOrders(c, func(order []int) {
			got, _, err := RunNFA(c, order, events, nfa.Config{})
			if err != nil {
				t.Fatal(err)
			}
			sameSet(t, "nfa "+p.String(), got, want)
		})
		PositiveTrees(c, func(root *plan.TreeNode) {
			got, _, err := RunTree(c, root, events, tree.Config{})
			if err != nil {
				t.Fatal(err)
			}
			sameSet(t, "tree "+p.String(), got, want)
		})
	}
}

// TestKleenePatternsMatchOracle exercises the power-set semantics of
// Theorem 4 on both engines.
func TestKleenePatternsMatchOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	for trial := 0; trial < 25; trial++ {
		p := RandomPattern(rng, testWindow, false, true)
		c := compileOrFail(t, p, predicate.SkipTillAnyMatch)
		// Short streams keep the subset spaces tractable and under the cap.
		events := Stream(rng, 18, TypeNames, 3)
		want := oracle.Find(c, events)
		cfg := nfa.Config{MaxKleeneBase: oracle.MaxKleeneCandidates}
		PositiveOrders(c, func(order []int) {
			got, _, err := RunNFA(c, order, events, cfg)
			if err != nil {
				t.Fatal(err)
			}
			sameSet(t, "nfa "+p.String(), got, want)
		})
		tcfg := tree.Config{MaxKleeneBase: oracle.MaxKleeneCandidates}
		PositiveTrees(c, func(root *plan.TreeNode) {
			got, _, err := RunTree(c, root, events, tcfg)
			if err != nil {
				t.Fatal(err)
			}
			sameSet(t, "tree "+p.String(), got, want)
		})
	}
}

// TestTheorem3Operational verifies that a sequence pattern and its AND +
// timestamp-predicate rewrite produce identical match sets on both engines.
func TestTheorem3Operational(t *testing.T) {
	rng := rand.New(rand.NewSource(104))
	for trial := 0; trial < 20; trial++ {
		seq := pattern.Seq(testWindow,
			pattern.E("A", "a"), pattern.E("B", "b"), pattern.E("C", "c"),
		).Where(pattern.AttrCmp("a", "x", pattern.Lt, "c", "x"))
		conj := pattern.And(testWindow,
			pattern.E("A", "a"), pattern.E("B", "b"), pattern.E("C", "c"),
		).Where(
			pattern.AttrCmp("a", "x", pattern.Lt, "c", "x"),
			pattern.TSOrder("a", "b"),
			pattern.TSOrder("b", "c"),
		)
		cs := compileOrFail(t, seq, predicate.SkipTillAnyMatch)
		cc := compileOrFail(t, conj, predicate.SkipTillAnyMatch)
		events := Stream(rng, 45, TypeNames, 3)
		wantSeq := oracle.Find(cs, events)
		wantConj := oracle.Find(cc, events)
		sameSet(t, "oracle seq vs conj", wantSeq, wantConj)
		gotSeq, _, err := RunNFA(cs, cs.Positives, events, nfa.Config{})
		if err != nil {
			t.Fatal(err)
		}
		gotConj, _, err := RunNFA(cc, cc.Positives, events, nfa.Config{})
		if err != nil {
			t.Fatal(err)
		}
		sameSet(t, "nfa seq vs conj", gotSeq, gotConj)
	}
}

// TestNFAAndTreeAgreeOnPlannedOrders cross-checks the two engines on random
// plans of the same pattern.
func TestNFAAndTreeAgreeOnPlannedOrders(t *testing.T) {
	rng := rand.New(rand.NewSource(105))
	for trial := 0; trial < 30; trial++ {
		p := RandomPattern(rng, testWindow, trial%3 == 0, false)
		c := compileOrFail(t, p, predicate.SkipTillAnyMatch)
		events := Stream(rng, 50, TypeNames, 3)
		var ref []*match.Match
		first := true
		PositiveOrders(c, func(order []int) {
			if !first && rng.Intn(3) != 0 {
				return // sample a third of the orders for speed
			}
			got, _, err := RunNFA(c, order, events, nfa.Config{})
			if err != nil {
				t.Fatal(err)
			}
			if first {
				ref, first = got, false
				return
			}
			sameSet(t, "nfa order "+p.String(), got, ref)
		})
		PositiveTrees(c, func(root *plan.TreeNode) {
			if rng.Intn(3) != 0 {
				return
			}
			got, _, err := RunTree(c, root, events, tree.Config{})
			if err != nil {
				t.Fatal(err)
			}
			sameSet(t, "tree vs nfa "+p.String(), got, ref)
		})
	}
}

// TestContiguityStrategies verifies that the lowered serial predicates give
// oracle-identical results for strict and partition contiguity.
func TestContiguityStrategies(t *testing.T) {
	rng := rand.New(rand.NewSource(106))
	for _, strat := range []predicate.Strategy{predicate.StrictContiguity, predicate.PartitionContiguity} {
		for trial := 0; trial < 15; trial++ {
			p := pattern.Seq(testWindow,
				pattern.E("A", "a"), pattern.E("B", "b"))
			c := compileOrFail(t, p, strat)
			events := Stream(rng, 60, TypeNames, 2)
			if strat == predicate.PartitionContiguity {
				// Assign partitions and restamp.
				for _, e := range events {
					e.Partition = int(e.MustAttr("x")) % 3
				}
				stream := event.NewSliceStream(events)
				stream.Reset()
				events = event.Drain(stream)
			}
			want := oracle.Find(c, events)
			PositiveOrders(c, func(order []int) {
				got, _, err := RunNFA(c, order, events, nfa.Config{Strategy: strat})
				if err != nil {
					t.Fatal(err)
				}
				sameSet(t, "nfa "+strat.String(), got, want)
			})
			PositiveTrees(c, func(root *plan.TreeNode) {
				got, _, err := RunTree(c, root, events, tree.Config{Strategy: strat})
				if err != nil {
					t.Fatal(err)
				}
				sameSet(t, "tree "+strat.String(), got, want)
			})
		}
	}
}

// TestSkipTillNextInvariants checks the skip-till-next-match guarantees:
// emitted matches are pairwise event-disjoint and form a subset of the
// skip-till-any match set.
func TestSkipTillNextInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(107))
	for trial := 0; trial < 30; trial++ {
		p := RandomPattern(rng, testWindow, false, false)
		cAny := compileOrFail(t, p, predicate.SkipTillAnyMatch)
		events := Stream(rng, 50, TypeNames, 3)
		anySet := match.KeySet(oracle.Find(cAny, events))

		check := func(label string, got []*match.Match) {
			t.Helper()
			seen := make(map[int64]bool)
			for _, m := range got {
				if !anySet[m.Key()] {
					t.Fatalf("%s: match %s not in skip-any set (%s)", label, m.Key(), p)
				}
				for _, e := range m.Events() {
					if seen[e.Serial] {
						t.Fatalf("%s: event %d reused across matches (%s)", label, e.Serial, p)
					}
					seen[e.Serial] = true
				}
			}
		}
		Reset(events)
		gotN, _, err := RunNFA(cAny, cAny.Positives, events, nfa.Config{Strategy: predicate.SkipTillNextMatch})
		if err != nil {
			t.Fatal(err)
		}
		check("nfa", gotN)
		Reset(events)
		gotT, _, err := RunTree(cAny, plan.LeftDeep(cAny.Positives), events, tree.Config{Strategy: predicate.SkipTillNextMatch})
		if err != nil {
			t.Fatal(err)
		}
		check("tree", gotT)
		Reset(events)
	}
}

// TestFourCamerasScenario replays the paper's introduction example: a rare
// final camera D with reordering still detects the same matches.
func TestFourCamerasScenario(t *testing.T) {
	rng := rand.New(rand.NewSource(108))
	// a.vehicleID = b.vehicleID = c.vehicleID = d.vehicleID: the chained
	// equality is transitive, so all six pairwise predicates are declared —
	// this is what makes the rare-D-first plan cheap at every level.
	p := pattern.Seq(40,
		pattern.E("A", "a"), pattern.E("B", "b"), pattern.E("C", "c"), pattern.E("D", "d"),
	).Where(
		pattern.AttrCmp("a", "x", pattern.Eq, "b", "x"),
		pattern.AttrCmp("a", "x", pattern.Eq, "c", "x"),
		pattern.AttrCmp("a", "x", pattern.Eq, "d", "x"),
		pattern.AttrCmp("b", "x", pattern.Eq, "c", "x"),
		pattern.AttrCmp("b", "x", pattern.Eq, "d", "x"),
		pattern.AttrCmp("c", "x", pattern.Eq, "d", "x"),
	)
	c := compileOrFail(t, p, predicate.SkipTillAnyMatch)
	// D is 10× rarer than the other cameras.
	var events []*event.Event
	ts := event.Time(0)
	for i := 0; i < 200; i++ {
		ts += 1 + event.Time(rng.Int63n(2))
		typ := []string{"A", "B", "C"}[rng.Intn(3)]
		if rng.Intn(10) == 0 {
			typ = "D"
		}
		events = append(events, event.New(Schemas[typ], ts, float64(rng.Intn(3))))
	}
	events = event.Drain(event.NewSliceStream(events))
	want := oracle.Find(c, events)
	if len(want) == 0 {
		t.Fatal("scenario produced no matches; adjust generator")
	}
	// Rare-first plan (the paper's Figure 1b) vs trivial plan (Figure 1a).
	lazy, lazyEngine, err := RunNFA(c, []int{3, 0, 1, 2}, events, nfa.Config{})
	if err != nil {
		t.Fatal(err)
	}
	trivial, trivialEngine, err := RunNFA(c, []int{0, 1, 2, 3}, events, nfa.Config{})
	if err != nil {
		t.Fatal(err)
	}
	sameSet(t, "lazy", lazy, want)
	sameSet(t, "trivial", trivial, want)
	// The rare-first plan must create fewer partial matches — the entire
	// point of plan generation.
	if lazyEngine.Stats().Created >= trivialEngine.Stats().Created {
		t.Fatalf("lazy plan created %d partial matches, trivial %d — expected fewer",
			lazyEngine.Stats().Created, trivialEngine.Stats().Created)
	}
}
