package enginetest

import (
	"fmt"
	"math/rand"
	"testing"

	cep "repro"
	"repro/internal/event"
	"repro/internal/match"
)

// The differential harness is the safety net for hot-path surgery: it feeds
// one identical randomized workload (random query set, random stream)
// through independently planned per-query runtimes (the reference) and
// through Session configurations that exercise the batched and pooled code
// paths, and requires identical per-query match sets everywhere. Everything
// runs under skip-till-any-match — the strategy whose match sets are
// provably plan-independent (Section 3), and the only one whose global
// consumption marks cannot leak state between the engine configurations
// under comparison.

// diffQuery is one randomized query of a differential workload.
type diffQuery struct {
	name string
	p    *cep.Pattern
}

// buildDifferentialQueries draws nQueries random patterns with varied
// windows; a quarter carry negation, an eighth Kleene closure (those stay
// on private lanes — sharing eligibility excludes Kleene — which is exactly
// the point: the same session mixes shared-DAG and private-detector paths).
func buildDifferentialQueries(rng *rand.Rand, nQueries int) []diffQuery {
	qs := make([]diffQuery, nQueries)
	for i := range qs {
		window := event.Time(4 + rng.Int63n(13))
		negation := rng.Intn(4) == 0
		kleene := rng.Intn(8) == 0
		qs[i] = diffQuery{
			name: fmt.Sprintf("q%02d", i),
			p:    RandomPattern(rng, window, negation, kleene),
		}
	}
	return qs
}

// referenceMatches runs every query on its own independently planned
// Runtime, per event — the unbatched, unshared ground truth.
func referenceMatches(qs []diffQuery, events []*event.Event) (map[string][]*match.Match, error) {
	out := make(map[string][]*match.Match, len(qs))
	for _, q := range qs {
		rt, err := cep.New(q.p, cep.Measure(events, q.p), cep.WithStrategy(cep.SkipTillAnyMatch))
		if err != nil {
			return nil, fmt.Errorf("reference %s: %w", q.name, err)
		}
		ms, err := rt.ProcessAll(events)
		if err != nil {
			return nil, fmt.Errorf("reference %s: %w", q.name, err)
		}
		out[q.name] = ms
	}
	return out, nil
}

// runSessionDifferential feeds the workload through one Session
// configuration: shared or private lanes, per-event Submit (batch <= 1) or
// SubmitBatch in chunks of the given size, broadcast feed or the ingress
// filter index.
func runSessionDifferential(qs []diffQuery, events []*event.Event, share, filterIndex bool, batch int) (map[string][]*match.Match, error) {
	s := cep.NewSession(cep.SessionConfig{ShareSubplans: share, FilterIndex: filterIndex})
	for _, q := range qs {
		err := s.Register(cep.QueryConfig{
			Name: q.name, Pattern: q.p, Strategy: cep.SkipTillAnyMatch,
			Stats: cep.Measure(events, q.p),
		})
		if err != nil {
			return nil, fmt.Errorf("register %s: %w", q.name, err)
		}
	}
	if err := s.Start(); err != nil {
		return nil, err
	}
	if batch <= 1 {
		for _, ev := range events {
			if err := s.Submit(ev); err != nil {
				return nil, err
			}
		}
	} else {
		for i := 0; i < len(events); i += batch {
			end := i + batch
			if end > len(events) {
				end = len(events)
			}
			if err := s.SubmitBatch(events[i:end]); err != nil {
				return nil, err
			}
		}
	}
	if _, err := s.Flush(); err != nil {
		return nil, err
	}
	return s.Results(), nil
}

// checkDifferential generates the workload for one seed and asserts that
// every Session configuration reproduces the reference match set of every
// query exactly.
func checkDifferential(seed int64, nQueries, nEvents, batch int) error {
	rng := rand.New(rand.NewSource(seed))
	qs := buildDifferentialQueries(rng, nQueries)
	events := Stream(rng, nEvents, TypeNames, 3)
	want, err := referenceMatches(qs, events)
	if err != nil {
		return err
	}
	modes := []struct {
		name  string
		share bool
		fidx  bool
		batch int
	}{
		{"shared/per-event", true, false, 0},
		{fmt.Sprintf("shared/batch=%d", batch), true, false, batch},
		{fmt.Sprintf("private/batch=%d", batch), false, false, batch},
		{"indexed/shared/per-event", true, true, 0},
		{fmt.Sprintf("indexed/shared/batch=%d", batch), true, true, batch},
		{fmt.Sprintf("indexed/private/batch=%d", batch), false, true, batch},
	}
	for _, mode := range modes {
		Reset(events)
		got, err := runSessionDifferential(qs, events, mode.share, mode.fidx, mode.batch)
		if err != nil {
			return fmt.Errorf("%s: %w", mode.name, err)
		}
		for _, q := range qs {
			if extra, missing := match.Diff(got[q.name], want[q.name]); len(extra)+len(missing) > 0 {
				return fmt.Errorf("seed %d, %s: %s", seed, mode.name,
					DescribeDiff(q.name, got[q.name], want[q.name]))
			}
		}
	}
	return nil
}

// TestDifferentialSeeds pins a spread of fixed seeds so the harness runs on
// every `go test`, not only under `go test -fuzz`.
func TestDifferentialSeeds(t *testing.T) {
	cases := []struct {
		seed            int64
		queries, events int
		batch           int
	}{
		{1, 4, 400, 16},
		{2, 1, 200, 1},
		{3, 6, 500, 256},
		{4, 3, 300, 7},
		{5, 5, 450, 64},
		{6, 2, 250, 32},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(fmt.Sprintf("seed=%d/q=%d/n=%d/b=%d", tc.seed, tc.queries, tc.events, tc.batch), func(t *testing.T) {
			t.Parallel()
			if err := checkDifferential(tc.seed, tc.queries, tc.events, tc.batch); err != nil {
				t.Fatal(err)
			}
		})
	}
}
