package enginetest

import (
	"fmt"
	"math/rand"
	"testing"

	cep "repro"
	"repro/internal/event"
	"repro/internal/match"
)

// The differential harness is the safety net for hot-path surgery: it feeds
// one identical randomized workload (random query set, random stream)
// through independently planned per-query runtimes (the reference) and
// through Session configurations that exercise the batched and pooled code
// paths, and requires identical per-query match sets everywhere. Everything
// runs under skip-till-any-match — the strategy whose match sets are
// provably plan-independent (Section 3), and the only one whose global
// consumption marks cannot leak state between the engine configurations
// under comparison.

// diffQuery is one randomized query of a differential workload. kleene
// marks draws that are ineligible for sharing and therefore run on private
// detector lanes, whose provenance records carry no per-event seqs.
type diffQuery struct {
	name   string
	p      *cep.Pattern
	kleene bool
}

// buildDifferentialQueries draws nQueries random patterns with varied
// windows; a quarter carry negation, an eighth Kleene closure (those stay
// on private lanes — sharing eligibility excludes Kleene — which is exactly
// the point: the same session mixes shared-DAG and private-detector paths).
func buildDifferentialQueries(rng *rand.Rand, nQueries int) []diffQuery {
	qs := make([]diffQuery, nQueries)
	for i := range qs {
		window := event.Time(4 + rng.Int63n(13))
		negation := rng.Intn(4) == 0
		kleene := rng.Intn(8) == 0
		qs[i] = diffQuery{
			name:   fmt.Sprintf("q%02d", i),
			p:      RandomPattern(rng, window, negation, kleene),
			kleene: kleene,
		}
	}
	return qs
}

// referenceMatches runs every query on its own independently planned
// Runtime, per event — the unbatched, unshared ground truth.
func referenceMatches(qs []diffQuery, events []*event.Event) (map[string][]*match.Match, error) {
	out := make(map[string][]*match.Match, len(qs))
	for _, q := range qs {
		rt, err := cep.New(q.p, cep.Measure(events, q.p), cep.WithStrategy(cep.SkipTillAnyMatch))
		if err != nil {
			return nil, fmt.Errorf("reference %s: %w", q.name, err)
		}
		ms, err := rt.ProcessAll(events)
		if err != nil {
			return nil, fmt.Errorf("reference %s: %w", q.name, err)
		}
		out[q.name] = ms
	}
	return out, nil
}

// runSessionDifferential feeds the workload through one Session
// configuration: shared or private lanes, per-event Submit (batch <= 1) or
// SubmitBatch in chunks of the given size, broadcast feed or the ingress
// filter index, key-partitioned shared evaluation when partitions >= 2.
func runSessionDifferential(qs []diffQuery, events []*event.Event, share, filterIndex bool, batch, partitions int) (map[string][]*match.Match, error) {
	s := cep.NewSession(cep.SessionConfig{
		ShareSubplans: share, FilterIndex: filterIndex, PartitionWorkers: partitions,
		Trace: &cep.TraceConfig{Provenance: true},
	})
	for _, q := range qs {
		err := s.Register(cep.QueryConfig{
			Name: q.name, Pattern: q.p, Strategy: cep.SkipTillAnyMatch,
			Stats: cep.Measure(events, q.p),
		})
		if err != nil {
			return nil, fmt.Errorf("register %s: %w", q.name, err)
		}
	}
	if err := s.Start(); err != nil {
		return nil, err
	}
	if batch <= 1 {
		for _, ev := range events {
			if err := s.Submit(ev); err != nil {
				return nil, err
			}
		}
	} else {
		for i := 0; i < len(events); i += batch {
			end := i + batch
			if end > len(events) {
				end = len(events)
			}
			if err := s.SubmitBatch(events[i:end]); err != nil {
				return nil, err
			}
		}
	}
	if _, err := s.Flush(); err != nil {
		return nil, err
	}
	return s.Results(), nil
}

// checkProvenance cross-checks the match provenance layer against the
// differential ground truth: every match must carry a record, and on shared
// engine lanes (everything except Kleene draws when sharing is on, and all
// lanes when it is off) the per-event seqs must equal the submission-order
// seq of each bound event, index-aligned with Events(). Private detector
// lanes report lane and latency only — nil Seqs is their documented
// contract — so they are checked for presence, not alignment.
func checkProvenance(mode string, qs []diffQuery, events []*event.Event, got map[string][]*match.Match, shared bool) error {
	seqOf := make(map[*event.Event]uint64, len(events))
	for i, ev := range events {
		seqOf[ev] = uint64(i + 1)
	}
	for _, q := range qs {
		for _, m := range got[q.name] {
			p := m.Prov
			if p == nil {
				return fmt.Errorf("%s: %s: match without provenance", mode, q.name)
			}
			if p.Lane < 0 || p.LatencyNS < 0 {
				return fmt.Errorf("%s: %s: malformed provenance %+v", mode, q.name, p)
			}
			if p.Seqs == nil {
				if shared && !q.kleene {
					return fmt.Errorf("%s: %s: shared-lane match lost its event seqs", mode, q.name)
				}
				continue
			}
			evs := m.Events()
			if len(p.Seqs) != len(evs) {
				return fmt.Errorf("%s: %s: %d seqs for %d events", mode, q.name, len(p.Seqs), len(evs))
			}
			for i, ev := range evs {
				if p.Seqs[i] != seqOf[ev] {
					return fmt.Errorf("%s: %s: seq[%d] = %d, want %d (%v)",
						mode, q.name, i, p.Seqs[i], seqOf[ev], p.Seqs)
				}
			}
		}
	}
	return nil
}

// checkDifferential generates the workload for one seed and asserts that
// every Session configuration reproduces the reference match set of every
// query exactly.
func checkDifferential(seed int64, nQueries, nEvents, batch int) error {
	rng := rand.New(rand.NewSource(seed))
	qs := buildDifferentialQueries(rng, nQueries)
	events := Stream(rng, nEvents, TypeNames, 3)
	want, err := referenceMatches(qs, events)
	if err != nil {
		return err
	}
	modes := []struct {
		name  string
		share bool
		fidx  bool
		batch int
	}{
		{"shared/per-event", true, false, 0},
		{fmt.Sprintf("shared/batch=%d", batch), true, false, batch},
		{fmt.Sprintf("private/batch=%d", batch), false, false, batch},
		{"indexed/shared/per-event", true, true, 0},
		{fmt.Sprintf("indexed/shared/batch=%d", batch), true, true, batch},
		{fmt.Sprintf("indexed/private/batch=%d", batch), false, true, batch},
	}
	for _, mode := range modes {
		Reset(events)
		got, err := runSessionDifferential(qs, events, mode.share, mode.fidx, mode.batch, 0)
		if err != nil {
			return fmt.Errorf("%s: %w", mode.name, err)
		}
		for _, q := range qs {
			if extra, missing := match.Diff(got[q.name], want[q.name]); len(extra)+len(missing) > 0 {
				return fmt.Errorf("seed %d, %s: %s", seed, mode.name,
					DescribeDiff(q.name, got[q.name], want[q.name]))
			}
		}
		if err := checkProvenance(mode.name, qs, events, got, mode.share); err != nil {
			return fmt.Errorf("seed %d: %w", seed, err)
		}
	}
	return nil
}

// buildKeyedDifferentialQueries draws a workload slanted toward the
// key-partitionable fragment: roughly half the queries chain their positive
// positions with x-equality joins (RandomKeyedPattern — these land on
// hash-partitioned shared lanes), the rest are unconstrained RandomPattern
// draws whose components have no equi-join key and must take the broadcast
// fallback. Mixing both in one session is the point: partitioned families,
// keyless shared lanes and private lanes coexist behind one feed.
func buildKeyedDifferentialQueries(rng *rand.Rand, nQueries int) []diffQuery {
	qs := make([]diffQuery, nQueries)
	for i := range qs {
		window := event.Time(4 + rng.Int63n(13))
		negation := rng.Intn(4) == 0
		if i%2 == 0 {
			qs[i] = diffQuery{
				name: fmt.Sprintf("kq%02d", i),
				p:    RandomKeyedPattern(rng, window, negation),
			}
			continue
		}
		kleene := rng.Intn(8) == 0
		qs[i] = diffQuery{
			name:   fmt.Sprintf("kq%02d", i),
			p:      RandomPattern(rng, window, negation, kleene),
			kleene: kleene,
		}
	}
	return qs
}

// checkPartitionDifferential asserts exact per-query match-set equality
// between the reference, the single-lane shared session and the
// key-partitioned shared session (P = parts lanes per keyed component), per
// event and batched, broadcast and index-routed.
func checkPartitionDifferential(seed int64, nQueries, nEvents, batch, parts int) error {
	rng := rand.New(rand.NewSource(seed))
	qs := buildKeyedDifferentialQueries(rng, nQueries)
	events := Stream(rng, nEvents, TypeNames, 3)
	want, err := referenceMatches(qs, events)
	if err != nil {
		return err
	}
	modes := []struct {
		name  string
		fidx  bool
		batch int
		parts int
	}{
		{"shared/single-lane", false, batch, 0},
		{fmt.Sprintf("partitioned=%d/per-event", parts), false, 0, parts},
		{fmt.Sprintf("partitioned=%d/batch=%d", parts, batch), false, batch, parts},
		{fmt.Sprintf("indexed/partitioned=%d/per-event", parts), true, 0, parts},
		{fmt.Sprintf("indexed/partitioned=%d/batch=%d", parts, batch), true, batch, parts},
	}
	for _, mode := range modes {
		Reset(events)
		got, err := runSessionDifferential(qs, events, true, mode.fidx, mode.batch, mode.parts)
		if err != nil {
			return fmt.Errorf("%s: %w", mode.name, err)
		}
		for _, q := range qs {
			if extra, missing := match.Diff(got[q.name], want[q.name]); len(extra)+len(missing) > 0 {
				return fmt.Errorf("seed %d, %s: %s", seed, mode.name,
					DescribeDiff(q.name, got[q.name], want[q.name]))
			}
		}
		if err := checkProvenance(mode.name, qs, events, got, true); err != nil {
			return fmt.Errorf("seed %d: %w", seed, err)
		}
	}
	return nil
}

// TestDifferentialSeeds pins a spread of fixed seeds so the harness runs on
// every `go test`, not only under `go test -fuzz`.
func TestDifferentialSeeds(t *testing.T) {
	cases := []struct {
		seed            int64
		queries, events int
		batch           int
	}{
		{1, 4, 400, 16},
		{2, 1, 200, 1},
		{3, 6, 500, 256},
		{4, 3, 300, 7},
		{5, 5, 450, 64},
		{6, 2, 250, 32},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(fmt.Sprintf("seed=%d/q=%d/n=%d/b=%d", tc.seed, tc.queries, tc.events, tc.batch), func(t *testing.T) {
			t.Parallel()
			if err := checkDifferential(tc.seed, tc.queries, tc.events, tc.batch); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestPartitionDifferentialSeeds pins the partitioned axis of the harness:
// fixed seeds across P ∈ {2, 4, 7} lanes per keyed component, including a
// prime lane count so no hash bucket pattern lines up with the power-of-two
// mixing steps.
func TestPartitionDifferentialSeeds(t *testing.T) {
	cases := []struct {
		seed            int64
		queries, events int
		batch, parts    int
	}{
		{11, 4, 400, 16, 2},
		{12, 6, 500, 64, 4},
		{13, 3, 300, 1, 4},
		{14, 5, 450, 7, 7},
		{15, 2, 250, 32, 2},
		{16, 6, 350, 128, 7},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(fmt.Sprintf("seed=%d/q=%d/n=%d/b=%d/p=%d", tc.seed, tc.queries, tc.events, tc.batch, tc.parts), func(t *testing.T) {
			t.Parallel()
			if err := checkPartitionDifferential(tc.seed, tc.queries, tc.events, tc.batch, tc.parts); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestPartitionDifferentialSkewedKey routes a fully skewed stream — every
// event carries the same x — through a partitioned session. All keyed work
// lands on one hash bucket; the other lanes stay idle but the match sets
// must still be exact.
func TestPartitionDifferentialSkewedKey(t *testing.T) {
	for _, key := range []float64{5, 0} {
		key := key
		t.Run(fmt.Sprintf("key=%v", key), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(21))
			qs := buildKeyedDifferentialQueries(rng, 4)
			events := KeyedStream(rng, 300, TypeNames, 3, key)
			want, err := referenceMatches(qs, events)
			if err != nil {
				t.Fatal(err)
			}
			for _, parts := range []int{2, 4} {
				Reset(events)
				got, err := runSessionDifferential(qs, events, true, false, 16, parts)
				if err != nil {
					t.Fatalf("parts=%d: %v", parts, err)
				}
				for _, q := range qs {
					if extra, missing := match.Diff(got[q.name], want[q.name]); len(extra)+len(missing) > 0 {
						t.Fatalf("parts=%d: %s", parts, DescribeDiff(q.name, got[q.name], want[q.name]))
					}
				}
			}
		})
	}
}

// TestPartitionDifferentialKeylessFallback asks for partitioned evaluation
// over a workload with no equi-join keys at all (RandomPattern never emits
// Eq pair predicates), so every sharing component must take the broadcast
// fallback — PartitionWorkers degrades to plain shared evaluation with no
// correctness impact.
func TestPartitionDifferentialKeylessFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	qs := buildDifferentialQueries(rng, 5)
	events := Stream(rng, 400, TypeNames, 3)
	want, err := referenceMatches(qs, events)
	if err != nil {
		t.Fatal(err)
	}
	Reset(events)
	got, err := runSessionDifferential(qs, events, true, true, 32, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range qs {
		if extra, missing := match.Diff(got[q.name], want[q.name]); len(extra)+len(missing) > 0 {
			t.Fatal(DescribeDiff(q.name, got[q.name], want[q.name]))
		}
	}
}
