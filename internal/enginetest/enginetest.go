// Package enginetest provides shared fixtures for the cross-engine
// correctness suite: random simple patterns, random streams, and runners
// that evaluate a compiled pattern with the NFA engine, the tree engine and
// the brute-force oracle. The actual tests live in this package's test
// files; they verify the paper's foundational premise that every evaluation
// plan — any order, any tree — detects exactly the same match set.
package enginetest

import (
	"fmt"
	"math/rand"

	"repro/internal/event"
	"repro/internal/match"
	"repro/internal/nfa"
	"repro/internal/pattern"
	"repro/internal/plan"
	"repro/internal/predicate"
	"repro/internal/tree"
)

// Schemas used by the generated streams.
var Schemas = map[string]*event.Schema{
	"A": event.NewSchema("A", "x"),
	"B": event.NewSchema("B", "x"),
	"C": event.NewSchema("C", "x"),
	"D": event.NewSchema("D", "x"),
}

// TypeNames lists the generated event types.
var TypeNames = []string{"A", "B", "C", "D"}

// Stream generates n random events over the given types with timestamps
// advancing by 1..maxGap and attribute x drawn from 0..9, stamped with
// serial numbers.
func Stream(rng *rand.Rand, n int, types []string, maxGap int64) []*event.Event {
	events := make([]*event.Event, 0, n)
	ts := event.Time(0)
	for i := 0; i < n; i++ {
		ts += event.Time(1 + rng.Int63n(maxGap))
		typ := types[rng.Intn(len(types))]
		events = append(events, event.New(Schemas[typ], ts, float64(rng.Intn(10))))
	}
	stream := event.NewSliceStream(events)
	return event.Drain(stream)
}

// Reset clears consumption marks so that the same events can be replayed.
func Reset(events []*event.Event) {
	stream := event.NewSliceStream(events)
	stream.Reset()
}

// RunNFA evaluates the compiled pattern with the given order (term
// positions) over the events and returns all matches (including flushed
// pendings).
func RunNFA(c *predicate.Compiled, order []int, events []*event.Event, cfg nfa.Config) ([]*match.Match, *nfa.Engine, error) {
	e, err := nfa.New(c, order, cfg)
	if err != nil {
		return nil, nil, err
	}
	var out []*match.Match
	for _, ev := range events {
		out = append(out, copyMatches(e.Process(ev))...)
	}
	out = append(out, copyMatches(e.Flush())...)
	return out, e, nil
}

// RunTree evaluates the compiled pattern with the given plan tree (leaves
// are term positions) over the events.
func RunTree(c *predicate.Compiled, root *plan.TreeNode, events []*event.Event, cfg tree.Config) ([]*match.Match, *tree.Engine, error) {
	e, err := tree.New(c, root, cfg)
	if err != nil {
		return nil, nil, err
	}
	var out []*match.Match
	for _, ev := range events {
		out = append(out, copyMatches(e.Process(ev))...)
	}
	out = append(out, copyMatches(e.Flush())...)
	return out, e, nil
}

func copyMatches(ms []*match.Match) []*match.Match {
	out := make([]*match.Match, len(ms))
	copy(out, ms)
	return out
}

// PositiveOrders enumerates every processing order over the pattern's
// positive term positions.
func PositiveOrders(c *predicate.Compiled, fn func(order []int)) {
	n := len(c.Positives)
	plan.Permutations(n, func(perm []int) {
		order := make([]int, n)
		for i, p := range perm {
			order[i] = c.Positives[p]
		}
		fn(order)
	})
}

// PositiveTrees enumerates every plan tree over the pattern's positive term
// positions.
func PositiveTrees(c *predicate.Compiled, fn func(root *plan.TreeNode)) {
	n := len(c.Positives)
	plan.AllTrees(n, func(t *plan.TreeNode) {
		fn(mapLeaves(t, c.Positives))
	})
}

func mapLeaves(t *plan.TreeNode, positives []int) *plan.TreeNode {
	if t.IsLeaf() {
		return plan.LeafNode(positives[t.Leaf])
	}
	return plan.Join(mapLeaves(t.Left, positives), mapLeaves(t.Right, positives))
}

// DescribeDiff renders a match-set difference for test failures.
func DescribeDiff(label string, got, want []*match.Match) string {
	extra, missing := match.Diff(got, want)
	return fmt.Sprintf("%s: %d got vs %d want; extra=%v missing=%v",
		label, len(got), len(want), extra, missing)
}

// RandomKeyedPattern builds a random simple pattern over 2..4 positive
// events whose positions are chained together by equality predicates on x
// (`e0.x = e1.x AND e1.x = e2.x ...`) — the shape the session's
// key-partitioned shared evaluation derives its hash-partition attribute
// from. Optionally one negated event is inserted; an extra constant unary
// sometimes narrows one position so overlapping keyed queries still differ.
// No Kleene (keyed queries must stay sharing-eligible).
func RandomKeyedPattern(rng *rand.Rand, window event.Time, negation bool) *pattern.Pattern {
	n := 2 + rng.Intn(3)
	var terms []pattern.Term
	for i := 0; i < n; i++ {
		typ := TypeNames[rng.Intn(len(TypeNames))]
		terms = append(terms, pattern.E(typ, fmt.Sprintf("k%d", i)))
	}
	if negation {
		typ := TypeNames[rng.Intn(len(TypeNames))]
		neg := pattern.Not(typ, "neg")
		at := rng.Intn(len(terms) + 1)
		terms = append(terms[:at], append([]pattern.Term{neg}, terms[at:]...)...)
	}
	var p *pattern.Pattern
	if rng.Intn(2) == 0 {
		p = pattern.Seq(window, terms...)
	} else {
		p = pattern.And(window, terms...)
	}
	var aliases []string
	for _, t := range terms {
		if !t.Event.Negated {
			aliases = append(aliases, t.Event.Alias)
		}
	}
	for k := 0; k+1 < len(aliases); k++ {
		p.Conds = append(p.Conds, pattern.AttrCmp(aliases[k], "x", pattern.Eq, aliases[k+1], "x"))
	}
	if rng.Intn(2) == 0 {
		alias := aliases[rng.Intn(len(aliases))]
		p.Conds = append(p.Conds, pattern.Cmp(pattern.Ref(alias, "x"), pattern.Le, pattern.Const(float64(3+rng.Intn(7)))))
	}
	return p
}

// KeyedStream generates n events like Stream but with every x pinned to the
// same key value — the fully skewed distribution under which a
// key-partitioned session routes everything onto one lane.
func KeyedStream(rng *rand.Rand, n int, types []string, maxGap int64, key float64) []*event.Event {
	events := make([]*event.Event, 0, n)
	ts := event.Time(0)
	for i := 0; i < n; i++ {
		ts += event.Time(1 + rng.Int63n(maxGap))
		typ := types[rng.Intn(len(types))]
		events = append(events, event.New(Schemas[typ], ts, key))
	}
	stream := event.NewSliceStream(events)
	return event.Drain(stream)
}

// RandomPattern builds a random simple pattern over 2..4 positive events
// with 0..2 attribute predicates, optionally with negation or Kleene.
func RandomPattern(rng *rand.Rand, window event.Time, negation, kleene bool) *pattern.Pattern {
	n := 2 + rng.Intn(3)
	var terms []pattern.Term
	for i := 0; i < n; i++ {
		typ := TypeNames[rng.Intn(len(TypeNames))]
		terms = append(terms, pattern.E(typ, fmt.Sprintf("e%d", i)))
	}
	if kleene {
		terms[rng.Intn(len(terms))].Event.Kleene = true
	}
	if negation {
		// Insert a negated event at a random position (keeping ≥1 positive).
		typ := TypeNames[rng.Intn(len(TypeNames))]
		neg := pattern.Not(typ, "neg")
		at := rng.Intn(len(terms) + 1)
		terms = append(terms[:at], append([]pattern.Term{neg}, terms[at:]...)...)
	}
	var p *pattern.Pattern
	if rng.Intn(2) == 0 {
		p = pattern.Seq(window, terms...)
	} else {
		p = pattern.And(window, terms...)
	}
	// Random pairwise predicates between positive events.
	aliases := []string{}
	for _, t := range terms {
		if !t.Event.Negated {
			aliases = append(aliases, t.Event.Alias)
		}
	}
	nConds := rng.Intn(3)
	for k := 0; k < nConds && len(aliases) >= 2; k++ {
		i := rng.Intn(len(aliases))
		j := rng.Intn(len(aliases))
		if i == j {
			continue
		}
		op := []pattern.CmpOp{pattern.Lt, pattern.Le, pattern.Ne}[rng.Intn(3)]
		p.Conds = append(p.Conds, pattern.AttrCmp(aliases[i], "x", op, aliases[j], "x"))
	}
	// Random constant unary predicates — equality and ranges on x, in both
	// spellings, on any term including negated ones. These are exactly the
	// forms the ingress filter index compiles into its hash and bound
	// tables, so the differential exercises indexed routing against the
	// broadcast reference whenever the session enables FilterIndex.
	var unaryAliases []string
	for _, t := range terms {
		unaryAliases = append(unaryAliases, t.Event.Alias)
	}
	nUnary := rng.Intn(3)
	for k := 0; k < nUnary; k++ {
		alias := unaryAliases[rng.Intn(len(unaryAliases))]
		v := pattern.Const(float64(rng.Intn(10)))
		x := pattern.Ref(alias, "x")
		switch rng.Intn(5) {
		case 0:
			p.Conds = append(p.Conds, pattern.Cmp(x, pattern.Eq, v))
		case 1:
			p.Conds = append(p.Conds, pattern.Cmp(x, pattern.Ge, v))
		case 2:
			p.Conds = append(p.Conds, pattern.Cmp(x, pattern.Lt, v))
		case 3:
			p.Conds = append(p.Conds, pattern.Cmp(v, pattern.Gt, x)) // flipped spelling of x < v
		case 4:
			p.Conds = append(p.Conds, pattern.Cmp(x, pattern.Ne, v)) // not indexable: residual scan
		}
	}
	return p
}
