package telemetry

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugePeak(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	var g Gauge
	g.Store(7)
	g.Add(-2)
	if got := g.Load(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
	var p Peak
	for _, v := range []int64{3, 9, 1, 9, 4} {
		p.Observe(v)
	}
	if got := p.Load(); got != 9 {
		t.Fatalf("peak = %d, want 9", got)
	}
}

func TestPeakConcurrent(t *testing.T) {
	var p Peak
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				p.Observe(int64(w*1000 + i))
			}
		}(w)
	}
	wg.Wait()
	if got := p.Load(); got != 7999 {
		t.Fatalf("peak = %d, want 7999", got)
	}
}

func TestSampler(t *testing.T) {
	s := NewSampler(4)
	hits := 0
	for i := 0; i < 100; i++ {
		if s.Sample() {
			hits++
		}
	}
	if hits != 25 {
		t.Fatalf("sampler(4): %d hits in 100, want 25", hits)
	}
	var nilS *Sampler
	if nilS.Sample() {
		t.Fatal("nil sampler fired")
	}
	if NewSampler(0).Sample() {
		t.Fatal("sampler(0) fired")
	}
	one := NewSampler(1)
	for i := 0; i < 5; i++ {
		if !one.Sample() {
			t.Fatal("sampler(1) missed")
		}
	}
}

func TestHistogramBucketsAndMean(t *testing.T) {
	var h Histogram
	h.Observe(0)
	h.Observe(1) // bucket 1
	h.Observe(5) // bucket 3: [4,8)
	h.ObserveN(6, 3)
	h.Observe(-7) // clamped to 0
	s := h.Snapshot()
	if s.Count != 7 {
		t.Fatalf("count = %d, want 7", s.Count)
	}
	if s.Sum != 1+5+3*6 {
		t.Fatalf("sum = %d, want 24", s.Sum)
	}
	if s.Buckets[0] != 2 || s.Buckets[1] != 1 || s.Buckets[3] != 4 {
		t.Fatalf("buckets = %v", s.Buckets[:5])
	}
	if got, want := s.Mean(), 24.0/7.0; got != want {
		t.Fatalf("mean = %v, want %v", got, want)
	}
	if h.Count() != 7 {
		t.Fatalf("live count = %d", h.Count())
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	a.Observe(10)
	a.Observe(100)
	b.Observe(1000)
	sa, sb := a.Snapshot(), b.Snapshot()
	sa.Merge(sb)
	if sa.Count != 3 || sa.Sum != 1110 {
		t.Fatalf("merged count=%d sum=%d", sa.Count, sa.Sum)
	}
	var total int64
	for _, n := range sa.Buckets {
		total += n
	}
	if total != 3 {
		t.Fatalf("merged bucket total = %d", total)
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	if q := h.Snapshot().Quantile(0.5); q != 0 {
		t.Fatalf("empty quantile = %d", q)
	}
	// 1000 samples all in bucket [64,128).
	h.ObserveN(100, 1000)
	s := h.Snapshot()
	p50 := s.Quantile(0.5)
	if p50 < 64 || p50 >= 128 {
		t.Fatalf("p50 = %d, want within [64,128)", p50)
	}
	p99 := s.Quantile(0.99)
	if p99 < p50 {
		t.Fatalf("p99 %d < p50 %d", p99, p50)
	}
	// Two well-separated bucket groups: median must land in the low one,
	// p99 in the high one.
	var h2 Histogram
	h2.ObserveN(10, 90)
	h2.ObserveN(1<<20, 10)
	s2 := h2.Snapshot()
	if q := s2.Quantile(0.5); q >= 16 {
		t.Fatalf("bimodal p50 = %d, want < 16", q)
	}
	if q := s2.Quantile(0.99); q < 1<<19 {
		t.Fatalf("bimodal p99 = %d, want >= 2^19", q)
	}
}

func TestJournalRing(t *testing.T) {
	j := NewJournal(3)
	if j.Len() != 0 || j.Recorded() != 0 {
		t.Fatal("fresh journal not empty")
	}
	for i := 0; i < 5; i++ {
		j.Record(int64(i*10), "kind", "d")
	}
	if j.Recorded() != 5 || j.Len() != 3 {
		t.Fatalf("recorded=%d len=%d", j.Recorded(), j.Len())
	}
	snap := j.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot len = %d", len(snap))
	}
	for i, e := range snap {
		wantSeq := int64(2 + i)
		if e.Seq != wantSeq || e.StreamSeq != wantSeq*10 {
			t.Fatalf("entry %d = %+v, want seq %d", i, e, wantSeq)
		}
		if e.Wall.IsZero() {
			t.Fatalf("entry %d has zero wall time", i)
		}
	}
	var nilJ *Journal
	nilJ.Record(0, "x", "y") // must not panic
	if nilJ.Snapshot() != nil || nilJ.Len() != 0 || nilJ.Recorded() != 0 {
		t.Fatal("nil journal not inert")
	}
}

func TestJournalFieldsAndDropped(t *testing.T) {
	j := NewJournal(3)
	if j.Dropped() != 0 {
		t.Fatal("fresh journal reports drops")
	}
	j.RecordFields(5, "splice", "gen=1 lanes=2", []KV{
		{Key: "gen", Value: "1"}, {Key: "lanes", Value: "2"},
	})
	j.Record(6, "add_query", "q")
	snap := j.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot len = %d", len(snap))
	}
	if got := snap[0].Fields; len(got) != 2 || got[0] != (KV{"gen", "1"}) || got[1] != (KV{"lanes", "2"}) {
		t.Fatalf("fields = %+v", got)
	}
	if snap[1].Fields != nil {
		t.Fatalf("plain Record grew fields: %+v", snap[1].Fields)
	}
	// JSON keeps the ordered pairs and omits them when absent.
	b, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"fields":[{"k":"gen","v":"1"},{"k":"lanes","v":"2"}]`) {
		t.Fatalf("fields JSON: %s", b)
	}
	if strings.Count(string(b), `"fields"`) != 1 {
		t.Fatalf("fields not omitted when nil: %s", b)
	}
	// Fill past capacity: dropped = recorded - retained.
	for i := 0; i < 4; i++ {
		j.Record(int64(10+i), "churn", "")
	}
	if j.Recorded() != 6 || j.Len() != 3 || j.Dropped() != 3 {
		t.Fatalf("recorded=%d len=%d dropped=%d", j.Recorded(), j.Len(), j.Dropped())
	}
	var nilJ *Journal
	if nilJ.Dropped() != 0 {
		t.Fatal("nil journal reports drops")
	}
}

func TestJournalConcurrent(t *testing.T) {
	j := NewJournal(64)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				j.Record(int64(i), "churn", "q")
				j.Snapshot()
			}
		}()
	}
	wg.Wait()
	if j.Recorded() != 800 {
		t.Fatalf("recorded = %d, want 800", j.Recorded())
	}
	snap := j.Snapshot()
	for i := 1; i < len(snap); i++ {
		if snap[i].Seq != snap[i-1].Seq+1 {
			t.Fatalf("non-dense seqs: %d then %d", snap[i-1].Seq, snap[i].Seq)
		}
	}
}

func TestPromWriterFormat(t *testing.T) {
	var b strings.Builder
	p := NewPromWriter(&b)
	p.Header("cep_events_total", "counter", "Events submitted.")
	p.Int("cep_events_total", nil, 42)
	p.Header("cep_queue_depth", "gauge", "Queue depth per lane.")
	p.Int("cep_queue_depth", Labels{"lane": "0", "kind": "shared"}, 7)
	p.Float("cep_ratio", nil, 0.5)
	var h Histogram
	h.Observe(100) // bucket 7: (64,128] upper bound 128ns
	p.Header("cep_latency_seconds", "histogram", "Detection latency.")
	p.Histogram("cep_latency_seconds", nil, h.Snapshot())
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP cep_events_total Events submitted.\n",
		"# TYPE cep_events_total counter\n",
		"cep_events_total 42\n",
		`cep_queue_depth{kind="shared",lane="0"} 7` + "\n", // sorted keys
		"cep_ratio 0.5\n",
		`cep_latency_seconds_bucket{le="+Inf"} 1` + "\n",
		"cep_latency_seconds_count 1\n",
		"cep_latency_seconds_sum 1e-07\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// The bucket holding the sample must appear with a cumulative count.
	if !strings.Contains(out, `le="0.000000128"} 1`) {
		t.Fatalf("expected 128ns bucket boundary:\n%s", out)
	}
}
