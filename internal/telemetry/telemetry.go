// Package telemetry is the always-on instrumentation spine of the live
// serving path: lock-free counters and gauges, log-bucketed mergeable
// latency histograms, a bounded structured journal of control-plane
// transitions, and a Prometheus text-format writer — stdlib only, cheap
// enough to leave on under production traffic.
//
// The ownership model mirrors the worker discipline of internal/pool:
// hot-path counters are owned by one writer goroutine (a lane worker, a
// shard) and read by any number of snapshotting goroutines through atomic
// loads, so instrumentation never adds a lock to the paths it measures.
// Control-plane structures (the Journal) take a mutex — they record
// rare transitions (query churn, splices, index rebuilds), not events.
package telemetry

import "sync/atomic"

// Counter is a monotonic event counter: one owner (or a few) adds, anyone
// loads. The zero value is ready to use.
type Counter struct{ v atomic.Int64 }

// Add records n occurrences.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc records one occurrence.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current count.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is a last-value gauge (queue depth, live partials): Store wins,
// Load observes. The zero value is ready to use.
type Gauge struct{ v atomic.Int64 }

// Store sets the gauge.
func (g *Gauge) Store(n int64) { g.v.Store(n) }

// Add moves the gauge by n.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Peak is a high-water-mark gauge: Observe keeps the maximum seen. Safe
// for concurrent observers. The zero value (peak 0) is ready to use.
type Peak struct{ v atomic.Int64 }

// Observe folds one sample into the peak.
func (p *Peak) Observe(n int64) {
	for {
		cur := p.v.Load()
		if n <= cur || p.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Load returns the peak observed so far.
func (p *Peak) Load() int64 { return p.v.Load() }

// Sampler decides, with one atomic add per call, whether the current
// operation should carry a (more expensive) measurement such as a wall
// timestamp. Every is the sampling period: 1 samples everything, 0 or
// negative samples nothing.
type Sampler struct {
	n     atomic.Int64
	every int64
}

// NewSampler returns a sampler firing every `every` calls.
func NewSampler(every int) *Sampler { return &Sampler{every: int64(every)} }

// Sample reports whether this call is a sampled one.
func (s *Sampler) Sample() bool {
	if s == nil || s.every <= 0 {
		return false
	}
	return s.n.Add(1)%s.every == 0
}

// LaneCounters instruments one worker lane of a session (or one shard):
// the owning worker increments, snapshotters load. The trailing pad keeps
// two lanes' counters off one cache line, so independent workers never
// false-share.
type LaneCounters struct {
	// Items counts queue items consumed (an event or a whole batch).
	Items Counter
	// Events counts events processed (batch items expanded).
	Events Counter
	// Batches counts batch items among Items.
	Batches Counter
	// Matches counts matches emitted by the lane.
	Matches Counter
	// Stalls counts back-pressure stalls: sends that found the lane's
	// queue full and blocked (bumped by the sender, not the worker).
	Stalls Counter
	// Latency is the sampled detection-latency histogram
	// (submit → match emission, nanoseconds).
	Latency Histogram

	_ [64]byte // cache-line pad between adjacent lanes
}
