package telemetry

import (
	"sync"
	"time"
)

// Entry is one control-plane transition: a query added or removed, a drift
// re-optimization, a splice, an index rebuild. Entries carry both a journal
// sequence number (Seq, dense, assigned at Record time) and the stream
// epoch the session had reached (StreamSeq — events submitted so far), so a
// transition can be placed on the event timeline as well as the wall clock.
type Entry struct {
	Seq       int64     `json:"seq"`
	Wall      time.Time `json:"wall"`
	StreamSeq int64     `json:"stream_seq"`
	Kind      string    `json:"kind"`
	Detail    string    `json:"detail"`
	// Fields is the machine-parseable form of Detail: ordered key/value
	// pairs populated by the splice/drift/rebuild sites. Nil for kinds
	// that carry no structure.
	Fields []KV `json:"fields,omitempty"`
}

// KV is one ordered journal field.
type KV struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// Journal is a bounded ring of control-plane Entries. Recording is
// mutex-protected — transitions are rare (churn, splices, rebuilds), never
// per-event — and once the ring is full the oldest entries are overwritten.
// The zero value must not be used; call NewJournal.
type Journal struct {
	mu   sync.Mutex
	ring []Entry
	next int64 // total entries ever recorded; also the next Seq
}

// NewJournal returns a journal keeping the most recent cap entries
// (minimum 1).
func NewJournal(cap int) *Journal {
	if cap < 1 {
		cap = 1
	}
	return &Journal{ring: make([]Entry, cap)}
}

// Record appends a transition. streamSeq is the session's event sequence at
// the time of the transition; kind is a stable small-vocabulary tag
// ("add_query", "splice", "index_rebuild", ...); detail is free-form.
func (j *Journal) Record(streamSeq int64, kind, detail string) {
	j.RecordFields(streamSeq, kind, detail, nil)
}

// RecordFields appends a transition carrying ordered structured fields
// alongside the free-form detail. The journal takes ownership of fields;
// the caller must not mutate it afterwards.
func (j *Journal) RecordFields(streamSeq int64, kind, detail string, fields []KV) {
	if j == nil {
		return
	}
	now := time.Now()
	j.mu.Lock()
	seq := j.next
	j.next++
	j.ring[seq%int64(len(j.ring))] = Entry{
		Seq: seq, Wall: now, StreamSeq: streamSeq, Kind: kind, Detail: detail,
		Fields: fields,
	}
	j.mu.Unlock()
}

// Len returns the number of entries currently retained.
func (j *Journal) Len() int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.next < int64(len(j.ring)) {
		return int(j.next)
	}
	return len(j.ring)
}

// Recorded returns the total number of entries ever recorded, including
// ones already overwritten.
func (j *Journal) Recorded() int64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.next
}

// Dropped returns how many entries the ring has overwritten —
// Recorded() minus the retained count. A non-zero value tells operators
// the ring wrapped and the journal endpoint shows a truncated history.
func (j *Journal) Dropped() int64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	n := j.next
	if n <= int64(len(j.ring)) {
		return 0
	}
	return n - int64(len(j.ring))
}

// Snapshot returns the retained entries oldest-first.
func (j *Journal) Snapshot() []Entry {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	n := int64(len(j.ring))
	start := j.next - n
	if start < 0 {
		start = 0
	}
	out := make([]Entry, 0, j.next-start)
	for s := start; s < j.next; s++ {
		out = append(out, j.ring[s%n])
	}
	return out
}
