package telemetry

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets is the bucket count of the log2 histogram: bucket b holds
// values whose bit length is b, i.e. the range [2^(b-1), 2^b). Bucket 0
// holds zero (and negative clock skew, clamped). 64 buckets cover the full
// int64 nanosecond range — ~292 years — so no overflow bucket is needed.
const histBuckets = 64

// Histogram is a lock-free log2-bucketed histogram of non-negative int64
// samples (by convention nanoseconds). Observations are one atomic add on
// the bucket plus one on the sum; snapshots are consistent enough for
// monitoring (buckets are loaded one by one while writers may continue).
// The zero value is ready to use.
type Histogram struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
}

func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// Observe records one sample.
func (h *Histogram) Observe(v int64) { h.ObserveN(v, 1) }

// ObserveN records n samples of value v (e.g. n matches sharing one
// submit→emission latency).
func (h *Histogram) ObserveN(v int64, n int64) {
	if n <= 0 {
		return
	}
	if v < 0 {
		v = 0
	}
	h.buckets[bucketOf(v)].Add(n)
	h.count.Add(n)
	h.sum.Add(v * n)
}

// Count returns the number of samples observed.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Snapshot copies the histogram into a mergeable value.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
		s.Count += s.Buckets[i]
	}
	s.Sum = h.sum.Load()
	return s
}

// HistSnapshot is a point-in-time copy of a Histogram. Snapshots merge by
// addition, so per-lane histograms roll up into a session-wide one and
// per-process ones into a fleet-wide one.
type HistSnapshot struct {
	// Buckets[b] counts samples with bit length b: value range
	// [2^(b-1), 2^b), bucket 0 holding zero.
	Buckets [histBuckets]int64 `json:"-"`
	// Count is the total number of samples; Sum their exact total, so
	// Sum/Count is the exact mean (not a bucket approximation).
	Count int64 `json:"count"`
	Sum   int64 `json:"sum"`
}

// Merge folds another snapshot into this one.
func (s *HistSnapshot) Merge(o HistSnapshot) {
	for i := range s.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
	s.Count += o.Count
	s.Sum += o.Sum
}

// Mean returns the exact mean sample, or 0 when empty.
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// MeanDuration is Mean as a time.Duration (for nanosecond histograms).
func (s HistSnapshot) MeanDuration() time.Duration { return time.Duration(s.Mean()) }

// Quantile estimates the q-quantile (0 < q ≤ 1) by linear interpolation
// inside the bucket holding the target rank; the true value is within a
// factor of 2. Returns 0 when empty.
func (s HistSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum float64
	for b, n := range s.Buckets {
		if n == 0 {
			continue
		}
		next := cum + float64(n)
		if next >= rank {
			lo, hi := bucketBounds(b)
			frac := (rank - cum) / float64(n)
			return lo + int64(frac*float64(hi-lo))
		}
		cum = next
	}
	// Unreachable unless counts changed mid-iteration; return the top
	// non-empty bucket's upper bound.
	for b := histBuckets - 1; b >= 0; b-- {
		if s.Buckets[b] > 0 {
			_, hi := bucketBounds(b)
			return hi
		}
	}
	return 0
}

// bucketBounds returns the [lo, hi) value range of bucket b.
func bucketBounds(b int) (lo, hi int64) {
	if b == 0 {
		return 0, 1
	}
	lo = int64(1) << (b - 1)
	if b >= 63 {
		return lo, int64(^uint64(0) >> 1) // clamp hi to MaxInt64
	}
	return lo, int64(1) << b
}

// UpperBounds returns the bucket upper bounds in seconds for the non-empty
// prefix of the histogram plus one empty guard bucket — the `le` series of
// a Prometheus histogram exposition. The counts slice is cumulative,
// aligned with the returned bounds.
func (s HistSnapshot) UpperBounds() (les []float64, cum []int64) {
	top := 0
	for b, n := range s.Buckets {
		if n > 0 {
			top = b
		}
	}
	var c int64
	for b := 0; b <= top+1 && b < histBuckets; b++ {
		c += s.Buckets[b]
		_, hi := bucketBounds(b)
		les = append(les, float64(hi)/1e9)
		cum = append(cum, c)
	}
	return les, cum
}
