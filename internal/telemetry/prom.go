package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// PromWriter emits Prometheus text exposition format (version 0.0.4) to an
// underlying io.Writer, stdlib only. It is a formatting helper, not a
// registry: callers walk their own snapshot and emit families in order.
// Write errors are sticky; check Err once at the end.
type PromWriter struct {
	w   io.Writer
	err error
}

// NewPromWriter wraps w.
func NewPromWriter(w io.Writer) *PromWriter { return &PromWriter{w: w} }

// Err returns the first write error, if any.
func (p *PromWriter) Err() error { return p.err }

func (p *PromWriter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

// Header emits the # HELP and # TYPE lines for a family. typ is "counter",
// "gauge", or "histogram".
func (p *PromWriter) Header(name, typ, help string) {
	p.printf("# HELP %s %s\n# TYPE %s %s\n", name, escapeHelp(help), name, typ)
}

// Labels is one sample's label set. Emission order is sorted by key so
// output is deterministic and diff-friendly.
type Labels map[string]string

func (l Labels) render(extra ...string) string {
	if len(l) == 0 && len(extra) == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		// %q escapes backslashes, quotes, and newlines — exactly the
		// Prometheus label escaping rules.
		fmt.Fprintf(&b, "%s=%q", k, l[k])
	}
	// extra is pre-rendered key=value pairs (the histogram `le` label),
	// appended last.
	for i, kv := range extra {
		if i > 0 || len(keys) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv)
	}
	b.WriteByte('}')
	return b.String()
}

// Int emits one integer sample.
func (p *PromWriter) Int(name string, labels Labels, v int64) {
	p.printf("%s%s %d\n", name, labels.render(), v)
}

// Float emits one float sample.
func (p *PromWriter) Float(name string, labels Labels, v float64) {
	p.printf("%s%s %g\n", name, labels.render(), v)
}

// Histogram emits a full histogram family body (buckets, sum, count) from a
// snapshot, treating sample values as nanoseconds and exposing seconds, the
// Prometheus convention for durations. Call Header(name, "histogram", ...)
// first.
func (p *PromWriter) Histogram(name string, labels Labels, s HistSnapshot) {
	les, cum := s.UpperBounds()
	for i, le := range les {
		p.printf("%s_bucket%s %d\n", name, labels.render(fmt.Sprintf("le=%q", trimFloat(le))), cum[i])
	}
	p.printf("%s_bucket%s %d\n", name, labels.render(`le="+Inf"`), s.Count)
	p.printf("%s_sum%s %g\n", name, labels.render(), float64(s.Sum)/1e9)
	p.printf("%s_count%s %d\n", name, labels.render(), s.Count)
}

func trimFloat(f float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.9f", f), "0"), ".")
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
