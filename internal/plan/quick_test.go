package plan

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestLeftDeepRoundTripProperty: the left-deep tree of an order lists its
// leaves in exactly that order, for arbitrary permutations.
func TestLeftDeepRoundTripProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := 1 + int(nRaw%8)
		order := rand.New(rand.NewSource(seed)).Perm(n)
		tree := LeftDeep(order)
		leaves := tree.Leaves()
		if len(leaves) != n {
			return false
		}
		for i := range leaves {
			if leaves[i] != order[i] {
				return false
			}
		}
		return tree.IsLeftDeep() && tree.Size() == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestSiblingInvolutionProperty: in any tree, the sibling of the sibling of
// a node is the node itself.
func TestSiblingInvolutionProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := 2 + int(nRaw%4)
		rng := rand.New(rand.NewSource(seed))
		// Pick one random tree via reservoir sampling over AllTrees.
		var chosen *TreeNode
		count := 0
		AllTrees(n, func(root *TreeNode) {
			count++
			if rng.Intn(count) == 0 {
				chosen = root.Clone()
			}
		})
		for _, node := range chosen.Nodes() {
			if node == chosen {
				continue
			}
			sib := chosen.Sibling(node)
			if sib == nil || chosen.Sibling(sib) != node {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPathToLeafProperty: every leaf has a path; the path starts at the
// leaf, each successive node is the previous node's parent (verified via
// sibling relations), and the path excludes the root.
func TestPathToLeafProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := 2 + int(nRaw%4)
		rng := rand.New(rand.NewSource(seed))
		var chosen *TreeNode
		count := 0
		AllTrees(n, func(root *TreeNode) {
			count++
			if rng.Intn(count) == 0 {
				chosen = root.Clone()
			}
		})
		for pos := 0; pos < n; pos++ {
			path, ok := chosen.PathToLeaf(pos)
			if !ok || len(path) == 0 {
				return false
			}
			if !path[0].IsLeaf() || path[0].Leaf != pos {
				return false
			}
			for _, node := range path {
				if node == chosen {
					return false // root must be excluded
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
