package plan

import (
	"testing"
)

func TestNewOrderValidation(t *testing.T) {
	if _, err := NewOrder([]int{2, 0, 1}); err != nil {
		t.Fatalf("valid order rejected: %v", err)
	}
	if _, err := NewOrder([]int{0, 0, 1}); err == nil {
		t.Fatal("duplicate accepted")
	}
	if _, err := NewOrder([]int{0, 3}); err == nil {
		t.Fatal("out of range accepted")
	}
	if _, err := NewOrder(nil); err != nil {
		t.Fatal("empty order should be valid")
	}
}

func TestOrderHelpers(t *testing.T) {
	p := MustOrder(2, 0, 1)
	if p.N() != 3 {
		t.Fatalf("N = %d", p.N())
	}
	if p.StepOf(0) != 1 || p.StepOf(2) != 0 || p.StepOf(9) != -1 {
		t.Fatal("StepOf wrong")
	}
	if p.String() != "[2 0 1]" {
		t.Fatalf("String = %q", p.String())
	}
	cp := p.Clone()
	cp.Order[0] = 0
	if p.Order[0] != 2 {
		t.Fatal("Clone shares state")
	}
}

func TestTrivial(t *testing.T) {
	p := Trivial(4)
	for i, q := range p.Order {
		if q != i {
			t.Fatalf("Trivial order = %v", p.Order)
		}
	}
}

func TestPermutationsCount(t *testing.T) {
	counts := map[int]int{0: 1, 1: 1, 2: 2, 3: 6, 4: 24, 5: 120}
	for n, want := range counts {
		got := 0
		seen := make(map[string]bool)
		Permutations(n, func(order []int) {
			got++
			key := ""
			for _, q := range order {
				key += string(rune('0' + q))
			}
			if seen[key] {
				t.Fatalf("n=%d: duplicate permutation %v", n, order)
			}
			seen[key] = true
		})
		if got != want {
			t.Fatalf("n=%d: %d permutations, want %d", n, got, want)
		}
	}
}

func TestTreeConstructionAndLeaves(t *testing.T) {
	// ((0 1) 2)
	root := Join(Join(LeafNode(0), LeafNode(1)), LeafNode(2))
	if root.Size() != 3 {
		t.Fatalf("Size = %d", root.Size())
	}
	leaves := root.Leaves()
	if len(leaves) != 3 || leaves[0] != 0 || leaves[1] != 1 || leaves[2] != 2 {
		t.Fatalf("Leaves = %v", leaves)
	}
	if root.String() != "((0 1) 2)" {
		t.Fatalf("String = %q", root.String())
	}
	if !root.IsLeftDeep() {
		t.Fatal("left-deep tree not recognised")
	}
	bushy := Join(Join(LeafNode(0), LeafNode(1)), Join(LeafNode(2), LeafNode(3)))
	if bushy.IsLeftDeep() {
		t.Fatal("bushy tree misclassified as left-deep")
	}
}

func TestNewTreeValidation(t *testing.T) {
	if _, err := NewTree(Join(LeafNode(0), LeafNode(1))); err != nil {
		t.Fatalf("valid tree rejected: %v", err)
	}
	if _, err := NewTree(Join(LeafNode(0), LeafNode(0))); err == nil {
		t.Fatal("duplicate leaf accepted")
	}
	if _, err := NewTree(Join(LeafNode(0), LeafNode(2))); err == nil {
		t.Fatal("gap in leaves accepted")
	}
	if _, err := NewTree(nil); err == nil {
		t.Fatal("nil tree accepted")
	}
}

func TestLeftDeepMatchesOrder(t *testing.T) {
	root := LeftDeep([]int{2, 0, 1})
	if root.String() != "((2 0) 1)" {
		t.Fatalf("LeftDeep = %q", root.String())
	}
	if !root.IsLeftDeep() {
		t.Fatal("LeftDeep output not left-deep")
	}
	if LeftDeep(nil) != nil {
		t.Fatal("empty LeftDeep should be nil")
	}
}

func TestPathToLeafAndSibling(t *testing.T) {
	l0, l1, l2 := LeafNode(0), LeafNode(1), LeafNode(2)
	inner := Join(l0, l1)
	root := Join(inner, l2)
	path, ok := root.PathToLeaf(1)
	if !ok {
		t.Fatal("leaf 1 not found")
	}
	// Path from leaf 1 up, excluding root: [l1, inner].
	if len(path) != 2 || path[0] != l1 || path[1] != inner {
		t.Fatalf("path = %v", path)
	}
	if _, ok := root.PathToLeaf(9); ok {
		t.Fatal("missing leaf found")
	}
	if root.Sibling(inner) != l2 || root.Sibling(l0) != l1 || root.Sibling(l2) != inner {
		t.Fatal("Sibling wrong")
	}
	if root.Sibling(root) != nil {
		t.Fatal("root has no sibling")
	}
}

func TestNodesPostOrder(t *testing.T) {
	root := Join(Join(LeafNode(0), LeafNode(1)), LeafNode(2))
	nodes := root.Nodes()
	if len(nodes) != 5 {
		t.Fatalf("Nodes = %d, want 5", len(nodes))
	}
	if nodes[len(nodes)-1] != root {
		t.Fatal("post-order must end at root")
	}
}

func TestTreeClone(t *testing.T) {
	root := Join(LeafNode(0), Join(LeafNode(1), LeafNode(2)))
	cp := root.Clone()
	cp.Right.Left.Leaf = 9
	if root.Right.Left.Leaf != 1 {
		t.Fatal("Clone shares state")
	}
}

func TestAllTreesCounts(t *testing.T) {
	// Unordered binary trees over n labelled leaves: (2n-3)!! = 1, 1, 3, 15, 105.
	want := map[int]int{1: 1, 2: 1, 3: 3, 4: 15, 5: 105}
	for n, w := range want {
		got := 0
		seen := make(map[string]bool)
		AllTrees(n, func(root *TreeNode) {
			got++
			if seen[root.String()] {
				t.Fatalf("n=%d: duplicate tree %s", n, root)
			}
			seen[root.String()] = true
			if err := CheckPermutation(root.Leaves()); err != nil {
				t.Fatalf("n=%d: invalid tree %s: %v", n, root, err)
			}
		})
		if got != w {
			t.Fatalf("n=%d: %d trees, want %d", n, got, w)
		}
	}
}

func TestAllTreesIncludesLeftDeepAndBushy(t *testing.T) {
	var hasLeftDeep, hasBushy bool
	AllTrees(4, func(root *TreeNode) {
		if root.IsLeftDeep() {
			hasLeftDeep = true
		} else if !root.Left.IsLeaf() && !root.Right.IsLeaf() {
			hasBushy = true
		}
	})
	if !hasLeftDeep || !hasBushy {
		t.Fatalf("leftDeep=%v bushy=%v", hasLeftDeep, hasBushy)
	}
}
