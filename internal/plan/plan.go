// Package plan defines the two evaluation-plan families of Section 3.1:
// order-based plans (a permutation of the pattern's positive events,
// executed by the lazy-NFA engine) and tree-based plans (a binary tree over
// those events, executed by the ZStream-style engine). Plan positions are
// "planning indices" 0..n-1 referring to the positive events of a compiled
// pattern, the same indexing used by stats.PatternStats.
package plan

import (
	"fmt"
	"strings"
)

// OrderPlan is a processing order over planning positions: Order[k] is the
// position matched at step k+1 of the chain NFA.
type OrderPlan struct {
	Order []int
}

// NewOrder builds an order plan, validating that the order is a permutation
// of 0..n-1 for some n.
func NewOrder(order []int) (*OrderPlan, error) {
	if err := CheckPermutation(order); err != nil {
		return nil, err
	}
	return &OrderPlan{Order: append([]int(nil), order...)}, nil
}

// MustOrder is NewOrder panicking on error, for literals in tests and
// examples.
func MustOrder(order ...int) *OrderPlan {
	p, err := NewOrder(order)
	if err != nil {
		panic(err)
	}
	return p
}

// N returns the number of positions.
func (p *OrderPlan) N() int { return len(p.Order) }

// StepOf returns the step index (0-based) at which the position is matched.
func (p *OrderPlan) StepOf(pos int) int {
	for k, q := range p.Order {
		if q == pos {
			return k
		}
	}
	return -1
}

// String renders the order compactly, e.g. "[2 0 1]".
func (p *OrderPlan) String() string {
	parts := make([]string, len(p.Order))
	for i, q := range p.Order {
		parts[i] = fmt.Sprint(q)
	}
	return "[" + strings.Join(parts, " ") + "]"
}

// Clone returns a deep copy.
func (p *OrderPlan) Clone() *OrderPlan {
	return &OrderPlan{Order: append([]int(nil), p.Order...)}
}

// CheckPermutation verifies that order is a permutation of 0..len(order)-1.
func CheckPermutation(order []int) error {
	seen := make([]bool, len(order))
	for _, q := range order {
		if q < 0 || q >= len(order) {
			return fmt.Errorf("plan: position %d out of range [0,%d)", q, len(order))
		}
		if seen[q] {
			return fmt.Errorf("plan: duplicate position %d", q)
		}
		seen[q] = true
	}
	return nil
}

// Trivial returns the identity order over n positions (the paper's TRIVIAL
// strategy).
func Trivial(n int) *OrderPlan {
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	return &OrderPlan{Order: order}
}

// Permutations enumerates every permutation of 0..n-1, invoking fn with a
// reused buffer; fn must copy if it retains the slice. It is used by
// exhaustive tests and the brute-force baseline.
func Permutations(n int, fn func(order []int)) {
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			fn(order)
			return
		}
		for i := k; i < n; i++ {
			order[k], order[i] = order[i], order[k]
			rec(k + 1)
			order[k], order[i] = order[i], order[k]
		}
	}
	rec(0)
}
