package plan

import "fmt"

// TreeNode is a node of a tree-based plan. A leaf holds the planning
// position it accepts (Leaf >= 0); an internal node (Leaf == -1) joins the
// partial matches of its two children, as in ZStream.
type TreeNode struct {
	Leaf        int
	Left, Right *TreeNode
}

// LeafNode builds a leaf for the given planning position.
func LeafNode(pos int) *TreeNode { return &TreeNode{Leaf: pos} }

// Join builds an internal node over two subtrees.
func Join(left, right *TreeNode) *TreeNode {
	return &TreeNode{Leaf: -1, Left: left, Right: right}
}

// IsLeaf reports whether the node is a leaf.
func (t *TreeNode) IsLeaf() bool { return t.Leaf >= 0 }

// Leaves appends the planning positions under the node in left-to-right
// order.
func (t *TreeNode) Leaves() []int {
	var out []int
	t.walkLeaves(&out)
	return out
}

func (t *TreeNode) walkLeaves(out *[]int) {
	if t.IsLeaf() {
		*out = append(*out, t.Leaf)
		return
	}
	t.Left.walkLeaves(out)
	t.Right.walkLeaves(out)
}

// Size returns the number of leaves under the node.
func (t *TreeNode) Size() int {
	if t.IsLeaf() {
		return 1
	}
	return t.Left.Size() + t.Right.Size()
}

// String renders the tree in nested-parenthesis form, e.g. "((0 1) 2)".
func (t *TreeNode) String() string {
	if t.IsLeaf() {
		return fmt.Sprint(t.Leaf)
	}
	return "(" + t.Left.String() + " " + t.Right.String() + ")"
}

// Clone returns a deep copy of the subtree.
func (t *TreeNode) Clone() *TreeNode {
	if t == nil {
		return nil
	}
	if t.IsLeaf() {
		return LeafNode(t.Leaf)
	}
	return Join(t.Left.Clone(), t.Right.Clone())
}

// TreePlan is a tree-based evaluation plan.
type TreePlan struct {
	Root *TreeNode
}

// NewTree wraps and validates a plan tree: its leaves must be a permutation
// of 0..n-1.
func NewTree(root *TreeNode) (*TreePlan, error) {
	if root == nil {
		return nil, fmt.Errorf("plan: nil tree")
	}
	leaves := root.Leaves()
	if err := CheckPermutation(leaves); err != nil {
		return nil, err
	}
	return &TreePlan{Root: root}, nil
}

// N returns the number of planning positions.
func (p *TreePlan) N() int { return p.Root.Size() }

// String renders the tree.
func (p *TreePlan) String() string { return p.Root.String() }

// LeftDeep builds the left-deep tree equivalent to processing the positions
// in the given order: ((p0 p1) p2) ... — the correspondence between order-
// based plans and left-deep join trees that Theorem 1 exploits.
func LeftDeep(order []int) *TreeNode {
	if len(order) == 0 {
		return nil
	}
	t := LeafNode(order[0])
	for _, q := range order[1:] {
		t = Join(t, LeafNode(q))
	}
	return t
}

// IsLeftDeep reports whether every right child is a leaf.
func (t *TreeNode) IsLeftDeep() bool {
	if t.IsLeaf() {
		return true
	}
	return t.Right.IsLeaf() && t.Left.IsLeftDeep()
}

// PathToLeaf returns the nodes on the path from the leaf holding pos up to
// the root, starting at the leaf and excluding the root itself; ok reports
// whether the leaf exists. The traversal order matches the latency model of
// Section 6.1.
func (t *TreeNode) PathToLeaf(pos int) (path []*TreeNode, ok bool) {
	if t.IsLeaf() {
		return nil, t.Leaf == pos
	}
	if sub, found := t.Left.PathToLeaf(pos); found {
		return append(sub, t.Left), true
	}
	if sub, found := t.Right.PathToLeaf(pos); found {
		return append(sub, t.Right), true
	}
	return nil, false
}

// Sibling returns the other child of the parent of child within the subtree
// rooted at t, or nil if child is t or not found.
func (t *TreeNode) Sibling(child *TreeNode) *TreeNode {
	if t.IsLeaf() {
		return nil
	}
	if t.Left == child {
		return t.Right
	}
	if t.Right == child {
		return t.Left
	}
	if s := t.Left.Sibling(child); s != nil {
		return s
	}
	return t.Right.Sibling(child)
}

// Nodes appends every node of the subtree in post-order.
func (t *TreeNode) Nodes() []*TreeNode {
	var out []*TreeNode
	var rec func(n *TreeNode)
	rec = func(n *TreeNode) {
		if !n.IsLeaf() {
			rec(n.Left)
			rec(n.Right)
		}
		out = append(out, n)
	}
	rec(t)
	return out
}

// Subtrees appends every internal (join) node of the subtree in post-order —
// the candidate sub-joins a multi-query optimizer can materialize once and
// fan out to several consuming plans.
func (t *TreeNode) Subtrees() []*TreeNode {
	var out []*TreeNode
	var rec func(n *TreeNode)
	rec = func(n *TreeNode) {
		if n.IsLeaf() {
			return
		}
		rec(n.Left)
		rec(n.Right)
		out = append(out, n)
	}
	rec(t)
	return out
}

// AllTrees enumerates the full bushy plan space over positions 0..n-1 up to
// child-swap symmetry (position 0 is pinned to the left subtree at every
// split, yielding (2n-3)!! distinct trees). Child order never affects plan
// cost, so the enumeration is exhaustive for optimisation purposes. It is
// exponential and intended for tests and brute-force baselines on small n.
func AllTrees(n int, fn func(root *TreeNode)) {
	positions := make([]int, n)
	for i := range positions {
		positions[i] = i
	}
	var build func(set []int) []*TreeNode
	build = func(set []int) []*TreeNode {
		if len(set) == 1 {
			return []*TreeNode{LeafNode(set[0])}
		}
		var out []*TreeNode
		// Enumerate subsets of set (as bitmask over set's indices) for the
		// left child; skip empty and full subsets. To halve duplicates, the
		// first element always goes left.
		m := len(set)
		for mask := 1; mask < 1<<(m-1); mask++ {
			leftSet := []int{set[0]}
			var rightSet []int
			for i := 1; i < m; i++ {
				if mask&(1<<(i-1)) != 0 {
					leftSet = append(leftSet, set[i])
				} else {
					rightSet = append(rightSet, set[i])
				}
			}
			if len(rightSet) == 0 {
				continue
			}
			for _, l := range build(leftSet) {
				for _, r := range build(rightSet) {
					out = append(out, Join(l, r))
				}
			}
		}
		// The full-set-left case has an empty right side; also allow the
		// symmetric "first element alone on the left" completion via mask 0.
		leftOnly := []*TreeNode{LeafNode(set[0])}
		rightRest := build(set[1:])
		for _, l := range leftOnly {
			for _, r := range rightRest {
				out = append(out, Join(l, r))
			}
		}
		return out
	}
	if n == 0 {
		return
	}
	for _, t := range build(positions) {
		fn(t)
	}
}
