package mqo

import (
	"testing"

	"math/rand"

	"repro/internal/core"
	"repro/internal/enginetest"
	"repro/internal/pattern"
	"repro/internal/stats"
)

// leakQueries builds an overlapping query set that exercises every pooled
// instance life-path in the shared DAG: a fully shared A⋈B sub-join, a
// three-way extension on top of it, an inner negation (kill paths) and a
// trailing negation (pending queue).
func leakQueries(t testing.TB) []*qstate {
	t.Helper()
	st := stats.New()
	mk := func(name string, p *pattern.Pattern) *qstate {
		return newQState(Query{Name: name, SP: planSimple(t, p, st, core.AlgZStream)})
	}
	return []*qstate{
		mk("ab", seqAB(20, "a", "b")),
		mk("abc", pattern.Seq(20,
			pattern.E("A", "a"), pattern.E("B", "b"), pattern.E("C", "c")).
			Where(pattern.AttrCmp("a", "x", pattern.Lt, "b", "x"))),
		mk("inner-neg", pattern.Seq(20,
			pattern.E("A", "a"), pattern.Not("D", "nd"), pattern.E("B", "b"))),
		mk("trailing-neg", pattern.Seq(20,
			pattern.E("A", "a"), pattern.E("B", "b"), pattern.Not("C", "nc"))),
	}
}

func assertNoLeak(t *testing.T, e *Engine, label string) {
	t.Helper()
	ps := e.PoolStats()
	if ps.Gets == 0 {
		t.Fatalf("%s: pool never used (Gets = 0)", label)
	}
	if live := ps.Live(); live != 0 {
		t.Fatalf("%s: %d pooled instances leaked (stats %+v)", label, live, ps)
	}
}

// TestPoolNoLeakAfterClose feeds a long random stream through the shared
// DAG — half per event, half batched — and asserts the freelist's exact
// accounting balances after Flush and Close, with actual reuse observed.
func TestPoolNoLeakAfterClose(t *testing.T) {
	eng, err := buildEngine(leakQueries(t))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	events := enginetest.Stream(rng, 4000, enginetest.TypeNames, 2)
	half := len(events) / 2
	for i, ev := range events[:half] {
		eng.Process(ev, uint64(i+1))
	}
	for i := half; i < len(events); i += 64 {
		end := i + 64
		if end > len(events) {
			end = len(events)
		}
		eng.ProcessBatch(events[i:end], uint64(i+1))
	}
	eng.Flush()
	eng.Close()
	assertNoLeak(t, eng, "after close")
	ps := eng.PoolStats()
	if ps.News >= ps.Gets {
		t.Fatalf("no reuse: News=%d Gets=%d", ps.News, ps.Gets)
	}
}

// TestPoolNoLeakAcrossSplice replays the adaptive re-optimization handoff:
// the successor deep-copies live state via AdoptFrom, the predecessor
// recycles everything into its own pool at Close, and both pools must
// balance — adopted instances never alias a recycled one.
func TestPoolNoLeakAcrossSplice(t *testing.T) {
	old, err := buildEngine(leakQueries(t))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	events := enginetest.Stream(rng, 3000, enginetest.TypeNames, 2)
	half := len(events) / 2
	for i, ev := range events[:half] {
		old.Process(ev, uint64(i+1))
	}
	if old.CurrentPartial() == 0 {
		t.Fatal("no live state at splice point — test exercises nothing")
	}

	succ, err := buildEngine(leakQueries(t))
	if err != nil {
		t.Fatal(err)
	}
	succ.AdoptFrom([]*Engine{old}, uint64(half))
	old.Close()
	assertNoLeak(t, old, "predecessor after splice")

	for i := half; i < len(events); i++ {
		succ.Process(events[i], uint64(i+1))
	}
	succ.Flush()
	succ.Close()
	assertNoLeak(t, succ, "successor after splice")
}
