package mqo

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/enginetest"
	"repro/internal/event"
	"repro/internal/match"
	"repro/internal/pattern"
	"repro/internal/plan"
	"repro/internal/predicate"
	"repro/internal/stats"
	"repro/internal/tree"
)

func planSimple(t testing.TB, p *pattern.Pattern, st *stats.Stats, alg string) *core.SimplePlan {
	t.Helper()
	pl := &core.Planner{Algorithm: alg, Strategy: predicate.SkipTillAnyMatch}
	sp, err := pl.PlanSimple(p, st)
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

func seqAB(window event.Time, aliasA, aliasB string) *pattern.Pattern {
	return pattern.Seq(window,
		pattern.E("A", aliasA), pattern.E("B", aliasB),
	).Where(pattern.AttrCmp(aliasA, "x", pattern.Lt, aliasB, "x"))
}

// TestCanonicalKeysAliasFree checks that canonical subtree keys ignore
// query-local aliases but distinguish windows and predicate sets.
func TestCanonicalKeysAliasFree(t *testing.T) {
	st := stats.New()
	sp1 := planSimple(t, seqAB(20, "x1", "y1"), st, core.AlgZStream)
	sp2 := planSimple(t, seqAB(20, "p", "q"), st, core.AlgZStream)
	k1, _ := subsetKey(newSigCache(sp1.Compiled, sp1.Stats.TermIndex), []int{0, 1})
	k2, _ := subsetKey(newSigCache(sp2.Compiled, sp2.Stats.TermIndex), []int{0, 1})
	if k1 != k2 {
		t.Fatalf("alias renaming changed the canonical key:\n%s\n%s", k1, k2)
	}
	// Different window: different key.
	sp3 := planSimple(t, seqAB(30, "x1", "y1"), st, core.AlgZStream)
	k3, _ := subsetKey(newSigCache(sp3.Compiled, sp3.Stats.TermIndex), []int{0, 1})
	if k1 == k3 {
		t.Fatal("window is not part of the canonical key")
	}
	// Extra predicate: different key.
	p4 := pattern.Seq(20, pattern.E("A", "a"), pattern.E("B", "b")).
		Where(pattern.AttrCmp("a", "x", pattern.Lt, "b", "x"),
			pattern.AttrCmp("a", "y", pattern.Eq, "b", "y"))
	sp4 := planSimple(t, p4, st, core.AlgZStream)
	k4, _ := subsetKey(newSigCache(sp4.Compiled, sp4.Stats.TermIndex), []int{0, 1})
	if k1 == k4 {
		t.Fatal("predicate set is not part of the canonical key")
	}
	// AND (no temporal order) vs SEQ: different key.
	p5 := pattern.And(20, pattern.E("A", "a"), pattern.E("B", "b")).
		Where(pattern.AttrCmp("a", "x", pattern.Lt, "b", "x"))
	sp5 := planSimple(t, p5, st, core.AlgZStream)
	k5, _ := subsetKey(newSigCache(sp5.Compiled, sp5.Stats.TermIndex), []int{0, 1})
	if k1 == k5 {
		t.Fatal("sequence order is not part of the canonical key")
	}
}

// TestEligible checks the shareable-fragment conditions.
func TestEligible(t *testing.T) {
	st := stats.New()
	pl := &core.Planner{Algorithm: core.AlgZStream, Strategy: predicate.SkipTillAnyMatch}
	ok, err := pl.Plan(seqAB(20, "a", "b"), st)
	if err != nil {
		t.Fatal(err)
	}
	if !Eligible(ok, predicate.SkipTillAnyMatch) {
		t.Fatal("plain SEQ rejected")
	}
	if Eligible(ok, predicate.SkipTillNextMatch) {
		t.Fatal("skip-till-next accepted (its match sets are plan-dependent)")
	}
	neg := pattern.Seq(20, pattern.E("A", "a"), pattern.Not("C", "n"), pattern.E("B", "b"))
	npl, err := pl.Plan(neg, st)
	if err != nil {
		t.Fatal(err)
	}
	if !Eligible(npl, predicate.SkipTillAnyMatch) {
		t.Fatal("negation rejected — the positive core is shareable")
	}
	kl := pattern.Seq(20, pattern.E("A", "a"), pattern.KL("B", "b"))
	kpl, err := pl.Plan(kl, st)
	if err != nil {
		t.Fatal(err)
	}
	if Eligible(kpl, predicate.SkipTillAnyMatch) {
		t.Fatal("Kleene accepted")
	}
}

// TestEngineMatchesTreeEngine drives the shared DAG engine with a single
// query and compares its match set against the private tree engine on the
// same plan, over random eligible patterns — the DAG machinery must be a
// faithful generalization of the tree engine.
func TestEngineMatchesTreeEngine(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	st := stats.New()
	for trial := 0; trial < 40; trial++ {
		p := enginetest.RandomPattern(rng, 30, false, false)
		sp := planSimple(t, p, st, core.AlgZStream)
		events := enginetest.Stream(rng, 60, enginetest.TypeNames, 3)

		want, _, err := enginetest.RunTree(sp.Compiled, sp.TreeTerms(), events, tree.Config{})
		if err != nil {
			t.Fatal(err)
		}
		enginetest.Reset(events)

		eng, err := buildEngine([]*qstate{newQState(Query{Name: "q", SP: sp})})
		if err != nil {
			t.Fatal(err)
		}
		var got []*match.Match
		for i, ev := range events {
			for _, tm := range eng.Process(ev, uint64(i+1)) {
				if tm.Query != "q" {
					t.Fatalf("unexpected tag %q", tm.Query)
				}
				got = append(got, tm.M)
			}
		}
		onlyG, onlyW := match.Diff(got, want)
		if len(onlyG) > 0 || len(onlyW) > 0 {
			t.Fatalf("trial %d (%s): DAG engine diverges from tree engine\nextra: %v\nmissing: %v",
				trial, p, onlyG, onlyW)
		}
		enginetest.Reset(events)
	}
}

// TestOptimizeSharesIdenticalQueries registers the same pattern under two
// names: the optimizer must produce one group whose DAG emits every match
// once per query, sharing all nodes.
func TestOptimizeSharesIdenticalQueries(t *testing.T) {
	st := stats.New()
	sp1 := planSimple(t, seqAB(20, "a", "b"), st, core.AlgZStream)
	sp2 := planSimple(t, seqAB(20, "u", "v"), st, core.AlgZStream)
	res, err := Optimize([]Query{{Name: "q1", SP: sp1}, {Name: "q2", SP: sp2}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 1 || len(res.Private) != 0 {
		t.Fatalf("groups=%d private=%v, want one group, none private", len(res.Groups), res.Private)
	}
	g := res.Groups[0]
	if len(g.Members) != 2 {
		t.Fatalf("members=%v", g.Members)
	}
	// Identical queries collapse to one root: 2 leaves + 1 join.
	if g.Engine.st.Nodes != 3 {
		t.Fatalf("DAG has %d nodes, want 3 (fully shared)", g.Engine.st.Nodes)
	}
	rng := rand.New(rand.NewSource(7))
	events := enginetest.Stream(rng, 80, []string{"A", "B"}, 2)
	perQuery := map[string]int{}
	for i, ev := range events {
		for _, tm := range g.Engine.Process(ev, uint64(i+1)) {
			perQuery[tm.Query]++
		}
	}
	if perQuery["q1"] == 0 || perQuery["q1"] != perQuery["q2"] {
		t.Fatalf("per-query counts %v, want equal and non-zero", perQuery)
	}
	if res.Report.SharedCost >= res.Report.UnsharedCost {
		t.Fatalf("shared objective %.2f not below unshared %.2f",
			res.Report.SharedCost, res.Report.UnsharedCost)
	}
	// Trees snapshots the evaluated structure per member: one tree per
	// member, spanning the query's two planning positions.
	for _, name := range g.Members {
		tr := g.Trees[name]
		if tr == nil {
			t.Fatalf("no final tree for member %s", name)
		}
		if got := len(tr.Leaves()); got != 2 {
			t.Fatalf("tree for %s spans %d leaves, want 2", name, got)
		}
	}
}

// TestOptimizeLeavesDisjointQueriesPrivate checks the selector's win test:
// queries with nothing in common stay on their private engines.
func TestOptimizeLeavesDisjointQueriesPrivate(t *testing.T) {
	st := stats.New()
	p1 := pattern.Seq(20, pattern.E("A", "a"), pattern.E("B", "b"))
	p2 := pattern.Seq(20, pattern.E("C", "c"), pattern.E("D", "d"))
	res, err := Optimize([]Query{
		{Name: "q1", SP: planSimple(t, p1, st, core.AlgZStream)},
		{Name: "q2", SP: planSimple(t, p2, st, core.AlgZStream)},
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 0 || len(res.Private) != 2 {
		t.Fatalf("groups=%d private=%v, want no groups, both private", len(res.Groups), res.Private)
	}
}

// TestOptimizeRestructuresForSharing builds queries whose private-optimal
// trees avoid the common sub-join (the rare tail event joins first), and
// checks that the selector bends them toward the shared prefix when the
// model predicts a win — and that the shared evaluation stays match-exact
// against private tree engines.
func TestOptimizeRestructuresForSharing(t *testing.T) {
	st := stats.New()
	st.SetRate("A", 8)
	st.SetRate("B", 8)
	// A selective measured predicate keeps the common (A⋈B) prefix only
	// slightly more expensive than each private (B⋈tail) join — so the
	// private-optimal plans avoid it, yet computing it once for both
	// queries beats computing two private joins:
	// PM(AB)·(1+φ) = 160·1.25 = 200  <  2·PM(Btail) = 2·133.
	st.SetSelectivity(pattern.AttrCmp("a", "x", pattern.Lt, "b", "x"), 0.05)
	tails := []string{"C", "D"}
	for _, tail := range tails {
		st.SetRate(tail, 0.33)
	}
	var queries []Query
	var sps []*core.SimplePlan
	for i, tail := range tails {
		p := pattern.Seq(10*event.Second,
			pattern.E("A", "a"), pattern.E("B", "b"), pattern.E(tail, "t"),
		).Where(pattern.AttrCmp("a", "x", pattern.Lt, "b", "x"))
		sp := planSimple(t, p, st, core.AlgZStream)
		sps = append(sps, sp)
		queries = append(queries, Query{Name: fmt.Sprintf("q%d", i), SP: sp})
	}
	// Sanity: the private-optimal ZStream tree joins the rare tail early,
	// so the (A⋈B) prefix is not a subtree of the private plan.
	if got := findSubtree(sps[0].Tree, []int{0, 1}); got != nil {
		t.Skip("workload no longer makes the private plan avoid the shared prefix")
	}
	res, err := Optimize(queries, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 1 {
		t.Fatalf("expected one shared group, got %d (private=%v)", len(res.Groups), res.Private)
	}
	if res.Report.Restructured == 0 {
		t.Fatal("selector shared without restructuring — test premise broken")
	}

	// Equivalence: shared DAG vs the private tree engines.
	rng := rand.New(rand.NewSource(99))
	events := enginetest.Stream(rng, 400, []string{"A", "B", "C", "D"}, 2)
	got := map[string][]*match.Match{}
	for i, ev := range events {
		for _, tm := range res.Groups[0].Engine.Process(ev, uint64(i+1)) {
			got[tm.Query] = append(got[tm.Query], tm.M)
		}
	}
	for i := range queries {
		enginetest.Reset(events)
		want, _, err := enginetest.RunTree(sps[i].Compiled, sps[i].TreeTerms(), events, tree.Config{})
		if err != nil {
			t.Fatal(err)
		}
		name := queries[i].Name
		onlyG, onlyW := match.Diff(got[name], want)
		if len(onlyG) > 0 || len(onlyW) > 0 {
			t.Fatalf("query %s: restructured shared plan diverges: extra %v missing %v",
				name, onlyG, onlyW)
		}
	}
}

// TestSelfJoinSharing exercises the self-join corner: a query repeating an
// event type collapses both leaves onto one DAG node fed to both sides of
// its join.
func TestSelfJoinSharing(t *testing.T) {
	st := stats.New()
	p := pattern.Seq(25, pattern.E("A", "a1"), pattern.E("A", "a2"))
	sp := planSimple(t, p, st, core.AlgZStream)
	eng, err := buildEngine([]*qstate{newQState(Query{Name: "self", SP: sp})})
	if err != nil {
		t.Fatal(err)
	}
	if eng.st.Nodes != 2 {
		t.Fatalf("self-join DAG has %d nodes, want 2 (one shared leaf + root)", eng.st.Nodes)
	}
	rng := rand.New(rand.NewSource(3))
	events := enginetest.Stream(rng, 50, []string{"A"}, 2)
	var got []*match.Match
	for i, ev := range events {
		for _, tm := range eng.Process(ev, uint64(i+1)) {
			got = append(got, tm.M)
		}
	}
	enginetest.Reset(events)
	want, _, err := enginetest.RunTree(sp.Compiled, sp.TreeTerms(), events, tree.Config{})
	if err != nil {
		t.Fatal(err)
	}
	onlyG, onlyW := match.Diff(got, want)
	if len(onlyG) > 0 || len(onlyW) > 0 {
		t.Fatalf("self-join diverges: extra %v missing %v", onlyG, onlyW)
	}
}

// TestContractReproducesSubjoinPM checks the statistics-side contraction:
// the virtual leaf's PM equals the sub-join's node PM, so residual plans
// are costed as if fed by the materialized buffer.
func TestContractReproducesSubjoinPM(t *testing.T) {
	st := stats.New()
	st.SetRate("A", 4)
	st.SetRate("B", 6)
	st.SetRate("C", 1)
	p := pattern.Seq(10*event.Second,
		pattern.E("A", "a"), pattern.E("B", "b"), pattern.E("C", "c"),
	).Where(pattern.AttrCmp("a", "x", pattern.Lt, "b", "x"))
	ps := stats.For(p, st)
	sub := []int{0, 1}
	wantPM := cost.TreePM(ps, plan.Join(plan.LeafNode(0), plan.LeafNode(1)))
	cp, keep := stats.Contract(ps, sub)
	v := len(keep)
	gotPM := cp.W * cp.Rates[v] * cp.Sel[v][v]
	if diff := gotPM - wantPM; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("virtual leaf PM %.6f, want sub-join PM %.6f", gotPM, wantPM)
	}
	// Residual cost identity: Cost_tree of the contracted plan (virtual ⋈ C)
	// minus the virtual leaf equals the full plan ((A⋈B) ⋈ C) minus the
	// whole sub-join subtree — the shared, already-paid part.
	full := plan.Join(plan.Join(plan.LeafNode(0), plan.LeafNode(1)), plan.LeafNode(2))
	contracted := plan.Join(plan.LeafNode(v), plan.LeafNode(0)) // keep[0] == 2 (C)
	wantResidual := cost.Tree(ps, full) - cost.Tree(ps, plan.Join(plan.LeafNode(0), plan.LeafNode(1)))
	gotResidual := cost.Tree(cp, contracted) - gotPM // subtract the virtual leaf itself
	if diff := gotResidual - wantResidual; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("residual cost %.6f, want %.6f", gotResidual, wantResidual)
	}
}

// TestSharedTreeCost checks the share-aware tree pricing a session's drift
// check runs on: a single tree prices exactly like cost.Tree, two
// identical trees dedupe onto one set of nodes (strictly cheaper than
// twice the private cost), and disjoint trees do not share.
func TestSharedTreeCost(t *testing.T) {
	st := stats.New()
	st.SetRate("A", 5)
	st.SetRate("B", 3)
	mk := func(p *pattern.Pattern) TreePrice {
		sp := planSimple(t, p, st, core.AlgZStream)
		return TreePrice{Sigs: NewSigs(sp.Compiled, sp.Stats.TermIndex), PS: sp.Stats, Tree: sp.Tree}
	}
	one := mk(seqAB(20, "a", "b"))
	private := cost.Tree(one.PS, one.Tree)
	if got := SharedTreeCost([]TreePrice{one}, 0); got != private {
		t.Fatalf("single tree: SharedTreeCost %.4f != cost.Tree %.4f", got, private)
	}
	// Two alias-renamed copies of the same query: every node shared, so the
	// cost is private·(1+φ) — strictly below 2·private.
	two := SharedTreeCost([]TreePrice{one, mk(seqAB(20, "u", "v"))}, 0.25)
	if want := private * 1.25; two < want-1e-9 || two > want+1e-9 {
		t.Fatalf("identical trees: SharedTreeCost %.4f, want %.4f", two, want)
	}
	// Disjoint queries share nothing: the costs just add.
	p2 := pattern.Seq(20, pattern.E("C", "c"), pattern.E("D", "d"))
	other := mk(p2)
	sum := SharedTreeCost([]TreePrice{one, other}, 0.25)
	if want := private + cost.Tree(other.PS, other.Tree); sum < want-1e-9 || sum > want+1e-9 {
		t.Fatalf("disjoint trees: SharedTreeCost %.4f, want %.4f", sum, want)
	}
}

// TestSharedObjective pins the cost.Shared arithmetic.
func TestSharedObjective(t *testing.T) {
	nodes := []cost.SharedNode{{PM: 10, Consumers: 1}, {PM: 4, Consumers: 3}}
	got := cost.Shared(nodes, 0.25)
	want := 10 + 4*(1+0.25*2)
	if diff := got - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("Shared = %.4f, want %.4f", got, want)
	}
	if cost.Shared(nodes, 0) != 14 {
		t.Fatal("zero fanout must price pure sharing")
	}
}

// TestEngineMatchesTreeEngineNegation repeats the faithfulness property over
// random patterns WITH negation: the shared DAG computes the positive core
// and applies the root negation checks, and must still coincide with the
// private tree engine match-for-match (including flushed pendings).
func TestEngineMatchesTreeEngineNegation(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	st := stats.New()
	for trial := 0; trial < 40; trial++ {
		p := enginetest.RandomPattern(rng, 30, true, false)
		sp := planSimple(t, p, st, core.AlgZStream)
		events := enginetest.Stream(rng, 60, enginetest.TypeNames, 3)

		want, _, err := enginetest.RunTree(sp.Compiled, sp.TreeTerms(), events, tree.Config{})
		if err != nil {
			t.Fatal(err)
		}
		enginetest.Reset(events)

		eng, err := buildEngine([]*qstate{newQState(Query{Name: "q", SP: sp})})
		if err != nil {
			t.Fatal(err)
		}
		var got []*match.Match
		for i, ev := range events {
			for _, tm := range eng.Process(ev, uint64(i+1)) {
				got = append(got, tm.M)
			}
		}
		for _, tm := range eng.Flush() {
			got = append(got, tm.M)
		}
		onlyG, onlyW := match.Diff(got, want)
		if len(onlyG) > 0 || len(onlyW) > 0 {
			t.Fatalf("trial %d (%s): negation DAG diverges from tree engine\nextra: %v\nmissing: %v",
				trial, p, onlyG, onlyW)
		}
		enginetest.Reset(events)
	}
}

// TestNegationSharesPositiveCore groups a plain query with a negation query
// over the same positive sub-join: the DAG must share the core (fewer nodes
// than the sum of both trees) while keeping both match sets private-exact.
func TestNegationSharesPositiveCore(t *testing.T) {
	st := stats.New()
	plain := pattern.Seq(20, pattern.E("A", "a"), pattern.E("B", "b")).
		Where(pattern.AttrCmp("a", "x", pattern.Lt, "b", "x"))
	negated := pattern.Seq(20, pattern.E("A", "p"), pattern.Not("C", "n"), pattern.E("B", "q")).
		Where(pattern.AttrCmp("p", "x", pattern.Lt, "q", "x"))
	spPlain := planSimple(t, plain, st, core.AlgZStream)
	spNeg := planSimple(t, negated, st, core.AlgZStream)
	res, err := Optimize([]Query{{Name: "plain", SP: spPlain}, {Name: "neg", SP: spNeg}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 1 {
		t.Fatalf("want one shared group, got %d (private=%v)", len(res.Groups), res.Private)
	}
	eng := res.Groups[0].Engine
	// Identical positive cores collapse: 2 leaves + 1 join, consumed by both.
	if eng.st.Nodes != 3 {
		t.Fatalf("DAG has %d nodes, want 3 (core fully shared)", eng.st.Nodes)
	}
	rng := rand.New(rand.NewSource(5))
	events := enginetest.Stream(rng, 300, []string{"A", "B", "C"}, 2)
	got := map[string][]*match.Match{}
	for i, ev := range events {
		for _, tm := range eng.Process(ev, uint64(i+1)) {
			got[tm.Query] = append(got[tm.Query], tm.M)
		}
	}
	for _, tm := range eng.Flush() {
		got[tm.Query] = append(got[tm.Query], tm.M)
	}
	for name, sp := range map[string]*core.SimplePlan{"plain": spPlain, "neg": spNeg} {
		enginetest.Reset(events)
		want, _, err := enginetest.RunTree(sp.Compiled, sp.TreeTerms(), events, tree.Config{})
		if err != nil {
			t.Fatal(err)
		}
		onlyG, onlyW := match.Diff(got[name], want)
		if len(onlyG) > 0 || len(onlyW) > 0 {
			t.Fatalf("query %s diverges: extra %v missing %v", name, onlyG, onlyW)
		}
		enginetest.Reset(events)
	}
	if len(got["neg"]) == 0 || len(got["plain"]) == 0 {
		t.Fatal("vacuous: a query produced no matches")
	}
	if len(got["neg"]) >= len(got["plain"]) {
		t.Fatal("vacuous: negation filtered nothing")
	}
}

// TestAdoptFromSplicesWithoutLoss simulates the live-registration splice: a
// singleton engine processes the first half of a stream, then a second
// query arrives, the pair is re-optimized, the successor engine adopts the
// old state, and the second half flows through it. The old query must see
// exactly its full-stream matches (nothing dropped or duplicated across the
// splice); the new query exactly its suffix matches.
func TestAdoptFromSplicesWithoutLoss(t *testing.T) {
	st := stats.New()
	p1 := pattern.Seq(25, pattern.E("A", "a"), pattern.E("B", "b"), pattern.E("C", "c")).
		Where(pattern.AttrCmp("a", "x", pattern.Lt, "b", "x"))
	p2 := pattern.Seq(25, pattern.E("A", "u"), pattern.E("B", "v"), pattern.E("D", "w")).
		Where(pattern.AttrCmp("u", "x", pattern.Lt, "v", "x"))
	sp1 := planSimple(t, p1, st, core.AlgZStream)
	sp2 := planSimple(t, p2, st, core.AlgZStream)

	rng := rand.New(rand.NewSource(23))
	events := enginetest.Stream(rng, 400, enginetest.TypeNames, 2)
	half := len(events) / 2

	g1, err := Single(Query{Name: "q1", SP: sp1})
	if err != nil {
		t.Fatal(err)
	}
	got := map[string][]*match.Match{}
	collect := func(tms []Tagged) {
		for _, tm := range tms {
			got[tm.Query] = append(got[tm.Query], tm.M)
		}
	}
	for i, ev := range events[:half] {
		collect(g1.Engine.Process(ev, uint64(i+1)))
	}

	spliceSeq := uint64(half + 1)
	res, err := Optimize([]Query{
		{Name: "q1", SP: sp1},
		{Name: "q2", SP: sp2, Since: spliceSeq},
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var engines []*Engine
	for _, g := range res.Groups {
		g.Engine.AdoptFrom([]*Engine{g1.Engine}, spliceSeq)
		engines = append(engines, g.Engine)
	}
	for _, name := range res.Private {
		q := Query{Name: name, SP: sp1}
		if name == "q2" {
			q = Query{Name: name, SP: sp2, Since: spliceSeq}
		}
		g, err := Single(q)
		if err != nil {
			t.Fatal(err)
		}
		g.Engine.AdoptFrom([]*Engine{g1.Engine}, spliceSeq)
		engines = append(engines, g.Engine)
	}
	for i, ev := range events[half:] {
		for _, eng := range engines {
			collect(eng.Process(ev, spliceSeq+uint64(i)))
		}
	}
	for _, eng := range engines {
		collect(eng.Flush())
	}

	enginetest.Reset(events)
	want1, _, err := enginetest.RunTree(sp1.Compiled, sp1.TreeTerms(), events, tree.Config{})
	if err != nil {
		t.Fatal(err)
	}
	enginetest.Reset(events)
	want2, _, err := enginetest.RunTree(sp2.Compiled, sp2.TreeTerms(), events[half:], tree.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(want1) == 0 || len(want2) == 0 {
		t.Fatal("vacuous workload")
	}
	if onlyG, onlyW := match.Diff(got["q1"], want1); len(onlyG) > 0 || len(onlyW) > 0 {
		t.Fatalf("q1 across splice: %d extra, %d missing (of %d)", len(onlyG), len(onlyW), len(want1))
	}
	if onlyG, onlyW := match.Diff(got["q2"], want2); len(onlyG) > 0 || len(onlyW) > 0 {
		t.Fatalf("q2 suffix: %d extra, %d missing (of %d)", len(onlyG), len(onlyW), len(want2))
	}
}

// TestQueryKeysOverlap checks the affected-component index: overlapping
// queries expose a common canonical key, disjoint ones do not.
func TestQueryKeysOverlap(t *testing.T) {
	st := stats.New()
	k1 := QueryKeys(Query{Name: "a", SP: planSimple(t, seqAB(20, "a", "b"), st, core.AlgZStream)}, Options{})
	k2 := QueryKeys(Query{Name: "b", SP: planSimple(t, seqAB(20, "p", "q"), st, core.AlgZStream)}, Options{})
	p3 := pattern.Seq(20, pattern.E("C", "c"), pattern.E("D", "d"))
	k3 := QueryKeys(Query{Name: "c", SP: planSimple(t, p3, st, core.AlgZStream)}, Options{})
	inter := func(x, y []string) bool {
		set := map[string]bool{}
		for _, k := range x {
			set[k] = true
		}
		for _, k := range y {
			if set[k] {
				return true
			}
		}
		return false
	}
	if !inter(k1, k2) {
		t.Fatal("identical queries expose no common key")
	}
	if inter(k1, k3) {
		t.Fatal("disjoint queries expose a common key")
	}
}

// TestGroupWorkersSplit checks the parallel-lane partition: a component of
// four members under GroupWorkers=2 splits into two lanes of the same
// component, members disjoint and complete, detection still exact.
func TestGroupWorkersSplit(t *testing.T) {
	st := stats.New()
	// Rare A and B, frequent C: every private-optimal tree joins (A⋈B)
	// first, so the four distinct queries form one connected component.
	st.SetRate("A", 1)
	st.SetRate("B", 1)
	st.SetRate("C", 10)
	var queries []Query
	sps := map[string]*core.SimplePlan{}
	tailPred := []pattern.CmpOp{pattern.Lt, pattern.Le, pattern.Ne, pattern.Gt}
	for i, op := range tailPred {
		p := pattern.Seq(20, pattern.E("A", "a"), pattern.E("B", "b"), pattern.E("C", "t")).
			Where(pattern.AttrCmp("a", "x", pattern.Lt, "b", "x"),
				pattern.AttrCmp("b", "x", op, "t", "x"))
		name := fmt.Sprintf("q%d", i)
		sp := planSimple(t, p, st, core.AlgZStream)
		sps[name] = sp
		queries = append(queries, Query{Name: name, SP: sp})
	}
	res, err := Optimize(queries, Options{GroupWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 2 {
		t.Fatalf("want 2 lanes, got %d (private=%v)", len(res.Groups), res.Private)
	}
	seen := map[string]bool{}
	for _, g := range res.Groups {
		if g.Component != res.Groups[0].Component {
			t.Fatalf("lanes of one component disagree on id: %d vs %d",
				g.Component, res.Groups[0].Component)
		}
		for _, m := range g.Members {
			if seen[m] {
				t.Fatalf("member %s on two lanes", m)
			}
			seen[m] = true
		}
	}
	if len(seen) != 4 {
		t.Fatalf("members lost in split: %v", seen)
	}
	rng := rand.New(rand.NewSource(13))
	events := enginetest.Stream(rng, 300, enginetest.TypeNames, 2)
	got := map[string][]*match.Match{}
	for i, ev := range events {
		for _, g := range res.Groups {
			for _, tm := range g.Engine.Process(ev, uint64(i+1)) {
				got[tm.Query] = append(got[tm.Query], tm.M)
			}
		}
	}
	for name, sp := range sps {
		enginetest.Reset(events)
		want, _, err := enginetest.RunTree(sp.Compiled, sp.TreeTerms(), events, tree.Config{})
		if err != nil {
			t.Fatal(err)
		}
		if onlyG, onlyW := match.Diff(got[name], want); len(onlyG) > 0 || len(onlyW) > 0 {
			t.Fatalf("split lane query %s diverges: extra %v missing %v", name, onlyG, onlyW)
		}
		enginetest.Reset(events)
	}
}
