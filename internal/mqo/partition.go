package mqo

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/event"
)

// Key-partitioned shared evaluation (after Dossinger & Michel's partitioned
// multi-way stream joins): when every member of a sharing component chains
// its positive positions together with equi-joins on one attribute, a
// complete match binds the same attribute value on every constituent — so
// hashing events by that value routes each potential match wholly into one
// of P partition lanes. Each lane runs a full copy of the component's DAG
// over a disjoint slice of the key space: shared sub-joins are computed once
// per partition (no recomputation across lanes, unlike the GroupWorkers
// split), matches fan out to consuming roots locally, and no partial match
// ever crosses a lane boundary.

// partFamily is the identity token stamped on the P sibling engines of one
// partitioned component at build time. AdoptFrom uses pointer identity to
// recognize that several predecessor engines are slices of one logical
// buffer (union them) rather than independent alternatives (pick one).
type partFamily struct{ _ byte }

// PartitionBucket maps an event to its partition lane: the hash bucket of
// its key attribute's value, in [0, parts). The router and the engine-side
// gate must agree exactly, so both call this one function. A missing
// attribute hashes as 0 — consistently, so such events still land on
// exactly one lane (their equality predicates fail there like anywhere
// else). -0.0 collapses onto +0.0 before hashing because Eq compares them
// equal; NaN placement is arbitrary for the same reason (NaN != NaN, so a
// NaN-keyed match can never complete).
func PartitionBucket(ev *event.Event, attr string, parts int) int {
	v, _ := ev.Attr(attr)
	if v == 0 {
		v = 0 // -0.0 == +0.0 under Eq; make them hash identically too
	}
	h := math.Float64bits(v)
	// splitmix64 finalizer: cheap, well-mixed low bits for the modulo.
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return int(h % uint64(parts))
}

// partitionKey derives the hash-partition attribute of a sharing component,
// or reports that none exists (the caller falls back to the broadcast
// GroupWorkers split). An attribute qualifies when every member's positive
// planning positions are connected by explicit `l.A = r.A` pair predicates
// on it — the condition under which all constituents of any complete match
// share the A value. Single-positive members are vacuously keyed (their
// matches are single events, each owned by exactly one bucket), but at
// least one member must be multi-positive and keyed, else partitioning
// buys nothing. Candidates are intersected over members and the smallest
// attribute in sort order wins, keeping the choice deterministic.
func partitionKey(group []*qstate) (string, bool) {
	cands := map[string]bool{}
	for _, q := range group {
		eachEqJoin(q, func(_, _ int, attr string) {
			cands[attr] = true
		})
	}
	attrs := make([]string, 0, len(cands))
	for a := range cands {
		attrs = append(attrs, a)
	}
	sort.Strings(attrs)
	for _, a := range attrs {
		multi := false
		ok := true
		for _, q := range group {
			if q.ps.N() < 2 {
				continue
			}
			if !keyedOn(q, a) {
				ok = false
				break
			}
			multi = true
		}
		if ok && multi {
			return a, true
		}
	}
	return "", false
}

// ExplainPartitionKey re-derives a component's hash-partition attribute for
// the explain layer and, when none qualifies, renders a human-readable
// reason — the same derivation as partitionKey, narrated. attr is empty iff
// reason is non-empty.
func ExplainPartitionKey(queries []Query) (attr string, reason string) {
	group := make([]*qstate, len(queries))
	for i, q := range queries {
		group[i] = newQState(q)
	}
	if a, ok := partitionKey(group); ok {
		return a, ""
	}
	cands := map[string]bool{}
	for _, q := range group {
		eachEqJoin(q, func(_, _ int, a string) { cands[a] = true })
	}
	if len(cands) == 0 {
		return "", "no member carries an explicit equi-join between positive positions"
	}
	attrs := make([]string, 0, len(cands))
	for a := range cands {
		attrs = append(attrs, a)
	}
	sort.Strings(attrs)
	multi := false
	for _, q := range group {
		if q.ps.N() >= 2 {
			multi = true
			break
		}
	}
	if !multi {
		return "", "every member is single-positive; partitioning would buy nothing"
	}
	// Some member's positive positions are not fully connected by any
	// single candidate attribute's equality graph.
	for _, a := range attrs {
		for _, q := range group {
			if q.ps.N() >= 2 && !keyedOn(q, a) {
				return "", fmt.Sprintf(
					"candidate attribute %q does not chain all positive positions of member %q (no attribute keys every member)",
					a, q.name)
			}
		}
	}
	return "", "no candidate attribute keys every multi-positive member"
}

// eachEqJoin visits every explicit equi-join predicate between two positive
// planning positions of the query.
func eachEqJoin(q *qstate, fn func(i, j int, attr string)) {
	n := q.ps.N()
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			for _, pr := range q.c.Preds.Pairs(q.term(i), q.term(j)) {
				if !pr.HasCond {
					continue
				}
				if attr, ok := pr.Cond.EqualityJoin(); ok {
					fn(i, j, attr)
				}
			}
		}
	}
}

// keyedOn reports whether the equi-joins on attr connect all of the query's
// positive planning positions (union-find over the equality graph).
func keyedOn(q *qstate, attr string) bool {
	n := q.ps.N()
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	eachEqJoin(q, func(i, j int, a string) {
		if a == attr {
			parent[find(i)] = find(j)
		}
	})
	root := find(0)
	for i := 1; i < n; i++ {
		if find(i) != root {
			return false
		}
	}
	return true
}

// adoptKeep reports whether a partitioned engine owns an adopted instance:
// every constituent must hash into this lane's bucket. Instances whose
// constituents disagree on the bucket are dropped by every sibling — they
// can never complete (completion forces value equality along the key
// chain, and equal values share a bucket), so no match is lost.
func (e *Engine) adoptKeep(in *inst) bool {
	if e.partTotal <= 1 {
		return true
	}
	for _, ev := range in.ev {
		if PartitionBucket(ev, e.partAttr, e.partTotal) != e.partIdx {
			return false
		}
	}
	return true
}
