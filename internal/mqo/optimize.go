package mqo

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/event"
	"repro/internal/plan"
	"repro/internal/predicate"
	"repro/internal/stats"
)

// Query is one candidate query for subplan sharing: its name and the
// per-query plan the single-query planner produced.
type Query struct {
	Name string
	SP   *core.SimplePlan
}

// Options tunes the optimizer. The zero value selects the defaults.
type Options struct {
	// FanoutFactor is the modeled relative cost of fanning a shared node's
	// partial matches out to one extra consumer (default
	// cost.DefaultFanoutFactor).
	FanoutFactor float64
	// MaxCandidates bounds how many canonical sub-join candidates the
	// greedy selector examines, best modeled saving first (default 128).
	MaxCandidates int
	// MaxSubsetSize bounds the position-subset enumeration per query
	// (default 10; enumeration is 2^n).
	MaxSubsetSize int
}

func (o Options) withDefaults() Options {
	if o.FanoutFactor <= 0 || o.FanoutFactor >= 1 {
		o.FanoutFactor = cost.DefaultFanoutFactor
	}
	if o.MaxCandidates <= 0 {
		o.MaxCandidates = 128
	}
	if o.MaxSubsetSize <= 0 {
		o.MaxSubsetSize = 10
	}
	return o
}

// Group is one connected sharing component: a shared evaluation DAG and the
// names of the queries it serves.
type Group struct {
	Engine  *Engine
	Members []string
}

// Report summarizes what the optimizer decided, in cost-model terms.
type Report struct {
	// Eligible counts the queries that satisfied the shareable-fragment
	// conditions (single positive SEQ/AND disjunct, skip-till-any-match).
	Eligible int
	// Shared counts the queries placed on shared DAGs.
	Shared int
	// Restructured counts the queries whose private-optimal tree was bent
	// toward a shareable sub-join because the model predicted a win.
	Restructured int
	// Nodes and SharedNodes count distinct DAG nodes and those consumed by
	// more than one parent edge or query root.
	Nodes       int
	SharedNodes int
	// UnsharedCost is Σ Cost_tree of the members' private plans;
	// SharedCost is the shared-plan objective of the final DAGs.
	UnsharedCost float64
	SharedCost   float64
}

// Result is the optimizer's output: the shared groups plus the eligible
// queries the model left on their private engines.
type Result struct {
	Groups  []Group
	Private []string
	Report  Report
}

// Eligible reports whether a planned query may participate in subplan
// sharing: exactly one disjunct, no negated or Kleene positions, evaluated
// under skip-till-any-match — the fragment whose match sets are provably
// plan-independent (Section 3's equivalence of all plans), which is what
// makes evaluating a query on a restructured shared plan match-for-match
// identical to its private plan.
func Eligible(pl *core.Plan, strategy predicate.Strategy) bool {
	if pl == nil || len(pl.Simple) != 1 {
		return false
	}
	sp := pl.Simple[0]
	if strategy != predicate.SkipTillAnyMatch {
		return false
	}
	c := sp.Compiled
	if len(c.Negs) > 0 {
		return false
	}
	for _, k := range c.Kleene {
		if k {
			return false
		}
	}
	// The shareable fragment has no negated terms, so planning positions
	// and compiled term positions coincide; the builder relies on it.
	for k, ti := range sp.Stats.TermIndex {
		if ti != k {
			return false
		}
	}
	return true
}

// qstate is the optimizer's working state for one query.
type qstate struct {
	name string
	sp   *core.SimplePlan
	c    *predicate.Compiled
	sigs *sigCache
	ps   *stats.PatternStats
	tree *plan.TreeNode // current (possibly restructured) tree, term positions
	// baseCost is Cost_tree of the private-optimal plan; cost tracks the
	// current (possibly restructured) tree.
	baseCost float64
	cost     float64
	// locked marks positions inside an adopted shared sub-join; a later
	// restructure may not cut across them.
	locked map[int]bool
}

// newQState prepares one query's working state.
func newQState(name string, sp *core.SimplePlan) *qstate {
	tree := sp.Tree
	if tree == nil {
		// Theorem 1: an order-based plan is the left-deep tree over the
		// same processing order.
		tree = plan.LeftDeep(sp.Order)
	}
	tree = tree.Clone()
	c := cost.Tree(sp.Stats, tree)
	return &qstate{
		name:     name,
		sp:       sp,
		c:        sp.Compiled,
		sigs:     newSigCache(sp.Compiled),
		ps:       sp.Stats,
		tree:     tree,
		baseCost: c,
		cost:     c,
		locked:   make(map[int]bool),
	}
}

// candidate is one canonical sub-join that at least two queries could
// evaluate: where it occurs (per query: the position subset), and the
// modeled per-consumer cost of computing it.
type candidate struct {
	key     string
	subsets map[int][]int // query index -> term-position subset
	shape   *plan.TreeNode
	shapeQ  int     // query whose positions shape's leaves use
	pm      float64 // Cost_tree of the sub-join under shapeQ's stats
	saving  float64 // modeled saving if every supporter shared it
}

// Optimize selects which sub-joins to materialize once across the queries
// and builds one shared evaluation DAG per connected sharing component.
// Queries that end up sharing nothing are reported in Result.Private — the
// caller should keep them on their private engines (and their private
// workers) rather than serializing them through a DAG for no modeled win.
func Optimize(queries []Query, opt Options) (*Result, error) {
	opt = opt.withDefaults()
	qs := make([]*qstate, len(queries))
	for i, q := range queries {
		qs[i] = newQState(q.Name, q.SP)
	}

	cands := enumerateCandidates(qs, opt)
	restructured := greedySelect(qs, cands, opt)

	// Final grouping: dedup every subtree of every final tree by canonical
	// key; queries sharing at least one internal-node key form components.
	type keyInfo struct {
		users []int // query indices
	}
	keys := map[string]*keyInfo{}
	for qi, q := range qs {
		for _, sub := range q.tree.Subtrees() {
			key, _ := subsetKey(q.sigs, sub.Leaves())
			ki := keys[key]
			if ki == nil {
				ki = &keyInfo{}
				keys[key] = ki
			}
			if len(ki.users) == 0 || ki.users[len(ki.users)-1] != qi {
				ki.users = append(ki.users, qi)
			}
		}
	}
	parent := make([]int, len(qs))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) { parent[find(a)] = find(b) }
	sharedQ := make(map[int]bool)
	for _, ki := range keys {
		if len(ki.users) < 2 {
			continue
		}
		for _, u := range ki.users {
			sharedQ[u] = true
			union(ki.users[0], u)
		}
	}

	res := &Result{Report: Report{Eligible: len(qs), Restructured: restructured}}
	comps := map[int][]int{}
	for qi := range qs {
		if !sharedQ[qi] {
			res.Private = append(res.Private, qs[qi].name)
			continue
		}
		root := find(qi)
		comps[root] = append(comps[root], qi)
	}
	roots := make([]int, 0, len(comps))
	for r := range comps {
		roots = append(roots, r)
	}
	sort.Ints(roots)
	for _, r := range roots {
		members := comps[r]
		sort.Ints(members)
		group := make([]*qstate, len(members))
		for i, qi := range members {
			group[i] = qs[qi]
		}
		eng, err := buildEngine(group)
		if err != nil {
			return nil, err
		}
		names := make([]string, len(group))
		for i, q := range group {
			names[i] = q.name
			res.Report.UnsharedCost += q.baseCost
		}
		res.Groups = append(res.Groups, Group{Engine: eng, Members: names})
		res.Report.Shared += len(group)
		res.Report.Nodes += eng.st.Nodes
		res.Report.SharedNodes += eng.st.SharedNodes
		res.Report.SharedCost += sharedObjective(group, opt.FanoutFactor)
	}
	return res, nil
}

// enumerateCandidates computes, for every canonical sub-join of size >= 2
// that at least two queries could evaluate, where it occurs and what
// sharing it would save.
func enumerateCandidates(qs []*qstate, opt Options) []*candidate {
	byKey := map[string]*candidate{}
	for qi, q := range qs {
		n := q.ps.N()
		if n > opt.MaxSubsetSize {
			continue
		}
		positions := make([]int, n)
		for i := range positions {
			positions[i] = i
		}
		for mask := 1; mask < 1<<n; mask++ {
			if popcount(mask) < 2 {
				continue
			}
			subset := subsetOf(positions, mask)
			key, _ := subsetKey(q.sigs, subset)
			cand := byKey[key]
			if cand == nil {
				cand = &candidate{key: key, subsets: map[int][]int{}}
				byKey[key] = cand
			}
			if _, seen := cand.subsets[qi]; !seen {
				cand.subsets[qi] = subset
			}
		}
	}
	var out []*candidate
	for _, cand := range byKey {
		if len(cand.subsets) < 2 {
			continue
		}
		// Representative shape: prefer a subtree already present in some
		// query's current tree; otherwise plan one over the restricted
		// statistics.
		for qi, q := range qs {
			sub, ok := cand.subsets[qi]
			if !ok {
				continue
			}
			if t := findSubtree(q.tree, sub); t != nil {
				cand.shape, cand.shapeQ = t.Clone(), qi
				break
			}
		}
		if cand.shape == nil {
			qi := anyKey(cand.subsets)
			cand.shape, cand.shapeQ = planSubset(qs[qi], cand.subsets[qi]), qi
		}
		cand.pm = cost.Tree(qs[cand.shapeQ].ps, cand.shape)
		cand.saving = cost.SharedSaving(qs[cand.shapeQ].ps, cand.shape, len(cand.subsets), opt.FanoutFactor)
		out = append(out, cand)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].saving != out[b].saving {
			return out[a].saving > out[b].saving
		}
		return out[a].key < out[b].key // deterministic tie-break
	})
	if len(out) > opt.MaxCandidates {
		out = out[:opt.MaxCandidates]
	}
	return out
}

// greedySelect walks the candidates in descending modeled saving and, per
// candidate, restructures supporting queries toward the common sub-join
// when — and only when — the global shared-plan objective (cost.Shared over
// the deduplicated nodes of every query's current tree) improves. Owners,
// whose current tree already contains the sub-join, share syntactically
// without any change; evaluating restructures against the global objective
// keeps a locally attractive merge from breaking sharing established by an
// earlier (larger-saving) candidate. Returns the number of restructured
// queries.
func greedySelect(qs []*qstate, cands []*candidate, opt Options) int {
	restructured := map[int]bool{}
	objective := sharedObjective(qs, opt.FanoutFactor)
	for _, cand := range cands {
		type adopter struct {
			qi      int
			subset  []int
			newTree *plan.TreeNode
			dCost   float64 // residual-cost increase when restructuring
		}
		var ads []adopter
		owners := 0
		for qi, q := range qs {
			subset := cand.subsets[qi]
			if subset == nil {
				continue
			}
			if overlapsLocked(q, subset) {
				continue
			}
			if findSubtree(q.tree, subset) != nil {
				owners++
				continue
			}
			nt, ok := restructure(q, subset, cand, qs)
			if !ok {
				continue
			}
			ads = append(ads, adopter{
				qi: qi, subset: subset, newTree: nt,
				dCost: cost.Tree(q.ps, nt) - q.cost,
			})
		}
		if len(ads) == 0 || owners+len(ads) < 2 {
			continue
		}
		sort.Slice(ads, func(a, b int) bool {
			if ads[a].dCost != ads[b].dCost {
				return ads[a].dCost < ads[b].dCost
			}
			return ads[a].qi < ads[b].qi
		})
		tryAdopt := func(batch []adopter) bool {
			type saved struct {
				tree *plan.TreeNode
				cost float64
			}
			olds := make([]saved, len(batch))
			for i, a := range batch {
				olds[i] = saved{qs[a.qi].tree, qs[a.qi].cost}
				qs[a.qi].tree = a.newTree
				qs[a.qi].cost = olds[i].cost + a.dCost
			}
			if newObj := sharedObjective(qs, opt.FanoutFactor); newObj < objective-1e-9 {
				objective = newObj
				for _, a := range batch {
					restructured[a.qi] = true
					for _, p := range a.subset {
						qs[a.qi].locked[p] = true
					}
				}
				return true
			}
			for i, a := range batch {
				qs[a.qi].tree = olds[i].tree
				qs[a.qi].cost = olds[i].cost
			}
			return false
		}
		if owners > 0 {
			for _, a := range ads {
				tryAdopt([]adopter{a})
			}
			continue
		}
		// No owner computes the sub-join yet: a single restructure cannot
		// pay off alone, so the two cheapest supporters move jointly; the
		// rest follow marginally.
		if tryAdopt(ads[:2]) {
			for _, a := range ads[2:] {
				tryAdopt([]adopter{a})
			}
		}
	}
	return len(restructured)
}

// restructure replans a query so that its tree contains the candidate
// sub-join as a subtree: the subset is contracted to a virtual position
// whose statistics reproduce the sub-join's output volume, the residual is
// replanned over the contracted statistics, and the virtual leaf is
// expanded back into the candidate's shape translated into this query's
// positions via the canonical slot correspondence.
func restructure(q *qstate, subset []int, cand *candidate, qs []*qstate) (*plan.TreeNode, bool) {
	psC, keep := stats.Contract(q.ps, subset)
	model := q.sp.Model
	model.Alpha = 0 // the latency anchor does not survive contraction
	model.LastPos = -1
	treeC := core.ZStreamOrd{}.Tree(psC, model)
	if treeC == nil {
		return nil, false
	}
	// Translate the candidate shape into this query's positions: shape
	// leaves are shapeQ positions; map them through the canonical orders.
	_, shapeOrd := subsetKey(qs[cand.shapeQ].sigs, cand.subsets[cand.shapeQ])
	_, qOrd := subsetKey(q.sigs, subset)
	slotOf := make(map[int]int, len(shapeOrd))
	for slot, pos := range shapeOrd {
		slotOf[pos] = slot
	}
	var expandShape func(t *plan.TreeNode) *plan.TreeNode
	expandShape = func(t *plan.TreeNode) *plan.TreeNode {
		if t.IsLeaf() {
			return plan.LeafNode(qOrd[slotOf[t.Leaf]])
		}
		return plan.Join(expandShape(t.Left), expandShape(t.Right))
	}
	virtual := len(keep)
	var expand func(t *plan.TreeNode) *plan.TreeNode
	expand = func(t *plan.TreeNode) *plan.TreeNode {
		if t.IsLeaf() {
			if t.Leaf == virtual {
				return expandShape(cand.shape)
			}
			return plan.LeafNode(keep[t.Leaf])
		}
		return plan.Join(expand(t.Left), expand(t.Right))
	}
	out := expand(treeC)
	if _, err := plan.NewTree(out); err != nil {
		return nil, false
	}
	return out, true
}

// planSubset builds a tree shape for a position subset with no syntactic
// owner, using the ZStream topology search over the restricted statistics.
func planSubset(q *qstate, subset []int) *plan.TreeNode {
	rs := restrictStats(q.ps, subset)
	t := core.ZStream{}.Tree(rs, cost.DefaultModel())
	var remap func(n *plan.TreeNode) *plan.TreeNode
	remap = func(n *plan.TreeNode) *plan.TreeNode {
		if n.IsLeaf() {
			return plan.LeafNode(subset[n.Leaf])
		}
		return plan.Join(remap(n.Left), remap(n.Right))
	}
	return remap(t)
}

// restrictStats projects PatternStats onto the given positions, in order.
func restrictStats(ps *stats.PatternStats, subset []int) *stats.PatternStats {
	n := len(subset)
	rs := &stats.PatternStats{
		W:         ps.W,
		Types:     make([]string, n),
		Aliases:   make([]string, n),
		TermIndex: make([]int, n),
		Kleene:    make([]bool, n),
		Rates:     make([]float64, n),
		Sel:       make([][]float64, n),
	}
	for i, p := range subset {
		rs.Types[i] = ps.Types[p]
		rs.Aliases[i] = ps.Aliases[p]
		rs.TermIndex[i] = ps.TermIndex[p]
		rs.Kleene[i] = ps.Kleene[p]
		rs.Rates[i] = ps.Rates[p]
		rs.Sel[i] = make([]float64, n)
		for j, q := range subset {
			rs.Sel[i][j] = ps.Sel[p][q]
		}
	}
	return rs
}

// findSubtree returns the subtree of t whose leaf set equals subset, if
// any.
func findSubtree(t *plan.TreeNode, subset []int) *plan.TreeNode {
	want := make(map[int]bool, len(subset))
	for _, p := range subset {
		want[p] = true
	}
	var found *plan.TreeNode
	var rec func(n *plan.TreeNode) int // returns count of wanted leaves below
	rec = func(n *plan.TreeNode) int {
		if found != nil {
			return 0
		}
		if n.IsLeaf() {
			if want[n.Leaf] {
				return 1
			}
			return 0
		}
		c := rec(n.Left) + rec(n.Right)
		if c == len(subset) && n.Size() == len(subset) && found == nil {
			found = n
		}
		return c
	}
	rec(t)
	return found
}

// overlapsLocked reports whether the subset cuts across a previously
// adopted shared sub-join without containing it entirely.
func overlapsLocked(q *qstate, subset []int) bool {
	for _, p := range subset {
		if q.locked[p] {
			return true
		}
	}
	return false
}

// sharedObjective evaluates cost.Shared over the final DAG nodes of one
// component.
func sharedObjective(group []*qstate, fanout float64) float64 {
	type entry struct {
		pm        float64
		consumers int
	}
	nodes := map[string]*entry{}
	for _, q := range group {
		var rec func(t *plan.TreeNode) string
		rec = func(t *plan.TreeNode) string {
			key, _ := subsetKey(q.sigs, t.Leaves())
			en := nodes[key]
			if en == nil {
				en = &entry{pm: cost.TreePM(q.ps, t)}
				nodes[key] = en
			}
			en.consumers++
			if !t.IsLeaf() {
				rec(t.Left)
				rec(t.Right)
			}
			return key
		}
		rec(q.tree)
	}
	list := make([]cost.SharedNode, 0, len(nodes))
	for _, en := range nodes {
		list = append(list, cost.SharedNode{PM: en.pm, Consumers: en.consumers})
	}
	return cost.Shared(list, fanout)
}

// buildEngine constructs the shared evaluation DAG for one component from
// the members' final trees, deduplicating nodes by canonical key.
func buildEngine(group []*qstate) (*Engine, error) {
	eng := &Engine{byType: map[string][]*node{}}
	byKey := map[string]*node{}

	var build func(q *qstate, t *plan.TreeNode) (*node, []int, error)
	build = func(q *qstate, t *plan.TreeNode) (*node, []int, error) {
		subset := t.Leaves()
		key, ord := subsetKey(q.sigs, subset)
		if n := byKey[key]; n != nil {
			return n, ord, nil
		}
		n := &node{key: key, window: q.c.Window, slots: len(ord)}
		if t.IsLeaf() {
			pos := t.Leaf
			n.leafType = q.c.Types[pos]
			for _, u := range q.c.Preds.Unaries(pos) {
				n.unary = append(n.unary, u.Fn)
			}
			eng.byType[n.leafType] = append(eng.byType[n.leafType], n)
		} else {
			ln, lord, err := build(q, t.Left)
			if err != nil {
				return nil, nil, err
			}
			rn, rord, err := build(q, t.Right)
			if err != nil {
				return nil, nil, err
			}
			n.left, n.right = ln, rn
			slotOf := make(map[int]int, len(ord))
			for slot, pos := range ord {
				slotOf[pos] = slot
			}
			n.leftMap = make([]int, len(lord))
			for i, pos := range lord {
				n.leftMap[i] = slotOf[pos]
			}
			n.rightMap = make([]int, len(rord))
			for i, pos := range rord {
				n.rightMap[i] = slotOf[pos]
			}
			ltypes := map[string]bool{}
			for _, pos := range lord {
				ltypes[q.c.Types[pos]] = true
			}
			for _, pos := range rord {
				if ltypes[q.c.Types[pos]] {
					n.needDisjoint = true
					break
				}
			}
			for li, lpos := range lord {
				for ri, rpos := range rord {
					lo, hi := lpos, rpos
					if lo > hi {
						lo, hi = hi, lo
					}
					for _, pr := range q.c.Preds.Pairs(lo, hi) {
						fn := pr.Fn
						if pr.I != lpos {
							orig := fn
							fn = func(a, b *event.Event) bool { return orig(b, a) }
						}
						n.cross = append(n.cross, crossPred{l: li, r: ri, fn: fn})
					}
				}
			}
			ln.parents = append(ln.parents, edge{parent: n, side: 0})
			rn.parents = append(rn.parents, edge{parent: n, side: 1})
		}
		byKey[key] = n
		eng.nodes = append(eng.nodes, n)
		return n, ord, nil
	}

	for _, q := range group {
		root, ord, err := build(q, q.tree)
		if err != nil {
			return nil, err
		}
		termOf := make([]int, len(ord))
		copy(termOf, ord)
		root.consumers = append(root.consumers, consumer{
			name: q.name, n: q.c.N, termOf: termOf,
		})
		eng.names = append(eng.names, q.name)
	}
	eng.st.Nodes = len(eng.nodes)
	eng.st.Queries = len(group)
	for _, n := range eng.nodes {
		if len(n.parents)+len(n.consumers) > 1 {
			eng.st.SharedNodes++
		}
	}
	if eng.st.Nodes == 0 {
		return nil, fmt.Errorf("mqo: empty component")
	}
	return eng, nil
}

func popcount(x int) int {
	c := 0
	for x != 0 {
		x &= x - 1
		c++
	}
	return c
}

func subsetOf(positions []int, mask int) []int {
	var out []int
	for i, p := range positions {
		if mask&(1<<i) != 0 {
			out = append(out, p)
		}
	}
	return out
}

func anyKey(m map[int][]int) int {
	best := -1
	for k := range m {
		if best < 0 || k < best {
			best = k
		}
	}
	return best
}
