package mqo

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/event"
	"repro/internal/plan"
	"repro/internal/predicate"
	"repro/internal/stats"
)

// Query is one candidate query for subplan sharing: its name, the
// per-query plan the single-query planner produced, and — for queries
// joining a live session — the stream sequence watermark from which the
// query observes events (0 for queries registered before the first event).
type Query struct {
	Name  string
	SP    *core.SimplePlan
	Since uint64
}

// Options tunes the optimizer. The zero value selects the defaults.
type Options struct {
	// FanoutFactor is the modeled relative cost of fanning a shared node's
	// partial matches out to one extra consumer (default
	// cost.DefaultFanoutFactor).
	FanoutFactor float64
	// MaxCandidates bounds how many canonical sub-join candidates the
	// greedy selector examines, best modeled saving first (default 128).
	MaxCandidates int
	// MaxSubsetSize bounds the position-subset enumeration per query
	// (default 10; enumeration is 2^n).
	MaxSubsetSize int
	// GroupWorkers partitions a sharing component's root fan-out across up
	// to this many evaluation DAGs, each served by its own worker lane, so
	// one hot component no longer serializes on a single goroutine. Members
	// are cost-balanced across the lanes (cost.Balance); sub-joins shared
	// across lanes are evaluated once per lane, so the split trades some
	// recomputation for parallelism. 0 or 1 keeps one DAG per component; a
	// lane always holds at least two members (components too small to split
	// stay whole).
	GroupWorkers int
	// Partitions hash-partitions each sharing component that carries an
	// equi-join key (see partitionKey) across this many lanes: every lane
	// gets a full copy of the component's DAG serving ALL members, but owns
	// only the events whose key hashes into its bucket — shared nodes are
	// computed once per partition with no cross-lane recomputation, which is
	// what GroupWorkers cannot offer. Components without a key fall back to
	// the GroupWorkers split. 0 or 1 disables partitioning.
	Partitions int
}

func (o Options) withDefaults() Options {
	if o.FanoutFactor <= 0 || o.FanoutFactor >= 1 {
		o.FanoutFactor = cost.DefaultFanoutFactor
	}
	if o.MaxCandidates <= 0 {
		o.MaxCandidates = 128
	}
	if o.MaxSubsetSize <= 0 {
		o.MaxSubsetSize = 10
	}
	if o.GroupWorkers <= 0 {
		o.GroupWorkers = 1
	}
	if o.Partitions <= 0 {
		o.Partitions = 1
	}
	return o
}

// Group is one shared evaluation lane: a shared evaluation DAG and the
// names of the queries it serves. Component identifies the connected
// sharing component the lane belongs to (lanes of a split component share
// it); the cost fields are the modeled unshared vs shared cost of this
// lane's members, and Restructured counts the members whose private-optimal
// tree was bent toward a common sub-join.
type Group struct {
	Engine  *Engine
	Members []string

	// Trees holds each member's final evaluated tree (private-optimal or
	// restructured toward a common sub-join), in planning-position space —
	// the structure a drift check must re-price under fresh statistics,
	// which the member's private plan no longer describes once the
	// optimizer has bent it.
	Trees map[string]*plan.TreeNode

	Component    int
	Restructured int
	Nodes        int
	SharedNodes  int
	UnsharedCost float64
	SharedCost   float64

	// Partition/Partitions/PartitionAttr describe key-partitioned lanes:
	// this lane owns partition index Partition of Partitions hash buckets
	// of the component's PartitionAttr equi-join key. Partitions <= 1 means
	// the lane is unpartitioned (Single, splitComponent and unkeyed
	// components leave the zero values). The Partitions sibling lanes of one
	// component serve identical member sets; SharedCost is per lane (the
	// whole component costs Partitions times as much).
	Partition     int
	Partitions    int
	PartitionAttr string
}

// Report summarizes what the optimizer decided, in cost-model terms.
type Report struct {
	// Eligible counts the queries that satisfied the shareable-fragment
	// conditions (single positive SEQ/AND disjunct, skip-till-any-match).
	Eligible int
	// Shared counts the queries placed on shared DAGs.
	Shared int
	// Restructured counts the queries whose private-optimal tree was bent
	// toward a shareable sub-join because the model predicted a win.
	Restructured int
	// Nodes and SharedNodes count distinct DAG nodes and those consumed by
	// more than one parent edge or query root.
	Nodes       int
	SharedNodes int
	// UnsharedCost is Σ Cost_tree of the members' private plans;
	// SharedCost is the shared-plan objective of the final DAGs.
	UnsharedCost float64
	SharedCost   float64
}

// Result is the optimizer's output: the shared groups plus the eligible
// queries the model left on their private engines. Keys maps every input
// query to its sharing-relevant canonical keys — the index a session keeps
// to decide, when a query registers or deregisters live, which sharing
// component is affected and must be re-optimized.
type Result struct {
	Groups  []Group
	Private []string
	Report  Report
	Keys    map[string][]string
}

// Eligible reports whether a planned query may participate in subplan
// sharing: exactly one disjunct without Kleene positions, evaluated under
// skip-till-any-match — the fragment whose positive match sets are provably
// plan-independent (Section 3's equivalence of all plans), which is what
// makes evaluating a query on a restructured shared plan match-for-match
// identical to its private plan. Negated positions are allowed: the shared
// DAG evaluates the positive core and the consuming root applies the
// negation checks of Section 5.3 itself.
func Eligible(pl *core.Plan, strategy predicate.Strategy) bool {
	if pl == nil || len(pl.Simple) != 1 {
		return false
	}
	sp := pl.Simple[0]
	if strategy != predicate.SkipTillAnyMatch {
		return false
	}
	for _, k := range sp.Compiled.Kleene {
		if k {
			return false
		}
	}
	return true
}

// qstate is the optimizer's working state for one query. Trees and
// position subsets are in planning-position space (positive events only);
// sigs and term translate to compiled term positions where the predicate
// tables live.
type qstate struct {
	name  string
	sp    *core.SimplePlan
	c     *predicate.Compiled
	sigs  *sigCache
	ps    *stats.PatternStats
	since uint64
	tree  *plan.TreeNode // current (possibly restructured) tree, planning positions
	// baseCost is Cost_tree of the private-optimal plan; cost tracks the
	// current (possibly restructured) tree.
	baseCost float64
	cost     float64
	// locked marks positions inside an adopted shared sub-join; a later
	// restructure may not cut across them.
	locked map[int]bool
}

// term translates a planning position to its compiled term position.
func (q *qstate) term(pos int) int { return q.ps.TermIndex[pos] }

// newQState prepares one query's working state.
func newQState(in Query) *qstate {
	sp := in.SP
	tree := sp.Tree
	if tree == nil {
		// Theorem 1: an order-based plan is the left-deep tree over the
		// same processing order.
		tree = plan.LeftDeep(sp.Order)
	}
	tree = tree.Clone()
	c := cost.Tree(sp.Stats, tree)
	return &qstate{
		name:     in.Name,
		sp:       sp,
		c:        sp.Compiled,
		sigs:     newSigCache(sp.Compiled, sp.Stats.TermIndex),
		ps:       sp.Stats,
		since:    in.Since,
		tree:     tree,
		baseCost: c,
		cost:     c,
		locked:   make(map[int]bool),
	}
}

// candidate is one canonical sub-join that at least two queries could
// evaluate: where it occurs (per query: the position subset), and the
// modeled per-consumer cost of computing it.
type candidate struct {
	key     string
	subsets map[int][]int // query index -> planning-position subset
	shape   *plan.TreeNode
	shapeQ  int     // query whose positions shape's leaves use
	pm      float64 // Cost_tree of the sub-join under shapeQ's stats
	saving  float64 // modeled saving if every supporter shared it
}

// Optimize selects which sub-joins to materialize once across the queries
// and builds the shared evaluation DAGs, one or more per connected sharing
// component (Options.GroupWorkers splits large components across several
// lanes). Queries that end up sharing nothing are reported in
// Result.Private — the caller should keep them on their private engines
// (and their private workers) rather than serializing them through a DAG
// for no modeled win.
func Optimize(queries []Query, opt Options) (*Result, error) {
	opt = opt.withDefaults()
	qs := make([]*qstate, len(queries))
	for i, q := range queries {
		qs[i] = newQState(q)
	}

	cands := enumerateCandidates(qs, opt)
	restructured := greedySelect(qs, cands, opt)

	// Final grouping: dedup every subtree of every final tree by canonical
	// key; queries sharing at least one internal-node key form components.
	type keyInfo struct {
		users []int // query indices
	}
	keys := map[string]*keyInfo{}
	for qi, q := range qs {
		for _, sub := range q.tree.Subtrees() {
			key, _ := subsetKey(q.sigs, sub.Leaves())
			ki := keys[key]
			if ki == nil {
				ki = &keyInfo{}
				keys[key] = ki
			}
			if len(ki.users) == 0 || ki.users[len(ki.users)-1] != qi {
				ki.users = append(ki.users, qi)
			}
		}
	}
	parent := make([]int, len(qs))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) { parent[find(a)] = find(b) }
	sharedQ := make(map[int]bool)
	for _, ki := range keys {
		if len(ki.users) < 2 {
			continue
		}
		for _, u := range ki.users {
			sharedQ[u] = true
			union(ki.users[0], u)
		}
	}

	res := &Result{
		Report: Report{Eligible: len(qs), Restructured: len(restructured)},
		Keys:   make(map[string][]string, len(qs)),
	}
	for _, q := range qs {
		res.Keys[q.name] = shareKeys(q, opt)
	}
	comps := map[int][]int{}
	for qi := range qs {
		if !sharedQ[qi] {
			res.Private = append(res.Private, qs[qi].name)
			continue
		}
		root := find(qi)
		comps[root] = append(comps[root], qi)
	}
	roots := make([]int, 0, len(comps))
	for r := range comps {
		roots = append(roots, r)
	}
	sort.Ints(roots)
	for compID, r := range roots {
		members := comps[r]
		sort.Ints(members)
		if opt.Partitions > 1 {
			whole := make([]*qstate, len(members))
			for i, qi := range members {
				whole[i] = qs[qi]
			}
			if attr, ok := partitionKey(whole); ok {
				if err := buildPartitioned(res, whole, compID, attr, restructured, opt); err != nil {
					return nil, err
				}
				continue
			}
		}
		for _, bin := range splitComponent(qs, members, opt.GroupWorkers) {
			group := make([]*qstate, len(bin))
			for i, qi := range bin {
				group[i] = qs[qi]
			}
			eng, err := buildEngine(group)
			if err != nil {
				return nil, err
			}
			g := Group{Engine: eng, Component: compID, Trees: make(map[string]*plan.TreeNode, len(group))}
			for _, q := range group {
				g.Members = append(g.Members, q.name)
				g.Trees[q.name] = q.tree.Clone()
				g.UnsharedCost += q.baseCost
				if restructured[q.name] {
					g.Restructured++
				}
			}
			g.Nodes = eng.st.Nodes
			g.SharedNodes = eng.st.SharedNodes
			g.SharedCost = sharedObjective(group, opt.FanoutFactor)
			res.Groups = append(res.Groups, g)
			res.Report.Shared += len(group)
			res.Report.Nodes += g.Nodes
			res.Report.SharedNodes += g.SharedNodes
			res.Report.UnsharedCost += g.UnsharedCost
			res.Report.SharedCost += g.SharedCost
		}
	}
	return res, nil
}

// buildPartitioned appends the Partitions sibling lanes of one keyed
// component to the result: each lane gets its own engine over the same
// member trees (buildEngine reads the qstates without mutating them),
// stamped with the partition identity and a shared family token so a later
// AdoptFrom recognizes the lanes as slices of one buffer. Report totals are
// added once (at partition 0): the members are shared once, the DAG exists
// logically once, and the component's total shared cost is Partitions times
// the per-lane share.
func buildPartitioned(res *Result, group []*qstate, compID int, attr string, restructured map[string]bool, opt Options) error {
	fam := &partFamily{}
	laneCost := cost.PartitionedShared(sharedNodeList(group), opt.FanoutFactor, opt.Partitions)
	for p := 0; p < opt.Partitions; p++ {
		eng, err := buildEngine(group)
		if err != nil {
			return err
		}
		eng.partAttr, eng.partIdx, eng.partTotal, eng.family = attr, p, opt.Partitions, fam
		g := Group{
			Engine: eng, Component: compID,
			Trees:     make(map[string]*plan.TreeNode, len(group)),
			Partition: p, Partitions: opt.Partitions, PartitionAttr: attr,
		}
		for _, q := range group {
			g.Members = append(g.Members, q.name)
			g.Trees[q.name] = q.tree.Clone()
			g.UnsharedCost += q.baseCost
			if restructured[q.name] {
				g.Restructured++
			}
		}
		g.Nodes = eng.st.Nodes
		g.SharedNodes = eng.st.SharedNodes
		g.SharedCost = laneCost
		res.Groups = append(res.Groups, g)
		if p == 0 {
			res.Report.Shared += len(group)
			res.Report.Nodes += g.Nodes
			res.Report.SharedNodes += g.SharedNodes
			res.Report.UnsharedCost += g.UnsharedCost
			res.Report.SharedCost += laneCost * float64(opt.Partitions)
		}
	}
	return nil
}

// Single builds a one-member evaluation lane for an eligible query — the
// shape a session uses for eligible queries outside any sharing group, so
// that their detection state lives in canonical-key node buffers and can be
// adopted by a later re-optimization that pulls them into a group.
func Single(q Query) (Group, error) {
	st := newQState(q)
	eng, err := buildEngine([]*qstate{st})
	if err != nil {
		return Group{}, err
	}
	return Group{
		Engine:       eng,
		Members:      []string{st.name},
		Trees:        map[string]*plan.TreeNode{st.name: st.tree.Clone()},
		Component:    -1,
		Nodes:        eng.st.Nodes,
		SharedNodes:  eng.st.SharedNodes,
		UnsharedCost: st.baseCost,
		SharedCost:   st.baseCost,
	}, nil
}

// QueryKeys computes a query's sharing-relevant canonical keys without
// running the optimizer: the keys of every position subset the candidate
// enumeration would consider, or — for patterns too large to enumerate —
// the subtree keys of its private-optimal tree. A live session intersects
// these with its standing key index to find the sharing component a newly
// registered query affects.
func QueryKeys(q Query, opt Options) []string {
	opt = opt.withDefaults()
	return shareKeys(newQState(q), opt)
}

// shareKeys lists the canonical keys under which a query could share: its
// enumerated position subsets when small enough, else only its current
// tree's internal nodes.
func shareKeys(q *qstate, opt Options) []string {
	seen := map[string]bool{}
	var out []string
	add := func(k string) {
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	if n := q.ps.N(); n <= opt.MaxSubsetSize {
		positions := make([]int, n)
		for i := range positions {
			positions[i] = i
		}
		for mask := 1; mask < 1<<n; mask++ {
			if popcount(mask) < 2 {
				continue
			}
			key, _ := subsetKey(q.sigs, subsetOf(positions, mask))
			add(key)
		}
	}
	for _, sub := range q.tree.Subtrees() {
		key, _ := subsetKey(q.sigs, sub.Leaves())
		add(key)
	}
	sort.Strings(out)
	return out
}

// splitComponent partitions a component's members across up to workers
// cost-balanced bins of at least two members each; components too small to
// split stay whole.
func splitComponent(qs []*qstate, members []int, workers int) [][]int {
	bins := workers
	if max := len(members) / 2; bins > max {
		bins = max
	}
	if bins < 2 {
		return [][]int{members}
	}
	costs := make([]float64, len(members))
	for i, qi := range members {
		costs[i] = qs[qi].baseCost
	}
	parts := cost.Balance(costs, bins)
	out := make([][]int, 0, len(parts))
	for _, part := range parts {
		bin := make([]int, len(part))
		for i, k := range part {
			bin[i] = members[k]
		}
		sort.Ints(bin)
		out = append(out, bin)
	}
	return out
}

// enumerateCandidates computes, for every canonical sub-join of size >= 2
// that at least two queries could evaluate, where it occurs and what
// sharing it would save.
func enumerateCandidates(qs []*qstate, opt Options) []*candidate {
	byKey := map[string]*candidate{}
	for qi, q := range qs {
		n := q.ps.N()
		if n > opt.MaxSubsetSize {
			continue
		}
		positions := make([]int, n)
		for i := range positions {
			positions[i] = i
		}
		for mask := 1; mask < 1<<n; mask++ {
			if popcount(mask) < 2 {
				continue
			}
			subset := subsetOf(positions, mask)
			key, _ := subsetKey(q.sigs, subset)
			cand := byKey[key]
			if cand == nil {
				cand = &candidate{key: key, subsets: map[int][]int{}}
				byKey[key] = cand
			}
			if _, seen := cand.subsets[qi]; !seen {
				cand.subsets[qi] = subset
			}
		}
	}
	var out []*candidate
	for _, cand := range byKey {
		if len(cand.subsets) < 2 {
			continue
		}
		// Representative shape: prefer a subtree already present in some
		// query's current tree; otherwise plan one over the restricted
		// statistics.
		for qi, q := range qs {
			sub, ok := cand.subsets[qi]
			if !ok {
				continue
			}
			if t := findSubtree(q.tree, sub); t != nil {
				cand.shape, cand.shapeQ = t.Clone(), qi
				break
			}
		}
		if cand.shape == nil {
			qi := anyKey(cand.subsets)
			cand.shape, cand.shapeQ = planSubset(qs[qi], cand.subsets[qi]), qi
		}
		cand.pm = cost.Tree(qs[cand.shapeQ].ps, cand.shape)
		cand.saving = cost.SharedSaving(qs[cand.shapeQ].ps, cand.shape, len(cand.subsets), opt.FanoutFactor)
		out = append(out, cand)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].saving != out[b].saving {
			return out[a].saving > out[b].saving
		}
		return out[a].key < out[b].key // deterministic tie-break
	})
	if len(out) > opt.MaxCandidates {
		out = out[:opt.MaxCandidates]
	}
	return out
}

// greedySelect walks the candidates in descending modeled saving and, per
// candidate, restructures supporting queries toward the common sub-join
// when — and only when — the global shared-plan objective (cost.Shared over
// the deduplicated nodes of every query's current tree) improves. Owners,
// whose current tree already contains the sub-join, share syntactically
// without any change; evaluating restructures against the global objective
// keeps a locally attractive merge from breaking sharing established by an
// earlier (larger-saving) candidate. Returns the restructured query names.
func greedySelect(qs []*qstate, cands []*candidate, opt Options) map[string]bool {
	restructured := map[string]bool{}
	objective := sharedObjective(qs, opt.FanoutFactor)
	for _, cand := range cands {
		type adopter struct {
			qi      int
			subset  []int
			newTree *plan.TreeNode
			dCost   float64 // residual-cost increase when restructuring
		}
		var ads []adopter
		owners := 0
		for qi, q := range qs {
			subset := cand.subsets[qi]
			if subset == nil {
				continue
			}
			if overlapsLocked(q, subset) {
				continue
			}
			if findSubtree(q.tree, subset) != nil {
				owners++
				continue
			}
			nt, ok := restructure(q, subset, cand, qs)
			if !ok {
				continue
			}
			ads = append(ads, adopter{
				qi: qi, subset: subset, newTree: nt,
				dCost: cost.Tree(q.ps, nt) - q.cost,
			})
		}
		if len(ads) == 0 || owners+len(ads) < 2 {
			continue
		}
		sort.Slice(ads, func(a, b int) bool {
			if ads[a].dCost != ads[b].dCost {
				return ads[a].dCost < ads[b].dCost
			}
			return ads[a].qi < ads[b].qi
		})
		tryAdopt := func(batch []adopter) bool {
			type saved struct {
				tree *plan.TreeNode
				cost float64
			}
			olds := make([]saved, len(batch))
			for i, a := range batch {
				olds[i] = saved{qs[a.qi].tree, qs[a.qi].cost}
				qs[a.qi].tree = a.newTree
				qs[a.qi].cost = olds[i].cost + a.dCost
			}
			if newObj := sharedObjective(qs, opt.FanoutFactor); newObj < objective-1e-9 {
				objective = newObj
				for _, a := range batch {
					restructured[qs[a.qi].name] = true
					for _, p := range a.subset {
						qs[a.qi].locked[p] = true
					}
				}
				return true
			}
			for i, a := range batch {
				qs[a.qi].tree = olds[i].tree
				qs[a.qi].cost = olds[i].cost
			}
			return false
		}
		if owners > 0 {
			for _, a := range ads {
				tryAdopt([]adopter{a})
			}
			continue
		}
		// No owner computes the sub-join yet: a single restructure cannot
		// pay off alone, so the two cheapest supporters move jointly; the
		// rest follow marginally.
		if tryAdopt(ads[:2]) {
			for _, a := range ads[2:] {
				tryAdopt([]adopter{a})
			}
		}
	}
	return restructured
}

// restructure replans a query so that its tree contains the candidate
// sub-join as a subtree: the subset is contracted to a virtual position
// whose statistics reproduce the sub-join's output volume, the residual is
// replanned over the contracted statistics, and the virtual leaf is
// expanded back into the candidate's shape translated into this query's
// positions via the canonical slot correspondence.
func restructure(q *qstate, subset []int, cand *candidate, qs []*qstate) (*plan.TreeNode, bool) {
	psC, keep := stats.Contract(q.ps, subset)
	model := q.sp.Model
	model.Alpha = 0 // the latency anchor does not survive contraction
	model.LastPos = -1
	treeC := core.ZStreamOrd{}.Tree(psC, model)
	if treeC == nil {
		return nil, false
	}
	// Translate the candidate shape into this query's positions: shape
	// leaves are shapeQ positions; map them through the canonical orders.
	_, shapeOrd := subsetKey(qs[cand.shapeQ].sigs, cand.subsets[cand.shapeQ])
	_, qOrd := subsetKey(q.sigs, subset)
	slotOf := make(map[int]int, len(shapeOrd))
	for slot, pos := range shapeOrd {
		slotOf[pos] = slot
	}
	var expandShape func(t *plan.TreeNode) *plan.TreeNode
	expandShape = func(t *plan.TreeNode) *plan.TreeNode {
		if t.IsLeaf() {
			return plan.LeafNode(qOrd[slotOf[t.Leaf]])
		}
		return plan.Join(expandShape(t.Left), expandShape(t.Right))
	}
	virtual := len(keep)
	var expand func(t *plan.TreeNode) *plan.TreeNode
	expand = func(t *plan.TreeNode) *plan.TreeNode {
		if t.IsLeaf() {
			if t.Leaf == virtual {
				return expandShape(cand.shape)
			}
			return plan.LeafNode(keep[t.Leaf])
		}
		return plan.Join(expand(t.Left), expand(t.Right))
	}
	out := expand(treeC)
	if _, err := plan.NewTree(out); err != nil {
		return nil, false
	}
	return out, true
}

// planSubset builds a tree shape for a position subset with no syntactic
// owner, using the ZStream topology search over the restricted statistics.
func planSubset(q *qstate, subset []int) *plan.TreeNode {
	rs := stats.Restrict(q.ps, subset)
	t := core.ZStream{}.Tree(rs, cost.DefaultModel())
	var remap func(n *plan.TreeNode) *plan.TreeNode
	remap = func(n *plan.TreeNode) *plan.TreeNode {
		if n.IsLeaf() {
			return plan.LeafNode(subset[n.Leaf])
		}
		return plan.Join(remap(n.Left), remap(n.Right))
	}
	return remap(t)
}

// findSubtree returns the subtree of t whose leaf set equals subset, if
// any.
func findSubtree(t *plan.TreeNode, subset []int) *plan.TreeNode {
	want := make(map[int]bool, len(subset))
	for _, p := range subset {
		want[p] = true
	}
	var found *plan.TreeNode
	var rec func(n *plan.TreeNode) int // returns count of wanted leaves below
	rec = func(n *plan.TreeNode) int {
		if found != nil {
			return 0
		}
		if n.IsLeaf() {
			if want[n.Leaf] {
				return 1
			}
			return 0
		}
		c := rec(n.Left) + rec(n.Right)
		if c == len(subset) && n.Size() == len(subset) && found == nil {
			found = n
		}
		return c
	}
	rec(t)
	return found
}

// overlapsLocked reports whether the subset cuts across a previously
// adopted shared sub-join without containing it entirely.
func overlapsLocked(q *qstate, subset []int) bool {
	for _, p := range subset {
		if q.locked[p] {
			return true
		}
	}
	return false
}

// Sigs is a reusable canonical-signature cache for one compiled pattern —
// the handle callers hold across repeated SharedTreeCost pricings, because
// building the cache compiles alias-rewriting regexps and is far too
// expensive to redo per drift check.
type Sigs struct {
	sc *sigCache
}

// NewSigs builds the signature cache for a compiled pattern over its
// planning positions (stats.TermIndex).
func NewSigs(c *predicate.Compiled, termIndex []int) *Sigs {
	return &Sigs{sc: newSigCache(c, termIndex)}
}

// TreePrice is one query's contribution to SharedTreeCost: its canonical
// signatures, the statistics to price under, and the tree actually
// evaluated.
type TreePrice struct {
	Sigs *Sigs
	PS   *stats.PatternStats
	Tree *plan.TreeNode
}

// SharedTreeCost prices a set of running trees as the shared evaluation
// DAG they induce: distinct sub-joins (by canonical key) are paid once
// plus the fan-out term per extra consumer — the same objective the
// optimizer minimizes, re-evaluated under the caller's (typically freshly
// measured) statistics. A session's drift check prices both the running
// structure and a candidate replan this way, so the restructure inflation
// the optimizer accepted for a sharing win never reads as drift. fanout
// outside (0,1) selects cost.DefaultFanoutFactor.
func SharedTreeCost(items []TreePrice, fanout float64) float64 {
	if fanout <= 0 || fanout >= 1 {
		fanout = cost.DefaultFanoutFactor
	}
	type entry struct {
		pm        float64
		consumers int
	}
	nodes := map[string]*entry{}
	for _, it := range items {
		sc := it.Sigs.sc
		var rec func(t *plan.TreeNode)
		rec = func(t *plan.TreeNode) {
			key, _ := subsetKey(sc, t.Leaves())
			en := nodes[key]
			if en == nil {
				en = &entry{pm: cost.TreePM(it.PS, t)}
				nodes[key] = en
			}
			en.consumers++
			if !t.IsLeaf() {
				rec(t.Left)
				rec(t.Right)
			}
		}
		rec(it.Tree)
	}
	list := make([]cost.SharedNode, 0, len(nodes))
	for _, en := range nodes {
		list = append(list, cost.SharedNode{PM: en.pm, Consumers: en.consumers})
	}
	return cost.Shared(list, fanout)
}

// sharedObjective evaluates cost.Shared over the final DAG nodes of one
// component.
func sharedObjective(group []*qstate, fanout float64) float64 {
	return cost.Shared(sharedNodeList(group), fanout)
}

// sharedNodeList collects the deduplicated DAG nodes (by canonical key) of
// the group's final trees with their modeled partial-match volumes and
// consumer counts — the input of both the flat and the partitioned shared
// objective.
func sharedNodeList(group []*qstate) []cost.SharedNode {
	type entry struct {
		pm        float64
		consumers int
	}
	nodes := map[string]*entry{}
	for _, q := range group {
		var rec func(t *plan.TreeNode) string
		rec = func(t *plan.TreeNode) string {
			key, _ := subsetKey(q.sigs, t.Leaves())
			en := nodes[key]
			if en == nil {
				en = &entry{pm: cost.TreePM(q.ps, t)}
				nodes[key] = en
			}
			en.consumers++
			if !t.IsLeaf() {
				rec(t.Left)
				rec(t.Right)
			}
			return key
		}
		rec(q.tree)
	}
	list := make([]cost.SharedNode, 0, len(nodes))
	for _, en := range nodes {
		list = append(list, cost.SharedNode{PM: en.pm, Consumers: en.consumers})
	}
	return list
}

// buildEngine constructs the shared evaluation DAG for one component from
// the members' final trees, deduplicating nodes by canonical key. Trees are
// in planning-position space; every access to the compiled predicate tables
// goes through the query's planning→term translation, so negation queries
// contribute only their positive core to the DAG.
func buildEngine(group []*qstate) (*Engine, error) {
	eng := &Engine{byType: map[string][]*node{}}
	byKey := map[string]*node{}

	var build func(q *qstate, t *plan.TreeNode) (*node, []int, error)
	build = func(q *qstate, t *plan.TreeNode) (*node, []int, error) {
		subset := t.Leaves()
		key, ord := subsetKey(q.sigs, subset)
		if t.IsLeaf() {
			// Selection pushdown below shared sub-joins: leaves are keyed
			// without the window, so one filtered intake per distinct
			// type+unary-filter set serves every query, and each cheap
			// single-event selection is evaluated once per event no matter
			// how many plans consume it. The shared leaf retains events to
			// the widest consumer window (max-updated below); join parents
			// re-check their own window at combine time, and a single-event
			// root emission is trivially in-window.
			key = "L|" + q.sigs.leaf[t.Leaf]
		}
		// Pre-size hint: expected partial-match volume PM(N) under the
		// statistics this query was planned with (Section 4.2).
		bufCap := int(cost.TreePM(q.ps, t)) + 1
		if bufCap > maxBufCap {
			bufCap = maxBufCap
		}
		if n := byKey[key]; n != nil {
			if q.c.Window > n.window {
				n.window = q.c.Window
			}
			if bufCap > n.bufCap {
				n.bufCap = bufCap
			}
			return n, ord, nil
		}
		n := &node{key: key, window: q.c.Window, slots: len(ord), bufCap: bufCap}
		if t.IsLeaf() {
			pos := q.term(t.Leaf)
			n.leafType = q.c.Types[pos]
			for _, u := range q.c.Preds.Unaries(pos) {
				n.unary = append(n.unary, u.Fn)
				if u.HasCond {
					n.leafConds = append(n.leafConds, u.Cond)
				} else {
					n.leafResidual = append(n.leafResidual, u.Fn)
				}
			}
			eng.byType[n.leafType] = append(eng.byType[n.leafType], n)
		} else {
			ln, lord, err := build(q, t.Left)
			if err != nil {
				return nil, nil, err
			}
			rn, rord, err := build(q, t.Right)
			if err != nil {
				return nil, nil, err
			}
			n.left, n.right = ln, rn
			slotOf := make(map[int]int, len(ord))
			for slot, pos := range ord {
				slotOf[pos] = slot
			}
			n.leftMap = make([]int, len(lord))
			for i, pos := range lord {
				n.leftMap[i] = slotOf[pos]
			}
			n.rightMap = make([]int, len(rord))
			for i, pos := range rord {
				n.rightMap[i] = slotOf[pos]
			}
			ltypes := map[string]bool{}
			for _, pos := range lord {
				ltypes[q.c.Types[q.term(pos)]] = true
			}
			for _, pos := range rord {
				if ltypes[q.c.Types[q.term(pos)]] {
					n.needDisjoint = true
					break
				}
			}
			for li, lpos := range lord {
				for ri, rpos := range rord {
					lo, hi := q.term(lpos), q.term(rpos)
					if lo > hi {
						lo, hi = hi, lo
					}
					for _, pr := range q.c.Preds.Pairs(lo, hi) {
						fn := pr.Fn
						if pr.I != q.term(lpos) {
							orig := fn
							fn = func(a, b *event.Event) bool { return orig(b, a) }
						}
						n.cross = append(n.cross, crossPred{l: li, r: ri, fn: fn})
					}
				}
			}
			ln.parents = append(ln.parents, edge{parent: n, side: 0})
			rn.parents = append(rn.parents, edge{parent: n, side: 1})
		}
		byKey[key] = n
		eng.nodes = append(eng.nodes, n)
		return n, ord, nil
	}

	for _, q := range group {
		root, ord, err := build(q, q.tree)
		if err != nil {
			return nil, err
		}
		termOf := make([]int, len(ord))
		for i, pos := range ord {
			termOf[i] = q.term(pos)
		}
		cons := consumer{name: q.name, c: q.c, termOf: termOf, since: q.since}
		for _, spec := range q.c.Negs {
			if spec.High >= 0 {
				cons.negComplete = append(cons.negComplete, spec)
			} else {
				cons.negPending = append(cons.negPending, spec)
			}
		}
		if cons.hasNegs() {
			cons.negBufs = make(map[int][]*event.Event, len(q.c.Negs))
		}
		root.consumers = append(root.consumers, cons)
		eng.names = append(eng.names, q.name)
	}
	eng.st.Nodes = len(eng.nodes)
	eng.st.Queries = len(group)
	for _, n := range eng.nodes {
		// Pre-allocate instance buffers to the cost model's expected volume
		// (parents are final now, so buffering nodes are known).
		if len(n.parents) > 0 {
			n.buffer = make([]*inst, 0, n.bufCap)
		}
		if len(n.parents)+len(n.consumers) > 1 {
			eng.st.SharedNodes++
		}
		for ci := range n.consumers {
			if n.consumers[ci].hasNegs() {
				eng.negCons = append(eng.negCons, &n.consumers[ci])
			}
		}
	}
	// Subscription slot tables for masked (index-routed) processing:
	// negation-buffer intakes first, then leaves, so sorted slot lists
	// process negations before leaf insertions exactly like processOne.
	for _, cons := range eng.negCons {
		for _, spec := range cons.c.Negs {
			eng.negSlots = append(eng.negSlots, negSlot{cons: cons, pos: spec.Pos})
		}
	}
	for _, n := range eng.nodes {
		if n.isLeaf() {
			eng.leafSlots = append(eng.leafSlots, n)
		}
	}
	if eng.st.Nodes == 0 {
		return nil, fmt.Errorf("mqo: empty component")
	}
	return eng, nil
}

func popcount(x int) int {
	c := 0
	for x != 0 {
		x &= x - 1
		c++
	}
	return c
}

func subsetOf(positions []int, mask int) []int {
	var out []int
	for i, p := range positions {
		if mask&(1<<i) != 0 {
			out = append(out, p)
		}
	}
	return out
}

func anyKey(m map[int][]int) int {
	best := -1
	for k := range m {
		if best < 0 || k < best {
			best = k
		}
	}
	return best
}
