package mqo

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/event"
	"repro/internal/match"
	"repro/internal/predicate"
)

const compactEvery = 64

// Tagged is one match produced by the shared DAG, tagged with the consuming
// query's name.
type Tagged struct {
	Query string
	M     *match.Match
}

// EngineStats exposes the shared engine's load counters.
type EngineStats struct {
	Processed   int64
	Matches     int64
	Created     int64 // instances created across all nodes
	PeakPartial int   // peak buffered instances
	Nodes       int   // distinct DAG nodes
	SharedNodes int   // nodes with more than one consuming parent or query
	Queries     int
}

// consumer is one query whose root is a given DAG node.
type consumer struct {
	name   string
	n      int   // term-position count of the compiled pattern
	termOf []int // node slot -> compiled term position
}

// edge links a node to one consuming parent; side is 0 when the node feeds
// the parent's left input, 1 for the right. A self-join parent holds two
// edges to the same child, one per side.
type edge struct {
	parent *node
	side   int
}

// crossPred is one pairwise predicate evaluated at a join node, expressed
// in child slot space: fn receives the left child's event at slot l and the
// right child's event at slot r.
type crossPred struct {
	l, r int
	fn   predicate.PairFn
}

// node is one DAG node: a leaf (event-type intake with unary filters) or a
// join over two children. Its buffer holds the sub-join's live partial
// matches — computed once however many parents and query roots consume
// them.
type node struct {
	key    string
	window event.Time
	slots  int

	// leaf fields
	leafType string
	unary    []predicate.UnaryFn

	// join fields
	left, right       *node
	leftMap, rightMap []int // child slot -> this node's slot
	cross             []crossPred
	needDisjoint      bool // left/right type multisets intersect

	parents   []edge
	consumers []consumer
	buffer    []*inst
}

func (n *node) isLeaf() bool { return n.left == nil }

// inst is one partial match of a node's sub-join: exactly one event per
// slot (Kleene closure is outside the shareable fragment).
type inst struct {
	ev    []*event.Event
	minTS event.Time
	maxTS event.Time
}

// Engine is the shared evaluation DAG: a single-goroutine detection machine
// evaluating every member query at once. Events enter at type-indexed
// leaves, partial matches propagate along parent edges (fanning out at
// shared nodes), and full matches emit at query roots tagged with the query
// name.
type Engine struct {
	nodes  []*node
	byType map[string][]*node
	names  []string // member query names, registration order

	now      event.Time
	nPartial int
	closed   bool
	st       EngineStats
	out      []Tagged
}

// Names returns the member query names in registration order.
func (e *Engine) Names() []string { return append([]string(nil), e.names...) }

// Stats returns a copy of the engine counters.
func (e *Engine) Stats() EngineStats { return e.st }

// CurrentPartial returns the number of live buffered instances.
func (e *Engine) CurrentPartial() int { return e.nPartial }

// Process consumes one event (timestamps non-decreasing) and returns the
// tagged matches it completed across all member queries. The returned slice
// is reused by the next call.
func (e *Engine) Process(ev *event.Event) []Tagged {
	e.st.Processed++
	e.now = ev.TS
	e.out = e.out[:0]
	for _, leaf := range e.byType[ev.Type] {
		ok := true
		for _, fn := range leaf.unary {
			if !fn(ev) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		in := &inst{ev: []*event.Event{ev}, minTS: ev.TS, maxTS: ev.TS}
		e.insert(leaf, in)
	}
	if e.st.Processed%compactEvery == 0 {
		e.compact()
	}
	return e.out
}

// insert registers an instance at a node: it emits at every query root
// anchored here, then — if any parent consumes this sub-join — buffers the
// instance and combines it with each parent's sibling buffer, recursing
// towards the roots. This is the fan-out: one insertion serves every
// consuming plan.
func (e *Engine) insert(n *node, in *inst) {
	e.st.Created++
	for i := range n.consumers {
		e.emit(&n.consumers[i], in)
	}
	if len(n.parents) == 0 {
		return
	}
	n.buffer = append(n.buffer, in)
	e.nPartial++
	if e.nPartial > e.st.PeakPartial {
		e.st.PeakPartial = e.nPartial
	}
	for _, ed := range n.parents {
		p := ed.parent
		sib := p.right
		if ed.side == 1 {
			sib = p.left
		}
		// Snapshot: recursive inserts only extend ancestors' buffers, never
		// the sibling's — except in the self-join case (sib == n), where the
		// snapshot already contains `in` itself and the event-disjointness
		// check rejects the self-pairing.
		sibBuf := sib.buffer
		for _, other := range sibBuf {
			li, ri := in, other
			if ed.side == 1 {
				li, ri = other, in
			}
			if merged := e.combine(p, li, ri); merged != nil {
				e.insert(p, merged)
			}
		}
	}
}

// combine merges a left and right child instance at a join node if window,
// event-disjointness and the node's pairwise predicates allow.
func (e *Engine) combine(p *node, li, ri *inst) *inst {
	min, max := li.minTS, li.maxTS
	if ri.minTS < min {
		min = ri.minTS
	}
	if ri.maxTS > max {
		max = ri.maxTS
	}
	if max-min > p.window {
		return nil
	}
	if e.now-min > p.window {
		return nil // expired instance on the other side
	}
	if p.needDisjoint {
		// An event may fill at most one slot: with type-disjoint children
		// this cannot trigger, but queries may repeat a type (self-joins).
		for _, a := range li.ev {
			for _, b := range ri.ev {
				if a == b {
					return nil
				}
			}
		}
	}
	for _, cp := range p.cross {
		if !cp.fn(li.ev[cp.l], ri.ev[cp.r]) {
			return nil
		}
	}
	merged := &inst{ev: make([]*event.Event, p.slots), minTS: min, maxTS: max}
	for i, s := range p.leftMap {
		merged.ev[s] = li.ev[i]
	}
	for i, s := range p.rightMap {
		merged.ev[s] = ri.ev[i]
	}
	return merged
}

// emit materializes a root instance as one query's match, remapping node
// slots to the query's compiled term positions.
func (e *Engine) emit(cons *consumer, in *inst) {
	m := match.New(cons.n)
	for slot, ev := range in.ev {
		m.Positions[cons.termOf[slot]] = []*event.Event{ev}
	}
	e.st.Matches++
	e.out = append(e.out, Tagged{Query: cons.name, M: m})
}

// compact sweeps expired instances from every buffering node.
func (e *Engine) compact() {
	total := 0
	for _, n := range e.nodes {
		if len(n.parents) == 0 {
			continue
		}
		keep := n.buffer[:0]
		for _, in := range n.buffer {
			if e.now-in.minTS > n.window {
				continue
			}
			keep = append(keep, in)
		}
		// Release the dropped tail so expired instances are collectable.
		for i := len(keep); i < len(n.buffer); i++ {
			n.buffer[i] = nil
		}
		n.buffer = keep
		total += len(keep)
	}
	e.nPartial = total
}

// Flush ends the stream. The shareable fragment has no trailing-negation
// pendings, so nothing is released; the engine just closes.
func (e *Engine) Flush() []Tagged {
	e.closed = true
	return nil
}

// Close releases the engine's buffers.
func (e *Engine) Close() {
	e.closed = true
	for _, n := range e.nodes {
		n.buffer = nil
	}
	e.nPartial = 0
}

// Describe renders the DAG for logs and debugging: each node with its leaf
// span, consumer count and parent fan-out, roots labelled with their query
// names.
func (e *Engine) Describe() string {
	var b strings.Builder
	for i, n := range e.nodes {
		span := n.leafType
		if !n.isLeaf() {
			types := make([]string, len(n.slots2types()))
			copy(types, n.slots2types())
			span = strings.Join(types, "⋈")
		}
		fmt.Fprintf(&b, "node %d: %s fanout=%d", i, span, len(n.parents))
		if len(n.consumers) > 0 {
			names := make([]string, len(n.consumers))
			for k, c := range n.consumers {
				names[k] = c.name
			}
			sort.Strings(names)
			fmt.Fprintf(&b, " roots=[%s]", strings.Join(names, " "))
		}
		b.WriteString("\n")
	}
	return b.String()
}

// slots2types lists the event types slot by slot for diagnostics.
func (n *node) slots2types() []string {
	if n.isLeaf() {
		return []string{n.leafType}
	}
	out := make([]string, n.slots)
	for i, s := range n.leftMap {
		out[s] = n.left.slots2types()[i]
	}
	for i, s := range n.rightMap {
		out[s] = n.right.slots2types()[i]
	}
	return out
}
