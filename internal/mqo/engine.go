package mqo

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/event"
	"repro/internal/match"
	"repro/internal/oracle"
	"repro/internal/pattern"
	"repro/internal/predicate"
)

const compactEvery = 64

// maxBufCap bounds the cost model's buffer pre-size hints: a mis-estimated
// (or drifted) rate must not translate into an arbitrarily large up-front
// allocation.
const maxBufCap = 4096

// Tagged is one match produced by the shared DAG, tagged with the consuming
// query's name.
type Tagged struct {
	Query string
	M     *match.Match
}

// EngineStats exposes the shared engine's load counters. Across a splice
// (AdoptFrom) only Processed continues — it is the stream position, the
// maximum over the sources (every source saw the same broadcast stream).
// Matches, Created and Backfilled are per-engine-lifetime counters and
// restart with each successor engine.
type EngineStats struct {
	Processed   int64
	Matches     int64
	Created     int64 // instances created across all nodes
	Backfilled  int64 // instances recomputed bottom-up during AdoptFrom
	Probes      int64 // join combine attempts (pairings tested at join nodes)
	NegKilled   int64 // matches suppressed by negation checks
	PeakPartial int   // peak buffered instances
	Nodes       int   // distinct DAG nodes
	SharedNodes int   // nodes with more than one consuming parent or query
	Queries     int
}

// consumer is one query whose root is a given DAG node. Negation queries
// share the positive core: the sub-joins below the root know nothing about
// the negated terms, and the consumer applies the checks of Section 5.3 —
// completion-time checks for anchored and leading negations, a pending
// queue for negations whose violators may arrive after completion — exactly
// as the private tree engine would.
type consumer struct {
	name   string
	c      *predicate.Compiled
	termOf []int // node slot -> compiled term position
	// since is the stream sequence number from which this query observes
	// events: a match is emitted only when every constituent event arrived
	// at or after it. Queries registered before the first event have 0;
	// queries added to a live session have the splice watermark, so shared
	// buffers never leak pre-registration matches into them.
	since uint64
	// negComplete are the negation specs checkable when a match completes
	// (the violation range is closed by then); negPending are the specs
	// whose violators may still arrive, forcing the pending queue.
	negComplete []predicate.NegSpec
	negPending  []predicate.NegSpec
	// negBufs buffers the in-window events of each negated position,
	// indexed like c.Negs (negComplete ++ negPending share it via spec.Pos).
	negBufs map[int][]*event.Event
}

// hasNegs reports whether the consumer carries negation state.
func (cons *consumer) hasNegs() bool { return len(cons.c.Negs) > 0 }

// edge links a node to one consuming parent; side is 0 when the node feeds
// the parent's left input, 1 for the right. A self-join parent holds two
// edges to the same child, one per side.
type edge struct {
	parent *node
	side   int
}

// crossPred is one pairwise predicate evaluated at a join node, expressed
// in child slot space: fn receives the left child's event at slot l and the
// right child's event at slot r.
type crossPred struct {
	l, r int
	fn   predicate.PairFn
}

// node is one DAG node: a leaf (event-type intake with unary filters) or a
// join over two children. Its buffer holds the sub-join's live partial
// matches — computed once however many parents and query roots consume
// them. Leaves are keyed without the window (the selection layer: one
// filtered intake per distinct type+filter set, shared across queries with
// different windows) and retain events to the widest consumer window; join
// nodes re-check their own window at combine time.
type node struct {
	key    string
	window event.Time
	slots  int
	// bufCap is the cost model's pre-size hint for the instance buffer: the
	// expected partial-match volume PM(N) of Section 4.2, evaluated under
	// the statistics the node was planned with (measured drift statistics on
	// a re-optimization splice, registration-time statistics otherwise).
	bufCap int

	// leaf fields
	leafType string
	unary    []predicate.UnaryFn
	// leafConds/leafResidual split the leaf's unary filters for the ingress
	// filter index: declarative conditions it can classify, plus opaque
	// closures it must scan. Together they cover exactly `unary`, so an
	// index verdict substitutes for running the filters.
	leafConds    []pattern.Condition
	leafResidual []predicate.UnaryFn

	// join fields
	left, right       *node
	leftMap, rightMap []int // child slot -> this node's slot
	cross             []crossPred
	needDisjoint      bool // left/right type multisets intersect

	parents   []edge
	consumers []consumer
	buffer    []*inst

	// sinceSeq is the stream sequence number from which the buffer is
	// complete: it holds every live instance all of whose constituents
	// arrived at or after it (and possibly older bonus instances from
	// backfill). 0 for nodes alive since the engine's first event; the
	// splice watermark for nodes created empty mid-stream.
	sinceSeq uint64
}

func (n *node) isLeaf() bool { return n.left == nil }

// inst is one partial match of a node's sub-join: exactly one event per
// slot (Kleene closure is outside the shareable fragment). minSeq is the
// smallest stream sequence number among the constituents — the value the
// per-consumer Since watermark filters on. seq holds the per-slot stream
// sequence numbers when the engine runs with provenance enabled, and is
// nil otherwise — the invariant is engine-wide, so no per-instance check
// is needed on the hot path.
type inst struct {
	ev     []*event.Event
	seq    []uint64
	minTS  event.Time
	maxTS  event.Time
	minSeq uint64
}

// pending is a completed match held back because a negation's violators may
// still arrive (trailing or unanchored NOT); it is emitted when the window
// closes, unless a violator kills it first.
type pending struct {
	cons     *consumer
	m        *match.Match
	deadline event.Time
	dead     bool
}

// Engine is the shared evaluation DAG: a single-goroutine detection machine
// evaluating every member query at once. Events enter at type-indexed
// leaves, partial matches propagate along parent edges (fanning out at
// shared nodes), and full matches emit at query roots tagged with the query
// name. Negation members additionally buffer their negated types and apply
// the violation checks at their root.
type Engine struct {
	nodes   []*node
	byType  map[string][]*node
	names   []string    // member query names, registration order
	negCons []*consumer // consumers carrying negation state, cached off the hot path

	// Subscription slot tables for masked (index-routed) processing.
	// Slots 0..len(negSlots)-1 address negation-buffer intakes, the rest
	// leaf intakes — so a sorted hit-slot list reproduces processOne's
	// negation-before-leaf order by construction.
	negSlots  []negSlot
	leafSlots []*node

	// Key-partitioned lanes (see partition.go): when partTotal > 1 this
	// engine owns only events whose partAttr value hashes into bucket
	// partIdx — leaf insertions of other buckets are skipped (negation
	// buffering is NOT gated: a violator must be visible to all siblings,
	// whichever lane their matches live on). family is the identity token
	// shared by the component's sibling engines; AdoptFrom unions a family's
	// buffers instead of choosing between them.
	partAttr  string
	partIdx   int
	partTotal int
	family    *partFamily

	// prov enables match provenance: instances carry per-slot stream
	// sequence numbers and every emitted match gets a Prov record whose
	// Seqs align with Events(). Set once, before the first event.
	prov bool

	now      event.Time
	nPartial int
	pendings []*pending
	closed   bool
	st       EngineStats
	out      []Tagged

	// free is the engine-local partial-match free list. The engine is a
	// single-goroutine machine, so a plain slice beats sync.Pool here: no
	// per-P shuttling, no GC-driven eviction, and the counters in pstats
	// give exact leak accounting (Live()==0 after Close).
	free   []*inst
	pstats PoolStats
}

// PoolStats counts the engine's partial-match pool traffic. Gets is the
// total number of instance acquisitions (News of them freshly allocated,
// the rest recycled), Puts the returns. Live() is the number of instances
// currently owned by node buffers — the leak tests assert it reaches zero
// after Close.
type PoolStats struct {
	News, Gets, Puts int64
}

// Live returns the number of pool-owned instances not yet returned.
func (ps PoolStats) Live() int64 { return ps.Gets - ps.Puts }

// PoolStats returns a copy of the pool counters.
func (e *Engine) PoolStats() PoolStats { return e.pstats }

// getInst acquires an instance with its event slice sized to slots. Slice
// entries beyond the previous length are always nil (putInst clears up to
// the length in use), so no re-clearing is needed on reuse.
func (e *Engine) getInst(slots int) *inst {
	e.pstats.Gets++
	if n := len(e.free); n > 0 {
		in := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		if cap(in.ev) < slots {
			in.ev = make([]*event.Event, slots)
		} else {
			in.ev = in.ev[:slots]
		}
		if e.prov {
			if cap(in.seq) < slots {
				in.seq = make([]uint64, slots)
			} else {
				in.seq = in.seq[:slots]
			}
		}
		return in
	}
	e.pstats.News++
	in := &inst{ev: make([]*event.Event, slots)}
	if e.prov {
		in.seq = make([]uint64, slots)
	}
	return in
}

// putInst returns an instance to the free list. The caller must be the sole
// owner; event references are dropped here so recycled instances never pin
// expired events.
func (e *Engine) putInst(in *inst) {
	e.pstats.Puts++
	for i := range in.ev {
		in.ev[i] = nil
	}
	e.free = append(e.free, in)
}

// Names returns the member query names in registration order.
func (e *Engine) Names() []string { return append([]string(nil), e.names...) }

// Partition describes the engine's key-partition assignment: lane idx of
// total hash buckets over the equi-join attribute attr. total <= 1 means
// the engine is unpartitioned (attr is then empty).
func (e *Engine) Partition() (idx, total int, attr string) {
	return e.partIdx, e.partTotal, e.partAttr
}

// NegSlotCount returns the number of negation-buffer subscription slots —
// the boundary below which Subscriptions' slot numbers address negation
// intakes. A partition-aware router must not key-filter hits at negation
// slots: violators belong to every sibling lane.
func (e *Engine) NegSlotCount() int { return len(e.negSlots) }

// ownsEvent reports whether a partitioned engine's leaf intakes own the
// event; an unpartitioned engine owns everything.
func (e *Engine) ownsEvent(ev *event.Event) bool {
	return e.partTotal <= 1 || PartitionBucket(ev, e.partAttr, e.partTotal) == e.partIdx
}

// Stats returns a copy of the engine counters.
func (e *Engine) Stats() EngineStats { return e.st }

// EnableProvenance switches the engine into provenance mode: instances
// thread per-slot stream sequence numbers and emitted matches carry a
// match.Prov whose Seqs exactly mirror Events(). Must be called before the
// first event is processed; a splice adopting from predecessors without
// provenance yields zero seqs for the adopted constituents, so callers
// should enable it uniformly across generations.
func (e *Engine) EnableProvenance() { e.prov = true }

// CurrentPartial returns the number of live buffered instances plus pending
// matches.
func (e *Engine) CurrentPartial() int { return e.nPartial + len(e.pendings) }

// Process consumes one event (timestamps non-decreasing) and returns the
// tagged matches it completed across all member queries. seq is the
// event's stream sequence number (strictly increasing with submission
// order); it seeds the instance watermarks the per-consumer Since filter
// compares against. The returned slice is reused by the next call.
func (e *Engine) Process(ev *event.Event, seq uint64) []Tagged {
	e.out = e.out[:0]
	e.processOne(ev, seq)
	return e.out
}

// ProcessBatch consumes a timestamp-ordered batch in one wake-up and
// returns the tagged matches of the whole batch, in stream order. seq0 is
// the stream sequence number of the first event; the i-th event carries
// seq0+i. Semantically identical to calling Process per event; the batch
// form amortizes the output reset and lets one queue item carry many
// events. The returned slice is reused by the next call.
func (e *Engine) ProcessBatch(evs []*event.Event, seq0 uint64) []Tagged {
	e.out = e.out[:0]
	for i, ev := range evs {
		e.processOne(ev, seq0+uint64(i))
	}
	return e.out
}

func (e *Engine) processOne(ev *event.Event, seq uint64) {
	e.st.Processed++
	e.now = ev.TS

	e.expirePendings()
	e.killPendings(ev)

	// Buffer negated positions first: an arriving negated-type event must be
	// visible to the violation checks of any match completed by this very
	// call (it may serve a positive leaf and a negated position at once).
	for _, cons := range e.negCons {
		for _, spec := range cons.c.Negs {
			pos := spec.Pos
			if cons.c.Types[pos] == ev.Type && cons.c.Preds.CheckUnary(pos, ev) {
				cons.negBufs[pos] = append(cons.negBufs[pos], ev)
			}
		}
	}

	if e.ownsEvent(ev) {
		for _, leaf := range e.byType[ev.Type] {
			ok := true
			for _, fn := range leaf.unary {
				if !fn(ev) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			in := e.getInst(1)
			in.ev[0] = ev
			if e.prov {
				in.seq[0] = seq
			}
			in.minTS, in.maxTS, in.minSeq = ev.TS, ev.TS, seq
			e.insert(leaf, in)
		}
	}
	if e.st.Processed%compactEvery == 0 {
		e.compact()
	}
}

// negSlot is one negation-buffer intake: events of the negated position's
// type passing its unary filters are buffered on the consumer.
type negSlot struct {
	cons *consumer
	pos  int
}

// Sub describes one event intake of the DAG for registration with the
// ingress filter index: an event of Type satisfying every condition in
// Conds and every opaque filter in Residual belongs to the intake
// addressed by Slot.
type Sub struct {
	Slot     int
	Type     string
	Conds    []pattern.Condition
	Residual []predicate.UnaryFn
}

// Subscriptions enumerates the engine's event intakes — negation buffers
// first, then leaves, matching the slot tables masked processing consumes.
func (e *Engine) Subscriptions() []Sub {
	out := make([]Sub, 0, len(e.negSlots)+len(e.leafSlots))
	for i, ns := range e.negSlots {
		var conds []pattern.Condition
		var res []predicate.UnaryFn
		for _, u := range ns.cons.c.Preds.Unaries(ns.pos) {
			if u.HasCond {
				conds = append(conds, u.Cond)
			} else {
				res = append(res, u.Fn)
			}
		}
		out = append(out, Sub{Slot: i, Type: ns.cons.c.Types[ns.pos], Conds: conds, Residual: res})
	}
	for j, leaf := range e.leafSlots {
		out = append(out, Sub{
			Slot: len(e.negSlots) + j, Type: leaf.leafType,
			Conds: leaf.leafConds, Residual: leaf.leafResidual,
		})
	}
	return out
}

// ProcessSelected consumes one event the ingress filter index already
// matched against this engine's subscriptions. slots is the sorted
// ascending list of hit subscription slots; type dispatch and unary
// filtering are NOT re-run — the verdict stands in for them. Semantically
// identical to Process for any event whose slot list is exact. The
// returned slice is reused by the next call.
func (e *Engine) ProcessSelected(ev *event.Event, seq uint64, slots []int32) []Tagged {
	e.out = e.out[:0]
	e.processSelected(ev, seq, slots)
	return e.out
}

// ProcessBatchSelected is the batched form of ProcessSelected: sel lists
// the matched events' indices within evs (ascending), and the k-th
// selected event's slot list is slots[slotOff[k]:slotOff[k+1]]. The i-th
// event of evs carries sequence number seq0+i, exactly as in ProcessBatch.
func (e *Engine) ProcessBatchSelected(evs []*event.Event, seq0 uint64, sel, slotOff, slots []int32) []Tagged {
	e.out = e.out[:0]
	for k, i := range sel {
		e.processSelected(evs[i], seq0+uint64(i), slots[slotOff[k]:slotOff[k+1]])
	}
	return e.out
}

func (e *Engine) processSelected(ev *event.Event, seq uint64, slots []int32) {
	e.st.Processed++
	e.now = ev.TS

	e.expirePendings()
	nneg := len(e.negSlots)
	k := 0
	if k < len(slots) && int(slots[k]) < nneg {
		// Only an event satisfying some negated position's type+filters can
		// violate a pending match (oracle.Violates re-checks both), and any
		// such event hits that position's negation slot.
		e.killPendings(ev)
		for ; k < len(slots) && int(slots[k]) < nneg; k++ {
			ns := e.negSlots[slots[k]]
			ns.cons.negBufs[ns.pos] = append(ns.cons.negBufs[ns.pos], ev)
		}
	}
	// The engine-side ownership gate backstops the router: an index-routed
	// hit list may include leaf slots of events another sibling owns (the
	// router filters them too, but the double check keeps correctness
	// independent of the routing path).
	if k < len(slots) && e.ownsEvent(ev) {
		for ; k < len(slots); k++ {
			leaf := e.leafSlots[int(slots[k])-nneg]
			in := e.getInst(1)
			in.ev[0] = ev
			if e.prov {
				in.seq[0] = seq
			}
			in.minTS, in.maxTS, in.minSeq = ev.TS, ev.TS, seq
			e.insert(leaf, in)
		}
	}
	if e.st.Processed%compactEvery == 0 {
		e.compact()
	}
}

// insert registers an instance at a node: it emits at every query root
// anchored here, then — if any parent consumes this sub-join — buffers the
// instance and combines it with each parent's sibling buffer, recursing
// towards the roots. This is the fan-out: one insertion serves every
// consuming plan.
func (e *Engine) insert(n *node, in *inst) {
	e.st.Created++
	for i := range n.consumers {
		e.emit(&n.consumers[i], in)
	}
	if len(n.parents) == 0 {
		// Pure root: nothing buffers the instance, so it dies here — emit
		// copies the events out, the instance itself recycles.
		e.putInst(in)
		return
	}
	n.buffer = append(n.buffer, in)
	e.nPartial++
	if cur := e.CurrentPartial(); cur > e.st.PeakPartial {
		e.st.PeakPartial = cur
	}
	for _, ed := range n.parents {
		p := ed.parent
		sib := p.right
		if ed.side == 1 {
			sib = p.left
		}
		// Snapshot: recursive inserts only extend ancestors' buffers, never
		// the sibling's — except in the self-join case (sib == n), where the
		// snapshot already contains `in` itself and the event-disjointness
		// check rejects the self-pairing.
		sibBuf := sib.buffer
		for _, other := range sibBuf {
			li, ri := in, other
			if ed.side == 1 {
				li, ri = other, in
			}
			if merged := e.combine(p, li, ri); merged != nil {
				e.insert(p, merged)
			}
		}
	}
}

// combine merges a left and right child instance at a join node if window,
// event-disjointness and the node's pairwise predicates allow.
func (e *Engine) combine(p *node, li, ri *inst) *inst {
	e.st.Probes++
	min, max := li.minTS, li.maxTS
	if ri.minTS < min {
		min = ri.minTS
	}
	if ri.maxTS > max {
		max = ri.maxTS
	}
	if max-min > p.window {
		return nil
	}
	if e.now-min > p.window {
		return nil // expired instance on the other side
	}
	if p.needDisjoint {
		// An event may fill at most one slot: with type-disjoint children
		// this cannot trigger, but queries may repeat a type (self-joins).
		for _, a := range li.ev {
			for _, b := range ri.ev {
				if a == b {
					return nil
				}
			}
		}
	}
	for _, cp := range p.cross {
		if !cp.fn(li.ev[cp.l], ri.ev[cp.r]) {
			return nil
		}
	}
	merged := e.getInst(p.slots)
	merged.minTS, merged.maxTS, merged.minSeq = min, max, li.minSeq
	if ri.minSeq < merged.minSeq {
		merged.minSeq = ri.minSeq
	}
	for i, s := range p.leftMap {
		merged.ev[s] = li.ev[i]
	}
	for i, s := range p.rightMap {
		merged.ev[s] = ri.ev[i]
	}
	if e.prov {
		for i, s := range p.leftMap {
			merged.seq[s] = li.seq[i]
		}
		for i, s := range p.rightMap {
			merged.seq[s] = ri.seq[i]
		}
	}
	return merged
}

// emit materializes a root instance as one query's match, remapping node
// slots to the query's compiled term positions, filtering by the consumer's
// Since watermark and applying its negation checks.
func (e *Engine) emit(cons *consumer, in *inst) {
	if in.minSeq < cons.since {
		return // predates the query's registration
	}
	m := match.New(cons.c.N)
	// One flat backing array serves every position group: a single allocation
	// instead of one per slot. The 3-arg slice caps each group at length 1 so
	// a consumer appending to a group cannot clobber its neighbor's slot.
	flat := make([]*event.Event, len(in.ev))
	for slot, ev := range in.ev {
		flat[slot] = ev
		m.Positions[cons.termOf[slot]] = flat[slot : slot+1 : slot+1]
	}
	if e.prov {
		// Seqs mirror Events(): events flatten in term-position order, so
		// each slot's seq lands at the rank of its term position among the
		// instance's slots. The quadratic scan is over ≤ a handful of slots.
		seqs := make([]uint64, len(in.ev))
		for slot := range in.ev {
			rank := 0
			for other := range in.ev {
				if cons.termOf[other] < cons.termOf[slot] {
					rank++
				}
			}
			seqs[rank] = in.seq[slot]
		}
		m.Prov = &match.Prov{Seqs: seqs}
	}
	for _, spec := range cons.negComplete {
		if e.violated(cons, m, spec) {
			e.st.NegKilled++
			return
		}
	}
	if len(cons.negPending) > 0 {
		for _, spec := range cons.negPending {
			if e.violated(cons, m, spec) {
				e.st.NegKilled++
				return
			}
		}
		e.pendings = append(e.pendings, &pending{
			cons: cons, m: m, deadline: in.minTS + cons.c.Window,
		})
		if cur := e.CurrentPartial(); cur > e.st.PeakPartial {
			e.st.PeakPartial = cur
		}
		return
	}
	e.deliver(cons, m)
}

// deliver appends one tagged match to the output batch.
func (e *Engine) deliver(cons *consumer, m *match.Match) {
	e.st.Matches++
	e.out = append(e.out, Tagged{Query: cons.name, M: m})
}

// violated reports whether a buffered in-window event of the spec's negated
// type invalidates the match.
func (e *Engine) violated(cons *consumer, m *match.Match, spec predicate.NegSpec) bool {
	for _, b := range cons.negBufs[spec.Pos] {
		if e.now-b.TS > cons.c.Window {
			continue
		}
		if oracle.Violates(cons.c, m, spec, b) {
			return true
		}
	}
	return false
}

// expirePendings emits pending matches whose negation verdict can no longer
// change (the window closed without a violator).
func (e *Engine) expirePendings() {
	if len(e.pendings) == 0 {
		return
	}
	keep := e.pendings[:0]
	for _, pd := range e.pendings {
		switch {
		case pd.dead:
		case pd.deadline < e.now:
			e.deliver(pd.cons, pd.m)
		default:
			keep = append(keep, pd)
		}
	}
	for i := len(keep); i < len(e.pendings); i++ {
		e.pendings[i] = nil
	}
	e.pendings = keep
}

// killPendings marks pending matches violated by the arriving event.
func (e *Engine) killPendings(ev *event.Event) {
	for _, pd := range e.pendings {
		if pd.dead {
			continue
		}
		for _, spec := range pd.cons.negPending {
			if oracle.Violates(pd.cons.c, pd.m, spec, ev) {
				pd.dead = true
				e.st.NegKilled++
				break
			}
		}
	}
}

// compact sweeps expired instances from every buffering node and expired
// events from the negation buffers.
func (e *Engine) compact() {
	total := 0
	for _, n := range e.nodes {
		if len(n.parents) == 0 {
			continue
		}
		keep := n.buffer[:0]
		for _, in := range n.buffer {
			if e.now-in.minTS > n.window {
				e.putInst(in)
				continue
			}
			keep = append(keep, in)
		}
		// Release the dropped tail so expired instances are collectable.
		for i := len(keep); i < len(n.buffer); i++ {
			n.buffer[i] = nil
		}
		n.buffer = keep
		total += len(keep)
	}
	e.nPartial = total
	for _, cons := range e.negCons {
		for pos, buf := range cons.negBufs {
			i := 0
			for i < len(buf) && e.now-buf[i].TS > cons.c.Window {
				i++
			}
			cons.negBufs[pos] = buf[i:]
		}
	}
}

// Flush ends the stream: pending matches whose violator never arrived are
// released, tagged like regular emissions.
func (e *Engine) Flush() []Tagged {
	e.closed = true
	e.out = e.out[:0]
	for _, pd := range e.pendings {
		if !pd.dead {
			e.deliver(pd.cons, pd.m)
		}
	}
	e.pendings = nil
	return e.out
}

// Close releases the engine's buffers, returning every buffered instance to
// the pool (leak tests assert PoolStats().Live() == 0 afterwards).
func (e *Engine) Close() {
	e.closed = true
	for _, n := range e.nodes {
		for _, in := range n.buffer {
			e.putInst(in)
		}
		n.buffer = nil
	}
	e.pendings = nil
	e.nPartial = 0
}

// AdoptFrom transfers the live detection state of the predecessor engines
// into this (freshly built, never processed) engine — the splice step of
// incremental re-optimization. Nodes are matched by canonical key: a
// buffer present in a predecessor (preferring the source complete from the
// earliest watermark) is copied; a buffering node with no source is
// backfilled bottom-up by re-joining its children's buffers, so replanning
// a surviving query never loses the partial matches its old tree had
// accumulated. Consumers recover their negation buffers and pending
// matches by query name. spliceSeq is the watermark stamped on nodes that
// cannot be reconstructed (their sub-join was never live before).
//
// Adopted buffers are deep copies drawn from this engine's own instance
// pool: several successors may adopt from the same predecessors, and a
// predecessor's Close recycles its instances into its own free list — so
// no instance may be shared across engines.
//
// The caller must guarantee quiescence: no Process call may be in flight on
// any engine involved, and the predecessors are discarded afterwards.
func (e *Engine) AdoptFrom(olds []*Engine, spliceSeq uint64) {
	// Only the stream clock carries over (every predecessor saw the same
	// broadcast events, so max is the true count and keeps the compaction
	// cadence). Matches/Created restart at zero: they are per-engine-
	// lifetime counters, and summing predecessors would multiply-count
	// history when one splice fans out into several successor lanes.
	for _, old := range olds {
		if old.st.Processed > e.st.Processed {
			e.st.Processed = old.st.Processed
		}
		if old.now > e.now {
			e.now = old.now
		}
	}

	// Index predecessor nodes by key, keeping the most complete source.
	// Partition siblings (engines sharing a family token) are slices of one
	// logical buffer: each family contributes ONE candidate per key whose
	// buffer is the union of the siblings' buffers — disjoint by
	// construction, so concatenation never duplicates — and whose watermark
	// is the max (most conservative) sinceSeq across the members holding the
	// node. Unrelated predecessors remain independent alternatives, compared
	// by earliest watermark as before.
	type source struct {
		sinceSeq uint64
		bufs     [][]*inst
		n        int
	}
	grouped := map[*partFamily][]*Engine{}
	var order []*partFamily // deterministic group iteration, olds order
	for _, old := range olds {
		fam := old.family
		if fam == nil {
			fam = &partFamily{} // singleton group
		}
		if _, ok := grouped[fam]; !ok {
			order = append(order, fam)
		}
		grouped[fam] = append(grouped[fam], old)
	}
	best := map[string]*source{}
	for _, fam := range order {
		cands := map[string]*source{}
		for _, old := range grouped[fam] {
			for _, n := range old.nodes {
				if len(n.parents) == 0 {
					continue // never buffered: not a usable source
				}
				c := cands[n.key]
				if c == nil {
					c = &source{sinceSeq: n.sinceSeq}
					cands[n.key] = c
				}
				if n.sinceSeq > c.sinceSeq {
					c.sinceSeq = n.sinceSeq
				}
				c.bufs = append(c.bufs, n.buffer)
				c.n += len(n.buffer)
			}
		}
		for key, c := range cands {
			if cur, ok := best[key]; !ok || c.sinceSeq < cur.sinceSeq {
				best[key] = c
			}
		}
	}

	// e.nodes is in build order (children precede parents), so a backfill
	// always finds its children's buffers already settled.
	for _, n := range e.nodes {
		if len(n.parents) == 0 && len(n.consumers) > 0 && !n.isLeaf() {
			// Pure roots never buffer; completeness is inherited lazily from
			// the children at combine time.
			n.sinceSeq = 0
		}
		if len(n.parents) == 0 {
			continue
		}
		if src, ok := best[n.key]; ok {
			n.sinceSeq = src.sinceSeq
			capHint := src.n
			if n.bufCap > capHint {
				capHint = n.bufCap
			}
			n.buffer = make([]*inst, 0, capHint)
			for _, buf := range src.bufs {
				for _, in := range buf {
					if e.now-in.minTS > n.window {
						continue
					}
					// A partitioned adopter keeps only instances it owns:
					// every constituent in its bucket. Mixed-bucket
					// instances are dropped by all siblings — they can
					// never complete (see adoptKeep).
					if !e.adoptKeep(in) {
						continue
					}
					cp := e.getInst(len(in.ev))
					copy(cp.ev, in.ev)
					if e.prov && len(in.seq) == len(in.ev) {
						copy(cp.seq, in.seq)
					}
					cp.minTS, cp.maxTS, cp.minSeq = in.minTS, in.maxTS, in.minSeq
					n.buffer = append(n.buffer, cp)
				}
			}
			continue
		}
		if n.isLeaf() {
			// Raw events are gone; the leaf restarts at the splice.
			n.sinceSeq = spliceSeq
			continue
		}
		// Backfill: the sub-join was not materialized before, but both
		// children carry buffers — recompute the cross product once, during
		// the splice pause. Completeness is bounded by the children's.
		n.sinceSeq = n.left.sinceSeq
		if n.right.sinceSeq > n.sinceSeq {
			n.sinceSeq = n.right.sinceSeq
		}
		for _, li := range n.left.buffer {
			for _, ri := range n.right.buffer {
				if merged := e.combine(n, li, ri); merged != nil {
					n.buffer = append(n.buffer, merged)
					e.st.Backfilled++
				}
			}
		}
	}
	total := 0
	for _, n := range e.nodes {
		total += len(n.buffer)
	}
	e.nPartial = total
	if cur := e.CurrentPartial(); cur > e.st.PeakPartial {
		e.st.PeakPartial = cur
	}

	// Surviving consumers recover negation buffers and pending matches.
	byName := map[string]*consumer{}
	for _, n := range e.nodes {
		for ci := range n.consumers {
			byName[n.consumers[ci].name] = &n.consumers[ci]
		}
	}
	for _, old := range olds {
		for _, n := range old.nodes {
			for ci := range n.consumers {
				oc := &n.consumers[ci]
				nc := byName[oc.name]
				if nc == nil || !nc.hasNegs() {
					continue
				}
				for pos, buf := range oc.negBufs {
					nc.negBufs[pos] = append(nc.negBufs[pos], buf...)
				}
			}
		}
		for _, pd := range old.pendings {
			if pd.dead {
				continue
			}
			nc := byName[pd.cons.name]
			if nc == nil {
				continue
			}
			if e.partTotal > 1 {
				// A pending match migrates to the one sibling that owns its
				// key: a keyed member's complete match is key-uniform, so
				// the first positive event's bucket decides ownership.
				evs := pd.m.Positions[nc.c.Positives[0]]
				if len(evs) == 0 ||
					PartitionBucket(evs[0], e.partAttr, e.partTotal) != e.partIdx {
					continue
				}
			}
			e.pendings = append(e.pendings, &pending{
				cons: nc, m: pd.m, deadline: pd.deadline,
			})
		}
	}

	// Partition siblings buffer negation events ungated (a violator must be
	// visible on every lane), so a family's members carry identical negation
	// buffers and the concatenation above duplicates them. Dedupe by event
	// pointer, preserving first-seen (arrival) order — compact() expires a
	// sorted prefix and relies on it.
	for _, nc := range byName {
		if !nc.hasNegs() {
			continue
		}
		for pos, buf := range nc.negBufs {
			if len(buf) < 2 {
				continue
			}
			seen := make(map[*event.Event]bool, len(buf))
			keep := buf[:0]
			for _, ev := range buf {
				if seen[ev] {
					continue
				}
				seen[ev] = true
				keep = append(keep, ev)
			}
			nc.negBufs[pos] = keep
		}
	}
}

// Describe renders the DAG for logs and debugging: each node with its leaf
// span, consumer count and parent fan-out, roots labelled with their query
// names.
func (e *Engine) Describe() string {
	var b strings.Builder
	for i, n := range e.nodes {
		span := n.leafType
		if !n.isLeaf() {
			types := make([]string, len(n.slots2types()))
			copy(types, n.slots2types())
			span = strings.Join(types, "⋈")
		}
		fmt.Fprintf(&b, "node %d: %s fanout=%d", i, span, len(n.parents))
		if len(n.consumers) > 0 {
			names := make([]string, len(n.consumers))
			for k, c := range n.consumers {
				names[k] = c.name
				if len(c.c.Negs) > 0 {
					names[k] += "¬"
				}
			}
			sort.Strings(names)
			fmt.Fprintf(&b, " roots=[%s]", strings.Join(names, " "))
		}
		b.WriteString("\n")
	}
	return b.String()
}

// slots2types lists the event types slot by slot for diagnostics.
func (n *node) slots2types() []string {
	if n.isLeaf() {
		return []string{n.leafType}
	}
	out := make([]string, n.slots)
	for i, s := range n.leftMap {
		out[s] = n.left.slots2types()[i]
	}
	for i, s := range n.rightMap {
		out[s] = n.right.slots2types()[i]
	}
	return out
}
