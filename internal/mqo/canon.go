// Package mqo is the multi-query shared-subplan optimizer: given the
// compiled tree-based plans of the queries registered in a Session, it
// canonicalizes every plan subtree (positive event-type multiset, predicate
// set and window), detects common subexpressions across queries, selects
// which to materialize once with a cost-model-driven greedy selector, and
// builds a shared evaluation DAG in which each common sub-join buffer is
// computed once and its partial matches fan out to every consuming query's
// residual plan.
//
// Sharing is restricted to queries whose positive match sets are provably
// plan-independent — single conjunctive or sequence disjuncts without
// Kleene closure under skip-till-any-match — so the shared DAG produces,
// per query, exactly the matches of unshared evaluation. Negation patterns
// participate through their positive core: the canonical signatures below
// range over the positive planning positions only, and each consuming
// query's negation checks are applied at its root (see engine.go), never
// inside a shared sub-join.
//
// The DAG is dynamic: queries carry a Since watermark (the stream sequence
// number from which they observe events), engines can adopt the buffered
// state of predecessor engines on a live re-optimization (Engine.AdoptFrom),
// and missing sub-join buffers are backfilled bottom-up from surviving
// children, so registering or deregistering a query never drops or
// duplicates the matches of the others.
package mqo

import (
	"fmt"
	"regexp"
	"sort"
	"strings"

	"repro/internal/predicate"
)

// Canonical signatures are alias-free renderings of the compiled predicate
// tables: two subtrees of different queries share a canonical key exactly
// when there is a leaf bijection under which their event types, unary
// filters, pairwise predicates and window coincide — i.e. when they compute
// the same sub-join. Aliases are query-local names, so every predicate
// description is rewritten with positional placeholders before comparison.

// aliasRe builds a single-pass replacement regexp for attribute references
// `alias.attr` of the given aliases.
func aliasRe(aliases ...string) *regexp.Regexp {
	quoted := make([]string, len(aliases))
	for i, a := range aliases {
		quoted[i] = regexp.QuoteMeta(a)
	}
	return regexp.MustCompile(`\b(` + strings.Join(quoted, "|") + `)\.`)
}

// normUnary rewrites a unary predicate description, replacing the
// position's alias with a positional placeholder.
func normUnary(desc, alias string) string {
	re := aliasRe(alias)
	return re.ReplaceAllString(desc, "$$self.")
}

// normPair rewrites a pairwise predicate description between term positions
// i < j, replacing alias(i) with $x and alias(j) with $y in one pass.
func normPair(desc, aliasI, aliasJ string) string {
	re := aliasRe(aliasI, aliasJ)
	return re.ReplaceAllStringFunc(desc, func(m string) string {
		switch strings.TrimSuffix(m, ".") {
		case aliasI:
			return "$x."
		default:
			return "$y."
		}
	})
}

// leafSig is the canonical signature of one term position: its event type
// plus the sorted set of normalized unary filter descriptions.
func leafSig(c *predicate.Compiled, pos int) string {
	descs := []string(nil)
	for _, u := range c.Preds.Unaries(pos) {
		descs = append(descs, normUnary(u.Desc, c.Aliases[pos]))
	}
	sort.Strings(descs)
	return c.Types[pos] + "{" + strings.Join(descs, "&") + "}"
}

// pairSig is the canonical signature of the predicates between term
// positions i < j, oriented so that $x refers to i and $y to j. The empty
// string means no predicate links the pair.
func pairSig(c *predicate.Compiled, i, j int) string {
	pairs := c.Preds.Pairs(i, j)
	if len(pairs) == 0 {
		return ""
	}
	descs := make([]string, 0, len(pairs))
	for _, p := range pairs {
		descs = append(descs, normPair(p.Desc, c.Aliases[p.I], c.Aliases[p.J]))
	}
	sort.Strings(descs)
	return strings.Join(descs, "&")
}

// sigCache memoizes the canonical signatures of one compiled pattern over
// its PLANNING positions — the positive events the planner ranges over.
// term maps planning position -> compiled term position (stats.TermIndex);
// for negation-free patterns it is the identity, for negation patterns it
// skips the negated terms, so the cache describes exactly the positive core
// that a shared sub-join may compute. Leaf and pair signatures depend only
// on (pattern, position), but subsetKey is evaluated for every position
// subset during candidate enumeration and for every tree node on every
// objective evaluation — without the cache each evaluation would recompile
// the alias regexps from scratch.
type sigCache struct {
	c    *predicate.Compiled
	term []int      // planning position -> compiled term position
	leaf []string   // indexed by planning position
	pair [][]string // pair[i][j] for planning i < j; "" when no predicate links them
}

func newSigCache(c *predicate.Compiled, term []int) *sigCache {
	n := len(term)
	sc := &sigCache{c: c, term: term, leaf: make([]string, n), pair: make([][]string, n)}
	for i := 0; i < n; i++ {
		sc.leaf[i] = leafSig(c, term[i])
		sc.pair[i] = make([]string, n)
		for j := i + 1; j < n; j++ {
			// TermIndex is strictly increasing, so planning order preserves
			// term order and the i < j orientation survives the mapping.
			sc.pair[i][j] = pairSig(c, term[i], term[j])
		}
	}
	return sc
}

// oriented renders the predicates between canonical slots holding term
// positions pa and pb: the stored pair is normalized to pa < pb, so a
// reversed slot order flips the orientation marker instead of the
// description.
func (sc *sigCache) oriented(pa, pb int) string {
	if pa < pb {
		if s := sc.pair[pa][pb]; s != "" {
			return ">" + s
		}
		return ""
	}
	if s := sc.pair[pb][pa]; s != "" {
		return "<" + s
	}
	return ""
}

// canonOrder sorts the subset of term positions into canonical slot order:
// primarily by leaf signature, refined (for duplicate signatures) by one
// Weisfeiler-Leman-style round over the incident pairwise predicates, with
// the query-local position index as the final tie-break. The tie-break is
// query-local, so ambiguous automorphic duplicates may canonicalize
// differently across queries — which only misses a sharing opportunity; it
// can never alias two semantically different subtrees, because the full
// slot-indexed predicate matrix is part of the canonical key.
func canonOrder(sc *sigCache, subset []int) []int {
	order := append([]int(nil), subset...)
	refined := make(map[int]string, len(order))
	for _, p := range order {
		inc := []string(nil)
		for _, q := range order {
			if q == p {
				continue
			}
			if s := sc.oriented(p, q); s != "" {
				inc = append(inc, s+"@"+sc.leaf[q])
			}
		}
		sort.Strings(inc)
		refined[p] = strings.Join(inc, ";")
	}
	sort.Slice(order, func(a, b int) bool {
		pa, pb := order[a], order[b]
		if sc.leaf[pa] != sc.leaf[pb] {
			return sc.leaf[pa] < sc.leaf[pb]
		}
		if refined[pa] != refined[pb] {
			return refined[pa] < refined[pb]
		}
		return pa < pb
	})
	return order
}

// subsetKey computes the canonical key of the sub-join over the given term
// positions and the canonical slot order behind it: window, the leaf
// signatures slot by slot, and the full slot-indexed matrix of oriented
// pairwise predicate signatures. Two equal keys denote semantically
// identical sub-joins.
func subsetKey(sc *sigCache, subset []int) (string, []int) {
	ord := canonOrder(sc, subset)
	var b strings.Builder
	fmt.Fprintf(&b, "w%d|", sc.c.Window)
	for i, p := range ord {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(sc.leaf[p])
	}
	b.WriteByte('|')
	for a := 0; a < len(ord); a++ {
		for bIdx := a + 1; bIdx < len(ord); bIdx++ {
			s := sc.oriented(ord[a], ord[bIdx])
			if s == "" {
				continue
			}
			fmt.Fprintf(&b, "(%d,%d)%s;", a, bIdx, s)
		}
	}
	return b.String(), ord
}
