// Package metrics instruments engine runs with the three performance
// measures of the paper's evaluation: throughput (events/second processed
// during detection), memory (peak partial-match and buffer state, the
// quantity the cost models of Section 4 predict), and detection latency
// (Section 6.1).
package metrics

import (
	"time"

	"repro/internal/event"
	"repro/internal/match"
	"repro/internal/telemetry"
)

// Engine abstracts the two evaluation engines for measurement.
type Engine interface {
	Process(*event.Event) []*match.Match
	Flush() []*match.Match
	CurrentPartial() int
	CurrentBuffered() int
}

// Result summarises one measured run.
type Result struct {
	Events       int
	Matches      int64
	Elapsed      time.Duration
	Throughput   float64 // events per second of wall time
	PeakPartial  int     // peak live partial matches / instances
	PeakBuffered int     // peak buffered events
	EstBytes     int64   // rough memory estimate of the peak state
	// AvgLatency is the mean wall time between the arrival of a match's
	// completing event and its emission (pending-queue waits, which depend
	// on stream time rather than computation, are excluded).
	AvgLatency time.Duration
	// Truncated reports that the run was aborted because the live
	// partial-match count exceeded the configured limit — the fate of a
	// catastrophically bad plan. Throughput then reflects the processed
	// prefix, which is the honest signal (the plan is slow).
	Truncated bool
	// Latency is the full per-match latency distribution behind AvgLatency
	// (nanosecond samples, log-bucketed, mergeable across runs) — the same
	// histogram primitive the live telemetry layer exposes.
	Latency telemetry.HistSnapshot
}

// Memory-estimate coefficients: a partial match holds a position table and
// bounds; a buffered event is shared but owned by its buffer slot.
const (
	bytesPerPartialBase = 64
	bytesPerPosition    = 24
	bytesPerBuffered    = 112
)

// Run feeds the events through the engine, sampling state after every event.
// nPositions sizes the per-partial-match memory estimate.
func Run(e Engine, events []*event.Event, nPositions int) Result {
	return RunLimit([]Engine{e}, events, nPositions, 0)
}

// RunAll feeds the events through several engines (one per DNF disjunct of
// a nested pattern), aggregating the measures. Matches are summed;
// state peaks are summed across engines at each sample point.
func RunAll(engines []Engine, events []*event.Event, nPositions int) Result {
	return RunLimit(engines, events, nPositions, 0)
}

// RunLimit is RunAll with a live-partial-match ceiling: when the combined
// live state exceeds maxPartial (0 = unlimited) the run is aborted and
// marked Truncated.
func RunLimit(engines []Engine, events []*event.Event, nPositions int, maxPartial int) Result {
	res := Result{Events: len(events)}
	var (
		latency      telemetry.Histogram
		peakPartial  telemetry.Peak
		peakBuffered telemetry.Peak
	)
	start := time.Now()
	processed := 0
	for _, ev := range events {
		t0 := time.Now()
		emitted := 0
		for _, e := range engines {
			emitted += len(e.Process(ev))
		}
		if emitted > 0 {
			res.Matches += int64(emitted)
			latency.ObserveN(time.Since(t0).Nanoseconds(), int64(emitted))
		}
		partial, buffered := 0, 0
		for _, e := range engines {
			partial += e.CurrentPartial()
			buffered += e.CurrentBuffered()
		}
		peakPartial.Observe(int64(partial))
		peakBuffered.Observe(int64(buffered))
		processed++
		if maxPartial > 0 && partial > maxPartial {
			res.Truncated = true
			break
		}
	}
	for _, e := range engines {
		res.Matches += int64(len(e.Flush()))
	}
	res.Events = processed
	res.Elapsed = time.Since(start)
	if res.Elapsed > 0 {
		res.Throughput = float64(processed) / res.Elapsed.Seconds()
	}
	res.PeakPartial = int(peakPartial.Load())
	res.PeakBuffered = int(peakBuffered.Load())
	res.Latency = latency.Snapshot()
	res.AvgLatency = res.Latency.MeanDuration()
	res.EstBytes = int64(res.PeakPartial)*int64(bytesPerPartialBase+bytesPerPosition*nPositions) +
		int64(res.PeakBuffered)*bytesPerBuffered
	return res
}

// OutputProfiler implements the Section 6.1 output profiler: it records
// which term position's event arrives last in emitted matches, so that a
// latency anchor can be chosen for conjunction patterns.
type OutputProfiler struct {
	counts map[int]int64
}

// NewOutputProfiler returns an empty profiler.
func NewOutputProfiler() *OutputProfiler {
	return &OutputProfiler{counts: make(map[int]int64)}
}

// Observe records the position whose event has the latest timestamp.
func (p *OutputProfiler) Observe(m *match.Match) {
	best := -1
	var bestTS event.Time
	for pos, group := range m.Positions {
		for _, e := range group {
			if best == -1 || e.TS > bestTS {
				best, bestTS = pos, e.TS
			}
		}
	}
	if best >= 0 {
		p.counts[best]++
	}
}

// MostFrequentLast returns the term position that most often arrives last,
// or -1 if nothing was observed.
func (p *OutputProfiler) MostFrequentLast() int {
	best, bestCount := -1, int64(0)
	for pos, c := range p.counts {
		if c > bestCount || (c == bestCount && best >= 0 && pos < best) {
			best, bestCount = pos, c
		}
	}
	return best
}

// Observations returns the total number of observed matches.
func (p *OutputProfiler) Observations() int64 {
	var total int64
	for _, c := range p.counts {
		total += c
	}
	return total
}
