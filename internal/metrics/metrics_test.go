package metrics

import (
	"testing"

	"repro/internal/event"
	"repro/internal/match"
	"repro/internal/nfa"
	"repro/internal/pattern"
	"repro/internal/predicate"
)

// (the truncation test drives an AND pattern whose partial matches grow
// with every A event, so a small limit trips quickly)

var (
	schemaA = event.NewSchema("A", "x")
	schemaB = event.NewSchema("B", "x")
)

func engine(t *testing.T) *nfa.Engine {
	t.Helper()
	p := pattern.Seq(10, pattern.E("A", "a"), pattern.E("B", "b"))
	c, err := predicate.Compile(p, predicate.SkipTillAnyMatch)
	if err != nil {
		t.Fatal(err)
	}
	e, err := nfa.New(c, []int{0, 1}, nfa.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func testEvents() []*event.Event {
	return event.Drain(event.NewSliceStream([]*event.Event{
		event.New(schemaA, 1, 0),
		event.New(schemaA, 2, 0),
		event.New(schemaB, 3, 0),
	}))
}

func TestRunCounts(t *testing.T) {
	res := Run(engine(t), testEvents(), 2)
	if res.Events != 3 {
		t.Fatalf("Events = %d", res.Events)
	}
	if res.Matches != 2 {
		t.Fatalf("Matches = %d", res.Matches)
	}
	if res.Throughput <= 0 {
		t.Fatalf("Throughput = %g", res.Throughput)
	}
	if res.PeakPartial < 2 || res.PeakBuffered < 2 {
		t.Fatalf("peaks = %d, %d", res.PeakPartial, res.PeakBuffered)
	}
	if res.EstBytes <= 0 {
		t.Fatalf("EstBytes = %d", res.EstBytes)
	}
	if res.AvgLatency <= 0 {
		t.Fatalf("AvgLatency = %v", res.AvgLatency)
	}
}

func TestRunAllAggregates(t *testing.T) {
	e1, e2 := engine(t), engine(t)
	res := RunAll([]Engine{e1, e2}, testEvents(), 2)
	if res.Matches != 4 { // both engines find both matches
		t.Fatalf("Matches = %d", res.Matches)
	}
	if res.PeakPartial < 4 {
		t.Fatalf("PeakPartial = %d", res.PeakPartial)
	}
}

func TestRunLimitTruncates(t *testing.T) {
	// A permissive conjunction accumulates partial matches fast; a tiny
	// ceiling must abort the run and mark it truncated.
	p := pattern.And(1000, pattern.E("A", "a"), pattern.E("B", "b"))
	c, err := predicate.Compile(p, predicate.SkipTillAnyMatch)
	if err != nil {
		t.Fatal(err)
	}
	e, err := nfa.New(c, []int{0, 1}, nfa.Config{})
	if err != nil {
		t.Fatal(err)
	}
	var events []*event.Event
	for i := 0; i < 100; i++ {
		events = append(events, event.New(schemaA, event.Time(i), 0))
	}
	events = event.Drain(event.NewSliceStream(events))
	res := RunLimit([]Engine{e}, events, 2, 10)
	if !res.Truncated {
		t.Fatal("run not truncated")
	}
	if res.Events >= 100 {
		t.Fatalf("processed %d events despite truncation", res.Events)
	}
	if res.Throughput <= 0 {
		t.Fatal("truncated run must still report throughput of the prefix")
	}
}

func TestOutputProfiler(t *testing.T) {
	p := NewOutputProfiler()
	if p.MostFrequentLast() != -1 {
		t.Fatal("empty profiler should return -1")
	}
	mk := func(ts0, ts1 event.Time) *match.Match {
		m := match.New(2)
		m.Positions[0] = []*event.Event{event.New(schemaA, ts0, 0)}
		m.Positions[1] = []*event.Event{event.New(schemaB, ts1, 0)}
		return m
	}
	p.Observe(mk(1, 5)) // position 1 last
	p.Observe(mk(2, 7)) // position 1 last
	p.Observe(mk(9, 4)) // position 0 last
	if got := p.MostFrequentLast(); got != 1 {
		t.Fatalf("MostFrequentLast = %d", got)
	}
	if p.Observations() != 3 {
		t.Fatalf("Observations = %d", p.Observations())
	}
}
