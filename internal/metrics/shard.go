package metrics

import "repro/internal/telemetry"

// ShardCounters instruments one shard (worker) of a sharded runtime, built
// on the telemetry counter primitives: the owning worker goroutine
// increments them while any other goroutine snapshots them through atomic
// loads, so a live dashboard never blocks the hot path.
type ShardCounters struct {
	events     telemetry.Counter
	batches    telemetry.Counter
	matches    telemetry.Counter
	stalls     telemetry.Counter
	partitions telemetry.Gauge
}

// AddEvents records n events routed to the shard.
func (c *ShardCounters) AddEvents(n int) { c.events.Add(int64(n)) }

// AddBatch records one batch submission to the shard.
func (c *ShardCounters) AddBatch() { c.batches.Inc() }

// AddMatches records n matches emitted by the shard.
func (c *ShardCounters) AddMatches(n int) { c.matches.Add(int64(n)) }

// AddStall records one back-pressure stall: a submission that found the
// shard's queue full and had to block.
func (c *ShardCounters) AddStall() { c.stalls.Inc() }

// SetPartitions records the number of partitions the shard currently owns.
func (c *ShardCounters) SetPartitions(n int) { c.partitions.Store(int64(n)) }

// ShardSnapshot is a point-in-time copy of one shard's counters.
type ShardSnapshot struct {
	// Shard is the shard (worker) index.
	Shard int
	// Events is the number of events the shard has accepted.
	Events int64
	// Batches is the number of batch submissions the shard has accepted.
	Batches int64
	// Matches is the number of matches the shard has emitted.
	Matches int64
	// Stalls counts submissions that found the shard's queue full and
	// blocked — the back-pressure signal. A consistently stalling shard is
	// either overloaded (add workers) or skewed (repartition the keys).
	Stalls int64
	// Partitions is the number of distinct partitions routed to the shard.
	Partitions int64
	// QueueDepth and QueueCap are the shard queue's instantaneous fill and
	// capacity at snapshot time (a momentary gauge, not a counter).
	QueueDepth int
	QueueCap   int
}

// Snapshot copies the counters.
func (c *ShardCounters) Snapshot(shard int) ShardSnapshot {
	return ShardSnapshot{
		Shard:      shard,
		Events:     c.events.Load(),
		Batches:    c.batches.Load(),
		Matches:    c.matches.Load(),
		Stalls:     c.stalls.Load(),
		Partitions: c.partitions.Load(),
	}
}
