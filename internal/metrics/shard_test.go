package metrics

import (
	"sync"
	"testing"
)

func TestShardCountersSnapshot(t *testing.T) {
	var c ShardCounters
	c.AddEvents(3)
	c.AddBatch()
	c.AddMatches(2)
	c.AddStall()
	c.SetPartitions(4)
	s := c.Snapshot(7)
	want := ShardSnapshot{Shard: 7, Events: 3, Batches: 1, Matches: 2, Stalls: 1, Partitions: 4}
	if s != want {
		t.Fatalf("snapshot = %+v, want %+v", s, want)
	}
}

func TestShardCountersConcurrent(t *testing.T) {
	// One writer per counter plus a snapshotting reader; run under -race.
	var c ShardCounters
	const n = 1000
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			c.AddEvents(1)
			c.AddMatches(1)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			c.Snapshot(0)
		}
	}()
	wg.Wait()
	if s := c.Snapshot(1); s.Events != n || s.Matches != n {
		t.Fatalf("snapshot = %+v", s)
	}
}
