package cep

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"repro/internal/workload"
)

// churnPool builds the template pool the churn tests draw from: overlapping
// prefix queries, identical twins, a negation query over the shared prefix,
// and ineligible shapes (disjunction, skip-till-next) that always ride on
// private lanes.
func churnPool(t testing.TB, reg *Registry, events []*Event) []QueryConfig {
	t.Helper()
	sources := []struct {
		name, src string
		strat     Strategy
	}{
		{"prefix-2", `PATTERN SEQ(S000 a, S001 b, S002 c) WHERE a.difference < b.difference WITHIN 2 s`, 0},
		{"prefix-3", `PATTERN SEQ(S000 a, S001 b, S003 c) WHERE a.difference < b.difference WITHIN 2 s`, 0},
		{"prefix-4", `PATTERN SEQ(S000 a, S001 b, S004 c) WHERE a.difference < b.difference WITHIN 2 s`, 0},
		{"prefix-5", `PATTERN SEQ(S000 a, S001 b, S005 c) WHERE a.difference < b.difference WITHIN 2 s`, 0},
		{"twin-1", `PATTERN SEQ(S000 a, S001 b) WHERE a.bucket = b.bucket WITHIN 2 s`, 0},
		{"twin-2", `PATTERN SEQ(S000 a, S001 b) WHERE a.bucket = b.bucket WITHIN 2 s`, 0},
		{"neg-prefix", `PATTERN SEQ(S000 a, NOT(S002 n), S001 b) WHERE a.difference < b.difference WITHIN 2 s`, 0},
		{"neg-tail", `PATTERN SEQ(S002 a, NOT(S001 n), S003 b) WITHIN 2 s`, 0},
		{"either", `PATTERN OR(SEQ(S004 a, S005 b), SEQ(S005 x, S004 y)) WITHIN 1 s`, 0},
		{"next-match", `PATTERN SEQ(S003 a, S004 b) WITHIN 2 s`, SkipTillNextMatch},
	}
	out := make([]QueryConfig, 0, len(sources))
	for _, spec := range sources {
		p, err := ParsePatternWith(spec.src, reg)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, QueryConfig{
			Name:     spec.name,
			Pattern:  p,
			Stats:    Measure(events, p),
			Strategy: spec.strat,
		})
	}
	return out
}

// suffixReference runs a fresh private runtime over the stream suffix a
// query observed — the ground truth for a query registered mid-feed.
func suffixReference(t testing.TB, qc QueryConfig, suffix []*Event) []*Match {
	t.Helper()
	rt, err := NewFromConfig(qc)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := rt.ProcessAll(suffix)
	if err != nil {
		t.Fatal(err)
	}
	return ms
}

// TestLiveChurnBeforeFeedMatchesStaticSession registers, removes and
// re-registers queries on an already-RUNNING sharing session before any
// event flows, then feeds the whole stream: every query must produce
// exactly the match set of a statically-built session with the same final
// query set — the strongest form of the splice-equivalence guarantee.
func TestLiveChurnBeforeFeedMatchesStaticSession(t *testing.T) {
	stocks := workload.NewStocks(workload.StockConfig{
		Symbols: 6, Events: 4000, Seed: 11, MinRate: 1, MaxRate: 5,
	})
	events := stocks.Generate()
	pool := churnPool(t, stocks.Registry, events)

	// Live session: start with the first two queries, then churn the rest
	// through AddQuery/RemoveQuery while the session is running but idle.
	live := NewSession(SessionConfig{QueueLen: 64, ShareSubplans: true})
	for _, qc := range pool[:2] {
		if err := live.Register(qc); err != nil {
			t.Fatal(err)
		}
	}
	if err := live.Start(); err != nil {
		t.Fatal(err)
	}
	for _, qc := range pool[2:] {
		if err := live.AddQuery(qc); err != nil {
			t.Fatalf("AddQuery(%s): %v", qc.Name, err)
		}
	}
	// Remove a shared member, a twin and a private query, then re-add one.
	for _, name := range []string{"prefix-3", "twin-2", "either"} {
		if err := live.RemoveQuery(name); err != nil {
			t.Fatalf("RemoveQuery(%s): %v", name, err)
		}
	}
	if err := live.AddQuery(pool[0]); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate AddQuery = %v, want duplicate-name error", err)
	}
	var readd QueryConfig
	for _, qc := range pool {
		if qc.Name == "twin-2" {
			readd = qc
		}
	}
	if err := live.AddQuery(readd); err != nil {
		t.Fatalf("re-AddQuery(twin-2): %v", err)
	}

	finalNames := live.Queries()
	if err := live.Run(context.Background(), NewStream(workload.ResetStream(events))); err != nil {
		t.Fatal(err)
	}
	if _, err := live.Flush(); err != nil {
		t.Fatal(err)
	}

	static := NewSession(SessionConfig{QueueLen: 64, ShareSubplans: true})
	byName := map[string]QueryConfig{}
	for _, qc := range pool {
		byName[qc.Name] = qc
	}
	for _, name := range finalNames {
		if err := static.Register(byName[name]); err != nil {
			t.Fatal(err)
		}
	}
	if err := static.Run(context.Background(), NewStream(workload.ResetStream(events))); err != nil {
		t.Fatal(err)
	}
	if _, err := static.Flush(); err != nil {
		t.Fatal(err)
	}

	total := 0
	for _, name := range finalNames {
		got, want := live.Matches(name), static.Matches(name)
		extra, missing := diffKeys(got, want)
		if len(extra) > 0 || len(missing) > 0 {
			t.Errorf("query %q: churned session diverges from static session (%d vs %d matches; %d extra, %d missing)",
				name, len(got), len(want), len(extra), len(missing))
		}
		total += len(want)
	}
	if total == 0 {
		t.Fatal("workload produced no matches; equivalence is vacuous")
	}
	for _, name := range []string{"prefix-3", "either"} {
		if ms := live.Matches(name); ms != nil {
			t.Errorf("removed query %q still reports %d matches", name, len(ms))
		}
	}
}

// churnEquivalence feeds the stream in chunks, randomly adding and
// removing queries at chunk boundaries, and cross-checks every surviving
// query match-for-match against a fresh private runtime over exactly the
// suffix of events submitted while the query was registered.
func churnEquivalence(t *testing.T, pool []QueryConfig, events []*Event, seed int64, shared bool) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	byName := map[string]QueryConfig{}
	for _, qc := range pool {
		byName[qc.Name] = qc
	}

	s := NewSession(SessionConfig{QueueLen: 64, ShareSubplans: shared, SharedWorkers: 2})
	regAt := map[string]int{} // name -> index of first event the query observes
	live := map[string]bool{}
	for _, qc := range pool[:3] {
		if err := s.Register(qc); err != nil {
			t.Fatal(err)
		}
		regAt[qc.Name] = 0
		live[qc.Name] = true
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}

	feed := workload.ResetStream(events)
	chunk := len(feed) / 12
	for next := 0; next < len(feed); {
		end := next + chunk
		if end > len(feed) {
			end = len(feed)
		}
		for ; next < end; next++ {
			if err := s.Submit(feed[next]); err != nil {
				t.Fatal(err)
			}
		}
		if next >= len(feed) {
			break
		}
		// Random churn: add an absent query or remove a present one.
		for step := 0; step < 1+rng.Intn(2); step++ {
			qc := pool[rng.Intn(len(pool))]
			if live[qc.Name] {
				if rng.Intn(2) == 0 {
					continue
				}
				if err := s.RemoveQuery(qc.Name); err != nil {
					t.Fatalf("RemoveQuery(%s) at %d: %v", qc.Name, next, err)
				}
				delete(live, qc.Name)
				delete(regAt, qc.Name)
			} else {
				if err := s.AddQuery(qc); err != nil {
					t.Fatalf("AddQuery(%s) at %d: %v", qc.Name, next, err)
				}
				live[qc.Name] = true
				regAt[qc.Name] = next
			}
		}
	}
	if _, err := s.Flush(); err != nil {
		t.Fatal(err)
	}

	checked, totalMatches := 0, 0
	for name, at := range regAt {
		want := suffixReference(t, byName[name], workload.ResetStream(events)[at:])
		got := s.Matches(name)
		extra, missing := diffKeys(got, want)
		if len(extra) > 0 || len(missing) > 0 {
			t.Errorf("query %q (registered at event %d): %d vs %d matches; %d extra, %d missing",
				name, at, len(got), len(want), len(extra), len(missing))
		}
		checked++
		totalMatches += len(want)
	}
	if checked < 2 || totalMatches == 0 {
		t.Fatalf("vacuous churn run: %d queries, %d matches", checked, totalMatches)
	}
}

// TestChurnEquivalenceStocks runs randomized add/remove sequences on the
// stock workload, shared and unshared, across several seeds.
func TestChurnEquivalenceStocks(t *testing.T) {
	stocks := workload.NewStocks(workload.StockConfig{
		Symbols: 6, Events: 3600, Seed: 11, MinRate: 1, MaxRate: 5,
	})
	events := stocks.Generate()
	pool := churnPool(t, stocks.Registry, events)
	for _, shared := range []bool{true, false} {
		for seed := int64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("shared=%v/seed=%d", shared, seed), func(t *testing.T) {
				churnEquivalence(t, pool, events, seed, shared)
			})
		}
	}
}

// TestChurnEquivalenceTraffic repeats the churn property on the Figure 1
// traffic workload, whose queries share the (A ⋈ B) camera prefix.
func TestChurnEquivalenceTraffic(t *testing.T) {
	frames, reg := trafficWorkload(t)
	sources := map[string]string{
		"crossing": `PATTERN SEQ(A a, B b, C c, D d) WHERE a.vehicleID = b.vehicleID AND
		             b.vehicleID = c.vehicleID AND c.vehicleID = d.vehicleID WITHIN 30 s`,
		"ab-pair": `PATTERN SEQ(A a, B b) WHERE a.vehicleID = b.vehicleID WITHIN 30 s`,
		"abc":     `PATTERN SEQ(A a, B b, C c) WHERE a.vehicleID = b.vehicleID AND b.vehicleID = c.vehicleID WITHIN 30 s`,
		"mid":     `PATTERN AND(B b, C c) WHERE b.vehicleID = c.vehicleID WITHIN 1 s`,
		"no-d":    `PATTERN SEQ(A a, NOT(D n), B b) WHERE a.vehicleID = b.vehicleID WITHIN 30 s`,
	}
	var pool []QueryConfig
	for _, name := range []string{"crossing", "ab-pair", "abc", "mid", "no-d"} {
		p, err := ParsePatternWith(sources[name], reg)
		if err != nil {
			t.Fatal(err)
		}
		pool = append(pool, QueryConfig{Name: name, Pattern: p, Stats: Measure(frames, p)})
	}
	churnEquivalence(t, pool, frames, 7, true)
}

// TestChurnConcurrentRace churns a sharing session while a separate
// goroutine feeds it (externally ordered through a mutex, as the Submit
// contract requires), under the race detector. The feed position is
// captured inside the same critical section as the AddQuery call, so the
// suffix references stay exact.
func TestChurnConcurrentRace(t *testing.T) {
	stocks := workload.NewStocks(workload.StockConfig{
		Symbols: 6, Events: 2400, Seed: 29, MinRate: 1, MaxRate: 5,
	})
	events := stocks.Generate()
	pool := churnPool(t, stocks.Registry, events)
	byName := map[string]QueryConfig{}
	for _, qc := range pool {
		byName[qc.Name] = qc
	}

	s := NewSession(SessionConfig{QueueLen: 32, ShareSubplans: true})
	regAt := map[string]int{}
	for _, qc := range pool[:4] {
		if err := s.Register(qc); err != nil {
			t.Fatal(err)
		}
		regAt[qc.Name] = 0
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}

	feed := workload.ResetStream(events)
	var feedMu sync.Mutex
	next := 0
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			feedMu.Lock()
			if next >= len(feed) {
				feedMu.Unlock()
				return
			}
			e := feed[next]
			next++
			if err := s.Submit(e); err != nil {
				feedMu.Unlock()
				t.Errorf("Submit: %v", err)
				return
			}
			feedMu.Unlock()
		}
	}()
	churn := []string{"twin-1", "neg-prefix", "twin-2", "next-match"}
	for i, name := range churn {
		feedMu.Lock()
		at := next
		var err error
		if i%4 == 3 {
			err = s.RemoveQuery("prefix-2")
			delete(regAt, "prefix-2")
		} else {
			err = s.AddQuery(byName[name])
			regAt[name] = at
		}
		feedMu.Unlock()
		if err != nil {
			t.Fatalf("churn %s: %v", name, err)
		}
	}
	<-done
	if _, err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	total := 0
	for name, at := range regAt {
		want := suffixReference(t, byName[name], workload.ResetStream(events)[at:])
		got := s.Matches(name)
		extra, missing := diffKeys(got, want)
		if len(extra) > 0 || len(missing) > 0 {
			t.Errorf("query %q (registered at %d): %d extra, %d missing of %d",
				name, at, len(extra), len(missing), len(want))
		}
		total += len(want)
	}
	if total == 0 {
		t.Fatal("vacuous concurrent churn run")
	}
}

// TestShareReportChurn checks the report's churn semantics: snapshots are
// immutable copies, Generation counts re-optimizations, and the component
// listing follows membership.
func TestShareReportChurn(t *testing.T) {
	stocks := workload.NewStocks(workload.StockConfig{
		Symbols: 6, Events: 800, Seed: 3, MinRate: 1, MaxRate: 5,
	})
	events := stocks.Generate()
	pool := churnPool(t, stocks.Registry, events)
	byName := map[string]QueryConfig{}
	for _, qc := range pool {
		byName[qc.Name] = qc
	}

	s := NewSession(SessionConfig{ShareSubplans: true})
	for _, name := range []string{"twin-1", "twin-2"} {
		if err := s.Register(byName[name]); err != nil {
			t.Fatal(err)
		}
	}
	if s.ShareReport() != nil {
		t.Fatal("report before Start must be nil")
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	before := s.ShareReport()
	if before == nil || before.Generation != 0 {
		t.Fatalf("initial report %+v, want generation 0", before)
	}
	if before.Shared != 2 || len(before.Components) != 1 {
		t.Fatalf("initial report %+v, want the twins in one component", before)
	}

	// A disjoint eligible query lands on its own lane: nothing re-optimizes.
	if err := s.AddQuery(byName["prefix-2"]); err != nil {
		t.Fatal(err)
	}
	if got := s.ShareReport(); got.Generation != 0 || got.Shared != 2 {
		t.Fatalf("disjoint AddQuery moved the report: %+v", got)
	}
	// An ineligible query changes nothing either.
	if err := s.AddQuery(byName["either"]); err != nil {
		t.Fatal(err)
	}
	if got := s.ShareReport(); got.Generation != 0 || got.Shared != 2 {
		t.Fatalf("ineligible AddQuery moved the report: %+v", got)
	}

	// An AddQuery overlapping the singleton prefix-2 lane must re-optimize
	// it into a new component.
	if err := s.AddQuery(byName["prefix-3"]); err != nil {
		t.Fatal(err)
	}
	after := s.ShareReport()
	if after.Generation != 1 {
		t.Fatalf("generation after overlapping AddQuery = %d, want 1", after.Generation)
	}
	if after.Shared != 4 || len(after.Components) != 2 {
		t.Fatalf("report after AddQuery %+v, want twins + prefix pair", after)
	}
	// The earlier snapshot must be untouched.
	if before.Generation != 0 || before.Shared != 2 {
		t.Fatalf("earlier snapshot mutated: %+v", before)
	}

	if err := s.RemoveQuery("prefix-3"); err != nil {
		t.Fatal(err)
	}
	final := s.ShareReport()
	if final.Generation != 2 || final.Shared != 2 {
		t.Fatalf("after RemoveQuery: %+v, want generation 2, twins shared", final)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestDynamicErrors covers the live-mutation error paths.
func TestDynamicErrors(t *testing.T) {
	stocks := workload.NewStocks(workload.StockConfig{
		Symbols: 6, Events: 200, Seed: 5, MinRate: 1, MaxRate: 5,
	})
	events := stocks.Generate()
	pool := churnPool(t, stocks.Registry, events)

	s := NewSession(SessionConfig{ShareSubplans: true})
	if err := s.RemoveQuery("nope"); err == nil || !strings.Contains(err.Error(), "unknown query") {
		t.Fatalf("RemoveQuery(unknown) = %v", err)
	}
	if err := s.AddQuery(pool[0]); err != nil {
		t.Fatal(err) // pre-start AddQuery == Register
	}
	if err := s.AddQuery(pool[0]); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("pre-start duplicate = %v", err)
	}
	if err := s.RemoveQuery(pool[0].Name); err != nil {
		t.Fatalf("pre-start RemoveQuery = %v", err)
	}
	if err := s.AddQuery(pool[0]); err != nil {
		t.Fatalf("name reuse after pre-start removal: %v", err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	if err := s.Register(pool[1]); err == nil || !strings.Contains(err.Error(), "AddQuery") {
		t.Fatalf("Register on running session = %v, want pointer to AddQuery", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.AddQuery(pool[1]); err == nil {
		t.Fatal("AddQuery after Close accepted")
	}
	if err := s.RemoveQuery(pool[0].Name); err == nil {
		t.Fatal("RemoveQuery after Close accepted")
	}
}
