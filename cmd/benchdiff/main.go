// Command benchdiff gates CI on the committed cepbench measurements. It
// reads the JSON row files written by `cepbench -fig batch -batch-json`
// (any row set keyed by fig/queries/batch with an events_per_sec field)
// and runs one or both of two checks:
//
//	benchdiff -old BENCH_baseline.json -new BENCH_batch.json -max-regress 0.10
//
// compares rows present in both files by their (fig, queries, batch) key
// and fails when any new throughput drops more than the allowed fraction
// below the old one — the regression gate.
//
//	benchdiff -new BENCH_batch.json -min-speedup 1.5 -at queries=16,batch=256 -vs batch=1
//
// selects the row matching the -at fields inside the new file, divides its
// throughput by the row that agrees on every other key field but carries
// the -vs fields, and fails below the minimum — the batching-speedup gate.
//
// Exit status: 0 when every requested check holds, 1 on a violated gate,
// 2 on bad input.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// row is the subset of a cepbench JSON row that benchdiff keys and
// compares on; unknown fields are ignored.
type row struct {
	Fig          string  `json:"fig"`
	Queries      int     `json:"queries"`
	Batch        int     `json:"batch"`
	EventsPerSec float64 `json:"events_per_sec"`
}

func (r row) key() string { return fmt.Sprintf("%s/queries=%d/batch=%d", r.Fig, r.Queries, r.Batch) }

func readRows(path string) ([]row, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rows []row
	if err := json.Unmarshal(blob, &rows); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("%s: no rows", path)
	}
	return rows, nil
}

// selector is a parsed "-at"/"-vs" expression: field names mapped to the
// required values.
type selector map[string]string

func parseSelector(flagName, s string) (selector, error) {
	if s == "" {
		return nil, nil
	}
	sel := selector{}
	for _, part := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("invalid %s %q: want field=value[,field=value...]", flagName, s)
		}
		switch k {
		case "fig", "queries", "batch":
			sel[k] = v
		default:
			return nil, fmt.Errorf("invalid %s field %q: want fig, queries or batch", flagName, k)
		}
	}
	return sel, nil
}

func (sel selector) matches(r row) bool {
	for k, v := range sel {
		switch k {
		case "fig":
			if r.Fig != v {
				return false
			}
		case "queries":
			if strconv.Itoa(r.Queries) != v {
				return false
			}
		case "batch":
			if strconv.Itoa(r.Batch) != v {
				return false
			}
		}
	}
	return true
}

// applied returns r with the selector's fields substituted in — the
// baseline key a -vs expression derives from an -at row.
func (sel selector) applied(r row) (row, error) {
	for k, v := range sel {
		switch k {
		case "fig":
			r.Fig = v
		case "queries":
			n, err := strconv.Atoi(v)
			if err != nil {
				return r, fmt.Errorf("invalid queries value %q", v)
			}
			r.Queries = n
		case "batch":
			n, err := strconv.Atoi(v)
			if err != nil {
				return r, fmt.Errorf("invalid batch value %q", v)
			}
			r.Batch = n
		}
	}
	return r, nil
}

func fatal(code int, format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchdiff: "+format+"\n", args...)
	os.Exit(code)
}

func main() {
	var (
		oldPath    = flag.String("old", "", "baseline JSON rows (regression gate)")
		newPath    = flag.String("new", "", "candidate JSON rows")
		maxRegress = flag.Float64("max-regress", 0.10, "maximum allowed fractional throughput drop old→new")
		minSpeedup = flag.Float64("min-speedup", 0, "minimum required speedup of the -at row over the -vs row (0 disables)")
		atExpr     = flag.String("at", "", "row selector for the speedup numerator, e.g. queries=16,batch=256")
		vsExpr     = flag.String("vs", "", "field overrides locating the speedup denominator, e.g. batch=1")
	)
	flag.Parse()
	if *newPath == "" {
		fatal(2, "-new is required")
	}
	newRows, err := readRows(*newPath)
	if err != nil {
		fatal(2, "%v", err)
	}
	byKey := make(map[string]row, len(newRows))
	for _, r := range newRows {
		byKey[r.key()] = r
	}
	failed := false

	if *oldPath != "" {
		oldRows, err := readRows(*oldPath)
		if err != nil {
			fatal(2, "%v", err)
		}
		compared := 0
		for _, o := range oldRows {
			n, ok := byKey[o.key()]
			if !ok {
				continue
			}
			compared++
			delta := n.EventsPerSec/o.EventsPerSec - 1
			status := "ok"
			if n.EventsPerSec < o.EventsPerSec*(1-*maxRegress) {
				status = "REGRESSION"
				failed = true
			}
			fmt.Printf("%-40s %12.0f -> %12.0f ev/s  %+6.1f%%  %s\n",
				o.key(), o.EventsPerSec, n.EventsPerSec, 100*delta, status)
		}
		if compared == 0 {
			fatal(2, "no common (fig, queries, batch) rows between %s and %s", *oldPath, *newPath)
		}
	}

	if *minSpeedup > 0 {
		at, err := parseSelector("-at", *atExpr)
		if err != nil {
			fatal(2, "%v", err)
		}
		vs, err := parseSelector("-vs", *vsExpr)
		if err != nil {
			fatal(2, "%v", err)
		}
		if len(at) == 0 || len(vs) == 0 {
			fatal(2, "-min-speedup needs both -at and -vs")
		}
		checked := 0
		for _, r := range newRows {
			if !at.matches(r) {
				continue
			}
			base, err := vs.applied(r)
			if err != nil {
				fatal(2, "%v", err)
			}
			b, ok := byKey[base.key()]
			if !ok {
				fatal(2, "speedup baseline %s not in %s", base.key(), *newPath)
			}
			checked++
			speedup := r.EventsPerSec / b.EventsPerSec
			status := "ok"
			if speedup < *minSpeedup {
				status = fmt.Sprintf("BELOW MINIMUM %.2f", *minSpeedup)
				failed = true
			}
			fmt.Printf("%-40s %.2fx over %s  %s\n", r.key(), speedup, b.key(), status)
		}
		if checked == 0 {
			fatal(2, "no row in %s matches -at %s", *newPath, *atExpr)
		}
	}

	if *oldPath == "" && *minSpeedup == 0 {
		fatal(2, "nothing to check: give -old (regression gate) and/or -min-speedup (speedup gate)")
	}
	if failed {
		os.Exit(1)
	}
}
