// Command cepdemo runs an arbitrary pattern (SASE-style syntax) over a
// generated stock-tick stream and reports the chosen plan, match count and
// engine state — a scriptable playground for the optimizer.
//
//	cepdemo -pattern 'PATTERN SEQ(S000 a, S001 b) WHERE a.difference < b.difference WITHIN 5 s' \
//	        -alg DP-B -events 20000
//
// Event types are the generated symbols S000..Snnn with attributes price,
// difference and bucket.
//
// With `-metrics ADDR` the pattern runs inside a Session instead and the
// unified telemetry endpoint (Prometheus text format on /metrics, JSON on
// /metrics.json, sampled event traces on /debug/traces.json, expvar on
// /debug/vars, pprof under /debug/pprof/) is
// served on ADDR; after the feed the process keeps serving until
// interrupted, so the final counters can be scraped:
//
//	cepdemo -metrics :9090 &
//	curl -s localhost:9090/metrics | grep cep_events_submitted_total
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"

	cep "repro"
	"repro/internal/workload"
)

func main() {
	var (
		patternSrc = flag.String("pattern",
			`PATTERN SEQ(S000 a, S001 b, S002 c) WHERE a.difference < c.difference WITHIN 5 s`,
			"pattern specification")
		alg     = flag.String("alg", cep.AlgGreedy, "plan-generation algorithm")
		events  = flag.Int("events", 10000, "events to generate")
		symbols = flag.Int("symbols", 16, "stock symbols")
		seed    = flag.Int64("seed", 1, "RNG seed")
		strat   = flag.String("strategy", "any", "selection strategy: any|next|contiguity|partition")
		alpha   = flag.Float64("alpha", 0, "latency weight of the hybrid cost model")
		show    = flag.Int("show", 3, "matches to print")
		jsonl   = flag.String("jsonl", "", "read events from this JSON Lines file instead of generating")
		metrics = flag.String("metrics", "", "serve the telemetry endpoint on this address (e.g. :9090) and keep serving after the feed")
	)
	flag.Parse()

	stocks := workload.NewStocks(workload.StockConfig{
		Symbols: *symbols, Events: *events, Seed: *seed,
		MinRate: 0.3, MaxRate: 3,
	})
	var ticks []*cep.Event
	if *jsonl != "" {
		f, err := os.Open(*jsonl)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cepdemo:", err)
			os.Exit(1)
		}
		defer f.Close()
		ticks, err = cep.ReadJSONL(f, stocks.Registry)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cepdemo:", err)
			os.Exit(1)
		}
	} else {
		ticks = stocks.Generate()
	}

	p, err := cep.ParsePatternWith(*patternSrc, stocks.Registry)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cepdemo:", err)
		os.Exit(2)
	}
	strategy := map[string]cep.Strategy{
		"any": cep.SkipTillAnyMatch, "next": cep.SkipTillNextMatch,
		"contiguity": cep.StrictContiguity, "partition": cep.PartitionContiguity,
	}[*strat]

	st := cep.Measure(ticks, p)
	if *metrics != "" {
		if err := serveMetrics(*metrics, p, st, *alg, strategy, *alpha, ticks); err != nil {
			fmt.Fprintln(os.Stderr, "cepdemo:", err)
			os.Exit(1)
		}
		return
	}
	rt, err := cep.New(p, st,
		cep.WithAlgorithm(*alg),
		cep.WithStrategy(strategy),
		cep.WithLatencyWeight(*alpha),
	)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cepdemo:", err)
		os.Exit(1)
	}
	fmt.Print(rt.Describe())

	matches, err := rt.ProcessAll(ticks)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cepdemo:", err)
		os.Exit(1)
	}
	fmt.Printf("\n%d events → %d matches (plan cost %.1f)\n", len(ticks), len(matches), rt.PlanCost())
	for i, m := range matches {
		if i >= *show {
			fmt.Printf("... and %d more\n", len(matches)-*show)
			break
		}
		fmt.Printf("match %d:\n", i+1)
		for _, e := range m.Events() {
			fmt.Printf("  %s\n", e)
		}
	}
}

// serveMetrics runs the pattern inside a Session with the telemetry layer
// on, serves Session.MetricsHandler on addr, feeds the stream, and then
// blocks serving scrapes until the process is interrupted. Tracing is on
// (1-in-8 sampled submissions plus match provenance — a demo rate; a batch
// feed makes one submission per 256 events) so /debug/traces.json serves a
// live span ring alongside the metrics endpoints.
func serveMetrics(addr string, p *cep.Pattern, st *cep.Stats, alg string, strategy cep.Strategy, alpha float64, ticks []*cep.Event) error {
	s := cep.NewSession(cep.SessionConfig{
		QueueLen: 1024, FilterIndex: true,
		Trace: &cep.TraceConfig{SampleEvery: 8, Provenance: true},
	})
	if err := s.Register(cep.QueryConfig{
		Name: "demo", Pattern: p, Stats: st,
		Algorithm: alg, Strategy: strategy, LatencyWeight: alpha,
	}); err != nil {
		return err
	}
	if err := s.Start(); err != nil {
		return err
	}
	srv := &http.Server{Addr: addr, Handler: s.MetricsHandler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	const feedBatch = 256
	for i := 0; i < len(ticks); i += feedBatch {
		end := min(i+feedBatch, len(ticks))
		if err := s.SubmitBatch(ticks[i:end]); err != nil {
			return err
		}
	}
	if err := s.Drain(); err != nil {
		return err
	}
	m := s.Metrics()
	fmt.Printf("%d events → %d matches; serving metrics on %s (/metrics, /metrics.json, /debug/traces.json, /debug/vars, /debug/pprof/) — Ctrl-C to exit\n",
		m.EventsSubmitted, m.MatchesEmitted, addr)
	return <-errc
}
