package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	cep "repro"
	"repro/internal/event"
	"repro/internal/harness"
	"repro/internal/trace"
	"repro/internal/workload"
)

// traceRow is one (trace mode, query count) measurement. The mode is
// encoded in Fig ("trace-off" / "trace-on" / "trace-prov") so
// cmd/benchdiff's -min-speedup gate can divide the pair sharing a query
// count: `-min-speedup 0.95 -at fig=trace-on -vs fig=trace-off` asserts
// that sampled tracing costs at most ~5% throughput.
type traceRow struct {
	Fig          string  `json:"fig"`
	Queries      int     `json:"queries"`
	Batch        int     `json:"batch"`
	EventsPerSec float64 `json:"events_per_sec"`
	Speedup      float64 `json:"speedup_vs_off"`
	Matches      int     `json:"matches"`
	MatchesOK    bool    `json:"matches_ok"`
	ElapsedMS    int64   `json:"elapsed_ms"`
}

// runTraceScenario measures the overhead of the event-tracing and match-
// provenance layer: the mqo workload (hot-pair sharing families, every
// fourth query a negation) fed through SubmitBatch on a
// ShareSubplans+FilterIndex session under three trace configurations —
// tracing off (Trace: nil), 1-in-64 sampled span traces, and sampled
// traces plus per-match provenance. Each configuration takes the best of
// three repetitions so a GC cycle cannot masquerade as instrumentation
// cost, per-query match counts must agree across all three modes (tracing
// must never change detection), and the last trace-on run dumps one
// retained trace's span walk — the same record /debug/traces.json serves.
// Rows go to stdout as a table and JSON, and to jsonPath when set — the
// input of cmd/benchdiff's overhead gate.
func runTraceScenario(symbols, events int, queryCounts string, window event.Time, seed int64, jsonPath string) error {
	if symbols < 4 {
		return fmt.Errorf("-symbols must be at least 4 (hot pair + tails), got %d", symbols)
	}
	var counts []int
	for _, part := range strings.Split(queryCounts, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return fmt.Errorf("invalid -trace-queries %q", queryCounts)
		}
		counts = append(counts, n)
	}
	stocks := workload.NewStocks(workload.StockConfig{
		Symbols: symbols, Events: events, Seed: seed, MinRate: 1, MaxRate: 20,
	})
	stream := stocks.Generate()
	type symRate struct {
		name string
		rate float64
	}
	bySpeed := make([]symRate, 0, len(stocks.Symbols))
	for _, s := range stocks.Symbols {
		bySpeed = append(bySpeed, symRate{s, stocks.Rates[s]})
	}
	sort.Slice(bySpeed, func(i, j int) bool { return bySpeed[i].rate > bySpeed[j].rate })
	hotA, hotB := bySpeed[0].name, bySpeed[1].name
	tails := bySpeed[2:]
	const feedBatch = 256
	fmt.Printf("trace scenario: %d events over %d symbols, window %dms, feed batch %d, hot pair %s⋈%s\n\n",
		len(stream), symbols, window, feedBatch, hotA, hotB)

	makeQueries := func(n int) ([]cep.QueryConfig, error) {
		out := make([]cep.QueryConfig, 0, n)
		for i := 0; i < n; i++ {
			tail := tails[i%len(tails)].name
			var src string
			if i%4 == 3 {
				neg := tails[(i+1)%len(tails)].name
				src = fmt.Sprintf(
					`PATTERN SEQ(%s a, %s b, NOT(%s n), %s c)
					 WHERE a.bucket = b.bucket AND a.difference < b.difference AND b.difference < c.difference
					 WITHIN %d ms`,
					hotA, hotB, neg, tail, window)
			} else {
				src = fmt.Sprintf(
					`PATTERN SEQ(%s a, %s b, %s c)
					 WHERE a.bucket = b.bucket AND a.difference < b.difference AND b.difference < c.difference
					 WITHIN %d ms`,
					hotA, hotB, tail, window)
			}
			p, err := cep.ParsePatternWith(src, stocks.Registry)
			if err != nil {
				return nil, err
			}
			out = append(out, cep.QueryConfig{
				Name:    fmt.Sprintf("q%02d", i),
				Pattern: p,
				Stats:   cep.Measure(stream, p),
			})
		}
		return out, nil
	}

	run := func(queries []cep.QueryConfig, tc *cep.TraceConfig) (time.Duration, map[string]int, []trace.Trace, error) {
		s := cep.NewSession(cep.SessionConfig{
			QueueLen: 1024, ShareSubplans: true, FilterIndex: true, Trace: tc,
		})
		for _, qc := range queries {
			if err := s.Register(qc); err != nil {
				return 0, nil, nil, err
			}
		}
		if err := s.Start(); err != nil {
			return 0, nil, nil, err
		}
		evs := workload.ResetStream(stream)
		start := time.Now()
		for i := 0; i < len(evs); i += feedBatch {
			end := min(i+feedBatch, len(evs))
			if err := s.SubmitBatch(evs[i:end]); err != nil {
				return 0, nil, nil, err
			}
		}
		if _, err := s.Flush(); err != nil {
			return 0, nil, nil, err
		}
		elapsed := time.Since(start)
		perQuery := make(map[string]int, len(queries))
		for _, qc := range queries {
			perQuery[qc.Name] = len(s.Matches(qc.Name))
		}
		return elapsed, perQuery, s.Traces(), nil
	}
	// Best of three repetitions per mode: the gate divides two of the
	// numbers, so one GC pause inside a single repetition must not decide it.
	const reps = 3
	best := func(queries []cep.QueryConfig, tc *cep.TraceConfig) (time.Duration, map[string]int, []trace.Trace, error) {
		var bestElapsed time.Duration
		var bestCounts map[string]int
		var bestTraces []trace.Trace
		for r := 0; r < reps; r++ {
			elapsed, perQuery, trs, err := run(queries, tc)
			if err != nil {
				return 0, nil, nil, err
			}
			if bestCounts == nil || elapsed < bestElapsed {
				bestElapsed, bestTraces = elapsed, trs
			}
			if bestCounts == nil {
				bestCounts = perQuery
			} else {
				for name, want := range bestCounts {
					if perQuery[name] != want {
						return 0, nil, nil, fmt.Errorf("repetition mismatch for %s: %d vs %d", name, perQuery[name], want)
					}
				}
			}
		}
		return bestElapsed, bestCounts, bestTraces, nil
	}

	modes := []struct {
		fig string
		tc  *cep.TraceConfig
	}{
		{"trace-off", nil},
		{"trace-on", &cep.TraceConfig{SampleEvery: 64, RingCap: 64}},
		{"trace-prov", &cep.TraceConfig{SampleEvery: 64, RingCap: 64, Provenance: true}},
	}
	table := harness.Table{
		Title:   "Tracing overhead: feed throughput (events/s), off vs sampled spans vs spans+provenance",
		Columns: []string{"queries", "trace", "ev/s", "vs off", "matches", "elapsed"},
	}
	var rows []traceRow
	var lastTraces []trace.Trace
	for _, n := range counts {
		queries, err := makeQueries(n)
		if err != nil {
			return err
		}
		var offRate float64
		var offCounts map[string]int
		for mi, mode := range modes {
			elapsed, perQuery, trs, err := best(queries, mode.tc)
			if err != nil {
				return fmt.Errorf("queries=%d %s: %w", n, mode.fig, err)
			}
			if mi == 0 {
				offRate, offCounts = float64(len(stream))/elapsed.Seconds(), perQuery
			}
			if len(trs) > 0 {
				lastTraces = trs
			}
			row := traceRow{
				Fig: mode.fig, Queries: n, Batch: feedBatch,
				EventsPerSec: float64(len(stream)) / elapsed.Seconds(),
				MatchesOK:    true,
				ElapsedMS:    elapsed.Milliseconds(),
			}
			row.Speedup = row.EventsPerSec / offRate
			for name, want := range offCounts {
				row.Matches += perQuery[name]
				if perQuery[name] != want {
					row.MatchesOK = false
				}
			}
			rows = append(rows, row)
			matchCell := fmt.Sprint(row.Matches)
			if !row.MatchesOK {
				matchCell += " (MISMATCH vs trace-off!)"
			}
			table.Rows = append(table.Rows, []string{
				fmt.Sprint(n), strings.TrimPrefix(mode.fig, "trace-"),
				fmt.Sprintf("%.0f", row.EventsPerSec), fmt.Sprintf("%.2f", row.Speedup),
				matchCell, (time.Duration(row.ElapsedMS) * time.Millisecond).String(),
			})
		}
	}
	table.Fprint(os.Stdout)
	if len(lastTraces) > 0 {
		tr := lastTraces[len(lastTraces)-1]
		fmt.Printf("\nsample trace (seq %d, batch %d, %d retained):\n", tr.Seq, tr.Batch, len(lastTraces))
		for _, sp := range tr.Spans {
			fmt.Printf("  %8.1fµs  %-9s lane=%-3d %s\n",
				float64(sp.AtNS)/1e3, sp.Stage, sp.Lane, sp.Detail)
		}
	}
	blob, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return err
	}
	fmt.Printf("\nJSON: %s\n", blob)
	if jsonPath != "" {
		if err := os.WriteFile(jsonPath, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("(rows written to %s)\n", jsonPath)
	}
	for _, row := range rows {
		if !row.MatchesOK {
			return fmt.Errorf("match-count mismatch at %d queries", row.Queries)
		}
	}
	return nil
}
