package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	cep "repro"
	"repro/internal/event"
	"repro/internal/harness"
	"repro/internal/workload"
)

// telemetryRow is one (telemetry on/off, query count) measurement. The
// telemetry state is encoded in Fig ("telemetry-on" / "telemetry-off") so
// cmd/benchdiff's -min-speedup gate can divide the pair sharing a query
// count: `-min-speedup 0.95 -at fig=telemetry-on -vs fig=telemetry-off`
// asserts the always-on instrumentation costs at most ~5% throughput.
type telemetryRow struct {
	Fig          string  `json:"fig"`
	Queries      int     `json:"queries"`
	Batch        int     `json:"batch"`
	EventsPerSec float64 `json:"events_per_sec"`
	Speedup      float64 `json:"speedup_vs_off"`
	Matches      int     `json:"matches"`
	MatchesOK    bool    `json:"matches_ok"`
	ElapsedMS    int64   `json:"elapsed_ms"`
}

// runTelemetryScenario measures the overhead of the always-on telemetry
// layer: the mqo workload (hot-pair sharing families, every fourth query a
// negation) fed through SubmitBatch on a ShareSubplans+FilterIndex session,
// once with telemetry at its defaults and once with
// TelemetryConfig{Disabled: true} — the only difference between the runs.
// Each configuration takes the best of three repetitions so a GC cycle or
// scheduling burst cannot masquerade as instrumentation cost. Per-query
// match counts must agree between the two modes (counting must never change
// detection), and the on-run's unified metrics snapshot is dumped after the
// table — the live view cmd/cepdemo serves over HTTP. Rows go to stdout as
// a table and JSON, and to jsonPath when set — the input of cmd/benchdiff's
// overhead gate.
func runTelemetryScenario(symbols, events int, queryCounts string, window event.Time, seed int64, jsonPath string) error {
	if symbols < 4 {
		return fmt.Errorf("-symbols must be at least 4 (hot pair + tails), got %d", symbols)
	}
	var counts []int
	for _, part := range strings.Split(queryCounts, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return fmt.Errorf("invalid -telemetry-queries %q", queryCounts)
		}
		counts = append(counts, n)
	}
	stocks := workload.NewStocks(workload.StockConfig{
		Symbols: symbols, Events: events, Seed: seed, MinRate: 1, MaxRate: 20,
	})
	stream := stocks.Generate()
	type symRate struct {
		name string
		rate float64
	}
	bySpeed := make([]symRate, 0, len(stocks.Symbols))
	for _, s := range stocks.Symbols {
		bySpeed = append(bySpeed, symRate{s, stocks.Rates[s]})
	}
	sort.Slice(bySpeed, func(i, j int) bool { return bySpeed[i].rate > bySpeed[j].rate })
	hotA, hotB := bySpeed[0].name, bySpeed[1].name
	tails := bySpeed[2:]
	const feedBatch = 256
	fmt.Printf("telemetry scenario: %d events over %d symbols, window %dms, feed batch %d, hot pair %s⋈%s\n\n",
		len(stream), symbols, window, feedBatch, hotA, hotB)

	makeQueries := func(n int) ([]cep.QueryConfig, error) {
		out := make([]cep.QueryConfig, 0, n)
		for i := 0; i < n; i++ {
			tail := tails[i%len(tails)].name
			var src string
			if i%4 == 3 {
				neg := tails[(i+1)%len(tails)].name
				src = fmt.Sprintf(
					`PATTERN SEQ(%s a, %s b, NOT(%s n), %s c)
					 WHERE a.bucket = b.bucket AND a.difference < b.difference AND b.difference < c.difference
					 WITHIN %d ms`,
					hotA, hotB, neg, tail, window)
			} else {
				src = fmt.Sprintf(
					`PATTERN SEQ(%s a, %s b, %s c)
					 WHERE a.bucket = b.bucket AND a.difference < b.difference AND b.difference < c.difference
					 WITHIN %d ms`,
					hotA, hotB, tail, window)
			}
			p, err := cep.ParsePatternWith(src, stocks.Registry)
			if err != nil {
				return nil, err
			}
			out = append(out, cep.QueryConfig{
				Name:    fmt.Sprintf("q%02d", i),
				Pattern: p,
				Stats:   cep.Measure(stream, p),
			})
		}
		return out, nil
	}

	run := func(queries []cep.QueryConfig, tc *cep.TelemetryConfig) (time.Duration, map[string]int, *cep.SessionMetrics, error) {
		s := cep.NewSession(cep.SessionConfig{
			QueueLen: 1024, ShareSubplans: true, FilterIndex: true, Telemetry: tc,
		})
		for _, qc := range queries {
			if err := s.Register(qc); err != nil {
				return 0, nil, nil, err
			}
		}
		if err := s.Start(); err != nil {
			return 0, nil, nil, err
		}
		evs := workload.ResetStream(stream)
		start := time.Now()
		for i := 0; i < len(evs); i += feedBatch {
			end := min(i+feedBatch, len(evs))
			if err := s.SubmitBatch(evs[i:end]); err != nil {
				return 0, nil, nil, err
			}
		}
		if _, err := s.Flush(); err != nil {
			return 0, nil, nil, err
		}
		elapsed := time.Since(start)
		perQuery := make(map[string]int, len(queries))
		for _, qc := range queries {
			perQuery[qc.Name] = len(s.Matches(qc.Name))
		}
		return elapsed, perQuery, s.Metrics(), nil
	}
	// Best of three repetitions per mode: the gate divides the two numbers,
	// so one GC pause landing inside a single repetition must not decide it.
	const reps = 3
	best := func(queries []cep.QueryConfig, tc *cep.TelemetryConfig) (time.Duration, map[string]int, *cep.SessionMetrics, error) {
		var bestElapsed time.Duration
		var bestCounts map[string]int
		var bestMetrics *cep.SessionMetrics
		for r := 0; r < reps; r++ {
			elapsed, perQuery, m, err := run(queries, tc)
			if err != nil {
				return 0, nil, nil, err
			}
			if bestCounts == nil || elapsed < bestElapsed {
				bestElapsed, bestMetrics = elapsed, m
			}
			if bestCounts == nil {
				bestCounts = perQuery
			} else {
				for name, want := range bestCounts {
					if perQuery[name] != want {
						return 0, nil, nil, fmt.Errorf("repetition mismatch for %s: %d vs %d", name, perQuery[name], want)
					}
				}
			}
		}
		return bestElapsed, bestCounts, bestMetrics, nil
	}

	table := harness.Table{
		Title:   "Telemetry overhead: feed throughput (events/s), instrumentation on vs off",
		Columns: []string{"queries", "telemetry", "ev/s", "on/off", "matches", "elapsed"},
	}
	var rows []telemetryRow
	var lastOn *cep.SessionMetrics
	for _, n := range counts {
		queries, err := makeQueries(n)
		if err != nil {
			return err
		}
		offElapsed, offCounts, _, err := best(queries, &cep.TelemetryConfig{Disabled: true})
		if err != nil {
			return fmt.Errorf("queries=%d telemetry-off: %w", n, err)
		}
		onElapsed, onCounts, m, err := best(queries, nil)
		if err != nil {
			return fmt.Errorf("queries=%d telemetry-on: %w", n, err)
		}
		lastOn = m
		matchesOK := true
		total := 0
		for name, want := range offCounts {
			total += want
			if onCounts[name] != want {
				matchesOK = false
			}
		}
		offRate := float64(len(stream)) / offElapsed.Seconds()
		onRate := float64(len(stream)) / onElapsed.Seconds()
		pair := []telemetryRow{
			{Fig: "telemetry-off", Queries: n, Batch: feedBatch,
				EventsPerSec: offRate, Speedup: 1, Matches: total, MatchesOK: matchesOK,
				ElapsedMS: offElapsed.Milliseconds()},
			{Fig: "telemetry-on", Queries: n, Batch: feedBatch,
				EventsPerSec: onRate, Speedup: onRate / offRate, Matches: total, MatchesOK: matchesOK,
				ElapsedMS: onElapsed.Milliseconds()},
		}
		rows = append(rows, pair...)
		for _, row := range pair {
			matchCell := fmt.Sprint(row.Matches)
			if !row.MatchesOK {
				matchCell += " (MISMATCH on vs off!)"
			}
			table.Rows = append(table.Rows, []string{
				fmt.Sprint(n), strings.TrimPrefix(row.Fig, "telemetry-"),
				fmt.Sprintf("%.0f", row.EventsPerSec), fmt.Sprintf("%.2f", row.Speedup),
				matchCell, (time.Duration(row.ElapsedMS) * time.Millisecond).String(),
			})
		}
	}
	table.Fprint(os.Stdout)
	if lastOn != nil {
		fmt.Printf("\nmetrics snapshot (last telemetry-on run, %d queries):\n", lastOn.Queries)
		fmt.Printf("  submitted=%d batches=%d routed=%d dropped=%d\n",
			lastOn.EventsSubmitted, lastOn.BatchesSubmitted, lastOn.EventsRouted, lastOn.EventsDropped)
		fmt.Printf("  items=%d events=%d matches=%d stalls=%d lanes=%d\n",
			lastOn.ItemsProcessed, lastOn.EventsProcessed, lastOn.MatchesEmitted, lastOn.Stalls, lastOn.Lanes)
		fmt.Printf("  latency: samples=%d mean=%v p50=%v p99=%v\n",
			lastOn.Latency.Count, time.Duration(lastOn.MeanNS),
			time.Duration(lastOn.P50NS), time.Duration(lastOn.P99NS))
		fmt.Printf("  journal: %d recorded, %d retained\n", lastOn.JournalRecorded, len(lastOn.Journal))
	}
	blob, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return err
	}
	fmt.Printf("\nJSON: %s\n", blob)
	if jsonPath != "" {
		if err := os.WriteFile(jsonPath, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("(rows written to %s)\n", jsonPath)
	}
	for _, row := range rows {
		if !row.MatchesOK {
			return fmt.Errorf("match-count mismatch at %d queries", row.Queries)
		}
	}
	return nil
}
