// Command cepbench regenerates the paper's evaluation figures (4–19) as
// tables on the synthetic stock workload.
//
// Usage:
//
//	cepbench -fig 4           # one figure (and its sibling, e.g. 4 prints 5 too)
//	cepbench -fig all         # every figure
//	cepbench -events 50000 -persize 4 -fig 10
//
// Figures map to the paper as follows: 4/5 per-category throughput/memory;
// 6–15 throughput/memory by pattern size per category; 16 cost-model
// validation; 17 large-pattern plan quality and planning time; 18
// throughput/latency trade-off; 19 selection strategies.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"time"

	"repro/internal/event"
	"repro/internal/harness"
)

func main() {
	var (
		fig      = flag.String("fig", "all", "figure number (4-19) or 'all'")
		symbols  = flag.Int("symbols", 32, "stock symbols in the universe")
		events   = flag.Int("events", 8000, "events in the generated stream")
		windowMS = flag.Int64("window", 4000, "pattern window in milliseconds")
		perSize  = flag.Int("persize", 2, "patterns per size per category")
		seed     = flag.Int64("seed", 1, "master RNG seed")
		maxSize  = flag.Int("maxsize", 7, "largest pattern size for execution figures")
		dpldCap  = flag.Int("dpld-cap", 18, "largest pattern size planned with DP-LD in Fig 17")
		dpbCap   = flag.Int("dpb-cap", 14, "largest pattern size planned with DP-B in Fig 17")
	)
	flag.Parse()

	sizes := make([]int, 0, *maxSize-2)
	for s := 3; s <= *maxSize; s++ {
		sizes = append(sizes, s)
	}
	cfg := harness.Config{
		Symbols:     *symbols,
		Events:      *events,
		Window:      event.Time(*windowMS),
		Sizes:       sizes,
		PerSize:     *perSize,
		Seed:        *seed,
		MaxDPLDSize: *dpldCap,
		MaxDPBSize:  *dpbCap,
	}
	runner := harness.NewRunner(cfg)
	fmt.Printf("workload: %d events over %d symbols, window %dms, sizes %v, %d patterns/size\n\n",
		cfg.Events, cfg.Symbols, *windowMS, sizes, cfg.PerSize)

	if *fig == "ext" {
		start := time.Now()
		tables, err := runner.FigExtensions()
		if err != nil {
			fmt.Fprintf(os.Stderr, "cepbench: extensions: %v\n", err)
			os.Exit(1)
		}
		for i := range tables {
			tables[i].Fprint(os.Stdout)
		}
		fmt.Printf("(extension tables computed in %v)\n", time.Since(start).Round(time.Millisecond))
		return
	}
	figures := harness.AllFigures()
	if *fig != "all" {
		n, err := strconv.Atoi(*fig)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cepbench: invalid -fig %q (4-19 or 'all' or 'ext')\n", *fig)
			os.Exit(2)
		}
		figures = []int{n}
	}
	for _, n := range figures {
		start := time.Now()
		tables, err := runner.Figure(n)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cepbench: figure %d: %v\n", n, err)
			os.Exit(1)
		}
		for i := range tables {
			tables[i].Fprint(os.Stdout)
		}
		fmt.Printf("(figure %d computed in %v)\n\n", n, time.Since(start).Round(time.Millisecond))
	}
}
