// Command cepbench regenerates the paper's evaluation figures (4–19) as
// tables on the synthetic stock workload.
//
// Usage:
//
//	cepbench -fig 4           # one figure (and its sibling, e.g. 4 prints 5 too)
//	cepbench -fig all         # every figure
//	cepbench -events 50000 -persize 4 -fig 10
//
// Figures map to the paper as follows: 4/5 per-category throughput/memory;
// 6–15 throughput/memory by pattern size per category; 16 cost-model
// validation; 17 large-pattern plan quality and planning time; 18
// throughput/latency trade-off; 19 selection strategies.
//
// Beyond the paper, `cepbench -fig shard` measures the sharded concurrent
// runtime: events/second versus worker count on a bucket-partitioned stock
// stream, against the sequential PartitionedRuntime baseline.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"time"

	cep "repro"
	"repro/internal/event"
	"repro/internal/harness"
	"repro/internal/workload"
)

func main() {
	var (
		fig      = flag.String("fig", "all", "figure number (4-19) or 'all'")
		symbols  = flag.Int("symbols", 32, "stock symbols in the universe")
		events   = flag.Int("events", 8000, "events in the generated stream")
		windowMS = flag.Int64("window", 4000, "pattern window in milliseconds")
		perSize  = flag.Int("persize", 2, "patterns per size per category")
		seed     = flag.Int64("seed", 1, "master RNG seed")
		maxSize  = flag.Int("maxsize", 7, "largest pattern size for execution figures")
		dpldCap  = flag.Int("dpld-cap", 18, "largest pattern size planned with DP-LD in Fig 17")
		dpbCap   = flag.Int("dpb-cap", 14, "largest pattern size planned with DP-B in Fig 17")
		shardGen = flag.Int("shard-events", 200000, "events in the sharded-throughput stream (-fig shard)")
		shardPar = flag.Int("shard-partitions", 64, "partitions in the sharded-throughput stream (-fig shard)")
	)
	flag.Parse()

	if *fig == "shard" {
		if err := runShardScenario(*symbols, *shardGen, *shardPar, event.Time(*windowMS), *seed); err != nil {
			fmt.Fprintf(os.Stderr, "cepbench: shard scenario: %v\n", err)
			os.Exit(1)
		}
		return
	}

	sizes := make([]int, 0, *maxSize-2)
	for s := 3; s <= *maxSize; s++ {
		sizes = append(sizes, s)
	}
	cfg := harness.Config{
		Symbols:     *symbols,
		Events:      *events,
		Window:      event.Time(*windowMS),
		Sizes:       sizes,
		PerSize:     *perSize,
		Seed:        *seed,
		MaxDPLDSize: *dpldCap,
		MaxDPBSize:  *dpbCap,
	}
	runner := harness.NewRunner(cfg)
	fmt.Printf("workload: %d events over %d symbols, window %dms, sizes %v, %d patterns/size\n\n",
		cfg.Events, cfg.Symbols, *windowMS, sizes, cfg.PerSize)

	if *fig == "ext" {
		start := time.Now()
		tables, err := runner.FigExtensions()
		if err != nil {
			fmt.Fprintf(os.Stderr, "cepbench: extensions: %v\n", err)
			os.Exit(1)
		}
		for i := range tables {
			tables[i].Fprint(os.Stdout)
		}
		fmt.Printf("(extension tables computed in %v)\n", time.Since(start).Round(time.Millisecond))
		return
	}
	figures := harness.AllFigures()
	if *fig != "all" {
		n, err := strconv.Atoi(*fig)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cepbench: invalid -fig %q (4-19, 'all', 'ext' or 'shard')\n", *fig)
			os.Exit(2)
		}
		figures = []int{n}
	}
	for _, n := range figures {
		start := time.Now()
		tables, err := runner.Figure(n)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cepbench: figure %d: %v\n", n, err)
			os.Exit(1)
		}
		for i := range tables {
			tables[i].Fprint(os.Stdout)
		}
		fmt.Printf("(figure %d computed in %v)\n\n", n, time.Since(start).Round(time.Millisecond))
	}
}

// runShardScenario measures the sharded runtime's scaling: one pattern over
// a bucket-partitioned stock stream, detected sequentially by
// PartitionedRuntime and then by ShardedRuntime at doubling worker counts.
// Every run must reproduce the sequential match count — the table is also a
// correctness check.
func runShardScenario(symbols, events, partitions int, window event.Time, seed int64) error {
	if symbols < 3 {
		return fmt.Errorf("-symbols must be at least 3 (the scenario pattern spans three symbols), got %d", symbols)
	}
	stocks := workload.NewStocks(workload.StockConfig{
		Symbols: symbols, Events: events, Seed: seed, MinRate: 1, MaxRate: 45,
		Partitions: partitions, PartitionBy: workload.PartitionByBucket, Buckets: partitions,
	})
	stream := stocks.Generate()
	// The pattern compares `difference` attributes only: partitioning is by
	// bucket, so all events of one partition share a bucket value and any
	// bucket predicate would degenerate to constant true/false.
	rng := rand.New(rand.NewSource(seed + 17))
	syms := rng.Perm(symbols)[:3]
	src := fmt.Sprintf(
		`PATTERN SEQ(S%03d e0, S%03d e1, S%03d e2) WHERE e0.difference < e1.difference WITHIN %d ms`,
		syms[0], syms[1], syms[2], window)
	p, err := cep.ParsePatternWith(src, stocks.Registry)
	if err != nil {
		return err
	}
	st := cep.Measure(stream, p)
	fmt.Printf("shard scenario: %d events, %d partitions, window %dms, pattern %s\n\n",
		len(stream), partitions, window, p)

	// Sequential baseline.
	pr, err := cep.NewPartitioned(p, st, nil)
	if err != nil {
		return err
	}
	maxWorkers := runtime.NumCPU()
	if maxWorkers < 8 {
		maxWorkers = 8 // show the scaling curve even on small machines
	}
	workerCounts := []int{}
	for w := 1; w <= maxWorkers; w *= 2 {
		workerCounts = append(workerCounts, w)
	}
	if last := workerCounts[len(workerCounts)-1]; last != maxWorkers {
		workerCounts = append(workerCounts, maxWorkers) // e.g. 12 cores: 1 2 4 8 12
	}
	start := time.Now()
	for _, ev := range stream {
		if _, err := pr.Process(ev); err != nil {
			return err
		}
	}
	pr.Flush()
	seqElapsed := time.Since(start)
	seqRate := float64(len(stream)) / seqElapsed.Seconds()

	table := harness.Table{
		Title:   "Sharded runtime throughput (events/s) vs worker count",
		Columns: []string{"workers", "events/s", "speedup", "matches", "stalls", "elapsed"},
		Rows: [][]string{{
			"seq", fmt.Sprintf("%.0f", seqRate), "1.00",
			fmt.Sprint(pr.Matches()), "-", seqElapsed.Round(time.Millisecond).String(),
		}},
	}
	for _, w := range workerCounts {
		evs := workload.ResetStream(stream)
		sr, err := cep.NewSharded(p, st, nil, cep.ShardConfig{Workers: w})
		if err != nil {
			return err
		}
		if err := sr.Start(); err != nil {
			return err
		}
		start := time.Now()
		const batch = 512
		for i := 0; i < len(evs); i += batch {
			end := i + batch
			if end > len(evs) {
				end = len(evs)
			}
			if err := sr.SubmitBatch(evs[i:end]); err != nil {
				return err
			}
		}
		if _, err := sr.Close(); err != nil {
			return err
		}
		elapsed := time.Since(start)
		rate := float64(len(evs)) / elapsed.Seconds()
		var stalls int64
		for _, s := range sr.Stats() {
			stalls += s.Stalls
		}
		matches := fmt.Sprint(sr.Matches())
		if sr.Matches() != pr.Matches() {
			matches += " (MISMATCH vs sequential!)"
		}
		table.Rows = append(table.Rows, []string{
			fmt.Sprint(w), fmt.Sprintf("%.0f", rate), fmt.Sprintf("%.2f", rate/seqRate),
			matches, fmt.Sprint(stalls), elapsed.Round(time.Millisecond).String(),
		})
	}
	table.Fprint(os.Stdout)
	return nil
}
